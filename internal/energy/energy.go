package energy

import (
	"fmt"

	"repro/internal/sim"
)

// Params holds the per-operation energies (joules) and static powers
// (watts) of the model.
type Params struct {
	CPUFreqHz float64

	// CPU cores.
	CoreStaticW  float64 // per core
	CoreDynPerOp float64 // per retired instruction

	// SRAM caches.
	L1AccessJ  float64
	L2AccessJ  float64
	LLCAccessJ float64
	LLCStaticW float64 // whole LLC

	// Off-chip interconnect: per 64-byte transfer between LLC and DRAM.
	OffChipPerReqJ float64

	// DRAM per-command energies.
	ActPreJ     float64 // one ACTIVATE+PRECHARGE pair, slow subarray
	ActPreFastJ float64 // one ACTIVATE+PRECHARGE pair, fast subarray
	ReadBurstJ  float64 // one RD burst incl. I/O
	WriteBurstJ float64 // one WR burst incl. I/O
	RefreshJ    float64 // one all-bank REF
	RelocColJ   float64 // one FIGARO RELOC column operation
	RBMHopJ     float64 // one LISA row-buffer-movement hop (full row)
	DRAMStaticW float64 // background power per channel

	// FTS (FIGCache tag store) power, from the paper's CACTI analysis
	// (Section 8.3: 0.187 mW on average).
	FTSW float64
}

// DefaultParams returns the model constants. DRAM command energies are
// derived from DDR4 IDD-based estimates for a rank of eight x8 chips;
// CPU/cache constants are representative 22 nm values.
func DefaultParams() Params {
	return Params{
		CPUFreqHz:      3.2e9,
		CoreStaticW:    2.5,
		CoreDynPerOp:   0.25e-9,
		L1AccessJ:      0.02e-9,
		L2AccessJ:      0.06e-9,
		LLCAccessJ:     0.30e-9,
		LLCStaticW:     0.5,
		OffChipPerReqJ: 5.1e-9, // ~10 pJ/bit x 512 bits
		ActPreJ:        20e-9,
		ActPreFastJ:    12e-9, // short bitlines restore less charge
		ReadBurstJ:     13e-9,
		WriteBurstJ:    13e-9,
		RefreshJ:       250e-9,
		RelocColJ:      1.2e-9, // column copy through the GRB
		RBMHopJ:        9e-9,   // an entire row moved one subarray
		DRAMStaticW:    0.15,
		FTSW:           0.187e-3,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.CPUFreqHz <= 0 {
		return fmt.Errorf("energy: CPU frequency must be positive")
	}
	vals := []float64{
		p.CoreStaticW, p.CoreDynPerOp, p.L1AccessJ, p.L2AccessJ, p.LLCAccessJ,
		p.LLCStaticW, p.OffChipPerReqJ, p.ActPreJ, p.ActPreFastJ, p.ReadBurstJ,
		p.WriteBurstJ, p.RefreshJ, p.RelocColJ, p.RBMHopJ, p.DRAMStaticW, p.FTSW,
	}
	for i, v := range vals {
		if v < 0 {
			return fmt.Errorf("energy: parameter %d negative", i)
		}
	}
	return nil
}

// Breakdown is the per-component energy of one run, in joules, matching
// the stacks of Figure 11.
type Breakdown struct {
	CPU     float64
	L1L2    float64
	LLC     float64
	OffChip float64
	DRAM    float64
}

// Total returns the summed system energy.
func (b Breakdown) Total() float64 { return b.CPU + b.L1L2 + b.LLC + b.OffChip + b.DRAM }

// Compute derives the energy breakdown of a run from its statistics.
// channels is the number of memory channels, cores the core count.
func Compute(p Params, r sim.Result, cores, channels int, hasFTS bool) Breakdown {
	seconds := float64(r.Cycles) / p.CPUFreqHz
	var b Breakdown

	b.CPU = float64(cores)*p.CoreStaticW*seconds + float64(r.TotalInsts)*p.CoreDynPerOp
	b.L1L2 = float64(r.L1Accesses)*p.L1AccessJ + float64(r.L2Accesses)*p.L2AccessJ
	b.LLC = float64(r.LLCAccesses)*p.LLCAccessJ + p.LLCStaticW*seconds
	b.OffChip = float64(r.MemReads+r.MemWrites) * p.OffChipPerReqJ

	d := r.DRAM
	b.DRAM = float64(d.ACT)*p.ActPreJ +
		float64(d.ACTFast)*p.ActPreFastJ +
		float64(d.RD)*p.ReadBurstJ +
		float64(d.WR)*p.WriteBurstJ +
		float64(d.REF)*p.RefreshJ +
		float64(d.RELOC)*p.RelocColJ +
		float64(d.RBMHops)*p.RBMHopJ +
		float64(channels)*p.DRAMStaticW*seconds
	if hasFTS {
		b.DRAM += p.FTSW * seconds
	}
	return b
}

// RelocOpJ returns the modelled energy of one standalone single-column
// FIGARO relocation (two ACTIVATEs, one RELOC, one PRECHARGE), comparable
// to the paper's 0.03 uJ estimate from the Micron power calculator
// (Section 4.2).
func RelocOpJ(p Params) float64 {
	return 2*p.ActPreJ + p.RelocColJ
}
