package energy

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/sim"
)

func sampleResult() sim.Result {
	return sim.Result{
		Cycles:      3_200_000, // 1 ms at 3.2 GHz
		TotalInsts:  1_000_000,
		L1Accesses:  400_000,
		L2Accesses:  60_000,
		LLCAccesses: 50_000,
		MemReads:    30_000,
		MemWrites:   10_000,
		DRAM: dram.Stats{
			ACT: 20_000, PRE: 20_000, RD: 30_000, WR: 10_000, REF: 120,
		},
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := DefaultParams()
	bad.CPUFreqHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero frequency")
	}
	bad = DefaultParams()
	bad.ActPreJ = -1
	if err := bad.Validate(); err == nil {
		t.Error("accepted negative energy")
	}
}

func TestComputeBreakdownPositive(t *testing.T) {
	b := Compute(DefaultParams(), sampleResult(), 1, 1, false)
	for name, v := range map[string]float64{
		"CPU": b.CPU, "L1L2": b.L1L2, "LLC": b.LLC, "OffChip": b.OffChip, "DRAM": b.DRAM,
	} {
		if v <= 0 {
			t.Errorf("%s energy = %g, want positive", name, v)
		}
	}
	if b.Total() <= b.CPU {
		t.Error("total not greater than CPU component")
	}
}

func TestBreakdownProportionsResembleFigure11(t *testing.T) {
	// Figure 11 for Base: CPU is the largest component; DRAM is a
	// substantial share.
	b := Compute(DefaultParams(), sampleResult(), 1, 1, false)
	total := b.Total()
	if b.CPU/total < 0.3 {
		t.Errorf("CPU share = %.2f, want >= 0.3", b.CPU/total)
	}
	if b.DRAM/total < 0.1 || b.DRAM/total > 0.6 {
		t.Errorf("DRAM share = %.2f, want 0.1..0.6", b.DRAM/total)
	}
}

func TestShorterRunLessStaticEnergy(t *testing.T) {
	r := sampleResult()
	fast := r
	fast.Cycles = r.Cycles / 2
	b1 := Compute(DefaultParams(), r, 1, 1, false)
	b2 := Compute(DefaultParams(), fast, 1, 1, false)
	if b2.Total() >= b1.Total() {
		t.Errorf("halving runtime did not reduce energy: %g vs %g", b2.Total(), b1.Total())
	}
}

func TestFewerActivationsLessDRAMEnergy(t *testing.T) {
	// The paper's first energy-reduction source: improved row-buffer hit
	// rate amortises ACT/PRE energy (Section 8.2).
	r := sampleResult()
	amortized := r
	amortized.DRAM.ACT = r.DRAM.ACT / 2
	b1 := Compute(DefaultParams(), r, 1, 1, false)
	b2 := Compute(DefaultParams(), amortized, 1, 1, false)
	if b2.DRAM >= b1.DRAM {
		t.Errorf("halving ACTs did not reduce DRAM energy: %g vs %g", b2.DRAM, b1.DRAM)
	}
}

func TestFastACTCheaperThanSlow(t *testing.T) {
	r := sampleResult()
	fastActs := r
	fastActs.DRAM.ACT = 0
	fastActs.DRAM.ACTFast = r.DRAM.ACT
	b1 := Compute(DefaultParams(), r, 1, 1, false)
	b2 := Compute(DefaultParams(), fastActs, 1, 1, false)
	if b2.DRAM >= b1.DRAM {
		t.Error("fast-subarray activations not cheaper than slow ones")
	}
}

func TestRelocAndRBMEnergyCounted(t *testing.T) {
	r := sampleResult()
	r.DRAM.RELOC = 100_000
	withReloc := Compute(DefaultParams(), r, 1, 1, true)
	r.DRAM.RELOC = 0
	without := Compute(DefaultParams(), r, 1, 1, true)
	if withReloc.DRAM <= without.DRAM {
		t.Error("RELOC energy not accounted")
	}
	r.DRAM.RBMHops = 50_000
	withRBM := Compute(DefaultParams(), r, 1, 1, false)
	r.DRAM.RBMHops = 0
	if withRBM.DRAM <= Compute(DefaultParams(), r, 1, 1, false).DRAM {
		t.Error("RBM energy not accounted")
	}
}

func TestFTSPowerIncludedWhenPresent(t *testing.T) {
	r := sampleResult()
	with := Compute(DefaultParams(), r, 1, 1, true)
	without := Compute(DefaultParams(), r, 1, 1, false)
	if with.DRAM <= without.DRAM {
		t.Error("FTS power not included")
	}
}

func TestRelocOpEnergyScale(t *testing.T) {
	// Section 4.2 estimates 0.03 uJ for a standalone one-block relocation
	// using the Micron power calculator; our per-command constants land
	// in the same order of magnitude.
	j := RelocOpJ(DefaultParams())
	if j < 5e-9 || j > 100e-9 {
		t.Errorf("standalone relocation energy = %g J, want tens of nJ", j)
	}
}
