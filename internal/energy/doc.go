// Package energy models system energy consumption in the style of the
// paper's methodology (Section 7): per-component accounting for CPU cores
// (McPAT), SRAM caches (CACTI), the off-chip interconnect (Orion) and
// DRAM (DRAMPower). Since those tools are unavailable, the model uses
// fixed per-operation energies and static powers representative of a
// 22 nm system, chosen so the Base breakdown matches the proportions of
// Figure 11; the paper's energy deltas arise from ACT/PRE amortisation
// (row-buffer hits) and runtime reduction, both of which this model
// captures directly from the simulation counters.
//
// The package is a pure post-processing layer: it reads a finished
// sim.Result's counters and returns a Breakdown, with no feedback into
// the timing simulation. The harness's Figure 11 builder is its only
// simulation-facing consumer.
package energy
