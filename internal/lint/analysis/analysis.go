// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// with a Run function over one type-checked package (a Pass), reporting
// Diagnostics. The real x/tools module cannot be vendored here (the build
// must work from the standard library alone), so fglint's analyzers are
// written against this mirror of the API shape; porting them to the real
// framework is a mechanical import swap.
//
// The package also hosts the fglint-specific conventions shared by all
// analyzers: the timing-path package sets and the //fglint:deterministic
// and //fglint:preserved source annotations (see Annotation).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in fglint -only.
	Name string
	// Doc is a one-paragraph description, shown by fglint -list.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Reportf. The error return is for analysis failures (the check
	// could not run), not for findings.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files (comments included),
	// sorted by file name. Test files are not loaded.
	Files []*ast.File
	// PkgPath is the package's import path. For analysistest packages it
	// is the path relative to the testdata source root, so testdata laid
	// out as testdata/src/internal/sim/... exercises the timing-path
	// predicates exactly like the real tree.
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	report func(Diagnostic)

	// lineComments caches the per-file line -> comments index used by
	// Annotation, built lazily on first use.
	lineComments map[*ast.File]map[int][]*ast.Comment
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diag is a finding resolved to a concrete file position, as produced by
// Run for drivers (fglint, the self-clean test).
type Diag struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// Unit is the input Run needs for one package; the loader produces it.
type Unit struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// Run applies every analyzer to every unit and returns the findings
// sorted by file position then analyzer name, so output is deterministic
// regardless of analyzer or package order.
func Run(units []*Unit, analyzers []*Analyzer) ([]Diag, error) {
	var out []Diag
	for _, u := range units {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     u.Fset,
				Files:    u.Files,
				PkgPath:  u.PkgPath,
				Pkg:      u.Pkg,
				Info:     u.Info,
			}
			pass.report = func(d Diagnostic) {
				out = append(out, Diag{
					Analyzer: a.Name,
					Position: u.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.PkgPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// TimingPathPackages are the package base paths whose code runs inside a
// simulation and therefore must be deterministic: equal configs must
// produce bit-identical Results on every run, engine, and machine (the
// fingerprint cache contract, ARCHITECTURE.md). Wall-clock time and
// ambient process state may only enter through harness and cmd.
var TimingPathPackages = []string{
	"internal/sim",
	"internal/cpu",
	"internal/cache",
	"internal/core",
	"internal/memctrl",
	"internal/dram",
	"internal/spice",
	"internal/workload",
}

// OrderSensitivePackages extends the timing path with the packages whose
// *output* must be byte-identical across runs — harness table building
// and expcache merge reports — where map iteration order (though not
// wall-clock use) is still a determinism hazard.
var OrderSensitivePackages = append([]string{
	"internal/harness",
	"internal/expcache",
}, TimingPathPackages...)

func matchesBase(pkgPath, base string) bool {
	return pkgPath == base || strings.HasSuffix(pkgPath, "/"+base)
}

// IsTimingPath reports whether pkgPath is one of the timing-path
// packages. The match ignores the module prefix so both "repro/internal/
// sim" and a testdata package named "internal/sim" qualify.
func IsTimingPath(pkgPath string) bool {
	for _, base := range TimingPathPackages {
		if matchesBase(pkgPath, base) {
			return true
		}
	}
	return false
}

// IsOrderSensitive reports whether pkgPath must produce deterministically
// ordered output (timing path plus harness/expcache).
func IsOrderSensitive(pkgPath string) bool {
	for _, base := range OrderSensitivePackages {
		if matchesBase(pkgPath, base) {
			return true
		}
	}
	return false
}

// Annotation markers. An annotation is a comment of the form
//
//	//fglint:deterministic <reason>
//	//fglint:preserved <reason>
//
// placed either on the flagged statement's starting line (trailing
// comment) or alone on the line directly above it. The reason is
// mandatory: an annotation suppresses a diagnostic, so it must say why
// the flagged construct cannot affect results.
const (
	MarkerDeterministic = "fglint:deterministic"
	MarkerPreserved     = "fglint:preserved"
)

// Annotation looks for the given marker annotating node and returns its
// reason. ok is false when there is no annotation; an annotation with an
// empty reason returns ok=true with reason "" — callers treat that as a
// violation of the annotation contract and report it.
func (p *Pass) Annotation(node ast.Node, marker string) (reason string, ok bool) {
	file := p.fileOf(node.Pos())
	if file == nil {
		return "", false
	}
	if p.lineComments == nil {
		p.lineComments = make(map[*ast.File]map[int][]*ast.Comment)
	}
	index, built := p.lineComments[file]
	if !built {
		index = make(map[int][]*ast.Comment)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				line := p.Fset.Position(c.Pos()).Line
				index[line] = append(index[line], c)
			}
		}
		p.lineComments[file] = index
	}
	line := p.Fset.Position(node.Pos()).Line
	for _, candidate := range [][]*ast.Comment{index[line], index[line-1]} {
		for _, c := range candidate {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, marker) {
				continue
			}
			rest := text[len(marker):]
			if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
				continue // e.g. fglint:deterministic-ish, a different marker
			}
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// fileOf returns the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
