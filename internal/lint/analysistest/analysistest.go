// Package analysistest runs an analyzer over a testdata source tree and
// checks its diagnostics against // want annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest. Test packages live under
// <testdata>/src/<importpath>, so a package placed at
// testdata/src/internal/sim exercises the timing-path predicates exactly
// like the real internal/sim does.
//
// An expectation is a comment of the form
//
//	// want `regexp`
//	// want `re1` `re2`        (two diagnostics on this line)
//	// want "regexp"
//
// on the line where the diagnostic is expected. Every expectation must be
// matched by a diagnostic on its line and every diagnostic must match an
// expectation, or the test fails.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// expectation is one compiled // want regexp at a file line.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the packages at the given import paths from
// testdataDir/src, applies the analyzer, and reports mismatches between
// its diagnostics and the // want expectations through t.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := load.NewDirLoader(filepath.Join(testdataDir, "src"))
	pkgs, err := loader.Load(pkgPaths...)
	if err != nil {
		t.Fatalf("loading testdata packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded for %v", pkgPaths)
	}

	var units []*analysis.Unit
	wants := make(map[string][]*expectation) // "file:line" -> expectations
	for _, p := range pkgs {
		units = append(units, &analysis.Unit{
			PkgPath: p.PkgPath, Fset: p.Fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info,
		})
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, raw := range splitPatterns(rest) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, raw, err)
						}
						wants[key] = append(wants[key], &expectation{re: re, raw: raw})
					}
				}
			}
		}
	}

	diags, err := analysis.Run(units, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Position.Filename, d.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.raw)
			}
		}
	}
}

// splitPatterns extracts the backquoted or double-quoted patterns from
// the remainder of a want comment.
func splitPatterns(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				out = append(out, s[1:])
				return out
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Find the closing quote respecting escapes, then unquote.
			i := 1
			for i < len(s) && (s[i] != '"' || s[i-1] == '\\') {
				i++
			}
			if i >= len(s) {
				out = append(out, s[1:])
				return out
			}
			if unq, err := strconv.Unquote(s[:i+1]); err == nil {
				out = append(out, unq)
			} else {
				out = append(out, s[1:i])
			}
			s = s[i+1:]
		default:
			// Bare word: take up to the next space (lenient, mostly for
			// mistakes; the tests use quoted forms).
			i := strings.IndexByte(s, ' ')
			if i < 0 {
				out = append(out, s)
				return out
			}
			out = append(out, s[:i])
			s = s[i:]
		}
	}
}
