package maprange_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/maprange"
)

func TestMapRange(t *testing.T) {
	analysistest.Run(t, "testdata", maprange.Analyzer, "internal/sim", "plainpkg")
}
