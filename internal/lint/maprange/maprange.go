// Package maprange flags `range` statements over maps (and unsorted
// maps.Keys/maps.Values iterator uses) inside the packages whose output
// must be deterministic: the timing path plus harness/expcache table and
// report building. Go randomizes map iteration order per run, so a map
// range on any result- or output-affecting path silently breaks the
// bit-identical-results contract that the fingerprint cache, the shard
// merge, and TestEngineEquivalence all lean on (PR 1 fixed exactly such
// a bug in flushIdleRelocs).
//
// A statement where iteration order provably cannot affect results may
// carry a trailing (or directly preceding) annotation:
//
//	//fglint:deterministic <why order cannot matter>
package maprange

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the maprange check.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag range-over-map (and unsorted maps.Keys/Values) in packages that must produce " +
		"deterministic results; annotate provably order-independent statements with " +
		"//fglint:deterministic <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsOrderSensitive(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, n)
			case *ast.CallExpr:
				checkMapsIter(pass, n, stack)
			}
			return true
		})
	}
	return nil
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if reportAnnotated(pass, rs) {
		return
	}
	pass.Reportf(rs.Pos(),
		"range over map %s: iteration order is randomized per run; iterate a sorted key "+
			"slice, or annotate with //fglint:deterministic <reason> if order cannot affect results",
		nodeText(rs.X))
}

// checkMapsIter flags maps.Keys / maps.Values calls whose iteration
// order escapes unsorted. The call is fine when it feeds directly into
// slices.Sorted / slices.SortedFunc / slices.SortedStableFunc.
func checkMapsIter(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass, sel)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "maps" {
		return
	}
	if fn.Name() != "Keys" && fn.Name() != "Values" {
		return
	}
	// Walk up past parens to the consuming call, if any.
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			if psel, ok := parent.Fun.(*ast.SelectorExpr); ok {
				if pfn := calleeFunc(pass, psel); pfn != nil && pfn.Pkg() != nil &&
					pfn.Pkg().Path() == "slices" {
					switch pfn.Name() {
					case "Sorted", "SortedFunc", "SortedStableFunc":
						return
					}
				}
			}
		}
		break
	}
	if reportAnnotated(pass, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"maps.%s yields keys in randomized order; wrap in slices.Sorted (or annotate with "+
			"//fglint:deterministic <reason> if order cannot affect results)", fn.Name())
}

// reportAnnotated returns true when the node carries a deterministic
// annotation, reporting a reason-less annotation as its own finding.
func reportAnnotated(pass *analysis.Pass, n ast.Node) bool {
	reason, ok := pass.Annotation(n, analysis.MarkerDeterministic)
	if !ok {
		return false
	}
	if reason == "" {
		pass.Reportf(n.Pos(), "//fglint:deterministic annotation needs a reason")
	}
	return true
}

func calleeFunc(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Func {
	obj := pass.Info.Uses[sel.Sel]
	fn, _ := obj.(*types.Func)
	return fn
}

// nodeText renders a short expression for diagnostics (identifiers and
// selector chains; anything else degrades to a placeholder).
func nodeText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return nodeText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return nodeText(e.X) + "[...]"
	case *ast.CallExpr:
		return nodeText(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return nodeText(e.X)
	default:
		return "expression"
	}
}
