// Package sim is maprange test input; its import path ends in
// internal/sim, so the order-sensitive predicate applies.
package sim

import (
	"maps"
	"slices"
)

func flagged(m map[int]int) int {
	s := 0
	for k := range m { // want `range over map m: iteration order is randomized`
		s += k
	}
	return s
}

func annotated(m map[int]int) int {
	s := 0
	//fglint:deterministic integer sum is commutative
	for _, v := range m {
		s += v
	}
	return s
}

func annotatedTrailing(m map[int]int) {
	for range m { //fglint:deterministic counting only, no per-key effect
	}
}

func missingReason(m map[int]int) {
	//fglint:deterministic
	for range m { // want `annotation needs a reason`
	}
}

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) { // want `maps.Keys yields keys in randomized order`
		out = append(out, k)
	}
	return out
}

func keysSorted(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

func sliceRangeClean(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
