// Package plainpkg is outside the order-sensitive set, so its map
// ranges are not maprange's business.
package plainpkg

func Sum(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
