// Package snapshotcomplete machine-enforces the checkpoint contract
// that System.Snapshot/Restore introduced: a snapshot must capture
// every piece of simulation-time state, so a restored run is
// bit-identical to an uninterrupted one. The classic way that contract
// rots is a new field that gets mutated during simulation but is
// forgotten by the Snapshot/Restore pair — TestEngineEquivalence's
// checkpoint cases catch it only if the stale value happens to change
// a pinned result.
//
// For every struct type that declares both a Snapshot (or snapshot)
// and a Restore (or restore) method, the analyzer computes two
// per-package sets:
//
//   - mutated: fields written during simulation — assigned, inc/dec'd,
//     passed to clear/delete/copy, or used as the receiver of a
//     pointer-receiver or interface method call — anywhere outside the
//     type's constructors (New*/new*/init) and the methods reachable
//     from its Snapshot, Restore, or Reset (Reset writes are lifecycle
//     bookkeeping, not state a checkpoint must carry);
//
//   - handled: fields the Snapshot or Restore method (or a same-type
//     method either calls, transitively) touches at all, plus every
//     field when Restore assigns the whole struct (*r = T{...}).
//
// Every mutated-but-unhandled field is reported at its declaration. A
// field that deliberately stays out of the snapshot — a derived index
// rebuilt on restore, a scratch buffer, debug-only state, a binding
// serialized by another layer — must say so:
//
//	//fglint:preserved <why omitting this field cannot desynchronize a restored run>
//
// Like resetcomplete, this is an AST-and-types approximation of the
// SSA write set, conservative toward spurious "annotate this field"
// reports rather than silently missed state.
package snapshotcomplete

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the snapshotcomplete check.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotcomplete",
	Doc: "verify that every field mutated during simulation travels in (or is explicitly " +
		"//fglint:preserved out of) its struct's Snapshot/Restore pair",
	Run: run,
}

// checked is one struct type with a Snapshot/Restore pair.
type checked struct {
	named   *types.Named
	fields  map[string]*ast.Field // field name -> declaration
	order   []string              // declaration order, for deterministic reports
	methods map[string]*ast.FuncDecl
	// capture holds the Snapshot and Restore declarations; reset (when
	// declared) extends the exclusion set but not the handled set.
	capture []*ast.FuncDecl
	reset   *ast.FuncDecl
	// captureReach is capture + same-type methods reachable from it
	// (defines handled); excluded additionally contains reset-reachable
	// methods (writes there are not simulation-time mutation).
	captureReach map[*ast.FuncDecl]bool
	excluded     map[*ast.FuncDecl]bool
	handled      map[string]bool
	mutated      map[string]ast.Node // field -> one mutation site (diagnostics)
}

func run(pass *analysis.Pass) error {
	targets := collectTargets(pass)
	if len(targets) == 0 {
		return nil
	}
	for _, t := range targets {
		t.captureReach = reachable(pass, t, t.capture)
		roots := t.capture
		if t.reset != nil {
			roots = append(append([]*ast.FuncDecl{}, roots...), t.reset)
		}
		t.excluded = reachable(pass, t, roots)
		computeHandled(pass, t)
	}
	collectMutations(pass, targets)
	return nil
}

// collectTargets finds the package's struct types that declare both a
// Snapshot/snapshot and a Restore/restore method.
func collectTargets(pass *analysis.Pass) []*checked {
	byNamed := make(map[*types.Named]*checked)
	var order []*checked

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			named := recvNamed(pass, fd)
			if named == nil || named.Obj().Pkg() != pass.Pkg {
				continue
			}
			c := byNamed[named]
			if c == nil {
				c = &checked{
					named:   named,
					fields:  make(map[string]*ast.Field),
					methods: make(map[string]*ast.FuncDecl),
					handled: make(map[string]bool),
					mutated: make(map[string]ast.Node),
				}
				byNamed[named] = c
				order = append(order, c)
			}
			c.methods[fd.Name.Name] = fd
		}
	}

	var targets []*checked
	for _, c := range order {
		if _, ok := c.named.Underlying().(*types.Struct); !ok {
			continue
		}
		snap := c.methods["Snapshot"]
		if snap == nil {
			snap = c.methods["snapshot"]
		}
		restore := c.methods["Restore"]
		if restore == nil {
			restore = c.methods["restore"]
		}
		if snap == nil || restore == nil {
			continue
		}
		c.capture = []*ast.FuncDecl{snap, restore}
		if r, ok := c.methods["Reset"]; ok {
			c.reset = r
		} else if r, ok := c.methods["reset"]; ok {
			c.reset = r
		}
		fillFieldDecls(pass, c)
		targets = append(targets, c)
	}
	return targets
}

// fillFieldDecls locates the struct type's field declarations in the AST.
func fillFieldDecls(pass *analysis.Pass, c *checked) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || pass.Info.Defs[ts.Name] != c.named.Obj() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						c.fields[name.Name] = f
						c.order = append(c.order, name.Name)
					}
				}
				return
			}
		}
	}
}

// reachable marks the root methods plus every same-type method they
// (transitively) call on their own receiver value.
func reachable(pass *analysis.Pass, c *checked, roots []*ast.FuncDecl) map[*ast.FuncDecl]bool {
	seen := make(map[*ast.FuncDecl]bool, len(roots))
	var work []*ast.FuncDecl
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			work = append(work, r)
		}
	}
	for len(work) > 0 {
		fd := work[0]
		work = work[1:]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if derefNamed(pass.TypeOf(sel.X)) != c.named {
				return true
			}
			if m, ok := c.methods[sel.Sel.Name]; ok && !seen[m] {
				seen[m] = true
				work = append(work, m)
			}
			return true
		})
	}
	return seen
}

// computeHandled marks every field the Snapshot/Restore-reachable code
// touches (any selector mention), and all fields when the whole struct
// is assigned.
func computeHandled(pass *analysis.Pass, c *checked) {
	wholeStruct := false
	for fd := range c.captureReach {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if derefNamed(pass.TypeOf(n.X)) == c.named {
					if _, ok := c.fields[n.Sel.Name]; ok {
						c.handled[n.Sel.Name] = true
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if star, ok := lhs.(*ast.StarExpr); ok &&
						derefNamed(pass.TypeOf(star.X)) == c.named {
						wholeStruct = true
					}
				}
			}
			return true
		})
	}
	if wholeStruct {
		for name := range c.fields {
			c.handled[name] = true
		}
	}
}

// collectMutations walks every function body in the package and
// attributes potential field writes to the checked types, excluding
// each type's constructors and Snapshot/Restore/Reset-reachable
// methods.
func collectMutations(pass *analysis.Pass, targets []*checked) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctorLike := isConstructorLike(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						attribute(pass, targets, fd, ctorLike, lhs, n)
					}
				case *ast.IncDecStmt:
					attribute(pass, targets, fd, ctorLike, n.X, n)
				case *ast.CallExpr:
					attributeCall(pass, targets, fd, ctorLike, n)
				}
				return true
			})
		}
	}
	for _, t := range targets {
		for _, name := range t.order {
			site := t.mutated[name]
			if site == nil || t.handled[name] {
				continue
			}
			field := t.fields[name]
			reason, annotated := pass.Annotation(field, analysis.MarkerPreserved)
			if annotated {
				if reason == "" {
					pass.Reportf(field.Pos(), "//fglint:preserved annotation needs a reason")
				}
				continue
			}
			pass.Reportf(field.Pos(),
				"field %s of %s is mutated during simulation (e.g. at %s) but never touched by "+
					"its Snapshot/Restore pair; serialize it, or annotate with //fglint:preserved <reason>",
				name, t.named.Obj().Name(), pass.Fset.Position(site.Pos()))
		}
	}
}

// attributeCall records mutations implied by a call: clear/delete/copy
// on a field, or a pointer-receiver/interface method invoked on a
// field.
func attributeCall(pass *analysis.Pass, targets []*checked, fd *ast.FuncDecl, ctorLike bool, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "clear", "delete", "copy":
			if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
				attribute(pass, targets, fd, ctorLike, call.Args[0], call)
			}
		}
	case *ast.SelectorExpr:
		selection := pass.Info.Selections[fun]
		if selection == nil || selection.Kind() != types.MethodVal {
			return // package-qualified call or func-valued field: not a receiver
		}
		if !maybeMutatingMethod(selection) {
			return
		}
		attribute(pass, targets, fd, ctorLike, fun.X, call)
	}
}

// maybeMutatingMethod reports whether a method call could mutate its
// receiver: pointer receiver, or an interface method (unknowable,
// assume yes).
func maybeMutatingMethod(selection *types.Selection) bool {
	if types.IsInterface(selection.Recv()) {
		return true
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return true
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}

// attribute walks expr's selector chain and records a mutation for
// every checked-type field it passes through.
func attribute(pass *analysis.Pass, targets []*checked, fd *ast.FuncDecl, ctorLike bool, expr ast.Expr, site ast.Node) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if named := derefNamed(pass.TypeOf(e.X)); named != nil {
				for _, t := range targets {
					if t.named != named {
						continue
					}
					if ctorLike || t.excluded[fd] {
						continue // construction/lifecycle writes are not simulation state
					}
					if _, ok := t.fields[e.Sel.Name]; ok {
						if t.mutated[e.Sel.Name] == nil {
							t.mutated[e.Sel.Name] = site
						}
					}
				}
			}
			expr = e.X
		default:
			return
		}
	}
}

func isConstructorLike(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
}

// recvNamed resolves a method declaration's receiver base type.
func recvNamed(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	return derefNamed(pass.TypeOf(fd.Recv.List[0].Type))
}

// derefNamed returns the named type behind t, unwrapping one pointer.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
