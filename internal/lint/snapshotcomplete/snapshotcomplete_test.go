package snapshotcomplete_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/snapshotcomplete"
)

func TestSnapshotComplete(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotcomplete.Analyzer, "ckptpkg")
}
