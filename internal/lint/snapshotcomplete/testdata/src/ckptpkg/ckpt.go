// Package ckptpkg is snapshotcomplete test input: structs with a
// Snapshot/Restore pair whose simulation-time mutations must all be
// serialized, rebuilt, or annotated.
package ckptpkg

// Writer/Reader stand in for the fgss codec.
type Writer struct{ buf []byte }

func (w *Writer) I64(v int64) { w.buf = append(w.buf, byte(v)) }

type Reader struct{ off int }

func (r *Reader) I64() int64 { r.off++; return 0 }

// Engine exercises the main cases: a field serialized directly, one
// serialized through a helper, a mutated field the pair forgets, a
// derived field rebuilt on restore, and an annotated survivor.
type Engine struct {
	cycles  int64
	hits    int64
	scratch []int64 // want `field scratch of Engine is mutated during simulation .* but never touched by its Snapshot/Restore pair`
	index   map[int64]int
	pool    []int64 //fglint:preserved entries are fully overwritten before reuse, so stale contents cannot desynchronize a restore
	cfg     int64   // read-only after construction: nothing to checkpoint
}

func NewEngine(cfg int64) *Engine {
	e := &Engine{index: map[int64]int{}}
	e.cfg = cfg // constructor writes are not simulation-time mutation
	return e
}

func (e *Engine) Tick() {
	e.cycles++
	e.record()
	e.scratch = append(e.scratch, e.cycles)
	e.pool = e.pool[:0]
	e.index[e.cycles] = int(e.hits)
}

func (e *Engine) record() { e.hits++ }

func (e *Engine) Snapshot(w *Writer) {
	w.I64(e.cycles)
	e.snapHits(w)
}

// snapHits is reachable from Snapshot, so hits counts as handled.
func (e *Engine) snapHits(w *Writer) { w.I64(e.hits) }

func (e *Engine) Restore(r *Reader) {
	e.cycles = r.I64()
	e.hits = r.I64()
	// The index is derived state: mentioning it here (the rebuild)
	// marks it handled.
	clear(e.index)
}

// Bank restores by whole-struct assignment: every field is handled.
type Bank struct {
	open bool
	row  uint64
}

func (b *Bank) Touch(r uint64)     { b.open, b.row = true, r }
func (b *Bank) Snapshot(w *Writer) { w.I64(int64(b.row)) }
func (b *Bank) Restore(r *Reader)  { *b = Bank{row: uint64(r.I64())} }

// Meter's annotation is missing its mandatory reason.
type Meter struct {
	//fglint:preserved
	n int // want `annotation needs a reason`
}

func (m *Meter) Bump()              { m.n++ }
func (m *Meter) Snapshot(w *Writer) {}
func (m *Meter) Restore(r *Reader)  {}

// Resettable writes a field only in its Reset: lifecycle bookkeeping,
// not simulation-time mutation, so the pair need not carry it. The
// lowercase snapshot/restore spelling is accepted too.
type Resettable struct {
	n     int64
	epoch int64
}

func (t *Resettable) Step()              { t.n++ }
func (t *Resettable) Reset()             { t.epoch++; t.n = 0 }
func (t *Resettable) snapshot(w *Writer) { w.I64(t.n) }
func (t *Resettable) restore(r *Reader)  { t.n = r.I64() }

// HalfPair declares only Snapshot — not a checkpointable type, so its
// unserialized mutation is not this check's concern.
type HalfPair struct{ n int }

func (h *HalfPair) Bump()              { h.n++ }
func (h *HalfPair) Snapshot(w *Writer) {}

// Outer mutates a field through a pointer-receiver method call; that
// counts as a write even though no assignment names the field.
type Outer struct {
	inner *Inner // want `field inner of Outer is mutated during simulation`
	gauge *Inner //fglint:preserved the gauge is serialized by its owning layer, not by Outer
}

type Inner struct{ n int }

func (i *Inner) Poke() { i.n++ }

func (o *Outer) Step() {
	o.inner.Poke()
	o.gauge.Poke()
}

func (o *Outer) Snapshot(w *Writer) {}
func (o *Outer) Restore(r *Reader)  {}
