package resetcomplete_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/resetcomplete"
)

func TestResetComplete(t *testing.T) {
	analysistest.Run(t, "testdata", resetcomplete.Analyzer, "enginepkg")
}
