// Package enginepkg is resetcomplete test input. The check applies to
// every package (Reset completeness is not a timing-path-only concern),
// so no special import path is needed.
package enginepkg

// Engine exercises the main cases: a field reset directly, a field reset
// through a helper method, a mutated field Reset forgets, and an
// annotated survivor.
type Engine struct {
	cycles  int
	hits    int
	scratch []int // want `field scratch of Engine is mutated during simulation .* but never touched by its Reset method`
	pool    []int //fglint:preserved entries are fully overwritten before reuse, so stale contents cannot leak
	cfg     int   // read-only after construction: no reset needed
}

func NewEngine(cfg int) *Engine {
	e := &Engine{}
	e.cfg = cfg // constructor writes are not simulation-time mutation
	return e
}

func (e *Engine) Tick() {
	e.cycles++
	e.record()
	e.scratch = append(e.scratch, e.cycles)
	e.pool = e.pool[:0]
}

func (e *Engine) record() { e.hits++ }

func (e *Engine) Reset() {
	e.cycles = 0
	e.clearHits()
}

// clearHits is reachable from Reset, so hits counts as handled.
func (e *Engine) clearHits() { e.hits = 0 }

// Bank resets by whole-struct assignment: every field is handled.
type Bank struct {
	open bool
	row  uint64
}

func (b *Bank) Touch(r uint64) { b.open, b.row = true, r }
func (b *Bank) Reset()         { *b = Bank{} }

// Meter's annotation is missing its mandatory reason.
type Meter struct {
	//fglint:preserved
	n int // want `annotation needs a reason`
}

func (m *Meter) Bump()  { m.n++ }
func (m *Meter) Reset() {}

// Outer mutates a field through a pointer-receiver method call; that
// counts as a write even though no assignment names the field.
type Outer struct {
	inner *Inner // want `field inner of Outer is mutated during simulation`
	gauge *Inner //fglint:preserved the gauge is reset by its owner, not by Outer
}

type Inner struct{ n int }

func (i *Inner) Poke() { i.n++ }

func (o *Outer) Step() {
	o.inner.Poke()
	o.gauge.Poke()
}

func (o *Outer) Reset() {}
