// Package nondeterm flags sources of run-to-run nondeterminism in the
// timing-path packages: wall-clock reads (time.Now, time.Since), the
// global math/rand generator, ambient process state (os.Getenv and
// friends), and fmt-printing of map values. Simulated results must be a
// pure function of sim.Config — wall-clock time and environment may only
// enter through harness and cmd, and all randomness must flow from
// seeded, run-owned generators (workload generators, stats.Reservoir).
//
// A call that provably cannot affect results (e.g. an mtime freshness
// check on a cached file read) may carry a trailing (or directly
// preceding) annotation:
//
//	//fglint:deterministic <why this cannot affect results>
package nondeterm

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the nondeterm check.
var Analyzer = &analysis.Analyzer{
	Name: "nondeterm",
	Doc: "flag wall-clock reads, global math/rand, os environment access, and fmt-printing " +
		"of maps in timing-path packages; annotate provably harmless calls with " +
		"//fglint:deterministic <reason>",
	Run: run,
}

// banned maps fully qualified package-level functions to the reason they
// are flagged.
var banned = map[string]string{
	"time.Now":     "wall-clock time",
	"time.Since":   "wall-clock time",
	"time.Until":   "wall-clock time",
	"os.Getenv":    "ambient process state",
	"os.LookupEnv": "ambient process state",
	"os.Environ":   "ambient process state",
}

// fmtPrinters are the fmt functions whose output ordering matters when
// handed a map value.
var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsTimingPath(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods are fine; the globals are the hazard
			}
			pkgPath, name := fn.Pkg().Path(), fn.Name()
			full := pkgPath + "." + name
			switch {
			case banned[full] != "":
				report(pass, call, "%s reads %s; simulation results must be a pure function "+
					"of sim.Config (only harness/cmd may observe the environment)", full, banned[full])
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !strings.HasPrefix(name, "New"):
				report(pass, call, "%s draws from the process-global generator; use a seeded, "+
					"run-owned source (rand.New, stats.Reservoir) instead", full)
			case pkgPath == "fmt" && fmtPrinters[name]:
				for _, arg := range call.Args {
					if t := pass.TypeOf(arg); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							report(pass, call, "fmt.%s formats a map argument; map formatting "+
								"order is outside the simulator's determinism contract — print "+
								"sorted keys explicitly", name)
							break
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

func report(pass *analysis.Pass, n ast.Node, format string, args ...any) {
	reason, annotated := pass.Annotation(n, analysis.MarkerDeterministic)
	if annotated {
		if reason == "" {
			pass.Reportf(n.Pos(), "//fglint:deterministic annotation needs a reason")
		}
		return
	}
	pass.Reportf(n.Pos(), format, args...)
}
