package nondeterm_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/nondeterm"
)

func TestNondeterm(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterm.Analyzer, "internal/memctrl", "internal/harness")
}
