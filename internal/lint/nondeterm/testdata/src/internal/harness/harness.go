// Package harness is outside the timing path: wall-clock use here is
// legitimate (progress reporting, timeouts) and must not be flagged.
package harness

import (
	"os"
	"time"
)

func Stamp() int64 {
	return time.Now().UnixNano()
}

func ResultDir() string {
	return os.Getenv("FGSIM_RESULTS")
}
