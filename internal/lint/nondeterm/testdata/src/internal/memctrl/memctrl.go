// Package memctrl is nondeterm test input; its import path ends in
// internal/memctrl, so the timing-path predicate applies.
package memctrl

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now reads wall-clock time`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads wall-clock time`
}

func ambient() string {
	return os.Getenv("FGSIM_SEED") // want `os.Getenv reads ambient process state`
}

func globalRand() int {
	return rand.Intn(6) // want `math/rand.Intn draws from the process-global generator`
}

func seededRand(r *rand.Rand) int {
	return r.Intn(6) // method on a run-owned generator: fine
}

func newGenerator(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors are fine
}

func printMap(m map[string]int) string {
	return fmt.Sprintf("%v", m) // want `fmt.Sprintf formats a map argument`
}

func printSorted(keys []string) string {
	return fmt.Sprint(keys)
}

func annotated() int64 {
	return time.Now().UnixNano() //fglint:deterministic progress logging cadence only, never enters a Result
}

func missingReason() int64 {
	//fglint:deterministic
	return time.Now().UnixNano() // want `annotation needs a reason`
}
