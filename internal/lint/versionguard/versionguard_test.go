package versionguard_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/versionguard"
)

const fingerprintV3 = `package sim

// EngineVersion stamps cached results.
const EngineVersion = 3
`

const fingerprintV4 = `package sim

// EngineVersion stamps cached results.
const EngineVersion = 4
`

// initRepo builds a throwaway repository with the fingerprint file, one
// timing-path file, and one non-timing file committed on main.
func initRepo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	git(t, dir, "init", "-q")
	git(t, dir, "checkout", "-q", "-b", "main")
	git(t, dir, "config", "user.email", "test@example.invalid")
	git(t, dir, "config", "user.name", "test")
	git(t, dir, "config", "commit.gpgsign", "false")
	write(t, dir, "internal/sim/fingerprint.go", fingerprintV3)
	write(t, dir, "internal/memctrl/controller.go", "package memctrl\n\nvar Policy = 1\n")
	write(t, dir, "README.md", "seed\n")
	git(t, dir, "add", "-A")
	git(t, dir, "commit", "-q", "-m", "seed")
	return dir
}

func git(t *testing.T, dir string, args ...string) {
	t.Helper()
	cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
	cmd.Env = append(os.Environ(),
		"GIT_CONFIG_GLOBAL=/dev/null", "GIT_CONFIG_SYSTEM=/dev/null",
		"GIT_AUTHOR_DATE=2026-01-01T00:00:00Z", "GIT_COMMITTER_DATE=2026-01-01T00:00:00Z")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("git %v: %v\n%s", args, err, out)
	}
}

func write(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func check(t *testing.T, dir string) []versionguard.Finding {
	t.Helper()
	fs, err := versionguard.Check(dir, "main")
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return fs
}

func TestCleanAtBase(t *testing.T) {
	dir := initRepo(t)
	if fs := check(t, dir); len(fs) != 0 {
		t.Fatalf("expected clean at base, got %v", fs)
	}
}

func TestUncommittedTimingChangeFails(t *testing.T) {
	dir := initRepo(t)
	git(t, dir, "checkout", "-q", "-b", "work")
	write(t, dir, "internal/memctrl/controller.go", "package memctrl\n\nvar Policy = 2\n")
	fs := check(t, dir)
	if len(fs) != 1 {
		t.Fatalf("expected 1 finding for uncommitted timing change, got %v", fs)
	}
	if !strings.Contains(fs[0].Message, "internal/memctrl/controller.go") ||
		!strings.Contains(fs[0].Message, "EngineVersion is still 3") {
		t.Fatalf("finding does not name the file and version: %s", fs[0].Message)
	}
}

func TestCommittedTimingChangeFails(t *testing.T) {
	dir := initRepo(t)
	git(t, dir, "checkout", "-q", "-b", "work")
	write(t, dir, "internal/memctrl/controller.go", "package memctrl\n\nvar Policy = 2\n")
	git(t, dir, "commit", "-qam", "tune policy")
	if fs := check(t, dir); len(fs) != 1 {
		t.Fatalf("expected 1 finding, got %v", fs)
	}
}

func TestVersionBumpPasses(t *testing.T) {
	dir := initRepo(t)
	git(t, dir, "checkout", "-q", "-b", "work")
	write(t, dir, "internal/memctrl/controller.go", "package memctrl\n\nvar Policy = 2\n")
	write(t, dir, "internal/sim/fingerprint.go", fingerprintV4)
	if fs := check(t, dir); len(fs) != 0 {
		t.Fatalf("expected clean after bump, got %v", fs)
	}
}

func TestEquivalenceMarkerPasses(t *testing.T) {
	dir := initRepo(t)
	git(t, dir, "checkout", "-q", "-b", "work")
	write(t, dir, "internal/memctrl/controller.go", "package memctrl\n\nvar Policy = 2\n")
	git(t, dir, "commit", "-qam", "refactor queue scan\n\nequivalence: unchanged")
	if fs := check(t, dir); len(fs) != 0 {
		t.Fatalf("expected clean with marker commit, got %v", fs)
	}
}

func TestNonTimingChangePasses(t *testing.T) {
	dir := initRepo(t)
	git(t, dir, "checkout", "-q", "-b", "work")
	write(t, dir, "README.md", "updated\n")
	write(t, dir, "internal/memctrl/controller_test.go", "package memctrl\n")
	if fs := check(t, dir); len(fs) != 0 {
		t.Fatalf("expected clean for docs and test files, got %v", fs)
	}
}

func TestUnknownRefErrors(t *testing.T) {
	dir := initRepo(t)
	if _, err := versionguard.Check(dir, "no-such-ref"); err == nil {
		t.Fatal("expected an error for an unknown base ref")
	}
}
