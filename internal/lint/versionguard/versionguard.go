// Package versionguard enforces the EngineVersion bump rule from
// ARCHITECTURE.md: any change that can alter simulated results must bump
// sim.EngineVersion, because the experiment cache keys results by
// (config fingerprint, engine version) — a result-affecting change that
// keeps the version serves stale numbers forever and no test notices.
//
// Unlike the other fglint checks this is not a per-package AST pass: it
// compares the working tree against the merge-base with a base ref
// (fglint -base <ref>). The check fails when timing-path .go files
// changed but EngineVersion did not, unless a commit in the range
// declares the change result-preserving with a line containing
//
//	equivalence: unchanged
//
// (the author's claim that TestEngineEquivalence still pins the same
// numbers — cheap to verify in review, and recorded in history).
package versionguard

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
)

// Name and Doc describe the check for fglint -list alongside the AST
// analyzers.
const (
	Name = "versionguard"
	Doc  = "with -base <ref>: fail when timing-path files changed since the merge-base " +
		"without a sim.EngineVersion bump or an \"equivalence: unchanged\" commit marker"
)

// FingerprintFile is the file (relative to the repo root) that declares
// EngineVersion.
const FingerprintFile = "internal/sim/fingerprint.go"

// Marker is the commit-message line that declares a timing-path change
// result-preserving.
const Marker = "equivalence: unchanged"

var versionRE = regexp.MustCompile(`EngineVersion\s*=\s*(\d+)`)

// Finding is one versionguard violation.
type Finding struct {
	Message string
}

// Check compares the working tree of the repository at repoRoot against
// the merge-base of baseRef and HEAD. It returns findings (nil when
// clean) and an error only when git itself fails (unknown ref, not a
// repository).
func Check(repoRoot, baseRef string) ([]Finding, error) {
	mergeBase, err := git(repoRoot, "merge-base", baseRef, "HEAD")
	if err != nil {
		return nil, fmt.Errorf("versionguard: resolving merge-base of %q and HEAD: %w", baseRef, err)
	}
	mergeBase = strings.TrimSpace(mergeBase)

	// Diff against the working tree (not HEAD) so uncommitted edits are
	// held to the same rule before they are ever committed.
	diff, err := git(repoRoot, "diff", "--name-only", mergeBase, "--", ".")
	if err != nil {
		return nil, fmt.Errorf("versionguard: diff against %s: %w", mergeBase, err)
	}
	var timingChanged []string
	for _, name := range strings.Split(diff, "\n") {
		name = strings.TrimSpace(name)
		if name == "" || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if isTimingFile(name) {
			timingChanged = append(timingChanged, name)
		}
	}
	if len(timingChanged) == 0 {
		return nil, nil
	}

	baseVersion, baseOK := versionAt(repoRoot, mergeBase)
	workVersion, workOK := versionInWorktree(repoRoot)
	if !workOK {
		return []Finding{{Message: fmt.Sprintf(
			"timing-path files changed but %s no longer declares EngineVersion", FingerprintFile)}}, nil
	}
	if !baseOK || workVersion != baseVersion {
		return nil, nil // version bumped (or newly introduced): rule satisfied
	}

	// Same version: accept an explicit equivalence claim in the range.
	log, err := git(repoRoot, "log", "--format=%B", mergeBase+"..HEAD")
	if err != nil {
		return nil, fmt.Errorf("versionguard: log %s..HEAD: %w", mergeBase, err)
	}
	if strings.Contains(log, Marker) {
		return nil, nil
	}

	return []Finding{{Message: fmt.Sprintf(
		"timing-path files changed since merge-base %s (%s) but EngineVersion is still %d; "+
			"bump sim.EngineVersion in %s if results can differ, or record \"%s\" in a commit "+
			"message if TestEngineEquivalence proves they cannot",
		short(mergeBase), strings.Join(timingChanged, ", "), workVersion, FingerprintFile, Marker)}}, nil
}

// isTimingFile reports whether a repo-relative path lies in a
// timing-path package directory (direct children only: subpackages of a
// timing path would be their own entry in TimingPathPackages).
func isTimingFile(name string) bool {
	dir := name
	if i := strings.LastIndex(name, "/"); i >= 0 {
		dir = name[:i]
	} else {
		dir = ""
	}
	for _, base := range analysis.TimingPathPackages {
		if dir == base {
			return true
		}
	}
	return false
}

// versionAt reads EngineVersion from FingerprintFile at a commit.
func versionAt(repoRoot, rev string) (int, bool) {
	out, err := git(repoRoot, "show", rev+":"+FingerprintFile)
	if err != nil {
		return 0, false
	}
	return parseVersion(out)
}

// versionInWorktree reads EngineVersion from the on-disk file — the
// version that would be committed, unstaged edits included.
func versionInWorktree(repoRoot string) (int, bool) {
	data, err := os.ReadFile(filepath.Join(repoRoot, filepath.FromSlash(FingerprintFile)))
	if err != nil {
		return 0, false
	}
	return parseVersion(string(data))
}

func parseVersion(src string) (int, bool) {
	m := versionRE.FindStringSubmatch(src)
	if m == nil {
		return 0, false
	}
	v := 0
	for _, c := range m[1] {
		v = v*10 + int(c-'0')
	}
	return v, true
}

func short(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

// git runs one git command in repoRoot and returns its stdout.
func git(repoRoot string, args ...string) (string, error) {
	cmd := exec.Command("git", append([]string{"-C", repoRoot}, args...)...)
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return "", fmt.Errorf("git %s: %v: %s", strings.Join(args, " "), err,
				strings.TrimSpace(string(ee.Stderr)))
		}
		return "", fmt.Errorf("git %s: %w", strings.Join(args, " "), err)
	}
	return string(out), nil
}
