// Package lint assembles the fglint analyzer suite: the registry of AST
// analyzers (maprange, nondeterm, resetcomplete, snapshotcomplete) plus
// a convenience runner that loads module packages and applies them. The diff-aware
// versionguard check lives in its own package and is driven separately
// (it inspects git history, not a package at a time); cmd/fglint wires
// both together.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
	"repro/internal/lint/maprange"
	"repro/internal/lint/nondeterm"
	"repro/internal/lint/resetcomplete"
	"repro/internal/lint/snapshotcomplete"
)

// Analyzers returns the AST analyzer suite in its canonical order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maprange.Analyzer,
		nondeterm.Analyzer,
		resetcomplete.Analyzer,
		snapshotcomplete.Analyzer,
	}
}

// CheckModule loads the packages matched by patterns (relative to the
// module root; "./..." style) and runs the given analyzers over them,
// returning position-sorted findings. Passing nil analyzers runs the
// whole suite.
func CheckModule(root string, analyzers []*analysis.Analyzer, patterns ...string) ([]analysis.Diag, error) {
	if analyzers == nil {
		analyzers = Analyzers()
	}
	loader, err := load.NewModuleLoader(root)
	if err != nil {
		return nil, err
	}
	normalized := make([]string, 0, len(patterns))
	for _, pat := range patterns {
		// Accept the go-command spellings "./..." and "./x" too.
		switch {
		case pat == "./...":
			pat = "..."
		default:
			pat = trimDotSlash(pat)
		}
		normalized = append(normalized, pat)
	}
	if len(normalized) == 0 {
		normalized = []string{"..."}
	}
	pkgs, err := loader.Load(normalized...)
	if err != nil {
		return nil, err
	}
	units := make([]*analysis.Unit, 0, len(pkgs))
	for _, p := range pkgs {
		units = append(units, &analysis.Unit{
			PkgPath: p.PkgPath, Fset: p.Fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info,
		})
	}
	return analysis.Run(units, analyzers)
}

func trimDotSlash(pat string) string {
	if len(pat) > 2 && pat[0] == '.' && pat[1] == '/' {
		return pat[2:]
	}
	return pat
}
