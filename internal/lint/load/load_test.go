package load_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/load"
)

// moduleRoot is the repository root, two levels above this package.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestLoadWholeModule(t *testing.T) {
	l, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("...")
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*load.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	for _, want := range []string{"repro/internal/sim", "repro/internal/memctrl", "repro/internal/lint"} {
		if byPath[want] == nil {
			t.Errorf("module load missing package %s", want)
		}
	}
	// Type information must actually be populated, not just parsed ASTs.
	sim := byPath["repro/internal/sim"]
	if sim == nil {
		t.Fatal("no repro/internal/sim")
	}
	if sim.Pkg.Scope().Lookup("System") == nil {
		t.Error("internal/sim type info lacks the System type")
	}
	if len(sim.Info.Defs) == 0 || len(sim.Info.Uses) == 0 {
		t.Error("internal/sim type info has empty Defs/Uses maps")
	}
}

func TestLoadSinglePackagePattern(t *testing.T) {
	l, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("internal/dram")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "repro/internal/dram" {
		t.Fatalf("got %d packages, want exactly repro/internal/dram", len(pkgs))
	}
}

func TestLoadBadPattern(t *testing.T) {
	l, err := load.NewModuleLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load("no/such/dir"); err == nil {
		t.Fatal("expected an error for a nonexistent pattern")
	}
}
