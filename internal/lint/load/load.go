// Package load turns Go source directories into type-checked packages
// for the fglint analyzers, using only the standard library: packages
// inside the analyzed tree are parsed and type-checked from source, and
// standard-library imports are resolved through go/importer's source
// importer against GOROOT. Nothing shells out to the go command, so
// loading works offline, inside tests, and over testdata trees that the
// go tool refuses to list.
//
// The loader is deliberately narrower than go/packages: it ignores test
// files, build tags, and cgo — none of which the analyzed tree uses —
// and it requires every non-standard import to live under the loader's
// source root (true for this module, whose only dependency is the
// standard library).
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the package's import path: module-qualified for module
	// loads ("repro/internal/sim"), root-relative for testdata loads
	// ("internal/sim").
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// Loader loads and memoizes packages over one source root.
type Loader struct {
	fset *token.FileSet
	// root is the directory paths resolve against; modulePath, when
	// non-empty, is the import-path prefix mapped onto root.
	root       string
	modulePath string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewModuleLoader builds a loader rooted at the module directory,
// reading the module path from go.mod. Import paths under the module
// path resolve to subdirectories of root; everything else must be a
// standard-library package.
func NewModuleLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("load: no module directive in %s/go.mod", root)
	}
	l := newLoader(root)
	l.modulePath = modPath
	return l, nil
}

// NewDirLoader builds a loader over a bare source tree (analysistest's
// testdata/src): every non-standard import path resolves to the
// directory of the same name under srcRoot.
func NewDirLoader(srcRoot string) *Loader {
	return newLoader(srcRoot)
}

func newLoader(root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor maps an import path to a directory under the loader's root, or
// ok=false when the path is outside the root (standard library).
func (l *Loader) dirFor(path string) (string, bool) {
	rel := path
	if l.modulePath != "" {
		if path == l.modulePath {
			rel = "."
		} else if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
			rel = rest
		} else {
			return "", false
		}
	}
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return "", false
	}
	return dir, true
}

// Load loads the packages matched by the given patterns. A pattern is a
// directory path, optionally suffixed with "/..." to include every
// package in the subtree (directories named testdata, vendor, or
// starting with "." or "_" are skipped, as the go tool does). Relative
// patterns resolve against the loader's root. Results are sorted by
// import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.root, filepath.FromSlash(pat))
		}
		fi, err := os.Stat(dir)
		if err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("load: pattern %q does not name a directory", pat)
		}
		if !recursive {
			dirs[dir] = true
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
	}

	var pkgs []*Package
	var paths []string
	for dir := range dirs {
		if !hasGoFiles(dir) {
			continue
		}
		paths = append(paths, l.pathFor(dir))
	}
	sort.Strings(paths)
	for _, path := range paths {
		p, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// pathFor is the inverse of dirFor for directories under the root.
func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	switch {
	case l.modulePath == "":
		return rel
	case rel == "":
		return l.modulePath
	default:
		return l.modulePath + "/" + rel
	}
}

func hasGoFiles(dir string) bool {
	names, err := sourceFiles(dir)
	return err == nil && len(names) > 0
}

// sourceFiles lists the non-test .go files of a directory, sorted.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// loadPackage parses and type-checks the package at the given import
// path (which must resolve under the root), memoizing the result.
func (l *Loader) loadPackage(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("load: package %q not found under %s", path, l.root)
	}
	names, err := sourceFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErr error
	conf := types.Config{
		Importer: importerFunc{l, dir},
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("load: %s: %w", path, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	p := &Package{PkgPath: path, Dir: dir, Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// importerFunc resolves imports for one package being type-checked:
// in-tree paths recurse into the loader, everything else goes to the
// GOROOT source importer.
type importerFunc struct {
	l   *Loader
	dir string
}

func (f importerFunc) Import(path string) (*types.Package, error) {
	return f.ImportFrom(path, f.dir, 0)
}

func (f importerFunc) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := f.l.dirFor(path); ok {
		p, err := f.l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return f.l.std.ImportFrom(path, dir, 0)
}
