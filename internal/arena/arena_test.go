package arena

import (
	"testing"
	"unsafe"
)

func TestSliceZeroedAndWritable(t *testing.T) {
	a := New(0)
	s := Slice[int64](a, 1000)
	if len(s) != 1000 {
		t.Fatalf("len = %d, want 1000", len(s))
	}
	for i, v := range s {
		if v != 0 {
			t.Fatalf("s[%d] = %d, want zeroed", i, v)
		}
	}
	for i := range s {
		s[i] = int64(i)
	}
	// A second allocation must not alias the first.
	s2 := Slice[int64](a, 1000)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("second slice dirty at %d: %d", i, v)
		}
	}
	for i, v := range s {
		if v != int64(i) {
			t.Fatalf("first slice clobbered at %d: %d", i, v)
		}
	}
	if got := a.TotalBytes(); got != 16000 {
		t.Fatalf("TotalBytes = %d, want 16000", got)
	}
}

func TestSliceAlignment(t *testing.T) {
	a := New(0)
	_ = Slice[bool](a, 3) // leave the bump offset misaligned
	s := Slice[int64](a, 4)
	if p := uintptr(unsafe.Pointer(&s[0])); p%unsafe.Alignof(int64(0)) != 0 {
		t.Fatalf("int64 slice misaligned: %#x", p)
	}
}

func TestGrowthAcrossChunks(t *testing.T) {
	a := New(0)
	var slices [][]uint64
	for i := 0; i < 64; i++ { // ~4 MB total: forces several chunk growths
		s := Slice[uint64](a, 8192)
		for j := range s {
			s[j] = uint64(i)<<32 | uint64(j)
		}
		slices = append(slices, s)
	}
	for i, s := range slices {
		for j, v := range s {
			if v != uint64(i)<<32|uint64(j) {
				t.Fatalf("slice %d clobbered at %d", i, j)
			}
		}
	}
}

func TestSizeHintSingleChunk(t *testing.T) {
	a := New(1 << 20)
	_ = Slice[byte](a, 1<<20)
	if len(a.retired) != 0 {
		t.Fatalf("hinted arena retired %d chunks, want 0", len(a.retired))
	}
}

func TestNilArenaFallsBack(t *testing.T) {
	s := Slice[int64](nil, 5)
	if len(s) != 5 {
		t.Fatalf("nil-arena len = %d, want 5", len(s))
	}
}

func TestPointerfulTypePanics(t *testing.T) {
	type bad struct {
		x int
		p *int
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Slice of a pointerful type did not panic")
		}
	}()
	_ = Slice[bad](New(0), 1)
}

func TestPointerFreeStructAllowed(t *testing.T) {
	type ok struct {
		a int64
		b [4]uint32
		c struct{ x, y bool }
	}
	s := Slice[ok](New(0), 7)
	if len(s) != 7 {
		t.Fatalf("len = %d", len(s))
	}
}
