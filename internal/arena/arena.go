// Package arena provides a bump allocator for the pointer-free arrays a
// simulated System is built from: cache line arrays, DRAM bank state,
// core window rings, controller per-bank registers. Carving them out of
// a few large chunks instead of one heap object each makes System
// construction a handful of allocations (the dominant cost of spinning
// up the thousands of short-lived Systems a harness matrix or gang
// warm-up creates) and gives the garbage collector nothing to scan:
// the chunks are plain byte slices, legal to alias with typed slices
// precisely because the element types contain no pointers.
//
// An Arena is single-owner and append-only: the owner allocates during
// construction, holds the arena for the lifetime of every slice carved
// from it, and never frees. There is no Reset — the simulator reuses
// constructed arrays in place across runs (System.Reset), so arena
// memory is written once per shape, not per run.
//
// The zero Arena is ready to use. A nil *Arena degrades every helper to
// the equivalent plain make, so construction paths can thread one
// optional allocator without branching at each site.
package arena

import (
	"fmt"
	"reflect"
	"unsafe"
)

const (
	// minChunk is the smallest chunk the arena grows by; doubling from
	// here keeps the chunk count logarithmic in the total footprint.
	minChunk = 64 << 10
	// maxChunk caps the growth so a huge hierarchy does not overshoot
	// its last chunk by nearly 2x.
	maxChunk = 4 << 20
)

// Arena is a growable bump allocator over pointer-free chunks.
type Arena struct {
	cur       []byte
	off       int
	retired   [][]byte // full chunks, kept alive for the slices carved from them
	nextChunk int      // size of the next chunk to grow by
	total     int      // bytes handed out (diagnostics)
}

// New returns an arena whose first chunk is pre-sized for sizeHint
// bytes, so a caller that can estimate its footprint gets exactly one
// chunk allocation. A non-positive hint defers to the default growth
// schedule.
func New(sizeHint int) *Arena {
	a := &Arena{nextChunk: minChunk}
	if sizeHint > 0 {
		a.cur = make([]byte, ceilPow2(sizeHint, minChunk))
	}
	return a
}

// TotalBytes returns the bytes allocated out of the arena so far.
func (a *Arena) TotalBytes() int {
	if a == nil {
		return 0
	}
	return a.total
}

// alloc returns a pointer to size zeroed bytes at the given alignment.
func (a *Arena) alloc(size, align int) unsafe.Pointer {
	off := (a.off + align - 1) &^ (align - 1)
	if off+size > len(a.cur) {
		a.grow(size)
		off = 0 // fresh chunks are heap allocations: aligned for any of our types
	}
	p := unsafe.Pointer(&a.cur[off])
	a.off = off + size
	a.total += size
	return p
}

// grow retires the current chunk and installs a fresh one of at least
// `size` bytes, doubling the growth schedule up to maxChunk.
func (a *Arena) grow(size int) {
	if a.cur != nil {
		a.retired = append(a.retired, a.cur)
	}
	n := a.nextChunk
	if a.nextChunk < maxChunk {
		a.nextChunk *= 2
	}
	if size > n {
		n = ceilPow2(size, minChunk)
	}
	a.cur = make([]byte, n)
	a.off = 0
}

// ceilPow2 rounds v up to a power-of-two multiple of at least min.
func ceilPow2(v, min int) int {
	n := min
	for n < v {
		n *= 2
	}
	return n
}

// Slice carves a zeroed []T of length n out of the arena. T must be
// free of pointers (no pointers, slices, maps, strings, channels,
// functions, or interfaces anywhere in it): the arena's chunks are byte
// slices the garbage collector never scans, so a pointer stored in one
// would not keep its referent alive. Violations panic at allocation
// time — they are construction-order programming errors, not run-time
// conditions.
//
// A nil arena (or n == 0) falls back to plain make, so optional-arena
// construction paths need no branching.
func Slice[T any](a *Arena, n int) []T {
	if a == nil || n <= 0 {
		return make([]T, n)
	}
	var zero T
	if t := reflect.TypeOf(zero); hasPointers(t) {
		panic(fmt.Sprintf("arena: %v contains pointers and cannot live in an arena", t))
	}
	size := int(unsafe.Sizeof(zero))
	if size == 0 {
		return make([]T, n)
	}
	p := a.alloc(n*size, int(unsafe.Alignof(zero)))
	return unsafe.Slice((*T)(p), n)
}

// hasPointers reports whether values of type t embed any pointer the
// garbage collector would need to trace.
func hasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return t.Len() > 0 && hasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		// Ptr, Slice, Map, String, Chan, Func, Interface, UnsafePointer —
		// and anything a future reflect adds — are treated as pointerful.
		return true
	}
}
