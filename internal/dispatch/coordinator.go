package dispatch

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/expcache"
)

// SpecFormatVersion identifies the dispatch protocol's wire shape.
// Workers refuse to serve a coordinator speaking another version.
const SpecFormatVersion = 1

// Spec describes the matrix a coordinator is dispatching: everything a
// worker needs to rebuild the identical job index from its own binary.
// The fingerprint list is included so the worker can verify its local
// enumeration matches the coordinator's — the cheap end-to-end check
// that catches engine, scale, or catalog drift before any simulation.
type Spec struct {
	Format int `json:"format"`
	// Engine is the coordinator's sim.EngineVersion; a worker of any
	// other generation would compute entries the coordinator rejects.
	Engine int `json:"engine"`
	// Scale of the matrix (the harness.Scale knobs, minus parallelism,
	// which is a per-machine choice).
	Insts int64 `json:"insts"`
	Apps  int   `json:"apps"`
	Mixes int   `json:"mixes"`
	MC    int   `json:"mc"`
	// Experiments are the catalog names the matrix was enumerated from.
	Experiments []string `json:"experiments"`
	// Fingerprints is the full matrix index, ascending.
	Fingerprints []string `json:"fingerprints"`
	// LeaseTTLMillis tells workers the coordinator's lease deadline, so
	// they can pick a heartbeat cadence comfortably inside it.
	LeaseTTLMillis int64 `json:"lease_ttl_millis"`
}

// Lease is one grant of work: compute these fingerprints and upload
// their entries before the deadline (or keep heartbeating to extend it).
type Lease struct {
	ID           string   `json:"id"`
	Fingerprints []string `json:"fingerprints"`
	// Done: the matrix is complete; the worker should exit.
	Done bool `json:"done"`
	// RetryMillis (with an empty fingerprint list) asks the worker to
	// poll again later: all remaining work is leased to live workers.
	RetryMillis int64 `json:"retry_millis,omitempty"`
}

// Status is a point-in-time progress snapshot.
type Status struct {
	Total    int  `json:"total"`
	Done     int  `json:"done"`
	Resumed  int  `json:"resumed"`
	Leases   int  `json:"leases"`
	Uploads  int  `json:"uploads"`
	Rejected int  `json:"rejected"`
	Complete bool `json:"complete"`
}

// Named upload-rejection errors, surfaced over HTTP as distinct status
// codes and asserted on by tests with errors.Is.
var (
	// ErrUnknownLease: the lease expired (and was re-dispatched) or never
	// existed. Heartbeats on it are pointless; uploads are still welcome.
	ErrUnknownLease = errors.New("dispatch: unknown or expired lease")
	// ErrOutsideMatrix: the fingerprint is not part of this matrix.
	ErrOutsideMatrix = errors.New("dispatch: fingerprint outside the matrix")
	// ErrConflict: a different byte sequence is already accepted for this
	// fingerprint. First writer wins; byte-level disagreement between
	// honest same-build workers is impossible (the engine is
	// deterministic), so a conflict means version or configuration drift.
	ErrConflict = errors.New("dispatch: conflicting entry already accepted")
)

// maxLeasesPerJob bounds straggler re-dispatch: an unfinished
// fingerprint may be leased to at most this many workers concurrently.
// Two is enough to route around any single straggler without letting a
// large fleet pile onto the same tail job.
const maxLeasesPerJob = 2

// Options tune a Coordinator. The zero value is usable.
type Options struct {
	// LeaseTTL is how long a lease lives between heartbeats (default 30s).
	LeaseTTL time.Duration
	// Batch is the maximum fingerprints per lease (default 4).
	Batch int
	// Manifest, when set, is written into the store's directory as soon
	// as the matrix completes (and by Close), so the finished directory
	// is self-describing the way a figbench -shard directory is.
	Manifest *expcache.Manifest
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
	// Logf, when set, receives one line per protocol event.
	Logf func(format string, args ...any)
}

type jobState struct {
	done   bool
	leases int // live leases currently covering this fingerprint
}

type lease struct {
	id       string
	worker   string
	fps      []string
	deadline time.Time
}

// Coordinator owns one fleet run over one matrix. All methods are safe
// for concurrent use (the HTTP handler calls them from many requests).
type Coordinator struct {
	spec  Spec
	store expcache.Store

	mu       sync.Mutex
	jobs     map[string]*jobState
	order    []string // matrix order: ascending fingerprints
	leases   map[string]*lease
	seq      int
	done     int
	resumed  int
	uploads  int
	rejected int
	complete chan struct{}
	opts     Options
}

// NewCoordinator builds a coordinator for spec over store, resuming from
// whatever valid entries the store already holds: each one is decoded
// with the standard entry validation and, when it belongs to the matrix,
// marked done — so a coordinator restarted over a partial cache
// directory re-dispatches only the missing fingerprints. Invalid or
// foreign files are ignored (they are recomputed and overwritten).
func NewCoordinator(spec Spec, store expcache.Store, opts Options) (*Coordinator, error) {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.Batch <= 0 {
		opts.Batch = 4
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if !sort.StringsAreSorted(spec.Fingerprints) {
		return nil, fmt.Errorf("dispatch: spec fingerprints not in ascending order")
	}
	spec.Format = SpecFormatVersion
	spec.LeaseTTLMillis = opts.LeaseTTL.Milliseconds()
	c := &Coordinator{
		spec:     spec,
		store:    store,
		jobs:     make(map[string]*jobState, len(spec.Fingerprints)),
		order:    spec.Fingerprints,
		leases:   make(map[string]*lease),
		complete: make(chan struct{}),
		opts:     opts,
	}
	for _, fp := range spec.Fingerprints {
		if c.jobs[fp] != nil {
			return nil, fmt.Errorf("dispatch: duplicate fingerprint %.12s... in spec", fp)
		}
		c.jobs[fp] = &jobState{}
	}
	have, err := store.ListEntries()
	if err != nil {
		return nil, err
	}
	for _, fp := range have {
		js := c.jobs[fp]
		if js == nil {
			continue // outside the matrix; left alone, never served
		}
		data, ok, err := store.GetEntry(fp)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if _, err := expcache.DecodeEntry(data, fp); err != nil {
			c.opts.Logf("dispatch: ignoring invalid resume entry %.12s...: %v", fp, err)
			continue // stale or corrupt: recompute
		}
		js.done = true
		c.done++
		c.resumed++
	}
	if c.resumed > 0 {
		c.opts.Logf("dispatch: resumed %d of %d jobs from the store", c.resumed, len(c.order))
	}
	if c.done == len(c.order) {
		c.finishLocked()
	}
	return c, nil
}

// Spec returns the matrix description served to workers.
func (c *Coordinator) Spec() Spec { return c.spec }

// Done is closed when every matrix fingerprint has a validated entry
// (and the final manifest, if configured, has been written).
func (c *Coordinator) Done() <-chan struct{} { return c.complete }

// Complete reports whether the matrix is done, without the lease
// bookkeeping Status performs.
func (c *Coordinator) Complete() bool {
	select {
	case <-c.complete:
		return true
	default:
		return false
	}
}

// Status reports progress.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	return Status{
		Total: len(c.order), Done: c.done, Resumed: c.resumed,
		Leases: len(c.leases), Uploads: c.uploads, Rejected: c.rejected,
		Complete: c.done == len(c.order),
	}
}

// expireLocked releases the claims of every lease past its deadline.
// Their unfinished fingerprints drop back to the pending pool simply by
// having their lease count decremented — the next Lease call picks them
// up in matrix order. Called lazily from every state-touching method, so
// no background timer is needed (and tests drive time explicitly).
func (c *Coordinator) expireLocked() {
	now := c.opts.Now()
	for id, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		for _, fp := range l.fps {
			if js := c.jobs[fp]; js != nil && !js.done {
				js.leases--
			}
		}
		delete(c.leases, id)
		c.opts.Logf("dispatch: lease %s (%s) expired; %d fingerprints back in the pool", id, l.worker, len(l.fps))
	}
}

// Lease grants up to Batch fingerprints to a worker. Unleased pending
// jobs are preferred, in matrix order; when none remain, unfinished jobs
// whose covering lease has gone quiet (no heartbeat for half the TTL)
// are re-dispatched early — straggler cover ahead of full expiry, up to
// maxLeasesPerJob concurrent claims per fingerprint. An empty, non-done
// lease means everything left is freshly claimed by live workers: poll
// again after RetryMillis.
func (c *Coordinator) Lease(worker string) Lease {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	if c.done == len(c.order) {
		return Lease{Done: true}
	}
	// fresh counts, per fingerprint, the covering leases heartbeated
	// within the last half-TTL. A healthy worker beats every TTL/3, so a
	// fingerprint with fresh claims is being actively computed and is not
	// a steal candidate; one covered only by quiet leases is.
	now := c.opts.Now()
	fresh := make(map[string]int)
	for _, l := range c.leases {
		if l.deadline.Sub(now) >= c.opts.LeaseTTL/2 {
			for _, fp := range l.fps {
				fresh[fp]++
			}
		}
	}
	var fps []string
	taken := make(map[string]bool, c.opts.Batch)
	for claims := 0; claims < maxLeasesPerJob && len(fps) < c.opts.Batch; claims++ {
		for _, fp := range c.order {
			if len(fps) == c.opts.Batch {
				break
			}
			js := c.jobs[fp]
			// taken guards the steal pass against fingerprints this same
			// call just claimed — they are not registered in c.leases yet,
			// so they would otherwise look like quiet steal candidates.
			if js.done || taken[fp] || js.leases != claims || (claims > 0 && fresh[fp] > 0) {
				continue
			}
			fps = append(fps, fp)
			taken[fp] = true
			js.leases++
		}
	}
	if len(fps) == 0 {
		return Lease{RetryMillis: c.opts.LeaseTTL.Milliseconds() / 4}
	}
	c.seq++
	l := &lease{
		id:       fmt.Sprintf("L%d", c.seq),
		worker:   worker,
		fps:      fps,
		deadline: c.opts.Now().Add(c.opts.LeaseTTL),
	}
	c.leases[l.id] = l
	c.opts.Logf("dispatch: lease %s -> %s: %d fingerprints", l.id, worker, len(fps))
	return Lease{ID: l.id, Fingerprints: fps}
}

// Heartbeat extends a lease's deadline. ErrUnknownLease reports a lease
// that expired (its work may already be re-dispatched) or never existed;
// the worker should finish and upload anyway — entries are accepted on
// their own validity, not their lease's.
func (c *Coordinator) Heartbeat(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	l, ok := c.leases[id]
	if !ok {
		return ErrUnknownLease
	}
	l.deadline = c.opts.Now().Add(c.opts.LeaseTTL)
	return nil
}

// Upload accepts one encoded result entry for fp. Validation is exactly
// the disk cache's: the bytes must decode as a current-format,
// current-engine entry whose embedded fingerprint matches fp, and fp
// must belong to the matrix. The first valid upload wins; a duplicate
// with identical bytes is acknowledged idempotently, different bytes are
// ErrConflict (kept out of the store). Leases fully covered by done
// fingerprints are retired immediately, so a finished worker's next
// Lease call reflects the new pool.
func (c *Coordinator) Upload(fp string, data []byte) error {
	if !expcache.IsFingerprintHex(fp) {
		return fmt.Errorf("%w: %.12q is not a 64-hex fingerprint", ErrOutsideMatrix, fp)
	}
	if _, err := expcache.DecodeEntry(data, fp); err != nil {
		c.reject()
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	js := c.jobs[fp]
	if js == nil {
		c.rejected++
		return fmt.Errorf("%w: %.12s...", ErrOutsideMatrix, fp)
	}
	if js.done {
		prev, ok, err := c.store.GetEntry(fp)
		if err != nil {
			return err
		}
		if ok && string(prev) == string(data) {
			c.uploads++ // duplicate of the accepted bytes: idempotent ack
			return nil
		}
		c.rejected++
		return fmt.Errorf("%w: %.12s...", ErrConflict, fp)
	}
	if err := c.store.PutEntry(fp, data); err != nil {
		return err
	}
	js.done = true
	c.done++
	c.uploads++
	c.retireCoveredLocked()
	if c.done == len(c.order) {
		c.finishLocked()
	}
	return nil
}

// reject counts a rejected upload (outside the state lock).
func (c *Coordinator) reject() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

// retireCoveredLocked drops leases whose every fingerprint is done.
func (c *Coordinator) retireCoveredLocked() {
	for id, l := range c.leases {
		covered := true
		for _, fp := range l.fps {
			if !c.jobs[fp].done {
				covered = false
				break
			}
		}
		if covered {
			delete(c.leases, id)
		}
	}
}

// finishLocked marks the matrix complete: writes the final manifest (if
// configured) and closes Done. Idempotent.
func (c *Coordinator) finishLocked() {
	select {
	case <-c.complete:
		return
	default:
	}
	if c.opts.Manifest != nil {
		if err := c.writeManifest(); err != nil {
			// The entries are all on disk and valid; a manifest write
			// failure degrades the directory to "mergeable with -force",
			// it does not un-complete the matrix.
			c.opts.Logf("dispatch: writing final manifest: %v", err)
		}
	}
	c.leases = make(map[string]*lease)
	close(c.complete)
}

// writeManifest persists the final manifest next to the entries. Only
// directory-backed stores can hold one; others are left manifest-less.
func (c *Coordinator) writeManifest() error {
	ds, ok := c.store.(*expcache.DirStore)
	if !ok {
		return fmt.Errorf("dispatch: store has no directory for a manifest")
	}
	return expcache.New(ds.Dir()).WriteManifest(c.opts.Manifest)
}
