// Package dispatch turns the manual multi-machine shard workflow
// ("figbench -shard K/N on each box, scp, figmerge") into a coordinated
// fleet: a Coordinator enumerated over the experiment matrix serves
// fingerprint leases to workers over HTTP, tracks heartbeats and
// deadlines, re-dispatches expired or straggling leases, validates
// uploaded result entries with the exact expcache decode rules the disk
// cache applies, and assembles a merged cache directory plus a final
// 1-of-1 shard manifest — so a warm figbench rerun against the
// coordinator's directory recomputes nothing and renders byte-identical
// tables to a solo run.
//
// The protocol leans on three existing invariants:
//
//   - the matrix index is canonical (harness.EnumerateJobs +
//     SortByFingerprint): coordinator and workers enumerate it
//     independently and must agree fingerprint-for-fingerprint;
//   - entries are content-addressed, self-validating, and atomic on
//     disk (expcache), so accepting an upload is decode-and-rename and
//     duplicate work from re-dispatched leases resolves first-writer-
//     wins with byte-level conflict detection;
//   - the engine is deterministic, so any two honest workers of the
//     same build produce byte-identical entries and every failure path
//     (crash, stall, duplicate, restart) converges to the same bytes.
//
// Safety under faults is exercised in-process by the chaos test
// (TestDispatchConvergesUnderFaults) via Faults, the worker-side fault
// injection hooks, and end to end by the CI dispatch job. See
// ARCHITECTURE.md "Distributed dispatch" for the lease protocol,
// re-dispatch rules, upload validation, and resume semantics.
package dispatch
