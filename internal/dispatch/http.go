package dispatch

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
)

// HTTP protocol. All bodies are JSON except entry uploads, whose body is
// the raw encoded entry (it already is a self-validating JSON envelope).
//
//	GET  /v1/spec           -> Spec
//	POST /v1/lease          {"worker":ID} -> Lease
//	POST /v1/heartbeat      {"lease":ID}  -> 204 | 410 (expired/unknown)
//	PUT  /v1/entry/{fp}     entry bytes   -> 200 {"done":bool}
//	                                         400 invalid entry
//	                                         409 conflicting bytes
//	                                         422 outside the matrix
//	GET  /v1/status         -> Status
//
// The upload response's done flag tells the finishing worker the matrix
// is complete without another lease round-trip — the coordinator may be
// gone by the time a follow-up poll would arrive.
//
// A worker treats 410 on heartbeat as "keep computing, upload anyway"
// (entries are judged on their own validity) and 409 on upload as fatal
// drift: its build disagrees byte-for-byte with an accepted entry.

// maxUploadBytes bounds an entry upload; real entries are a few KB.
const maxUploadBytes = 16 << 20

// Handler serves the dispatch protocol over c.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/spec", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, c.Spec())
	})
	mux.HandleFunc("/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Worker string `json:"worker"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, c.Lease(req.Worker))
	})
	mux.HandleFunc("/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Lease string `json:"lease"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, "bad heartbeat: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.Heartbeat(req.Lease); err != nil {
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/v1/entry/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut {
			http.Error(w, "PUT only", http.StatusMethodNotAllowed)
			return
		}
		fp := strings.TrimPrefix(r.URL.Path, "/v1/entry/")
		data, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes+1))
		if err != nil {
			http.Error(w, "reading upload: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(data) > maxUploadBytes {
			http.Error(w, "entry too large", http.StatusRequestEntityTooLarge)
			return
		}
		switch err := c.Upload(fp, data); {
		case err == nil:
			writeJSON(w, map[string]bool{"done": c.Complete()})
		case errors.Is(err, ErrConflict):
			http.Error(w, err.Error(), http.StatusConflict)
		case errors.Is(err, ErrOutsideMatrix):
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		default:
			// Entry validation failures (the named expcache.ErrEntry*
			// classes) and store I/O errors.
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, c.Status())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// An encode failure here means the client hung up mid-response; the
	// worker retries, so there is nothing to recover.
	_ = json.NewEncoder(w).Encode(v)
}
