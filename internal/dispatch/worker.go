package dispatch

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/expcache"
	"repro/internal/harness"
	"repro/internal/sim"
)

// ErrInjectedCrash is what a worker returns when its Faults told it to
// die mid-lease — the chaos tests assert on it to prove the crash
// actually happened where intended.
var ErrInjectedCrash = errors.New("dispatch: injected worker crash")

// Faults injects worker failure modes for the chaos tests. The zero
// value is a healthy worker. Faults live here, in the real client code
// path, so the failure the test injects is the failure a production
// worker would actually produce (a killed process abandons its lease
// exactly like CrashAfterUploads does: computed-but-unuploaded work is
// simply gone).
type Faults struct {
	// CrashAfterUploads > 0: return ErrInjectedCrash after that many
	// successful uploads, abandoning the rest of the current lease.
	CrashAfterUploads int
	// DropHeartbeats: never send heartbeats, so every lease this worker
	// holds expires mid-computation and is re-dispatched. The worker
	// still uploads late results — exercising the duplicate-upload path.
	DropHeartbeats bool
	// DuplicateUploads: send every entry twice (network retry double-
	// send); the second must be acknowledged idempotently.
	DuplicateUploads bool
	// StallBeforeUpload pauses before each upload — a straggler whose
	// work gets re-dispatched and finished by someone else first.
	StallBeforeUpload time.Duration
}

// WorkerOptions configure RunWorker. The zero value works.
type WorkerOptions struct {
	// ID names the worker in coordinator logs (default "worker").
	ID string
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Heartbeat overrides the cadence (default: a third of the
	// coordinator's lease TTL).
	Heartbeat time.Duration
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Logf, when set, receives one line per worker event.
	Logf func(format string, args ...any)
	// Faults injects failure modes (tests only).
	Faults Faults
}

// RunWorker serves one coordinator until its matrix is complete: fetch
// the spec, rebuild the identical job index locally (refusing to run on
// engine or matrix drift), then loop lease -> simulate -> upload. The
// worker computes through a private in-memory result cache, so gang
// execution and System reuse work exactly as in a solo figbench run.
// Returns nil when the coordinator reports the matrix done.
func RunWorker(baseURL string, opts WorkerOptions) error {
	if opts.ID == "" {
		opts.ID = "worker"
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	baseURL = strings.TrimRight(baseURL, "/")
	w := &worker{base: baseURL, opts: opts}

	spec, err := w.fetchSpec()
	if err != nil {
		return err
	}
	if spec.Format != SpecFormatVersion {
		return fmt.Errorf("dispatch: coordinator speaks protocol format %d, this worker %d", spec.Format, SpecFormatVersion)
	}
	if spec.Engine != sim.EngineVersion {
		return fmt.Errorf("dispatch: coordinator runs engine version %d, this worker %d: results would be rejected", spec.Engine, sim.EngineVersion)
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = time.Duration(spec.LeaseTTLMillis) * time.Millisecond / 3
		if opts.Heartbeat <= 0 {
			opts.Heartbeat = 10 * time.Second
		}
		w.opts.Heartbeat = opts.Heartbeat
	}

	// Rebuild the matrix locally and verify it is the coordinator's:
	// identical fingerprint lists or refuse. This is the whole-fleet
	// consistency check — engine version alone does not cover catalog or
	// scale drift, the fingerprints cover everything.
	cache := expcache.New("")
	w.runner = harness.NewRunnerWithCache(harness.Scale{
		Insts: spec.Insts, SingleApps: spec.Apps, MixesPerCategory: spec.Mixes,
		MCIterations: spec.MC, Parallelism: opts.Parallelism,
	}, cache, false)
	w.cache = cache
	_, builders, err := w.runner.SelectExperiments(spec.Experiments)
	if err != nil {
		return err
	}
	jobs, err := w.runner.EnumerateJobs(builders...)
	if err != nil {
		return fmt.Errorf("dispatch: enumerating the matrix: %w", err)
	}
	w.index = make(map[string]sim.Config, len(jobs))
	local := make([]string, len(jobs))
	for i, cfg := range jobs {
		fp := cfg.Fingerprint().String()
		local[i] = fp
		w.index[fp] = cfg
	}
	if !sort.StringsAreSorted(local) {
		return fmt.Errorf("dispatch: local enumeration not in fingerprint order")
	}
	if len(local) != len(spec.Fingerprints) {
		return fmt.Errorf("dispatch: local matrix has %d jobs, coordinator's %d: builds or scales differ", len(local), len(spec.Fingerprints))
	}
	for i := range local {
		if local[i] != spec.Fingerprints[i] {
			return fmt.Errorf("dispatch: matrix disagrees with the coordinator at index %d (%.12s... vs %.12s...): builds differ", i, local[i], spec.Fingerprints[i])
		}
	}
	opts.Logf("%s: serving %s: %d-job matrix verified", opts.ID, baseURL, len(local))

	uploads := 0
	for {
		lease, err := w.fetchLease()
		if err != nil {
			return err
		}
		if lease.Done {
			opts.Logf("%s: matrix complete", opts.ID)
			return nil
		}
		if len(lease.Fingerprints) == 0 {
			retry := time.Duration(lease.RetryMillis) * time.Millisecond
			if retry <= 0 {
				retry = time.Second
			}
			time.Sleep(retry)
			continue
		}
		done, err := w.serveLease(lease, &uploads)
		if err != nil {
			return err
		}
		if done {
			// The upload response already said the matrix is complete; a
			// follow-up lease poll could race the coordinator's exit.
			opts.Logf("%s: matrix complete", opts.ID)
			return nil
		}
	}
}

// worker carries one RunWorker invocation's state.
type worker struct {
	base   string
	opts   WorkerOptions
	runner *harness.Runner
	cache  *expcache.Cache
	index  map[string]sim.Config
}

// serveLease computes one lease's fingerprints and uploads the entries,
// heartbeating in the background while the simulations run. The bool is
// true when an upload response reported the matrix complete.
func (w *worker) serveLease(lease Lease, uploads *int) (bool, error) {
	w.opts.Logf("%s: lease %s: %d fingerprints", w.opts.ID, lease.ID, len(lease.Fingerprints))
	stop := make(chan struct{})
	defer close(stop)
	if !w.opts.Faults.DropHeartbeats {
		go w.heartbeatLoop(lease.ID, stop)
	}

	cfgs := make([]sim.Config, 0, len(lease.Fingerprints))
	for _, fp := range lease.Fingerprints {
		cfg, ok := w.index[fp]
		if !ok {
			// Cannot happen after the matrix check; refuse loudly if the
			// coordinator invents fingerprints anyway.
			return false, fmt.Errorf("dispatch: leased fingerprint %.12s... is not in the verified matrix", fp)
		}
		cfgs = append(cfgs, cfg)
	}
	// One batch run: the runner's worker pool, System reuse, and gang
	// formation all apply, exactly as in a solo figbench -shard run.
	if _, err := w.runner.RunJobs(cfgs); err != nil {
		return false, fmt.Errorf("dispatch: computing lease %s: %w", lease.ID, err)
	}
	matrixDone := false
	for _, cfg := range cfgs {
		fp := cfg.Fingerprint()
		res, ok := w.cache.Get(fp)
		if !ok {
			return false, fmt.Errorf("dispatch: computed result for %.12s... missing from the local cache", fp.String())
		}
		data, err := expcache.EncodeEntry(fp, res)
		if err != nil {
			return false, err
		}
		if d := w.opts.Faults.StallBeforeUpload; d > 0 {
			time.Sleep(d)
		}
		done, err := w.upload(fp.String(), data)
		if err != nil {
			return false, err
		}
		matrixDone = matrixDone || done
		if w.opts.Faults.DuplicateUploads {
			if _, err := w.upload(fp.String(), data); err != nil {
				return false, fmt.Errorf("dispatch: duplicate upload rejected: %w", err)
			}
		}
		*uploads++
		if n := w.opts.Faults.CrashAfterUploads; n > 0 && *uploads >= n {
			return false, ErrInjectedCrash
		}
	}
	return matrixDone, nil
}

// heartbeatLoop extends the lease until stop closes. A Gone response
// means the lease expired (the coordinator may have re-dispatched it);
// the worker keeps computing and uploads anyway — first writer wins.
func (w *worker) heartbeatLoop(leaseID string, stop <-chan struct{}) {
	t := time.NewTicker(w.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if err := w.heartbeat(leaseID); err != nil {
				w.opts.Logf("%s: heartbeat %s: %v", w.opts.ID, leaseID, err)
				return
			}
		}
	}
}

// --- HTTP plumbing ---

func (w *worker) fetchSpec() (Spec, error) {
	resp, err := w.opts.Client.Get(w.base + "/v1/spec")
	if err != nil {
		return Spec{}, fmt.Errorf("dispatch: fetching spec: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Spec{}, fmt.Errorf("dispatch: fetching spec: %s", respError(resp))
	}
	var spec Spec
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("dispatch: decoding spec: %w", err)
	}
	return spec, nil
}

// fetchLease polls for work, retrying transient connection failures a
// few times — a coordinator restarting over its partial cache directory
// comes back with the matrix state intact, so workers should ride
// through the gap rather than die on the first refused connection.
func (w *worker) fetchLease() (Lease, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 500 * time.Millisecond)
		}
		lease, err := w.fetchLeaseOnce()
		if err == nil {
			return lease, nil
		}
		lastErr = err
		w.opts.Logf("%s: %v (attempt %d)", w.opts.ID, err, attempt+1)
	}
	return Lease{}, lastErr
}

func (w *worker) fetchLeaseOnce() (Lease, error) {
	body, _ := json.Marshal(map[string]string{"worker": w.opts.ID})
	resp, err := w.opts.Client.Post(w.base+"/v1/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		return Lease{}, fmt.Errorf("dispatch: requesting lease: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Lease{}, fmt.Errorf("dispatch: requesting lease: %s", respError(resp))
	}
	var lease Lease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		return Lease{}, fmt.Errorf("dispatch: decoding lease: %w", err)
	}
	return lease, nil
}

func (w *worker) heartbeat(leaseID string) error {
	body, _ := json.Marshal(map[string]string{"lease": leaseID})
	resp, err := w.opts.Client.Post(w.base+"/v1/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return ErrUnknownLease
	}
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("heartbeat: %s", respError(resp))
	}
	return nil
}

// upload PUTs one entry; the bool reports whether the coordinator says
// the matrix is now complete. Conflict (409) is fatal — the worker's
// bytes disagree with an accepted entry, meaning build drift, and every
// further upload would conflict the same way.
func (w *worker) upload(fp string, data []byte) (bool, error) {
	req, err := http.NewRequest(http.MethodPut, w.base+"/v1/entry/"+fp, bytes.NewReader(data))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return false, fmt.Errorf("dispatch: uploading %.12s...: %w", fp, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		var ack struct {
			Done bool `json:"done"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&ack)
		return ack.Done, nil
	case http.StatusConflict:
		return false, fmt.Errorf("dispatch: uploading %.12s...: %w: %s", fp, ErrConflict, respError(resp))
	default:
		return false, fmt.Errorf("dispatch: uploading %.12s...: %s", fp, respError(resp))
	}
}

// respError renders an HTTP error response's status and trimmed body.
func respError(resp *http.Response) string {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
}
