package dispatch

import (
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/expcache"
	"repro/internal/harness"
)

// chaosScale is small enough for CI but large enough that leases, the
// short TTL, and the fault injections all overlap real computation.
var chaosScale = harness.Scale{Insts: 10_000, SingleApps: 2, MixesPerCategory: 1, MCIterations: 100, Parallelism: 2}

var chaosExperiments = []string{"table2", "fig7"}

// soloCacheDir computes the reference directory: one unsharded run of
// the experiments into a fresh cache, manifest stamped the way a
// completed fleet stamps its own. Byte-identity of the fleet directory
// against this is the test's convergence oracle.
func soloCacheDir(t *testing.T, names []string) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "solo")
	cache := expcache.New(dir)
	r := harness.NewRunnerWithCache(chaosScale, cache, false)
	_, jobs, manifest, err := BuildSpec(r, names)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunJobs(jobs); err != nil {
		t.Fatal(err)
	}
	if err := cache.WriteManifest(manifest); err != nil {
		t.Fatal(err)
	}
	return dir
}

// dirContents reads every file in dir into a map for byte comparison.
func dirContents(t *testing.T, dir string) map[string]string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(des))
	for _, de := range des {
		b, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[de.Name()] = string(b)
	}
	return out
}

func compareDirs(t *testing.T, fleetDir, soloDir string) {
	t.Helper()
	fleet, solo := dirContents(t, fleetDir), dirContents(t, soloDir)
	var names []string
	for name := range solo {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got, ok := fleet[name]
		if !ok {
			t.Errorf("fleet directory is missing %s", name)
			continue
		}
		if got != solo[name] {
			t.Errorf("%s differs between fleet and solo directories (%d vs %d bytes)", name, len(got), len(solo[name]))
		}
	}
	for name := range fleet {
		if _, ok := solo[name]; !ok {
			t.Errorf("fleet directory has extra file %s", name)
		}
	}
}

// TestDispatchConvergesUnderFaults runs a coordinator with a deliberately
// hostile in-process fleet — a crash mid-lease, a worker that never
// heartbeats, a double-sender, a straggler — and requires the merged
// directory to be byte-identical to a solo unsharded run, with a warm
// rerun over it computing nothing.
func TestDispatchConvergesUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet simulation")
	}
	fleetDir := filepath.Join(t.TempDir(), "fleet")
	planner := harness.NewRunner(chaosScale)
	spec, jobs, manifest, err := BuildSpec(planner, chaosExperiments)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, expcache.NewDirStore(fleetDir), Options{
		LeaseTTL: 500 * time.Millisecond, // expires under the dropped-heartbeat worker mid-compute
		Batch:    2,
		Manifest: manifest,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	run := func(id string, faults Faults) <-chan error {
		ch := make(chan error, 1)
		go func() {
			ch <- RunWorker(srv.URL, WorkerOptions{ID: id, Parallelism: 2, Logf: t.Logf, Faults: faults})
		}()
		return ch
	}
	crashed := run("w-crash", Faults{CrashAfterUploads: 1})
	healthy := run("w-healthy", Faults{})
	// The deaf worker also stalls past the TTL, so its leases genuinely
	// expire mid-flight and get re-dispatched — its late uploads then land
	// as idempotent acks of entries someone else already delivered.
	deaf := run("w-deaf", Faults{DropHeartbeats: true, StallBeforeUpload: 700 * time.Millisecond})
	dup := run("w-dup", Faults{DuplicateUploads: true, StallBeforeUpload: 200 * time.Millisecond})

	// The crasher must die where instructed; a replacement takes over,
	// as a restarted worker process would.
	select {
	case err := <-crashed:
		if !errors.Is(err, ErrInjectedCrash) {
			t.Fatalf("crash worker: got %v, want ErrInjectedCrash", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("crash worker did not crash")
	}
	replacement := run("w-crash2", Faults{})

	select {
	case <-coord.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("matrix did not converge; status %+v", coord.Status())
	}
	for name, ch := range map[string]<-chan error{"w-healthy": healthy, "w-deaf": deaf, "w-dup": dup, "w-crash2": replacement} {
		select {
		case err := <-ch:
			if err != nil {
				t.Errorf("%s: %v", name, err)
			}
		case <-time.After(60 * time.Second):
			t.Errorf("%s did not exit after completion", name)
		}
	}

	st := coord.Status()
	if !st.Complete || st.Done != len(jobs) {
		t.Fatalf("status after Done: %+v", st)
	}
	if st.Rejected != 0 {
		// Same-build workers are deterministic: every duplicate upload
		// must byte-match the accepted entry and be acked, not rejected.
		t.Errorf("rejected=%d: duplicate uploads from identical builds should never conflict", st.Rejected)
	}

	compareDirs(t, fleetDir, soloCacheDir(t, chaosExperiments))

	// A warm unsharded rerun over the fleet directory computes nothing.
	warm := expcache.New(fleetDir)
	wr := harness.NewRunnerWithCache(chaosScale, warm, false)
	_, wjobs, _, err := BuildSpec(wr, chaosExperiments)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wr.RunJobs(wjobs); err != nil {
		t.Fatal(err)
	}
	if cs := wr.CacheStats(); cs.Misses != 0 || cs.Stores != 0 {
		t.Fatalf("warm rerun over the fleet directory: misses=%d computed=%d, want 0/0", cs.Misses, cs.Stores)
	}
}

// TestCoordinatorRestartResume kills a fleet mid-run (worker crash, then
// coordinator shutdown) and restarts the coordinator over the partial
// directory: the finished entries must be adopted, only the rest
// re-dispatched.
func TestCoordinatorRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet simulation")
	}
	dir := filepath.Join(t.TempDir(), "fleet")
	names := []string{"table2"}
	planner := harness.NewRunner(chaosScale)
	spec, jobs, manifest, err := BuildSpec(planner, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 2 {
		t.Fatalf("restart test needs a matrix of at least 2 jobs, got %d", len(jobs))
	}

	// Incarnation one: the only worker crashes after one upload, then the
	// coordinator goes down with the matrix incomplete.
	c1, err := NewCoordinator(spec, expcache.NewDirStore(dir), Options{LeaseTTL: 2 * time.Second, Batch: 1, Manifest: manifest, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(c1.Handler())
	err = RunWorker(srv1.URL, WorkerOptions{ID: "w1", Parallelism: 2, Logf: t.Logf, Faults: Faults{CrashAfterUploads: 1}})
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("worker: got %v, want ErrInjectedCrash", err)
	}
	srv1.Close()
	if st := c1.Status(); st.Done != 1 || st.Complete {
		t.Fatalf("incarnation one should die with exactly 1 of %d jobs done, status %+v", len(jobs), st)
	}

	// Incarnation two: resumes the finished entry, dispatches the rest.
	c2, err := NewCoordinator(spec, expcache.NewDirStore(dir), Options{LeaseTTL: 2 * time.Second, Batch: 2, Manifest: manifest, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Status(); st.Resumed != 1 {
		t.Fatalf("restart resumed %d entries, want 1 (status %+v)", st.Resumed, st)
	}
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	if err := RunWorker(srv2.URL, WorkerOptions{ID: "w2", Parallelism: 2, Logf: t.Logf}); err != nil {
		t.Fatalf("replacement worker: %v", err)
	}
	select {
	case <-c2.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("restarted coordinator did not converge; status %+v", c2.Status())
	}
	compareDirs(t, dir, soloCacheDir(t, names))
}
