package dispatch

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/expcache"
	"repro/internal/sim"
)

// fakeClock drives the coordinator's lazy lease expiry explicitly.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func testOptions(clk *fakeClock, ttl time.Duration, batch int) Options {
	return Options{LeaseTTL: ttl, Batch: batch, Now: clk.Now}
}

// testMatrix builds n synthetic matrix fingerprints (ascending by
// construction) and a valid encoded entry for each.
func testMatrix(t *testing.T, n int) ([]string, map[string][]byte) {
	t.Helper()
	fps := make([]string, n)
	entries := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		var fp sim.Fingerprint
		fp[0] = byte(i + 1)
		res := sim.Result{Workload: fmt.Sprintf("job%d", i), Cycles: int64(1000 + i)}
		data, err := expcache.EncodeEntry(fp, res)
		if err != nil {
			t.Fatal(err)
		}
		fps[i] = fp.String()
		entries[fps[i]] = data
	}
	return fps, entries
}

func newTestCoordinator(t *testing.T, fps []string, opts Options) (*Coordinator, *expcache.DirStore) {
	t.Helper()
	store := expcache.NewDirStore(filepath.Join(t.TempDir(), "cache"))
	c, err := NewCoordinator(Spec{Engine: sim.EngineVersion, Fingerprints: fps}, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, store
}

func TestLeaseExpiryRedispatch(t *testing.T) {
	clk := newFakeClock()
	fps, entries := testMatrix(t, 3)
	c, _ := newTestCoordinator(t, fps, testOptions(clk, 10*time.Second, 3))

	l1 := c.Lease("w1")
	if len(l1.Fingerprints) != 3 {
		t.Fatalf("first lease got %d fingerprints, want 3", len(l1.Fingerprints))
	}
	// Everything is freshly leased: a second worker is told to retry.
	if l2 := c.Lease("w2"); len(l2.Fingerprints) != 0 || l2.Done || l2.RetryMillis <= 0 {
		t.Fatalf("second lease should be an empty retry, got %+v", l2)
	}
	// Past the deadline the lease expires and the work is re-dispatched.
	clk.Advance(11 * time.Second)
	l3 := c.Lease("w2")
	if len(l3.Fingerprints) != 3 {
		t.Fatalf("post-expiry lease got %d fingerprints, want all 3", len(l3.Fingerprints))
	}
	if err := c.Heartbeat(l1.ID); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("heartbeat on expired lease: got %v, want ErrUnknownLease", err)
	}
	// The expired worker's late upload is still welcome.
	if err := c.Upload(fps[0], entries[fps[0]]); err != nil {
		t.Fatalf("late upload after expiry: %v", err)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	clk := newFakeClock()
	fps, _ := testMatrix(t, 2)
	c, _ := newTestCoordinator(t, fps, testOptions(clk, 10*time.Second, 2))

	l := c.Lease("w1")
	for i := 0; i < 5; i++ {
		clk.Advance(8 * time.Second) // inside the TTL each time
		if err := c.Heartbeat(l.ID); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	// 40s of wall time has passed — far beyond one TTL — but the lease is
	// alive, so the pool stays empty for other workers.
	if l2 := c.Lease("w2"); len(l2.Fingerprints) != 0 {
		t.Fatalf("heartbeated lease was stolen: %+v", l2)
	}
}

func TestStragglerRedispatchQuietLeasesOnly(t *testing.T) {
	clk := newFakeClock()
	fps, _ := testMatrix(t, 2)
	c, _ := newTestCoordinator(t, fps, testOptions(clk, 12*time.Second, 2))

	l1 := c.Lease("w1")
	if len(l1.Fingerprints) != 2 {
		t.Fatalf("lease: %+v", l1)
	}
	// Fresh lease (full TTL remaining): not a steal candidate.
	if l2 := c.Lease("w2"); len(l2.Fingerprints) != 0 {
		t.Fatalf("stole from a fresh lease: %+v", l2)
	}
	// After >TTL/2 without a heartbeat the lease is quiet; a second
	// worker gets straggler cover before full expiry.
	clk.Advance(7 * time.Second)
	l3 := c.Lease("w2")
	if len(l3.Fingerprints) != 2 {
		t.Fatalf("quiet lease not re-dispatched: %+v", l3)
	}
	// maxLeasesPerJob caps the pile-on: a third worker gets nothing.
	if l4 := c.Lease("w3"); len(l4.Fingerprints) != 0 {
		t.Fatalf("third concurrent claim exceeded maxLeasesPerJob: %+v", l4)
	}
}

func TestUploadValidationAndConflicts(t *testing.T) {
	clk := newFakeClock()
	fps, entries := testMatrix(t, 2)
	c, _ := newTestCoordinator(t, fps, testOptions(clk, 10*time.Second, 2))

	if err := c.Upload("zz", entries[fps[0]]); !errors.Is(err, ErrOutsideMatrix) {
		t.Fatalf("non-hex fingerprint: got %v, want ErrOutsideMatrix", err)
	}
	if err := c.Upload(fps[0], []byte("{")); !errors.Is(err, expcache.ErrEntryUnparsable) {
		t.Fatalf("garbage upload: got %v, want ErrEntryUnparsable", err)
	}
	// A valid entry for a fingerprint outside the matrix.
	var foreign sim.Fingerprint
	foreign[0] = 0xee
	data, err := expcache.EncodeEntry(foreign, sim.Result{Workload: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Upload(foreign.String(), data); !errors.Is(err, ErrOutsideMatrix) {
		t.Fatalf("foreign upload: got %v, want ErrOutsideMatrix", err)
	}
	// Entry bytes whose embedded fingerprint disagrees with the URL's.
	if err := c.Upload(fps[1], entries[fps[0]]); !errors.Is(err, expcache.ErrEntryFingerprint) {
		t.Fatalf("mismatched upload: got %v, want ErrEntryFingerprint", err)
	}

	if err := c.Upload(fps[0], entries[fps[0]]); err != nil {
		t.Fatalf("first valid upload: %v", err)
	}
	// Identical duplicate: idempotent ack. Different bytes: conflict.
	if err := c.Upload(fps[0], entries[fps[0]]); err != nil {
		t.Fatalf("identical duplicate: %v", err)
	}
	var fp0 sim.Fingerprint
	fp0[0] = 1
	other, err := expcache.EncodeEntry(fp0, sim.Result{Workload: "job0", Cycles: 9999})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Upload(fps[0], other); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting upload: got %v, want ErrConflict", err)
	}

	st := c.Status()
	if st.Done != 1 || st.Rejected != 4 {
		t.Fatalf("status after rejections: %+v (want done=1 rejected=4)", st)
	}
	if err := c.Upload(fps[1], entries[fps[1]]); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("matrix complete but Done not closed")
	}
	if !c.Complete() {
		t.Fatal("Complete() false after Done closed")
	}
	if l := c.Lease("w1"); !l.Done {
		t.Fatalf("lease after completion should say done, got %+v", l)
	}
}

func TestResumeFromPartialStore(t *testing.T) {
	clk := newFakeClock()
	fps, entries := testMatrix(t, 3)
	dir := filepath.Join(t.TempDir(), "cache")
	store := expcache.NewDirStore(dir)
	// Pre-fill one valid entry, one corrupt one, and one foreign file.
	if err := store.PutEntry(fps[0], entries[fps[0]]); err != nil {
		t.Fatal(err)
	}
	if err := store.PutEntry(fps[1], []byte(`{"format":99}`)); err != nil {
		t.Fatal(err)
	}
	var foreign sim.Fingerprint
	foreign[0] = 0xcc
	fdata, err := expcache.EncodeEntry(foreign, sim.Result{Workload: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.PutEntry(foreign.String(), fdata); err != nil {
		t.Fatal(err)
	}

	c, err := NewCoordinator(Spec{Engine: sim.EngineVersion, Fingerprints: fps}, store, testOptions(clk, 10*time.Second, 4))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Resumed != 1 || st.Done != 1 {
		t.Fatalf("resume: %+v (want resumed=1 done=1: corrupt and foreign entries must not count)", st)
	}
	// Only the two missing fingerprints are dispatched (the corrupt one
	// is recomputed, overwriting the bad file).
	l := c.Lease("w1")
	if len(l.Fingerprints) != 2 || l.Fingerprints[0] != fps[1] || l.Fingerprints[1] != fps[2] {
		t.Fatalf("post-resume lease: %+v, want exactly [%s %s]", l, fps[1], fps[2])
	}
	for _, fp := range l.Fingerprints {
		if err := c.Upload(fp, entries[fp]); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("matrix complete after resume + uploads, Done not closed")
	}

	// A second restart over the now-complete directory is born finished.
	c2, err := NewCoordinator(Spec{Engine: sim.EngineVersion, Fingerprints: fps}, expcache.NewDirStore(dir), testOptions(clk, 10*time.Second, 4))
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Status(); !st.Complete || st.Resumed != 3 {
		t.Fatalf("restart over complete dir: %+v (want complete, resumed=3)", st)
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("complete-at-construction coordinator must close Done immediately")
	}
}
