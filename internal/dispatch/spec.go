package dispatch

import (
	"repro/internal/expcache"
	"repro/internal/harness"
	"repro/internal/sim"
)

// BuildSpec enumerates the named experiments' job matrix at the runner's
// scale (plan-only; nothing is simulated) and returns the dispatch Spec
// describing it, the canonical job list, and the final 1-of-1 manifest a
// completed fleet directory should carry. Coordinator side of the
// matrix-agreement handshake; workers rebuild the same thing from the
// Spec and compare.
func BuildSpec(r *harness.Runner, names []string) (Spec, []sim.Config, *expcache.Manifest, error) {
	names, builders, err := r.SelectExperiments(names)
	if err != nil {
		return Spec{}, nil, nil, err
	}
	jobs, err := r.EnumerateJobs(builders...)
	if err != nil {
		return Spec{}, nil, nil, err
	}
	fps := make([]string, len(jobs))
	for i, cfg := range jobs {
		fps[i] = cfg.Fingerprint().String()
	}
	scale := r.Scale()
	spec := Spec{
		Format:       SpecFormatVersion,
		Engine:       sim.EngineVersion,
		Insts:        scale.Insts,
		Apps:         scale.SingleApps,
		Mixes:        scale.MixesPerCategory,
		MC:           scale.MCIterations,
		Experiments:  names,
		Fingerprints: fps,
	}
	return spec, jobs, r.ShardManifest(jobs, 1, 1, names), nil
}
