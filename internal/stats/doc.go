// Package stats provides the small numeric and formatting helpers the
// evaluation harness uses: means, geometric means, speedups, weighted
// percentile estimation, and plain-text tables that mirror the
// rows/series of the paper's figures.
//
// It also holds Reservoir, the bounded deterministic sample reservoir
// (seeded Algorithm R) the memory controllers use for read-latency
// percentiles: full-scale runs keep O(1) memory per controller instead
// of one sample per read, and the seeding keeps any two runs of the same
// configuration bit-identical — a requirement of the fingerprint
// identity contract (equal sim fingerprints imply equal results).
//
// Table rendering is byte-deterministic on purpose: the warm-cache and
// shard-merge CI jobs diff rendered tables across process and machine
// boundaries, so formatting here must never depend on map order, time,
// or locale.
//
// Reservoir.Snapshot/Restore (snapshot.go) serialize the sample buffer
// and RNG state for the system checkpoint lifecycle, so a restored run
// reports the same percentiles an uninterrupted one would.
package stats
