package stats

import "repro/internal/fgss"

// Snapshot appends the reservoir's mutable state — observation count,
// current sample set, and generator state — to the open section. The
// capacity is configuration and comes back through Reset, not the
// snapshot.
func (r *Reservoir) Snapshot(w *fgss.Writer) {
	w.I64(r.seen)
	w.Int(len(r.items))
	for _, v := range r.items {
		w.I64(v)
	}
	w.U64(r.rng)
}

// Restore reads back what Snapshot wrote. The receiver must be built
// with the same capacity as the snapshotted reservoir; a sample count
// exceeding it is a structural mismatch and decoding stops.
func (r *Reservoir) Restore(rd *fgss.Reader) {
	r.seen = rd.I64()
	n := rd.Int()
	if n < 0 || n > r.cap {
		return
	}
	r.items = r.items[:0]
	for i := 0; i < n && rd.Err() == nil; i++ {
		r.items = append(r.items, rd.I64())
	}
	r.rng = rd.U64()
}
