// Package stats provides the small numeric and formatting helpers the
// evaluation harness uses: means, geometric means, speedups, and plain
// text tables that mirror the rows/series of the paper's figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for an empty slice; panics
// on non-positive values, which indicate a bug in the caller).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Speedup returns after/before, guarding against a zero baseline.
func Speedup(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return after / before
}

// Min and Max return the extrema of xs (0 for empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs (0 for empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Table is a plain-text table: the harness prints one per reproduced
// figure/table, with the same rows or series the paper reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Pct formats a ratio as a signed percentage ("+16.3%").
func Pct(ratio float64) string { return fmt.Sprintf("%+.1f%%", (ratio-1)*100) }

// F formats a float with the given decimals.
func F(v float64, decimals int) string { return fmt.Sprintf("%.*f", decimals, v) }
