package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for an empty slice; panics
// on non-positive values, which indicate a bug in the caller).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Speedup returns after/before, guarding against a zero baseline.
func Speedup(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return after / before
}

// Min and Max return the extrema of xs (0 for empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs (0 for empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Table is a plain-text table: the harness prints one per reproduced
// figure/table, with the same rows or series the paper reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table with aligned columns. Column widths are
// computed over the header and every row, so rows wider than the header
// stay aligned; a table without a header renders rows only (no separator).
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	ncols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		line(t.Header)
		for i := range widths {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", widths[i]))
		}
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Reservoir is a fixed-capacity, deterministic reservoir sampler over
// int64 observations (Vitter's Algorithm R driven by a seeded xorshift
// generator). It keeps a uniform sample of an unbounded stream in O(cap)
// memory with zero steady-state allocations — the replacement for
// unbounded per-observation sample slices on hot paths. Two reservoirs
// fed the same stream with the same seed hold identical samples, so
// results stay reproducible across runs and engines.
type Reservoir struct {
	cap   int
	seen  int64
	items []int64
	rng   uint64
}

// NewReservoir builds a reservoir holding at most capacity samples.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		capacity = 1
	}
	r := &Reservoir{cap: capacity, items: make([]int64, 0, capacity)}
	r.seed(seed)
	return r
}

// seed (re)initializes the deterministic generator.
func (r *Reservoir) seed(seed uint64) {
	r.rng = seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	// Zero is xorshift's fixed point: the one seed whose mix wraps to 0
	// would freeze the generator and degenerate sampling to slot 0.
	if r.rng == 0 {
		r.rng = 0x9e3779b97f4a7c15
	}
}

// Reset empties the reservoir, applies a new capacity, and re-seeds it,
// reusing the sample storage where it suffices. A reset reservoir fed
// the same stream holds the same samples as NewReservoir(capacity, seed)
// would.
func (r *Reservoir) Reset(capacity int, seed uint64) {
	if capacity <= 0 {
		capacity = 1
	}
	if capacity != r.cap {
		r.cap = capacity
		if cap(r.items) < capacity {
			r.items = make([]int64, 0, capacity)
		}
	}
	r.seen = 0
	r.items = r.items[:0]
	r.seed(seed)
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(v int64) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, v)
		return
	}
	x := r.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	if j := x % uint64(r.seen); j < uint64(len(r.items)) {
		r.items[j] = v
	}
}

// Count returns the number of observations offered so far.
func (r *Reservoir) Count() int64 { return r.seen }

// Samples returns the current sample set (at most the capacity). The
// slice aliases the reservoir's storage; callers must not modify it.
func (r *Reservoir) Samples() []int64 { return r.items }

// WeightedPercentiles estimates quantiles of one or more streams from
// uniform sample sets of them (e.g. Reservoirs), weighting each set by
// the length of the stream it represents: a sample from a set of n
// samples standing for a stream of N observations carries weight N/n.
// Concatenating capped reservoirs without these weights would count a
// lightly-used stream as heavily as a busy one. For a single set this
// degenerates to the ceil(p*n)-th order statistic. Returns nil when no
// set contributes samples.
func WeightedPercentiles(sets [][]int64, streamLens []int64, ps []float64) []int64 {
	type wv struct {
		v int64
		w float64
	}
	var items []wv
	total := 0.0
	for i, set := range sets {
		if len(set) == 0 || streamLens[i] <= 0 {
			continue
		}
		w := float64(streamLens[i]) / float64(len(set))
		for _, v := range set {
			items = append(items, wv{v, w})
		}
		total += float64(streamLens[i])
	}
	if len(items) == 0 {
		return nil
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	out := make([]int64, len(ps))
	for k, p := range ps {
		threshold := p * total
		cum := 0.0
		out[k] = items[len(items)-1].v
		for _, it := range items {
			cum += it.w
			// The epsilon absorbs float error so exact multiples (e.g.
			// p=0.5 over an even count) pick the same sample the integer
			// ceil(p*n)-1 rule would.
			if cum >= threshold-1e-9 {
				out[k] = it.v
				break
			}
		}
	}
	return out
}

// Pct formats a ratio as a signed percentage ("+16.3%").
func Pct(ratio float64) string { return fmt.Sprintf("%+.1f%%", (ratio-1)*100) }

// F formats a float with the given decimals.
func F(v float64, decimals int) string { return fmt.Sprintf("%.*f", decimals, v) }
