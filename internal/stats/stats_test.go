package stats

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %g", got)
	}
	if got := GeoMean([]float64{1, 4}); !almost(got, 2) {
		t.Errorf("GeoMean = %g, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almost(got, 2) {
		t.Errorf("GeoMean = %g, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean accepted non-positive value")
		}
	}()
	GeoMean([]float64{1, -1})
}

func TestSpeedupGuardsZero(t *testing.T) {
	if got := Speedup(0, 5); got != 0 {
		t.Errorf("Speedup(0,5) = %g", got)
	}
	if got := Speedup(2, 3); !almost(got, 1.5) {
		t.Errorf("Speedup = %g, want 1.5", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %g", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %g", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max not zero")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"name", "value"}}
	tab.AddRow("alpha", "1.00")
	tab.AddRow("a-much-longer-name", "2.50")
	tab.AddNote("note %d", 7)
	out := tab.Render()
	for _, want := range []string{"== demo ==", "name", "a-much-longer-name", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns are aligned: every data line has the value starting at the
	// same offset (line 0 = title, 1 = header, 2 = separator, 3+ = rows).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	idx1 := strings.Index(lines[3], "1.00")
	idx2 := strings.Index(lines[4], "2.50")
	if idx1 < 0 || idx2 < 0 || idx1 != idx2 {
		// alpha row pads to the longer name, so offsets must match.
		t.Errorf("columns misaligned: %d vs %d\n%s", idx1, idx2, out)
	}
}

// TestTableRenderEmptyHeader is the regression test for the empty-header
// panic: widths[min(i, len(widths)-1)] indexed -1 when Header was empty.
func TestTableRenderEmptyHeader(t *testing.T) {
	tab := &Table{Title: "headerless"}
	tab.AddRow("alpha", "1")
	tab.AddRow("beta", "2")
	out := tab.Render()
	for _, want := range []string{"== headerless ==", "alpha", "beta"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "---") {
		t.Errorf("headerless table rendered a separator:\n%s", out)
	}
}

// TestTableRenderWideRows is the regression test for rows with more
// cells than the header: the extra columns must align too, instead of
// all being padded to the last header column's width.
func TestTableRenderWideRows(t *testing.T) {
	tab := &Table{Title: "wide", Header: []string{"name"}}
	tab.AddRow("a", "x", "1.0")
	tab.AddRow("much-longer", "yy-wide-cell", "2.5")
	out := tab.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// line 0 = title, 1 = header, 2 = separator, 3+ = rows.
	i1, i2 := strings.Index(lines[3], "1.0"), strings.Index(lines[4], "2.5")
	if i1 < 0 || i2 < 0 || i1 != i2 {
		t.Errorf("extra columns misaligned (%d vs %d):\n%s", i1, i2, out)
	}
}

func TestReservoirBelowCapacityKeepsEverything(t *testing.T) {
	r := NewReservoir(8, 1)
	for i := int64(0); i < 5; i++ {
		r.Add(i * 10)
	}
	if r.Count() != 5 {
		t.Errorf("Count = %d, want 5", r.Count())
	}
	got := r.Samples()
	if len(got) != 5 {
		t.Fatalf("len(Samples) = %d, want 5", len(got))
	}
	for i, v := range got {
		if v != int64(i*10) {
			t.Errorf("sample %d = %d, want %d", i, v, i*10)
		}
	}
}

func TestReservoirBoundedAndDeterministic(t *testing.T) {
	a, b := NewReservoir(64, 7), NewReservoir(64, 7)
	other := NewReservoir(64, 8)
	for i := int64(0); i < 100_000; i++ {
		a.Add(i)
		b.Add(i)
		other.Add(i)
	}
	if len(a.Samples()) != 64 {
		t.Errorf("reservoir grew to %d samples, want 64", len(a.Samples()))
	}
	if a.Count() != 100_000 {
		t.Errorf("Count = %d, want 100000", a.Count())
	}
	if !reflect.DeepEqual(a.Samples(), b.Samples()) {
		t.Error("same seed and stream produced different samples")
	}
	if reflect.DeepEqual(a.Samples(), other.Samples()) {
		t.Error("different seeds produced identical samples (rng ignored)")
	}
}

// TestReservoirResetMatchesFresh checks the reuse contract: a Reset
// reservoir fed a stream holds exactly what NewReservoir with the same
// capacity and seed would — including when Reset changes the capacity.
func TestReservoirResetMatchesFresh(t *testing.T) {
	used := NewReservoir(64, 7)
	for i := int64(0); i < 10_000; i++ {
		used.Add(i)
	}
	for _, capacity := range []int{64, 16, 256} {
		used.Reset(capacity, 9)
		fresh := NewReservoir(capacity, 9)
		for i := int64(0); i < 10_000; i++ {
			used.Add(i + 5)
			fresh.Add(i + 5)
		}
		if !reflect.DeepEqual(used.Samples(), fresh.Samples()) {
			t.Errorf("cap %d: reset reservoir diverges from a fresh one", capacity)
		}
		if used.Count() != fresh.Count() {
			t.Errorf("cap %d: Count %d != fresh %d", capacity, used.Count(), fresh.Count())
		}
	}
}

// TestReservoirRoughlyUniform checks that late observations keep being
// admitted (Algorithm R's defining property) rather than the reservoir
// freezing on the first capacity-full prefix.
func TestReservoirRoughlyUniform(t *testing.T) {
	r := NewReservoir(128, 3)
	const n = 1 << 16
	for i := int64(0); i < n; i++ {
		r.Add(i)
	}
	late := 0
	for _, v := range r.Samples() {
		if v >= n/2 {
			late++
		}
	}
	// Expect ~64 of 128 from the stream's second half; accept a wide band.
	if late < 32 || late > 96 {
		t.Errorf("%d/128 samples from the second half, want roughly half", late)
	}
}

func TestWeightedPercentilesSingleSet(t *testing.T) {
	// A single full-coverage set degenerates to order statistics.
	set := []int64{50, 10, 40, 20, 30}
	got := WeightedPercentiles([][]int64{set}, []int64{5}, []float64{0, 0.5, 0.9, 1})
	want := []int64{10, 30, 50, 50}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("percentiles = %v, want %v", got, want)
	}
	if WeightedPercentiles([][]int64{nil}, []int64{0}, []float64{0.5}) != nil {
		t.Error("empty input did not yield nil")
	}
}

func TestWeightedPercentilesWeighsByTraffic(t *testing.T) {
	// A busy stream (100k observations behind 4 samples around 200) must
	// dominate an idle one (10 observations behind 4 samples around 50):
	// naive concatenation would put the median between the clusters.
	busy := []int64{199, 200, 201, 202}
	idle := []int64{49, 50, 51, 52}
	got := WeightedPercentiles([][]int64{busy, idle}, []int64{100_000, 10}, []float64{0.5, 0.99})
	for i, v := range got {
		if v < 199 {
			t.Errorf("percentile %d = %d, want a value from the busy stream (>=199)", i, v)
		}
	}
}

func TestPctAndF(t *testing.T) {
	if got := Pct(1.163); got != "+16.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0.95); got != "-5.0%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F(3.14159, 2); got != "3.14" {
		t.Errorf("F = %q", got)
	}
}

// Property: GeoMean of positive values lies between Min and Max.
func TestPropertyGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r%1000)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Mean is translation-equivariant.
func TestPropertyMeanTranslation(t *testing.T) {
	f := func(raw []int16, shift int16) bool {
		if len(raw) == 0 {
			return true
		}
		var xs, ys []float64
		for _, r := range raw {
			xs = append(xs, float64(r))
			ys = append(ys, float64(r)+float64(shift))
		}
		return math.Abs(Mean(ys)-Mean(xs)-float64(shift)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
