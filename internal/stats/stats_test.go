package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %g", got)
	}
	if got := GeoMean([]float64{1, 4}); !almost(got, 2) {
		t.Errorf("GeoMean = %g, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almost(got, 2) {
		t.Errorf("GeoMean = %g, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean accepted non-positive value")
		}
	}()
	GeoMean([]float64{1, -1})
}

func TestSpeedupGuardsZero(t *testing.T) {
	if got := Speedup(0, 5); got != 0 {
		t.Errorf("Speedup(0,5) = %g", got)
	}
	if got := Speedup(2, 3); !almost(got, 1.5) {
		t.Errorf("Speedup = %g, want 1.5", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %g", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %g", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max not zero")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"name", "value"}}
	tab.AddRow("alpha", "1.00")
	tab.AddRow("a-much-longer-name", "2.50")
	tab.AddNote("note %d", 7)
	out := tab.Render()
	for _, want := range []string{"== demo ==", "name", "a-much-longer-name", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns are aligned: every data line has the value starting at the
	// same offset (line 0 = title, 1 = header, 2 = separator, 3+ = rows).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	idx1 := strings.Index(lines[3], "1.00")
	idx2 := strings.Index(lines[4], "2.50")
	if idx1 < 0 || idx2 < 0 || idx1 != idx2 {
		// alpha row pads to the longer name, so offsets must match.
		t.Errorf("columns misaligned: %d vs %d\n%s", idx1, idx2, out)
	}
}

func TestPctAndF(t *testing.T) {
	if got := Pct(1.163); got != "+16.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0.95); got != "-5.0%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F(3.14159, 2); got != "3.14" {
		t.Errorf("F = %q", got)
	}
}

// Property: GeoMean of positive values lies between Min and Max.
func TestPropertyGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r%1000)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Mean is translation-equivariant.
func TestPropertyMeanTranslation(t *testing.T) {
	f := func(raw []int16, shift int16) bool {
		if len(raw) == 0 {
			return true
		}
		var xs, ys []float64
		for _, r := range raw {
			xs = append(xs, float64(r))
			ys = append(ys, float64(r)+float64(shift))
		}
		return math.Abs(Mean(ys)-Mean(xs)-float64(shift)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
