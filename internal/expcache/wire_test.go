package expcache

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestEncodeDecodeEntryRoundTrip pins the wire contract: EncodeEntry
// bytes decode back to the same result, and are byte-identical to what
// the disk cache writes — the property that makes a fleet-assembled
// cache directory diffable against a solo run's.
func TestEncodeDecodeEntryRoundTrip(t *testing.T) {
	fp := testFingerprint(17)
	want := testResult(5)
	data, err := EncodeEntry(fp, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEntry(data, fp.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the result:\n got %+v\nwant %+v", got, want)
	}

	dir := t.TempDir()
	c := New(dir)
	if err := c.Put(fp, want); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(filepath.Join(dir, fp.String()+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(disk, data) {
		t.Errorf("EncodeEntry bytes differ from the disk cache's:\n wire %s\n disk %s", data, disk)
	}
}

// TestDecodeEntryNamedErrors: every failure class carries its named
// error, assertable with errors.Is — the contract the dispatch
// coordinator's upload rejections are built on.
func TestDecodeEntryNamedErrors(t *testing.T) {
	fp := testFingerprint(18)
	valid, err := EncodeEntry(fp, testResult(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		fp   string
		want error
	}{
		{"garbage", []byte("{{{"), fp.String(), ErrEntryUnparsable},
		{"empty", nil, fp.String(), ErrEntryUnparsable},
		{"format", mutateEntry(t, valid, func(e *entry) { e.Format++ }), fp.String(), ErrEntryFormat},
		{"engine", mutateEntry(t, valid, func(e *entry) { e.Engine++ }), fp.String(), ErrEntryEngine},
		{"renamed", valid, testFingerprint(99).String(), ErrEntryFingerprint},
		// Valid stamps but no result payload: hand-crafted garbage that
		// the pre-pointer decode accepted as a zero result. Found by the
		// fuzz corpus; must be rejected, not cached.
		{"no-result", mutateEntry(t, valid, func(e *entry) { e.Result = nil }), fp.String(), ErrEntryNoResult},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeEntry(tc.data, tc.fp); !errors.Is(err, tc.want) {
				t.Errorf("DecodeEntry error = %v, want errors.Is(..., %v)", err, tc.want)
			}
		})
	}
}

// TestManifestValidateNamedErrors: manifest validation failures are
// classified by named error, including the fuzz-found case of a
// well-shaped manifest whose index holds non-fingerprint strings.
func TestManifestValidateNamedErrors(t *testing.T) {
	valid := func() *Manifest {
		fps := []string{
			testFingerprint(1).String(),
			testFingerprint(2).String(),
		}
		if fps[0] > fps[1] {
			fps[0], fps[1] = fps[1], fps[0]
		}
		m := &Manifest{
			Format: ManifestFormatVersion, Engine: sim.EngineVersion,
			Shard: 1, NumShards: 1, Fingerprints: fps,
		}
		m.Assigned = m.ExpectedAssigned()
		return m
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("reference manifest invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Manifest)
		want   error
	}{
		{"format", func(m *Manifest) { m.Format++ }, ErrManifestFormat},
		{"engine", func(m *Manifest) { m.Engine++ }, ErrManifestEngine},
		{"shard-zero", func(m *Manifest) { m.NumShards = 0 }, ErrManifestShard},
		{"shard-range", func(m *Manifest) { m.Shard = 5 }, ErrManifestShard},
		{"unsorted", func(m *Manifest) {
			m.Fingerprints[0], m.Fingerprints[1] = m.Fingerprints[1], m.Fingerprints[0]
		}, ErrManifestFingerprint},
		{"non-hex", func(m *Manifest) { m.Fingerprints[1] = "zz-not-a-fingerprint" }, ErrManifestFingerprint},
		{"short-hex", func(m *Manifest) { m.Fingerprints[1] = "abcdef" }, ErrManifestFingerprint},
		{"assignment-count", func(m *Manifest) { m.Assigned = m.Assigned[:1] }, ErrManifestAssignment},
		{"assignment-drift", func(m *Manifest) {
			m.Assigned = append([]string{}, m.Assigned...)
			m.Assigned[0] = m.Fingerprints[1]
		}, ErrManifestAssignment},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := valid()
			tc.mutate(m)
			if err := m.Validate(); !errors.Is(err, tc.want) {
				t.Errorf("Validate error = %v, want errors.Is(..., %v)", err, tc.want)
			}
		})
	}
}

// TestDirStore exercises the storage seam: puts land atomically as
// entry files a Cache can serve, list order is ascending, and malformed
// keys are rejected before touching the filesystem.
func TestDirStore(t *testing.T) {
	dir := t.TempDir()
	s := NewDirStore(dir)

	if fps, err := s.ListEntries(); err != nil || len(fps) != 0 {
		t.Fatalf("fresh store lists %v, %v", fps, err)
	}
	if _, ok, err := s.GetEntry(testFingerprint(1).String()); ok || err != nil {
		t.Fatalf("fresh store served an entry: ok=%v err=%v", ok, err)
	}

	// Puts round-trip and list in ascending fingerprint order.
	var fps []string
	for _, seed := range []uint64{7, 3} {
		fp := testFingerprint(seed)
		data, err := EncodeEntry(fp, testResult(int64(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutEntry(fp.String(), data); err != nil {
			t.Fatal(err)
		}
		fps = append(fps, fp.String())
	}
	if fps[0] > fps[1] {
		fps[0], fps[1] = fps[1], fps[0]
	}
	got, err := s.ListEntries()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fps) {
		t.Errorf("ListEntries = %v, want %v", got, fps)
	}

	// A store-written entry is a disk hit for a Cache over the same dir.
	fp := testFingerprint(7)
	c := New(dir)
	if res, ok := c.Get(fp); !ok || res.Cycles != testResult(7).Cycles {
		t.Errorf("cache over store dir missed: ok=%v res=%+v", ok, res)
	}

	// Bad keys never touch the filesystem.
	if err := s.PutEntry("../escape", []byte("x")); err == nil {
		t.Error("PutEntry accepted a non-fingerprint key")
	}
	if _, ok, err := s.GetEntry("../escape"); ok || err != nil {
		t.Errorf("GetEntry on a bad key: ok=%v err=%v", ok, err)
	}

	// Non-entry files (manifests, temp droppings) are invisible.
	if err := os.WriteFile(filepath.Join(dir, "manifest-1of1.json"), []byte("{}"), 0o666); err != nil {
		t.Fatal(err)
	}
	got, err = s.ListEntries()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fps) {
		t.Errorf("ListEntries after manifest write = %v, want %v", got, fps)
	}
}
