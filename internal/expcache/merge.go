package expcache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// MergeReport describes what a Merge found and did. All slices are
// sorted, so reports (and tests over them) are deterministic.
type MergeReport struct {
	Srcs      int // source directories scanned
	Manifests int // distinct shard manifests kept
	NumShards int // total shards the manifests describe (0: none found)
	Matrix    int // full matrix size (distinct fingerprints)

	ShardsPresent []int
	MissingShards []int

	Entries int // distinct valid entries discovered across sources
	Written int // files written into the destination

	Missing             []string // assigned to a present shard, but no entry
	Extra               []string // valid entries outside the matrix
	Conflicts           []string // same fingerprint, different result bytes
	Corrupt             []string // unreadable or invalid entry files
	BadManifests        []string // unreadable or invalid manifest files
	MismatchedManifests []string // manifests of a different matrix
}

// Problems returns human-readable lines for every condition that makes
// the merge unsafe; empty means the merge is clean and complete.
func (r *MergeReport) Problems() []string {
	var out []string
	add := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }
	if r.Manifests == 0 {
		add("no shard manifests found: cannot validate coverage")
	}
	for _, s := range r.BadManifests {
		add("bad manifest: %s", s)
	}
	for _, s := range r.MismatchedManifests {
		add("manifest from a different matrix: %s", s)
	}
	if len(r.MissingShards) > 0 {
		add("missing shards: %v of %d", r.MissingShards, r.NumShards)
	}
	for _, s := range r.Missing {
		add("missing entry: %.12s...", s)
	}
	for _, s := range r.Extra {
		add("entry outside the matrix: %.12s...", s)
	}
	for _, s := range r.Conflicts {
		add("conflicting entries: %.12s...", s)
	}
	for _, s := range r.Corrupt {
		add("corrupt entry: %s", s)
	}
	return out
}

// Summary returns a one-line account of the merge for logs.
func (r *MergeReport) Summary() string {
	return fmt.Sprintf("%d srcs: shards %v of %d, %d/%d entries, %d manifests, %d files written",
		r.Srcs, r.ShardsPresent, r.NumShards, r.Entries, r.Matrix, r.Manifests, r.Written)
}

// mergedFile is one deduplicated file chosen for the destination.
type mergedFile struct {
	name string
	data []byte
}

// Merge combines the result entries and shard manifests of several cache
// directories into dst, validating everything first:
//
//   - every entry must parse, carry the current engine and format
//     stamps, and match its filename's fingerprint;
//   - all manifests must describe the same matrix (same shard count and
//     fingerprint list); the union of their shards should cover it;
//   - every fingerprint assigned to a present shard must have an entry,
//     no entry may fall outside the matrix, and two sources must not
//     disagree on an entry's bytes (the engine is deterministic, so
//     byte-level disagreement means version or configuration drift).
//
// When any of that fails and force is false, Merge reports the problems
// and writes nothing. With force, the merge proceeds on a first-source-
// wins basis: corrupt files and mismatched manifests are skipped,
// conflicting entries keep the earliest source's bytes, and missing
// pieces stay missing (a warm figbench run against the result simply
// recomputes them) — which is also how partial, incremental merges are
// done deliberately.
//
// dst may be one of the sources. Writes are atomic per file.
func Merge(dst string, srcs []string, force bool) (*MergeReport, error) {
	rep, entries, order, manifestFiles, err := collect(srcs)
	if err != nil {
		return rep, err
	}
	if problems := rep.Problems(); len(problems) > 0 && !force {
		return rep, fmt.Errorf("expcache: unsafe merge (%d problems, use force to override):\n  %s",
			len(problems), strings.Join(problems, "\n  "))
	}

	// Write phase: everything validated (or forced).
	sort.Strings(order)
	for _, fp := range order {
		f := entries[fp]
		if err := writeFileAtomic(dst, f.name, f.data); err != nil {
			return rep, fmt.Errorf("expcache: %w", err)
		}
		rep.Written++
	}
	sort.Slice(manifestFiles, func(i, j int) bool { return manifestFiles[i].name < manifestFiles[j].name })
	for _, f := range manifestFiles {
		if err := writeFileAtomic(dst, f.name, f.data); err != nil {
			return rep, fmt.Errorf("expcache: %w", err)
		}
		rep.Written++
	}
	return rep, nil
}

// Validate runs the full merge validation over srcs without writing
// anything; problems are reported via MergeReport.Problems. The error is
// non-nil only for I/O failures.
func Validate(srcs []string) (*MergeReport, error) {
	rep, _, _, _, err := collect(srcs)
	return rep, err
}

// collect is the read-and-validate phase shared by Merge and Validate.
func collect(srcs []string) (rep *MergeReport, entries map[string]mergedFile, order []string, manifestFiles []mergedFile, err error) {
	rep = &MergeReport{Srcs: len(srcs)}

	// One pass over each source: classify every file as shard manifest
	// or result entry by name. The first valid manifest (sources in
	// argument order, files in directory order) anchors the matrix; for
	// entries the first source wins and later byte-level disagreement is
	// a conflict.
	var ref *Manifest
	manifests := map[int]*Manifest{} // shard -> kept manifest
	entries = map[string]mergedFile{}
	for _, src := range srcs {
		des, err := os.ReadDir(src)
		if err != nil {
			return rep, nil, nil, nil, fmt.Errorf("expcache: %w", err)
		}
		for _, de := range des {
			name := de.Name()
			if de.IsDir() {
				continue
			}
			switch {
			case isManifestName(name):
				path := filepath.Join(src, name)
				data, err := os.ReadFile(path)
				if err != nil {
					rep.BadManifests = append(rep.BadManifests, path+": "+err.Error())
					continue
				}
				var m Manifest
				if err := json.Unmarshal(data, &m); err != nil {
					rep.BadManifests = append(rep.BadManifests, path+": "+err.Error())
					continue
				}
				if err := m.Validate(); err != nil {
					rep.BadManifests = append(rep.BadManifests, path+": "+err.Error())
					continue
				}
				if ref == nil {
					ref = &m
				} else if !sameMatrix(ref, &m) {
					rep.MismatchedManifests = append(rep.MismatchedManifests, path)
					continue
				}
				if manifests[m.Shard] == nil {
					manifests[m.Shard] = &m
					manifestFiles = append(manifestFiles, mergedFile{name: name, data: data})
				}
			case isEntryName(name):
				path := filepath.Join(src, name)
				data, err := os.ReadFile(path)
				if err != nil {
					rep.Corrupt = append(rep.Corrupt, path+": "+err.Error())
					continue
				}
				fp := name[:len(name)-len(".json")]
				if _, err := decodeEntry(data, fp); err != nil {
					rep.Corrupt = append(rep.Corrupt, path+": "+err.Error())
					continue
				}
				if prev, ok := entries[fp]; ok {
					if !bytes.Equal(prev.data, data) {
						rep.Conflicts = append(rep.Conflicts, fp)
					}
					continue
				}
				entries[fp] = mergedFile{name: name, data: data}
				order = append(order, fp)
			}
		}
	}
	rep.Manifests = len(manifests)
	rep.Entries = len(entries)
	if ref != nil {
		rep.NumShards = ref.NumShards
		rep.Matrix = len(ref.Fingerprints)
	}

	// Coverage against the union of manifests.
	if ref != nil {
		inMatrix := make(map[string]bool, len(ref.Fingerprints))
		for _, fp := range ref.Fingerprints {
			inMatrix[fp] = true
		}
		for s := 1; s <= ref.NumShards; s++ {
			if manifests[s] != nil {
				rep.ShardsPresent = append(rep.ShardsPresent, s)
			} else {
				rep.MissingShards = append(rep.MissingShards, s)
			}
		}
		for s := 1; s <= ref.NumShards; s++ {
			m := manifests[s]
			if m == nil {
				continue
			}
			for _, fp := range m.Assigned {
				if _, ok := entries[fp]; !ok {
					rep.Missing = append(rep.Missing, fp)
				}
			}
		}
		for _, fp := range order {
			if !inMatrix[fp] {
				rep.Extra = append(rep.Extra, fp)
			}
		}
	}
	sort.Strings(rep.Missing)
	sort.Strings(rep.Extra)
	sort.Strings(rep.Conflicts)
	sort.Strings(rep.Corrupt)
	sort.Strings(rep.BadManifests)
	sort.Strings(rep.MismatchedManifests)
	return rep, entries, order, manifestFiles, nil
}

// sameMatrix reports whether two manifests describe the same experiment
// matrix: identical shard split and identical fingerprint list.
func sameMatrix(a, b *Manifest) bool {
	if a.NumShards != b.NumShards || len(a.Fingerprints) != len(b.Fingerprints) {
		return false
	}
	for i := range a.Fingerprints {
		if a.Fingerprints[i] != b.Fingerprints[i] {
			return false
		}
	}
	return true
}
