package expcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testResult builds a distinguishable result with non-trivial floats, so
// round-trip comparisons exercise exact float64 encoding.
func testResult(tag int64) sim.Result {
	return sim.Result{
		Preset:   sim.FIGCacheFast,
		Workload: "mcf",
		Cycles:   1_234_567 + tag,
		Cores: []sim.CoreResult{
			{App: "mcf", IPC: 1.0 / 3.0, Insts: 200_000, FinishedAt: 1_234_000 + tag},
		},
		DRAM:             dram.Stats{ACT: 42, RowHits: 7, RelocBusy: 99},
		CacheHits:        11,
		CacheMisses:      13,
		AvgReadLatencyNS: 73.728,
		TotalInsts:       200_000,
	}
}

// resultPtr adapts a result to the entry envelope's pointer field.
func resultPtr(r sim.Result) *sim.Result { return &r }

func testFingerprint(seed uint64) sim.Fingerprint {
	spec, err := workload.ByName("mcf")
	if err != nil {
		panic(err)
	}
	cfg := sim.DefaultConfig(sim.FIGCacheFast, workload.Mix{Name: "mcf", Apps: workload.Sources(spec)})
	cfg.Seed = seed
	return cfg.Fingerprint()
}

func TestMemoryRoundTrip(t *testing.T) {
	c := New("")
	fp := testFingerprint(1)
	if _, ok := c.Get(fp); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := testResult(0)
	if err := c.Put(fp, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(fp)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Errorf("memory round-trip mismatch (ok=%v):\n got %+v\nwant %+v", ok, got, want)
	}
	st := c.Stats()
	if st.MemHits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Errorf("stats = %+v, want 1 mem hit, 1 miss, 1 store", st)
	}
}

func TestDiskRoundTripExact(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint(2)
	want := testResult(5)
	if err := New(dir).Put(fp, want); err != nil {
		t.Fatal(err)
	}
	// A fresh Cache over the same directory (a later process) must serve
	// the exact same Result, floats bit-for-bit.
	c2 := New(dir)
	got, ok := c2.Get(fp)
	if !ok {
		t.Fatal("persisted entry missed by a fresh cache")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("disk round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Errorf("stats = %+v, want 1 disk hit", st)
	}
	// Promotion: the second Get is a memory hit.
	if _, ok := c2.Get(fp); !ok {
		t.Fatal("promoted entry missed")
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Errorf("stats = %+v, want 1 mem hit after promotion", st)
	}
}

// TestCorruptEntriesAreMisses verifies the defensive-read contract: every
// way a disk entry can be unusable is a recomputable miss, not an error.
func TestCorruptEntriesAreMisses(t *testing.T) {
	fp := testFingerprint(3)
	valid, err := json.Marshal(entry{
		Format: FormatVersion, Engine: sim.EngineVersion,
		Fingerprint: fp.String(), Result: resultPtr(testResult(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("not json at all {{{")},
		{"truncated", valid[:len(valid)/2]},
		{"empty", nil},
		{"format-bump", mutateEntry(t, valid, func(e *entry) { e.Format++ })},
		{"engine-bump", mutateEntry(t, valid, func(e *entry) { e.Engine++ })},
		{"renamed", mutateEntry(t, valid, func(e *entry) { e.Fingerprint = testFingerprint(99).String() })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c := New(dir)
			if err := os.WriteFile(c.path(fp), tc.data, 0o666); err != nil {
				t.Fatal(err)
			}
			if res, ok := c.Get(fp); ok {
				t.Errorf("unusable entry served as a hit: %+v", res)
			}
			if st := c.Stats(); st.Misses != 1 || st.DiskHits != 0 {
				t.Errorf("stats = %+v, want exactly one miss", st)
			}
			// The rewrite path must recover: Put then Get round-trips.
			want := testResult(2)
			if err := c.Put(fp, want); err != nil {
				t.Fatal(err)
			}
			got, ok := New(dir).Get(fp)
			if !ok || !reflect.DeepEqual(got, want) {
				t.Errorf("rewrite after corruption did not recover (ok=%v)", ok)
			}
		})
	}
}

func mutateEntry(t *testing.T, valid []byte, mutate func(*entry)) []byte {
	t.Helper()
	var e entry
	if err := json.Unmarshal(valid, &e); err != nil {
		t.Fatal(err)
	}
	mutate(&e)
	out, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestConcurrentWritersSameFingerprint hammers one fingerprint from many
// goroutines (all writing the same result, as racing simulation workers
// of the same run would) while readers validate every observation.
func TestConcurrentWritersSameFingerprint(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint(4)
	want := testResult(7)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := New(dir)
			for i := 0; i < 50; i++ {
				if err := c.Put(fp, want); err != nil {
					t.Errorf("concurrent Put: %v", err)
					return
				}
				if got, ok := New(dir).Get(fp); ok && !reflect.DeepEqual(got, want) {
					t.Errorf("reader observed a mangled entry: %+v", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, ok := New(dir).Get(fp)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("final entry unusable after concurrent writes (ok=%v)", ok)
	}
	// No temp-file droppings left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Errorf("cache dir holds %d files, want 1: %v", len(ents), names)
	}
}

// TestVersionStampInvalidates checks both layers of the versioning
// contract: the fingerprint itself moves when the engine version moves
// (so old entries are simply never addressed), and a forged entry at the
// right path with a stale engine stamp is still rejected.
func TestVersionStampInvalidates(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint(5)
	c := New(dir)
	if err := c.Put(fp, testResult(3)); err != nil {
		t.Fatal(err)
	}
	// Simulate "the entry was written by engine N-1": rewrite in place
	// with a decremented stamp, as a pre-bump binary would have left it.
	data, err := os.ReadFile(c.path(fp))
	if err != nil {
		t.Fatal(err)
	}
	stale := mutateEntry(t, data, func(e *entry) { e.Engine = sim.EngineVersion - 1 })
	if err := os.WriteFile(c.path(fp), stale, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := New(dir).Get(fp); ok {
		t.Error("stale-engine entry served as a hit")
	}
}

func TestReadOnlyDirDegradesToMemory(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	c := New(filepath.Join(dir, "sub"))
	fp := testFingerprint(6)
	want := testResult(9)
	if err := c.Put(fp, want); err == nil {
		t.Error("Put to an unwritable directory reported no error")
	}
	if got, ok := c.Get(fp); !ok || !reflect.DeepEqual(got, want) {
		t.Errorf("in-memory tier lost the result after a disk failure (ok=%v)", ok)
	}
	if st := c.Stats(); st.DiskError != 1 {
		t.Errorf("stats = %+v, want 1 disk error", st)
	}
}

// TestDistinctFingerprintsDistinctFiles guards the content addressing:
// different seeds produce different fingerprints and independent entries.
func TestDistinctFingerprintsDistinctFiles(t *testing.T) {
	dir := t.TempDir()
	c := New(dir)
	var fps []sim.Fingerprint
	for s := uint64(1); s <= 3; s++ {
		fp := testFingerprint(s)
		fps = append(fps, fp)
		if err := c.Put(fp, testResult(int64(s))); err != nil {
			t.Fatal(err)
		}
	}
	for i, fp := range fps {
		for j := i + 1; j < len(fps); j++ {
			if fp == fps[j] {
				t.Fatalf("seeds %d and %d share a fingerprint", i+1, j+1)
			}
		}
		got, ok := New(dir).Get(fp)
		if !ok || got.Cycles != testResult(int64(i+1)).Cycles {
			t.Errorf("entry %d mismatched (ok=%v): %+v", i, ok, got)
		}
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 3 {
		t.Errorf("cache dir holds %d files, want 3", len(ents))
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".json" {
			t.Errorf("unexpected file %s", e.Name())
		}
	}
}
