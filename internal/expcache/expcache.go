package expcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/sim"
)

// FormatVersion identifies the on-disk envelope layout. Bump it when the
// envelope itself changes shape; entries with any other format are
// misses. (Result-affecting engine changes are handled by
// sim.EngineVersion via the fingerprint, not by this constant.)
const FormatVersion = 1

// entry is the on-disk envelope around one cached result. Fingerprint and
// Engine are redundant with the filename and the fingerprint's contents;
// they are stored anyway so a renamed or hand-edited file cannot
// impersonate another run's result. Result is a pointer so a decode can
// tell an absent result apart from a zero one: an envelope with valid
// stamps but no "result" key is hand-crafted garbage, not a cached run.
type entry struct {
	Format      int         `json:"format"`
	Engine      int         `json:"engine"`
	Fingerprint string      `json:"fingerprint"`
	Result      *sim.Result `json:"result"`
}

// Named entry-decode errors. Every way an entry can be unusable has its
// own identity so callers (and tests) can assert on the failure class
// with errors.Is instead of matching message text; the wrapped message
// still carries the specifics. The fuzz corpus drove these out of the
// former ad-hoc fmt.Errorf calls: a dispatch coordinator rejecting an
// upload needs to say *why* in a way a worker can act on.
var (
	// ErrEntryUnparsable: the bytes are not a JSON entry envelope.
	ErrEntryUnparsable = errors.New("unparsable entry")
	// ErrEntryFormat: the envelope's format stamp is not FormatVersion.
	ErrEntryFormat = errors.New("entry format mismatch")
	// ErrEntryEngine: the entry was computed by a different engine
	// generation; its result is not comparable to this build's.
	ErrEntryEngine = errors.New("entry engine mismatch")
	// ErrEntryFingerprint: the envelope's fingerprint does not match the
	// one its filename (or upload path) claims — a renamed file.
	ErrEntryFingerprint = errors.New("entry fingerprint mismatch")
	// ErrEntryNoResult: valid stamps but no result payload.
	ErrEntryNoResult = errors.New("entry missing result")
)

// Stats counts cache traffic. Hits split by the tier that served them;
// Misses are lookups that found nothing usable and will be computed.
type Stats struct {
	MemHits   int64
	DiskHits  int64
	Misses    int64
	Stores    int64
	DiskError int64 // failed disk writes (best-effort; results stay in memory)
}

// Hits returns the total lookups served without simulation.
func (s Stats) Hits() int64 { return s.MemHits + s.DiskHits }

// Cache is a two-tier result cache. The zero value is not usable; use New.
// All methods are safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	mem   map[sim.Fingerprint]sim.Result
	dir   string // "" = in-memory only
	stats Stats
}

// New builds a cache. dir, when non-empty, is the persistent store
// directory (created on first write); empty selects in-memory only.
func New(dir string) *Cache {
	return &Cache{mem: make(map[sim.Fingerprint]sim.Result), dir: dir}
}

// Dir returns the persistent store directory ("" when in-memory only).
func (c *Cache) Dir() string { return c.dir }

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Get looks up fp in memory, then on disk. A disk hit is promoted into
// memory. Unusable disk entries count as misses.
func (c *Cache) Get(fp sim.Fingerprint) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if res, ok := c.mem[fp]; ok {
		c.stats.MemHits++
		return res, true
	}
	if res, ok := c.readDisk(fp); ok {
		c.mem[fp] = res
		c.stats.DiskHits++
		return res, true
	}
	c.stats.Misses++
	return sim.Result{}, false
}

// GetMem looks up fp in the in-memory tier only. -force reruns use it:
// results computed earlier in the same process are still deduplicated,
// while stale disk entries are ignored (and overwritten by the
// subsequent Put).
func (c *Cache) GetMem(fp sim.Fingerprint) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if res, ok := c.mem[fp]; ok {
		c.stats.MemHits++
		return res, true
	}
	c.stats.Misses++
	return sim.Result{}, false
}

// Put stores a computed result in memory and, when a directory is
// configured, on disk. Disk failures are recorded in Stats and returned,
// but the in-memory tier is always updated — a read-only cache directory
// degrades to per-process caching, not to an error loop.
func (c *Cache) Put(fp sim.Fingerprint, res sim.Result) error {
	c.mu.Lock()
	c.mem[fp] = res
	c.stats.Stores++
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	if err := c.writeDisk(fp, res); err != nil {
		c.mu.Lock()
		c.stats.DiskError++
		c.mu.Unlock()
		return fmt.Errorf("expcache: %w", err)
	}
	return nil
}

// path returns the content-addressed file name for fp.
func (c *Cache) path(fp sim.Fingerprint) string {
	return filepath.Join(c.dir, fp.String()+".json")
}

// decodeEntry parses and validates one on-disk envelope against the
// fingerprint its filename claims. Any defect — unparsable JSON, foreign
// format, stale engine, or a fingerprint mismatch (renamed file) — is an
// error; Cache reads map it to a miss, figmerge reports it as corruption.
func decodeEntry(data []byte, fp string) (entry, error) {
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return entry{}, fmt.Errorf("%w: %w", ErrEntryUnparsable, err)
	}
	switch {
	case e.Format != FormatVersion:
		return entry{}, fmt.Errorf("%w: format %d, want %d", ErrEntryFormat, e.Format, FormatVersion)
	case e.Engine != sim.EngineVersion:
		return entry{}, fmt.Errorf("%w: engine %d, want %d", ErrEntryEngine, e.Engine, sim.EngineVersion)
	case e.Fingerprint != fp:
		return entry{}, fmt.Errorf("%w: entry is %.12s..., filename claims %.12s...", ErrEntryFingerprint, e.Fingerprint, fp)
	case e.Result == nil:
		return entry{}, fmt.Errorf("%w: valid stamps but no result payload", ErrEntryNoResult)
	}
	return e, nil
}

// DecodeEntry validates encoded entry bytes against the fingerprint they
// claim to belong to and returns the result they carry. It is the wire-
// side twin of the disk read path (both run the same validation), so an
// entry uploaded to a dispatch coordinator is held to exactly the rules
// a local cache read applies. Failures wrap the named ErrEntry* errors.
func DecodeEntry(data []byte, fp string) (sim.Result, error) {
	e, err := decodeEntry(data, fp)
	if err != nil {
		return sim.Result{}, fmt.Errorf("expcache: %w", err)
	}
	return *e.Result, nil
}

// EncodeEntry renders one result as entry-envelope bytes — the exact
// bytes writeDisk persists, so an entry computed on a worker, shipped
// over the wire, and written by the coordinator is byte-identical to one
// the same build would have written locally. That identity is what makes
// fleet cache dirs diffable against solo runs.
func EncodeEntry(fp sim.Fingerprint, res sim.Result) ([]byte, error) {
	return json.Marshal(entry{
		Format:      FormatVersion,
		Engine:      sim.EngineVersion,
		Fingerprint: fp.String(),
		Result:      &res,
	})
}

// readDisk loads and validates one entry; any defect is (zero, false).
// Caller holds c.mu (the read itself races only with atomic renames, so
// holding the lock just keeps the stats consistent).
func (c *Cache) readDisk(fp sim.Fingerprint) (sim.Result, bool) {
	if c.dir == "" {
		return sim.Result{}, false
	}
	data, err := os.ReadFile(c.path(fp))
	if err != nil {
		return sim.Result{}, false
	}
	e, err := decodeEntry(data, fp.String())
	if err != nil {
		return sim.Result{}, false // corrupt, stale, or renamed: recompute
	}
	return *e.Result, true
}

// writeFileAtomic writes data to dir/name via a temp file in the same
// directory plus a rename, creating dir as needed. Concurrent writers of
// the same name each rename a complete file, so readers never observe a
// partial one.
func writeFileAtomic(dir, name string, data []byte) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// writeDisk atomically persists one entry.
func (c *Cache) writeDisk(fp sim.Fingerprint, res sim.Result) error {
	data, err := EncodeEntry(fp, res)
	if err != nil {
		return err
	}
	return writeFileAtomic(c.dir, fp.String()+".json", data)
}
