// Package expcache is the experiment-result cache behind the harness: a
// two-tier store of sim.Results keyed by sim.Fingerprint. Tier one is an
// in-process map (shared-run dedup within one figbench/test invocation);
// tier two is an optional content-addressed on-disk store that makes
// full-matrix reruns incremental — a rerun after a code change only
// recomputes runs whose fingerprint (which folds in sim.EngineVersion)
// changed.
//
// Disk entries are versioned JSON envelopes named <fingerprint>.json.
// Reads are defensive: a corrupt, truncated, foreign-format, or
// stale-engine file is a miss, never an error — the run is simply
// recomputed and the entry rewritten. Writes are atomic (temp file +
// rename), so concurrent writers of the same fingerprint — racing
// processes, or racing workers of one process — land one complete entry.
package expcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/sim"
)

// FormatVersion identifies the on-disk envelope layout. Bump it when the
// envelope itself changes shape; entries with any other format are
// misses. (Result-affecting engine changes are handled by
// sim.EngineVersion via the fingerprint, not by this constant.)
const FormatVersion = 1

// entry is the on-disk envelope around one cached result. Fingerprint and
// Engine are redundant with the filename and the fingerprint's contents;
// they are stored anyway so a renamed or hand-edited file cannot
// impersonate another run's result.
type entry struct {
	Format      int        `json:"format"`
	Engine      int        `json:"engine"`
	Fingerprint string     `json:"fingerprint"`
	Result      sim.Result `json:"result"`
}

// Stats counts cache traffic. Hits split by the tier that served them;
// Misses are lookups that found nothing usable and will be computed.
type Stats struct {
	MemHits   int64
	DiskHits  int64
	Misses    int64
	Stores    int64
	DiskError int64 // failed disk writes (best-effort; results stay in memory)
}

// Hits returns the total lookups served without simulation.
func (s Stats) Hits() int64 { return s.MemHits + s.DiskHits }

// Cache is a two-tier result cache. The zero value is not usable; use New.
// All methods are safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	mem   map[sim.Fingerprint]sim.Result
	dir   string // "" = in-memory only
	stats Stats
}

// New builds a cache. dir, when non-empty, is the persistent store
// directory (created on first write); empty selects in-memory only.
func New(dir string) *Cache {
	return &Cache{mem: make(map[sim.Fingerprint]sim.Result), dir: dir}
}

// Dir returns the persistent store directory ("" when in-memory only).
func (c *Cache) Dir() string { return c.dir }

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Get looks up fp in memory, then on disk. A disk hit is promoted into
// memory. Unusable disk entries count as misses.
func (c *Cache) Get(fp sim.Fingerprint) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if res, ok := c.mem[fp]; ok {
		c.stats.MemHits++
		return res, true
	}
	if res, ok := c.readDisk(fp); ok {
		c.mem[fp] = res
		c.stats.DiskHits++
		return res, true
	}
	c.stats.Misses++
	return sim.Result{}, false
}

// GetMem looks up fp in the in-memory tier only. -force reruns use it:
// results computed earlier in the same process are still deduplicated,
// while stale disk entries are ignored (and overwritten by the
// subsequent Put).
func (c *Cache) GetMem(fp sim.Fingerprint) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if res, ok := c.mem[fp]; ok {
		c.stats.MemHits++
		return res, true
	}
	c.stats.Misses++
	return sim.Result{}, false
}

// Put stores a computed result in memory and, when a directory is
// configured, on disk. Disk failures are recorded in Stats and returned,
// but the in-memory tier is always updated — a read-only cache directory
// degrades to per-process caching, not to an error loop.
func (c *Cache) Put(fp sim.Fingerprint, res sim.Result) error {
	c.mu.Lock()
	c.mem[fp] = res
	c.stats.Stores++
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	if err := c.writeDisk(fp, res); err != nil {
		c.mu.Lock()
		c.stats.DiskError++
		c.mu.Unlock()
		return fmt.Errorf("expcache: %w", err)
	}
	return nil
}

// path returns the content-addressed file name for fp.
func (c *Cache) path(fp sim.Fingerprint) string {
	return filepath.Join(c.dir, fp.String()+".json")
}

// readDisk loads and validates one entry; any defect is (zero, false).
// Caller holds c.mu (the read itself races only with atomic renames, so
// holding the lock just keeps the stats consistent).
func (c *Cache) readDisk(fp sim.Fingerprint) (sim.Result, bool) {
	if c.dir == "" {
		return sim.Result{}, false
	}
	data, err := os.ReadFile(c.path(fp))
	if err != nil {
		return sim.Result{}, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return sim.Result{}, false // corrupt or truncated: recompute
	}
	if e.Format != FormatVersion || e.Engine != sim.EngineVersion || e.Fingerprint != fp.String() {
		return sim.Result{}, false // foreign layout, stale engine, or renamed file
	}
	return e.Result, true
}

// writeDisk atomically persists one entry: encode, write to a temp file
// in the same directory, rename over the final name. Concurrent writers
// of the same fingerprint each rename a complete file, so readers never
// observe a partial entry.
func (c *Cache) writeDisk(fp sim.Fingerprint, res sim.Result) error {
	if err := os.MkdirAll(c.dir, 0o777); err != nil {
		return err
	}
	data, err := json.Marshal(entry{
		Format:      FormatVersion,
		Engine:      sim.EngineVersion,
		Fingerprint: fp.String(),
		Result:      res,
	})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, fp.String()+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(fp)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
