package expcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Store is the entry-storage seam: result entries move as encoded
// envelope bytes (exactly the on-disk format — see EncodeEntry), so an
// entry can arrive over the wire, out of another cache directory, or
// from a local computation and land through one code path. The dispatch
// coordinator accepts worker uploads into a Store; an object-store
// backend would implement the same three methods.
//
// Keys are 64-hex fingerprint strings (IsFingerprintHex). A Store holds
// bytes, not meaning: callers validate with DecodeEntry before writing,
// so everything inside a Store is a well-formed entry of the current
// engine generation.
type Store interface {
	// PutEntry persists data under fp, atomically with respect to
	// readers: a concurrent GetEntry sees the old bytes or the new ones,
	// never a prefix.
	PutEntry(fp string, data []byte) error
	// GetEntry returns the stored bytes for fp, or ok=false when absent.
	GetEntry(fp string) (data []byte, ok bool, err error)
	// ListEntries returns the stored fingerprints in ascending order.
	ListEntries() ([]string, error)
}

// DirStore implements Store over a cache directory, interoperating
// byte-for-byte with Cache, figmerge, and figbench -cache-dir: entries
// are FP.json files written atomically. Files that are not well-formed
// entry names (manifests, temp files) are ignored by List/Get.
type DirStore struct {
	dir string
}

// NewDirStore builds a DirStore over dir (created on first write).
func NewDirStore(dir string) *DirStore { return &DirStore{dir: dir} }

// Dir returns the backing directory.
func (s *DirStore) Dir() string { return s.dir }

// PutEntry atomically writes one entry file.
func (s *DirStore) PutEntry(fp string, data []byte) error {
	if !IsFingerprintHex(fp) {
		return fmt.Errorf("expcache: store key %.12q is not a 64-hex fingerprint", fp)
	}
	if err := writeFileAtomic(s.dir, fp+".json", data); err != nil {
		return fmt.Errorf("expcache: %w", err)
	}
	return nil
}

// GetEntry reads one entry file; a missing file is (nil, false, nil).
func (s *DirStore) GetEntry(fp string) ([]byte, bool, error) {
	if !IsFingerprintHex(fp) {
		return nil, false, nil
	}
	data, err := os.ReadFile(filepath.Join(s.dir, fp+".json"))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("expcache: %w", err)
	}
	return data, true, nil
}

// ListEntries returns the fingerprints of every entry file, ascending.
// A missing directory holds no entries.
func (s *DirStore) ListEntries() ([]string, error) {
	des, err := os.ReadDir(s.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("expcache: %w", err)
	}
	var out []string
	for _, de := range des {
		if de.IsDir() || !isEntryName(de.Name()) {
			continue
		}
		out = append(out, de.Name()[:64])
	}
	sort.Strings(out)
	return out, nil
}
