package expcache

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/sim"
)

// testFP fabricates a distinct, deterministic fingerprint.
func testFP(i int) sim.Fingerprint {
	var fp sim.Fingerprint
	binary.BigEndian.PutUint64(fp[:8], uint64(i)*0x9e3779b97f4a7c15+1)
	return fp
}

// testMatrix returns n fabricated fingerprints in ascending hex order —
// the canonical full-matrix index the manifests describe.
func testMatrix(n int) []sim.Fingerprint {
	fps := make([]sim.Fingerprint, n)
	for i := range fps {
		fps[i] = testFP(i)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i].String() < fps[j].String() })
	return fps
}

// writeShard fills dir with shard k-of-n's entries of the matrix and its
// manifest, as a figbench -shard run would.
func writeShard(t *testing.T, dir string, matrix []sim.Fingerprint, k, n int) {
	t.Helper()
	c := New(dir)
	m := &Manifest{
		Format: ManifestFormatVersion, Engine: sim.EngineVersion,
		Scale: "test", Experiments: []string{"test"},
		Shard: k, NumShards: n,
	}
	for i, fp := range matrix {
		m.Fingerprints = append(m.Fingerprints, fp.String())
		if ShardOf(i, n) != k {
			continue
		}
		m.Assigned = append(m.Assigned, fp.String())
		if err := c.Put(fp, testResult(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WriteManifest(m); err != nil {
		t.Fatal(err)
	}
}

func TestShardOfPartitionsBalanced(t *testing.T) {
	for n := 1; n <= 7; n++ {
		counts := make([]int, n+1)
		for i := 0; i < 100; i++ {
			k := ShardOf(i, n)
			if k < 1 || k > n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", i, n, k)
			}
			counts[k]++
		}
		min, max := 100, 0
		for k := 1; k <= n; k++ {
			if counts[k] < min {
				min = counts[k]
			}
			if counts[k] > max {
				max = counts[k]
			}
		}
		if max-min > 1 {
			t.Errorf("n=%d: unbalanced shard sizes %v", n, counts[1:])
		}
	}
}

func TestManifestValidate(t *testing.T) {
	matrix := testMatrix(6)
	good := func() *Manifest {
		m := &Manifest{Format: ManifestFormatVersion, Engine: sim.EngineVersion, Shard: 1, NumShards: 2}
		for i, fp := range matrix {
			m.Fingerprints = append(m.Fingerprints, fp.String())
			if ShardOf(i, 2) == 1 {
				m.Assigned = append(m.Assigned, fp.String())
			}
		}
		return m
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	cases := map[string]func(*Manifest){
		"format":          func(m *Manifest) { m.Format = 99 },
		"engine":          func(m *Manifest) { m.Engine = sim.EngineVersion + 1 },
		"shard zero":      func(m *Manifest) { m.Shard = 0 },
		"shard beyond":    func(m *Manifest) { m.Shard = 3 },
		"unsorted":        func(m *Manifest) { m.Fingerprints[0], m.Fingerprints[1] = m.Fingerprints[1], m.Fingerprints[0] },
		"assignment size": func(m *Manifest) { m.Assigned = m.Assigned[:1] },
		"assignment rule": func(m *Manifest) { m.Assigned[0] = m.Fingerprints[1] },
	}
	for name, mutate := range cases {
		m := good()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: invalid manifest accepted", name)
		}
	}
}

// TestMergeRoundTrip is the happy path: two complete shards merge into a
// directory that serves every run of the matrix without recomputation.
func TestMergeRoundTrip(t *testing.T) {
	matrix := testMatrix(9)
	sh1, sh2, dst := t.TempDir(), t.TempDir(), filepath.Join(t.TempDir(), "merged")
	writeShard(t, sh1, matrix, 1, 2)
	writeShard(t, sh2, matrix, 2, 2)

	rep, err := Merge(dst, []string{sh1, sh2}, false)
	if err != nil {
		t.Fatalf("clean merge failed: %v\n%v", err, rep.Problems())
	}
	if len(rep.Problems()) != 0 {
		t.Fatalf("clean merge reported problems: %v", rep.Problems())
	}
	if rep.Entries != len(matrix) || rep.Written != len(matrix)+2 || rep.Manifests != 2 {
		t.Errorf("report %+v: want %d entries, %d written, 2 manifests", rep, len(matrix), len(matrix)+2)
	}
	c := New(dst)
	for i, fp := range matrix {
		res, ok := c.Get(fp)
		if !ok {
			t.Fatalf("merged cache misses %s", fp)
		}
		if want := testResult(int64(i)); res.Cycles != want.Cycles {
			t.Fatalf("merged entry %d holds wrong result", i)
		}
	}
	if ms, err := ReadManifests(dst); err != nil || len(ms) != 2 {
		t.Fatalf("merged dir manifests = %d, %v; want 2", len(ms), err)
	}
}

func TestMergeRefusesMissingShard(t *testing.T) {
	matrix := testMatrix(8)
	sh1 := t.TempDir()
	dst := filepath.Join(t.TempDir(), "merged")
	writeShard(t, sh1, matrix, 1, 3)

	rep, err := Merge(dst, []string{sh1}, false)
	if err == nil {
		t.Fatal("merge with missing shards succeeded")
	}
	if want := []int{2, 3}; len(rep.MissingShards) != 2 || rep.MissingShards[0] != want[0] || rep.MissingShards[1] != want[1] {
		t.Errorf("MissingShards = %v, want %v", rep.MissingShards, want)
	}
	if _, statErr := os.Stat(dst); !os.IsNotExist(statErr) {
		t.Error("refused merge still wrote the destination")
	}

	// Forced partial merge writes shard 1's slice; the rest stays absent.
	rep, err = Merge(dst, []string{sh1}, true)
	if err != nil {
		t.Fatalf("forced partial merge failed: %v", err)
	}
	if rep.Written == 0 {
		t.Error("forced merge wrote nothing")
	}
}

func TestMergeDetectsMissingEntry(t *testing.T) {
	matrix := testMatrix(8)
	sh1, sh2 := t.TempDir(), t.TempDir()
	writeShard(t, sh1, matrix, 1, 2)
	writeShard(t, sh2, matrix, 2, 2)
	// Delete one of shard 2's entries.
	var victim string
	for i, fp := range matrix {
		if ShardOf(i, 2) == 2 {
			victim = fp.String()
			break
		}
	}
	if err := os.Remove(filepath.Join(sh2, victim+".json")); err != nil {
		t.Fatal(err)
	}

	rep, err := Merge(filepath.Join(t.TempDir(), "m"), []string{sh1, sh2}, false)
	if err == nil {
		t.Fatal("merge with a missing entry succeeded")
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != victim {
		t.Errorf("Missing = %v, want [%s]", rep.Missing, victim)
	}
}

func TestMergeDetectsCorruptEntry(t *testing.T) {
	matrix := testMatrix(6)
	sh1, sh2 := t.TempDir(), t.TempDir()
	writeShard(t, sh1, matrix, 1, 2)
	writeShard(t, sh2, matrix, 2, 2)
	victim := matrix[0].String() // matrix[0] is assigned to shard 1
	if err := os.WriteFile(filepath.Join(sh1, victim+".json"), []byte(`{"format":1,"truncated`), 0o666); err != nil {
		t.Fatal(err)
	}

	rep, err := Merge(filepath.Join(t.TempDir(), "m"), []string{sh1, sh2}, false)
	if err == nil {
		t.Fatal("merge with a corrupt entry succeeded")
	}
	if len(rep.Corrupt) != 1 {
		t.Errorf("Corrupt = %v, want one entry", rep.Corrupt)
	}
	// The corrupt file also leaves its fingerprint uncovered.
	if len(rep.Missing) != 1 || rep.Missing[0] != victim {
		t.Errorf("Missing = %v, want [%s]", rep.Missing, victim)
	}
}

// TestMergeDetectsConflict covers byte-level disagreement between two
// sources for the same fingerprint: refused without force, first source
// wins with it.
func TestMergeDetectsConflict(t *testing.T) {
	matrix := testMatrix(6)
	sh1, sh2 := t.TempDir(), t.TempDir()
	writeShard(t, sh1, matrix, 1, 2)
	writeShard(t, sh2, matrix, 2, 2)
	// sh2 also holds matrix[0] (shard 1's entry) with a different result.
	if err := New(sh2).Put(matrix[0], testResult(999)); err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(t.TempDir(), "m")
	rep, err := Merge(dst, []string{sh1, sh2}, false)
	if err == nil {
		t.Fatal("merge with conflicting entries succeeded")
	}
	if len(rep.Conflicts) != 1 || rep.Conflicts[0] != matrix[0].String() {
		t.Errorf("Conflicts = %v, want [%s]", rep.Conflicts, matrix[0])
	}

	if _, err := Merge(dst, []string{sh1, sh2}, true); err != nil {
		t.Fatalf("forced merge failed: %v", err)
	}
	res, ok := New(dst).Get(matrix[0])
	if !ok || res.Cycles != testResult(0).Cycles {
		t.Error("forced merge did not keep the first source's entry")
	}
}

func TestMergeDetectsExtraEntry(t *testing.T) {
	matrix := testMatrix(6)
	sh1, sh2 := t.TempDir(), t.TempDir()
	writeShard(t, sh1, matrix, 1, 2)
	writeShard(t, sh2, matrix, 2, 2)
	stray := testFP(1000)
	if err := New(sh1).Put(stray, testResult(7)); err != nil {
		t.Fatal(err)
	}

	rep, err := Merge(filepath.Join(t.TempDir(), "m"), []string{sh1, sh2}, false)
	if err == nil {
		t.Fatal("merge with an entry outside the matrix succeeded")
	}
	if len(rep.Extra) != 1 || rep.Extra[0] != stray.String() {
		t.Errorf("Extra = %v, want [%s]", rep.Extra, stray)
	}
}

func TestMergeRefusesMismatchedMatrices(t *testing.T) {
	sh1, sh2 := t.TempDir(), t.TempDir()
	writeShard(t, sh1, testMatrix(6), 1, 2)
	writeShard(t, sh2, testMatrix(8), 2, 2) // different matrix

	rep, err := Merge(filepath.Join(t.TempDir(), "m"), []string{sh1, sh2}, false)
	if err == nil {
		t.Fatal("merge across different matrices succeeded")
	}
	if len(rep.MismatchedManifests) != 1 {
		t.Errorf("MismatchedManifests = %v, want one", rep.MismatchedManifests)
	}
}

func TestMergeWithoutManifests(t *testing.T) {
	// Plain cache directories (no figbench -shard involved): the merge
	// cannot validate coverage, so it refuses without force and does a
	// simple validated union with it.
	d1, d2 := t.TempDir(), t.TempDir()
	fps := testMatrix(4)
	for i, fp := range fps {
		dir := d1
		if i%2 == 1 {
			dir = d2
		}
		if err := New(dir).Put(fp, testResult(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	dst := filepath.Join(t.TempDir(), "m")
	if _, err := Merge(dst, []string{d1, d2}, false); err == nil {
		t.Fatal("manifest-less merge succeeded without force")
	}
	rep, err := Merge(dst, []string{d1, d2}, true)
	if err != nil {
		t.Fatalf("forced union failed: %v", err)
	}
	if rep.Written != len(fps) {
		t.Errorf("union wrote %d files, want %d", rep.Written, len(fps))
	}
	c := New(dst)
	for _, fp := range fps {
		if _, ok := c.Get(fp); !ok {
			t.Errorf("union misses %s", fp)
		}
	}
}

// TestMergeValidateWritesNothing pins the -dry-run contract.
func TestMergeValidateWritesNothing(t *testing.T) {
	matrix := testMatrix(6)
	sh1, sh2 := t.TempDir(), t.TempDir()
	writeShard(t, sh1, matrix, 1, 2)
	writeShard(t, sh2, matrix, 2, 2)
	rep, err := Validate([]string{sh1, sh2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems()) != 0 || rep.Entries != len(matrix) || rep.Written != 0 {
		t.Errorf("validate report %+v: want clean, %d entries, nothing written", rep, len(matrix))
	}
}

// TestMergeReportsNamedErrorReasons pins the report text for rejected
// files to the named validation errors, so a user reading a refused
// merge sees WHY each file was rejected (wrong engine vs unparsable vs
// mismatched fingerprint), not just that it was.
func TestMergeReportsNamedErrorReasons(t *testing.T) {
	matrix := testMatrix(3)
	src := t.TempDir()
	writeShard(t, src, matrix, 1, 1)

	// Corrupt one entry into a wrong-engine one and plant a manifest with
	// a non-hex fingerprint in its index.
	bad, err := EncodeEntry(matrix[0], testResult(0))
	if err != nil {
		t.Fatal(err)
	}
	wrongEngine := []byte(strings.Replace(string(bad),
		fmt.Sprintf(`"engine":%d`, sim.EngineVersion), `"engine":999999`, 1))
	if string(wrongEngine) == string(bad) {
		t.Fatal("test setup: engine field not found in encoded entry")
	}
	if err := os.WriteFile(filepath.Join(src, matrix[0].String()+".json"), wrongEngine, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "manifest-9of9.json"),
		[]byte(`{"format":1,"engine":`+fmt.Sprint(sim.EngineVersion)+`,"shard":9,"num_shards":9,"fingerprints":["nothex"],"assigned":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Validate([]string{src})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 || !strings.Contains(rep.Corrupt[0], ErrEntryEngine.Error()) {
		t.Errorf("wrong-engine entry not reported via ErrEntryEngine: %q", rep.Corrupt)
	}
	if len(rep.BadManifests) != 1 || !strings.Contains(rep.BadManifests[0], ErrManifestFingerprint.Error()) {
		t.Errorf("non-hex manifest index not reported via ErrManifestFingerprint: %q", rep.BadManifests)
	}
}
