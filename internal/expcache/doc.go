// Package expcache is the experiment-result store behind the harness: a
// two-tier cache of sim.Results keyed by sim.Fingerprint, plus the
// manifest and merge machinery that lets a result store be assembled
// from shards computed on different machines.
//
// # Result cache
//
// Tier one is an in-process map (shared-run dedup within one
// figbench/test invocation); tier two is an optional content-addressed
// on-disk store that makes full-matrix reruns incremental — a rerun
// after a code change only recomputes runs whose fingerprint (which
// folds in sim.EngineVersion) changed.
//
// Disk entries are versioned JSON envelopes named <fingerprint>.json.
// Reads are defensive: a corrupt, truncated, foreign-format, or
// stale-engine file is a miss, never an error — the run is simply
// recomputed and the entry rewritten. Writes are atomic (temp file +
// rename), so concurrent writers of the same fingerprint — racing
// processes, or racing workers of one process — land one complete entry.
//
// # Shard manifests and merging
//
// A sharded figbench run (-shard K/N) computes a 1/N slice of the
// experiment matrix into its cache directory and records a Manifest
// there: the engine version, the full fingerprint index of the matrix,
// and the slice this shard owned. Merge combines several such
// directories into one, validating entry integrity and matrix coverage
// (missing shards, missing or extra entries, byte-level conflicts)
// before writing anything; a directory holding every shard serves a
// subsequent unsharded figbench run without any recomputation. Unlike
// cache reads, merge validation treats defects as errors — a merge
// asserts coverage, so problems must surface rather than degrade into
// recomputation on some later machine.
package expcache
