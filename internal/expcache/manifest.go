package expcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/sim"
)

// ManifestFormatVersion identifies the on-disk manifest layout. Bump it
// when the manifest envelope changes shape; manifests with any other
// format are rejected by merges.
const ManifestFormatVersion = 1

// Manifest describes one shard's slice of an experiment matrix. A shard
// run (figbench -shard K/N -cache-dir DIR) writes one into its cache
// directory next to the result entries, so the directory is
// self-describing: figmerge can tell, without re-enumerating anything,
// which runs the full matrix contains, which slice this directory was
// responsible for, and whether the union of several directories covers
// the matrix.
//
// The assignment rule is positional: with the full fingerprint list in
// ascending order, index i belongs to shard ShardOf(i, NumShards).
// Assigned records the resulting slice explicitly anyway, so a merge can
// detect a manifest written under a different (future) rule instead of
// silently mis-validating it.
type Manifest struct {
	Format int `json:"format"`
	// Engine is the sim.EngineVersion the shard was computed with.
	// Entries from a different engine generation must not be merged:
	// their fingerprints would not collide, but the merged directory
	// would claim shard coverage it does not have.
	Engine int `json:"engine"`
	// Scale is a human-readable description of the harness scale the
	// matrix was enumerated at (insts/apps/mixes/mc). Informational for
	// humans; merges compare it to catch obviously mismatched shards
	// early, though any scale difference also changes Fingerprints.
	Scale string `json:"scale"`
	// Experiments names the experiment set the matrix was enumerated
	// from, in catalog order. Shards of one matrix must be launched with
	// the same experiment set.
	Experiments []string `json:"experiments"`
	Shard       int      `json:"shard"`      // 1-based shard index
	NumShards   int      `json:"num_shards"` // total shards in the split
	// Fingerprints is the full matrix index: every distinct run of the
	// experiment set, as lowercase-hex fingerprints in ascending order.
	Fingerprints []string `json:"fingerprints"`
	// Assigned is the slice of Fingerprints this shard computed.
	Assigned []string `json:"assigned"`
}

// ShardOf returns the 1-based shard that owns index i of a
// fingerprint-sorted job list split n ways. The positional rule keeps
// every shard within one job of perfectly balanced and is stable under
// any enumeration order, because the list is sorted before splitting.
// harness.ShardJobs and Manifest validation share this single rule.
func ShardOf(i, n int) int { return i%n + 1 }

// ExpectedAssigned returns the slice of m.Fingerprints the positional
// assignment rule gives m.Shard.
func (m *Manifest) ExpectedAssigned() []string {
	var out []string
	for i, fp := range m.Fingerprints {
		if ShardOf(i, m.NumShards) == m.Shard {
			out = append(out, fp)
		}
	}
	return out
}

// Named manifest-validation errors, one per failure class (assert with
// errors.Is; the wrapped message carries the specifics). Split out when
// the fuzz corpus showed arbitrary JSON reaching Validate produced
// one-size-fits-all messages a merge report could not classify.
var (
	ErrManifestFormat = errors.New("manifest format mismatch")
	ErrManifestEngine = errors.New("manifest engine mismatch")
	ErrManifestShard  = errors.New("manifest shard out of range")
	// ErrManifestFingerprint: an index entry is not a 64-hex fingerprint,
	// or the list is not in ascending order. A manifest asserting
	// coverage of non-fingerprints could never be satisfied by entries.
	ErrManifestFingerprint = errors.New("manifest fingerprint index invalid")
	// ErrManifestAssignment: the explicit assignment disagrees with the
	// positional rule — a manifest from a different (future) split rule.
	ErrManifestAssignment = errors.New("manifest assignment rule mismatch")
)

// IsFingerprintHex reports whether s is a well-formed fingerprint name:
// exactly 64 lowercase hex digits (the filename stem of a result entry
// and the wire identity the dispatch protocol passes around).
func IsFingerprintHex(s string) bool {
	if len(s) != 64 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Validate checks a manifest's internal consistency: version and engine
// stamps, shard bounds, well-formed sorted fingerprints, and the
// assignment rule. Failures wrap the named ErrManifest* errors.
func (m *Manifest) Validate() error {
	switch {
	case m.Format != ManifestFormatVersion:
		return fmt.Errorf("%w: format %d, want %d", ErrManifestFormat, m.Format, ManifestFormatVersion)
	case m.Engine != sim.EngineVersion:
		return fmt.Errorf("%w: engine %d, want %d", ErrManifestEngine, m.Engine, sim.EngineVersion)
	case m.NumShards < 1 || m.Shard < 1 || m.Shard > m.NumShards:
		return fmt.Errorf("%w: shard %d/%d", ErrManifestShard, m.Shard, m.NumShards)
	case !sort.StringsAreSorted(m.Fingerprints):
		return fmt.Errorf("%w: index not in ascending order", ErrManifestFingerprint)
	}
	for i, fp := range m.Fingerprints {
		if !IsFingerprintHex(fp) {
			return fmt.Errorf("%w: index[%d] %.12q is not a 64-hex fingerprint", ErrManifestFingerprint, i, fp)
		}
	}
	want := m.ExpectedAssigned()
	if len(want) != len(m.Assigned) {
		return fmt.Errorf("%w: assignment holds %d fingerprints, rule gives %d", ErrManifestAssignment, len(m.Assigned), len(want))
	}
	for i := range want {
		if want[i] != m.Assigned[i] {
			return fmt.Errorf("%w: disagreement at index %d", ErrManifestAssignment, i)
		}
	}
	return nil
}

// manifestName is the manifest's filename inside a cache directory. The
// prefix keeps it disjoint from result entries (64-hex names).
func manifestName(shard, numShards int) string {
	return fmt.Sprintf("manifest-%dof%d.json", shard, numShards)
}

// isManifestName reports whether a cache-directory filename is a shard
// manifest.
func isManifestName(name string) bool {
	return strings.HasPrefix(name, "manifest-") && strings.HasSuffix(name, ".json")
}

// isEntryName reports whether a cache-directory filename is a result
// entry (a 64-hex fingerprint plus .json).
func isEntryName(name string) bool {
	return strings.HasSuffix(name, ".json") && IsFingerprintHex(strings.TrimSuffix(name, ".json"))
}

// WriteManifest validates m and atomically persists it into the cache's
// directory. The cache must be disk-backed.
func (c *Cache) WriteManifest(m *Manifest) error {
	if c.dir == "" {
		return fmt.Errorf("expcache: manifest needs a disk-backed cache")
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("expcache: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "\t")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(c.dir, manifestName(m.Shard, m.NumShards), data); err != nil {
		return fmt.Errorf("expcache: %w", err)
	}
	return nil
}

// ReadManifests loads every shard manifest in dir, sorted by (NumShards,
// Shard). A missing directory yields none; a manifest that fails to parse
// or validate is an error — unlike result entries, manifests assert
// coverage, so a broken one must not be silently dropped.
func ReadManifests(dir string) ([]*Manifest, error) {
	names, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []*Manifest
	for _, de := range names {
		if de.IsDir() || !isManifestName(de.Name()) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			return nil, err
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("%s: %w", de.Name(), err)
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", de.Name(), err)
		}
		out = append(out, &m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NumShards != out[j].NumShards {
			return out[i].NumShards < out[j].NumShards
		}
		return out[i].Shard < out[j].Shard
	})
	return out, nil
}
