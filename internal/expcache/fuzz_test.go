package expcache

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// fuzzFP is the fingerprint the decode fuzzer validates against. Seeds
// carry it so mutations explore the post-identity-check decode paths.
var fuzzFP = sim.Fingerprint{0xab, 0xcd, 1, 2, 3}

// FuzzDecodeEntry feeds arbitrary bytes to the entry decoder — the same
// code path that judges worker uploads and disk cache files. It must
// never panic; when it accepts, a re-encode of the decoded result must
// be byte-identical to a fresh EncodeEntry (the determinism invariant
// the whole merge/dispatch machinery diffs on).
func FuzzDecodeEntry(f *testing.F) {
	res := sim.Result{
		Preset:   sim.FIGCacheFast,
		Workload: "mcf",
		Cycles:   1_234_567,
		Cores:    []sim.CoreResult{{App: "mcf", IPC: 0.75, Insts: 200_000, FinishedAt: 1_000_000}},
	}
	good, err := EncodeEntry(fuzzFP, res)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format":1,"engine":99,"fingerprint":"x"}`))
	f.Add([]byte(strings.Replace(string(good), `"result"`, `"resul_"`, 1)))
	f.Add([]byte(`null`))
	f.Add([]byte(`[`))

	fp := fuzzFP.String()
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeEntry(data, fp)
		if err != nil {
			return // rejected upload: the only requirement is no panic
		}
		re, err := EncodeEntry(fuzzFP, res)
		if err != nil {
			t.Fatalf("re-encoding an accepted entry: %v", err)
		}
		res2, err := DecodeEntry(re, fp)
		if err != nil {
			t.Fatalf("re-encoded entry rejected: %v", err)
		}
		re2, err := EncodeEntry(fuzzFP, res2)
		if err != nil {
			t.Fatal(err)
		}
		if string(re) != string(re2) {
			t.Fatalf("encode/decode/encode is not a fixed point:\n%s\nvs\n%s", re, re2)
		}
	})
}

// FuzzManifestValidate feeds arbitrary JSON to the manifest decode +
// Validate path figmerge and the dispatch coordinator trust. No input
// may panic it; a manifest that validates must have a well-formed
// positional assignment (ExpectedAssigned never out-of-range).
func FuzzManifestValidate(f *testing.F) {
	m := &Manifest{
		Format:       ManifestFormatVersion,
		Engine:       sim.EngineVersion,
		Scale:        "insts=1000 apps=1 mixes=1 mc=10",
		Experiments:  []string{"table2"},
		Shard:        1,
		NumShards:    2,
		Fingerprints: []string{strings.Repeat("0", 64), strings.Repeat("f", 64)},
		Assigned:     []string{strings.Repeat("0", 64)},
	}
	seed, err := json.Marshal(m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format":1,"engine":1,"shard":0,"num_shards":-1}`))
	f.Add([]byte(`{"format":1,"fingerprints":["zz"]}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			return // invalid manifest: the only requirement is no panic
		}
		// A validated manifest's positional assignment must be coherent:
		// every expected fingerprint comes from the index, and the shard
		// bounds hold (ShardOf stays within 1..NumShards).
		for _, fp := range m.ExpectedAssigned() {
			if !IsFingerprintHex(fp) {
				t.Fatalf("validated manifest assigns non-hex fingerprint %q", fp)
			}
		}
		for i := range m.Fingerprints {
			if s := ShardOf(i, m.NumShards); s < 1 || s > m.NumShards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", i, m.NumShards, s)
			}
		}
	})
}
