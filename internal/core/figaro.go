package core

import (
	"bytes"
	"fmt"
)

// FunctionalBank is a data-carrying model of one DRAM bank that verifies
// the FIGARO relocation semantics of Section 4.1: every subarray has a
// local row buffer (LRB), all LRBs connect to one shared global row buffer
// (GRB), and the RELOC command copies one column from the activated LRB to
// any column of another subarray's (precharged) LRB. A subsequent
// ACTIVATE of a destination row overwrites only the cells connected to
// bitlines that the GRB drove to a stable state; all other cells keep
// their values (Figure 4, step 5).
//
// The timing model lives in internal/dram; FunctionalBank proves the data
// path is correct (unaligned copies, partial-row overwrite, ECC lockstep).
type FunctionalBank struct {
	cols      int // columns per row (one column = one block at rank level)
	colBytes  int // bytes per column across the rank (64 for x8 DDR4)
	subarrays []*subarray

	// activated is the subarray whose wordline is asserted (source of
	// RELOC), or -1. FIGARO adds a per-subarray row-address latch so a
	// second subarray can be activated for the destination without
	// precharging the first (Section 4.1, "Issuing Multiple Activations
	// Without a Precharge").
	activated    int
	activatedRow int
}

type subarray struct {
	rows [][]byte // rows × (cols*colBytes) cell array

	lrb       []byte // local row buffer contents
	lrbValid  bool   // LRB holds a sensed row
	lrbDriven []bool // per-column: bitlines driven to a stable state by the GRB
}

// NewFunctionalBank builds a bank with the given number of subarrays, rows
// per subarray, columns per row and bytes per column.
func NewFunctionalBank(subarrays, rowsPerSubarray, cols, colBytes int) (*FunctionalBank, error) {
	if subarrays <= 0 || rowsPerSubarray <= 0 || cols <= 0 || colBytes <= 0 {
		return nil, fmt.Errorf("core: all functional bank dimensions must be positive")
	}
	b := &FunctionalBank{cols: cols, colBytes: colBytes, activated: -1}
	for i := 0; i < subarrays; i++ {
		sa := &subarray{
			rows:      make([][]byte, rowsPerSubarray),
			lrb:       make([]byte, cols*colBytes),
			lrbDriven: make([]bool, cols),
		}
		for r := range sa.rows {
			sa.rows[r] = make([]byte, cols*colBytes)
		}
		b.subarrays = append(b.subarrays, sa)
	}
	return b, nil
}

// WriteRow stores data directly into the cell array (test setup; models
// data previously written through the normal WRITE path).
func (b *FunctionalBank) WriteRow(sub, row int, data []byte) error {
	sa, err := b.subarrayAt(sub)
	if err != nil {
		return err
	}
	if row < 0 || row >= len(sa.rows) {
		return fmt.Errorf("core: row %d out of range", row)
	}
	if len(data) != b.cols*b.colBytes {
		return fmt.Errorf("core: row data must be %d bytes, got %d", b.cols*b.colBytes, len(data))
	}
	copy(sa.rows[row], data)
	return nil
}

// ReadRow returns a copy of a row's cell contents.
func (b *FunctionalBank) ReadRow(sub, row int) ([]byte, error) {
	sa, err := b.subarrayAt(sub)
	if err != nil {
		return nil, err
	}
	if row < 0 || row >= len(sa.rows) {
		return nil, fmt.Errorf("core: row %d out of range", row)
	}
	out := make([]byte, len(sa.rows[row]))
	copy(out, sa.rows[row])
	return out, nil
}

// Activate asserts the wordline of (sub, row): the row's cells are sensed
// into the subarray's LRB. If the destination LRB holds GRB-driven
// columns (from prior RELOCs), those columns overwrite the corresponding
// cells of the activated row instead — the FIGARO destination-activate
// step — and the remaining cells load into the LRB as usual.
func (b *FunctionalBank) Activate(sub, row int) error {
	sa, err := b.subarrayAt(sub)
	if err != nil {
		return err
	}
	if row < 0 || row >= len(sa.rows) {
		return fmt.Errorf("core: row %d out of range", row)
	}
	if b.activated == sub {
		return fmt.Errorf("core: subarray %d already has an activated row; precharge first", sub)
	}
	cells := sa.rows[row]
	for col := 0; col < b.cols; col++ {
		lo, hi := col*b.colBytes, (col+1)*b.colBytes
		if sa.lrbDriven[col] {
			// Bitlines already stable at the relocated value: the cells
			// are overwritten, other cells keep their original values.
			copy(cells[lo:hi], sa.lrb[lo:hi])
		} else {
			copy(sa.lrb[lo:hi], cells[lo:hi])
		}
	}
	sa.lrbValid = true
	b.activated = sub
	b.activatedRow = row
	return nil
}

// Reloc copies the column srcCol of the currently activated subarray's LRB
// into column dstCol of subarray dstSub's LRB via the global row buffer.
// Source and destination columns may differ (unaligned relocation). The
// destination subarray must be precharged (its LRB idle) or already the
// target of earlier RELOCs.
func (b *FunctionalBank) Reloc(srcCol, dstSub, dstCol int) error {
	if b.activated < 0 {
		return fmt.Errorf("core: RELOC requires an activated source row")
	}
	if dstSub == b.activated {
		return fmt.Errorf("core: FIGARO cannot relocate within subarray %d (source and destination LRB are the same)", dstSub)
	}
	dst, err := b.subarrayAt(dstSub)
	if err != nil {
		return err
	}
	if srcCol < 0 || srcCol >= b.cols || dstCol < 0 || dstCol >= b.cols {
		return fmt.Errorf("core: column out of range (src %d, dst %d, cols %d)", srcCol, dstCol, b.cols)
	}
	if dst.lrbValid {
		return fmt.Errorf("core: destination subarray %d has an activated row", dstSub)
	}
	src := b.subarrays[b.activated]
	// GRB senses the source column and drives the destination bitlines to
	// a stable state; the destination LRB latches the value.
	grb := src.lrb[srcCol*b.colBytes : (srcCol+1)*b.colBytes]
	copy(dst.lrb[dstCol*b.colBytes:(dstCol+1)*b.colBytes], grb)
	dst.lrbDriven[dstCol] = true
	return nil
}

// Precharge releases the bank: the activated row (if any) is restored to
// its cells, and every LRB returns to the precharged state.
func (b *FunctionalBank) Precharge() {
	if b.activated >= 0 {
		sa := b.subarrays[b.activated]
		copy(sa.rows[b.activatedRow], sa.lrb)
	}
	for _, sa := range b.subarrays {
		sa.lrbValid = false
		for i := range sa.lrbDriven {
			sa.lrbDriven[i] = false
		}
	}
	b.activated = -1
}

// RelocateSegment performs the full FIGCache insertion sequence of
// Section 5: activate the source row, RELOC each column of the segment
// into the destination LRB (unaligned: the segment lands at dstStartCol),
// activate the destination row to commit the columns, and precharge.
func (b *FunctionalBank) RelocateSegment(srcSub, srcRow, srcStartCol int, dstSub, dstRow, dstStartCol, blocks int) error {
	if err := b.Activate(srcSub, srcRow); err != nil {
		return err
	}
	for i := 0; i < blocks; i++ {
		if err := b.Reloc(srcStartCol+i, dstSub, dstStartCol+i); err != nil {
			return err
		}
	}
	// Commit: activating the destination row overwrites the relocated
	// columns while preserving the rest of the row. The source subarray
	// wordline remains asserted via FIGARO's per-subarray row-address
	// latch; the functional model only needs the destination effect.
	src := b.activated
	srcR := b.activatedRow
	b.activated = -1 // allow the destination activate
	if err := b.Activate(dstSub, dstRow); err != nil {
		b.activated, b.activatedRow = src, srcR
		return err
	}
	b.Precharge()
	return nil
}

// Column returns a copy of one column of a row in the cell array.
func (b *FunctionalBank) Column(sub, row, col int) ([]byte, error) {
	r, err := b.ReadRow(sub, row)
	if err != nil {
		return nil, err
	}
	if col < 0 || col >= b.cols {
		return nil, fmt.Errorf("core: column %d out of range", col)
	}
	return r[col*b.colBytes : (col+1)*b.colBytes], nil
}

// ColumnsEqual reports whether two columns hold identical data.
func (b *FunctionalBank) ColumnsEqual(subA, rowA, colA, subB, rowB, colB int) (bool, error) {
	a, err := b.Column(subA, rowA, colA)
	if err != nil {
		return false, err
	}
	c, err := b.Column(subB, rowB, colB)
	if err != nil {
		return false, err
	}
	return bytes.Equal(a, c), nil
}

func (b *FunctionalBank) subarrayAt(i int) (*subarray, error) {
	if i < 0 || i >= len(b.subarrays) {
		return nil, fmt.Errorf("core: subarray %d out of range [0,%d)", i, len(b.subarrays))
	}
	return b.subarrays[i], nil
}
