package core

import "fmt"

// RowIndex maintains per-cache-row aggregates incrementally: the
// cumulative benefit score of each cache row and a bitvector of its dirty
// segments. The paper's footnote 2 (Section 5.1) points out that a
// Dirty-Block-Index-style structure keeps these sums available without
// scanning the FTS on every replacement decision; this is that structure.
//
// The RowBenefit replacement policy needs the row with the minimum
// cumulative benefit. RowIndex keeps sums exact under the three FTS
// mutations (benefit increment on hit, install, evict), so the minimum
// query is a scan over rows (64 per bank) instead of slots (512 per
// bank), and could be a tournament tree in hardware.
type RowIndex struct {
	segsPerRow int
	sums       []int
	dirty      []uint64 // per-row bitvector of dirty segment offsets
}

// NewRowIndex builds an index for rows cache rows of segsPerRow segments.
func NewRowIndex(rows, segsPerRow int) (*RowIndex, error) {
	if rows <= 0 || segsPerRow <= 0 {
		return nil, fmt.Errorf("core: row index dimensions must be positive")
	}
	if segsPerRow > 64 {
		return nil, fmt.Errorf("core: row index supports at most 64 segments per row, got %d", segsPerRow)
	}
	return &RowIndex{
		segsPerRow: segsPerRow,
		sums:       make([]int, rows),
		dirty:      make([]uint64, rows),
	}, nil
}

// Rows returns the number of cache rows tracked.
func (ri *RowIndex) Rows() int { return len(ri.sums) }

func (ri *RowIndex) rowOf(slot int) (row, off int) {
	return slot / ri.segsPerRow, slot % ri.segsPerRow
}

// OnHit adds the benefit delta of a slot (0 when the counter saturated)
// and records write hits in the dirty bitvector.
func (ri *RowIndex) OnHit(slot, benefitDelta int, isWrite bool) {
	row, off := ri.rowOf(slot)
	ri.sums[row] += benefitDelta
	if isWrite {
		ri.dirty[row] |= 1 << uint(off)
	}
}

// OnInstall resets the slot's contribution for a fresh segment (benefit
// starts at zero, clean).
func (ri *RowIndex) OnInstall(slot, oldBenefit int, wasDirty bool) {
	row, off := ri.rowOf(slot)
	ri.sums[row] -= oldBenefit
	if wasDirty {
		ri.dirty[row] &^= 1 << uint(off)
	}
}

// OnEvict removes the slot's contribution.
func (ri *RowIndex) OnEvict(slot, benefit int, wasDirty bool) {
	ri.OnInstall(slot, benefit, wasDirty)
}

// Sum returns the cumulative benefit of a cache row.
func (ri *RowIndex) Sum(row int) int { return ri.sums[row] }

// DirtyMask returns the dirty-segment bitvector of a cache row: the
// write-back work a row-granularity eviction will trigger.
func (ri *RowIndex) DirtyMask(row int) uint64 { return ri.dirty[row] }

// MinRow returns the row with the smallest cumulative benefit among rows
// where eligible returns true, or -1 if none qualifies.
func (ri *RowIndex) MinRow(eligible func(row int) bool) int {
	best, bestSum := -1, int(^uint(0)>>1)
	for row, sum := range ri.sums {
		if !eligible(row) {
			continue
		}
		if sum < bestSum {
			best, bestSum = row, sum
		}
	}
	return best
}

// attachRowIndex wires a RowIndex into an FTS so every mutation updates
// the aggregates; the FTS calls these hooks internally when an index is
// attached via SetRowIndex.
func (f *FTS) SetRowIndex(ri *RowIndex) error {
	if ri.Rows() != f.CacheRows() || ri.segsPerRow != f.SegsPerRow() {
		return fmt.Errorf("core: row index %dx%d does not match FTS %dx%d",
			ri.Rows(), ri.segsPerRow, f.CacheRows(), f.SegsPerRow())
	}
	f.rowIndex = ri
	// Rebuild aggregates from current contents (normally empty).
	for i := range ri.sums {
		ri.sums[i] = 0
		ri.dirty[i] = 0
	}
	for slot, e := range f.entries {
		if e.valid {
			row, off := ri.rowOf(slot)
			ri.sums[row] += int(e.benefit)
			if e.dirty {
				ri.dirty[row] |= 1 << uint(off)
			}
		}
	}
	return nil
}

// RowIndexed reports whether an incremental row index is attached.
func (f *FTS) RowIndexed() bool { return f.rowIndex != nil }
