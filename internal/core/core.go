package core
