package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

func newTestChannel(t *testing.T, fastSubarrays int) *dram.Channel {
	t.Helper()
	geo := dram.Default()
	geo.FastSubarrays = fastSubarrays
	slow := dram.DDR4()
	ch, err := dram.NewChannel(geo, slow, slow.Fast(dram.PaperFastScale()), false)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func newTestFIGCache(t *testing.T, mutate func(*FIGCacheConfig)) (*FIGCache, *dram.Channel) {
	t.Helper()
	geo := dram.Default()
	geo.FastSubarrays = 2
	cfg := DefaultFIGCacheConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	fc, err := NewFIGCache(cfg, geo)
	if err != nil {
		t.Fatal(err)
	}
	return fc, newTestChannel(t, 2)
}

// insertNow performs an insertion and immediately commits it, emulating
// the controller executing the relocation right away.
func insertNow(fc *FIGCache, ch *dram.Channel, loc dram.Location) *memctrl.RelocPlan {
	plan := fc.Insert(ch, loc, 0)
	if plan != nil {
		fc.Commit(plan)
	}
	return plan
}

func TestFIGCacheConfigValidate(t *testing.T) {
	geo := dram.Default()
	if err := DefaultFIGCacheConfig().Validate(geo); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*FIGCacheConfig){
		func(c *FIGCacheConfig) { c.SegmentBlocks = 0 },
		func(c *FIGCacheConfig) { c.SegmentBlocks = 3 }, // does not divide 128
		func(c *FIGCacheConfig) { c.SegmentBlocks = 256 },
		func(c *FIGCacheConfig) { c.CacheRowsPerBank = 0 },
		func(c *FIGCacheConfig) { c.InsertThreshold = 0 },
		func(c *FIGCacheConfig) { c.BenefitBits = 9 },
		func(c *FIGCacheConfig) { c.Replacement = ReplacementKind(99) },
	}
	for i, mutate := range cases {
		cfg := DefaultFIGCacheConfig()
		mutate(&cfg)
		if err := cfg.Validate(geo); err == nil {
			t.Errorf("case %d: accepted invalid config %+v", i, cfg)
		}
	}
}

func TestFTSBasics(t *testing.T) {
	f, err := NewFTS(512, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if f.CacheRows() != 64 || f.SegsPerRow() != 8 {
		t.Fatalf("geometry: %d rows x %d segs", f.CacheRows(), f.SegsPerRow())
	}
	if _, hit := f.Lookup(100, 3, false); hit {
		t.Fatal("hit on empty FTS")
	}
	slot, free := f.FreeSlot()
	if !free {
		t.Fatal("no free slot in empty FTS")
	}
	f.Install(slot, 100, 3, false)
	got, hit := f.Lookup(100, 3, true)
	if !hit || got != slot {
		t.Fatalf("Lookup = (%d,%v), want (%d,true)", got, hit, slot)
	}
	// Write set the dirty bit; eviction reports it.
	row, seg, dirty, valid := f.Evict(slot)
	if !valid || row != 100 || seg != 3 || !dirty {
		t.Errorf("Evict = (%d,%d,%v,%v)", row, seg, dirty, valid)
	}
	if _, hit := f.Lookup(100, 3, false); hit {
		t.Error("hit after eviction")
	}
}

func TestFTSBenefitSaturates(t *testing.T) {
	f, _ := NewFTS(8, 8, 5)
	f.Install(0, 1, 0, false)
	for i := 0; i < 100; i++ {
		f.Lookup(1, 0, false)
	}
	if got := f.entry(0).benefit; got != 31 {
		t.Errorf("benefit = %d, want saturation at 31 (5 bits)", got)
	}
}

func TestFTSRowBenefitSums(t *testing.T) {
	f, _ := NewFTS(16, 8, 5)
	f.Install(0, 1, 0, false)
	f.Install(1, 2, 0, false)
	f.Lookup(1, 0, false)
	f.Lookup(1, 0, false)
	f.Lookup(2, 0, false)
	if got := f.RowBenefit(0); got != 3 {
		t.Errorf("RowBenefit(0) = %d, want 3", got)
	}
	if got := f.RowBenefit(1); got != 0 {
		t.Errorf("RowBenefit(1) = %d, want 0", got)
	}
}

func TestFIGCacheLookupMissThenHit(t *testing.T) {
	fc, ch := newTestFIGCache(t, nil)
	loc := dram.Location{Row: 1000, Block: 35} // segment 2 (blocks 32..47)

	if _, hit := fc.Lookup(loc, false); hit {
		t.Fatal("hit before insertion")
	}
	if !fc.ShouldInsert(loc) {
		t.Fatal("insert-any-miss declined an insertion")
	}
	plan := insertNow(fc, ch, loc)
	if plan == nil {
		t.Fatal("Insert returned nil plan")
	}
	if plan.Blocks != 16 {
		t.Errorf("plan blocks = %d, want 16 (one segment)", plan.Blocks)
	}
	if plan.IsLISA {
		t.Error("FIGCache plan marked as LISA")
	}
	want := ch.RelocCost(16, true)
	if plan.Cost != want {
		t.Errorf("plan cost = %d, want %d", plan.Cost, want)
	}

	// Any block of the cached segment now hits, at the right offset.
	for _, blk := range []int{32, 35, 47} {
		redirect, hit := fc.Lookup(dram.Location{Row: 1000, Block: blk}, false)
		if !hit {
			t.Fatalf("block %d missed after insertion", blk)
		}
		if !redirect.CacheRow {
			t.Fatal("redirect not in cache row space")
		}
		if got, want := redirect.Block%16, blk%16; got != want {
			t.Errorf("block %d: redirect offset %d, want %d", blk, got, want)
		}
	}
	// A block of a different segment in the same row still misses.
	if _, hit := fc.Lookup(dram.Location{Row: 1000, Block: 50}, false); hit {
		t.Error("segment 3 hit; only segment 2 was inserted")
	}
}

func TestFIGCacheDoubleInsertIsNoop(t *testing.T) {
	fc, ch := newTestFIGCache(t, nil)
	loc := dram.Location{Row: 5, Block: 0}
	if insertNow(fc, ch, loc) == nil {
		t.Fatal("first insert failed")
	}
	if insertNow(fc, ch, loc) != nil {
		t.Error("second insert of the same segment returned a plan")
	}
	if fc.Insertions != 1 {
		t.Errorf("Insertions = %d, want 1", fc.Insertions)
	}
}

func TestFIGCacheEvictionWhenFull(t *testing.T) {
	fc, ch := newTestFIGCache(t, func(c *FIGCacheConfig) { c.CacheRowsPerBank = 1 })
	// One cache row = 8 slots. Insert 9 distinct segments; the 9th must
	// evict.
	for i := 0; i < 9; i++ {
		loc := dram.Location{Row: 100 + i, Block: 0}
		if insertNow(fc, ch, loc) == nil {
			t.Fatalf("insert %d returned nil", i)
		}
	}
	if fc.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", fc.Evictions)
	}
	fts := fc.FTSForBank(0)
	if got := fts.ValidSlots(); got != 8 {
		t.Errorf("valid slots = %d, want 8", got)
	}
}

func TestFIGCacheDirtyEvictionAddsWriteBack(t *testing.T) {
	fc, ch := newTestFIGCache(t, func(c *FIGCacheConfig) { c.CacheRowsPerBank = 1 })
	// Fill the row; dirty every segment via write hits.
	for i := 0; i < 8; i++ {
		loc := dram.Location{Row: 100 + i, Block: 0}
		insertNow(fc, ch, loc)
		if _, hit := fc.Lookup(loc, true); !hit {
			t.Fatalf("segment %d should hit", i)
		}
	}
	plan := insertNow(fc, ch, dram.Location{Row: 500, Block: 0})
	if plan == nil {
		t.Fatal("insert with eviction returned nil")
	}
	if fc.WriteBacks != 1 {
		t.Errorf("WriteBacks = %d, want 1", fc.WriteBacks)
	}
	// Cost must include both the write-back and the insertion relocation.
	want := ch.RelocStandaloneCost(16, true, false) + ch.RelocCost(16, true)
	if plan.Cost != want {
		t.Errorf("plan cost = %d, want %d", plan.Cost, want)
	}
	if plan.Blocks != 32 {
		t.Errorf("plan blocks = %d, want 32 (write-back + insert)", plan.Blocks)
	}
}

func TestFIGCacheSlowExcludesReservedSubarray(t *testing.T) {
	geo := dram.Default() // no fast subarrays
	fc, err := NewFIGCache(SlowConfig(), geo)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0..511 live in subarray 0 (the reserved one) and must never be
	// cached; rows elsewhere are cacheable.
	if fc.ShouldInsert(dram.Location{Row: 10, Block: 0}) {
		t.Error("segment from reserved subarray accepted")
	}
	if !fc.ShouldInsert(dram.Location{Row: 512, Block: 0}) {
		t.Error("segment from subarray 1 declined")
	}
}

func TestInsertionThresholdPolicy(t *testing.T) {
	fc, _ := newTestFIGCache(t, func(c *FIGCacheConfig) { c.InsertThreshold = 4 })
	loc := dram.Location{Row: 9, Block: 0}
	for i := 1; i <= 3; i++ {
		if fc.ShouldInsert(loc) {
			t.Fatalf("threshold 4: accepted on miss %d", i)
		}
	}
	if !fc.ShouldInsert(loc) {
		t.Fatal("threshold 4: declined on 4th miss")
	}
	// Counter was consumed: the next miss starts over.
	if fc.ShouldInsert(loc) {
		t.Error("counter not reset after threshold insertion")
	}
	if fc.ThrottledBy == 0 {
		t.Error("ThrottledBy not counted")
	}
}

func TestRowBenefitReplacementDrainsOneRow(t *testing.T) {
	// With 2 cache rows of 8 slots, fill the cache, make row 1's segments
	// much more beneficial, then insert new segments: the victims must all
	// come from row 0 until it is drained.
	fc, ch := newTestFIGCache(t, func(c *FIGCacheConfig) { c.CacheRowsPerBank = 2 })
	fts := fc.FTSForBank(0)
	for i := 0; i < 16; i++ {
		insertNow(fc, ch, dram.Location{Row: 100 + i, Block: 0})
	}
	// Row 1 holds segments 108..115 (slots 8..15): give them hits.
	for i := 8; i < 16; i++ {
		for j := 0; j < 5; j++ {
			fc.Lookup(dram.Location{Row: 100 + i, Block: 0}, false)
		}
	}
	// Insert 8 new segments; each must evict a row-0 resident.
	for i := 0; i < 8; i++ {
		insertNow(fc, ch, dram.Location{Row: 200 + i, Block: 0})
	}
	for i := 8; i < 16; i++ {
		if !fts.Contains(100+i, 0) {
			t.Errorf("high-benefit segment row %d evicted from row 1", 100+i)
		}
	}
	for i := 0; i < 8; i++ {
		if fts.Contains(100+i, 0) {
			t.Errorf("low-benefit segment row %d survived in row 0", 100+i)
		}
	}
}

func TestSegmentBenefitReplacementEvictsLowest(t *testing.T) {
	fc, ch := newTestFIGCache(t, func(c *FIGCacheConfig) {
		c.CacheRowsPerBank = 1
		c.Replacement = ReplSegmentBenefit
	})
	for i := 0; i < 8; i++ {
		insertNow(fc, ch, dram.Location{Row: 100 + i, Block: 0})
	}
	// Give everything except segment 103 a hit.
	for i := 0; i < 8; i++ {
		if i == 3 {
			continue
		}
		fc.Lookup(dram.Location{Row: 100 + i, Block: 0}, false)
	}
	insertNow(fc, ch, dram.Location{Row: 500, Block: 0})
	fts := fc.FTSForBank(0)
	if fts.Contains(103, 0) {
		t.Error("lowest-benefit segment 103 survived")
	}
	if !fts.Contains(500, 0) {
		t.Error("new segment not installed")
	}
}

func TestLRUReplacementEvictsOldest(t *testing.T) {
	fc, ch := newTestFIGCache(t, func(c *FIGCacheConfig) {
		c.CacheRowsPerBank = 1
		c.Replacement = ReplLRU
	})
	for i := 0; i < 8; i++ {
		insertNow(fc, ch, dram.Location{Row: 100 + i, Block: 0})
	}
	// Touch everything except 100 (the oldest untouched entry).
	for i := 1; i < 8; i++ {
		fc.Lookup(dram.Location{Row: 100 + i, Block: 0}, false)
	}
	insertNow(fc, ch, dram.Location{Row: 500, Block: 0})
	if fc.FTSForBank(0).Contains(100, 0) {
		t.Error("LRU victim 100 survived")
	}
}

func TestRandomReplacementIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		geo := dram.Default()
		geo.FastSubarrays = 2
		cfg := DefaultFIGCacheConfig()
		cfg.CacheRowsPerBank = 1
		cfg.Replacement = ReplRandom
		cfg.Seed = seed
		fc, err := NewFIGCache(cfg, geo)
		if err != nil {
			t.Fatal(err)
		}
		ch := newTestChannel(t, 2)
		for i := 0; i < 20; i++ {
			insertNow(fc, ch, dram.Location{Row: 100 + i, Block: 0})
		}
		out := make([]bool, 20)
		for i := range out {
			out[i] = fc.FTSForBank(0).Contains(100+i, 0)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random policy not deterministic for equal seeds")
		}
	}
}

func TestFIGCachePerBankIsolation(t *testing.T) {
	fc, ch := newTestFIGCache(t, nil)
	locA := dram.Location{Group: 0, Bank: 0, Row: 7, Block: 0}
	locB := dram.Location{Group: 1, Bank: 2, Row: 7, Block: 0}
	insertNow(fc, ch, locA)
	if _, hit := fc.Lookup(locB, false); hit {
		t.Error("segment cached in bank A hit in bank B")
	}
	if _, hit := fc.Lookup(locA, false); !hit {
		t.Error("segment missing in its own bank")
	}
}

func TestFIGCacheHitRateAndOccupancy(t *testing.T) {
	fc, ch := newTestFIGCache(t, nil)
	loc := dram.Location{Row: 3, Block: 0}
	fc.Lookup(loc, false) // miss
	insertNow(fc, ch, loc)
	fc.Lookup(loc, false) // hit
	if got := fc.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %g, want 0.5", got)
	}
	if fc.Occupancy() <= 0 {
		t.Error("Occupancy should be positive after an insertion")
	}
}

// Property: after any interleaving of inserts and lookups, the FTS index
// stays consistent — every valid slot is findable by its tag and no two
// slots share a tag.
func TestPropertyFTSIndexConsistent(t *testing.T) {
	f := func(ops []uint16) bool {
		geo := dram.Default()
		geo.FastSubarrays = 2
		cfg := DefaultFIGCacheConfig()
		cfg.CacheRowsPerBank = 2
		fc, err := NewFIGCache(cfg, geo)
		if err != nil {
			return false
		}
		ch := newTestChannel(t, 2)
		for _, op := range ops {
			loc := dram.Location{Row: int(op) % 4096, Block: int(op) % 128}
			if op%3 == 0 {
				if _, hit := fc.Lookup(loc, op%2 == 0); !hit && fc.ShouldInsert(loc) {
					insertNow(fc, ch, loc)
				}
			} else {
				fc.Lookup(loc, false)
			}
		}
		fts := fc.FTSForBank(0)
		seen := make(map[segKey]int)
		for i := 0; i < fts.Slots(); i++ {
			e := fts.entry(i)
			if !e.valid {
				continue
			}
			if prev, dup := seen[e.key]; dup {
				t.Logf("slots %d and %d share tag %v", prev, i, e.key)
				return false
			}
			seen[e.key] = i
			if !fts.Contains(e.key.row(), e.key.seg()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the cache never exceeds its slot capacity.
func TestPropertyCapacityNeverExceeded(t *testing.T) {
	f := func(rows []uint16) bool {
		geo := dram.Default()
		geo.FastSubarrays = 2
		cfg := DefaultFIGCacheConfig()
		cfg.CacheRowsPerBank = 2
		fc, err := NewFIGCache(cfg, geo)
		if err != nil {
			return false
		}
		ch := newTestChannel(t, 2)
		for _, r := range rows {
			insertNow(fc, ch, dram.Location{Row: int(r) % 32768, Block: 0})
			if fc.FTSForBank(0).ValidSlots() > fc.FTSForBank(0).Slots() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRowClonePSMSubstrate(t *testing.T) {
	geo := dram.Default()
	geo.FastSubarrays = 2
	cfg := DefaultFIGCacheConfig()
	cfg.Substrate = SubstrateRowClonePSM
	fc, err := NewFIGCache(cfg, geo)
	if err != nil {
		t.Fatal(err)
	}
	ch := newTestChannel(t, 2)
	plan := fc.Insert(ch, dram.Location{Row: 7, Block: 0}, 0)
	if plan == nil {
		t.Fatal("insert failed")
	}
	if !plan.ChannelWide {
		t.Error("PSM plan not marked channel-wide")
	}
	// PSM relocation is strictly more expensive than FIGARO's: two global
	// data-bus crossings per block plus the intermediate bank's rows.
	if figaro := ch.RelocCost(cfg.SegmentBlocks, true); plan.Cost <= figaro {
		t.Errorf("PSM cost %d not above FIGARO cost %d", plan.Cost, figaro)
	}
}

func TestSubstrateValidation(t *testing.T) {
	cfg := DefaultFIGCacheConfig()
	cfg.Substrate = Substrate(99)
	if err := cfg.Validate(dram.Default()); err == nil {
		t.Error("accepted unknown substrate")
	}
	if SubstrateFIGARO.String() != "FIGARO" || SubstrateRowClonePSM.String() != "RowClone-PSM" {
		t.Error("substrate names wrong")
	}
}
