package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newBank(t *testing.T) *FunctionalBank {
	t.Helper()
	b, err := NewFunctionalBank(4, 8, 16, 8) // 4 subarrays, 8 rows, 16 cols, 8 B/col
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fillRow writes a recognizable pattern into a row: byte = base + col.
func fillRow(t *testing.T, b *FunctionalBank, sub, row int, base byte) {
	t.Helper()
	data := make([]byte, 16*8)
	for col := 0; col < 16; col++ {
		for j := 0; j < 8; j++ {
			data[col*8+j] = base + byte(col)
		}
	}
	if err := b.WriteRow(sub, row, data); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionalBankRejectsBadDims(t *testing.T) {
	if _, err := NewFunctionalBank(0, 8, 16, 8); err == nil {
		t.Error("accepted zero subarrays")
	}
	if _, err := NewFunctionalBank(4, 8, 16, 0); err == nil {
		t.Error("accepted zero column bytes")
	}
}

func TestRelocFigure4Example(t *testing.T) {
	// Reproduce Figure 4: ACTIVATE subarray A row 0, RELOC col 3 -> B col
	// 1, ACTIVATE subarray B row 0. B's row must hold A3 in column 1 and
	// its original data everywhere else.
	b := newBank(t)
	fillRow(t, b, 0, 0, 0x10) // subarray A: A0..A15 = 0x10..0x1F
	fillRow(t, b, 1, 0, 0x50) // subarray B: B0..B15 = 0x50..0x5F

	if err := b.Activate(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Reloc(3, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Destination activate commits the relocated column.
	b.activated = -1 // the controller tracks the second activation
	if err := b.Activate(1, 0); err != nil {
		t.Fatal(err)
	}
	b.Precharge()

	got, err := b.ReadRow(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for col := 0; col < 16; col++ {
		want := byte(0x50 + col) // original B data
		if col == 1 {
			want = 0x13 // A3 relocated into column 1
		}
		for j := 0; j < 8; j++ {
			if got[col*8+j] != want {
				t.Fatalf("col %d byte %d = %#x, want %#x", col, j, got[col*8+j], want)
			}
		}
	}
}

func TestRelocRequiresActivation(t *testing.T) {
	b := newBank(t)
	if err := b.Reloc(0, 1, 0); err == nil {
		t.Error("RELOC allowed without an activated source row")
	}
}

func TestRelocSameSubarrayRejected(t *testing.T) {
	// Section 5.2: FIGARO cannot relocate data within the same subarray —
	// the source and destination would share one LRB.
	b := newBank(t)
	if err := b.Activate(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Reloc(0, 0, 1); err == nil {
		t.Error("RELOC allowed within the source subarray")
	}
}

func TestRelocColumnBounds(t *testing.T) {
	b := newBank(t)
	if err := b.Activate(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Reloc(16, 1, 0); err == nil {
		t.Error("RELOC accepted out-of-range source column")
	}
	if err := b.Reloc(0, 1, -1); err == nil {
		t.Error("RELOC accepted negative destination column")
	}
	if err := b.Reloc(0, 9, 0); err == nil {
		t.Error("RELOC accepted out-of-range destination subarray")
	}
}

func TestSecondActivationWithoutPrechargeRejectedSameSubarray(t *testing.T) {
	b := newBank(t)
	if err := b.Activate(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Activate(0, 1); err == nil {
		t.Error("second activation in the same subarray without precharge")
	}
}

func TestRelocateSegmentUnaligned(t *testing.T) {
	// Relocate a 4-column segment from columns 8..11 of subarray 2 into
	// columns 0..3 of a row in subarray 3 (unaligned copy through the
	// GRB).
	b := newBank(t)
	fillRow(t, b, 2, 5, 0x80)
	fillRow(t, b, 3, 2, 0x20)
	if err := b.RelocateSegment(2, 5, 8, 3, 2, 0, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		eq, err := b.ColumnsEqual(2, 5, 8+i, 3, 2, i)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("segment column %d not relocated", i)
		}
	}
	// Columns 4..15 of the destination row keep their original values.
	got, _ := b.ReadRow(3, 2)
	for col := 4; col < 16; col++ {
		if got[col*8] != byte(0x20+col) {
			t.Errorf("destination col %d corrupted: %#x", col, got[col*8])
		}
	}
	// The source row is unmodified.
	src, _ := b.ReadRow(2, 5)
	for col := 0; col < 16; col++ {
		if src[col*8] != byte(0x80+col) {
			t.Errorf("source col %d corrupted: %#x", col, src[col*8])
		}
	}
}

func TestMultipleRelocsSameDestinationRow(t *testing.T) {
	// FIGCache packs segments from different source rows into one cache
	// row; verify two relocation bursts into disjoint columns coexist.
	b := newBank(t)
	fillRow(t, b, 0, 0, 0x10)
	fillRow(t, b, 1, 0, 0x40)
	fillRow(t, b, 3, 7, 0x00)
	if err := b.RelocateSegment(0, 0, 0, 3, 7, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.RelocateSegment(1, 0, 4, 3, 7, 4, 4); err != nil {
		t.Fatal(err)
	}
	got, _ := b.ReadRow(3, 7)
	for col := 0; col < 4; col++ {
		if got[col*8] != byte(0x10+col) {
			t.Errorf("col %d = %#x, want data from subarray 0", col, got[col*8])
		}
	}
	for col := 4; col < 8; col++ {
		if got[col*8] != byte(0x40+col) {
			t.Errorf("col %d = %#x, want data from subarray 1", col, got[col*8])
		}
	}
}

func TestPrechargeRestoresActivatedRow(t *testing.T) {
	b := newBank(t)
	fillRow(t, b, 0, 3, 0x70)
	if err := b.Activate(0, 3); err != nil {
		t.Fatal(err)
	}
	b.Precharge()
	got, _ := b.ReadRow(0, 3)
	if got[0] != 0x70 {
		t.Errorf("row corrupted after activate/precharge: %#x", got[0])
	}
	// Bank is idle again: a new activation anywhere succeeds.
	if err := b.Activate(1, 0); err != nil {
		t.Errorf("activate after precharge failed: %v", err)
	}
}

// Property: relocating any segment preserves the source row exactly and
// changes only the targeted destination columns.
func TestPropertyRelocPreservesUntouchedData(t *testing.T) {
	f := func(srcRow, dstRow, srcStart, dstStart, nBlocks uint8, seed int64) bool {
		b, err := NewFunctionalBank(4, 8, 16, 8)
		if err != nil {
			return false
		}
		sr, dr := int(srcRow)%8, int(dstRow)%8
		n := int(nBlocks)%4 + 1
		ss := int(srcStart) % (16 - n + 1)
		ds := int(dstStart) % (16 - n + 1)

		mkRow := func(tag byte) []byte {
			d := make([]byte, 16*8)
			for i := range d {
				d[i] = tag ^ byte(i*7+int(seed))
			}
			return d
		}
		srcData, dstData := mkRow(0xAA), mkRow(0x33)
		if err := b.WriteRow(0, sr, srcData); err != nil {
			return false
		}
		if err := b.WriteRow(2, dr, dstData); err != nil {
			return false
		}
		if err := b.RelocateSegment(0, sr, ss, 2, dr, ds, n); err != nil {
			return false
		}
		gotSrc, _ := b.ReadRow(0, sr)
		if !bytes.Equal(gotSrc, srcData) {
			return false
		}
		gotDst, _ := b.ReadRow(2, dr)
		for col := 0; col < 16; col++ {
			lo, hi := col*8, (col+1)*8
			if col >= ds && col < ds+n {
				srcCol := ss + (col - ds)
				if !bytes.Equal(gotDst[lo:hi], srcData[srcCol*8:(srcCol+1)*8]) {
					return false
				}
			} else if !bytes.Equal(gotDst[lo:hi], dstData[lo:hi]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
