package core

import (
	"sort"

	"repro/internal/fgss"
)

// sortedKeys returns a map's keys in ascending order, so snapshot
// output is byte-identical across runs regardless of map iteration
// order.
func sortedKeys[K ~int | ~uint64, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	//fglint:deterministic keys are sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Snapshot appends the tag store's mutable state: every entry, the
// logical clock, in-flight reservations, and hit/miss counters. The
// index and row aggregates are derived and rebuilt on restore.
func (f *FTS) Snapshot(w *fgss.Writer) {
	w.Int(len(f.entries))
	for i := range f.entries {
		e := &f.entries[i]
		w.U64(uint64(e.key))
		w.Bool(e.valid)
		w.Bool(e.dirty)
		w.U64(uint64(e.benefit))
		w.I64(e.lastUse)
	}
	w.I64(f.clock)
	w.Int(f.nReserved)
	for i := range f.reserved {
		if f.reserved[i] {
			w.Int(i)
		}
	}
	w.I64(f.Hits)
	w.I64(f.Misses)
}

// Restore reads back what Snapshot wrote and rebuilds the tag index
// and, when attached, the incremental row aggregates. The receiver
// must have the snapshotted slot count (a mismatch stops decoding).
func (f *FTS) Restore(r *fgss.Reader) {
	n := r.Int()
	if n != len(f.entries) {
		return
	}
	clear(f.index)
	for i := 0; i < n && r.Err() == nil; i++ {
		e := &f.entries[i]
		e.key = segKey(r.U64())
		e.valid = r.Bool()
		e.dirty = r.Bool()
		e.benefit = uint8(r.U64())
		e.lastUse = r.I64()
		if e.valid {
			f.index[e.key] = i
		}
	}
	f.clock = r.I64()
	clear(f.reserved)
	f.nReserved = 0
	nres := r.Int()
	for i := 0; i < nres && r.Err() == nil; i++ {
		f.Reserve(r.Int())
	}
	f.Hits = r.I64()
	f.Misses = r.I64()
	if f.rowIndex != nil {
		// SetRowIndex re-derives the per-row benefit sums and dirty
		// bitvectors from the restored entries; the dimensions cannot
		// mismatch because the index was attached to this same FTS.
		_ = f.SetRowIndex(f.rowIndex)
	}
}

// snapshot appends the replacement policy's mutable state: the
// draining-row register, its eviction bitvector, and the PRNG.
func (r *replacer) snapshot(w *fgss.Writer) {
	w.Int(r.evictRow)
	w.U64(r.evictMask)
	w.Bool(r.draining)
	w.U64(uint64(r.rng))
}

func (r *replacer) restore(rd *fgss.Reader) {
	r.evictRow = rd.Int()
	r.evictMask = rd.U64()
	r.draining = rd.Bool()
	r.rng = splitmix64(rd.U64())
}

// Snapshot appends the cache's full mutable state, bank by bank: tag
// store, replacement state, threshold miss counters, in-flight
// insertion markers, then the aggregate counters. Maps are emitted in
// sorted-key order for deterministic output.
func (c *FIGCache) Snapshot(w *fgss.Writer) {
	w.Int(len(c.banks))
	for _, b := range c.banks {
		b.fts.Snapshot(w)
		b.repl.snapshot(w)
		w.Int(len(b.missCounts))
		for _, k := range sortedKeys(b.missCounts) {
			w.U64(uint64(k))
			w.Int(b.missCounts[k])
		}
		w.Int(len(b.inflight))
		for _, k := range sortedKeys(b.inflight) {
			w.U64(uint64(k))
		}
	}
	w.I64(c.Insertions)
	w.I64(c.Evictions)
	w.I64(c.WriteBacks)
	w.I64(c.ThrottledBy)
}

// Restore reads back what Snapshot wrote. The receiver must be built
// from the same configuration (bank count mismatch stops decoding).
func (c *FIGCache) Restore(r *fgss.Reader) {
	if r.Int() != len(c.banks) {
		return
	}
	for _, b := range c.banks {
		b.fts.Restore(r)
		b.repl.restore(r)
		clear(b.missCounts)
		n := r.Int()
		for i := 0; i < n && r.Err() == nil; i++ {
			k := segKey(r.U64())
			b.missCounts[k] = r.Int()
		}
		clear(b.inflight)
		n = r.Int()
		for i := 0; i < n && r.Err() == nil; i++ {
			b.inflight[segKey(r.U64())] = true
		}
	}
	c.Insertions = r.I64()
	c.Evictions = r.I64()
	c.WriteBacks = r.I64()
	c.ThrottledBy = r.I64()
}

// Snapshot appends the baseline cache's mutable state, bank by bank:
// cache-row entries, in-flight markers, hot-row counters, and the
// epoch/clock/hit state, then the aggregate counters.
func (l *LISAVilla) Snapshot(w *fgss.Writer) {
	w.Int(len(l.banks))
	for _, b := range l.banks {
		w.Int(len(b.rows))
		for i := range b.rows {
			row := &b.rows[i]
			w.Int(row.srcRow)
			w.Bool(row.valid)
			w.Bool(row.dirty)
			w.I64(row.lastUse)
		}
		w.Int(len(b.inflight))
		for _, k := range sortedKeys(b.inflight) {
			w.Int(k)
		}
		w.Int(len(b.hot))
		for _, k := range sortedKeys(b.hot) {
			w.Int(k)
			w.Int(b.hot[k])
		}
		w.Int(b.missesEpoch)
		w.I64(b.clock)
		w.I64(b.hits)
		w.I64(b.misses)
	}
	w.I64(l.Insertions)
	w.I64(l.Evictions)
	w.I64(l.WriteBacks)
	w.I64(l.TotalHops)
}

// Restore reads back what Snapshot wrote and rebuilds each bank's
// source-row index from the valid cache rows. The receiver must be
// built from the same configuration.
func (l *LISAVilla) Restore(r *fgss.Reader) {
	if r.Int() != len(l.banks) {
		return
	}
	for _, b := range l.banks {
		if r.Int() != len(b.rows) {
			return
		}
		clear(b.index)
		for i := 0; i < len(b.rows) && r.Err() == nil; i++ {
			row := &b.rows[i]
			row.srcRow = r.Int()
			row.valid = r.Bool()
			row.dirty = r.Bool()
			row.lastUse = r.I64()
			if row.valid {
				b.index[row.srcRow] = i
			}
		}
		clear(b.inflight)
		n := r.Int()
		for i := 0; i < n && r.Err() == nil; i++ {
			b.inflight[r.Int()] = true
		}
		clear(b.hot)
		n = r.Int()
		for i := 0; i < n && r.Err() == nil; i++ {
			k := r.Int()
			b.hot[k] = r.Int()
		}
		b.missesEpoch = r.Int()
		b.clock = r.I64()
		b.hits = r.I64()
		b.misses = r.I64()
	}
	l.Insertions = r.I64()
	l.Evictions = r.I64()
	l.WriteBacks = r.I64()
	l.TotalHops = r.I64()
}
