package core

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

func newTestLISA(t *testing.T) (*LISAVilla, *dram.Channel) {
	t.Helper()
	geo := dram.Default()
	geo.FastSubarrays = 16
	l, err := NewLISAVilla(DefaultLISAVillaConfig(), geo)
	if err != nil {
		t.Fatal(err)
	}
	return l, newTestChannel(t, 16)
}

// lisaInsertNow performs an insertion and immediately commits it.
func lisaInsertNow(l *LISAVilla, ch *dram.Channel, loc dram.Location) *memctrl.RelocPlan {
	plan := l.Insert(ch, loc, 0)
	if plan != nil {
		l.Commit(plan)
	}
	return plan
}

func TestLISAConfigValidate(t *testing.T) {
	geo := dram.Default()
	if err := DefaultLISAVillaConfig().Validate(geo); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultLISAVillaConfig()
	bad.CacheRowsPerBank = 0
	if err := bad.Validate(geo); err == nil {
		t.Error("accepted zero cache rows")
	}
	bad = DefaultLISAVillaConfig()
	bad.HotThreshold = 0
	if err := bad.Validate(geo); err == nil {
		t.Error("accepted zero hot threshold")
	}
}

func TestLISAHotThresholdInsertion(t *testing.T) {
	l, _ := newTestLISA(t)
	loc := dram.Location{Row: 77, Block: 0}
	// Default threshold is 2: first miss does not insert, second does.
	if l.ShouldInsert(loc) {
		t.Fatal("inserted on first miss with threshold 2")
	}
	if !l.ShouldInsert(loc) {
		t.Fatal("did not insert on second miss")
	}
}

func TestLISARowGranularityCaching(t *testing.T) {
	l, ch := newTestLISA(t)
	loc := dram.Location{Row: 77, Block: 3}
	plan := lisaInsertNow(l, ch, loc)
	if plan == nil {
		t.Fatal("Insert returned nil")
	}
	if !plan.IsLISA || plan.Hops < 1 {
		t.Errorf("plan = %+v, want LISA with >= 1 hop", plan)
	}
	// Every block of the row hits (row granularity).
	for _, blk := range []int{0, 64, 127} {
		redirect, hit := l.Lookup(dram.Location{Row: 77, Block: blk}, false)
		if !hit {
			t.Fatalf("block %d missed after whole-row insertion", blk)
		}
		if !redirect.CacheRow || redirect.Block != blk {
			t.Errorf("block %d redirect = %v", blk, redirect)
		}
	}
	// Other rows still miss.
	if _, hit := l.Lookup(dram.Location{Row: 78, Block: 0}, false); hit {
		t.Error("uncached row hit")
	}
}

func TestLISAHopsDistanceDependent(t *testing.T) {
	l, _ := newTestLISA(t)
	// 64 slow subarrays, 16 fast: runs of 4, fast at center (offset 2).
	// Row in subarray offset 2 of its run: 1 hop; offset 0: 3 hops.
	rowsPer := dram.Default().RowsPerSubarray
	center := l.Hops(2 * rowsPer) // subarray 2, offset 2 -> distance 0 -> 1 hop
	edge := l.Hops(0)             // subarray 0, offset 0 -> distance 2 -> 3 hops
	if center != 1 {
		t.Errorf("center hops = %d, want 1", center)
	}
	if edge <= center {
		t.Errorf("edge hops (%d) not greater than center hops (%d)", edge, center)
	}
}

func TestLISAEvictionLRUAndWriteBack(t *testing.T) {
	geo := dram.Default()
	geo.FastSubarrays = 16
	cfg := DefaultLISAVillaConfig()
	cfg.CacheRowsPerBank = 2
	l, err := NewLISAVilla(cfg, geo)
	if err != nil {
		t.Fatal(err)
	}
	ch := newTestChannel(t, 16)
	lisaInsertNow(l, ch, dram.Location{Row: 1})
	lisaInsertNow(l, ch, dram.Location{Row: 2})
	// Touch row 1 so row 2 is LRU; dirty row 2 with a write hit.
	l.Lookup(dram.Location{Row: 2, Block: 0}, true)
	l.Lookup(dram.Location{Row: 1, Block: 0}, false)
	// Third insertion evicts row 2 (LRU) and pays its write-back.
	plan := lisaInsertNow(l, ch, dram.Location{Row: 3})
	if plan == nil {
		t.Fatal("insert returned nil")
	}
	if l.Evictions != 1 || l.WriteBacks != 1 {
		t.Errorf("evictions=%d writebacks=%d, want 1/1", l.Evictions, l.WriteBacks)
	}
	if _, hit := l.Lookup(dram.Location{Row: 2, Block: 0}, false); hit {
		t.Error("evicted row still hits")
	}
	if _, hit := l.Lookup(dram.Location{Row: 1, Block: 0}, false); !hit {
		t.Error("MRU row was evicted")
	}
}

func TestLISAHotCounterDecay(t *testing.T) {
	geo := dram.Default()
	geo.FastSubarrays = 16
	cfg := DefaultLISAVillaConfig()
	cfg.EpochMisses = 4
	cfg.HotThreshold = 3
	l, err := NewLISAVilla(cfg, geo)
	if err != nil {
		t.Fatal(err)
	}
	loc := dram.Location{Row: 9}
	l.ShouldInsert(loc) // count 1
	l.ShouldInsert(loc) // count 2
	// Fill the epoch with misses to other rows to trigger decay.
	l.ShouldInsert(dram.Location{Row: 100})
	l.ShouldInsert(dram.Location{Row: 101}) // decay fires: count 9 -> 1
	// Two more misses needed to reach the threshold again.
	if l.ShouldInsert(loc) {
		t.Error("row considered hot right after decay")
	}
	if !l.ShouldInsert(loc) {
		t.Error("row not hot after re-accumulating misses")
	}
}

func TestLISADoubleInsertNoop(t *testing.T) {
	l, ch := newTestLISA(t)
	if lisaInsertNow(l, ch, dram.Location{Row: 5}) == nil {
		t.Fatal("first insert failed")
	}
	if lisaInsertNow(l, ch, dram.Location{Row: 5}) != nil {
		t.Error("duplicate insert returned a plan")
	}
}

func TestLISAHitRate(t *testing.T) {
	l, ch := newTestLISA(t)
	l.Lookup(dram.Location{Row: 4}, false) // miss
	lisaInsertNow(l, ch, dram.Location{Row: 4})
	l.Lookup(dram.Location{Row: 4}, false) // hit
	if got := l.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %g, want 0.5", got)
	}
}
