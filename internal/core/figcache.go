package core

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

// FIGCacheConfig parameterizes the fine-grained in-DRAM cache.
type FIGCacheConfig struct {
	// SegmentBlocks is the row segment size in cache blocks. The paper's
	// default is 16 blocks (1 kB, 1/8 of an 8 kB row); Section 9.2 sweeps
	// 8 to 128.
	SegmentBlocks int
	// CacheRowsPerBank is the number of in-DRAM cache rows per bank
	// (64 in the paper: two 32-row fast subarrays, or 64 reserved rows of
	// a slow subarray for FIGCache-Slow).
	CacheRowsPerBank int
	// Replacement selects the eviction policy (default ReplRowBenefit).
	Replacement ReplacementKind
	// InsertThreshold is the number of misses a segment must accumulate
	// before it is inserted. 1 is the paper's insert-any-miss policy;
	// Section 9.4 sweeps 1, 2, 4, 8.
	InsertThreshold int
	// BenefitBits is the width of the per-segment benefit counter (5).
	BenefitBits int
	// ReservedSubarray, when >= 0, marks the slow subarray whose rows host
	// the cache in the FIGCache-Slow organization. Segments belonging to
	// that subarray are never cached, because FIGARO cannot relocate data
	// within a single subarray (Section 5.2).
	ReservedSubarray int
	// Substrate selects the in-DRAM relocation mechanism (default FIGARO).
	Substrate Substrate
	// Seed makes the Random replacement policy deterministic.
	Seed uint64
}

// Substrate enumerates the relocation mechanisms FIGCache can be built
// on: FIGARO (the paper's contribution; bank-local, distance-independent)
// or RowClone-PSM (the Section 10 related-work baseline, which moves data
// over the shared internal global data bus and blocks the whole channel).
type Substrate int

const (
	SubstrateFIGARO Substrate = iota
	SubstrateRowClonePSM

	numSubstrates
)

var substrateNames = [numSubstrates]string{"FIGARO", "RowClone-PSM"}

func (s Substrate) String() string {
	if s < 0 || int(s) >= len(substrateNames) {
		return fmt.Sprintf("Substrate(%d)", int(s))
	}
	return substrateNames[s]
}

// DefaultFIGCacheConfig returns the paper's default FIGCache parameters
// for the fast-subarray organization (FIGCache-Fast).
func DefaultFIGCacheConfig() FIGCacheConfig {
	return FIGCacheConfig{
		SegmentBlocks:    16,
		CacheRowsPerBank: 64,
		Replacement:      ReplRowBenefit,
		InsertThreshold:  1,
		BenefitBits:      5,
		ReservedSubarray: -1,
		Seed:             1,
	}
}

// SlowConfig returns the FIGCache-Slow configuration: the cache rows are
// 64 reserved rows in slow subarray 0, so segments from subarray 0 are
// excluded from caching.
func SlowConfig() FIGCacheConfig {
	cfg := DefaultFIGCacheConfig()
	cfg.ReservedSubarray = 0
	return cfg
}

// Validate reports configuration errors.
func (c FIGCacheConfig) Validate(geo dram.Geometry) error {
	switch {
	case c.SegmentBlocks <= 0 || c.SegmentBlocks > geo.BlocksPerRow():
		return fmt.Errorf("core: segment blocks %d out of range (1..%d)", c.SegmentBlocks, geo.BlocksPerRow())
	case geo.BlocksPerRow()%c.SegmentBlocks != 0:
		return fmt.Errorf("core: segment blocks %d must divide blocks per row %d", c.SegmentBlocks, geo.BlocksPerRow())
	case c.CacheRowsPerBank <= 0:
		return fmt.Errorf("core: cache rows per bank must be positive, got %d", c.CacheRowsPerBank)
	case c.InsertThreshold <= 0:
		return fmt.Errorf("core: insert threshold must be positive, got %d", c.InsertThreshold)
	case c.Replacement < 0 || c.Replacement >= numReplacementKinds:
		return fmt.Errorf("core: unknown replacement kind %d", int(c.Replacement))
	case c.BenefitBits <= 0 || c.BenefitBits > 8:
		return fmt.Errorf("core: benefit bits must be in [1,8], got %d", c.BenefitBits)
	case c.Substrate < 0 || c.Substrate >= numSubstrates:
		return fmt.Errorf("core: unknown relocation substrate %d", int(c.Substrate))
	}
	return nil
}

// FIGCache is the fine-grained in-DRAM cache of Section 5, covering every
// bank of one channel. It implements memctrl.CacheHook.
type FIGCache struct {
	cfg FIGCacheConfig
	geo dram.Geometry

	banks []*bankCache

	// plan is the scratch the next Insert returns a pointer to; per the
	// CacheHook contract the controller copies it before the call after.
	// Keeping it here instead of allocating per insertion is what lets a
	// relocating preset run allocation-free in steady state.
	//fglint:preserved scratch; fully overwritten by every Insert before the pointer is returned
	plan memctrl.RelocPlan

	// Stats aggregated across banks.
	Insertions  int64
	Evictions   int64
	WriteBacks  int64 // dirty-segment write-back relocations
	ThrottledBy int64 // insertions declined by the threshold policy
}

type bankCache struct {
	fts  *FTS
	repl *replacer
	// missCounts tracks per-segment consecutive misses for threshold
	// insertion policies (threshold > 1). Cleared on insertion.
	missCounts map[segKey]int
	// inflight marks segments whose insertion the controller has planned
	// but not yet executed (the relocation runs when the source row
	// closes). Requests in this window keep hitting the open source row,
	// and duplicate insertions are suppressed.
	inflight map[segKey]bool
}

// NewFIGCache builds a FIGCache over the channel geometry.
func NewFIGCache(cfg FIGCacheConfig, geo dram.Geometry) (*FIGCache, error) {
	if err := cfg.Validate(geo); err != nil {
		return nil, err
	}
	segsPerRow := geo.BlocksPerRow() / cfg.SegmentBlocks
	c := &FIGCache{cfg: cfg, geo: geo}
	nBanks := geo.Ranks * geo.BanksPerRank()
	for i := 0; i < nBanks; i++ {
		fts, err := NewFTS(cfg.CacheRowsPerBank*segsPerRow, segsPerRow, cfg.BenefitBits)
		if err != nil {
			return nil, err
		}
		// Maintain per-row benefit sums incrementally, as the paper's
		// Dirty-Block-Index footnote suggests hardware would.
		ri, err := NewRowIndex(cfg.CacheRowsPerBank, segsPerRow)
		if err != nil {
			return nil, err
		}
		if err := fts.SetRowIndex(ri); err != nil {
			return nil, err
		}
		c.banks = append(c.banks, &bankCache{
			fts:        fts,
			repl:       newReplacer(cfg.Replacement, cfg.Seed+uint64(i)),
			missCounts: make(map[segKey]int),
			inflight:   make(map[segKey]bool),
		})
	}
	return c, nil
}

// Config returns the cache configuration.
func (c *FIGCache) Config() FIGCacheConfig { return c.cfg }

// FTSForBank exposes a bank's tag store (stats, tests).
func (c *FIGCache) FTSForBank(id int) *FTS { return c.banks[id].fts }

// segOf returns the segment index of a block within its row.
func (c *FIGCache) segOf(block int) int { return block / c.cfg.SegmentBlocks }

// cacheLoc converts an FTS slot plus block offset into the DRAM location
// of the block inside the in-DRAM cache row space.
func (c *FIGCache) cacheLoc(orig dram.Location, fts *FTS, slot, blockInSeg int) dram.Location {
	return dram.Location{
		Rank:     orig.Rank,
		Group:    orig.Group,
		Bank:     orig.Bank,
		Row:      fts.RowOfSlot(slot),
		Block:    fts.SlotOffset(slot)*c.cfg.SegmentBlocks + blockInSeg,
		CacheRow: true,
	}
}

// Lookup implements memctrl.CacheHook: FTS lookup for every request.
func (c *FIGCache) Lookup(loc dram.Location, isWrite bool) (dram.Location, bool) {
	bank := c.banks[loc.BankID(c.geo)]
	seg := c.segOf(loc.Block)
	slot, hit := bank.fts.Lookup(loc.Row, seg, isWrite)
	if !hit {
		return dram.Location{}, false
	}
	return c.cacheLoc(loc, bank.fts, slot, loc.Block%c.cfg.SegmentBlocks), true
}

// ShouldInsert implements the insertion policy of Section 5.1/9.4:
// insert-any-miss when InsertThreshold is 1, otherwise insert after the
// segment accumulates InsertThreshold consecutive misses. Segments from
// the reserved subarray (FIGCache-Slow) are never inserted.
func (c *FIGCache) ShouldInsert(loc dram.Location) bool {
	if c.cfg.ReservedSubarray >= 0 && c.geo.SubarrayOfRow(loc.Row) == c.cfg.ReservedSubarray {
		return false
	}
	if c.cfg.InsertThreshold == 1 {
		return true
	}
	bank := c.banks[loc.BankID(c.geo)]
	key := makeSegKey(loc.Row, c.segOf(loc.Block))
	bank.missCounts[key]++
	if bank.missCounts[key] >= c.cfg.InsertThreshold {
		delete(bank.missCounts, key)
		return true
	}
	c.ThrottledBy++
	return false
}

// Insert implements memctrl.CacheHook: allocate a slot (evicting per the
// replacement policy if full) and return the relocation plan. The source
// row is open when Insert is called, so the insertion relocation skips
// the first ACTIVATE (Section 8.1); a dirty victim adds a standalone
// write-back relocation to the plan cost. The tag is installed by the
// plan's Commit when the controller executes the relocation, so requests
// arriving while the source row remains open keep hitting it.
func (c *FIGCache) Insert(ch *dram.Channel, loc dram.Location, now int64) *memctrl.RelocPlan {
	bank := c.banks[loc.BankID(c.geo)]
	seg := c.segOf(loc.Block)
	key := makeSegKey(loc.Row, seg)
	if bank.fts.Contains(loc.Row, seg) || bank.inflight[key] {
		return nil // already cached or already being inserted
	}

	var cost int64
	blocks := c.cfg.SegmentBlocks
	psm := c.cfg.Substrate == SubstrateRowClonePSM
	slot, free := bank.fts.FreeSlot()
	if !free {
		slot = bank.repl.victim(bank.fts)
		if slot < 0 {
			return nil // everything evictable is reserved by in-flight work
		}
		_, _, dirty, valid := bank.fts.Evict(slot)
		if valid {
			c.Evictions++
			if dirty {
				// Write the victim segment back: ACT(cache row) + n RELOC +
				// ACT(source row) + PRE.
				if psm {
					cost += ch.PSMCost(blocks, false)
				} else {
					cost += ch.RelocStandaloneCost(blocks, true, false)
				}
				blocks += c.cfg.SegmentBlocks
				c.WriteBacks++
			}
		}
	}
	// Insertion relocation with the source row already open: n RELOC +
	// ACT(cache row) + PRE via FIGARO, or the channel-blocking two-hop
	// copy via RowClone-PSM.
	if psm {
		cost += ch.PSMCost(c.cfg.SegmentBlocks, true)
	} else {
		cost += ch.RelocCost(c.cfg.SegmentBlocks, true)
	}
	bank.inflight[key] = true
	bank.fts.Reserve(slot)
	c.Insertions++
	c.plan = memctrl.RelocPlan{
		Loc: loc, Cost: cost, Blocks: blocks, ChannelWide: psm,
		CommitBank: loc.BankID(c.geo), CommitSlot: slot,
		CommitRow: loc.Row, CommitSeg: seg,
	}
	return &c.plan
}

// Commit implements memctrl.CacheHook: install the tag for a plan Insert
// returned, clearing its reservation. Called by the controller when the
// relocation executes.
func (c *FIGCache) Commit(p *memctrl.RelocPlan) {
	bank := c.banks[p.CommitBank]
	delete(bank.inflight, makeSegKey(p.CommitRow, p.CommitSeg))
	bank.fts.Unreserve(p.CommitSlot)
	bank.fts.Install(p.CommitSlot, p.CommitRow, p.CommitSeg, false)
}

// HitRate returns the aggregate in-DRAM cache hit rate.
func (c *FIGCache) HitRate() float64 {
	var hits, misses int64
	for _, b := range c.banks {
		hits += b.fts.Hits
		misses += b.fts.Misses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Occupancy returns the fraction of cache slots currently valid,
// aggregated over all banks.
func (c *FIGCache) Occupancy() float64 {
	var valid, total int
	for _, b := range c.banks {
		valid += b.fts.ValidSlots()
		total += b.fts.Slots()
	}
	if total == 0 {
		return 0
	}
	return float64(valid) / float64(total)
}

var _ memctrl.CacheHook = (*FIGCache)(nil)
