package core

import "fmt"

// segKey uniquely identifies a row segment within one bank: the source
// row and the segment index within that row. It is the "tag (original
// address)" field of an FTS entry (Figure 6).
type segKey uint64

func makeSegKey(row, seg int) segKey { return segKey(uint64(row)<<8 | uint64(seg)) }

func (k segKey) row() int { return int(k >> 8) }
func (k segKey) seg() int { return int(k & 0xff) }

// ftsEntry is one entry of the FIGCache tag store: the tag of the cached
// segment, valid and dirty bits, and the saturating benefit counter used
// by the replacement policy (Section 5.1).
type ftsEntry struct {
	key     segKey
	valid   bool
	dirty   bool
	benefit uint8
	lastUse int64 // logical timestamp for the LRU comparison policy
}

// FTS is the FIGCache tag store for one bank: a fully-associative array
// with one entry per in-DRAM cache slot, where each slot holds one row
// segment. The paper's configuration has 512 slots per bank (64 cache
// rows x 8 segments per row).
type FTS struct {
	entries    []ftsEntry
	index      map[segKey]int // valid tag -> slot
	segsPerRow int            // cache slots per cache row
	benefitMax uint8          // saturation value (5-bit counter -> 31)
	clock      int64

	// reserved marks slots claimed by an in-flight insertion (planned but
	// not yet executed by the controller); they are neither allocatable
	// nor evictable until the insertion commits. A dense bitmap rather
	// than a map: slots are bounded and small, and map insert/delete
	// churn allocates during same-size bucket growth, which would break
	// the allocation-free steady state.
	reserved  []bool
	nReserved int

	// rowIndex, when attached via SetRowIndex, maintains per-row benefit
	// sums and dirty bitvectors incrementally (the Dirty-Block-Index
	// optimization of Section 5.1 footnote 2).
	rowIndex *RowIndex

	// Stats.
	Hits, Misses int64
}

// NewFTS builds a tag store with slots entries, segsPerRow slots per cache
// row, and a benefit counter of benefitBits bits.
func NewFTS(slots, segsPerRow, benefitBits int) (*FTS, error) {
	if slots <= 0 || segsPerRow <= 0 || slots%segsPerRow != 0 {
		return nil, fmt.Errorf("core: slots (%d) must be a positive multiple of segsPerRow (%d)", slots, segsPerRow)
	}
	if benefitBits <= 0 || benefitBits > 8 {
		return nil, fmt.Errorf("core: benefitBits must be in [1,8], got %d", benefitBits)
	}
	return &FTS{
		entries:    make([]ftsEntry, slots),
		index:      make(map[segKey]int, slots),
		segsPerRow: segsPerRow,
		benefitMax: uint8(1<<benefitBits - 1),
		reserved:   make([]bool, slots),
	}, nil
}

// Slots returns the number of cache slots the FTS tracks.
func (f *FTS) Slots() int { return len(f.entries) }

// CacheRows returns the number of cache rows covered by the FTS.
func (f *FTS) CacheRows() int { return len(f.entries) / f.segsPerRow }

// SegsPerRow returns the number of segments per cache row.
func (f *FTS) SegsPerRow() int { return f.segsPerRow }

// Lookup checks whether the segment (row, seg) is cached. On a hit it
// increments the benefit counter (saturating), optionally sets the dirty
// bit, and returns the slot index.
func (f *FTS) Lookup(row, seg int, isWrite bool) (slot int, hit bool) {
	f.clock++
	i, ok := f.index[makeSegKey(row, seg)]
	if !ok {
		f.Misses++
		return 0, false
	}
	e := &f.entries[i]
	delta := 0
	if e.benefit < f.benefitMax {
		e.benefit++
		delta = 1
	}
	if isWrite {
		e.dirty = true
	}
	e.lastUse = f.clock
	if f.rowIndex != nil {
		f.rowIndex.OnHit(i, delta, isWrite)
	}
	f.Hits++
	return i, true
}

// Contains reports whether a segment is cached without touching metadata.
func (f *FTS) Contains(row, seg int) bool {
	_, ok := f.index[makeSegKey(row, seg)]
	return ok
}

// FreeSlot returns an invalid, unreserved slot index, or (0, false) if
// the cache is full. Slots are scanned in order, so consecutive
// insertions pack into the same cache row (the co-location Section 5.1
// relies on).
func (f *FTS) FreeSlot() (int, bool) {
	for i, e := range f.entries {
		if !e.valid && !f.reserved[i] {
			return i, true
		}
	}
	return 0, false
}

// Reserve claims a slot for an in-flight insertion; Unreserve releases
// it. Reserved slots are skipped by FreeSlot and by replacement.
func (f *FTS) Reserve(slot int) {
	if !f.reserved[slot] {
		f.reserved[slot] = true
		f.nReserved++
	}
}

// Unreserve releases a slot claimed by Reserve.
func (f *FTS) Unreserve(slot int) {
	if f.reserved[slot] {
		f.reserved[slot] = false
		f.nReserved--
	}
}

// IsReserved reports whether a slot is claimed by an in-flight insertion.
func (f *FTS) IsReserved(slot int) bool { return f.reserved[slot] }

// Install fills a slot with a new segment, resetting its metadata. Any
// previous valid entry in the slot must have been evicted first.
func (f *FTS) Install(slot, row, seg int, dirty bool) {
	f.clock++
	e := &f.entries[slot]
	if e.valid {
		delete(f.index, e.key)
	}
	if f.rowIndex != nil {
		old, oldDirty := 0, false
		if e.valid {
			old, oldDirty = int(e.benefit), e.dirty
		}
		f.rowIndex.OnInstall(slot, old, oldDirty)
		if dirty {
			f.rowIndex.OnHit(slot, 0, true)
		}
	}
	key := makeSegKey(row, seg)
	*e = ftsEntry{key: key, valid: true, dirty: dirty, benefit: 0, lastUse: f.clock}
	f.index[key] = slot
}

// Evict invalidates a slot and returns its tag and dirty bit, so the
// caller can schedule a write-back relocation for dirty victims.
func (f *FTS) Evict(slot int) (row, seg int, dirty, wasValid bool) {
	e := &f.entries[slot]
	if !e.valid {
		return 0, 0, false, false
	}
	delete(f.index, e.key)
	row, seg, dirty = e.key.row(), e.key.seg(), e.dirty
	if f.rowIndex != nil {
		f.rowIndex.OnEvict(slot, int(e.benefit), e.dirty)
	}
	*e = ftsEntry{}
	return row, seg, dirty, true
}

// RowOfSlot returns the cache row holding a slot.
func (f *FTS) RowOfSlot(slot int) int { return slot / f.segsPerRow }

// SlotOffset returns the segment position of a slot within its cache row.
func (f *FTS) SlotOffset(slot int) int { return slot % f.segsPerRow }

// RowBenefit returns the cumulative benefit of all valid segments in a
// cache row — the quantity the RowBenefit replacement policy minimizes
// (Section 5.1; the paper notes a Dirty-Block-Index-style structure can
// maintain these sums in hardware).
func (f *FTS) RowBenefit(cacheRow int) int {
	sum := 0
	for i := cacheRow * f.segsPerRow; i < (cacheRow+1)*f.segsPerRow; i++ {
		if f.entries[i].valid {
			sum += int(f.entries[i].benefit)
		}
	}
	return sum
}

// ValidSlots returns the number of valid entries.
func (f *FTS) ValidSlots() int {
	n := 0
	for _, e := range f.entries {
		if e.valid {
			n++
		}
	}
	return n
}

// HitRate returns the fraction of lookups that hit.
func (f *FTS) HitRate() float64 {
	total := f.Hits + f.Misses
	if total == 0 {
		return 0
	}
	return float64(f.Hits) / float64(total)
}

// entry returns a copy of a slot's entry (tests and policies).
func (f *FTS) entry(slot int) ftsEntry { return f.entries[slot] }
