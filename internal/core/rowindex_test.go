package core

import (
	"testing"
	"testing/quick"
)

func TestRowIndexBasics(t *testing.T) {
	ri, err := NewRowIndex(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Rows() != 4 {
		t.Fatalf("rows = %d", ri.Rows())
	}
	ri.OnHit(0, 1, false) // slot 0 -> row 0
	ri.OnHit(9, 1, true)  // slot 9 -> row 1, dirty
	ri.OnHit(9, 1, false) // row 1 sum = 2
	if ri.Sum(0) != 1 || ri.Sum(1) != 2 {
		t.Errorf("sums = %d,%d, want 1,2", ri.Sum(0), ri.Sum(1))
	}
	if ri.DirtyMask(1) != 1<<1 {
		t.Errorf("dirty mask = %b, want bit 1", ri.DirtyMask(1))
	}
	ri.OnEvict(9, 2, true)
	if ri.Sum(1) != 0 || ri.DirtyMask(1) != 0 {
		t.Errorf("eviction did not clear: sum=%d dirty=%b", ri.Sum(1), ri.DirtyMask(1))
	}
}

func TestRowIndexRejectsBadDims(t *testing.T) {
	if _, err := NewRowIndex(0, 8); err == nil {
		t.Error("accepted zero rows")
	}
	if _, err := NewRowIndex(4, 65); err == nil {
		t.Error("accepted >64 segments per row")
	}
}

func TestRowIndexMinRow(t *testing.T) {
	ri, _ := NewRowIndex(3, 4)
	ri.OnHit(0, 5, false) // row 0 sum 5
	ri.OnHit(4, 2, false) // row 1 sum 2
	ri.OnHit(8, 9, false) // row 2 sum 9
	if got := ri.MinRow(func(int) bool { return true }); got != 1 {
		t.Errorf("MinRow = %d, want 1", got)
	}
	if got := ri.MinRow(func(r int) bool { return r != 1 }); got != 0 {
		t.Errorf("MinRow excluding 1 = %d, want 0", got)
	}
	if got := ri.MinRow(func(int) bool { return false }); got != -1 {
		t.Errorf("MinRow with nothing eligible = %d, want -1", got)
	}
}

func TestSetRowIndexDimensionCheck(t *testing.T) {
	f, _ := NewFTS(32, 8, 5)
	ri, _ := NewRowIndex(3, 8) // wrong row count
	if err := f.SetRowIndex(ri); err == nil {
		t.Error("accepted mismatched row index")
	}
	ri2, _ := NewRowIndex(4, 8)
	if err := f.SetRowIndex(ri2); err != nil {
		t.Fatal(err)
	}
	if !f.RowIndexed() {
		t.Error("index not attached")
	}
}

func TestSetRowIndexRebuildsFromContents(t *testing.T) {
	f, _ := NewFTS(16, 8, 5)
	f.Install(0, 10, 0, true)
	f.Install(9, 11, 0, false)
	f.Lookup(11, 0, false)
	ri, _ := NewRowIndex(2, 8)
	if err := f.SetRowIndex(ri); err != nil {
		t.Fatal(err)
	}
	if ri.Sum(1) != 1 {
		t.Errorf("rebuilt sum(1) = %d, want 1", ri.Sum(1))
	}
	if ri.DirtyMask(0) != 1 {
		t.Errorf("rebuilt dirty(0) = %b, want bit 0", ri.DirtyMask(0))
	}
}

// Property: under any interleaving of FTS operations, the incremental
// RowIndex sums equal the naive per-row scans (the equivalence that makes
// the Dirty-Block-Index optimization legal).
func TestPropertyRowIndexMatchesNaiveSums(t *testing.T) {
	f := func(ops []uint16) bool {
		fts, err := NewFTS(32, 8, 5)
		if err != nil {
			return false
		}
		ri, _ := NewRowIndex(4, 8)
		if err := fts.SetRowIndex(ri); err != nil {
			return false
		}
		for _, op := range ops {
			slot := int(op) % 32
			row := int(op>>5) % 64
			switch op % 3 {
			case 0:
				fts.Install(slot, row, int(op)%8, op%2 == 0)
			case 1:
				fts.Lookup(row, int(op)%8, op%5 == 0)
			case 2:
				fts.Evict(slot)
			}
			// Invariant: incremental sums match naive recomputation.
			for r := 0; r < fts.CacheRows(); r++ {
				if ri.Sum(r) != fts.RowBenefit(r) {
					t.Logf("row %d: index %d vs naive %d", r, ri.Sum(r), fts.RowBenefit(r))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the dirty mask exactly tracks the dirty bits of valid
// entries.
func TestPropertyRowIndexDirtyMask(t *testing.T) {
	f := func(ops []uint16) bool {
		fts, _ := NewFTS(32, 8, 5)
		ri, _ := NewRowIndex(4, 8)
		if err := fts.SetRowIndex(ri); err != nil {
			return false
		}
		for _, op := range ops {
			slot := int(op) % 32
			row := int(op>>5) % 64
			switch op % 3 {
			case 0:
				fts.Install(slot, row, int(op)%8, op%2 == 0)
			case 1:
				fts.Lookup(row, int(op)%8, op%2 == 1)
			case 2:
				fts.Evict(slot)
			}
		}
		for r := 0; r < fts.CacheRows(); r++ {
			var want uint64
			for off := 0; off < fts.SegsPerRow(); off++ {
				e := fts.entry(r*fts.SegsPerRow() + off)
				if e.valid && e.dirty {
					want |= 1 << uint(off)
				}
			}
			if ri.DirtyMask(r) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
