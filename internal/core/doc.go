// Package core implements the FIGARO paper's primary contributions —
// the functional (metadata and policy) half of the in-DRAM caching
// designs, which plug into the timing stack through memctrl.CacheHook:
//
//   - FIGARO (figaro.go): a functional model of fine-grained in-DRAM data
//     relocation. The RELOC command copies one column of data between the
//     local row buffers of two subarrays in a bank through the shared
//     global row buffer, supporting unaligned source/destination columns
//     (Section 4.1, Figure 4).
//
//   - FIGCache (figcache.go, fts.go, replacement.go, rowindex.go): a
//     fine-grained in-DRAM cache built on FIGARO. It caches row segments
//     (default 1/8 of a row) from slow subarrays into a small set of cache
//     rows, tracked by a tag store (FTS) in the memory controller, with an
//     insert-any-miss insertion policy and a row-granularity benefit-based
//     replacement policy (Section 5).
//
//   - LISA-VILLA (lisa.go): the state-of-the-art in-DRAM cache baseline the
//     paper compares against — whole-row caching into 16 fast subarrays
//     interleaved among slow subarrays, with distance-dependent relocation
//     latency (Section 3).
//
// The timing integration with the memory controller goes through
// memctrl.CacheHook; this package owns all cache metadata and policy
// decisions, while the controller and internal/dram charge the cycles.
//
// FIGCache.Snapshot/Restore and LISAVilla.Snapshot/Restore
// (snapshot.go) serialize the tag stores, replacement state, and hot
// counters for the system checkpoint lifecycle (sim.System.Snapshot).
package core
