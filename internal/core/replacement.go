package core

import "fmt"

// ReplacementKind selects the in-DRAM cache replacement policy evaluated
// in Section 9.3 (Figure 14).
type ReplacementKind int

const (
	// ReplRowBenefit is FIGCache's policy: eviction happens at the
	// granularity of a whole cache row. The row with the lowest cumulative
	// benefit is selected; its segments are marked in a bitvector and
	// evicted one at a time (lowest individual benefit first) as new
	// segments arrive, so co-accessed segments get packed together.
	ReplRowBenefit ReplacementKind = iota
	// ReplSegmentBenefit evicts the single segment with the lowest benefit
	// score anywhere in the cache (the traditional benefit-based policy).
	ReplSegmentBenefit
	// ReplLRU evicts the least-recently-used segment.
	ReplLRU
	// ReplRandom evicts a uniformly random valid segment.
	ReplRandom

	numReplacementKinds
)

var replNames = [numReplacementKinds]string{"RowBenefit", "SegmentBenefit", "LRU", "Random"}

func (r ReplacementKind) String() string {
	if r < 0 || int(r) >= len(replNames) {
		return fmt.Sprintf("ReplacementKind(%d)", int(r))
	}
	return replNames[r]
}

// replacer picks eviction victims from an FTS.
type replacer struct {
	kind ReplacementKind

	// RowBenefit state: the register holding the cache row currently being
	// drained, and the bitvector marking its not-yet-evicted segments
	// (Section 5.1 describes exactly this pair of structures).
	evictRow  int
	evictMask uint64
	draining  bool

	rng splitmix64
}

func newReplacer(kind ReplacementKind, seed uint64) *replacer {
	return &replacer{kind: kind, rng: splitmix64(seed)}
}

// victim returns the slot to evict from f, or -1 when nothing is
// evictable (every slot reserved by in-flight insertions). The caller
// guarantees the cache has no free slots. Reserved slots are never
// chosen.
func (r *replacer) victim(f *FTS) int {
	switch r.kind {
	case ReplRowBenefit:
		return r.rowBenefitVictim(f)
	case ReplSegmentBenefit:
		best, bestBenefit := -1, int(^uint(0)>>1)
		for i := 0; i < f.Slots(); i++ {
			e := f.entry(i)
			if e.valid && !f.IsReserved(i) && int(e.benefit) < bestBenefit {
				best, bestBenefit = i, int(e.benefit)
			}
		}
		return best
	case ReplLRU:
		best, bestUse := -1, int64(1)<<62
		for i := 0; i < f.Slots(); i++ {
			e := f.entry(i)
			if e.valid && !f.IsReserved(i) && e.lastUse < bestUse {
				best, bestUse = i, e.lastUse
			}
		}
		return best
	case ReplRandom:
		anyEvictable := false
		for i := 0; i < f.Slots(); i++ {
			if f.entry(i).valid && !f.IsReserved(i) {
				anyEvictable = true
				break
			}
		}
		if !anyEvictable {
			return -1
		}
		for {
			i := int(r.rng.next() % uint64(f.Slots()))
			if f.entry(i).valid && !f.IsReserved(i) {
				return i
			}
		}
	default:
		panic(fmt.Sprintf("core: unknown replacement kind %d", int(r.kind)))
	}
}

// rowBenefitVictim implements the two-level policy: while a row is being
// drained, evict its marked segment with the lowest benefit; once the mask
// is empty, select the cache row with the lowest cumulative benefit and
// mark all its valid segments for eviction.
func (r *replacer) rowBenefitVictim(f *FTS) int {
	if r.draining {
		if slot, ok := r.lowestMarked(f); ok {
			return slot
		}
		r.draining = false
	}
	// Select a new row: lowest cumulative benefit across all cache rows
	// that still hold evictable (valid, unreserved) segments. When the
	// FTS has a Dirty-Block-Index-style row index attached, the sums are
	// maintained incrementally; otherwise they are recomputed by scanning
	// the row's slots.
	hasEvictable := func(row int) bool {
		for s := row * f.SegsPerRow(); s < (row+1)*f.SegsPerRow(); s++ {
			if f.entry(s).valid && !f.IsReserved(s) {
				return true
			}
		}
		return false
	}
	bestRow := -1
	if f.RowIndexed() {
		bestRow = f.rowIndex.MinRow(hasEvictable)
	} else {
		bestSum := int(^uint(0) >> 1)
		for row := 0; row < f.CacheRows(); row++ {
			if !hasEvictable(row) {
				continue
			}
			if sum := f.RowBenefit(row); sum < bestSum {
				bestRow, bestSum = row, sum
			}
		}
	}
	if bestRow < 0 {
		return -1 // every valid slot is reserved by in-flight insertions
	}
	r.evictRow = bestRow
	r.evictMask = 0
	for off := 0; off < f.SegsPerRow(); off++ {
		slot := bestRow*f.SegsPerRow() + off
		if f.entry(slot).valid && !f.IsReserved(slot) {
			r.evictMask |= 1 << uint(off)
		}
	}
	r.draining = true
	slot, _ := r.lowestMarked(f)
	return slot
}

// lowestMarked returns the marked slot of the draining row with the lowest
// individual benefit and clears its bit.
func (r *replacer) lowestMarked(f *FTS) (int, bool) {
	best, bestBenefit := -1, int(^uint(0)>>1)
	for off := 0; off < f.SegsPerRow(); off++ {
		if r.evictMask&(1<<uint(off)) == 0 {
			continue
		}
		slot := r.evictRow*f.SegsPerRow() + off
		e := f.entry(slot)
		if !e.valid || f.IsReserved(slot) {
			// Already evicted or claimed by an in-flight insertion since
			// the mask was built; drop the mark.
			r.evictMask &^= 1 << uint(off)
			continue
		}
		if int(e.benefit) < bestBenefit {
			best, bestBenefit = slot, int(e.benefit)
		}
	}
	if best < 0 {
		return 0, false
	}
	r.evictMask &^= 1 << uint(best%f.SegsPerRow())
	return best, true
}

// splitmix64 is a tiny deterministic PRNG (public-domain algorithm) used
// for the Random replacement policy and workload generation.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
