package core

import (
	"fmt"
	"testing"

	"repro/internal/dram"
)

// TestFunctionalEndToEnd drives FIGCache's policy decisions and the
// FunctionalBank data model together: every insertion the cache plans is
// executed as a real FIGARO relocation on the data-carrying bank, and
// every subsequent cache hit is checked to read exactly the bytes the
// source row holds. This closes the loop between the timing/policy model
// (what the evaluation measures) and the data path (what the DRAM would
// actually return).
func TestFunctionalEndToEnd(t *testing.T) {
	const (
		subarrays  = 8
		rowsPerSub = 16
		cols       = 16 // blocks per row (scaled down from 128)
		colBytes   = 64
		segBlocks  = 4 // segment = 4 blocks (scaled from 16)
	)
	geo := dram.Geometry{
		Ranks: 1, BankGroups: 1, BanksPerGroup: 1,
		SubarraysPerBank: subarrays - 1, RowsPerSubarray: rowsPerSub,
		RowBytes: cols * colBytes, BlockBytes: colBytes,
		FastSubarrays: 1, RowsPerFastSubarray: rowsPerSub,
	}
	cfg := FIGCacheConfig{
		SegmentBlocks:    segBlocks,
		CacheRowsPerBank: 2,
		Replacement:      ReplRowBenefit,
		InsertThreshold:  1,
		BenefitBits:      5,
		ReservedSubarray: -1,
		Seed:             1,
	}
	fc, err := NewFIGCache(cfg, geo)
	if err != nil {
		t.Fatal(err)
	}
	slow := dram.DDR4()
	ch, err := dram.NewChannel(geo, slow, slow.Fast(dram.PaperFastScale()), false)
	if err != nil {
		t.Fatal(err)
	}

	// Functional bank: regular rows live in subarrays 0..6; the cache
	// rows live in subarray 7 (the "fast subarray").
	fb, err := NewFunctionalBank(subarrays, rowsPerSub, cols, colBytes)
	if err != nil {
		t.Fatal(err)
	}
	const cacheSub = subarrays - 1

	// Fill every regular row with a unique pattern.
	rowPattern := func(sub, row, col, b int) byte {
		return byte(sub*31 + row*17 + col*7 + b)
	}
	for sub := 0; sub < cacheSub; sub++ {
		for row := 0; row < rowsPerSub; row++ {
			data := make([]byte, cols*colBytes)
			for col := 0; col < cols; col++ {
				for b := 0; b < colBytes; b++ {
					data[col*colBytes+b] = rowPattern(sub, row, col, b)
				}
			}
			if err := fb.WriteRow(sub, row, data); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Access a stream of blocks; on each planned insertion, perform the
	// FIGARO relocation on the functional bank. On each hit, verify the
	// cache row holds the source bytes at the redirected location.
	bankRowToSub := func(row int) (sub, rowInSub int) {
		return row / rowsPerSub, row % rowsPerSub
	}
	verifyHit := func(loc, redirect dram.Location) error {
		srcSub, srcRow := bankRowToSub(loc.Row)
		cacheRow := redirect.Row // cache rows live in the cache subarray
		same, err := fb.ColumnsEqual(srcSub, srcRow, loc.Block, cacheSub, cacheRow, redirect.Block)
		if err != nil {
			return err
		}
		if !same {
			return fmt.Errorf("hit on %v redirected to %v reads wrong data", loc, redirect)
		}
		return nil
	}

	accesses := 0
	hits := 0
	// Sweep segments of rows in subarrays 0..2, twice.
	for pass := 0; pass < 2; pass++ {
		for row := 0; row < 3*rowsPerSub; row += 2 {
			for blk := 0; blk < segBlocks; blk++ {
				loc := dram.Location{Row: row, Block: blk}
				accesses++
				if redirect, hit := fc.Lookup(loc, false); hit {
					hits++
					if err := verifyHit(loc, redirect); err != nil {
						t.Fatal(err)
					}
					continue
				}
				if blk != 0 || !fc.ShouldInsert(loc) {
					continue
				}
				plan := fc.Insert(ch, loc, 0)
				if plan == nil {
					continue
				}
				// Execute the relocation functionally: the FTS slot
				// determines the destination cache row and column.
				fts := fc.FTSForBank(0)
				slot := -1
				fc.Commit(plan)
				if s, ok := fts.Lookup(loc.Row, loc.Block/segBlocks, false); ok {
					slot = s
				} else {
					t.Fatalf("committed insertion for row %d not in FTS", loc.Row)
				}
				srcSub, srcRow := bankRowToSub(loc.Row)
				dstRow := fts.RowOfSlot(slot)
				dstCol := fts.SlotOffset(slot) * segBlocks
				segStart := (loc.Block / segBlocks) * segBlocks
				if err := fb.RelocateSegment(srcSub, srcRow, segStart, cacheSub, dstRow, dstCol, segBlocks); err != nil {
					t.Fatalf("functional relocation failed: %v", err)
				}
			}
		}
	}
	if hits == 0 {
		t.Fatal("second sweep produced no cache hits")
	}
	t.Logf("verified %d hits over %d accesses functionally", hits, accesses)

	// Finally: every valid FTS entry must be functionally consistent.
	fts := fc.FTSForBank(0)
	checked := 0
	for slot := 0; slot < fts.Slots(); slot++ {
		e := fts.entry(slot)
		if !e.valid {
			continue
		}
		srcSub, srcRow := bankRowToSub(e.key.row())
		dstRow := fts.RowOfSlot(slot)
		dstCol := fts.SlotOffset(slot) * segBlocks
		for b := 0; b < segBlocks; b++ {
			same, err := fb.ColumnsEqual(srcSub, srcRow, e.key.seg()*segBlocks+b, cacheSub, dstRow, dstCol+b)
			if err != nil {
				t.Fatal(err)
			}
			if !same {
				t.Fatalf("slot %d block %d inconsistent with source row %d", slot, b, e.key.row())
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no valid FTS entries to check")
	}
	t.Logf("verified %d resident segments against their source rows", checked)
}
