package core

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

// LISAVillaConfig parameterizes the LISA-VILLA baseline in-DRAM cache
// (Section 3): whole DRAM rows are cached into fast subarrays that are
// physically interleaved among the slow subarrays, and relocation uses
// LISA's row-buffer movement, whose latency grows with the hop distance
// between source and destination subarrays.
type LISAVillaConfig struct {
	// CacheRowsPerBank is the cache capacity in rows (512 in the paper:
	// 16 fast subarrays x 32 rows).
	CacheRowsPerBank int
	// FastSubarrays is the number of interleaved fast subarrays (16).
	FastSubarrays int
	// HotThreshold is the number of activations a row must see before
	// VILLA caches it. Row-granularity insert-any-miss would relocate an
	// 8 kB row on every activation, so VILLA caches only rows with
	// demonstrated reuse.
	HotThreshold int
	// EpochMisses controls the hot-row counter decay: after this many
	// misses in a bank, all counters are halved, so stale rows lose their
	// "hot" status.
	EpochMisses int
	// Seed for deterministic internal tie-breaking.
	Seed uint64
}

// DefaultLISAVillaConfig returns the paper's LISA-VILLA configuration
// (Table 1: 512-row in-DRAM cache per bank, 16 fast subarrays).
func DefaultLISAVillaConfig() LISAVillaConfig {
	return LISAVillaConfig{
		CacheRowsPerBank: 512,
		FastSubarrays:    16,
		HotThreshold:     2,
		EpochMisses:      4096,
		Seed:             1,
	}
}

// Validate reports configuration errors.
func (c LISAVillaConfig) Validate(geo dram.Geometry) error {
	switch {
	case c.CacheRowsPerBank <= 0:
		return fmt.Errorf("core: LISA cache rows must be positive, got %d", c.CacheRowsPerBank)
	case c.FastSubarrays <= 0:
		return fmt.Errorf("core: LISA fast subarrays must be positive, got %d", c.FastSubarrays)
	case c.HotThreshold <= 0:
		return fmt.Errorf("core: LISA hot threshold must be positive, got %d", c.HotThreshold)
	case c.EpochMisses <= 0:
		return fmt.Errorf("core: LISA epoch must be positive, got %d", c.EpochMisses)
	}
	return nil
}

// LISAVilla implements memctrl.CacheHook for the LISA-VILLA baseline.
type LISAVilla struct {
	cfg LISAVillaConfig
	geo dram.Geometry

	banks []*lisaBank

	// plan is the scratch the next Insert returns a pointer to; per the
	// CacheHook contract the controller copies it before the call after.
	//fglint:preserved scratch; fully overwritten by every Insert before the pointer is returned
	plan memctrl.RelocPlan

	// Stats.
	Insertions int64
	Evictions  int64
	WriteBacks int64
	TotalHops  int64
}

type lisaBank struct {
	// rows[i] describes cache row i.
	rows []lisaRow
	// index maps a cached source row to its cache row.
	index map[int]int
	// inflight marks source rows whose relocation is planned but not yet
	// executed by the controller.
	inflight map[int]bool
	// hot tracks per-source-row activation counts for the insertion
	// policy, decayed every EpochMisses misses.
	hot         map[int]int
	missesEpoch int
	clock       int64
	hits        int64
	misses      int64
}

type lisaRow struct {
	srcRow  int
	valid   bool
	dirty   bool
	lastUse int64
}

// NewLISAVilla builds the baseline cache over the channel geometry.
func NewLISAVilla(cfg LISAVillaConfig, geo dram.Geometry) (*LISAVilla, error) {
	if err := cfg.Validate(geo); err != nil {
		return nil, err
	}
	l := &LISAVilla{cfg: cfg, geo: geo}
	nBanks := geo.Ranks * geo.BanksPerRank()
	for i := 0; i < nBanks; i++ {
		l.banks = append(l.banks, &lisaBank{
			rows:     make([]lisaRow, cfg.CacheRowsPerBank),
			index:    make(map[int]int, cfg.CacheRowsPerBank),
			inflight: make(map[int]bool),
			hot:      make(map[int]int),
		})
	}
	return l, nil
}

// Hops returns the LISA relocation hop count for a source row: the number
// of inter-subarray steps between the row's subarray and the nearest
// interleaved fast subarray. With F fast subarrays interleaved among S
// slow ones, each fast subarray serves a run of S/F slow subarrays placed
// around its position; a row in the middle of a run is 1 hop away, at the
// edges up to (S/F)/2+1 hops. This is the distance-dependence FIGARO
// eliminates (Section 3).
func (l *LISAVilla) Hops(srcRow int) int {
	sub := l.geo.SubarrayOfRow(srcRow)
	run := l.geo.SubarraysPerBank / l.cfg.FastSubarrays // slow subarrays per fast subarray
	if run < 1 {
		run = 1
	}
	pos := sub % run
	// The fast subarray sits at the center of its run; hop count is the
	// distance to the center, minimum 1.
	center := run / 2
	d := pos - center
	if d < 0 {
		d = -d
	}
	return d + 1
}

// Lookup implements memctrl.CacheHook at row granularity: a request to a
// cached row is redirected to the same block offset of the cache row in a
// fast subarray. Caching a whole row cannot improve its row-buffer hit
// rate — the contents and locality are unchanged — so LISA-VILLA benefits
// only from the fast subarray's reduced timings (Section 8.1).
func (l *LISAVilla) Lookup(loc dram.Location, isWrite bool) (dram.Location, bool) {
	bank := l.banks[loc.BankID(l.geo)]
	bank.clock++
	i, ok := bank.index[loc.Row]
	if !ok {
		bank.misses++
		return dram.Location{}, false
	}
	r := &bank.rows[i]
	r.lastUse = bank.clock
	if isWrite {
		r.dirty = true
	}
	bank.hits++
	return dram.Location{
		Rank: loc.Rank, Group: loc.Group, Bank: loc.Bank,
		Row: i, Block: loc.Block, CacheRow: true,
	}, true
}

// ShouldInsert implements VILLA's hot-row insertion policy: cache a row
// once it has missed HotThreshold times within the decay epoch.
func (l *LISAVilla) ShouldInsert(loc dram.Location) bool {
	bank := l.banks[loc.BankID(l.geo)]
	bank.missesEpoch++
	if bank.missesEpoch >= l.cfg.EpochMisses {
		bank.missesEpoch = 0
		//fglint:deterministic per-entry halve-or-delete decay; entries are independent, order cannot matter
		for k, v := range bank.hot {
			if v <= 1 {
				delete(bank.hot, k)
			} else {
				bank.hot[k] = v / 2
			}
		}
	}
	bank.hot[loc.Row]++
	if bank.hot[loc.Row] >= l.cfg.HotThreshold {
		delete(bank.hot, loc.Row)
		return true
	}
	return false
}

// Insert implements memctrl.CacheHook: relocate the whole source row into
// a fast subarray via LISA RBM. The relocation is distance-dependent; a
// dirty LRU victim first pays a write-back over its own hop distance.
func (l *LISAVilla) Insert(ch *dram.Channel, loc dram.Location, now int64) *memctrl.RelocPlan {
	bank := l.banks[loc.BankID(l.geo)]
	if _, ok := bank.index[loc.Row]; ok {
		return nil
	}
	if bank.inflight[loc.Row] {
		return nil
	}

	// A slot is allocatable if it is invalid and not reserved (srcRow < 0
	// marks a reservation by an in-flight insertion).
	slot := -1
	for i := range bank.rows {
		if !bank.rows[i].valid && bank.rows[i].srcRow >= 0 {
			slot = i
			break
		}
	}
	var cost int64
	hops := l.Hops(loc.Row)
	if slot < 0 {
		// Evict the LRU valid (unreserved) cache row.
		best, bestUse := -1, int64(1)<<62
		for i := range bank.rows {
			if bank.rows[i].valid && bank.rows[i].lastUse < bestUse {
				best, bestUse = i, bank.rows[i].lastUse
			}
		}
		if best < 0 {
			return nil // everything reserved by in-flight insertions
		}
		slot = best
		victim := bank.rows[slot]
		delete(bank.index, victim.srcRow)
		l.Evictions++
		if victim.dirty {
			wbHops := l.Hops(victim.srcRow)
			cost += ch.RBMCost(wbHops, false)
			hops += wbHops
			l.WriteBacks++
		}
	}
	// Insertion: the source row is open (the miss just accessed it), so
	// the RBM sequence skips its ACTIVATE. The tag is installed when the
	// controller executes the relocation at row-close time; until then
	// the slot is reserved.
	insHops := l.Hops(loc.Row)
	cost += ch.RBMCost(insHops, true)
	bank.inflight[loc.Row] = true
	bank.rows[slot] = lisaRow{srcRow: -1}
	l.Insertions++
	l.TotalHops += int64(hops)
	l.plan = memctrl.RelocPlan{Loc: loc, Cost: cost, Hops: hops, IsLISA: true,
		CommitBank: loc.BankID(l.geo), CommitSlot: slot, CommitRow: loc.Row,
	}
	return &l.plan
}

// Commit implements memctrl.CacheHook: install the cache-row tag for a
// plan Insert returned, clearing its reservation.
func (l *LISAVilla) Commit(p *memctrl.RelocPlan) {
	bank := l.banks[p.CommitBank]
	delete(bank.inflight, p.CommitRow)
	bank.clock++
	bank.rows[p.CommitSlot] = lisaRow{srcRow: p.CommitRow, valid: true, lastUse: bank.clock}
	bank.index[p.CommitRow] = p.CommitSlot
}

// HitRate returns the aggregate in-DRAM cache hit rate.
func (l *LISAVilla) HitRate() float64 {
	var hits, misses int64
	for _, b := range l.banks {
		hits += b.hits
		misses += b.misses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

var _ memctrl.CacheHook = (*LISAVilla)(nil)
