// Package spice provides analytic circuit-level models standing in for
// the paper's SPICE methodology (Section 4.2): the RELOC charge-sharing
// and sense-amplification transient that determines the RELOC latency
// (Figure 5), with Monte-Carlo parameter variation and worst-case
// reporting, plus the area/storage overhead calculations of Section 8.3.
//
// The model is a first-order RC + regenerative-latch approximation rather
// than transistor-level SPICE. It is calibrated so the nominal transient
// reproduces the paper's observations: the destination bitlines settle in
// well under 1 ns, the worst Monte-Carlo corner is ~0.57 ns, and a 43%
// guardband yields the 1 ns RELOC timing parameter.
//
// Like internal/energy, this is an analysis layer beside the timing
// simulator, not inside it: the harness calls it to render Figure 5 and
// the Section 4.2/8.3 tables, and its Monte-Carlo iteration count is the
// only part of the experiment matrix it contributes to (harness.Scale's
// MCIterations). Its computations produce no sim jobs, so sharded runs
// skip none of it — every shard re-derives these closed-form tables
// locally when asked.
package spice
