package spice

import (
	"fmt"
	"math"
)

// RelocParams are the circuit parameters of the LRB -> GRB -> LRB path.
type RelocParams struct {
	VDD float64 // supply voltage (V)

	// TauShare is the RC time constant of charge sharing from the driven
	// global bitline into the precharged destination local bitline (ns).
	TauShare float64
	// TauRegen is the regeneration time constant of the destination sense
	// amplifier assisted by the high-drive GRB (ns).
	TauRegen float64
	// SenseDelta is the bitline differential (V) at which the destination
	// sense amplifier engages.
	SenseDelta float64
	// SettleFrac is the fraction of VDD at which the destination bitline
	// counts as fully driven.
	SettleFrac float64
	// TimeStep is the simulation step (ns).
	TimeStep float64
}

// DefaultRelocParams returns parameters calibrated to the paper's 22 nm
// DRAM model.
func DefaultRelocParams() RelocParams {
	return RelocParams{
		VDD:        1.2,
		TauShare:   0.35,
		TauRegen:   0.18,
		SenseDelta: 0.05,
		SettleFrac: 0.95,
		TimeStep:   0.001,
	}
}

// Validate reports parameter errors.
func (p RelocParams) Validate() error {
	switch {
	case p.VDD <= 0:
		return fmt.Errorf("spice: VDD must be positive")
	case p.TauShare <= 0 || p.TauRegen <= 0:
		return fmt.Errorf("spice: time constants must be positive")
	case p.SenseDelta <= 0 || p.SenseDelta >= p.VDD/2:
		return fmt.Errorf("spice: sense delta must be in (0, VDD/2)")
	case p.SettleFrac <= 0.5 || p.SettleFrac >= 1:
		return fmt.Errorf("spice: settle fraction must be in (0.5, 1)")
	case p.TimeStep <= 0:
		return fmt.Errorf("spice: time step must be positive")
	}
	return nil
}

// TracePoint is one sample of the RELOC transient.
type TracePoint struct {
	TimeNS float64
	SrcV   float64 // source-column bitline voltage
	DstV   float64 // destination-column bitline voltage
}

// Transient simulates the RELOC bitline transient for a source column
// holding logic 1, returning the waveform and the settle time: the time
// at which the destination bitline reaches SettleFrac x VDD.
//
// Phase 1 (charge sharing): the fully driven source bitline shares charge
// through the GRB with the precharged (VDD/2) destination bitline; the
// source dips while the destination rises.
// Phase 2 (regeneration): once the destination differential exceeds
// SenseDelta, the destination sense amplifier engages and, assisted by
// the GRB's drive strength, regenerates both columns to full rail.
func Transient(p RelocParams) (trace []TracePoint, settleNS float64, err error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	src := p.VDD
	dst := p.VDD / 2
	settleNS = -1
	regen := false
	for t := 0.0; t < 5.0; t += p.TimeStep {
		trace = append(trace, TracePoint{TimeNS: t, SrcV: src, DstV: dst})
		if settleNS < 0 && dst >= p.SettleFrac*p.VDD {
			settleNS = t
			break
		}
		if !regen && dst-p.VDD/2 >= p.SenseDelta {
			regen = true
		}
		if regen {
			// Regenerative pull to the rails, GRB-assisted.
			dst += (p.VDD - dst) / p.TauRegen * p.TimeStep
			src += (p.VDD - src) / p.TauRegen * p.TimeStep
		} else {
			// Charge sharing: source dips toward the midpoint while the
			// destination rises toward the source.
			diff := src - dst
			dst += diff / p.TauShare * p.TimeStep * 0.5
			src -= diff / p.TauShare * p.TimeStep * 0.20
		}
	}
	if settleNS < 0 {
		return trace, 0, fmt.Errorf("spice: destination bitline never settled")
	}
	return trace, settleNS, nil
}

// MonteCarlo runs iterations of Transient with every parameter varied
// uniformly within +/-margin (e.g. 0.05 for the paper's +/-5%), returning
// the worst-case (largest) settle time. The PRNG is deterministic per
// seed. The paper runs 10^8 iterations; callers choose a tractable count.
func MonteCarlo(p RelocParams, iterations int, margin float64, seed uint64) (worstNS float64, err error) {
	if iterations <= 0 {
		return 0, fmt.Errorf("spice: iterations must be positive")
	}
	if margin < 0 || margin >= 0.5 {
		return 0, fmt.Errorf("spice: margin must be in [0, 0.5)")
	}
	rng := seed
	next := func() float64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53)
	}
	vary := func(v float64) float64 { return v * (1 + margin*(2*next()-1)) }
	for i := 0; i < iterations; i++ {
		q := p
		q.TauShare = vary(p.TauShare)
		q.TauRegen = vary(p.TauRegen)
		q.SenseDelta = vary(p.SenseDelta)
		q.VDD = vary(p.VDD)
		_, settle, err := Transient(q)
		if err != nil {
			return 0, err
		}
		if settle > worstNS {
			worstNS = settle
		}
	}
	return worstNS, nil
}

// GuardbandedLatencyNS applies the paper's conservative 43% guardband to
// a worst-case settle time and rounds up to the next 0.5 ns, yielding the
// RELOC timing parameter (1 ns for the paper's 0.57 ns worst case).
func GuardbandedLatencyNS(worstNS float64) float64 {
	g := worstNS * 1.43
	return math.Ceil(g*2) / 2
}

// StandaloneRelocNS returns the end-to-end latency of relocating one
// column when neither row is open (Section 4.2): two ACTIVATEs (tRCD at
// 13.75 ns each... the paper counts full tRAS for the first), one RELOC
// and one PRECHARGE. With tRAS = 35 ns, tRCD = 13.75 ns, tRP = 13.75 ns
// and RELOC = 1 ns the paper reports 63.5 ns.
func StandaloneRelocNS(tRASNS, tRCDNS, tRPNS, relocNS float64) float64 {
	return tRASNS + relocNS + tRCDNS + tRPNS
}
