package spice

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
)

func TestTransientShapeMatchesFigure5(t *testing.T) {
	p := DefaultRelocParams()
	trace, settle, err := Transient(p)
	if err != nil {
		t.Fatal(err)
	}
	// The destination settles in well under 1 ns (Figure 5 shows < 1 ns).
	if settle <= 0 || settle >= 1.0 {
		t.Fatalf("settle time = %.3f ns, want (0, 1)", settle)
	}
	// Shape checks: the destination starts at VDD/2 and rises
	// monotonically-ish to ~VDD; the source dips below VDD early on.
	first, last := trace[0], trace[len(trace)-1]
	if first.DstV != p.VDD/2 {
		t.Errorf("destination starts at %.3f, want VDD/2 = %.3f", first.DstV, p.VDD/2)
	}
	if last.DstV < p.SettleFrac*p.VDD {
		t.Errorf("destination ends at %.3f, below settle threshold", last.DstV)
	}
	dipped := false
	for _, pt := range trace {
		if pt.SrcV < p.VDD-0.01 {
			dipped = true
			break
		}
	}
	if !dipped {
		t.Error("source bitline never dipped during charge sharing")
	}
}

func TestTransientRejectsBadParams(t *testing.T) {
	cases := []func(*RelocParams){
		func(p *RelocParams) { p.VDD = 0 },
		func(p *RelocParams) { p.TauShare = -1 },
		func(p *RelocParams) { p.SenseDelta = 2 },
		func(p *RelocParams) { p.SettleFrac = 0.4 },
		func(p *RelocParams) { p.TimeStep = 0 },
	}
	for i, mutate := range cases {
		p := DefaultRelocParams()
		mutate(&p)
		if _, _, err := Transient(p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMonteCarloWorstCase(t *testing.T) {
	p := DefaultRelocParams()
	_, nominal, err := Transient(p)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := MonteCarlo(p, 2000, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if worst < nominal {
		t.Errorf("worst case %.3f ns below nominal %.3f ns", worst, nominal)
	}
	// Section 4.2: the worst case is ~0.57 ns.
	if worst < 0.3 || worst > 0.8 {
		t.Errorf("worst case %.3f ns outside the paper's ~0.57 ns regime", worst)
	}
	// Guardbanded timing parameter is 1 ns.
	if got := GuardbandedLatencyNS(worst); got != 1.0 {
		t.Errorf("guardbanded latency = %.2f ns, want 1.0", got)
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	p := DefaultRelocParams()
	a, err := MonteCarlo(p, 500, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := MonteCarlo(p, 500, 0.05, 42)
	if a != b {
		t.Errorf("Monte Carlo not deterministic: %.6f vs %.6f", a, b)
	}
}

func TestMonteCarloRejectsBadArgs(t *testing.T) {
	p := DefaultRelocParams()
	if _, err := MonteCarlo(p, 0, 0.05, 1); err == nil {
		t.Error("accepted zero iterations")
	}
	if _, err := MonteCarlo(p, 10, 0.6, 1); err == nil {
		t.Error("accepted margin >= 0.5")
	}
}

func TestStandaloneRelocMatchesPaper(t *testing.T) {
	// Section 4.2: two ACTIVATEs, one RELOC, one PRECHARGE = 63.5 ns.
	got := StandaloneRelocNS(35, 13.75, 13.75, 1)
	if got != 63.5 {
		t.Errorf("standalone relocation = %.2f ns, want 63.5", got)
	}
}

func TestFIGAROOverheadUnderPaperBound(t *testing.T) {
	p := DefaultOverheadParams()
	geo := dram.Default()
	geo.FastSubarrays = 2
	o := ComputeFIGAROOverhead(p, geo)
	if o.PerSubarrayAreaUM2 != 4.7+18.8+35.2 {
		t.Errorf("per-subarray area = %.1f", o.PerSubarrayAreaUM2)
	}
	// Section 8.3: overall area overhead below 0.3% of the chip.
	if o.ChipAreaPercent <= 0 || o.ChipAreaPercent >= 0.3 {
		t.Errorf("FIGARO area overhead = %.3f%%, want (0, 0.3)", o.ChipAreaPercent)
	}
}

func TestCacheAreaOverheads(t *testing.T) {
	p := DefaultOverheadParams()
	geo := dram.Default()
	// Section 8.3: two fast subarrays -> 0.7%; sixteen -> 5.6%.
	fig := CacheAreaOverheadPercent(p, geo, 2)
	lisa := CacheAreaOverheadPercent(p, geo, 16)
	if fig < 0.3 || fig > 1.2 {
		t.Errorf("FIGCache-Fast area overhead = %.2f%%, want ~0.7%%", fig)
	}
	if lisa < 3.5 || lisa > 8 {
		t.Errorf("LISA-VILLA area overhead = %.2f%%, want ~5.6%%", lisa)
	}
	if lisa <= fig*7 {
		t.Errorf("LISA overhead (%.2f%%) not ~8x FIGCache's (%.2f%%)", lisa, fig)
	}
}

func TestFTSOverheadMatchesPaperScale(t *testing.T) {
	geo := dram.Default()
	o, err := ComputeFTSOverhead(geo, 64, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 32K rows x 8 segments = 256K segments per bank -> 18-bit tag.
	if o.TagBits != 18 {
		t.Errorf("tag bits = %d, want 18", o.TagBits)
	}
	// 512 entries per bank x 16 banks.
	if o.EntriesPerCh != 512*16 {
		t.Errorf("entries = %d, want 8192", o.EntriesPerCh)
	}
	// Paper reports 26.0 kB with a 19-bit tag; our computed 18-bit tag
	// gives 25 kB. Same scale.
	if o.TotalKB < 20 || o.TotalKB > 30 {
		t.Errorf("FTS storage = %.1f kB, want ~25-26 kB", o.TotalKB)
	}
}

func TestFTSOverheadRejectsBad(t *testing.T) {
	geo := dram.Default()
	if _, err := ComputeFTSOverhead(geo, 0, 16, 5); err == nil {
		t.Error("accepted zero cache rows")
	}
	if _, err := ComputeFTSOverhead(geo, 64, 1024, 5); err == nil {
		t.Error("accepted segment larger than a row")
	}
}

// Property: the guardbanded latency is always at least the worst case and
// at most worst*1.43 rounded up to the next half nanosecond.
func TestPropertyGuardband(t *testing.T) {
	f := func(w uint16) bool {
		worst := float64(w%2000)/1000 + 0.01 // 0.01 .. 2.01 ns
		g := GuardbandedLatencyNS(worst)
		return g >= worst*1.43-1e-9 && g <= worst*1.43+0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
