package spice

import (
	"fmt"
	"math"

	"repro/internal/dram"
)

// OverheadParams hold the RTL-evaluation constants of Section 8.3 at the
// 22 nm technology node.
type OverheadParams struct {
	ColMuxAreaUM2    float64 // per-subarray column address MUX
	RowMuxAreaUM2    float64 // per-subarray row address MUX
	RowLatchAreaUM2  float64 // per-subarray 40-bit row address latch
	ColMuxPowerUW    float64
	RowMuxPowerUW    float64
	RowLatchPowerUW  float64
	ChipAreaMM2      float64 // whole DRAM chip
	FastSubarrayArea float64 // fast subarray area relative to a slow one
	SlowSubarrayMM2  float64 // area of one slow subarray incl. sense amps
}

// DefaultOverheadParams returns Section 8.3's reported values, with chip
// and subarray areas representative of an 8 Gb DDR4 die.
func DefaultOverheadParams() OverheadParams {
	return OverheadParams{
		ColMuxAreaUM2:    4.7,
		RowMuxAreaUM2:    18.8,
		RowLatchAreaUM2:  35.2,
		ColMuxPowerUW:    2.1,
		RowMuxPowerUW:    8.4,
		RowLatchPowerUW:  19.1,
		ChipAreaMM2:      60,
		FastSubarrayArea: 0.226, // 22.6% of a slow subarray (Section 8.3)
		SlowSubarrayMM2:  0.052, // ~64 subarrays x 16 banks ~= 89% of die
	}
}

// FIGAROOverhead reports the DRAM-side area and power cost of the FIGARO
// substrate modifications (per-subarray MUXes and latch).
type FIGAROOverhead struct {
	PerSubarrayAreaUM2 float64
	PerSubarrayPowerUW float64
	TotalAreaMM2       float64
	ChipAreaPercent    float64
}

// ComputeFIGAROOverhead evaluates the Section 8.3 figures for a geometry.
func ComputeFIGAROOverhead(p OverheadParams, geo dram.Geometry) FIGAROOverhead {
	perArea := p.ColMuxAreaUM2 + p.RowMuxAreaUM2 + p.RowLatchAreaUM2
	perPower := p.ColMuxPowerUW + p.RowMuxPowerUW + p.RowLatchPowerUW
	subarrays := geo.BanksPerRank() * (geo.SubarraysPerBank + geo.FastSubarrays)
	total := perArea * float64(subarrays) / 1e6 // um^2 -> mm^2
	return FIGAROOverhead{
		PerSubarrayAreaUM2: perArea,
		PerSubarrayPowerUW: perPower,
		TotalAreaMM2:       total,
		ChipAreaPercent:    total / p.ChipAreaMM2 * 100,
	}
}

// CacheAreaOverheadPercent returns the chip-area overhead of adding
// fastSubarrays fast subarrays per bank, each costing FastSubarrayArea of
// a slow subarray (Section 8.3: 0.7% for FIGCache-Fast's two, 5.6% for
// LISA-VILLA's sixteen).
func CacheAreaOverheadPercent(p OverheadParams, geo dram.Geometry, fastSubarrays int) float64 {
	added := float64(geo.BanksPerRank()*fastSubarrays) * p.FastSubarrayArea * p.SlowSubarrayMM2
	return added / p.ChipAreaMM2 * 100
}

// FTSOverhead describes the memory-controller tag-store cost
// (Section 8.3).
type FTSOverhead struct {
	TagBits      int
	EntryBits    int
	EntriesPerCh int
	TotalKB      float64
}

// ComputeFTSOverhead sizes the FIGCache tag store for a geometry: one
// portion per bank with one entry per cache slot; each entry holds the
// segment tag, a 5-bit benefit counter, and valid + dirty bits. For the
// paper's configuration (512 entries x 16 banks, 26-bit entries) this is
// ~26 kB per channel.
func ComputeFTSOverhead(geo dram.Geometry, cacheRowsPerBank, segmentBlocks, benefitBits int) (FTSOverhead, error) {
	if cacheRowsPerBank <= 0 || segmentBlocks <= 0 || benefitBits <= 0 {
		return FTSOverhead{}, fmt.Errorf("spice: FTS parameters must be positive")
	}
	segsPerRow := geo.BlocksPerRow() / segmentBlocks
	if segsPerRow == 0 {
		return FTSOverhead{}, fmt.Errorf("spice: segment larger than a row")
	}
	segmentsPerBank := geo.RowsPerBank() * segsPerRow
	tagBits := bitsFor(segmentsPerBank)
	entryBits := tagBits + benefitBits + 2 // + valid + dirty
	entries := geo.BanksPerRank() * cacheRowsPerBank * segsPerRow
	totalBits := entries * entryBits
	return FTSOverhead{
		TagBits:      tagBits,
		EntryBits:    entryBits,
		EntriesPerCh: entries,
		TotalKB:      float64(totalBits) / 8 / 1024,
	}, nil
}

// bitsFor returns ceil(log2(n)).
func bitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}
