package sim

import (
	"testing"

	"repro/internal/ev"
	"repro/internal/memctrl"
)

// TestDrainPreservesPerChannelOrder verifies the adapter's head-of-line
// semantics: once a request for a channel is blocked on a full controller
// queue, younger requests for that channel must stall behind it, even if
// they target the other (non-full) queue.
func TestDrainPreservesPerChannelOrder(t *testing.T) {
	cfg := DefaultConfig(Base, smallMix(t, "mcf"))
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := s.ctrls[0]

	// Fill the write queue to capacity directly.
	for i := 0; ctrl.CanAccept(true); i++ {
		addr := uint64(i) * 64
		_, loc := s.mapper.Decode(addr)
		ctrl.Enqueue(&memctrl.Request{Addr: addr, Loc: loc, IsWrite: true}, 0)
	}

	// Buffer an (older) write that cannot enter, then a younger read that
	// could — the read queue has space, but order must hold.
	s.adapter.Request(1<<20, true, 0, ev.Token{})
	s.adapter.Request(2<<20, false, 0, ev.Token{Kind: ev.CoreSlot})
	s.adapter.drain(0)

	if got := ctrl.PendingReads(); got != 0 {
		t.Errorf("younger read entered the controller ahead of a blocked write (pending reads = %d)", got)
	}
	if got := len(s.adapter.pending); got != 2 {
		t.Fatalf("adapter buffered %d requests, want 2", got)
	}

	// Drain the controller until the write queue has space again; the
	// buffered write and read must then enter in order.
	now := int64(1)
	for ; !ctrl.CanAccept(true) && now < 1_000_000; now++ {
		ctrl.Tick(now, func(at int64, tok ev.Token) {})
	}
	if !ctrl.CanAccept(true) {
		t.Fatal("write queue never drained")
	}
	writesBefore := ctrl.PendingWrites()
	s.adapter.drain(now)
	if got := len(s.adapter.pending); got != 0 {
		t.Errorf("adapter still buffers %d requests after space freed", got)
	}
	if got := ctrl.PendingWrites(); got != writesBefore+1 {
		t.Errorf("pending writes = %d, want %d", got, writesBefore+1)
	}
	if got := ctrl.PendingReads(); got != 1 {
		t.Errorf("pending reads = %d, want 1", got)
	}
}

// TestDrainIndependentChannels verifies that one channel's blockage does
// not stall requests bound for another channel.
func TestDrainIndependentChannels(t *testing.T) {
	cfg := DefaultConfig(Base, smallMix(t, "mcf"))
	cfg.Channels = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl0 := s.ctrls[0]
	for i := 0; ctrl0.CanAccept(true); i++ {
		addr := uint64(i) * 64
		ch, loc := s.mapper.Decode(addr)
		if ch != 0 {
			continue
		}
		ctrl0.Enqueue(&memctrl.Request{Addr: addr, Loc: loc, IsWrite: true}, 0)
	}

	// Find one address per channel.
	var addr0, addr1 uint64
	found0, found1 := false, false
	for a := uint64(0); !(found0 && found1); a += 64 {
		switch ch, _ := s.mapper.Decode(a); ch {
		case 0:
			if !found0 {
				addr0, found0 = a, true
			}
		case 1:
			if !found1 {
				addr1, found1 = a, true
			}
		}
	}

	s.adapter.Request(addr0, true, 0, ev.Token{})  // blocked: channel 0 write queue full
	s.adapter.Request(addr1, false, 0, ev.Token{}) // channel 1 is free
	s.adapter.drain(0)

	if got := s.ctrls[1].PendingReads(); got != 1 {
		t.Errorf("channel 1 read blocked by channel 0 backlog (pending reads = %d)", got)
	}
	if got := len(s.adapter.pending); got != 1 {
		t.Errorf("adapter buffers %d requests, want 1 (the blocked channel-0 write)", got)
	}
}
