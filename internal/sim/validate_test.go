package sim

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/workload"
)

// TestCommandTracesObeyJEDEC runs every preset on a warm workload with
// command tracing enabled and validates the full command stream against
// the JEDEC timing rules with the independent post-hoc checker. This is
// the simulator's strongest correctness net: any scheduling path that
// slips a command past the issue-time checks is caught here.
func TestCommandTracesObeyJEDEC(t *testing.T) {
	if testing.Short() {
		t.Skip("trace validation in -short mode")
	}
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	spec.Bubbles = 4
	spec.HotSegments = 2560
	spec.HotFraction = 0.95
	mix := workload.Mix{Name: "warm", Apps: workload.Sources(spec)}

	for _, p := range Presets() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := DefaultConfig(p, mix)
			cfg.TargetInsts = 40_000
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, ch := range s.channels {
				ch.TraceOn = true
			}
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
			for i, ch := range s.channels {
				if len(ch.Trace) == 0 {
					t.Fatalf("channel %d recorded no commands", i)
				}
				vs := dram.ValidateTrace(ch.Geo, ch.Slow, ch.Fast, p == LLDRAM, ch.Trace)
				// Relocation occupancy is invisible to the validator (it
				// is not a command), so traces with in-DRAM caching may
				// legitimately contain ACTs "too early" after a
				// Relocate-closed bank; filter to violations that cannot
				// be explained by relocation bank occupancy.
				var hard []dram.Violation
				for _, v := range vs {
					switch v.Constraint {
					case "tRC", "tRP", "tRAS": // can be displaced by Relocate/ForceClose
						if p == Base || p == LLDRAM {
							hard = append(hard, v)
						}
					default:
						hard = append(hard, v)
					}
				}
				if len(hard) > 0 {
					max := len(hard)
					if max > 5 {
						max = 5
					}
					for _, v := range hard[:max] {
						t.Errorf("channel %d: %v", i, v)
					}
					t.Fatalf("channel %d: %d violations in %d commands", i, len(hard), len(ch.Trace))
				}
			}
		})
	}
}
