package sim

import "repro/internal/ev"

// event is a deferred action in CPU-cycle time. The action is an
// ev.Token rather than a closure so pending events can be written to a
// checkpoint and restored verbatim (see internal/ev).
type event struct {
	at  int64
	seq int64 // tie-breaker for deterministic ordering
	tok ev.Token
}

// eventQueue is a deterministic priority queue of events, split into a
// min-heap plus any number of FIFO lanes. The heap is hand-rolled rather
// than built on container/heap: events fire several times per simulated
// memory access, and the interface boxing of heap.Push/Pop allocates on
// every call. Lanes exist because the hottest event sources — fixed-
// latency cache completions — schedule with one constant delay each, so
// their due times arrive in non-decreasing order and an append/advance
// ring replaces a heap push/pop pair per event. Ordering is identical to
// a single heap: every event still gets a global sequence number, and
// firing always picks the minimum (at, seq) across the heap top and all
// lane heads.
type eventQueue struct {
	items []event
	seq   int64
	lanes []eventLane
	// nextDue is the earliest pending at across heap and lanes — the O(1)
	// fast path that lets the per-cycle fireDue probe skip the source scan
	// entirely. Exact after every fireDue (which recomputes it when the
	// due events are drained) and only ever lowered by schedules in
	// between; the zero value conservatively forces a scan.
	nextDue int64
}

// eventLane is one monotonic FIFO of events: head is the index of the
// next undelivered event; the slice is compacted whenever it drains.
type eventLane struct {
	items []event
	head  int
}

// newLane registers a new FIFO lane and returns its index. Lanes live for
// the queue's lifetime (reset empties them but keeps them registered), so
// the per-cache-level schedulers bound at System construction stay valid
// across System.Reset.
func (q *eventQueue) newLane() int {
	q.lanes = append(q.lanes, eventLane{})
	return len(q.lanes) - 1
}

// scheduleLane adds a token at absolute CPU cycle at on a FIFO lane.
// The caller promises non-decreasing at per lane; a violation falls back
// to the heap so correctness never depends on the promise.
func (q *eventQueue) scheduleLane(lane int, at int64, tok ev.Token) {
	l := &q.lanes[lane]
	if n := len(l.items); n > l.head && l.items[n-1].at > at {
		q.schedule(at, tok)
		return
	}
	if l.head == len(l.items) {
		// Drained: restart the ring so the backing array is reused instead
		// of growing without bound.
		l.items = l.items[:0]
		l.head = 0
	}
	q.seq++
	l.items = append(l.items, event{at: at, seq: q.seq, tok: tok})
	if at < q.nextDue {
		q.nextDue = at
	}
}

// reset empties the queue — heap and lanes — while keeping all backing
// storage and lane registrations.
func (q *eventQueue) reset() {
	clear(q.items)
	q.items = q.items[:0]
	q.seq = 0
	for i := range q.lanes {
		l := &q.lanes[i]
		clear(l.items)
		l.items = l.items[:0]
		l.head = 0
	}
	q.nextDue = 0
}

func (q *eventQueue) less(i, j int) bool {
	if q.items[i].at != q.items[j].at {
		return q.items[i].at < q.items[j].at
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			break
		}
		q.items[i], q.items[least] = q.items[least], q.items[i]
		i = least
	}
}

// schedule adds a token at absolute CPU cycle at.
func (q *eventQueue) schedule(at int64, tok ev.Token) {
	q.seq++
	q.items = append(q.items, event{at: at, seq: q.seq, tok: tok})
	q.up(len(q.items) - 1)
	if at < q.nextDue {
		q.nextDue = at
	}
}

// neverDue marks an empty queue in nextDue.
const neverDue = int64(1<<63 - 1)

// scanNext computes the earliest pending at across the heap and every
// lane by inspection.
func (q *eventQueue) scanNext() (at int64, ok bool) {
	if len(q.items) > 0 {
		at, ok = q.items[0].at, true
	}
	for i := range q.lanes {
		l := &q.lanes[i]
		if l.head < len(l.items) && (!ok || l.items[l.head].at < at) {
			at, ok = l.items[l.head].at, true
		}
	}
	return at, ok
}

// nextAt returns the time of the earliest pending event. O(1) off the
// nextDue cache and small enough to inline into the run loop, which
// consults it every executed cycle; the cache's zero value (fresh or
// reset queue, before the first fireDue) is ambiguous and takes the
// out-of-line scan.
func (q *eventQueue) nextAt() (at int64, ok bool) {
	if q.nextDue == 0 {
		return q.nextAtSlow()
	}
	return q.nextDue, q.nextDue != neverDue
}

// nextAtSlow resolves the ambiguous zero nextDue by scanning, and caches
// the answer so subsequent nextAt calls stay on the fast path.
func (q *eventQueue) nextAtSlow() (int64, bool) {
	at, ok := q.scanNext()
	if !ok {
		q.nextDue = neverDue
		return 0, false
	}
	q.nextDue = at
	return at, true
}

// fireDue runs all events due at or before now. Ordering is
// deterministic, source-major: heap events in (at, seq) order first, then
// each lane in registration order, repeated until a full sweep fires
// nothing — so events a firing callback schedules at or before now fire
// in the same call. Per-source draining keeps the cost per event at one
// heap pop or one ring advance; a strict cross-source (at, seq) merge was
// measured to cost more than the heap traffic it replaced. Both engines
// share this discipline, so dense/skip bit-equality is unaffected. The
// nextDue probe makes the per-cycle nothing-due case O(1); when events do
// fire, the exact next due time is recomputed on the way out.
func (q *eventQueue) fireDue(now int64, d ev.Dispatcher) {
	if now < q.nextDue {
		return
	}
	for {
		for len(q.items) > 0 && q.items[0].at <= now {
			tok := q.items[0].tok
			n := len(q.items) - 1
			q.items[0] = q.items[n]
			q.items[n] = event{}
			q.items = q.items[:n]
			if n > 1 {
				q.down(0)
			}
			d.Dispatch(tok, now)
		}
		for i := range q.lanes {
			l := &q.lanes[i]
			if l.head == len(l.items) {
				continue
			}
			for l.head < len(l.items) {
				e := &l.items[l.head]
				if e.at > now {
					break
				}
				tok := e.tok
				*e = event{}
				l.head++
				d.Dispatch(tok, now)
			}
		}
		// One scan both recomputes the nextDue cache and decides whether a
		// firing callback scheduled more work at or before now (rare): the
		// termination check is the bookkeeping, not an extra sweep.
		next, ok := q.scanNext()
		if !ok {
			q.nextDue = neverDue
			return
		}
		q.nextDue = next
		if next > now {
			return
		}
	}
}
