// Package sim assembles the full simulated system of the FIGARO paper:
// trace-driven cores (internal/cpu), the SRAM hierarchy (internal/cache),
// per-channel memory controllers (internal/memctrl) over the DDR4 device
// model (internal/dram), and the in-DRAM cache configurations of Section 8
// (Base, LISA-VILLA, FIGCache-Slow, FIGCache-Fast, FIGCache-Ideal,
// LL-DRAM). It runs the whole system on one CPU-cycle clock (3.2 GHz) with
// the DRAM bus ticking every fourth cycle (800 MHz).
package sim

// event is a deferred callback in CPU-cycle time.
type event struct {
	at  int64
	seq int64 // tie-breaker for deterministic ordering
	fn  func(now int64)
}

// eventQueue is a deterministic min-heap of events. It is hand-rolled
// rather than built on container/heap: events fire several times per
// simulated memory access, and the interface boxing of heap.Push/Pop
// allocates on every call.
type eventQueue struct {
	items []event
	seq   int64
}

func (q *eventQueue) less(i, j int) bool {
	if q.items[i].at != q.items[j].at {
		return q.items[i].at < q.items[j].at
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			break
		}
		q.items[i], q.items[least] = q.items[least], q.items[i]
		i = least
	}
}

// schedule adds a callback at absolute CPU cycle at.
func (q *eventQueue) schedule(at int64, fn func(int64)) {
	q.seq++
	q.items = append(q.items, event{at: at, seq: q.seq, fn: fn})
	q.up(len(q.items) - 1)
}

// nextAt returns the time of the earliest pending event.
func (q *eventQueue) nextAt() (at int64, ok bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].at, true
}

// fireDue runs all events due at or before now, in order. Events
// scheduled by a firing callback at or before now fire in the same call.
func (q *eventQueue) fireDue(now int64) {
	for len(q.items) > 0 && q.items[0].at <= now {
		it := q.items[0]
		n := len(q.items) - 1
		q.items[0] = q.items[n]
		q.items[n] = event{} // release the callback for GC
		q.items = q.items[:n]
		if n > 1 {
			q.down(0)
		}
		it.fn(now)
	}
}
