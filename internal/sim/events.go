// Package sim assembles the full simulated system of the FIGARO paper:
// trace-driven cores (internal/cpu), the SRAM hierarchy (internal/cache),
// per-channel memory controllers (internal/memctrl) over the DDR4 device
// model (internal/dram), and the in-DRAM cache configurations of Section 8
// (Base, LISA-VILLA, FIGCache-Slow, FIGCache-Fast, FIGCache-Ideal,
// LL-DRAM). It runs the whole system on one CPU-cycle clock (3.2 GHz) with
// the DRAM bus ticking every fourth cycle (800 MHz).
package sim

import "container/heap"

// event is a deferred callback in CPU-cycle time.
type event struct {
	at  int64
	seq int64 // tie-breaker for deterministic ordering
	fn  func(now int64)
}

// eventQueue is a deterministic min-heap of events.
type eventQueue struct {
	items []event
	seq   int64
}

func (q *eventQueue) Len() int { return len(q.items) }
func (q *eventQueue) Less(i, j int) bool {
	if q.items[i].at != q.items[j].at {
		return q.items[i].at < q.items[j].at
	}
	return q.items[i].seq < q.items[j].seq
}
func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *eventQueue) Push(x any) { q.items = append(q.items, x.(event)) }
func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// schedule adds a callback at absolute CPU cycle at.
func (q *eventQueue) schedule(at int64, fn func(int64)) {
	q.seq++
	heap.Push(q, event{at: at, seq: q.seq, fn: fn})
}

// fireDue runs all events due at or before now, in order.
func (q *eventQueue) fireDue(now int64) {
	for q.Len() > 0 && q.items[0].at <= now {
		it := heap.Pop(q).(event)
		it.fn(now)
	}
}
