package sim

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// runWith executes one config with the given engine selection.
func runWith(t *testing.T, cfg Config, dense bool) Result {
	t.Helper()
	cfg.DenseLoop = dense
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// warmMix returns a workload that exercises the in-DRAM cache (insertions,
// relocations, idle flushes) within a small instruction budget.
func warmMix(t *testing.T) workload.Mix {
	t.Helper()
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	spec.Bubbles = 4
	spec.HotSegments = 2560
	spec.HotFraction = 0.95
	return workload.Mix{Name: "warm", Apps: workload.Sources(spec)}
}

// TestEngineEquivalence is the golden determinism test for the
// cycle-skipping engine: every configuration must produce a sim.Result
// bit-identical to the dense cycle-by-cycle reference loop.
func TestEngineEquivalence(t *testing.T) {
	type tc struct {
		name  string
		cfg   Config
		insts int64
	}
	var cases []tc
	for _, p := range Presets() {
		cases = append(cases, tc{
			name:  p.String() + "/mcf",
			cfg:   DefaultConfig(p, smallMix(t, "mcf")),
			insts: 20_000,
		})
	}
	// Relocation-heavy runs stress deferred-flush and refresh timing.
	cases = append(cases,
		tc{name: "FIGCache-Fast/warm", cfg: DefaultConfig(FIGCacheFast, warmMix(t)), insts: 60_000},
		tc{name: "LISA-VILLA/warm", cfg: DefaultConfig(LISAVilla, warmMix(t)), insts: 60_000},
	)
	immediate := DefaultConfig(FIGCacheFast, warmMix(t))
	immediate.ImmediateReloc = true
	cases = append(cases, tc{name: "FIGCache-Fast/immediate-reloc", cfg: immediate, insts: 40_000})
	// A non-intensive app spends most cycles unstalled: its long bubble
	// runs exercise the closed-form batch path rather than the skip path.
	cases = append(cases, tc{name: "Base/gcc", cfg: DefaultConfig(Base, smallMix(t, "gcc")), insts: 20_000})
	// An extreme compute-bound app (sjeng has the largest bubble count)
	// batches almost every cycle; the FIGCache preset keeps the memory
	// system non-trivial underneath the batching.
	cases = append(cases,
		tc{name: "Base/sjeng", cfg: DefaultConfig(Base, smallMix(t, "sjeng")), insts: 60_000},
		tc{name: "FIGCache-Fast/sjeng", cfg: DefaultConfig(FIGCacheFast, smallMix(t, "sjeng")), insts: 60_000},
	)

	// Recorded-trace replay must satisfy the same equivalence contract as
	// the synthetic generator: dense, skipping, and Reset-reused runs all
	// bit-identical. The trace is shorter than the run consumes, so the
	// looping replay path is exercised too.
	traceDir := t.TempDir()
	tracePath := recordTrace(t, traceDir, "equiv.trc", "mcf", 1_500, 3)
	for _, p := range []Preset{Base, FIGCacheFast} {
		cases = append(cases, tc{
			name:  p.String() + "/trace",
			cfg:   DefaultConfig(p, workload.Mix{Name: "trace-equiv", Apps: []workload.Source{workload.TraceSource(tracePath)}}),
			insts: 20_000,
		})
	}
	// A heterogeneous mix — one synthetic core, one replayed core — pins
	// that the two source kinds coexist in one system.
	mixed := workload.Mix{Name: "mixed-sources", Apps: []workload.Source{
		workload.SynthSource(smallMix(t, "gcc").Apps[0].Synth),
		workload.TraceSource(tracePath),
	}}
	cases = append(cases, tc{name: "Base/mixed-sources", cfg: DefaultConfig(Base, mixed), insts: 8_000})

	if !testing.Short() {
		eight := DefaultConfig(Base, workload.EightCoreMixes()[0])
		cases = append(cases, tc{name: "Base/8core", cfg: eight, insts: 5_000})
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			c.cfg.TargetInsts = c.insts
			dense := runWith(t, c.cfg, true)
			skip := runWith(t, c.cfg, false)
			if !reflect.DeepEqual(dense, skip) {
				t.Errorf("engines diverge:\n dense: %+v\n  skip: %+v", dense, skip)
			}

			// Reset-reuse: a System that already ran a *different*
			// configuration of the same shape and was Reset to this one
			// must reproduce the fresh run bit for bit — the contract the
			// harness's per-worker System pools rely on. The warm-up run
			// deliberately differs in preset, seed, and target so every
			// piece of state Reset clears was actually dirty.
			warm := c.cfg
			if warm.Preset == FIGCacheFast {
				warm.Preset = LISAVilla
			} else {
				warm.Preset = FIGCacheFast
			}
			warm.Seed = c.cfg.Seed + 17
			warm.TargetInsts = c.insts / 4
			if warm.TargetInsts < 1_000 {
				warm.TargetInsts = 1_000
			}
			sys, err := New(warm)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if err := sys.Reset(c.cfg); err != nil {
				t.Fatal(err)
			}
			reused, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(reused, skip) {
				t.Errorf("Reset-reused System diverges from fresh run:\n fresh: %+v\nreused: %+v", skip, reused)
			}

			// Gang: the case's config plus two timing-divergent siblings —
			// a different preset and a dense-engine twin — execute as one
			// gang over a shared instruction stream. Gang execution is a
			// pure execution-strategy change, so every member must be
			// bit-identical to its solo run (the dense twin doubles as a
			// mixed-engine gang case). For the mixed-sources case this also
			// pins a synth+trace gang.
			sib := c.cfg
			if sib.Preset == LISAVilla {
				sib.Preset = FIGCacheFast
			} else {
				sib.Preset = LISAVilla
			}
			denseTwin := c.cfg
			denseTwin.DenseLoop = true
			gangCfgs := []Config{c.cfg, sib, denseTwin}
			gang, err := NewGang(gangCfgs, nil)
			if err != nil {
				t.Fatal(err)
			}
			gangRes, gangErrs := gang.Run()
			for i, gerr := range gangErrs {
				if gerr != nil {
					t.Fatalf("gang member %d: %v", i, gerr)
				}
			}
			sibSolo := runWith(t, sib, false)
			for i, want := range []Result{skip, sibSolo, dense} {
				if !reflect.DeepEqual(gangRes[i], want) {
					t.Errorf("gang member %d diverges from its solo run:\n gang: %+v\n solo: %+v", i, gangRes[i], want)
				}
			}

			// A gang member's System is an ordinary finished System:
			// Reset-reusing the whole gang into a second identical gang, and
			// Reset-reusing one member into a solo run, must both reproduce
			// the fresh results bit for bit.
			regang, err := NewGang(gangCfgs, gang.Members())
			if err != nil {
				t.Fatal(err)
			}
			regangRes, regangErrs := regang.Run()
			for i, want := range []Result{skip, sibSolo, dense} {
				if regangErrs[i] != nil {
					t.Fatalf("reused gang member %d: %v", i, regangErrs[i])
				}
				if !reflect.DeepEqual(regangRes[i], want) {
					t.Errorf("reused gang member %d diverges:\n gang: %+v\n solo: %+v", i, regangRes[i], want)
				}
			}
			member := regang.Members()[1]
			if err := member.Reset(c.cfg); err != nil {
				t.Fatal(err)
			}
			soloAfterGang, err := member.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(soloAfterGang, skip) {
				t.Errorf("solo run on a Reset gang member diverges:\n  got: %+v\n want: %+v", soloAfterGang, skip)
			}

			// Checkpoint-at-K: pausing a run mid-flight at RunUntilRetired,
			// snapshotting, and finishing — on the same System, or on a
			// freshly built one restored from the snapshot bytes — must
			// reproduce the uninterrupted run bit for bit, for both engines.
			k := c.insts * int64(len(c.cfg.Mix.Apps)) / 3
			if k < 1 {
				k = 1
			}
			for _, dl := range []bool{true, false} {
				want := skip
				if dl {
					want = dense
				}
				cfg := c.cfg
				cfg.DenseLoop = dl
				sys, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				sys.RunUntilRetired(k)
				var buf bytes.Buffer
				if err := sys.Snapshot(&buf); err != nil {
					t.Fatal(err)
				}
				cont, err := sys.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(cont, want) {
					t.Errorf("dense=%v: checkpoint-at-%d + in-process continue diverges:\n want: %+v\n  got: %+v", dl, k, want, cont)
				}

				fresh, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := fresh.Restore(bytes.NewReader(buf.Bytes())); err != nil {
					t.Fatal(err)
				}
				restored, err := fresh.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(restored, want) {
					t.Errorf("dense=%v: checkpoint-at-%d + fresh-System restore diverges:\n want: %+v\n  got: %+v", dl, k, want, restored)
				}
			}
		})
	}
}

// TestResetShapeMismatch checks that Reset refuses to retarget a System
// across a shape change (core or channel count) instead of corrupting it.
func TestResetShapeMismatch(t *testing.T) {
	cfg := DefaultConfig(Base, smallMix(t, "mcf"))
	cfg.TargetInsts = 1_000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eight := DefaultConfig(Base, workload.EightCoreMixes()[0])
	eight.TargetInsts = 1_000
	if err := sys.Reset(eight); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("Reset across 1-core -> 8-core returned %v, want ErrShapeMismatch", err)
	}
}

// TestResetAcrossClockRatio retargets a System to a different CPU/bus
// clock ratio: the bus-cycle conversion closure is rebound by Reset, so
// the reused run must still match a fresh construction exactly.
func TestResetAcrossClockRatio(t *testing.T) {
	cfg := DefaultConfig(Base, smallMix(t, "mcf"))
	cfg.TargetInsts = 10_000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	half := cfg
	half.CPUPerBus = 2
	fresh := runWith(t, half, false)
	if err := sys.Reset(half); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fresh) {
		t.Errorf("reused run at CPUPerBus=2 diverges from fresh run:\n fresh: %+v\nreused: %+v", fresh, got)
	}
}

// TestResetRepeatedReuse drives one System through a chain of resets —
// the steady state of a harness worker — and checks every run against a
// fresh construction.
func TestResetRepeatedReuse(t *testing.T) {
	mix := smallMix(t, "mcf")
	var sys *System
	for i, p := range Presets() {
		cfg := DefaultConfig(p, mix)
		cfg.TargetInsts = 10_000
		cfg.Seed = uint64(i + 1)
		fresh := runWith(t, cfg, false)
		if sys == nil {
			var err error
			if sys, err = New(cfg); err != nil {
				t.Fatal(err)
			}
		} else if err := sys.Reset(cfg); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		got, err := sys.Run()
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !reflect.DeepEqual(got, fresh) {
			t.Errorf("%v (reset #%d): reused result diverges:\n fresh: %+v\nreused: %+v", p, i, fresh, got)
		}
	}
}

// TestEngineStallCounters checks that the diagnostic stall statistics —
// which are not part of sim.Result — also match between engines: the
// cycle-skipping loop credits skipped stall cycles via
// cpu.Core.AccountSkipped / cache.Cache.AccountRefused.
func TestEngineStallCounters(t *testing.T) {
	// writeHeavy streams stores through an LLC-evicting footprint so the
	// controllers actually enter write-drain mode; without it the
	// WritingCycles comparison would be vacuously 0 == 0.
	writeHeavy := func() workload.Mix {
		spec, err := workload.ByName("lbm")
		if err != nil {
			t.Fatal(err)
		}
		spec.Bubbles = 0
		spec.WriteFrac = 0.9
		spec.HotFraction = 0
		return workload.Mix{Name: "writeheavy", Apps: workload.Sources(spec)}
	}
	cases := []struct {
		name         string
		mix          workload.Mix
		insts        int64
		wantDraining bool
	}{
		{name: "mcf", mix: smallMix(t, "mcf"), insts: 20_000},
		{name: "writeheavy", mix: writeHeavy(), insts: 60_000, wantDraining: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(dense bool) *System {
				cfg := DefaultConfig(Base, tc.mix)
				cfg.TargetInsts = tc.insts
				cfg.Seed = 2
				cfg.DenseLoop = dense
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					t.Fatal(err)
				}
				return s
			}
			d, k := run(true), run(false)
			for i := range d.Cores() {
				dc, kc := d.Cores()[i], k.Cores()[i]
				if dc.LoadStalls != kc.LoadStalls || dc.StoreStalls != kc.StoreStalls ||
					dc.WindowFull != kc.WindowFull {
					t.Errorf("core %d stalls diverge: dense load=%d store=%d window=%d, skip load=%d store=%d window=%d",
						i, dc.LoadStalls, dc.StoreStalls, dc.WindowFull,
						kc.LoadStalls, kc.StoreStalls, kc.WindowFull)
				}
			}
			for i := range d.Hierarchy().L1s {
				dl, kl := d.Hierarchy().L1s[i], k.Hierarchy().L1s[i]
				if dl.MSHRFullStalls != kl.MSHRFullStalls || dl.ReadAcc != kl.ReadAcc || dl.WriteAcc != kl.WriteAcc {
					t.Errorf("L1.%d counters diverge: dense (stalls=%d r=%d w=%d), skip (stalls=%d r=%d w=%d)",
						i, dl.MSHRFullStalls, dl.ReadAcc, dl.WriteAcc, kl.MSHRFullStalls, kl.ReadAcc, kl.WriteAcc)
				}
			}
			var writing int64
			for i := range d.Controllers() {
				dc, kc := d.Controllers()[i], k.Controllers()[i]
				if dc.WritingCycles != kc.WritingCycles {
					t.Errorf("controller %d WritingCycles diverge: dense %d, skip %d",
						i, dc.WritingCycles, kc.WritingCycles)
				}
				writing += dc.WritingCycles
			}
			if tc.wantDraining && writing == 0 {
				t.Error("write-heavy workload never entered write-drain mode; comparison is vacuous")
			}
		})
	}
}

// TestEngineDeterministicRerun checks that the same seed yields a
// bit-identical Result across two runs of the same engine.
func TestEngineDeterministicRerun(t *testing.T) {
	for _, dense := range []bool{false, true} {
		cfg := DefaultConfig(FIGCacheFast, warmMix(t))
		cfg.TargetInsts = 40_000
		cfg.Seed = 7
		a := runWith(t, cfg, dense)
		b := runWith(t, cfg, dense)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("dense=%v: reruns with the same seed diverge:\n a: %+v\n b: %+v", dense, a, b)
		}
	}
}

// TestEngineSeedSensitivity guards against the seed being ignored: two
// different seeds should (for a memory-intensive workload) produce
// different traces and therefore different cycle counts.
func TestEngineSeedSensitivity(t *testing.T) {
	cfg := DefaultConfig(Base, smallMix(t, "mcf"))
	cfg.TargetInsts = 15_000
	a := runWith(t, cfg, false)
	cfg.Seed = 99
	b := runWith(t, cfg, false)
	if a.Cycles == b.Cycles && reflect.DeepEqual(a.DRAM, b.DRAM) {
		t.Error("different seeds produced identical runs; seed is likely ignored")
	}
}
