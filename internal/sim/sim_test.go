package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ev"
	"repro/internal/workload"
)

// smallMix returns a quick single-core workload for unit tests.
func smallMix(t *testing.T, name string) workload.Mix {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Mix{Name: name, Apps: workload.Sources(spec), IntensivePercent: 100}
}

func quickRun(t *testing.T, p Preset, mix workload.Mix, insts int64) Result {
	t.Helper()
	cfg := DefaultConfig(p, mix)
	cfg.TargetInsts = insts
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// recDisp records dispatched token Args in fire order.
type recDisp struct{ got []int }

func (d *recDisp) Dispatch(tok ev.Token, now int64) { d.got = append(d.got, int(tok.Arg)) }

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	d := &recDisp{}
	tok := func(id int) ev.Token { return ev.Token{Kind: ev.CoreSlot, Arg: uint64(id)} }
	q.schedule(10, tok(2))
	q.schedule(5, tok(1))
	q.schedule(10, tok(3)) // same time: FIFO by seq
	q.schedule(20, tok(4))
	q.fireDue(10, d)
	if got := d.got; len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("fire order = %v, want [1 2 3]", got)
	}
	q.fireDue(100, d)
	if got := d.got; len(got) != 4 || got[3] != 4 {
		t.Errorf("final order = %v", got)
	}
}

func TestPresetStrings(t *testing.T) {
	for _, p := range Presets() {
		if p.String() == "" || p.String()[0] == 'P' {
			t.Errorf("preset %d has bad name %q", int(p), p.String())
		}
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	mix := workload.Mix{Name: "x", Apps: workload.Sources(workload.Benchmarks()[:8]...)}
	cfg := DefaultConfig(Base, mix)
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Channels != 4 {
		t.Errorf("8-core channels = %d, want 4 (Table 1)", cfg.Channels)
	}
	single := DefaultConfig(Base, workload.Mix{Name: "y", Apps: workload.Sources(workload.Benchmarks()[:1]...)})
	if err := single.normalize(); err != nil {
		t.Fatal(err)
	}
	if single.Channels != 1 {
		t.Errorf("1-core channels = %d, want 1 (Table 1)", single.Channels)
	}
}

func TestConfigRejectsBad(t *testing.T) {
	if _, err := New(Config{Preset: Base}); err == nil {
		t.Error("accepted empty mix")
	}
	cfg := DefaultConfig(Preset(99), smallMix(t, "mcf"))
	if _, err := New(cfg); err == nil {
		t.Error("accepted unknown preset")
	}
	cfg = DefaultConfig(Base, smallMix(t, "mcf"))
	cfg.TargetInsts = -5
	if _, err := New(cfg); err == nil {
		t.Error("accepted negative target")
	}
}

func TestBaseRunCompletes(t *testing.T) {
	res := quickRun(t, Base, smallMix(t, "mcf"), 20_000)
	if res.Cores[0].IPC <= 0 {
		t.Fatalf("IPC = %g, want positive", res.Cores[0].IPC)
	}
	if res.MemReads == 0 {
		t.Error("no memory reads reached DRAM")
	}
	if res.DRAM.ACT == 0 || res.DRAM.RD == 0 {
		t.Errorf("DRAM stats empty: %+v", res.DRAM)
	}
	if res.CacheHits != 0 || res.CacheMisses != 0 {
		t.Error("Base run reported in-DRAM cache activity")
	}
}

func TestFIGCacheFastRunUsesCache(t *testing.T) {
	// A fast-warming workload: the hot set exceeds the 2 MB LLC but is
	// swept quickly, so the second sweep hits the in-DRAM cache within a
	// small instruction budget.
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	spec.Bubbles = 4
	spec.HotSegments = 2560
	spec.HotFraction = 0.95
	mix := workload.Mix{Name: "warm", Apps: workload.Sources(spec)}
	res := quickRun(t, FIGCacheFast, mix, 80_000)
	if res.CacheHits+res.CacheMisses == 0 {
		t.Fatal("FIGCache saw no lookups")
	}
	if res.Inserted == 0 {
		t.Error("FIGCache made no insertions")
	}
	if res.DRAM.RELOC == 0 {
		t.Error("no RELOC operations recorded")
	}
	if res.InDRAMCacheHitRate() <= 0 {
		t.Error("zero in-DRAM cache hit rate on a hot-set workload")
	}
}

func TestLISARunUsesRBM(t *testing.T) {
	// LISA-VILLA's hot-row detector needs rows re-activated before it
	// inserts, so use the fast-warming workload with enough instructions
	// for two sweeps.
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	spec.Bubbles = 4
	spec.HotSegments = 2560
	spec.HotFraction = 0.95
	mix := workload.Mix{Name: "warm", Apps: workload.Sources(spec)}
	res := quickRun(t, LISAVilla, mix, 80_000)
	if res.Inserted == 0 {
		t.Error("LISA-VILLA made no insertions")
	}
	if res.DRAM.RBMHops == 0 {
		t.Error("no RBM hops recorded")
	}
	if res.DRAM.RELOC != 0 {
		t.Error("LISA-VILLA recorded FIGARO RELOCs")
	}
}

func TestLLDRAMFasterThanBase(t *testing.T) {
	base := quickRun(t, Base, smallMix(t, "mcf"), 30_000)
	ll := quickRun(t, LLDRAM, smallMix(t, "mcf"), 30_000)
	if ll.Cores[0].IPC <= base.Cores[0].IPC {
		t.Errorf("LL-DRAM IPC %.4f not above Base %.4f", ll.Cores[0].IPC, base.Cores[0].IPC)
	}
}

func TestFIGCacheIdealAtLeastAsFastAsReal(t *testing.T) {
	real := quickRun(t, FIGCacheFast, smallMix(t, "mcf"), 30_000)
	ideal := quickRun(t, FIGCacheIdeal, smallMix(t, "mcf"), 30_000)
	// Zero-cost relocation can only help (allowing a little noise).
	if ideal.Cores[0].IPC < real.Cores[0].IPC*0.97 {
		t.Errorf("Ideal IPC %.4f below real %.4f", ideal.Cores[0].IPC, real.Cores[0].IPC)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := quickRun(t, FIGCacheFast, smallMix(t, "libquantum"), 15_000)
	b := quickRun(t, FIGCacheFast, smallMix(t, "libquantum"), 15_000)
	if a.Cycles != b.Cycles || a.DRAM != b.DRAM || a.Cores[0].IPC != b.Cores[0].IPC {
		t.Errorf("runs differ: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestEightCoreRun(t *testing.T) {
	if testing.Short() {
		t.Skip("eight-core run in -short mode")
	}
	mix := workload.EightCoreMixes()[0]
	cfg := DefaultConfig(Base, mix)
	cfg.TargetInsts = 10_000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 8 {
		t.Fatalf("core results = %d, want 8", len(res.Cores))
	}
	for i, c := range res.Cores {
		if c.IPC <= 0 {
			t.Errorf("core %d IPC = %g", i, c.IPC)
		}
	}
}

func TestWeightedSpeedupIdentity(t *testing.T) {
	res := quickRun(t, Base, smallMix(t, "gcc"), 15_000)
	if ws := res.WeightedSpeedupOver(res); ws != 1.0 {
		t.Errorf("self weighted speedup = %g, want 1.0", ws)
	}
}

func TestFIGCacheConfigOverride(t *testing.T) {
	cfg := DefaultConfig(FIGCacheFast, smallMix(t, "mcf"))
	cfg.TargetInsts = 10_000
	override := core.DefaultFIGCacheConfig()
	override.SegmentBlocks = 32
	cfg.FIG = &override
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fc := FIGCacheOf(s.Hooks()[0])
	if fc == nil {
		t.Fatal("no FIGCache hook")
	}
	if fc.Config().SegmentBlocks != 32 {
		t.Errorf("segment override ignored: %d", fc.Config().SegmentBlocks)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFastSubarraySweepChangesCapacity(t *testing.T) {
	cfg := DefaultConfig(FIGCacheFast, smallMix(t, "mcf"))
	cfg.FastSubarrays = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fc := FIGCacheOf(s.Hooks()[0])
	if fc.Config().CacheRowsPerBank != 8*32 {
		t.Errorf("cache rows = %d, want 256 for 8 fast subarrays", fc.Config().CacheRowsPerBank)
	}
}

func TestSharedFootprintMultithreaded(t *testing.T) {
	if testing.Short() {
		t.Skip("multithreaded run in -short mode")
	}
	mix := workload.MultithreadedWorkloads()[0]
	cfg := DefaultConfig(Base, mix)
	cfg.TargetInsts = 5_000
	cfg.SharedFootprint = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
