// Package sim assembles and runs the full simulated system of the FIGARO
// paper: trace-driven cores (internal/cpu), the SRAM hierarchy
// (internal/cache), per-channel memory controllers (internal/memctrl)
// over the DDR4 device model (internal/dram), and the in-DRAM cache
// configurations of Section 8 (Base, LISA-VILLA, FIGCache-Slow,
// FIGCache-Fast, FIGCache-Ideal, LL-DRAM). It runs the whole system on
// one CPU-cycle clock (3.2 GHz) with the DRAM bus ticking every fourth
// cycle (800 MHz).
//
// The package is the repository's layer between the hardware models
// below it and the experiment machinery above it. Three contracts define
// that seam (ARCHITECTURE.md describes each in depth):
//
//   - Engine equivalence. System.Run normally uses a cycle-skipping,
//     batching engine; the dense cycle-by-cycle reference loop is kept
//     behind Config.DenseLoop, and TestEngineEquivalence enforces that
//     both produce bit-identical Results. Any timing-model change must
//     keep that test green.
//
//   - Run identity. Config.Fingerprint() is the canonical identity of a
//     run: a SHA-256 over the normalized configuration plus
//     EngineVersion. Equal fingerprints imply bit-identical Results, the
//     property the harness's result caching, cross-process persistence
//     (internal/expcache), and cross-machine sharding all build on. Bump
//     EngineVersion with any change that can alter what a run produces.
//
//   - System reuse. System.Reset retargets a built System to any
//     same-shape configuration (Config.ShapeKey), reusing its long-lived
//     allocations; a Reset-reused System must remain bit-identical to a
//     freshly constructed one (also enforced by TestEngineEquivalence).
//
//   - Checkpoint/restore. System.Snapshot serializes the complete
//     mid-run state of every layer into the versioned FGSS format
//     (internal/fgss; header carries EngineVersion and the config
//     fingerprint, and Restore refuses a mismatch of either).
//     System.RunUntilRetired is the checkpoint stop-point; a run
//     checkpointed at instruction K and resumed — in-process or
//     restored into a fresh System — finishes bit-identical to an
//     uninterrupted run, for both engines (TestEngineEquivalence's
//     checkpoint-at-K cases).
//
//   - Gang execution. Gang (gang.go) runs N same-workload Systems in
//     interleaved slices over one shared instruction stream
//     (workload.Tee), with each member's Result bit-identical to its
//     solo run — a pure execution-strategy change under the same
//     EngineVersion, so gang-computed and solo-computed cache entries
//     are interchangeable. Config.GangKey is the grouping identity.
package sim
