package sim

import (
	"testing"

	"repro/internal/workload"
)

// BenchmarkAccessPathAllocs drives the steady-state memory access path —
// core issue, L1/L2/LLC lookups and fills, pooled MSHRs, the adapter's
// pooled memctrl.Request objects, controller scheduling, DRAM timing,
// the bounded latency reservoir, and the event heap — and asserts that
// it allocates nothing once warm. The warm-up run grows every pool,
// queue and heap to its steady-state capacity; from then on the access
// path must be allocation-free, so full-Scale runs no longer spend time
// in the allocator or grow with run length.
func BenchmarkAccessPathAllocs(b *testing.B) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(Base, workload.Mix{Name: "mcf", Apps: workload.Sources(spec)})
	// The target is unreachable within the driven spans: the benchmark
	// measures the steady state, not a completed run.
	cfg.TargetInsts = 1 << 40
	cfg.MaxCycles = 1 << 62
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.runSkippingUntil(400_000, 0) // warm pools, queues, and the event heap

	allocs := testing.AllocsPerRun(5, func() {
		s.runSkippingUntil(s.clock+50_000, 0)
	})
	b.ReportMetric(allocs, "allocs/op")
	if allocs > 0 {
		b.Fatalf("steady-state access path allocated %.1f times per 50k-cycle span, want 0", allocs)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.runSkippingUntil(s.clock+50_000, 0)
	}
	b.ReportMetric(float64(50_000*b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}
