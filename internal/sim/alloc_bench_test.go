package sim

import (
	"testing"

	"repro/internal/workload"
)

// BenchmarkAccessPathAllocs drives the steady-state memory access path —
// core issue, L1/L2/LLC lookups and fills, pooled MSHRs, the adapter's
// pooled memctrl.Request objects, controller scheduling, DRAM timing,
// the bounded latency reservoir, and the event heap — and asserts that
// it allocates nothing once warm. The warm-up run grows every pool,
// queue and heap to its steady-state capacity; from then on the access
// path must be allocation-free, so full-Scale runs no longer spend time
// in the allocator or grow with run length.
func BenchmarkAccessPathAllocs(b *testing.B) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(Base, workload.Mix{Name: "mcf", Apps: workload.Sources(spec)})
	// The target is unreachable within the driven spans: the benchmark
	// measures the steady state, not a completed run.
	cfg.TargetInsts = 1 << 40
	cfg.MaxCycles = 1 << 62
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.runSkippingUntil(400_000, 0) // warm pools, queues, and the event heap

	allocs := testing.AllocsPerRun(5, func() {
		s.runSkippingUntil(s.clock+50_000, 0)
	})
	b.ReportMetric(allocs, "allocs/op")
	if allocs > 0 {
		b.Fatalf("steady-state access path allocated %.1f times per 50k-cycle span, want 0", allocs)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.runSkippingUntil(s.clock+50_000, 0)
	}
	b.ReportMetric(float64(50_000*b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkAccessPathAllocsReloc drives the access path with an active
// relocation preset, so the steady state additionally covers the cache
// hook's insertion decisions, the controller's pooled RelocPlan copies
// (the hook returns a pointer to reused scratch; the controller copies
// it into a pooled object and recycles the object after Commit), and
// the per-bank pending-plan slices whose backing arrays survive each
// flush. Relocation traffic is continuous for mcf under FIGCache-Fast,
// so a single allocation per insertion would show up immediately.
func BenchmarkAccessPathAllocsReloc(b *testing.B) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(FIGCacheFast, workload.Mix{Name: "mcf", Apps: workload.Sources(spec)})
	// The target is unreachable within the driven spans: the benchmark
	// measures the steady state, not a completed run.
	cfg.TargetInsts = 1 << 40
	cfg.MaxCycles = 1 << 62
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Relocation state (hook maps, plan pool, pending-plan slices) takes
	// longer to reach steady capacity than the pools alone.
	s.runSkippingUntil(1_200_000, 0)

	allocs := testing.AllocsPerRun(5, func() {
		s.runSkippingUntil(s.clock+50_000, 0)
	})
	b.ReportMetric(allocs, "allocs/op")
	if allocs > 0 {
		b.Fatalf("steady-state relocation path allocated %.1f times per 50k-cycle span, want 0", allocs)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.runSkippingUntil(s.clock+50_000, 0)
	}
	b.ReportMetric(float64(50_000*b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkAccessPathAllocsGang drives the same steady-state access
// path through a two-member gang, so every record flows through the
// shared stream tee (workload.Tee). The warm-up slices grow the tee's
// ring to the members' steady-state drift; from then on the ganged
// access path must be allocation-free, same as the solo one. The
// members pair Base with LL-DRAM: their very different memory
// latencies keep the members' cursors genuinely drifting through the
// ring rather than marching in lockstep. (Relocation presets are
// covered solo by BenchmarkAccessPathAllocsReloc.)
func BenchmarkAccessPathAllocsGang(b *testing.B) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(Base, workload.Mix{Name: "mcf", Apps: workload.Sources(spec)})
	// Unreachable targets: the benchmark measures the steady state, not
	// a completed run (a completed member would close its tee cursor).
	cfg.TargetInsts = 1 << 40
	cfg.MaxCycles = 1 << 62
	sib := cfg
	sib.Preset = LLDRAM
	gang, err := NewGang([]Config{cfg, sib}, nil)
	if err != nil {
		b.Fatal(err)
	}
	members := gang.Members()
	// Advance the member with the fewest consumed records, exactly like
	// Gang.Run: laggard-first scheduling is what bounds the cursor drift
	// and with it the tee ring. Naive alternation would let the faster
	// preset pull ahead without bound and grow the ring every round.
	step := func() {
		best, bestC := -1, uint64(0)
		for i := range members {
			if c := gang.consumed(i); best < 0 || c < bestC {
				best, bestC = i, c
			}
		}
		members[best].RunSlice(50_000)
	}
	for i := 0; i < 16; i++ { // warm pools, the event heap, and the tee ring
		step()
	}

	allocs := testing.AllocsPerRun(5, step)
	b.ReportMetric(allocs, "allocs/op")
	if allocs > 0 {
		b.Fatalf("steady-state gang access path allocated %.1f times per 50k-cycle span, want 0", allocs)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.ReportMetric(float64(50_000*b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}
