package sim

import "math"

// busWake maintains the controllers' next-work bus cycles in a flat
// tournament tree, so the run loop's per-iteration questions — "when is
// the earliest controller due?" and "which controllers are due now?" —
// cost O(1) and O(answer) instead of a scan over every controller. The
// leaves alias the System's ctrlWake slice (the snapshot format carries
// the leaf values; the internal nodes are derived and rebuilt on
// Reset/Restore). Ties break toward the lower controller ID, matching
// the dense loop's ID-order tick sequence.
//
// The tree is sized to the next power of two above the leaf count;
// missing leaves read as +inf. With one controller (the single-channel
// presets) the tree degenerates to the bare leaf and every operation is
// a direct array access.
type busWake struct {
	wake []int64 // leaf values: wake[i] is controller i's next-work probe
	win  []int32 // win[k], k in [1,size): leaf index winning node k's subtree
	size int     // leaf capacity: len(wake) rounded up to a power of two
}

// init points the tree at its leaf slice and derives the internal nodes.
func (w *busWake) init(wake []int64) {
	w.wake = wake
	w.size = 1
	for w.size < len(wake) {
		w.size <<= 1
	}
	if len(wake) <= 1 {
		w.win = nil
		return
	}
	if len(w.win) != w.size {
		w.win = make([]int32, w.size)
	}
	w.rebuild()
}

// val reads leaf i, treating padding leaves beyond the controller count
// as never due.
func (w *busWake) val(i int32) int64 {
	if int(i) < len(w.wake) {
		return w.wake[i]
	}
	return math.MaxInt64
}

// child returns the leaf index representing node c: itself for leaf
// nodes, the recorded winner for internal ones.
func (w *busWake) child(c int) int32 {
	if c >= w.size {
		return int32(c - w.size)
	}
	return w.win[c]
}

// rebuild derives every internal node from the current leaf values.
// Called after bulk leaf rewrites (Reset zeroing, snapshot restore).
func (w *busWake) rebuild() {
	for k := w.size - 1; k >= 1; k-- {
		l, r := w.child(2*k), w.child(2*k+1)
		if w.val(r) < w.val(l) {
			w.win[k] = r
		} else {
			w.win[k] = l // ties go left: the lower controller ID
		}
	}
}

// set updates leaf i and replays its root path.
func (w *busWake) set(i int, v int64) {
	w.wake[i] = v
	if w.win == nil {
		return
	}
	for k := (w.size + i) >> 1; k >= 1; k >>= 1 {
		l, r := w.child(2*k), w.child(2*k+1)
		if w.val(r) < w.val(l) {
			w.win[k] = r
		} else {
			w.win[k] = l
		}
	}
}

// min returns the earliest next-work bus cycle across all controllers
// (math.MaxInt64 when there are none).
func (w *busWake) min() int64 {
	if w.win == nil {
		if len(w.wake) == 0 {
			return math.MaxInt64
		}
		return w.wake[0]
	}
	return w.val(w.win[1])
}

// minExcept returns the earliest next-work cycle among every controller
// but i: the bound on how far controller i may run ahead on its own
// before another controller's dense-order tick interleaves. Computed by
// taking the best sibling subtree along i's root path.
func (w *busWake) minExcept(i int) int64 {
	if w.win == nil {
		return math.MaxInt64
	}
	best := int64(math.MaxInt64)
	for c := w.size + i; c > 1; c >>= 1 {
		if v := w.val(w.child(c ^ 1)); v < best {
			best = v
		}
	}
	return best
}

// appendDue appends the index of every controller due at bus cycle `at`
// (wake <= at) to dst, in ascending ID order — the order the dense loop
// ticks controllers in. Subtrees with no due leaf are pruned whole, so
// idle controllers cost nothing.
func (w *busWake) appendDue(at int64, dst []int32) []int32 {
	if len(w.wake) == 0 {
		return dst
	}
	if w.win == nil {
		if w.wake[0] <= at {
			dst = append(dst, 0)
		}
		return dst
	}
	return w.due(1, at, dst)
}

func (w *busWake) due(node int, at int64, dst []int32) []int32 {
	if node >= w.size {
		i := int32(node - w.size)
		if w.val(i) <= at {
			dst = append(dst, i)
		}
		return dst
	}
	if w.val(w.win[node]) > at {
		return dst
	}
	dst = w.due(2*node, at, dst)
	return w.due(2*node+1, at, dst)
}
