package sim

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/workload"
)

// ErrGangIncompatible reports that a set of configurations cannot share
// one gang stream: some member would open a core's workload source with
// different parameters (source, seed, address window, or layout) than
// the gang leader, so its solo trace would differ from the shared one.
// The caller should fall back to solo runs; Config.GangKey is the
// grouping predicate that avoids this error in the first place.
var ErrGangIncompatible = errors.New("sim: configurations cannot share one gang stream")

// gangSliceCycles is the scheduling quantum of Gang.Run: how many CPU
// cycles a member advances before control rotates to the laggard. Large
// enough that the slice-entry overhead (wake-scan warmup, tail credit
// settlement) vanishes against the simulated work, small enough that
// members stay within a few thousand records of each other — which is
// what keeps the shared stream's memoization window (workload.Tee) at
// its initial capacity.
const gangSliceCycles = 1 << 15

// Gang advances N same-workload Systems in lockstep through one decoded
// instruction stream. Each member's execution is bit-identical to its
// solo run — the gang only changes *when* work happens (interleaved
// slices, shared stream memoization), never *what* happens — so results
// computed by a gang and by solo runs are interchangeable under the same
// fingerprints (TestEngineEquivalence gang cases).
//
// Gangs and checkpoints do not mix mid-run: a member's cores read a tee
// cursor, not a snapshottable source reader, so System.Snapshot would
// skip its trace section. No API exposes a member between NewGang and
// the end of Run, and a finished member Reset for a solo run opens a
// real source reader again, so the combination cannot arise.
type Gang struct {
	members []*System
	// tees[core] is the shared per-core stream: produced once by the
	// leader's source reader, observed by every member at its own pace.
	tees []*workload.Tee
}

// gangOpenParams records the exact arguments the leader's System opened
// one core's source with; every other member must match them for the
// shared stream to be its solo stream.
type gangOpenParams struct {
	src    workload.Source
	seed   uint64
	base   uint64
	span   uint64
	layout workload.Layout
}

// NewGang assembles a gang for the configurations, which must agree on
// core count and on every core's workload-source open parameters
// (ErrGangIncompatible otherwise — group by Config.GangKey to avoid it).
// Timing-side configuration (preset, FIG/LISA overrides, clock ratio,
// instruction targets, engine selection) is free to differ per member:
// it never feeds back into the instruction stream.
//
// reuse optionally supplies idle Systems to retarget via Reset instead
// of fresh construction; entries may be nil and the slice may be shorter
// than cfgs. On error the reuse Systems must be discarded (a member
// Reset may have failed partway, and earlier members hold tee readers
// for a gang that will never run).
func NewGang(cfgs []Config, reuse []*System) (*Gang, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sim: gang needs at least one configuration")
	}
	cores := len(cfgs[0].Mix.Apps)
	for _, cfg := range cfgs[1:] {
		if len(cfg.Mix.Apps) != cores {
			return nil, fmt.Errorf("%w: core counts differ (%d vs %d)",
				ErrGangIncompatible, cores, len(cfg.Mix.Apps))
		}
	}
	g := &Gang{tees: make([]*workload.Tee, cores)}
	params := make([]gangOpenParams, cores)
	for m, cfg := range cfgs {
		m := m
		open := func(core int, src workload.Source, seed, base, span uint64, layout workload.Layout) (cpu.TraceReader, error) {
			p := gangOpenParams{src: src, seed: seed, base: base, span: span, layout: layout}
			if m == 0 {
				// The leader opens the real source once; everyone reads the
				// memoized stream, the leader included.
				solo, err := src.Open(seed, base, span, layout)
				if err != nil {
					return nil, err
				}
				tee, err := workload.NewTee(solo, len(cfgs))
				if err != nil {
					return nil, err
				}
				g.tees[core], params[core] = tee, p
				return tee.Reader(0), nil
			}
			if p != params[core] {
				return nil, fmt.Errorf("%w: member %d core %d opens %s with different parameters than the leader",
					ErrGangIncompatible, m, core, src.Name())
			}
			return g.tees[core].Reader(m), nil
		}
		var sys *System
		var err error
		if m < len(reuse) && reuse[m] != nil {
			sys = reuse[m]
			err = sys.ResetWithOpener(cfg, open)
		} else {
			sys, err = NewWithOpener(cfg, open)
		}
		if err != nil {
			return nil, fmt.Errorf("sim: gang member %d (%s): %w", m, cfg.Describe(), err)
		}
		g.members = append(g.members, sys)
	}
	return g, nil
}

// Members exposes the gang's Systems, in configuration order. After Run
// they are ordinary finished Systems: Reset retargets them to any
// same-shape configuration, solo or gang (pinned by the gang Reset-reuse
// equivalence case).
func (g *Gang) Members() []*System { return g.members }

// consumed returns how many shared-stream records member m has read
// across all cores — the scheduling metric that keeps the gang's members
// close together on the stream.
func (g *Gang) consumed(m int) uint64 {
	var total uint64
	for _, tee := range g.tees {
		total += tee.Consumed(m)
	}
	return total
}

// Run drives every member to completion, always advancing the open
// member that has consumed the fewest shared-stream records (ties to the
// lowest index, so scheduling is deterministic — not that it matters for
// results, which are member-local). Each member's Result and error are
// exactly what its solo Run would have produced, in configuration order.
func (g *Gang) Run() ([]Result, []error) {
	open := len(g.members)
	done := make([]bool, len(g.members))
	for open > 0 {
		best := -1
		var bestC uint64
		for i := range g.members {
			if done[i] {
				continue
			}
			if c := g.consumed(i); best < 0 || c < bestC {
				best, bestC = i, c
			}
		}
		if g.members[best].RunSlice(gangSliceCycles) {
			done[best] = true
			open--
			for _, tee := range g.tees {
				tee.Close(best)
			}
		}
	}
	results := make([]Result, len(g.members))
	errs := make([]error, len(g.members))
	for i, m := range g.members {
		results[i], errs[i] = m.finishRun()
	}
	return results, errs
}
