package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/workload"
)

// Preset selects one of the six evaluated system configurations of
// Section 8.
type Preset int

const (
	// Base: conventional DDR4 without in-DRAM caching.
	Base Preset = iota
	// LISAVilla: the state-of-the-art baseline — 16 fast subarrays per
	// bank, whole-row caching, distance-dependent relocation.
	LISAVilla
	// FIGCacheSlow: FIGCache with 64 reserved rows in one slow subarray
	// (conventional homogeneous DRAM; Figure 2c).
	FIGCacheSlow
	// FIGCacheFast: FIGCache with two 32-row fast subarrays per bank
	// (Figure 2b).
	FIGCacheFast
	// FIGCacheIdeal: FIGCacheFast with zero-latency relocation (an
	// idealized upper bound for the insertion cost).
	FIGCacheIdeal
	// LLDRAM: every subarray is fast (idealized low-latency DRAM).
	LLDRAM

	numPresets
)

var presetNames = [numPresets]string{
	"Base", "LISA-VILLA", "FIGCache-Slow", "FIGCache-Fast", "FIGCache-Ideal", "LL-DRAM",
}

func (p Preset) String() string {
	if p < 0 || int(p) >= len(presetNames) {
		return fmt.Sprintf("Preset(%d)", int(p))
	}
	return presetNames[p]
}

// Presets returns the realistic and idealized configurations in the order
// the paper's figures plot them.
func Presets() []Preset {
	return []Preset{Base, LISAVilla, FIGCacheSlow, FIGCacheFast, FIGCacheIdeal, LLDRAM}
}

// Config describes one simulation run.
type Config struct {
	Preset Preset
	// Mix assigns one workload source per core — a synthetic benchmark
	// generator or a recorded trace (see workload.Source).
	Mix workload.Mix
	// Channels: Table 1 uses 1 channel for single-core and 4 for
	// eight-core runs. Zero selects that default.
	Channels int
	// TargetInsts is the per-core retire target at which IPC is recorded.
	TargetInsts int64
	// MaxCycles bounds the run as a safety net (0 = 400x TargetInsts).
	MaxCycles int64
	// CPUPerBus is the CPU-to-DRAM-bus clock ratio (3.2 GHz / 800 MHz = 4).
	CPUPerBus int64
	// Seed perturbs trace generation, so different runs of the same mix
	// can be averaged.
	Seed uint64

	// SharedFootprint makes all cores address one window (multithreaded
	// workloads); otherwise each core gets a disjoint window.
	SharedFootprint bool

	// FIG overrides the FIGCache parameters for the FIGCache presets
	// (sensitivity studies of Section 9). Nil selects the paper default.
	FIG *core.FIGCacheConfig
	// LISA overrides the LISA-VILLA parameters. Nil selects the default.
	LISA *core.LISAVillaConfig
	// FastSubarrays overrides the number of fast subarrays per bank for
	// FIGCacheFast (Figure 12's capacity sweep). Zero selects the default
	// of 2.
	FastSubarrays int

	// ImmediateReloc makes the memory controller execute insertion
	// relocations at miss time instead of deferring them to row close
	// (the design-choice ablation in the benchmark harness).
	ImmediateReloc bool

	// DenseLoop selects the reference cycle-by-cycle run loop instead of
	// the cycle-skipping event-driven engine. Both produce bit-identical
	// results (enforced by TestEngineEquivalence); the dense loop is kept
	// as the golden reference and as an escape hatch.
	DenseLoop bool
}

// DefaultConfig returns a run configuration for the preset and mix with
// Table 1 parameters and a laptop-scale instruction budget.
func DefaultConfig(p Preset, mix workload.Mix) Config {
	return Config{
		Preset:      p,
		Mix:         mix,
		TargetInsts: 200_000,
		CPUPerBus:   4,
		Seed:        1,
	}
}

// normalize fills defaults and validates.
func (c *Config) normalize() error {
	if len(c.Mix.Apps) == 0 {
		return fmt.Errorf("sim: mix %q has no applications", c.Mix.Name)
	}
	if c.Channels == 0 {
		if len(c.Mix.Apps) == 1 {
			c.Channels = 1
		} else {
			c.Channels = 4
		}
	}
	if c.CPUPerBus == 0 {
		c.CPUPerBus = 4
	}
	if c.TargetInsts <= 0 {
		return fmt.Errorf("sim: target instructions must be positive")
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 400 * c.TargetInsts
	}
	if c.Preset < 0 || c.Preset >= numPresets {
		return fmt.Errorf("sim: unknown preset %d", int(c.Preset))
	}
	if c.FastSubarrays == 0 {
		c.FastSubarrays = 2
	}
	return nil
}

// geometry returns the per-channel DRAM geometry for the preset.
func (c *Config) geometry() dram.Geometry {
	geo := dram.Default()
	switch c.Preset {
	case FIGCacheFast, FIGCacheIdeal:
		geo.FastSubarrays = c.FastSubarrays
	case LISAVilla:
		geo.FastSubarrays = 16
	}
	return geo
}

// buildHook constructs the in-DRAM cache hook for one channel, or nil for
// configurations without one.
func (c *Config) buildHook(geo dram.Geometry) (memctrl.CacheHook, error) {
	switch c.Preset {
	case Base, LLDRAM:
		return nil, nil
	case LISAVilla:
		lcfg := core.DefaultLISAVillaConfig()
		if c.LISA != nil {
			lcfg = *c.LISA
		}
		return core.NewLISAVilla(lcfg, geo)
	case FIGCacheSlow:
		fcfg := core.SlowConfig()
		if c.FIG != nil {
			fcfg = *c.FIG
			fcfg.ReservedSubarray = 0
		}
		return core.NewFIGCache(fcfg, geo)
	case FIGCacheFast, FIGCacheIdeal:
		fcfg := core.DefaultFIGCacheConfig()
		if c.FIG != nil {
			fcfg = *c.FIG
		}
		// Cache rows track the fast-subarray capacity (32 rows each).
		if c.FIG == nil {
			fcfg.CacheRowsPerBank = geo.FastSubarrays * geo.RowsPerFastSubarray
		}
		hook, err := core.NewFIGCache(fcfg, geo)
		if err != nil {
			return nil, err
		}
		if c.Preset == FIGCacheIdeal {
			return &idealHook{inner: hook}, nil
		}
		return hook, nil
	default:
		return nil, fmt.Errorf("sim: unhandled preset %v", c.Preset)
	}
}

// idealHook wraps FIGCache and zeroes all relocation costs: the
// FIGCache-Ideal configuration of Section 8.
type idealHook struct{ inner *core.FIGCache }

func (h *idealHook) Lookup(loc dram.Location, isWrite bool) (dram.Location, bool) {
	return h.inner.Lookup(loc, isWrite)
}
func (h *idealHook) ShouldInsert(loc dram.Location) bool { return h.inner.ShouldInsert(loc) }
func (h *idealHook) Insert(ch *dram.Channel, loc dram.Location, now int64) *memctrl.RelocPlan {
	plan := h.inner.Insert(ch, loc, now)
	if plan != nil {
		plan.Cost = 0
	}
	return plan
}
func (h *idealHook) Commit(p *memctrl.RelocPlan) { h.inner.Commit(p) }

// FIGCacheOf extracts the FIGCache from a hook, unwrapping the ideal
// wrapper; nil if the hook is not FIGCache-based.
func FIGCacheOf(h memctrl.CacheHook) *core.FIGCache {
	switch v := h.(type) {
	case *core.FIGCache:
		return v
	case *idealHook:
		return v.inner
	default:
		return nil
	}
}

// hierarchyConfig returns Table 1's SRAM hierarchy for the mix size.
func (c *Config) hierarchyConfig() cache.HierarchyConfig {
	return cache.DefaultHierarchyConfig(len(c.Mix.Apps))
}

// coreConfig returns Table 1's core parameters.
func (c *Config) coreConfig() cpu.Config { return cpu.DefaultConfig() }
