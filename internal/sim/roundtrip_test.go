// Cache round-trip equivalence lives in an external test package: it
// exercises internal/expcache over real sim.Results, and expcache imports
// sim, so the in-package test file cannot reach it.
package sim_test

import (
	"reflect"
	"testing"

	"repro/internal/expcache"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestEngineEquivalenceCacheRoundTrip is the persistence leg of the
// engine-equivalence contract: for every preset, a Result that went
// through the on-disk cache (JSON encode, atomic write, fresh-process
// read) must be bit-identical to the Result the simulation produced —
// floats included, which Go's JSON encoder guarantees via shortest
// round-trip formatting.
func TestEngineEquivalenceCacheRoundTrip(t *testing.T) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.Mix{Name: "mcf", Apps: workload.Sources(spec)}
	dir := t.TempDir()
	writer := expcache.New(dir)
	for _, p := range sim.Presets() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := sim.DefaultConfig(p, mix)
			cfg.TargetInsts = 10_000
			s, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			fp := cfg.Fingerprint()
			if err := writer.Put(fp, want); err != nil {
				t.Fatal(err)
			}
			// A fresh cache over the directory models the next process.
			got, ok := expcache.New(dir).Get(fp)
			if !ok {
				t.Fatal("persisted result missed")
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("cache round-trip is not bit-identical:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}
