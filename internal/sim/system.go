package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/workload"
)

// System is one fully assembled simulated machine.
type System struct {
	cfg    Config
	clock  int64
	events eventQueue

	cores    []*cpu.Core
	hier     *cache.Hierarchy
	mapper   *memctrl.AddrMapper
	ctrls    []*memctrl.Controller
	channels []*dram.Channel
	hooks    []memctrl.CacheHook
	adapter  *memAdapter
}

// New builds a system for the configuration.
func New(cfg Config) (*System, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg}

	geo := cfg.geometry()
	slow := dram.DDR4()
	fast := slow.Fast(dram.PaperFastScale())
	allFast := cfg.Preset == LLDRAM

	mapper, err := memctrl.NewAddrMapper(geo, cfg.Channels)
	if err != nil {
		return nil, err
	}
	s.mapper = mapper

	for ch := 0; ch < cfg.Channels; ch++ {
		channel, err := dram.NewChannel(geo, slow, fast, allFast)
		if err != nil {
			return nil, err
		}
		hook, err := cfg.buildHook(geo)
		if err != nil {
			return nil, err
		}
		mcCfg := memctrl.DefaultConfig()
		mcCfg.ImmediateReloc = cfg.ImmediateReloc
		s.channels = append(s.channels, channel)
		s.hooks = append(s.hooks, hook)
		s.ctrls = append(s.ctrls, memctrl.NewController(ch, mcCfg, channel, hook))
	}

	s.adapter = &memAdapter{sys: s}
	hier, err := cache.NewHierarchy(cfg.hierarchyConfig(), s.adapter, s)
	if err != nil {
		return nil, err
	}
	s.hier = hier

	// Build cores with equal disjoint address windows (or one shared
	// window for multithreaded workloads). Each benchmark's footprint is
	// scattered across its whole window by the generator, mimicking OS
	// page placement across banks and subarrays.
	span := uint64(mapper.TotalBytes())
	if !cfg.SharedFootprint {
		span = floorPow2(uint64(mapper.TotalBytes()) / uint64(len(cfg.Mix.Apps)))
	}
	for i, app := range cfg.Mix.Apps {
		base := uint64(0)
		if !cfg.SharedFootprint {
			base = uint64(i) * span
		}
		if uint64(app.FootprintBytes) > span {
			return nil, fmt.Errorf("sim: %s footprint %d exceeds its %d-byte window",
				app.Name, app.FootprintBytes, span)
		}
		// The generator needs the distance between two rows of the same
		// bank under this system's interleaving, so hot conflict groups
		// land in one bank across different rows (Section 8.1). Threads of
		// a multithreaded workload share one layout seed so their logical
		// segments resolve to the same physical addresses.
		layout := workload.Layout{
			RowStrideBytes: uint64(geo.RowBytes) * uint64(cfg.Channels) *
				uint64(geo.BanksPerRank()) * uint64(geo.Ranks),
		}
		if cfg.SharedFootprint {
			layout.LayoutSeed = cfg.Seed + 0x51ed270b
		}
		gen, err := workload.NewGeneratorLayout(app, cfg.Seed+uint64(i)*1315423911, base, span, layout)
		if err != nil {
			return nil, err
		}
		c, err := cpu.New(i, cfg.coreConfig(), gen, hier.L1s[i], cfg.TargetInsts)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, c)
	}
	return s, nil
}

// floorPow2 rounds v down to a power of two.
func floorPow2(v uint64) uint64 {
	p := uint64(1)
	for p<<1 <= v {
		p <<= 1
	}
	return p
}

// After implements cache.Scheduler on the system's event queue.
func (s *System) After(delay int64, fn func(now int64)) {
	s.events.schedule(s.clock+delay, fn)
}

// Clock returns the current CPU cycle.
func (s *System) Clock() int64 { return s.clock }

// Config returns the normalized run configuration (defaults filled in).
func (s *System) Config() Config { return s.cfg }

// Cores exposes the simulated cores.
func (s *System) Cores() []*cpu.Core { return s.cores }

// Hierarchy exposes the SRAM hierarchy.
func (s *System) Hierarchy() *cache.Hierarchy { return s.hier }

// Controllers exposes the per-channel memory controllers.
func (s *System) Controllers() []*memctrl.Controller { return s.ctrls }

// Hooks exposes the per-channel in-DRAM cache hooks (nil entries for
// configurations without one).
func (s *System) Hooks() []memctrl.CacheHook { return s.hooks }

// memAdapter bridges the SRAM hierarchy to the memory controllers: it
// decodes addresses, buffers requests that do not fit in the controller
// queues, and converts completion times between clock domains.
type memAdapter struct {
	sys     *System
	pending []*pendingReq
}

type pendingReq struct {
	channel int
	req     *memctrl.Request
}

// Request implements cache.Backend.
func (m *memAdapter) Request(addr uint64, isWrite bool, coreID int, onDone func(now int64)) {
	ch, loc := m.sys.mapper.Decode(addr)
	req := &memctrl.Request{Addr: addr, Loc: loc, IsWrite: isWrite, CoreID: coreID}
	// The controller invokes OnComplete through the scheduler lambda in
	// System.Run, which already converts bus cycles to CPU cycles, so the
	// callback fires in CPU time and can be passed through directly.
	req.OnComplete = onDone
	m.pending = append(m.pending, &pendingReq{channel: ch, req: req})
}

// drain moves buffered requests into controller queues as space allows.
// Order is preserved per channel.
func (m *memAdapter) drain(busNow int64) {
	for i := 0; i < len(m.pending); {
		p := m.pending[i]
		ctrl := m.sys.ctrls[p.channel]
		if ctrl.CanAccept(p.req.IsWrite) {
			ctrl.Enqueue(p.req, busNow)
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
		} else {
			i++
		}
	}
}

// Run executes the system until every core reaches its instruction target
// (or MaxCycles elapse) and returns the collected results.
func (s *System) Run() (Result, error) {
	cpb := s.cfg.CPUPerBus
	for ; s.clock < s.cfg.MaxCycles; s.clock++ {
		s.events.fireDue(s.clock)
		if s.clock%cpb == 0 {
			busNow := s.clock / cpb
			s.adapter.drain(busNow)
			for _, ctrl := range s.ctrls {
				ctrl.Tick(busNow, func(at int64, fn func(int64)) {
					s.events.schedule(at*cpb, fn)
				})
			}
		}
		allDone := true
		for _, c := range s.cores {
			c.Tick(s.clock)
			if !c.Done() {
				allDone = false
			}
		}
		if allDone {
			s.clock++
			break
		}
	}
	for _, c := range s.cores {
		if !c.Done() {
			return Result{}, fmt.Errorf("sim: core %d retired only %d/%d instructions in %d cycles",
				c.ID, c.Retired, c.TargetInsts, s.clock)
		}
	}
	return s.collect(), nil
}
