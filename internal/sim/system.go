package sim

import (
	"errors"
	"fmt"

	"repro/internal/arena"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/ev"
	"repro/internal/memctrl"
	"repro/internal/workload"
)

// System is one fully assembled simulated machine.
type System struct {
	cfg    Config
	clock  int64
	events eventQueue

	cores    []*cpu.Core
	hier     *cache.Hierarchy
	mapper   *memctrl.AddrMapper //fglint:preserved address-decode tables derived from config; Decode only reads them
	ctrls    []*memctrl.Controller
	channels []*dram.Channel
	hooks    []memctrl.CacheHook
	adapter  *memAdapter

	// busSched converts a controller's bus-cycle completion tokens to
	// CPU-cycle events. Bound once at construction so the per-tick calls
	// do not evaluate a fresh closure on the hot path.
	busSched func(at int64, tok ev.Token)
	// ctrlWake[i] is the next-work bus cycle controller i reported at its
	// most recent tick; zero forces a tick at the first bus boundary.
	// Owned by runSkippingUntil, kept on the System so resumed engine
	// runs (benchmarks drive bounded spans) neither reallocate it nor
	// re-tick idle controllers. coreBatch[i] carries core i's batchable
	// span from the wake scan to the jump application within one
	// iteration, so the closed form is sized exactly once per cycle.
	ctrlWake  []int64
	coreBatch []int64
	// wake is the tournament tree over ctrlWake (its leaves alias that
	// slice): min/min-except/due-enumeration for the run loop without a
	// per-iteration scan. Derived state — Reset and Restore rebuild it
	// from the leaf values.
	wake busWake
	// dueIDs is per-call scratch for the due-controller enumeration.
	//fglint:preserved scratch; truncated and refilled by every advanceBus call before use
	dueIDs []int32

	// latencyLanes maps a fixed cache-level latency to its FIFO lane
	// scheduler (see LevelScheduler); lanes are bound once at construction
	// and survive Reset.
	//fglint:preserved lane bindings are config-determined; eventQueue.reset clears the lanes' state
	latencyLanes map[int64]*laneScheduler

	// arena backs every pointer-free array the System is built from —
	// cache line arrays, DRAM bank state, controller per-bank registers,
	// core window rings — so construction is a handful of chunk
	// allocations instead of one per array. Filled only during
	// construction; Reset reuses the carved slices in place.
	arena *arena.Arena
}

// TraceOpener resolves one core's workload source into the trace reader
// that feeds it, given the exact parameters System.initCores derives from
// the configuration (per-core seed, address window, physical layout).
// A nil opener means the default resolution, workload.Source.Open. The
// gang engine substitutes an opener that routes every member of a gang
// through one shared workload.Tee — after verifying the parameters match
// the leader's, which is what makes the shared stream bit-identical to
// each member's solo stream.
//
// The opener is a construction/Reset-time parameter, never stored on the
// System: a pooled System Reset without an opener always reverts to solo
// source resolution.
type TraceOpener func(core int, src workload.Source, seed, base, span uint64, layout workload.Layout) (cpu.TraceReader, error)

// New builds a system for the configuration.
func New(cfg Config) (*System, error) { return NewWithOpener(cfg, nil) }

// NewWithOpener builds a system for the configuration, resolving each
// core's workload source through open (nil selects the default,
// workload.Source.Open). See TraceOpener.
func NewWithOpener(cfg Config, open TraceOpener) (*System, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg}

	geo := cfg.geometry()
	slow := dram.DDR4()
	fast := slow.Fast(dram.PaperFastScale())
	allFast := cfg.Preset == LLDRAM

	// The cache line arrays dominate the footprint; the bank/controller/
	// core arrays add a few kilobytes the slack covers, and the arena
	// grows if a shape outruns the hint.
	hcfg := cfg.hierarchyConfig()
	s.arena = arena.New(hcfg.LineArrayBytes() + 32<<10)
	hcfg.Arena = s.arena

	mapper, err := memctrl.NewAddrMapper(geo, cfg.Channels)
	if err != nil {
		return nil, err
	}
	s.mapper = mapper

	for ch := 0; ch < cfg.Channels; ch++ {
		channel, err := dram.NewChannelIn(s.arena, geo, slow, fast, allFast)
		if err != nil {
			return nil, err
		}
		hook, err := cfg.buildHook(geo)
		if err != nil {
			return nil, err
		}
		mcCfg := memctrl.DefaultConfig()
		mcCfg.ImmediateReloc = cfg.ImmediateReloc
		s.channels = append(s.channels, channel)
		s.hooks = append(s.hooks, hook)
		s.ctrls = append(s.ctrls, memctrl.NewControllerIn(s.arena, ch, mcCfg, channel, hook))
	}

	s.adapter = &memAdapter{sys: s}
	// Seed the request pool to its structural bound — every controller
	// queue slot full plus a drain buffer's worth in flight — so the pool
	// never grows mid-run: high-water-mark creep under bursty relocation
	// traffic would otherwise allocate long past warm-up.
	mcDefaults := memctrl.DefaultConfig()
	poolCap := cfg.Channels*(mcDefaults.ReadQueueDepth+mcDefaults.WriteQueueDepth) + 64
	backing := make([]memctrl.Request, poolCap) // one block: one GC object, not poolCap
	s.adapter.free = make([]*memctrl.Request, poolCap)
	for i := range s.adapter.free {
		s.adapter.free[i] = &backing[i]
	}
	for _, ctrl := range s.ctrls {
		ctrl.Release = s.adapter.release
	}
	s.bindBusSched()
	hier, err := cache.NewHierarchy(hcfg, s.adapter, s)
	if err != nil {
		return nil, err
	}
	s.hier = hier

	if err := s.initCores(true, open); err != nil {
		return nil, err
	}
	return s, nil
}

// bindBusSched (re)binds the bus-to-CPU clock conversion closure for the
// current configuration's CPUPerBus ratio. Bound per New/Reset rather
// than per tick, so the hot path never evaluates a fresh closure.
func (s *System) bindBusSched() {
	cpb := s.cfg.CPUPerBus
	s.busSched = func(at int64, tok ev.Token) {
		s.events.schedule(at*cpb, tok)
	}
}

// Dispatch implements ev.Dispatcher: execute one event token. This is
// the single point where a deferred action — a due event, a fill's
// synchronous waiter — turns back into the method call it stands for.
func (s *System) Dispatch(t ev.Token, now int64) {
	switch t.Kind {
	case ev.CoreSlot:
		s.cores[t.ID].CompleteSlot(int(t.Arg))
	case ev.MSHRStart:
		s.hier.Node(t.ID).StartFetch(t.Arg)
	case ev.MSHRFill:
		s.hier.Node(t.ID).Fill(t.Arg)
	}
}

// initCores builds (fresh) or retargets (reuse) the per-core trace
// readers and cores for s.cfg. Cores get equal disjoint address windows
// (or one shared window for multithreaded workloads). Each workload
// source resolves into a cpu.TraceReader through workload.Source.Open:
// synthetic specs scatter their footprint across the whole window
// (mimicking OS page placement across banks and subarrays), recorded
// traces replay their stream rebased into the window. Trace files are
// read here — compute time — not during planning or fingerprinting of
// the synthetic parts; Reset reopens sources, which rewinds replayers
// bit-identically (the loaded trace bytes are cached and immutable).
func (s *System) initCores(fresh bool, open TraceOpener) error {
	cfg := s.cfg
	geo := cfg.geometry()
	span := uint64(s.mapper.TotalBytes())
	if !cfg.SharedFootprint {
		span = floorPow2(uint64(s.mapper.TotalBytes()) / uint64(len(cfg.Mix.Apps)))
	}
	for i, src := range cfg.Mix.Apps {
		base := uint64(0)
		if !cfg.SharedFootprint {
			base = uint64(i) * span
		}
		footprint, err := src.FootprintBytes()
		if err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		if uint64(footprint) > span {
			return fmt.Errorf("sim: %s footprint %d exceeds its %d-byte window",
				src.Name(), footprint, span)
		}
		// The generator needs the distance between two rows of the same
		// bank under this system's interleaving, so hot conflict groups
		// land in one bank across different rows (Section 8.1). Threads of
		// a multithreaded workload share one layout seed so their logical
		// segments resolve to the same physical addresses. Recorded traces
		// ignore both knobs: their access pattern is fixed at record time.
		layout := workload.Layout{
			RowStrideBytes: uint64(geo.RowBytes) * uint64(cfg.Channels) *
				uint64(geo.BanksPerRank()) * uint64(geo.Ranks),
		}
		if cfg.SharedFootprint {
			layout.LayoutSeed = cfg.Seed + 0x51ed270b
		}
		seed := cfg.Seed + uint64(i)*1315423911
		var gen cpu.TraceReader
		if open != nil {
			gen, err = open(i, src, seed, base, span, layout)
		} else {
			gen, err = src.Open(seed, base, span, layout)
		}
		if err != nil {
			return err
		}
		if fresh {
			c, err := cpu.NewIn(s.arena, i, cfg.coreConfig(), gen, s.hier.L1s[i], cfg.TargetInsts)
			if err != nil {
				return err
			}
			s.cores = append(s.cores, c)
		} else if err := s.cores[i].Reset(cfg.coreConfig(), gen, cfg.TargetInsts); err != nil {
			return err
		}
	}
	return nil
}

// ErrShapeMismatch reports that Reset was asked to retarget a System to a
// configuration whose structural shape (channel count or core count, see
// Config.ShapeKey) differs from the one the System was built with. The
// caller should construct a fresh System instead.
var ErrShapeMismatch = errors.New("sim: Reset config shape differs from the System's")

// Reset retargets the System to a new configuration of the same shape,
// reusing every expensive allocation a fresh construction would redo:
// cache line arrays, the event queue and its FIFO lanes, pooled
// memctrl.Requests and MSHRs, DRAM bank objects, controller queues and
// per-bank arrays, and the core window rings. After a successful Reset
// the System is observationally identical to sim.New(cfg) — enforced
// bit-for-bit by TestEngineEquivalence's reuse cases. On error the System
// must be discarded (state may be partially reinitialized).
//
// The in-DRAM cache hooks are rebuilt rather than reset: their tag-store
// state is configuration-dependent and tiny next to the arrays above.
func (s *System) Reset(cfg Config) error { return s.ResetWithOpener(cfg, nil) }

// ResetWithOpener is Reset with an explicit workload-source resolver
// (nil selects the default, workload.Source.Open). See TraceOpener; the
// gang engine uses it to retarget pooled Systems into gang members.
func (s *System) ResetWithOpener(cfg Config, open TraceOpener) error {
	if err := cfg.normalize(); err != nil {
		return err
	}
	if cfg.Channels != s.cfg.Channels || len(cfg.Mix.Apps) != len(s.cfg.Mix.Apps) {
		return fmt.Errorf("%w: have %s, want %s", ErrShapeMismatch, s.cfg.ShapeKey(), cfg.ShapeKey())
	}
	geo := cfg.geometry()
	allFast := cfg.Preset == LLDRAM

	mapper, err := memctrl.NewAddrMapper(geo, cfg.Channels)
	if err != nil {
		return err
	}
	s.mapper = mapper

	for ch, channel := range s.channels {
		if err := channel.Reset(geo, allFast); err != nil {
			return err
		}
		hook, err := cfg.buildHook(geo)
		if err != nil {
			return err
		}
		mcCfg := memctrl.DefaultConfig()
		mcCfg.ImmediateReloc = cfg.ImmediateReloc
		s.hooks[ch] = hook
		s.ctrls[ch].Reset(mcCfg, hook)
	}
	s.adapter.reset()
	s.hier.Reset()

	s.cfg = cfg
	s.clock = 0
	s.bindBusSched() // the closure captures CPUPerBus, which may change
	s.events.reset()
	// The wake/batch scratch slices keep their length (same controller and
	// core counts); a zero wake forces a tick at the first bus boundary,
	// exactly like first construction.
	for i := range s.ctrlWake {
		s.ctrlWake[i] = 0
	}
	s.wake.rebuild() // re-derive the tournament tree from the zeroed leaves
	for i := range s.coreBatch {
		s.coreBatch[i] = 0
	}
	return s.initCores(false, open)
}

// LevelScheduler implements cache.LevelSchedulerFactory: cache levels get
// FIFO lanes of the event queue, one lane per distinct lookup latency. A
// fixed delay makes a lane's due times monotonic no matter how many
// caches feed it, so the lane count stays at the number of distinct
// latencies (three for the Table 1 hierarchy) instead of growing with the
// core count — the per-event cost of servicing lanes scales with lane
// count. Each lane replaces a heap push/pop pair per cache event, the
// hottest event source in the simulator.
func (s *System) LevelScheduler(latency int64) cache.Scheduler {
	if sched, ok := s.latencyLanes[latency]; ok {
		return sched
	}
	if s.latencyLanes == nil {
		s.latencyLanes = make(map[int64]*laneScheduler)
	}
	sched := &laneScheduler{sys: s, lane: s.events.newLane()}
	s.latencyLanes[latency] = sched
	return sched
}

// laneScheduler defers callbacks onto one FIFO lane of the system's event
// queue.
type laneScheduler struct {
	sys  *System
	lane int
}

func (l *laneScheduler) After(delay int64, tok ev.Token) {
	l.sys.events.scheduleLane(l.lane, l.sys.clock+delay, tok)
}

// Dispatch forwards token execution to the System.
func (l *laneScheduler) Dispatch(t ev.Token, now int64) { l.sys.Dispatch(t, now) }

// floorPow2 rounds v down to a power of two.
func floorPow2(v uint64) uint64 {
	p := uint64(1)
	for p<<1 <= v {
		p <<= 1
	}
	return p
}

// After implements cache.Scheduler on the system's event queue.
func (s *System) After(delay int64, tok ev.Token) {
	s.events.schedule(s.clock+delay, tok)
}

// Clock returns the current CPU cycle.
func (s *System) Clock() int64 { return s.clock }

// Config returns the normalized run configuration (defaults filled in).
func (s *System) Config() Config { return s.cfg }

// Cores exposes the simulated cores.
func (s *System) Cores() []*cpu.Core { return s.cores }

// Hierarchy exposes the SRAM hierarchy.
func (s *System) Hierarchy() *cache.Hierarchy { return s.hier }

// Controllers exposes the per-channel memory controllers.
func (s *System) Controllers() []*memctrl.Controller { return s.ctrls }

// Hooks exposes the per-channel in-DRAM cache hooks (nil entries for
// configurations without one).
func (s *System) Hooks() []memctrl.CacheHook { return s.hooks }

// memAdapter bridges the SRAM hierarchy to the memory controllers: it
// decodes addresses, buffers requests that do not fit in the controller
// queues, and converts completion times between clock domains.
type memAdapter struct {
	sys     *System //fglint:preserved back-pointer; the System resets itself (and this adapter)
	pending []pendingReq
	blocked []bool // per-channel head-of-line marker, reused across drains
	// enqueued[ch] reports whether the latest drain handed channel ch a
	// new request; the cycle-skipping engine must tick that controller
	// even if its next-work probe says it would otherwise stay idle.
	enqueued []bool
	// free recycles Request objects the controllers have retired
	// (Controller.Release points here), so the steady-state access path
	// allocates nothing: the pool grows to the peak number of in-flight
	// requests and is reused from then on.
	//fglint:preserved recycled Requests are fully overwritten by alloc before reuse
	free []*memctrl.Request
}

type pendingReq struct {
	channel int
	req     *memctrl.Request
}

// reset drops buffered requests and clears the per-channel markers while
// keeping the request pool: the steady-state peak of one run seeds the
// next run's pool. Requests still sitting in controller queues are
// abandoned (the controllers drop them on their own Reset); the pool
// simply regrows to its working set if needed.
func (m *memAdapter) reset() {
	for i := range m.pending {
		m.pending[i] = pendingReq{}
	}
	m.pending = m.pending[:0]
	for i := range m.blocked {
		m.blocked[i] = false
		m.enqueued[i] = false
	}
}

// Request implements cache.Backend.
func (m *memAdapter) Request(addr uint64, isWrite bool, coreID int, onDone ev.Token) {
	ch, loc := m.sys.mapper.Decode(addr)
	req := m.alloc()
	req.Addr, req.Loc, req.IsWrite, req.CoreID = addr, loc, isWrite, coreID
	// The controller hands OnComplete to busSched, which converts bus
	// cycles to CPU cycles, so the token fires in CPU time and can be
	// passed through directly.
	req.OnComplete = onDone
	m.pending = append(m.pending, pendingReq{channel: ch, req: req})
}

// alloc pops a recycled request or allocates a fresh one.
func (m *memAdapter) alloc() *memctrl.Request {
	if n := len(m.free); n > 0 {
		r := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		return r
	}
	return new(memctrl.Request)
}

// release implements memctrl.Controller.Release: the request has been
// fully served (its completion callback scheduled), so it can be reset
// and reused by the next access.
func (m *memAdapter) release(r *memctrl.Request) {
	*r = memctrl.Request{}
	m.free = append(m.free, r)
}

// drain moves buffered requests into controller queues in arrival order.
// Order is preserved per channel: once one request for a channel is
// blocked (its controller queue is full), every later request for that
// channel stalls behind it, even if it targets the other queue — a
// blocked write must not let a younger read to the same channel jump
// ahead. Kept requests are compacted in place (no per-element splicing).
func (m *memAdapter) drain(busNow int64) {
	if m.blocked == nil {
		m.blocked = make([]bool, len(m.sys.ctrls))
		m.enqueued = make([]bool, len(m.sys.ctrls))
	} else {
		for i := range m.blocked {
			m.blocked[i] = false
			m.enqueued[i] = false
		}
	}
	if len(m.pending) == 0 {
		return
	}
	kept := m.pending[:0]
	for _, p := range m.pending {
		if !m.blocked[p.channel] && m.sys.ctrls[p.channel].CanAccept(p.req.IsWrite) {
			m.sys.ctrls[p.channel].Enqueue(p.req, busNow)
			m.enqueued[p.channel] = true
			continue
		}
		m.blocked[p.channel] = true
		kept = append(kept, p)
	}
	for i := len(kept); i < len(m.pending); i++ {
		m.pending[i] = pendingReq{} // release dropped requests for GC
	}
	m.pending = kept
}

// Run executes the system until every core reaches its instruction target
// (or MaxCycles elapse) and returns the collected results. It uses the
// cycle-skipping engine unless Config.DenseLoop selects the reference
// cycle-by-cycle loop; the two are bit-identical (TestEngineEquivalence).
func (s *System) Run() (Result, error) {
	if s.cfg.DenseLoop {
		s.runDense(0)
	} else {
		s.runSkipping()
	}
	return s.finishRun()
}

// finishRun validates that a completed execution reached every core's
// instruction target and collects the run's Result. Shared verbatim by
// Run and the gang engine so a gang member fails with the exact error a
// solo run would.
func (s *System) finishRun() (Result, error) {
	for _, c := range s.cores {
		if !c.Done() {
			return Result{}, fmt.Errorf("sim: core %d retired only %d/%d instructions in %d cycles",
				c.ID, c.Retired, c.TargetInsts, s.clock)
		}
	}
	return s.collect(), nil
}

// RunSlice advances the run by at most `cycles` CPU cycles and reports
// whether the run is complete (every core reached its target, or the
// MaxCycles safety net expired). It is the gang engine's scheduling
// quantum: interleaving RunSlice calls across gang members is
// bit-identical to running each member's Run() to completion, because
// pausing either engine at a cycle boundary and resuming it replays
// exactly the dense loop's per-cycle effects — the same contract
// RunUntilRetired's checkpoint stop-point relies on, pinned by
// TestEngineEquivalence (gang and checkpoint cases).
func (s *System) RunSlice(cycles int64) bool {
	limit := s.clock + cycles
	if limit > s.cfg.MaxCycles {
		limit = s.cfg.MaxCycles
	}
	if s.cfg.DenseLoop {
		s.runDenseUntil(limit, 0)
	} else {
		s.runSkippingUntil(limit, 0)
	}
	if s.clock >= s.cfg.MaxCycles {
		return true
	}
	for _, c := range s.cores {
		if !c.Done() {
			return false
		}
	}
	return true
}

// totalRetired sums the retired instruction count across all cores.
func (s *System) totalRetired() int64 {
	var total int64
	for _, c := range s.cores {
		total += c.Retired
	}
	return total
}

// RunUntilRetired executes the system until the total retired
// instruction count across all cores reaches target (or every core
// finishes, or MaxCycles elapse). It is the checkpoint stop-point:
// the run pauses on a fully executed cycle, a Snapshot taken here
// captures the complete machine state, and calling Run afterwards —
// on this System or on a fresh one restored from the snapshot —
// finishes the run bit-identically to an uninterrupted Run. The
// cycle-skipping engine may overshoot target by the tail of a batched
// bubble run; callers needing an exact count should use the dense
// engine.
func (s *System) RunUntilRetired(target int64) {
	if s.cfg.DenseLoop {
		s.runDense(target)
	} else {
		s.runSkippingUntil(s.cfg.MaxCycles, target)
	}
}

// runDense is the reference engine: advance the clock one CPU cycle at a
// time, ticking the memory system every bus cycle and every core every
// CPU cycle. A positive stopRetired pauses the loop once the total
// retired instruction count reaches it: the current cycle completes in
// full, so a snapshot taken at the pause resumes bit-identically.
func (s *System) runDense(stopRetired int64) { s.runDenseUntil(s.cfg.MaxCycles, stopRetired) }

// runDenseUntil runs the dense engine until every core is done or the
// clock reaches maxCycles (exclusive). Factored out so RunSlice can
// drive the reference loop for a bounded cycle span; splitting the loop
// at any cycle boundary is trivially bit-identical.
func (s *System) runDenseUntil(maxCycles, stopRetired int64) {
	cpb := s.cfg.CPUPerBus
	for ; s.clock < maxCycles; s.clock++ {
		s.events.fireDue(s.clock, s)
		if s.clock%cpb == 0 {
			busNow := s.clock / cpb
			s.adapter.drain(busNow)
			for _, ctrl := range s.ctrls {
				ctrl.Tick(busNow, s.busSched)
			}
		}
		allDone := true
		for _, c := range s.cores {
			c.Tick(s.clock)
			if !c.Done() {
				allDone = false
			}
		}
		if allDone {
			s.clock++
			break
		}
		if stopRetired > 0 && s.totalRetired() >= stopRetired {
			s.clock++
			break
		}
	}
}

// runSkipping is the cycle-skipping engine. Each executed cycle performs
// exactly what the dense loop would (events, bus tick on bus-cycle
// boundaries, core ticks, in the same order); the difference is that the
// clock then jumps directly to the next cycle at which anything
// *unpredictable* can happen:
//
//   - the next scheduled event (cache latencies, fills, DRAM completions),
//   - the next cycle a core must execute a full Tick: immediately while
//     it can touch the cache, or after the bubble run it can execute in
//     closed form (cpu.Core.BatchableCycles),
//   - the next bus cycle a controller could change state (the next-work
//     probe returned by memctrl.Controller.Tick), and
//   - the next bus boundary while the adapter holds requests waiting for
//     controller queue space.
//
// Cycles in between are either provably no-ops in the dense loop —
// blocked cores only unblock through scheduler events, and DRAM timing
// windows only move when a command issues — or pure bubble issue/retire
// cycles whose dense effect cpu.Core.Advance replays arithmetically, so
// jumping over them is bit-identical.
func (s *System) runSkipping() { s.runSkippingUntil(s.cfg.MaxCycles, 0) }

// runSkippingUntil runs the skipping engine until every core is done or
// the clock reaches maxCycles (exclusive). Factored out so benchmarks
// can drive the engine for a bounded cycle span. A positive stopRetired
// pauses the loop once the total retired count reaches it; the executed
// cycle (or applied jump) completes in full first, so a checkpoint may
// land a few batched cycles past the threshold — the contract is that
// pausing and resuming the same engine is bit-identical, not that both
// engines pause on the same cycle.
func (s *System) runSkippingUntil(maxCycles, stopRetired int64) {
	cpb := s.cfg.CPUPerBus
	if s.ctrlWake == nil {
		s.ctrlWake = make([]int64, len(s.ctrls))
		s.coreBatch = make([]int64, len(s.cores))
	}
	if s.wake.wake == nil {
		s.wake.init(s.ctrlWake)
	}
	for s.clock < maxCycles {
		s.events.fireDue(s.clock, s)
		if s.clock%cpb == 0 {
			s.busTick(s.clock / cpb)
		}
		allDone := true
		for _, c := range s.cores {
			c.Tick(s.clock)
			if !c.Done() {
				allDone = false
			}
		}
		if allDone {
			s.clock++
			break
		}
		if stopRetired > 0 && s.totalRetired() >= stopRetired {
			s.clock++
			break
		}

		next := maxCycles
		for i, c := range s.cores {
			w := c.NextWake(s.clock)
			batch := int64(0)
			if w == s.clock+1 {
				// The core is runnable: it must execute its next cycle
				// normally unless the cycle after the current one starts a
				// closed-form bubble run, in which case its next full Tick
				// is only due after the batch.
				batch = c.BatchableCycles()
				w += batch
			}
			s.coreBatch[i] = batch
			if w < next {
				next = w
				if next <= s.clock+1 {
					break // can't wake earlier than the next cycle
				}
			}
		}
		if next > s.clock+1 {
			// Only consult the event queue and the memory system when
			// every core is blocked or batchable: due events have already
			// fired, so neither source can be earlier than clock+1.
			eventNext := int64(maxInt64)
			if at, ok := s.events.nextAt(); ok {
				eventNext = at
			}
			// Memory-only fast path: while the earliest thing anywhere in
			// the machine is controller work — strictly before the next
			// event and the next core wake — advance the memory system in
			// place instead of surfacing each bus cycle to this loop. The
			// dense loop's cycles in between are core no-ops (every core
			// is blocked or mid-bubble-batch; both are settled by the
			// jump accounting below, which spans these cycles either way)
			// and fire no events, so the only dense effects are the
			// controller ticks advanceBus replays in dense order.
			// Completions scheduled along the way can only pull eventNext
			// earlier, never invalidate work already done at earlier
			// cycles, because every scheduled cycle lies beyond the bus
			// cycles already ticked (advanceBus's span horizon enforces
			// that for multi-cycle controller spans).
			bus := s.nextBusWork(cpb)
			for bus < next && bus < eventNext {
				horizon := next
				if eventNext < horizon {
					horizon = eventNext
				}
				s.advanceBus(bus/cpb, horizon)
				if at, ok := s.events.nextAt(); ok && at < eventNext {
					eventNext = at
				}
				bus = s.nextBusWork(cpb)
			}
			if eventNext < next {
				next = eventNext
			}
			if bus < next {
				next = bus
			}
		}
		if next <= s.clock {
			next = s.clock + 1
		}
		// A jump of more than one cycle only happens when every core is
		// blocked (credit the stall counters for the skipped ticks) or
		// executing a bubble run the closed form replays. A batching core
		// can cross its instruction target mid-jump — the batch cap puts
		// that crossing on the jump's last cycle — so the loop must stop
		// exactly where the dense loop would have.
		// skipped > 0 implies the wake scan above ran to completion (an
		// early break pins next to clock+1), so coreBatch is valid for
		// every core: positive for batching cores, zero for blocked ones.
		if skipped := next - s.clock - 1; skipped > 0 {
			allDone := true
			for i, c := range s.cores {
				if s.coreBatch[i] > 0 {
					c.AdvanceBatch(s.clock, skipped)
				} else {
					c.AccountSkipped(skipped)
				}
				if !c.Done() {
					allDone = false
				}
			}
			if allDone {
				s.clock = next // dense clock after its last executed cycle
				break
			}
			if stopRetired > 0 && s.totalRetired() >= stopRetired {
				s.clock = next
				break
			}
		}
		s.clock = next
	}
	// Settle write-drain credit for controller ticks skipped at the very
	// end of the run: the dense loop ticks every bus boundary up to the
	// last executed cycle (s.clock-1 on both exit paths).
	lastBus := (s.clock - 1) / cpb
	for _, ctrl := range s.ctrls {
		ctrl.AccountSkippedTail(lastBus)
	}
}

const maxInt64 = int64(1<<63 - 1)

// busTick executes one bus boundary exactly as the dense loop would:
// drain buffered requests into the controller queues, then tick every
// controller that is either due (its next-work probe has arrived) or
// freshly fed by the drain. Ticking the others would be a no-op in the
// dense loop too, so skipping them is bit-identical.
func (s *System) busTick(busNow int64) {
	s.adapter.drain(busNow)
	for i, ctrl := range s.ctrls {
		if s.ctrlWake[i] > busNow && !s.adapter.enqueued[i] {
			continue
		}
		s.wake.set(i, ctrl.Tick(busNow, s.busSched))
	}
}

// advanceBus performs the memory system's work at bus cycle busNow while
// the rest of the machine is provably idle until the CPU cycle horizon
// (exclusive): no event fires and no core executes before it. Three
// dense-order-preserving cases:
//
//   - buffered requests are waiting for queue space: the boundary is a
//     full drain-plus-tick, identical to an executed dense boundary;
//   - exactly one controller is due and no other becomes due before the
//     horizon: that controller runs a multi-cycle span (TickSpan) — its
//     micro-engine — since no cross-layer interaction can interleave;
//   - otherwise each due controller ticks once, in ID order, exactly as
//     the dense loop interleaves same-cycle controller work.
func (s *System) advanceBus(busNow, horizon int64) {
	if len(s.adapter.pending) > 0 {
		s.busTick(busNow)
		return
	}
	cpb := s.cfg.CPUPerBus
	s.dueIDs = s.wake.appendDue(busNow, s.dueIDs[:0])
	if len(s.dueIDs) == 1 {
		i := int(s.dueIDs[0])
		// Controller ticks at bus cycle b are hidden from the rest of the
		// machine while b*cpb < horizon: b < ceil(horizon/cpb). Another
		// controller's wake bounds the span too — at that cycle the dense
		// loop interleaves both controllers in ID order, which the
		// single-controller span cannot reproduce on its own.
		hor := (horizon + cpb - 1) / cpb
		if other := s.wake.minExcept(i); other < hor {
			hor = other
		}
		if hor > busNow+1 {
			s.wake.set(i, s.ctrls[i].TickSpan(busNow, hor, s.busSched))
			return
		}
	}
	for _, id := range s.dueIDs {
		i := int(id)
		s.wake.set(i, s.ctrls[i].Tick(busNow, s.busSched))
	}
}

// nextBusWork returns the next CPU cycle at which the memory system needs
// a bus tick: the earliest controller next-work probe (tracked by the
// wake tree), or the very next bus boundary while the adapter still
// buffers requests that must retry entering a full controller queue.
func (s *System) nextBusWork(cpb int64) int64 {
	next := s.wake.min()
	if next != maxInt64 {
		next *= cpb
	}
	if len(s.adapter.pending) > 0 {
		if b := (s.clock/cpb + 1) * cpb; b < next {
			next = b
		}
	}
	return next
}
