package sim

import (
	"io"

	"repro/internal/core"
	"repro/internal/ev"
	"repro/internal/fgss"
	"repro/internal/memctrl"
)

// Section tags of the FGSS stream, one per simulation layer, in the
// fixed order Snapshot writes and Restore demands them.
const (
	snapSecSystem   = 1 // clock, controller wake registers
	snapSecEvents   = 2 // event queue: heap and FIFO lanes
	snapSecCores    = 3 // per-core execution state
	snapSecTraces   = 4 // per-core workload source positions
	snapSecCaches   = 5 // SRAM hierarchy, node-ID order
	snapSecChannels = 6 // DRAM channels: banks, timing windows
	snapSecCtrls    = 7 // memory controllers: queues, relocations
	snapSecHooks    = 8 // in-DRAM cache hooks (FIGCache / LISA-VILLA)
	snapSecAdapter  = 9 // requests buffered between hierarchy and controllers
)

// Hook kind markers inside snapSecHooks.
const (
	hookNone     = 0
	hookFIGCache = 1
	hookLISA     = 2
)

// snapshotter is the optional checkpoint interface of a workload trace
// reader. Both workload.Generator and workload.Replayer implement it;
// a reader that does not cannot travel in a snapshot and is marked
// absent in the stream.
type snapshotter interface {
	Snapshot(*fgss.Writer)
	Restore(*fgss.Reader)
}

func snapEvent(w *fgss.Writer, e event) {
	w.I64(e.at)
	w.I64(e.seq)
	w.U64(uint64(e.tok.Kind))
	w.I64(int64(e.tok.ID))
	w.U64(e.tok.Arg)
}

func restoreEvent(r *fgss.Reader) event {
	var e event
	e.at = r.I64()
	e.seq = r.I64()
	e.tok.Kind = ev.Kind(r.U64())
	e.tok.ID = int32(r.I64())
	e.tok.Arg = r.U64()
	return e
}

// snapshot appends the queue's pending events: the heap in array order
// (a valid heap round-trips as-is) and each lane's undelivered suffix.
// The global sequence counter travels too, so post-restore scheduling
// continues the uninterrupted run's tie-break order exactly.
func (q *eventQueue) snapshot(w *fgss.Writer) {
	w.I64(q.seq)
	w.Int(len(q.items))
	for _, e := range q.items {
		snapEvent(w, e)
	}
	w.Int(len(q.lanes))
	for i := range q.lanes {
		l := &q.lanes[i]
		w.Int(len(l.items) - l.head)
		for _, e := range l.items[l.head:] {
			snapEvent(w, e)
		}
	}
}

// restore reads back what snapshot wrote, dropping any currently
// pending events. Lane registrations are construction-time bindings and
// must already exist (a count mismatch stops decoding). nextDue is left
// at its ambiguous zero, which forces the next nextAt to rescan.
func (q *eventQueue) restore(r *fgss.Reader) {
	q.seq = r.I64()
	clear(q.items)
	q.items = q.items[:0]
	n := r.Int()
	for i := 0; i < n && r.Err() == nil; i++ {
		q.items = append(q.items, restoreEvent(r))
	}
	if r.Int() != len(q.lanes) {
		return
	}
	for i := range q.lanes {
		l := &q.lanes[i]
		clear(l.items)
		l.items = l.items[:0]
		l.head = 0
		n := r.Int()
		for j := 0; j < n && r.Err() == nil; j++ {
			l.items = append(l.items, restoreEvent(r))
		}
	}
	q.nextDue = 0
}

// Snapshot writes the complete mutable simulation state as one FGSS
// stream: every layer's state in a tagged section, under a header that
// pins the engine version and the configuration fingerprint. A restore
// into the same build and configuration resumes the run bit-identically
// (TestEngineEquivalence's checkpoint cases); anything else is refused
// at the header.
func (s *System) Snapshot(out io.Writer) error {
	w := fgss.NewWriter(out, uint32(EngineVersion), [32]byte(s.cfg.Fingerprint()))

	w.Begin(snapSecSystem)
	w.I64(s.clock)
	w.Int(len(s.ctrlWake))
	for _, v := range s.ctrlWake {
		w.I64(v)
	}
	w.End()

	w.Begin(snapSecEvents)
	s.events.snapshot(w)
	w.End()

	w.Begin(snapSecCores)
	w.Int(len(s.cores))
	for _, c := range s.cores {
		c.Snapshot(w)
	}
	w.End()

	w.Begin(snapSecTraces)
	w.Int(len(s.cores))
	for _, c := range s.cores {
		if sn, ok := c.TraceReader().(snapshotter); ok {
			w.Int(1)
			sn.Snapshot(w)
		} else {
			w.Int(0)
		}
	}
	w.End()

	w.Begin(snapSecCaches)
	s.hier.Snapshot(w)
	w.End()

	w.Begin(snapSecChannels)
	w.Int(len(s.channels))
	for _, ch := range s.channels {
		ch.Snapshot(w)
	}
	w.End()

	w.Begin(snapSecCtrls)
	w.Int(len(s.ctrls))
	for _, c := range s.ctrls {
		c.Snapshot(w)
	}
	w.End()

	w.Begin(snapSecHooks)
	w.Int(len(s.hooks))
	for _, h := range s.hooks {
		if fc := FIGCacheOf(h); fc != nil {
			w.Int(hookFIGCache)
			fc.Snapshot(w)
		} else if lv, ok := h.(*core.LISAVilla); ok {
			w.Int(hookLISA)
			lv.Snapshot(w)
		} else {
			w.Int(hookNone)
		}
	}
	w.End()

	w.Begin(snapSecAdapter)
	w.Int(len(s.adapter.pending))
	for _, p := range s.adapter.pending {
		w.Int(p.channel)
		memctrl.SnapshotRequest(w, p.req)
	}
	w.End()

	return w.Flush()
}

// Restore replaces the System's mutable state with a snapshot written
// by Snapshot. The receiver must be built (or Reset) for the same
// configuration: the FGSS header refuses a mismatched EngineVersion or
// config fingerprint, and with both pinned every structural dimension
// below — core count, window sizes, hierarchy shape, bank counts, hook
// kinds — matches by construction. Run (or RunUntilRetired) may be
// called immediately after; the continuation is bit-identical to the
// uninterrupted run.
func (s *System) Restore(in io.Reader) error {
	r, err := fgss.NewReader(in, uint32(EngineVersion), [32]byte(s.cfg.Fingerprint()))
	if err != nil {
		return err
	}

	r.Section(snapSecSystem)
	s.clock = r.I64()
	if nw := r.Int(); nw == 0 {
		for i := range s.ctrlWake {
			s.ctrlWake[i] = 0
		}
	} else if nw == len(s.ctrls) {
		if s.ctrlWake == nil {
			s.ctrlWake = make([]int64, len(s.ctrls))
			s.coreBatch = make([]int64, len(s.cores))
		}
		for i := range s.ctrlWake {
			s.ctrlWake[i] = r.I64()
		}
	}
	// The wake tournament tree is derived state: re-point it at the (possibly
	// freshly allocated) leaf slice and rebuild the internal nodes.
	if s.ctrlWake != nil {
		s.wake.init(s.ctrlWake)
	}
	r.EndSection()

	r.Section(snapSecEvents)
	s.events.restore(r)
	r.EndSection()

	r.Section(snapSecCores)
	if r.Int() == len(s.cores) {
		for _, c := range s.cores {
			c.Restore(r)
		}
	}
	r.EndSection()

	r.Section(snapSecTraces)
	if r.Int() == len(s.cores) {
		for _, c := range s.cores {
			present := r.Int()
			sn, ok := c.TraceReader().(snapshotter)
			if present == 1 && ok {
				sn.Restore(r)
			}
		}
	}
	r.EndSection()

	r.Section(snapSecCaches)
	s.hier.Restore(r)
	r.EndSection()

	r.Section(snapSecChannels)
	if r.Int() == len(s.channels) {
		for _, ch := range s.channels {
			ch.Restore(r)
		}
	}
	r.EndSection()

	r.Section(snapSecCtrls)
	if r.Int() == len(s.ctrls) {
		for _, c := range s.ctrls {
			c.Restore(r)
		}
	}
	r.EndSection()

	r.Section(snapSecHooks)
	if r.Int() == len(s.hooks) {
		for _, h := range s.hooks {
			kind := r.Int()
			switch {
			case kind == hookFIGCache && FIGCacheOf(h) != nil:
				FIGCacheOf(h).Restore(r)
			case kind == hookLISA:
				if lv, ok := h.(*core.LISAVilla); ok {
					lv.Restore(r)
				}
			}
		}
	}
	r.EndSection()

	r.Section(snapSecAdapter)
	for i := range s.adapter.pending {
		s.adapter.release(s.adapter.pending[i].req)
		s.adapter.pending[i] = pendingReq{}
	}
	s.adapter.pending = s.adapter.pending[:0]
	np := r.Int()
	for i := 0; i < np && r.Err() == nil; i++ {
		ch := r.Int()
		if ch < 0 || ch >= len(s.channels) {
			break
		}
		req := s.adapter.alloc()
		memctrl.RestoreRequest(r, req, s.channels[ch])
		s.adapter.pending = append(s.adapter.pending, pendingReq{channel: ch, req: req})
	}
	r.EndSection()

	if err := r.Err(); err != nil {
		return err
	}
	return r.Close()
}
