package sim

import (
	"repro/internal/dram"
)

// CoreResult holds per-core outcomes of a run.
type CoreResult struct {
	App        string
	IPC        float64
	Insts      int64
	FinishedAt int64
}

// Result aggregates everything the evaluation needs from one run.
type Result struct {
	Preset   Preset
	Workload string
	Cycles   int64 // CPU cycles until the last core hit its target

	Cores []CoreResult

	// DRAM-level statistics summed across channels.
	DRAM dram.Stats

	// In-DRAM cache statistics.
	CacheHits   int64
	CacheMisses int64
	Inserted    int64

	// SRAM hierarchy statistics.
	L1Accesses, L2Accesses, LLCAccesses int64
	LLCMisses                           int64

	// Memory controller statistics.
	MemReads, MemWrites int64
	AvgReadLatencyNS    float64

	// Total retired instructions (all cores).
	TotalInsts int64
}

// collect gathers statistics after a run.
func (s *System) collect() Result {
	r := Result{
		Preset:   s.cfg.Preset,
		Workload: s.cfg.Mix.Name,
		Cycles:   s.clock,
	}
	for i, c := range s.cores {
		r.Cores = append(r.Cores, CoreResult{
			App:        s.cfg.Mix.Apps[i].Name(),
			IPC:        c.IPC(s.clock),
			Insts:      c.Retired,
			FinishedAt: c.FinishedAt,
		})
		r.TotalInsts += c.Retired
	}
	var latSum float64
	var latN int64
	for _, ctrl := range s.ctrls {
		r.CacheHits += ctrl.CacheHits
		r.CacheMisses += ctrl.CacheMisses
		r.Inserted += ctrl.Inserted
		r.MemReads += ctrl.NumReads
		r.MemWrites += ctrl.NumWrites
		latSum += ctrl.AvgReadLatencyNS() * float64(ctrl.NumReads)
		latN += ctrl.NumReads
	}
	if latN > 0 {
		r.AvgReadLatencyNS = latSum / float64(latN)
	}
	for _, ch := range s.channels {
		st := ch.CollectStats()
		r.DRAM.ACT += st.ACT
		r.DRAM.ACTFast += st.ACTFast
		r.DRAM.PRE += st.PRE
		r.DRAM.RD += st.RD
		r.DRAM.WR += st.WR
		r.DRAM.REF += st.REF
		r.DRAM.RELOC += st.RELOC
		r.DRAM.RBMHops += st.RBMHops
		r.DRAM.RowHits += st.RowHits
		r.DRAM.RowMisses += st.RowMisses
		r.DRAM.RowConf += st.RowConf
		r.DRAM.RelocBusy += st.RelocBusy
	}
	for _, l1 := range s.hier.L1s {
		r.L1Accesses += l1.Accesses()
	}
	for _, l2 := range s.hier.L2s {
		r.L2Accesses += l2.Accesses()
	}
	r.LLCAccesses = s.hier.LLC.Accesses()
	r.LLCMisses = s.hier.LLC.Misses
	return r
}

// IPCSum returns the sum of per-core IPCs (system throughput).
func (r Result) IPCSum() float64 {
	sum := 0.0
	for _, c := range r.Cores {
		sum += c.IPC
	}
	return sum
}

// WeightedSpeedupOver computes the weighted speedup of this run relative
// to a baseline run of the same mix: sum_i IPC_i / IPC_base_i, divided by
// the core count so that "no change" is 1.0. The paper reports weighted
// speedup improvements over Base (Section 7); using the in-mix Base IPCs
// as the alone-IPC proxy keeps the metric self-contained (documented in
// EXPERIMENTS.md).
func (r Result) WeightedSpeedupOver(base Result) float64 {
	if len(r.Cores) != len(base.Cores) || len(r.Cores) == 0 {
		return 0
	}
	sum := 0.0
	for i := range r.Cores {
		if base.Cores[i].IPC > 0 {
			sum += r.Cores[i].IPC / base.Cores[i].IPC
		}
	}
	return sum / float64(len(r.Cores))
}

// RowBufferHitRate returns the fraction of DRAM column accesses that hit
// an open row (Figure 10's metric).
func (r Result) RowBufferHitRate() float64 { return r.DRAM.RowBufferHitRate() }

// InDRAMCacheHitRate returns the in-DRAM cache hit rate (Figure 9).
func (r Result) InDRAMCacheHitRate() float64 {
	total := r.CacheHits + r.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

// LLCMPKI returns LLC misses per kilo-instruction.
func (r Result) LLCMPKI() float64 {
	if r.TotalInsts == 0 {
		return 0
	}
	return float64(r.LLCMisses) / float64(r.TotalInsts) * 1000
}
