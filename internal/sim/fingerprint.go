package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// EngineVersion stamps the generation of the timing model. It is folded
// into every Config fingerprint, so results persisted by internal/expcache
// are invalidated wholesale whenever a change to the simulator can alter
// what a run produces (core model, cache hierarchy, controller scheduling,
// DRAM timing, workload generation, result collection). Bump it on any
// such change; leaving it stale lets a warm result cache serve numbers the
// current engine would no longer compute.
const EngineVersion = 3

// Fingerprint is a canonical, deterministic identity for one simulation
// run: equal fingerprints imply bit-identical sim.Results (same engine
// version, same configuration, same seed). It keys the harness's
// in-memory result cache and the content-addressed on-disk store.
type Fingerprint [sha256.Size]byte

// String returns the fingerprint as lowercase hex (the on-disk filename).
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Fingerprint returns the run's canonical identity: a stable hash over
// the normalized configuration (defaults filled in, so a zero Channels
// field hashes identically to its explicit default), every workload
// parameter of the mix, the FIG/LISA overrides, and EngineVersion.
//
// DenseLoop is deliberately excluded: the dense and cycle-skipping
// engines produce bit-identical results (TestEngineEquivalence), so a
// result computed by either engine may serve both.
func (c Config) Fingerprint() Fingerprint {
	// Normalization can fail only for configs sim.New would reject; those
	// never produce a Result, so hashing the partially-defaulted state is
	// harmless (the fingerprint is still deterministic).
	norm := c
	_ = norm.normalize()

	h := sha256.New()
	fmt.Fprintf(h, "engine=%d\n", EngineVersion)
	fmt.Fprintf(h, "preset=%d channels=%d insts=%d maxcycles=%d cpb=%d seed=%d shared=%t fastsub=%d immreloc=%t\n",
		int(norm.Preset), norm.Channels, norm.TargetInsts, norm.MaxCycles,
		norm.CPUPerBus, norm.Seed, norm.SharedFootprint, norm.FastSubarrays,
		norm.ImmediateReloc)
	fmt.Fprintf(h, "mix=%q intensive=%d\n", norm.Mix.Name, norm.Mix.IntensivePercent)
	for _, a := range norm.Mix.Apps {
		// Every workload-source parameter: two mixes that differ only in
		// a spec field (sensitivity studies mutate them) must not collide.
		// Synthetic sources serialize the exact pre-Source line layout, so
		// results cached before the Source refactor stay addressable;
		// trace sources serialize their *content* hash (sha256 of the
		// trace file, cached by workload.LoadTrace), so a run's identity
		// moves exactly when the replayed records can change — never with
		// a rename or copy of the file. Pinned by
		// TestFingerprintGoldenSynthetic and TestFingerprintTraceContent.
		a.WriteCanonical(h)
	}
	if f := norm.FIG; f != nil {
		fmt.Fprintf(h, "fig=%d,%d,%d,%d,%d,%d,%d,%d\n",
			f.SegmentBlocks, f.CacheRowsPerBank, int(f.Replacement), f.InsertThreshold,
			f.BenefitBits, f.ReservedSubarray, int(f.Substrate), f.Seed)
	} else {
		io.WriteString(h, "fig=default\n")
	}
	if l := norm.LISA; l != nil {
		fmt.Fprintf(h, "lisa=%d,%d,%d,%d,%d\n",
			l.CacheRowsPerBank, l.FastSubarrays, l.HotThreshold, l.EpochMisses, l.Seed)
	} else {
		io.WriteString(h, "lisa=default\n")
	}

	var fp Fingerprint
	h.Sum(fp[:0])
	return fp
}

// ShapeKey identifies the structural shape a System is built with — the
// dimensions that size its long-lived allocations (channel count and core
// count; the hierarchy, controller queues, and bank arrays follow from
// them). Reset can retarget a System to any configuration of the same
// shape; the harness's per-worker pools key reusable Systems by it.
func (c Config) ShapeKey() string {
	norm := c
	_ = norm.normalize()
	return fmt.Sprintf("%dch-%dcore", norm.Channels, len(norm.Mix.Apps))
}

// GangKey identifies the workload portion of a run's identity: two
// configurations with equal gang keys open every core's workload source
// with identical parameters, so their Systems consume the identical
// per-core instruction stream and can execute as one gang (sim.Gang)
// over a shared decoded stream. The key folds in everything
// System.initCores derives the open parameters from — the sources'
// canonical identities, the seed, the address-window geometry (total
// capacity, row stride, shared-vs-partitioned footprint) and the shape —
// and deliberately nothing about timing: presets, FIG/LISA overrides,
// clock ratios, instruction targets and engine selection are free to
// differ within a gang. The harness partitions its todo list by this key
// before falling back to solo workers.
func (c Config) GangKey() string {
	norm := c
	_ = norm.normalize()
	geo := norm.geometry()
	h := sha256.New()
	fmt.Fprintf(h, "gang channels=%d cores=%d seed=%d shared=%t total=%d rowstride=%d\n",
		norm.Channels, len(norm.Mix.Apps), norm.Seed, norm.SharedFootprint,
		int64(norm.Channels)*geo.ChannelBytes(),
		uint64(geo.RowBytes)*uint64(norm.Channels)*uint64(geo.BanksPerRank())*uint64(geo.Ranks))
	for _, a := range norm.Mix.Apps {
		a.WriteCanonical(h)
	}
	var fp Fingerprint
	h.Sum(fp[:0])
	return fp.String()
}

// Describe returns a short human-readable run identity for error messages
// and logs (not a cache key; Fingerprint is the identity).
func (c Config) Describe() string {
	return fmt.Sprintf("%v/%s@%d", c.Preset, c.Mix.Name, c.TargetInsts)
}
