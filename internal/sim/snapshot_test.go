package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// snapshotAt builds a system, runs it to k total retired instructions,
// and returns the system plus its snapshot bytes.
func snapshotAt(t *testing.T, cfg Config, k int64) (*System, []byte) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntilRetired(k)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return s, buf.Bytes()
}

// TestRestoreRefusesMismatchedConfig checks that a snapshot can only be
// restored into a System built for the exact configuration that wrote
// it: a different seed changes the fingerprint, and restore is refused
// at the header with a clear error.
func TestRestoreRefusesMismatchedConfig(t *testing.T) {
	cfg := DefaultConfig(FIGCacheFast, smallMix(t, "mcf"))
	cfg.TargetInsts = 10_000
	_, snap := snapshotAt(t, cfg, 3_000)

	other := cfg
	other.Seed = cfg.Seed + 1
	sys, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Restore(bytes.NewReader(snap))
	if err == nil {
		t.Fatal("restoring a snapshot into a different config succeeded, want fingerprint refusal")
	}
	if !strings.Contains(err.Error(), "restore refused") {
		t.Errorf("fingerprint mismatch error = %q, want it to mention refusal", err)
	}
}

// TestRestoreRefusesTamperedStream checks the container-level
// defenses: a flipped engine-version byte and a truncated stream are
// both rejected instead of decoding garbage.
func TestRestoreRefusesTamperedStream(t *testing.T) {
	cfg := DefaultConfig(Base, smallMix(t, "mcf"))
	cfg.TargetInsts = 10_000
	_, snap := snapshotAt(t, cfg, 3_000)

	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	tampered := bytes.Clone(snap)
	tampered[8]++ // EngineVersion low byte
	if err := sys.Restore(bytes.NewReader(tampered)); err == nil ||
		!strings.Contains(err.Error(), "engine version") {
		t.Errorf("tampered engine version: err = %v, want engine-version refusal", err)
	}

	if err := sys.Restore(bytes.NewReader(snap[:len(snap)/2])); err == nil {
		t.Error("restoring a truncated snapshot succeeded, want decode error")
	}
}

// TestRestoreRewindsDirtySystem restores a checkpoint into a System
// that has already run *past* it: every piece of mid-flight state —
// queued requests, outstanding MSHRs, pending events, open rows — is
// dirty and different, and restore must rewind all of it so the re-run
// finishes bit-identically to the uninterrupted run.
func TestRestoreRewindsDirtySystem(t *testing.T) {
	cfg := DefaultConfig(FIGCacheFast, warmMix(t))
	cfg.TargetInsts = 40_000

	want := runWith(t, cfg, false)
	sys, snap := snapshotAt(t, cfg, 10_000)
	sys.RunUntilRetired(25_000) // drive well past the checkpoint
	if err := sys.Restore(bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rewound run diverges from uninterrupted run:\n want: %+v\n  got: %+v", want, got)
	}
}
