package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// wakeRef is the brute-force reference for the tournament tree: every
// query answered by a full scan of the leaf values.
type wakeRef struct{ wake []int64 }

func (r *wakeRef) min() int64 {
	best := int64(math.MaxInt64)
	for _, v := range r.wake {
		if v < best {
			best = v
		}
	}
	return best
}

func (r *wakeRef) minExcept(i int) int64 {
	best := int64(math.MaxInt64)
	for j, v := range r.wake {
		if j != i && v < best {
			best = v
		}
	}
	return best
}

func (r *wakeRef) due(at int64) []int32 {
	var out []int32
	for i, v := range r.wake {
		if v <= at {
			out = append(out, int32(i))
		}
	}
	return out
}

func checkWake(t *testing.T, w *busWake, ref *wakeRef, at int64, ctx string) {
	t.Helper()
	if got, want := w.min(), ref.min(); got != want {
		t.Errorf("%s: min() = %d, want %d", ctx, got, want)
	}
	for i := range ref.wake {
		if got, want := w.minExcept(i), ref.minExcept(i); got != want {
			// A degenerate single-leaf tree has no siblings: minExcept
			// reports +inf, which is also what the reference computes.
			t.Errorf("%s: minExcept(%d) = %d, want %d", ctx, i, got, want)
		}
	}
	got := w.appendDue(at, nil)
	want := ref.due(at)
	if len(got) != len(want) {
		t.Fatalf("%s: appendDue(%d) = %v, want %v", ctx, at, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: appendDue(%d) = %v, want %v (order must be ascending ID)", ctx, at, got, want)
		}
	}
}

// TestBusWakeTree drives the tournament tree through every structural
// regime — single leaf (degenerate, no internal nodes), power-of-two,
// and padded non-power-of-two leaf counts — and checks min, minExcept,
// and appendDue against the brute-force scan after each point update.
// The update stream covers the edge cases the run loop produces: wakes
// in the past, wakes exactly at the probe cycle, all-idle (+inf)
// states, and ties that must resolve to the lower controller ID.
func TestBusWakeTree(t *testing.T) {
	const idle = int64(math.MaxInt64)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
		wake := make([]int64, n)
		var w busWake
		w.init(wake)
		ref := &wakeRef{wake: wake}
		checkWake(t, &w, ref, 0, "fresh")

		// Deterministic pseudo-random update stream (splitmix-style; no
		// global PRNG so runs are reproducible).
		x := uint64(n)*0x9e3779b97f4a7c15 + 1
		next := func() uint64 {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		for step := 0; step < 200; step++ {
			i := int(next() % uint64(n))
			var v int64
			switch next() % 5 {
			case 0:
				v = idle // controller goes idle
			case 1:
				v = 100 // tie with any other leaf set to 100
			case 2:
				v = int64(next() % 50) // wake in the past of at=100
			default:
				v = int64(next() % 400)
			}
			w.set(i, v)
			checkWake(t, &w, ref, 100, "after set")
		}

		// All idle: min is +inf and nothing is due.
		for i := 0; i < n; i++ {
			w.set(i, idle)
		}
		checkWake(t, &w, ref, 1<<60, "all idle")
		if w.min() != idle {
			t.Errorf("n=%d: all-idle min = %d, want MaxInt64", n, w.min())
		}
		if due := w.appendDue(1<<60, nil); len(due) != 0 {
			t.Errorf("n=%d: all-idle appendDue = %v, want empty", n, due)
		}

		// Global tie: every leaf equal. min must resolve to leaf 0 (the
		// lower controller ID) — verified through minExcept(0) seeing the
		// same value from another leaf — and appendDue must list every
		// controller in ascending ID order.
		for i := 0; i < n; i++ {
			w.set(i, 7)
		}
		checkWake(t, &w, ref, 7, "global tie")
		due := w.appendDue(7, nil)
		if len(due) != n {
			t.Fatalf("n=%d: tie appendDue returned %d ids, want %d", n, len(due), n)
		}
		for i, id := range due {
			if int(id) != i {
				t.Errorf("n=%d: tie appendDue[%d] = %d, want %d", n, i, id, i)
			}
		}

		// Wake exactly at the probe cycle is due; one past it is not.
		w.set(n-1, 7)
		if due := w.appendDue(6, nil); len(due) != 0 {
			t.Errorf("n=%d: appendDue(6) with wakes at 7 = %v, want empty", n, due)
		}

		// Reusing the due scratch must not retain stale entries.
		scratch := make([]int32, 4, 8)
		got := w.appendDue(7, scratch[:0])
		if len(got) != n {
			t.Errorf("n=%d: appendDue into reused scratch returned %d ids, want %d", n, len(got), n)
		}
	}
}

// TestBusWakeRebuild checks init-over-existing-state: bulk leaf
// rewrites followed by rebuild (the Reset/Restore path) must yield the
// same answers as incremental sets.
func TestBusWakeRebuild(t *testing.T) {
	wake := []int64{40, 10, 30, 20, 50}
	var w busWake
	w.init(wake)
	ref := &wakeRef{wake: wake}
	checkWake(t, &w, ref, 25, "initial build")

	// Bulk rewrite behind the tree's back, then rebuild — what Restore
	// does after decoding the leaf values.
	copy(wake, []int64{5, 5, math.MaxInt64, 1, 2})
	w.rebuild()
	checkWake(t, &w, ref, 5, "after rebuild")
	if w.min() != 1 {
		t.Errorf("min after rebuild = %d, want 1", w.min())
	}
}

// TestNextBusWork pins the System-level wake bookkeeping edge cases
// directly, independent of the equivalence suite: a controller
// reporting its next work in the past, all controllers idle, and a
// wake landing exactly on the current bus boundary.
func TestNextBusWork(t *testing.T) {
	cfg := DefaultConfig(Base, smallMix(t, "mcf"))
	cfg.Channels = 4
	cfg.TargetInsts = 1 << 40
	cfg.MaxCycles = 1 << 62
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cpb := cfg.CPUPerBus
	if cpb <= 0 {
		cpb = 1
	}
	if len(s.ctrls) != 4 {
		t.Fatalf("got %d controllers, want 4", len(s.ctrls))
	}
	// The wake slices are lazily built on the first engine step; this
	// test drives the bookkeeping directly, so build them here the same
	// way runSkippingUntil does.
	s.ctrlWake = make([]int64, len(s.ctrls))
	s.coreBatch = make([]int64, len(s.cores))
	s.wake.init(s.ctrlWake)

	// All idle: nextBusWork reports "never" without overflowing the
	// bus-to-CPU conversion.
	for i := range s.ctrls {
		s.wake.set(i, math.MaxInt64)
	}
	s.adapter.pending = s.adapter.pending[:0]
	if got := s.nextBusWork(cpb); got != maxInt64 {
		t.Errorf("all-idle nextBusWork = %d, want MaxInt64", got)
	}

	// One controller due in the past (bus cycle 3 while the clock is far
	// ahead): the probe must surface it, converted to CPU cycles, not
	// clamp it to the present.
	s.wake.set(2, 3)
	if got, want := s.nextBusWork(cpb), 3*cpb; got != want {
		t.Errorf("past-wake nextBusWork = %d, want %d", got, want)
	}
	if due := s.wake.appendDue(10, nil); len(due) != 1 || due[0] != 2 {
		t.Errorf("past wake appendDue = %v, want [2]", due)
	}

	// A wake exactly at the current bus boundary is due now.
	s.wake.set(2, 10)
	if due := s.wake.appendDue(10, nil); len(due) != 1 || due[0] != 2 {
		t.Errorf("exact-boundary appendDue = %v, want [2]", due)
	}

	// Buffered requests bound the probe by the very next bus boundary
	// even when every controller reports idle: the adapter must retry
	// entering the full queue.
	for i := range s.ctrls {
		s.wake.set(i, math.MaxInt64)
	}
	s.clock = 7 * cpb
	s.adapter.pending = append(s.adapter.pending[:0], pendingReq{})
	if got, want := s.nextBusWork(cpb), (s.clock/cpb+1)*cpb; got != want {
		t.Errorf("pending-bound nextBusWork = %d, want %d", got, want)
	}
	// A due controller earlier than the retry boundary wins.
	s.wake.set(1, s.clock/cpb)
	if got, want := s.nextBusWork(cpb), s.clock; got != want {
		t.Errorf("due-before-retry nextBusWork = %d, want %d", got, want)
	}
	s.adapter.pending = s.adapter.pending[:0]
}

// cacheResidentMix returns a workload whose footprint fits in the LLC:
// after warm-up the memory system sees essentially no demand traffic,
// so controller wakes are refresh-only and the wake tree spends long
// stretches fully idle. This is the regime wake coalescing must get
// right: a controller's next-work probe is driven by tREFI alone.
func cacheResidentMix(t *testing.T) workload.Mix {
	t.Helper()
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	spec.Bubbles = 2
	spec.HotSegments = 64 // ~4 kB of hot blocks: L1-resident
	spec.HotFraction = 1.0
	return workload.Mix{Name: "cache-resident", Apps: workload.Sources(spec)}
}

// TestEngineEquivalenceCoalescedWakes extends the equivalence contract
// with configurations that stress the coalesced wake path specifically:
// long-idle channels whose only wakes are refresh, and multi-controller
// runs where per-channel traffic skew keeps the controllers' wake
// cycles far apart so single-controller TickSpan micro-engine runs and
// dense-order interleavings must hand off bit-identically.
func TestEngineEquivalenceCoalescedWakes(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		insts int64
	}{
		// Refresh-only wakes: the footprint is cache-resident, so after
		// warm-up every controller wake is a refresh edge.
		{name: "Base/refresh-only", cfg: DefaultConfig(Base, cacheResidentMix(t)), insts: 60_000},
		// Same regime with an active in-DRAM cache hook underneath.
		{name: "FIGCache-Fast/refresh-only", cfg: DefaultConfig(FIGCacheFast, cacheResidentMix(t)), insts: 60_000},
	}
	// Multi-controller skew: a single core striding over 4 channels
	// leaves most controllers idle most of the time, with wakes far
	// apart; the tree must keep them ordered across spans.
	skew := DefaultConfig(Base, smallMix(t, "mcf"))
	skew.Channels = 4
	cases = append(cases, struct {
		name  string
		cfg   Config
		insts int64
	}{name: "Base/4ch-skew", cfg: skew, insts: 30_000})
	skewFig := DefaultConfig(FIGCacheFast, warmMix(t))
	skewFig.Channels = 2
	cases = append(cases, struct {
		name  string
		cfg   Config
		insts int64
	}{name: "FIGCache-Fast/2ch-skew", cfg: skewFig, insts: 40_000})

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			c.cfg.TargetInsts = c.insts
			dense := runWith(t, c.cfg, true)
			skip := runWith(t, c.cfg, false)
			if !reflect.DeepEqual(dense, skip) {
				t.Errorf("engines diverge:\n dense: %+v\n  skip: %+v", dense, skip)
			}
		})
	}
}
