package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func fpConfig(t *testing.T) Config {
	t.Helper()
	return DefaultConfig(FIGCacheFast, smallMix(t, "mcf"))
}

func TestFingerprintDeterministic(t *testing.T) {
	cfg := fpConfig(t)
	if cfg.Fingerprint() != cfg.Fingerprint() {
		t.Error("two fingerprints of the same config differ")
	}
	copyCfg := cfg
	if cfg.Fingerprint() != copyCfg.Fingerprint() {
		t.Error("a copied config fingerprints differently")
	}
}

// TestFingerprintNormalizes checks that implicit defaults and their
// explicit spellings share an identity: a zero Channels field and the
// normalized value must not cache-split the same run.
func TestFingerprintNormalizes(t *testing.T) {
	implicit := fpConfig(t)
	explicit := implicit
	explicit.Channels = 1  // single-core default
	explicit.CPUPerBus = 4 // clock-ratio default
	explicit.FastSubarrays = 2
	explicit.MaxCycles = 400 * explicit.TargetInsts
	if implicit.Fingerprint() != explicit.Fingerprint() {
		t.Error("normalized defaults fingerprint differently from implicit zeros")
	}
}

// TestFingerprintEngineInvariant checks that DenseLoop — the one field
// guaranteed not to change results — is outside the fingerprint, so a
// result computed by either engine serves both.
func TestFingerprintEngineInvariant(t *testing.T) {
	skip := fpConfig(t)
	dense := skip
	dense.DenseLoop = true
	if skip.Fingerprint() != dense.Fingerprint() {
		t.Error("DenseLoop changed the fingerprint; engines are bit-identical and must share cache entries")
	}
}

// TestFingerprintSensitivity mutates every result-affecting knob and
// checks each one moves the fingerprint — a collision here would let the
// cache serve one experiment's result for another.
func TestFingerprintSensitivity(t *testing.T) {
	base := fpConfig(t)
	ref := base.Fingerprint()
	mutations := map[string]func(*Config){
		"preset":       func(c *Config) { c.Preset = Base },
		"insts":        func(c *Config) { c.TargetInsts *= 2 },
		"maxcycles":    func(c *Config) { c.MaxCycles = 100 * c.TargetInsts },
		"seed":         func(c *Config) { c.Seed++ },
		"shared":       func(c *Config) { c.SharedFootprint = true },
		"fastsub":      func(c *Config) { c.FastSubarrays = 4 },
		"immreloc":     func(c *Config) { c.ImmediateReloc = true },
		"mix-name":     func(c *Config) { c.Mix.Name = "other" },
		"app-bubbles":  func(c *Config) { c.Mix.Apps[0].Synth.Bubbles++ },
		"app-hotfrac":  func(c *Config) { c.Mix.Apps[0].Synth.HotFraction += 0.01 },
		"fig-override": func(c *Config) { f := core.DefaultFIGCacheConfig(); c.FIG = &f },
		"lisa-override": func(c *Config) {
			l := core.DefaultLISAVillaConfig()
			l.HotThreshold++
			c.LISA = &l
		},
	}
	seen := map[Fingerprint]string{ref: "base"}
	for name, mutate := range mutations {
		cfg := base
		cfg.Mix.Apps = append([]workload.Source(nil), base.Mix.Apps...)
		mutate(&cfg)
		fp := cfg.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[fp] = name
	}
}

// TestFingerprintFIGByValue checks that FIG overrides hash by value: two
// distinct pointers to equal configs must share a fingerprint (the sweep
// builders allocate a fresh override per call).
func TestFingerprintFIGByValue(t *testing.T) {
	a := fpConfig(t)
	figA := core.DefaultFIGCacheConfig()
	a.FIG = &figA
	b := fpConfig(t)
	figB := core.DefaultFIGCacheConfig()
	b.FIG = &figB
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal FIG overrides behind distinct pointers fingerprint differently")
	}
}

func TestShapeKey(t *testing.T) {
	single := fpConfig(t)
	if got := single.ShapeKey(); got != "1ch-1core" {
		t.Errorf("single-core shape = %q", got)
	}
	eight := DefaultConfig(Base, workload.EightCoreMixes()[0])
	if got := eight.ShapeKey(); got != "4ch-8core" {
		t.Errorf("eight-core shape = %q", got)
	}
	// Presets of the same mix share a shape: that is what makes the
	// harness pools reuse one System across a whole preset sweep.
	other := single
	other.Preset = LLDRAM
	if single.ShapeKey() != other.ShapeKey() {
		t.Error("presets of one mix have different shapes")
	}
}
