package sim

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestFingerprintGoldenSynthetic pins the exact fingerprints of three
// representative synthetic configurations to the values the
// pre-workload.Source implementation computed. These hashes are the
// on-disk identities of every previously cached synthetic result: if
// this test fails, the refactor you are making orphans existing result
// caches, which is only acceptable together with a sim.EngineVersion
// bump (and then these constants must be re-pinned).
func TestFingerprintGoldenSynthetic(t *testing.T) {
	mcf, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	single := DefaultConfig(FIGCacheFast, workload.Mix{Name: "mcf", Apps: workload.Sources(mcf), IntensivePercent: 100})
	single.TargetInsts = 20_000
	eight := DefaultConfig(Base, workload.EightCoreMixes()[0])
	eight.TargetInsts = 5_000
	mt := DefaultConfig(LISAVilla, workload.MultithreadedWorkloads()[0])
	mt.SharedFootprint = true

	golden := []struct {
		name string
		cfg  Config
		want string
	}{
		{"single", single, "ba153cdb4573acad00593b7047af729533c9bb0c6fec0ac3c098a1b324f121c2"},
		{"eight", eight, "fa2a9ec55498df7929c5f29315440ff409cd1f046e12a14893ab0fe78234e0b0"},
		{"multithreaded", mt, "cf3cbeac2cac91b6675da78172f847daa9278d2c1bd49f0a0592bb872819a082"},
	}
	for _, g := range golden {
		if got := g.cfg.Fingerprint().String(); got != g.want {
			t.Errorf("%s fingerprint drifted:\n got  %s\n want %s\n(cached synthetic results are orphaned; see comment above)", g.name, got, g.want)
		}
	}
}

// recordTrace writes n generator records for the named benchmark into a
// fresh binary trace file and returns its path.
func recordTrace(t *testing.T, dir, name, bench string, n int, seed uint64) string {
	t.Helper()
	spec, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	// A small footprint keeps replay windows (and runtimes) test-sized.
	spec.FootprintBytes = 64 << 20
	spec.HotSegments = 2048
	gen, err := workload.NewGenerator(spec, seed, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := workload.NewTraceWriter(f, gen.Span(), uint64(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tw.Write(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// traceConfig builds a single-core trace-backed run configuration.
func traceConfig(t *testing.T, p Preset, path string) Config {
	t.Helper()
	mix := workload.Mix{Name: "trace-run", Apps: []workload.Source{workload.TraceSource(path)}}
	cfg := DefaultConfig(p, mix)
	cfg.TargetInsts = 20_000
	return cfg
}

// TestFingerprintTraceContent pins the trace identity rule: the
// fingerprint is a function of the trace file's *content* — unchanged by
// a copy to another path, changed by any change to the records.
func TestFingerprintTraceContent(t *testing.T) {
	dir := t.TempDir()
	a := recordTrace(t, dir, "a.trc", "mcf", 400, 1)
	fpA := traceConfig(t, FIGCacheFast, a).Fingerprint()
	if fpA != traceConfig(t, FIGCacheFast, a).Fingerprint() {
		t.Error("trace fingerprint not deterministic")
	}

	// Same content and file name in another directory (a trace shipped to
	// a second machine): same identity — the cache keeps serving it.
	sub := filepath.Join(dir, "machine-b")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(sub, "a.trc")
	if err := os.WriteFile(b, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if traceConfig(t, FIGCacheFast, b).Fingerprint() != fpA {
		t.Error("moving the trace to another directory changed the fingerprint (identity must be content+name, not directory)")
	}

	// Different records: different identity.
	c := recordTrace(t, dir, "c.trc", "mcf", 400, 2)
	if traceConfig(t, FIGCacheFast, c).Fingerprint() == fpA {
		t.Error("different trace content shares a fingerprint")
	}

	// Rewriting the file in place moves the fingerprint with the content.
	rawC, err := os.ReadFile(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(a, rawC, 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(a, future, future); err != nil {
		t.Fatal(err)
	}
	if traceConfig(t, FIGCacheFast, a).Fingerprint() == fpA {
		t.Error("rewritten trace kept its old fingerprint (stale content-hash cache)")
	}

	// A missing trace still fingerprints deterministically (the run
	// itself fails later, at sim.New).
	missing := traceConfig(t, FIGCacheFast, filepath.Join(dir, "missing.trc"))
	if missing.Fingerprint() != missing.Fingerprint() {
		t.Error("missing trace fingerprints nondeterministically")
	}
	if _, err := New(missing); err == nil {
		t.Error("sim.New accepted a config with a missing trace file")
	}
}
