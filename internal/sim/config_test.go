package sim

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/workload"
)

func TestGeometryPerPreset(t *testing.T) {
	mix := workload.Mix{Name: "x", Apps: workload.Sources(workload.Benchmarks()[:1]...)}
	cases := []struct {
		preset Preset
		fast   int
	}{
		{Base, 0},
		{FIGCacheSlow, 0},
		{FIGCacheFast, 2},
		{FIGCacheIdeal, 2},
		{LISAVilla, 16},
		{LLDRAM, 0},
	}
	for _, c := range cases {
		cfg := DefaultConfig(c.preset, mix)
		if err := cfg.normalize(); err != nil {
			t.Fatal(err)
		}
		if got := cfg.geometry().FastSubarrays; got != c.fast {
			t.Errorf("%v: fast subarrays = %d, want %d", c.preset, got, c.fast)
		}
	}
}

func TestBuildHookKinds(t *testing.T) {
	mix := workload.Mix{Name: "x", Apps: workload.Sources(workload.Benchmarks()[:1]...)}
	for _, p := range []Preset{Base, LLDRAM} {
		cfg := DefaultConfig(p, mix)
		if err := cfg.normalize(); err != nil {
			t.Fatal(err)
		}
		hook, err := cfg.buildHook(cfg.geometry())
		if err != nil {
			t.Fatal(err)
		}
		if hook != nil {
			t.Errorf("%v: expected no cache hook", p)
		}
	}
	for _, p := range []Preset{FIGCacheSlow, FIGCacheFast, FIGCacheIdeal} {
		cfg := DefaultConfig(p, mix)
		if err := cfg.normalize(); err != nil {
			t.Fatal(err)
		}
		hook, err := cfg.buildHook(cfg.geometry())
		if err != nil {
			t.Fatal(err)
		}
		if FIGCacheOf(hook) == nil {
			t.Errorf("%v: hook is not FIGCache-based", p)
		}
	}
}

func TestFIGCacheSlowReservesSubarrayZero(t *testing.T) {
	mix := workload.Mix{Name: "x", Apps: workload.Sources(workload.Benchmarks()[:1]...)}
	cfg := DefaultConfig(FIGCacheSlow, mix)
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	hook, err := cfg.buildHook(cfg.geometry())
	if err != nil {
		t.Fatal(err)
	}
	fc := FIGCacheOf(hook)
	if fc.Config().ReservedSubarray != 0 {
		t.Errorf("FIGCache-Slow reserved subarray = %d, want 0", fc.Config().ReservedSubarray)
	}
	// It must never cache segments from the reserved subarray.
	if fc.ShouldInsert(dram.Location{Row: 100}) {
		t.Error("segment from the reserved subarray accepted")
	}
}

func TestIdealHookZeroesCost(t *testing.T) {
	mix := workload.Mix{Name: "x", Apps: workload.Sources(workload.Benchmarks()[:1]...)}
	cfg := DefaultConfig(FIGCacheIdeal, mix)
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	geo := cfg.geometry()
	hook, err := cfg.buildHook(geo)
	if err != nil {
		t.Fatal(err)
	}
	slow := dram.DDR4()
	ch, err := dram.NewChannel(geo, slow, slow.Fast(dram.PaperFastScale()), false)
	if err != nil {
		t.Fatal(err)
	}
	plan := hook.Insert(ch, dram.Location{Row: 7}, 0)
	if plan == nil {
		t.Fatal("ideal hook refused an insertion")
	}
	if plan.Cost != 0 {
		t.Errorf("ideal plan cost = %d, want 0", plan.Cost)
	}
	// Committing through the ideal wrapper must reach the inner FIGCache:
	// the inserted segment becomes visible to Lookup.
	hook.Commit(plan)
	if _, hit := hook.Lookup(dram.Location{Row: 7}, false); !hit {
		t.Error("ideal hook did not commit the insertion to the inner cache")
	}
}

func TestFloorPow2(t *testing.T) {
	cases := map[uint64]uint64{1: 1, 2: 2, 3: 2, 4: 4, 1023: 512, 1024: 1024, 1025: 1024}
	for in, want := range cases {
		if got := floorPow2(in); got != want {
			t.Errorf("floorPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestImmediateRelocConfigPropagates(t *testing.T) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	spec.Bubbles = 4
	spec.HotSegments = 2560
	spec.HotFraction = 0.95
	mix := workload.Mix{Name: "warm", Apps: workload.Sources(spec)}

	run := func(immediate bool) Result {
		cfg := DefaultConfig(FIGCacheFast, mix)
		cfg.TargetInsts = 60_000
		cfg.ImmediateReloc = immediate
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	deferred := run(false)
	immediate := run(true)
	if deferred.Inserted == 0 || immediate.Inserted == 0 {
		t.Fatal("no insertions in one of the runs")
	}
	// The runs must actually differ (the flag reached the controller).
	if deferred.Cycles == immediate.Cycles && deferred.DRAM == immediate.DRAM {
		t.Error("immediate-relocation flag had no effect")
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := Result{
		Cores:      []CoreResult{{IPC: 1.0}, {IPC: 0.5}},
		TotalInsts: 2000,
		LLCMisses:  50,
	}
	if got := r.IPCSum(); got != 1.5 {
		t.Errorf("IPCSum = %g", got)
	}
	if got := r.LLCMPKI(); got != 25 {
		t.Errorf("LLCMPKI = %g, want 25", got)
	}
	empty := Result{}
	if empty.LLCMPKI() != 0 || empty.InDRAMCacheHitRate() != 0 {
		t.Error("empty result metrics not zero")
	}
	// Mismatched core counts yield 0 rather than a bogus ratio.
	if got := r.WeightedSpeedupOver(Result{}); got != 0 {
		t.Errorf("mismatched WS = %g, want 0", got)
	}
}

func TestPresetListOrder(t *testing.T) {
	ps := Presets()
	if len(ps) != 6 || ps[0] != Base || ps[len(ps)-1] != LLDRAM {
		t.Errorf("preset order = %v", ps)
	}
}
