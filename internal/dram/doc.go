// Package dram models a DDR4-style DRAM device at command-level timing
// accuracy: channels, ranks, bank groups, banks, subarrays, rows and
// columns, together with the JEDEC timing constraints that govern when
// each command may issue.
//
// The model is the substrate on which the FIGARO substrate (column
// granularity in-DRAM relocation through the shared global row buffer)
// and the FIGCache in-DRAM cache are built, reproducing the system
// evaluated in "FIGARO: Improving System Performance via Fine-Grained
// In-DRAM Data Relocation and Caching" (MICRO 2020).
//
// It is the bottom of the layer stack: internal/memctrl decides which
// command to issue and asks this package two questions — CanIssue (the
// earliest cycle a command's timing windows allow) and Issue (apply the
// command, advancing those windows). The relocation primitives
// (Relocate, RelocateAll) occupy banks for FIGARO RELOC bursts, LISA
// hops, or RowClone-PSM channel-wide copies, and per-bank/channel
// counters feed the evaluation's statistics.
//
// Time inside this package is measured in DRAM bus clock cycles (nCK).
// For DDR4-1600 the bus clock is 800 MHz, so one cycle is 1.25 ns.
//
// Channel.Snapshot/Restore (snapshot.go) serialize per-bank timing
// windows, open rows, and counters for the system checkpoint lifecycle
// (sim.System.Snapshot).
package dram
