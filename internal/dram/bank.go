package dram

// RowClass identifies the latency class of a row: rows in regular (slow)
// subarrays use the nominal DDR4 timings, rows in fast subarrays (short
// bitlines) use the reduced timings of Timing.Fast.
type RowClass int

const (
	RowSlow RowClass = iota
	RowFast
)

// Bank models one DRAM bank: the open-row state plus the earliest bus
// cycle at which each command type may next be issued to the bank.
//
// The bank does not store data; the simulator is timing-only. Correctness
// of the FIGARO relocation data path is validated separately by the
// functional model in internal/core and the circuit model in
// internal/spice.
type Bank struct {
	geo  Geometry
	slow Timing // timings for rows in slow subarrays
	fast Timing // timings for rows in fast subarrays

	// allFast marks every subarray as fast (the LL-DRAM idealized
	// configuration, where the whole chip is built from short-bitline
	// subarrays).
	allFast bool

	// Open-row state. openRow == -1 means the bank is precharged.
	openRow      int
	openCacheRow bool // the open row is in the cache-only row space

	// Earliest issue cycles for each command class.
	nextACT int64
	nextPRE int64
	nextRD  int64
	nextWR  int64

	// openedAt is the issue cycle of the last ACT, used to enforce tRAS.
	openedAt int64
	// lastWriteEnd is the cycle the last write burst finished, for tWR.
	lastWriteEnd int64

	// Stats.
	NumACT      int64 // activates to slow rows
	NumACTFast  int64 // activates to fast rows
	NumPRE      int64
	NumRD       int64
	NumWR       int64
	NumRELOC    int64
	NumRBMHops  int64
	RowHits     int64 // column accesses to an already-open row
	RowMisses   int64 // column accesses requiring an ACT on a closed bank
	RowConflict int64 // column accesses requiring PRE of a different row
}

// NewBank returns a bank with all timing windows expired (commands may
// issue at cycle 0).
func NewBank(geo Geometry, slow, fast Timing, allFast bool) *Bank {
	return &Bank{geo: geo, slow: slow, fast: fast, allFast: allFast, openRow: -1}
}

// Reset returns the bank to its freshly constructed state for the given
// geometry and latency classes: precharged, all timing windows expired,
// all counters zero. Banks hold no heap state, so reuse across runs is a
// plain overwrite.
func (b *Bank) Reset(geo Geometry, slow, fast Timing, allFast bool) {
	*b = Bank{geo: geo, slow: slow, fast: fast, allFast: allFast, openRow: -1}
}

// timingFor returns the timing set that applies to a row. The pointer
// avoids copying the ~200-byte Timing struct on every command; callers
// only read it.
func (b *Bank) timingFor(cacheRow bool, row int) *Timing {
	if b.classOf(cacheRow, row) == RowFast {
		return &b.fast
	}
	return &b.slow
}

// classOf returns the latency class of a row. Cache rows are fast when the
// geometry provides fast subarrays (FIGCache-Fast, LISA-VILLA); otherwise
// cache rows are reserved rows of a slow subarray (FIGCache-Slow) and keep
// slow timings.
func (b *Bank) classOf(cacheRow bool, row int) RowClass {
	if b.allFast {
		return RowFast
	}
	if cacheRow && b.geo.FastSubarrays > 0 {
		return RowFast
	}
	return RowSlow
}

// Open reports the currently open row, or (-1, false) if precharged.
func (b *Bank) Open() (row int, cacheRow bool) { return b.openRow, b.openCacheRow }

// IsOpen reports whether the given row is the open row of the bank.
func (b *Bank) IsOpen(cacheRow bool, row int) bool {
	return b.openRow == row && b.openCacheRow == cacheRow && b.openRow >= 0
}

// CanACT reports the earliest cycle an ACTIVATE may issue. The bank must
// be precharged.
func (b *Bank) CanACT(now int64) (int64, bool) {
	if b.openRow != -1 {
		return 0, false
	}
	return maxI64(now, b.nextACT), true
}

// CanPRE reports the earliest cycle a PRECHARGE may issue. The bank must
// have an open row.
func (b *Bank) CanPRE(now int64) (int64, bool) {
	if b.openRow == -1 {
		return 0, false
	}
	return maxI64(now, b.nextPRE), true
}

// CanRD and CanWR report the earliest cycle a column command to the open
// row may issue. The target row must be open.
func (b *Bank) CanRD(now int64, cacheRow bool, row int) (int64, bool) {
	if !b.IsOpen(cacheRow, row) {
		return 0, false
	}
	return maxI64(now, b.nextRD), true
}

// CanWR is the write analogue of CanRD.
func (b *Bank) CanWR(now int64, cacheRow bool, row int) (int64, bool) {
	if !b.IsOpen(cacheRow, row) {
		return 0, false
	}
	return maxI64(now, b.nextWR), true
}

// ACT opens a row at cycle at (which must satisfy CanACT).
func (b *Bank) ACT(at int64, cacheRow bool, row int) {
	t := b.timingFor(cacheRow, row)
	b.openRow = row
	b.openCacheRow = cacheRow
	b.openedAt = at
	b.nextRD = maxI64(b.nextRD, at+int64(t.RCD))
	b.nextWR = maxI64(b.nextWR, at+int64(t.RCD))
	b.nextPRE = maxI64(b.nextPRE, at+int64(t.RAS))
	b.nextACT = maxI64(b.nextACT, at+int64(t.RC))
	if b.classOf(cacheRow, row) == RowFast {
		b.NumACTFast++
	} else {
		b.NumACT++
	}
}

// PRE closes the open row at cycle at (which must satisfy CanPRE).
func (b *Bank) PRE(at int64) {
	t := b.timingFor(b.openCacheRow, b.openRow)
	b.openRow = -1
	b.openCacheRow = false
	b.nextACT = maxI64(b.nextACT, at+int64(t.RP))
	b.NumPRE++
}

// RD issues a read burst at cycle at and returns the cycle at which the
// last data beat arrives at the controller.
func (b *Bank) RD(at int64) (dataEnd int64) {
	t := b.timingFor(b.openCacheRow, b.openRow)
	// A later PRECHARGE must respect tRTP.
	b.nextPRE = maxI64(b.nextPRE, at+int64(t.RTP))
	b.NumRD++
	return at + int64(t.ReadLatency())
}

// WR issues a write burst at cycle at and returns the cycle at which the
// last data beat is written.
func (b *Bank) WR(at int64) (dataEnd int64) {
	t := b.timingFor(b.openCacheRow, b.openRow)
	end := at + int64(t.WriteLatency())
	b.lastWriteEnd = end
	// Write recovery: the row may not be precharged until tWR after the
	// last data beat.
	b.nextPRE = maxI64(b.nextPRE, end+int64(t.WR))
	b.NumWR++
	return end
}

// Occupy blocks all activity in the bank until cycle until. It models
// multi-command in-DRAM operations (FIGARO relocation bursts, LISA row
// movement, refresh) that own the bank for a computed duration.
func (b *Bank) Occupy(until int64) {
	b.nextACT = maxI64(b.nextACT, until)
	b.nextPRE = maxI64(b.nextPRE, until)
	b.nextRD = maxI64(b.nextRD, until)
	b.nextWR = maxI64(b.nextWR, until)
}

// ForceClose marks the bank precharged without timing side effects beyond
// those already applied via Occupy. Relocation sequences end with a
// PRECHARGE whose latency is folded into the occupancy duration.
func (b *Bank) ForceClose() {
	if b.openRow != -1 {
		b.openRow = -1
		b.openCacheRow = false
	}
}

// delayACT pushes back the earliest activate cycle; used by the rank for
// tRRD and tFAW.
func (b *Bank) delayACT(at int64) { b.nextACT = maxI64(b.nextACT, at) }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
