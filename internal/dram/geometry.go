package dram

import "fmt"

// Geometry describes the physical organization of one memory channel.
// The default values (see Default) match Table 1 of the paper: 1 rank,
// 4 bank groups with 4 banks each, 64 subarrays per bank, 8 kB rows and
// 4 GB of capacity per channel.
type Geometry struct {
	Ranks            int // ranks per channel
	BankGroups       int // bank groups per rank
	BanksPerGroup    int // banks per bank group
	SubarraysPerBank int // regular (slow) subarrays per bank
	RowsPerSubarray  int // rows per regular subarray
	RowBytes         int // bytes per row across the rank (8 kB in DDR4)
	BlockBytes       int // bytes per cache block / rank-level column (64 B)

	// FastSubarrays is the number of additional small, low-latency
	// subarrays per bank (the in-DRAM cache region for FIGCache-Fast and
	// LISA-VILLA). Zero for conventional homogeneous banks.
	FastSubarrays int
	// RowsPerFastSubarray is the number of rows in each fast subarray
	// (32 in the paper's configuration, versus 512 for slow subarrays).
	RowsPerFastSubarray int
}

// Default returns the channel geometry from Table 1 of the paper.
func Default() Geometry {
	return Geometry{
		Ranks:               1,
		BankGroups:          4,
		BanksPerGroup:       4,
		SubarraysPerBank:    64,
		RowsPerSubarray:     512,
		RowBytes:            8 * 1024,
		BlockBytes:          64,
		FastSubarrays:       0,
		RowsPerFastSubarray: 32,
	}
}

// BanksPerRank returns the number of banks in one rank.
func (g Geometry) BanksPerRank() int { return g.BankGroups * g.BanksPerGroup }

// RowsPerBank returns the number of regular (addressable) rows in a bank,
// excluding any cache-only rows in fast subarrays.
func (g Geometry) RowsPerBank() int { return g.SubarraysPerBank * g.RowsPerSubarray }

// CacheRowsPerBank returns the number of rows available in the fast
// subarrays of a bank. These rows are cache-only: they are inclusive
// copies of regular rows and invisible to the operating system.
func (g Geometry) CacheRowsPerBank() int { return g.FastSubarrays * g.RowsPerFastSubarray }

// BlocksPerRow returns the number of cache blocks held by one row.
func (g Geometry) BlocksPerRow() int { return g.RowBytes / g.BlockBytes }

// ChannelBytes returns the OS-visible capacity of one channel.
func (g Geometry) ChannelBytes() int64 {
	return int64(g.Ranks) * int64(g.BanksPerRank()) * int64(g.RowsPerBank()) * int64(g.RowBytes)
}

// SubarrayOfRow returns the index of the regular subarray containing a
// regular row.
func (g Geometry) SubarrayOfRow(row int) int { return row / g.RowsPerSubarray }

// Validate reports an error if the geometry is internally inconsistent.
func (g Geometry) Validate() error {
	switch {
	case g.Ranks <= 0:
		return fmt.Errorf("dram: ranks must be positive, got %d", g.Ranks)
	case g.BankGroups <= 0 || g.BanksPerGroup <= 0:
		return fmt.Errorf("dram: bank groups (%d) and banks per group (%d) must be positive",
			g.BankGroups, g.BanksPerGroup)
	case g.SubarraysPerBank <= 0 || g.RowsPerSubarray <= 0:
		return fmt.Errorf("dram: subarrays (%d) and rows per subarray (%d) must be positive",
			g.SubarraysPerBank, g.RowsPerSubarray)
	case g.RowBytes <= 0 || g.BlockBytes <= 0 || g.RowBytes%g.BlockBytes != 0:
		return fmt.Errorf("dram: row bytes (%d) must be a positive multiple of block bytes (%d)",
			g.RowBytes, g.BlockBytes)
	case g.FastSubarrays < 0 || g.RowsPerFastSubarray < 0:
		return fmt.Errorf("dram: fast subarray counts must be non-negative")
	case g.FastSubarrays > 0 && g.RowsPerFastSubarray == 0:
		return fmt.Errorf("dram: fast subarrays configured with zero rows")
	}
	return nil
}

// Location identifies one cache block within a channel, fully decoded.
// Row is a regular row index within the bank unless CacheRow is true, in
// which case Row indexes the bank's cache-only row space (fast subarrays
// or reserved rows, depending on the cache organization).
type Location struct {
	Rank     int
	Group    int // bank group
	Bank     int // bank within group
	Row      int
	Block    int  // block (rank-level column) within the row
	CacheRow bool // true if Row addresses the in-DRAM cache row space
}

// BankID returns a dense index for the bank within the channel.
func (l Location) BankID(g Geometry) int {
	return (l.Rank*g.BankGroups+l.Group)*g.BanksPerGroup + l.Bank
}

// SameBank reports whether two locations address the same bank.
func (l Location) SameBank(o Location) bool {
	return l.Rank == o.Rank && l.Group == o.Group && l.Bank == o.Bank
}

func (l Location) String() string {
	space := "row"
	if l.CacheRow {
		space = "cacherow"
	}
	return fmt.Sprintf("r%d.g%d.b%d.%s%d.blk%d", l.Rank, l.Group, l.Bank, space, l.Row, l.Block)
}
