package dram

import "fmt"

// CmdType enumerates the DRAM commands the memory controller may issue.
// ACT, PRE, RD, WR and REF are standard DDR4 commands. RELOC is the new
// FIGARO command (Section 4.1): it copies one column of data between the
// local row buffers of two subarrays in a bank through the global row
// buffer. RBM is the LISA row-buffer-movement operation used by the
// LISA-VILLA baseline to relocate a full row between adjacent subarrays.
type CmdType int

const (
	CmdACT CmdType = iota
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
	CmdRELOC
	CmdRBM

	numCmdTypes
)

var cmdNames = [numCmdTypes]string{"ACT", "PRE", "RD", "WR", "REF", "RELOC", "RBM"}

func (c CmdType) String() string {
	if c < 0 || int(c) >= len(cmdNames) {
		return fmt.Sprintf("CmdType(%d)", int(c))
	}
	return cmdNames[c]
}

// IsColumn reports whether the command is a column access (transfers data
// on the channel data bus).
func (c CmdType) IsColumn() bool { return c == CmdRD || c == CmdWR }

// Command is one command addressed to a bank (or rank, for REF).
type Command struct {
	Type CmdType
	Loc  Location

	// DstLoc is the destination for RELOC and RBM: the column (RELOC) or
	// row (RBM) that receives the relocated data. The destination must be
	// in the same bank as Loc for RELOC (the global row buffer is shared
	// only within a bank).
	DstLoc Location
}

// CommandTrace records an issued command for debugging and verification.
// End is non-zero only for multi-cycle in-DRAM operations (RELOC/RBM
// bursts): the cycle the bank becomes available again.
type CommandTrace struct {
	At  int64 // bus cycle of issue
	End int64 // occupancy end for RELOC/RBM entries, else 0
	Cmd Command
}

func (ct CommandTrace) String() string {
	return fmt.Sprintf("%8d %-5s %s", ct.At, ct.Cmd.Type, ct.Cmd.Loc)
}
