package dram

import (
	"testing"
	"testing/quick"
)

func testChannel(t *testing.T, fastSubarrays int, allFast bool) *Channel {
	t.Helper()
	geo := Default()
	geo.FastSubarrays = fastSubarrays
	slow := DDR4()
	ch, err := NewChannel(geo, slow, slow.Fast(PaperFastScale()), allFast)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	return ch
}

func TestDefaultGeometry(t *testing.T) {
	g := Default()
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if got := g.BanksPerRank(); got != 16 {
		t.Errorf("BanksPerRank = %d, want 16", got)
	}
	if got := g.RowsPerBank(); got != 32768 {
		t.Errorf("RowsPerBank = %d, want 32768", got)
	}
	if got := g.BlocksPerRow(); got != 128 {
		t.Errorf("BlocksPerRow = %d, want 128", got)
	}
	// Table 1: 4 GB capacity per channel.
	if got := g.ChannelBytes(); got != 4<<30 {
		t.Errorf("ChannelBytes = %d, want %d", got, int64(4)<<30)
	}
}

func TestGeometryValidateRejectsBad(t *testing.T) {
	cases := []func(*Geometry){
		func(g *Geometry) { g.Ranks = 0 },
		func(g *Geometry) { g.BankGroups = -1 },
		func(g *Geometry) { g.SubarraysPerBank = 0 },
		func(g *Geometry) { g.RowBytes = 100 }, // not a multiple of 64
		func(g *Geometry) { g.FastSubarrays = -1 },
		func(g *Geometry) { g.FastSubarrays = 2; g.RowsPerFastSubarray = 0 },
	}
	for i, mutate := range cases {
		g := Default()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid geometry %+v", i, g)
		}
	}
}

func TestTimingValidate(t *testing.T) {
	if err := DDR4().Validate(); err != nil {
		t.Fatalf("DDR4 timing invalid: %v", err)
	}
	bad := DDR4()
	bad.RCD = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted tRCD=0")
	}
	bad = DDR4()
	bad.RC = 1
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted tRC < tRAS+tRP")
	}
}

func TestFastTimingReductions(t *testing.T) {
	slow := DDR4()
	fast := slow.Fast(PaperFastScale())
	// Table 1: tRCD/tRP/tRAS reduced by 45.5% / 38.2% / 62.9%.
	if fast.RCD >= slow.RCD || fast.RP >= slow.RP || fast.RAS >= slow.RAS {
		t.Fatalf("fast timings not reduced: %+v vs %+v", fast, slow)
	}
	wantRCD := int(float64(slow.RCD)*(1-0.455) + 0.5)
	if fast.RCD != wantRCD {
		t.Errorf("fast tRCD = %d, want %d", fast.RCD, wantRCD)
	}
	if fast.RC != fast.RAS+fast.RP {
		t.Errorf("fast tRC = %d, want tRAS+tRP = %d", fast.RC, fast.RAS+fast.RP)
	}
	if err := fast.Validate(); err != nil {
		t.Errorf("fast timing invalid: %v", err)
	}
}

func TestTimingNSAndCyclesRoundTrip(t *testing.T) {
	tm := DDR4()
	if got := tm.NS(4); got != 5.0 {
		t.Errorf("NS(4) = %g, want 5.0", got)
	}
	if got := tm.Cycles(35); got != 28 {
		t.Errorf("Cycles(35ns) = %d, want 28", got)
	}
	if got := tm.Cycles(1); got != 1 {
		t.Errorf("Cycles(1ns) = %d, want 1 (round up)", got)
	}
}

func TestBankActivateReadPrechargeSequence(t *testing.T) {
	ch := testChannel(t, 0, false)
	loc := Location{Row: 100, Block: 3}
	tm := ch.Slow

	// RD on a closed bank is structurally impossible.
	if _, ok := ch.CanIssue(&Command{Type: CmdRD, Loc: loc}, 0); ok {
		t.Fatal("CanIssue(RD) succeeded on closed bank")
	}
	at, ok := ch.CanIssue(&Command{Type: CmdACT, Loc: loc}, 0)
	if !ok || at != 0 {
		t.Fatalf("CanIssue(ACT) = (%d,%v), want (0,true)", at, ok)
	}
	ch.Issue(&Command{Type: CmdACT, Loc: loc}, 0)

	// Read must wait tRCD.
	at, ok = ch.CanIssue(&Command{Type: CmdRD, Loc: loc}, 0)
	if !ok || at != int64(tm.RCD) {
		t.Fatalf("RD ready at %d (ok=%v), want tRCD=%d", at, ok, tm.RCD)
	}
	end := ch.Issue(&Command{Type: CmdRD, Loc: loc}, at)
	if want := at + int64(tm.CL+tm.BL); end != want {
		t.Errorf("RD data end = %d, want %d", end, want)
	}

	// Precharge must wait max(tRAS, RD+tRTP).
	at, ok = ch.CanIssue(&Command{Type: CmdPRE, Loc: loc}, 0)
	if !ok {
		t.Fatal("CanIssue(PRE) structurally failed")
	}
	if want := int64(tm.RAS); at != want {
		t.Errorf("PRE ready at %d, want tRAS=%d", at, want)
	}
	ch.Issue(&Command{Type: CmdPRE, Loc: loc}, at)

	// Next ACT must wait tRP after PRE and tRC after first ACT.
	at2, ok := ch.CanIssue(&Command{Type: CmdACT, Loc: loc}, 0)
	if !ok {
		t.Fatal("CanIssue(ACT) structurally failed after PRE")
	}
	want := maxI64(at+int64(tm.RP), int64(tm.RC))
	if at2 != want {
		t.Errorf("second ACT ready at %d, want %d", at2, want)
	}
}

func TestBankWriteRecovery(t *testing.T) {
	ch := testChannel(t, 0, false)
	loc := Location{Row: 7}
	tm := ch.Slow
	ch.Issue(&Command{Type: CmdACT, Loc: loc}, 0)
	wrAt := int64(tm.RCD)
	end := ch.Issue(&Command{Type: CmdWR, Loc: loc}, wrAt)
	if want := wrAt + int64(tm.CWL+tm.BL); end != want {
		t.Fatalf("WR data end = %d, want %d", end, want)
	}
	at, ok := ch.CanIssue(&Command{Type: CmdPRE, Loc: loc}, 0)
	if !ok {
		t.Fatal("PRE structurally failed")
	}
	if want := end + int64(tm.WR); at != want {
		t.Errorf("PRE after WR ready at %d, want data end + tWR = %d", at, want)
	}
}

func TestRowConflictRequiresPrecharge(t *testing.T) {
	ch := testChannel(t, 0, false)
	a := Location{Row: 1}
	b := Location{Row: 2}
	ch.Issue(&Command{Type: CmdACT, Loc: a}, 0)
	// ACT to a different row of the open bank is structurally impossible.
	if _, ok := ch.CanIssue(&Command{Type: CmdACT, Loc: b}, 100); ok {
		t.Error("ACT allowed on bank with open row")
	}
	// RD to the non-open row is impossible too.
	if _, ok := ch.CanIssue(&Command{Type: CmdRD, Loc: b}, 100); ok {
		t.Error("RD allowed to closed row")
	}
}

func TestRankRRDAndFAW(t *testing.T) {
	ch := testChannel(t, 0, false)
	tm := ch.Slow
	// Activate four different banks back to back; each must be spaced by
	// tRRD_L, and the fifth by tFAW from the first.
	var issued []int64
	for i := 0; i < 5; i++ {
		loc := Location{Group: i % 4, Bank: i / 4, Row: 1}
		at, ok := ch.CanIssue(&Command{Type: CmdACT, Loc: loc}, 0)
		if !ok {
			t.Fatalf("ACT %d structurally failed", i)
		}
		ch.Issue(&Command{Type: CmdACT, Loc: loc}, at)
		issued = append(issued, at)
	}
	for i := 1; i < 4; i++ {
		if got := issued[i] - issued[i-1]; got < int64(tm.RRDL) {
			t.Errorf("ACT %d-%d spacing %d < tRRD %d", i-1, i, got, tm.RRDL)
		}
	}
	if got := issued[4] - issued[0]; got < int64(tm.FAW) {
		t.Errorf("five-ACT window %d < tFAW %d", got, tm.FAW)
	}
}

func TestDataBusSerializesColumnBursts(t *testing.T) {
	ch := testChannel(t, 0, false)
	tm := ch.Slow
	locA := Location{Group: 0, Row: 1}
	locB := Location{Group: 1, Row: 1}
	ch.Issue(&Command{Type: CmdACT, Loc: locA}, 0)
	atB, _ := ch.CanIssue(&Command{Type: CmdACT, Loc: locB}, 0)
	ch.Issue(&Command{Type: CmdACT, Loc: locB}, atB)

	rdA, _ := ch.CanIssue(&Command{Type: CmdRD, Loc: locA}, 0)
	endA := ch.Issue(&Command{Type: CmdRD, Loc: locA}, rdA)
	rdB, ok := ch.CanIssue(&Command{Type: CmdRD, Loc: locB}, rdA)
	if !ok {
		t.Fatal("RD to bank B structurally failed")
	}
	// Bus occupancy: second read cannot start before the first burst ends,
	// and tCCD_S must separate the commands.
	if rdB < rdA+int64(tm.CCDS) {
		t.Errorf("second RD at %d violates tCCD_S after %d", rdB, rdA)
	}
	if rdB < endA && rdB+int64(tm.CL) < endA {
		t.Errorf("second RD at %d overlaps first burst ending %d", rdB, endA)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	ch := testChannel(t, 0, false)
	tm := ch.Slow
	loc := Location{Row: 1}
	ch.Issue(&Command{Type: CmdACT, Loc: loc}, 0)
	wrAt, _ := ch.CanIssue(&Command{Type: CmdWR, Loc: loc}, 0)
	wrEnd := ch.Issue(&Command{Type: CmdWR, Loc: loc}, wrAt)
	rdAt, ok := ch.CanIssue(&Command{Type: CmdRD, Loc: loc}, wrAt+1)
	if !ok {
		t.Fatal("RD structurally failed")
	}
	if want := wrEnd + int64(tm.WTRL); rdAt < want {
		t.Errorf("RD after WR at %d, want >= %d (tWTR)", rdAt, want)
	}
}

func TestRefreshOccupiesAllBanks(t *testing.T) {
	ch := testChannel(t, 0, false)
	tm := ch.Slow
	rank, due := ch.RefreshDue(int64(tm.REFI))
	if !due || rank != 0 {
		t.Fatalf("RefreshDue = (%d,%v), want (0,true)", rank, due)
	}
	at, ok := ch.CanIssue(&Command{Type: CmdREF, Loc: Location{Rank: 0}}, int64(tm.REFI))
	if !ok {
		t.Fatal("REF structurally failed on idle rank")
	}
	end := ch.Issue(&Command{Type: CmdREF, Loc: Location{Rank: 0}}, at)
	if want := at + int64(tm.RFC); end != want {
		t.Errorf("REF end = %d, want %d", end, want)
	}
	// No ACT may issue to any bank until tRFC elapses.
	actAt, ok := ch.CanIssue(&Command{Type: CmdACT, Loc: Location{Row: 5}}, at)
	if !ok {
		t.Fatal("ACT structurally failed")
	}
	if actAt < end {
		t.Errorf("ACT during refresh: at %d < refresh end %d", actAt, end)
	}
	if _, due := ch.RefreshDue(at); due {
		t.Error("refresh still pending after issue")
	}
}

func TestRefreshBlockedByOpenRow(t *testing.T) {
	ch := testChannel(t, 0, false)
	ch.Issue(&Command{Type: CmdACT, Loc: Location{Row: 5}}, 0)
	if _, ok := ch.CanIssue(&Command{Type: CmdREF, Loc: Location{Rank: 0}}, 1000); ok {
		t.Error("REF allowed with an open row in the rank")
	}
}

func TestFastRowTimings(t *testing.T) {
	ch := testChannel(t, 2, false)
	fast := ch.Fast
	loc := Location{Row: 10, CacheRow: true}
	ch.Issue(&Command{Type: CmdACT, Loc: loc}, 0)
	at, ok := ch.CanIssue(&Command{Type: CmdRD, Loc: loc}, 0)
	if !ok {
		t.Fatal("RD to cache row failed")
	}
	if at != int64(fast.RCD) {
		t.Errorf("cache-row RD ready at %d, want fast tRCD=%d", at, fast.RCD)
	}
	preAt, _ := ch.CanIssue(&Command{Type: CmdPRE, Loc: loc}, 0)
	if preAt != int64(fast.RAS) {
		t.Errorf("cache-row PRE ready at %d, want fast tRAS=%d", preAt, fast.RAS)
	}
}

func TestFIGCacheSlowCacheRowsKeepSlowTimings(t *testing.T) {
	// With no fast subarrays (FIGCache-Slow), cache rows are reserved rows
	// of a slow subarray and must use slow timings.
	ch := testChannel(t, 0, false)
	loc := Location{Row: 3, CacheRow: true}
	ch.Issue(&Command{Type: CmdACT, Loc: loc}, 0)
	at, _ := ch.CanIssue(&Command{Type: CmdRD, Loc: loc}, 0)
	if at != int64(ch.Slow.RCD) {
		t.Errorf("FIGCache-Slow cache row RD at %d, want slow tRCD=%d", at, ch.Slow.RCD)
	}
}

func TestLLDRAMAllRowsFast(t *testing.T) {
	ch := testChannel(t, 0, true)
	loc := Location{Row: 1234}
	ch.Issue(&Command{Type: CmdACT, Loc: loc}, 0)
	at, _ := ch.CanIssue(&Command{Type: CmdRD, Loc: loc}, 0)
	if at != int64(ch.Fast.RCD) {
		t.Errorf("LL-DRAM RD at %d, want fast tRCD=%d", at, ch.Fast.RCD)
	}
}

func TestRelocCostDistanceIndependent(t *testing.T) {
	ch := testChannel(t, 2, false)
	// FIGARO's relocation cost depends only on the number of blocks, never
	// on which subarrays are involved (Section 4.1).
	c16 := ch.RelocCost(16, true)
	want := int64(16*ch.Slow.RELOC) + int64(ch.Fast.RCD) + int64(ch.Fast.RP)
	if c16 != want {
		t.Errorf("RelocCost(16) = %d, want %d", c16, want)
	}
	if c1 := ch.RelocCost(1, true); c1 >= c16 {
		t.Errorf("RelocCost(1)=%d not less than RelocCost(16)=%d", c1, c16)
	}
}

func TestRelocSingleColumnMatchesPaperLatency(t *testing.T) {
	// Section 4.2: relocating one column standalone takes two ACTIVATEs,
	// one RELOC and one PRECHARGE = 63.5 ns with slow subarrays. Our
	// discrete model: tRCD + tRELOC + tRCD + tRP cycles.
	ch := testChannel(t, 0, false)
	cost := ch.RelocStandaloneCost(1, false, false)
	ns := ch.Slow.NS(cost)
	if ns < 40 || ns > 70 {
		t.Errorf("standalone 1-column relocation = %.1f ns, want ~43-63.5 ns", ns)
	}
}

func TestRBMCostDistanceDependent(t *testing.T) {
	ch := testChannel(t, 16, false)
	if c1, c4 := ch.RBMCost(1, true), ch.RBMCost(4, true); c4 <= c1 {
		t.Errorf("LISA RBM cost not distance-dependent: 1 hop=%d, 4 hops=%d", c1, c4)
	}
}

func TestRelocateOccupiesBankAndCloses(t *testing.T) {
	ch := testChannel(t, 2, false)
	loc := Location{Row: 9}
	ch.Issue(&Command{Type: CmdACT, Loc: loc}, 0)
	cost := ch.RelocCost(16, true)
	end := ch.Relocate(loc, 100, cost, 16, false, 0)
	if end != 100+cost {
		t.Fatalf("Relocate end = %d, want %d", end, 100+cost)
	}
	// Bank must be closed and unavailable until end.
	if row, _ := ch.Bank(loc).Open(); row != -1 {
		t.Error("bank still open after relocation")
	}
	at, ok := ch.CanIssue(&Command{Type: CmdACT, Loc: loc}, 100)
	if !ok {
		t.Fatal("ACT structurally failed after relocation")
	}
	if at < end {
		t.Errorf("ACT allowed at %d during relocation (ends %d)", at, end)
	}
	if got := ch.CollectStats().RELOC; got != 16 {
		t.Errorf("RELOC count = %d, want 16", got)
	}
}

func TestStatsCollection(t *testing.T) {
	ch := testChannel(t, 0, false)
	loc := Location{Row: 1}
	ch.Issue(&Command{Type: CmdACT, Loc: loc}, 0)
	ch.Issue(&Command{Type: CmdRD, Loc: loc}, 20)
	preAt, _ := ch.CanIssue(&Command{Type: CmdPRE, Loc: loc}, 0)
	ch.Issue(&Command{Type: CmdPRE, Loc: loc}, preAt)
	s := ch.CollectStats()
	if s.ACT != 1 || s.RD != 1 || s.PRE != 1 {
		t.Errorf("stats = %+v, want 1 ACT / 1 RD / 1 PRE", s)
	}
	ch.ResetStats()
	if s := ch.CollectStats(); s.ACT != 0 || s.RD != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestLocationBankID(t *testing.T) {
	g := Default()
	seen := make(map[int]bool)
	for r := 0; r < g.Ranks; r++ {
		for grp := 0; grp < g.BankGroups; grp++ {
			for b := 0; b < g.BanksPerGroup; b++ {
				id := (Location{Rank: r, Group: grp, Bank: b}).BankID(g)
				if seen[id] {
					t.Fatalf("duplicate BankID %d", id)
				}
				seen[id] = true
				if id < 0 || id >= g.Ranks*g.BanksPerRank() {
					t.Fatalf("BankID %d out of range", id)
				}
			}
		}
	}
}

// Property: command timing windows are monotonic — issuing any legal
// command never moves a bank's earliest-issue times backwards.
func TestPropertyTimingMonotonic(t *testing.T) {
	f := func(rows []uint16) bool {
		ch := testChannel(t, 2, false)
		now := int64(0)
		for _, r := range rows {
			row := int(r) % ch.Geo.RowsPerBank()
			loc := Location{Row: row}
			bank := ch.Bank(loc)
			if open, _ := bank.Open(); open == -1 {
				at, ok := ch.CanIssue(&Command{Type: CmdACT, Loc: loc}, now)
				if !ok || at < now {
					return false
				}
				ch.Issue(&Command{Type: CmdACT, Loc: loc}, at)
				now = at
			} else {
				loc.Row = open
				rdAt, ok := ch.CanIssue(&Command{Type: CmdRD, Loc: loc}, now)
				if !ok || rdAt < now {
					return false
				}
				ch.Issue(&Command{Type: CmdRD, Loc: loc}, rdAt)
				preAt, ok := ch.CanIssue(&Command{Type: CmdPRE, Loc: loc}, rdAt)
				if !ok || preAt < rdAt {
					return false
				}
				ch.Issue(&Command{Type: CmdPRE, Loc: loc}, preAt)
				now = preAt
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the ACT->RD->PRE->ACT cycle of any row always costs at least
// tRC, for both slow and fast rows.
func TestPropertyRowCycleAtLeastTRC(t *testing.T) {
	f := func(row uint16, cache bool) bool {
		ch := testChannel(t, 2, false)
		loc := Location{Row: int(row) % 512, CacheRow: cache}
		tm := ch.Slow
		if cache {
			tm = ch.Fast
			loc.Row = int(row) % ch.Geo.CacheRowsPerBank()
		}
		a1, _ := ch.CanIssue(&Command{Type: CmdACT, Loc: loc}, 0)
		ch.Issue(&Command{Type: CmdACT, Loc: loc}, a1)
		p, _ := ch.CanIssue(&Command{Type: CmdPRE, Loc: loc}, a1)
		ch.Issue(&Command{Type: CmdPRE, Loc: loc}, p)
		a2, _ := ch.CanIssue(&Command{Type: CmdACT, Loc: loc}, p)
		return a2-a1 >= int64(tm.RAS+tm.RP) && a2-a1 >= int64(tm.RC)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPSMCostAndRelocateAll(t *testing.T) {
	ch := testChannel(t, 2, false)
	// PSM cost grows with block count and exceeds the FIGARO cost.
	c1, c16 := ch.PSMCost(1, true), ch.PSMCost(16, true)
	if c16 <= c1 {
		t.Errorf("PSM cost not increasing: %d vs %d", c1, c16)
	}
	if c16 <= ch.RelocCost(16, true) {
		t.Errorf("PSM (%d) not above FIGARO (%d) for 16 blocks", c16, ch.RelocCost(16, true))
	}
	// RelocateAll must block every bank in the channel.
	end := ch.RelocateAll(Location{Row: 3}, 50, c16, 16)
	for g := 0; g < ch.Geo.BankGroups; g++ {
		for b := 0; b < ch.Geo.BanksPerGroup; b++ {
			loc := Location{Group: g, Bank: b, Row: 1}
			at, ok := ch.CanIssue(&Command{Type: CmdACT, Loc: loc}, 50)
			if !ok {
				t.Fatalf("ACT structurally failed on bank %d.%d", g, b)
			}
			if at < end {
				t.Errorf("bank %d.%d usable at %d during PSM relocation (ends %d)", g, b, at, end)
			}
		}
	}
	if ch.NumPSMBlocks != 16 {
		t.Errorf("PSM blocks = %d, want 16", ch.NumPSMBlocks)
	}
}
