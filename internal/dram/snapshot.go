package dram

import "repro/internal/fgss"

// Snapshot appends the bank's mutable state: the open-row registers,
// every per-command timing window, and the command counters. The
// geometry and timing sets are configuration.
func (b *Bank) Snapshot(w *fgss.Writer) {
	w.Int(b.openRow)
	w.Bool(b.openCacheRow)
	w.I64(b.nextACT)
	w.I64(b.nextPRE)
	w.I64(b.nextRD)
	w.I64(b.nextWR)
	w.I64(b.openedAt)
	w.I64(b.lastWriteEnd)
	w.I64(b.NumACT)
	w.I64(b.NumACTFast)
	w.I64(b.NumPRE)
	w.I64(b.NumRD)
	w.I64(b.NumWR)
	w.I64(b.NumRELOC)
	w.I64(b.NumRBMHops)
	w.I64(b.RowHits)
	w.I64(b.RowMisses)
	w.I64(b.RowConflict)
}

// Restore reads back what Snapshot wrote.
func (b *Bank) Restore(r *fgss.Reader) {
	b.openRow = r.Int()
	b.openCacheRow = r.Bool()
	b.nextACT = r.I64()
	b.nextPRE = r.I64()
	b.nextRD = r.I64()
	b.nextWR = r.I64()
	b.openedAt = r.I64()
	b.lastWriteEnd = r.I64()
	b.NumACT = r.I64()
	b.NumACTFast = r.I64()
	b.NumPRE = r.I64()
	b.NumRD = r.I64()
	b.NumWR = r.I64()
	b.NumRELOC = r.I64()
	b.NumRBMHops = r.I64()
	b.RowHits = r.I64()
	b.RowMisses = r.I64()
	b.RowConflict = r.I64()
}

// Snapshot appends the channel's full timing state: every bank, the
// per-rank ACT history and refresh phase, the data-bus turnaround
// registers, the tCCD windows, and the channel counters. The command
// trace is debug-only state and is not checkpointed; sim runs never
// enable it.
func (c *Channel) Snapshot(w *fgss.Writer) {
	w.Int(len(c.banks))
	for i := range c.banks {
		c.banks[i].Snapshot(w)
	}
	w.Int(len(c.actTimes))
	for r := range c.actTimes {
		w.Int(len(c.actTimes[r]))
		for _, at := range c.actTimes[r] {
			w.I64(at)
		}
		w.I64(c.lastACT[r])
		w.I64(c.nextREF[r])
		w.Bool(c.refPending[r])
	}
	w.Int(int(c.lastColType))
	w.I64(c.lastColEnd)
	w.I64(c.colReadyS)
	w.Int(len(c.colReadyL))
	for _, v := range c.colReadyL {
		w.I64(v)
	}
	w.I64(c.NumREF)
	w.I64(c.RelocBusy)
	w.I64(c.NumPSMBlocks)
}

// Restore reads back what Snapshot wrote. The receiver must have the
// snapshotted rank/bank shape (a mismatch stops decoding).
func (c *Channel) Restore(r *fgss.Reader) {
	if r.Int() != len(c.banks) {
		return
	}
	for i := range c.banks {
		c.banks[i].Restore(r)
	}
	if r.Int() != len(c.actTimes) {
		return
	}
	for rank := range c.actTimes {
		n := r.Int()
		c.actTimes[rank] = c.actTimes[rank][:0]
		for i := 0; i < n && r.Err() == nil; i++ {
			c.actTimes[rank] = append(c.actTimes[rank], r.I64())
		}
		c.lastACT[rank] = r.I64()
		c.nextREF[rank] = r.I64()
		c.refPending[rank] = r.Bool()
	}
	c.lastColType = CmdType(r.Int())
	c.lastColEnd = r.I64()
	c.colReadyS = r.I64()
	if r.Int() != len(c.colReadyL) {
		return
	}
	for i := range c.colReadyL {
		c.colReadyL[i] = r.I64()
	}
	c.NumREF = r.I64()
	c.RelocBusy = r.I64()
	c.NumPSMBlocks = r.I64()
}
