package dram

import "fmt"

// Violation describes one timing-constraint violation found in a command
// trace.
type Violation struct {
	Constraint string
	At         int64 // issue cycle of the violating command
	Prev       int64 // issue cycle of the earlier command it conflicts with
	Cmd        Command
	Detail     string
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s violated (prev at %d): %s %v",
		v.At, v.Constraint, v.Prev, v.Detail, v.Cmd)
}

// ValidateTrace replays a recorded command trace against the JEDEC timing
// constraints and protocol rules, independently of the issue-time checks
// the Channel performs. It is the simulator's safety net: any scheduling
// bug that sneaks a command past CanIssue is caught here.
//
// Checked rules:
//
//	ACT:  bank precharged; tRC since previous ACT (same bank); tRP since
//	      PRE; tRRD since any ACT in the rank; tFAW over any five ACTs;
//	      tRFC since REF.
//	PRE:  bank open; tRAS since ACT; tRTP since RD; tWR after WR data.
//	RD:   row open and matching; tRCD since ACT; tCCD since previous
//	      column command; tWTR after WR data.
//	WR:   row open and matching; tRCD since ACT; tCCD; tRTW after RD.
//	REF:  all banks in the rank precharged; tRP since every PRE.
//
// Relocation occupancy (RELOC/RBM) is applied by the Channel outside the
// command stream, so traces containing relocations validate the explicit
// commands only.
func ValidateTrace(geo Geometry, slow, fast Timing, allFast bool, trace []CommandTrace) []Violation {
	type bankState struct {
		openRow     int
		openCache   bool
		lastACT     int64
		lastPRE     int64
		lastPREFast bool  // the precharged row's timing class
		lastRDEnd   int64 // last read data end (for tWTR source symmetry)
		lastRD      int64
		lastWREnd   int64
		openIsFast  bool
	}
	nBanks := geo.Ranks * geo.BanksPerRank()
	banks := make([]bankState, nBanks)
	for i := range banks {
		banks[i].openRow = -1
		banks[i].lastACT = -1 << 40
		banks[i].lastPRE = -1 << 40
		banks[i].lastWREnd = -1 << 40
		banks[i].lastRD = -1 << 40
	}
	rankACTs := make([][]int64, geo.Ranks)
	lastREF := make([]int64, geo.Ranks)
	for r := range lastREF {
		lastREF[r] = -1 << 40
	}
	var lastCol struct {
		at, end int64
		kind    CmdType
		valid   bool
	}

	timingFor := func(cache bool) Timing {
		if allFast || (cache && geo.FastSubarrays > 0) {
			return fast
		}
		return slow
	}

	var out []Violation
	add := func(constraint string, at, prev int64, cmd Command, detail string) {
		out = append(out, Violation{Constraint: constraint, At: at, Prev: prev, Cmd: cmd, Detail: detail})
	}

	for _, tr := range trace {
		cmd, at := tr.Cmd, tr.At
		id := cmd.Loc.BankID(geo)
		b := &banks[id]
		t := timingFor(cmd.Loc.CacheRow)
		switch cmd.Type {
		case CmdACT:
			if b.openRow != -1 {
				add("bank-closed", at, b.lastACT, cmd, "ACT on open bank")
			}
			openT := timingFor(b.openIsFast)
			if at-b.lastACT < int64(openT.RC) && at-b.lastACT < int64(t.RC) {
				// Use the more permissive of the two timing classes: the
				// channel applies the class of each command's own row.
				add("tRC", at, b.lastACT, cmd, fmt.Sprintf("%d < tRC", at-b.lastACT))
			}
			if at-b.lastPRE < int64(minInt(openT.RP, t.RP)) {
				add("tRP", at, b.lastPRE, cmd, fmt.Sprintf("%d < tRP", at-b.lastPRE))
			}
			if at-lastREF[cmd.Loc.Rank] < int64(slow.RFC) {
				add("tRFC", at, lastREF[cmd.Loc.Rank], cmd, "ACT during refresh")
			}
			hist := rankACTs[cmd.Loc.Rank]
			if n := len(hist); n > 0 && at-hist[n-1] < int64(slow.RRDS) {
				add("tRRD", at, hist[n-1], cmd, fmt.Sprintf("%d < tRRD_S", at-hist[n-1]))
			}
			if n := len(hist); n >= 4 && at-hist[n-4] < int64(slow.FAW) {
				add("tFAW", at, hist[n-4], cmd, fmt.Sprintf("five ACTs in %d", at-hist[n-4]))
			}
			rankACTs[cmd.Loc.Rank] = append(hist, at)
			b.openRow = cmd.Loc.Row
			b.openCache = cmd.Loc.CacheRow
			b.openIsFast = allFast || (cmd.Loc.CacheRow && geo.FastSubarrays > 0)
			b.lastACT = at
		case CmdPRE:
			if b.openRow == -1 {
				add("bank-open", at, b.lastPRE, cmd, "PRE on closed bank")
				continue
			}
			openT := timingFor(b.openIsFast)
			if at-b.lastACT < int64(openT.RAS) {
				add("tRAS", at, b.lastACT, cmd, fmt.Sprintf("%d < tRAS", at-b.lastACT))
			}
			if at-b.lastRD < int64(openT.RTP) {
				add("tRTP", at, b.lastRD, cmd, fmt.Sprintf("%d < tRTP", at-b.lastRD))
			}
			if at-b.lastWREnd < int64(openT.WR) {
				add("tWR", at, b.lastWREnd, cmd, fmt.Sprintf("%d < tWR after WR data", at-b.lastWREnd))
			}
			b.openRow = -1
			b.lastPRE = at
			b.lastPREFast = b.openIsFast
		case CmdRD, CmdWR:
			if b.openRow != cmd.Loc.Row || b.openCache != cmd.Loc.CacheRow {
				add("row-open", at, b.lastACT, cmd,
					fmt.Sprintf("column access to row %d but open row is %d", cmd.Loc.Row, b.openRow))
			}
			openT := timingFor(b.openIsFast)
			if at-b.lastACT < int64(openT.RCD) {
				add("tRCD", at, b.lastACT, cmd, fmt.Sprintf("%d < tRCD", at-b.lastACT))
			}
			if lastCol.valid {
				if at-lastCol.at < int64(slow.CCDS) {
					add("tCCD", at, lastCol.at, cmd, fmt.Sprintf("%d < tCCD_S", at-lastCol.at))
				}
				if lastCol.kind == CmdWR && cmd.Type == CmdRD && at-lastCol.end < int64(slow.WTRS) {
					add("tWTR", at, lastCol.end, cmd, fmt.Sprintf("%d < tWTR_S after WR data", at-lastCol.end))
				}
				if lastCol.kind == CmdRD && cmd.Type == CmdWR && at-lastCol.end < int64(slow.RTW) {
					add("tRTW", at, lastCol.end, cmd, fmt.Sprintf("%d < tRTW after RD data", at-lastCol.end))
				}
			}
			end := at + int64(openT.ReadLatency())
			if cmd.Type == CmdWR {
				end = at + int64(openT.WriteLatency())
				b.lastWREnd = end
			} else {
				b.lastRD = at
				b.lastRDEnd = end
			}
			lastCol.at, lastCol.end, lastCol.kind, lastCol.valid = at, end, cmd.Type, true
		case CmdREF:
			base := cmd.Loc.Rank * geo.BanksPerRank()
			for i := 0; i < geo.BanksPerRank(); i++ {
				if banks[base+i].openRow != -1 {
					add("all-precharged", at, banks[base+i].lastACT, cmd,
						fmt.Sprintf("REF with bank %d open", i))
				}
				if at-banks[base+i].lastPRE < int64(timingFor(banks[base+i].lastPREFast).RP) {
					add("tRP-before-REF", at, banks[base+i].lastPRE, cmd, "REF before precharge settled")
				}
			}
			lastREF[cmd.Loc.Rank] = at
		case CmdRELOC, CmdRBM:
			// In-DRAM relocation burst: the bank is owned until tr.End and
			// ends precharged. Rebase the bank state so subsequent
			// commands are validated against the occupancy end.
			end := tr.End
			if end < at {
				end = at
			}
			b.openRow = -1
			b.lastPRE = end - int64(t.RP)
			b.lastACT = end - int64(t.RC)
			b.lastRD = end - int64(t.RTP)
			b.lastWREnd = end - int64(t.WR)
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
