package dram

import "testing"

func validateArgs(t *testing.T, ch *Channel) []Violation {
	t.Helper()
	return ValidateTrace(ch.Geo, ch.Slow, ch.Fast, false, ch.Trace)
}

func TestValidateCleanSequence(t *testing.T) {
	ch := testChannel(t, 0, false)
	ch.TraceOn = true
	loc := Location{Row: 10}
	ch.Issue(&Command{Type: CmdACT, Loc: loc}, 0)
	rd, _ := ch.CanIssue(&Command{Type: CmdRD, Loc: loc}, 0)
	ch.Issue(&Command{Type: CmdRD, Loc: loc}, rd)
	pre, _ := ch.CanIssue(&Command{Type: CmdPRE, Loc: loc}, rd)
	ch.Issue(&Command{Type: CmdPRE, Loc: loc}, pre)
	if vs := validateArgs(t, ch); len(vs) != 0 {
		t.Fatalf("clean sequence flagged: %v", vs)
	}
}

func TestValidateCatchesEarlyRead(t *testing.T) {
	trace := []CommandTrace{
		{At: 0, Cmd: Command{Type: CmdACT, Loc: Location{Row: 5}}},
		{At: 3, Cmd: Command{Type: CmdRD, Loc: Location{Row: 5}}}, // < tRCD
	}
	slow := DDR4()
	vs := ValidateTrace(Default(), slow, slow.Fast(PaperFastScale()), false, trace)
	if len(vs) == 0 {
		t.Fatal("tRCD violation not caught")
	}
	if vs[0].Constraint != "tRCD" {
		t.Errorf("constraint = %s, want tRCD", vs[0].Constraint)
	}
}

func TestValidateCatchesEarlyPrecharge(t *testing.T) {
	trace := []CommandTrace{
		{At: 0, Cmd: Command{Type: CmdACT, Loc: Location{Row: 5}}},
		{At: 10, Cmd: Command{Type: CmdPRE, Loc: Location{Row: 5}}}, // < tRAS (28)
	}
	slow := DDR4()
	vs := ValidateTrace(Default(), slow, slow.Fast(PaperFastScale()), false, trace)
	found := false
	for _, v := range vs {
		if v.Constraint == "tRAS" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tRAS violation not caught: %v", vs)
	}
}

func TestValidateCatchesWrongRowColumn(t *testing.T) {
	slow := DDR4()
	trace := []CommandTrace{
		{At: 0, Cmd: Command{Type: CmdACT, Loc: Location{Row: 5}}},
		{At: int64(slow.RCD), Cmd: Command{Type: CmdRD, Loc: Location{Row: 6}}},
	}
	vs := ValidateTrace(Default(), slow, slow.Fast(PaperFastScale()), false, trace)
	found := false
	for _, v := range vs {
		if v.Constraint == "row-open" {
			found = true
		}
	}
	if !found {
		t.Fatalf("row-open violation not caught: %v", vs)
	}
}

func TestValidateCatchesActOnOpenBank(t *testing.T) {
	slow := DDR4()
	trace := []CommandTrace{
		{At: 0, Cmd: Command{Type: CmdACT, Loc: Location{Row: 5}}},
		{At: 100, Cmd: Command{Type: CmdACT, Loc: Location{Row: 6}}},
	}
	vs := ValidateTrace(Default(), slow, slow.Fast(PaperFastScale()), false, trace)
	found := false
	for _, v := range vs {
		if v.Constraint == "bank-closed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("double activation not caught: %v", vs)
	}
}

func TestValidateCatchesRefWithOpenBank(t *testing.T) {
	slow := DDR4()
	trace := []CommandTrace{
		{At: 0, Cmd: Command{Type: CmdACT, Loc: Location{Row: 5}}},
		{At: 100, Cmd: Command{Type: CmdREF, Loc: Location{Rank: 0}}},
	}
	vs := ValidateTrace(Default(), slow, slow.Fast(PaperFastScale()), false, trace)
	found := false
	for _, v := range vs {
		if v.Constraint == "all-precharged" {
			found = true
		}
	}
	if !found {
		t.Fatalf("REF-with-open-bank not caught: %v", vs)
	}
}

func TestValidateCatchesFAW(t *testing.T) {
	slow := DDR4()
	var trace []CommandTrace
	// Five ACTs to five banks, 4 cycles apart: satisfies tRRD_S but
	// violates tFAW (20).
	for i := 0; i < 5; i++ {
		trace = append(trace, CommandTrace{
			At:  int64(i * 4),
			Cmd: Command{Type: CmdACT, Loc: Location{Group: i % 4, Bank: i / 4, Row: 1}},
		})
	}
	vs := ValidateTrace(Default(), slow, slow.Fast(PaperFastScale()), false, trace)
	found := false
	for _, v := range vs {
		if v.Constraint == "tFAW" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tFAW violation not caught: %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Constraint: "tRCD", At: 10, Prev: 5,
		Cmd: Command{Type: CmdRD, Loc: Location{Row: 3}}, Detail: "too early"}
	s := v.String()
	for _, want := range []string{"tRCD", "cycle 10", "too early"} {
		if !contains(s, want) {
			t.Errorf("violation string missing %q: %s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
