package dram

import "fmt"

// Timing holds the DRAM timing constraints in bus clock cycles (nCK).
// The names follow the JEDEC DDR4 standard. Only the parameters that
// influence command scheduling in this model are included.
type Timing struct {
	// Clock returns the bus clock period in nanoseconds (1.25 for
	// DDR4-1600). It converts between cycles and wall-clock time for
	// latency/energy reporting.
	ClockNS float64

	RCD  int // ACTIVATE to internal READ/WRITE delay
	RP   int // PRECHARGE to ACTIVATE delay
	RAS  int // ACTIVATE to PRECHARGE delay
	RC   int // ACTIVATE to ACTIVATE delay (same bank)
	CL   int // READ command to first data
	CWL  int // WRITE command to first data
	BL   int // burst length on the data bus in cycles (8 beats, DDR => 4)
	CCDS int // column-to-column, different bank group
	CCDL int // column-to-column, same bank group
	RRDS int // ACT-to-ACT, different bank group
	RRDL int // ACT-to-ACT, same bank group
	FAW  int // four-activate window per rank
	WR   int // write recovery: end of write data to PRECHARGE
	WTRS int // end of write data to READ, different bank group
	WTRL int // end of write data to READ, same bank group
	RTP  int // READ to PRECHARGE
	RTW  int // READ command to WRITE command turnaround
	REFI int // average refresh interval
	RFC  int // refresh cycle time

	// RELOC is the latency of one FIGARO column relocation through the
	// global row buffer. The paper's SPICE analysis gives 0.57 ns,
	// guard-banded to 1 ns, which rounds to one bus cycle at DDR4-1600.
	// The latency is independent of the distance between the source and
	// destination subarrays (Section 4.1).
	RELOC int

	// RBMHop is the LISA row-buffer-movement latency for relocating one
	// full row between two adjacent subarrays. Unlike RELOC, LISA's
	// relocation latency grows with the physical hop distance between the
	// source subarray and the nearest fast subarray (Section 3).
	RBMHop int
}

// DDR4 returns DDR4-1600-class timings (800 MHz bus clock) used throughout
// the paper's evaluation.
func DDR4() Timing {
	return Timing{
		ClockNS: 1.25,
		RCD:     11, // 13.75 ns
		RP:      11,
		RAS:     28, // 35 ns
		RC:      39,
		CL:      11,
		CWL:     9,
		BL:      4,
		CCDS:    4,
		CCDL:    5,
		RRDS:    4,
		RRDL:    5,
		FAW:     20,
		WR:      12, // 15 ns
		WTRS:    2,
		WTRL:    6,
		RTP:     6,
		RTW:     7, // CL - CWL + BL + 1 bus turnaround
		REFI:    6240,
		RFC:     208, // 260 ns
		RELOC:   1,   // 1 ns guard-banded FIGARO relocation
		RBMHop:  7,   // ~8.75 ns per LISA inter-subarray hop
	}
}

// FastScale are the multiplicative latency reductions a short-bitline fast
// subarray provides, from the LISA-VILLA SPICE model the paper reuses:
// tRCD -45.5%, tRP -38.2%, tRAS -62.9%.
type FastScale struct {
	RCD, RP, RAS float64
}

// PaperFastScale returns the reductions reported in Table 1.
func PaperFastScale() FastScale {
	return FastScale{RCD: 0.455, RP: 0.382, RAS: 0.629}
}

// Fast returns a copy of t with activation, precharge and restoration
// latencies reduced per s, as for rows held in a fast subarray. Derived
// parameters (tRC) are recomputed. Latencies never drop below one cycle.
func (t Timing) Fast(s FastScale) Timing {
	f := t
	f.RCD = scaleDown(t.RCD, s.RCD)
	f.RP = scaleDown(t.RP, s.RP)
	f.RAS = scaleDown(t.RAS, s.RAS)
	f.RC = f.RAS + f.RP
	return f
}

func scaleDown(v int, reduction float64) int {
	scaled := int(float64(v)*(1-reduction) + 0.5)
	if scaled < 1 {
		return 1
	}
	return scaled
}

// NS converts a cycle count to nanoseconds.
func (t Timing) NS(cycles int64) float64 { return float64(cycles) * t.ClockNS }

// Cycles converts nanoseconds to a cycle count, rounding up.
func (t Timing) Cycles(ns float64) int {
	c := int(ns / t.ClockNS)
	if float64(c)*t.ClockNS < ns {
		c++
	}
	return c
}

// ReadLatency returns the cycles from issuing READ to the last data beat.
func (t Timing) ReadLatency() int { return t.CL + t.BL }

// WriteLatency returns the cycles from issuing WRITE to the last data beat.
func (t Timing) WriteLatency() int { return t.CWL + t.BL }

// Validate reports an error if any constraint is non-positive or
// internally inconsistent.
func (t Timing) Validate() error {
	checks := []struct {
		name string
		v    int
	}{
		{"tRCD", t.RCD}, {"tRP", t.RP}, {"tRAS", t.RAS}, {"tRC", t.RC},
		{"tCL", t.CL}, {"tCWL", t.CWL}, {"tBL", t.BL},
		{"tCCD_S", t.CCDS}, {"tCCD_L", t.CCDL},
		{"tRRD_S", t.RRDS}, {"tRRD_L", t.RRDL}, {"tFAW", t.FAW},
		{"tWR", t.WR}, {"tWTR_S", t.WTRS}, {"tWTR_L", t.WTRL},
		{"tRTP", t.RTP}, {"tRTW", t.RTW}, {"tREFI", t.REFI}, {"tRFC", t.RFC},
		{"tRELOC", t.RELOC}, {"tRBM", t.RBMHop},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("dram: %s must be positive, got %d", c.name, c.v)
		}
	}
	if t.RC < t.RAS+t.RP {
		return fmt.Errorf("dram: tRC (%d) < tRAS+tRP (%d)", t.RC, t.RAS+t.RP)
	}
	if t.ClockNS <= 0 {
		return fmt.Errorf("dram: clock period must be positive, got %g", t.ClockNS)
	}
	return nil
}
