package dram

import (
	"fmt"

	"repro/internal/arena"
)

// Channel models one memory channel: its ranks, banks, the shared data
// bus, and the rank-level constraints (tRRD, tFAW, tCCD, tWTR, tRTW,
// refresh). The memory controller asks the channel when a command can
// issue and then issues it; the channel updates all affected timing
// windows.
type Channel struct {
	Geo  Geometry
	Slow Timing
	Fast Timing

	banks []Bank // dense: rank-major, then bank group, then bank

	// Rank-level state, indexed by rank.
	actTimes   [][]int64 // recent ACT issue cycles per rank, for tFAW
	lastACT    []int64   // last ACT per rank, for tRRD (conservative: _L)
	nextREF    []int64   // next refresh deadline per rank
	refPending []bool

	// Data-bus state: the kind and data-end cycle of the last column
	// command, for read/write turnaround penalties. Same-direction bursts
	// pipeline behind the CAS latency, so their spacing is governed by
	// tCCD, not by the full CL+BL.
	lastColType CmdType
	lastColEnd  int64 // last data beat cycle of the previous column burst

	// Column-to-column (tCCD) windows, kept at channel level instead of
	// being fanned out to every bank on each column issue: colReadyS is
	// the earliest next column anywhere in the channel (tCCD_S), and
	// colReadyL[rank*groups+group] the earliest within the last command's
	// bank group (tCCD_L).
	colReadyS int64
	colReadyL []int64

	// Trace, if enabled, records every issued command (tests/debugging).
	Trace        []CommandTrace //fglint:preserved debug-only command log; sim runs never enable it, so no checkpoint carries one
	TraceOn      bool
	NumREF       int64
	RelocBusy    int64 // bus cycles banks spent occupied by relocation work
	NumPSMBlocks int64 // blocks moved via RowClone-PSM (channel-blocking)
}

// NewChannel builds a channel for the geometry with the given slow/fast
// timing sets. allFast marks every subarray fast (LL-DRAM).
func NewChannel(geo Geometry, slow Timing, fast Timing, allFast bool) (*Channel, error) {
	return NewChannelIn(nil, geo, slow, fast, allFast)
}

// NewChannelIn is NewChannel with the bank array and per-rank timing
// registers (all pointer-free) carved out of a. A nil arena keeps plain
// allocations.
func NewChannelIn(a *arena.Arena, geo Geometry, slow Timing, fast Timing, allFast bool) (*Channel, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if err := slow.Validate(); err != nil {
		return nil, err
	}
	if err := fast.Validate(); err != nil {
		return nil, err
	}
	nBanks := geo.Ranks * geo.BanksPerRank()
	c := &Channel{Geo: geo, Slow: slow, Fast: fast}
	c.banks = arena.Slice[Bank](a, nBanks)
	for i := range c.banks {
		c.banks[i].Reset(geo, slow, fast, allFast)
	}
	c.actTimes = make([][]int64, geo.Ranks)
	c.lastACT = arena.Slice[int64](a, geo.Ranks)
	c.nextREF = arena.Slice[int64](a, geo.Ranks)
	c.refPending = arena.Slice[bool](a, geo.Ranks)
	c.colReadyL = arena.Slice[int64](a, geo.Ranks*geo.BankGroups)
	for r := range c.nextREF {
		c.nextREF[r] = int64(slow.REFI)
		c.lastACT[r] = -int64(slow.RRDL)
	}
	return c, nil
}

// Reset returns the channel to its freshly constructed state for the
// given geometry and latency layout, reusing every allocation (bank
// objects, ACT histories, tCCD windows). The bank count implied by geo
// must match the channel's existing shape — FastSubarrays may change
// between runs (preset geometry differences), the rank/bank dimensions
// may not.
func (c *Channel) Reset(geo Geometry, allFast bool) error {
	if err := geo.Validate(); err != nil {
		return err
	}
	if geo.Ranks*geo.BanksPerRank() != len(c.banks) || geo.Ranks != len(c.nextREF) ||
		geo.Ranks*geo.BankGroups != len(c.colReadyL) {
		return fmt.Errorf("dram: Reset geometry shape (%d ranks, %d banks) does not match channel (%d ranks, %d banks)",
			geo.Ranks, geo.Ranks*geo.BanksPerRank(), len(c.nextREF), len(c.banks))
	}
	c.Geo = geo
	for i := range c.banks {
		c.banks[i].Reset(geo, c.Slow, c.Fast, allFast)
	}
	for r := range c.nextREF {
		c.nextREF[r] = int64(c.Slow.REFI)
		c.lastACT[r] = -int64(c.Slow.RRDL)
		c.refPending[r] = false
		c.actTimes[r] = c.actTimes[r][:0]
	}
	c.colReadyS = 0
	for i := range c.colReadyL {
		c.colReadyL[i] = 0
	}
	c.lastColType = 0
	c.lastColEnd = 0
	c.Trace = c.Trace[:0]
	c.TraceOn = false
	c.NumREF = 0
	c.RelocBusy = 0
	c.NumPSMBlocks = 0
	return nil
}

// Bank returns the bank at a location.
func (c *Channel) Bank(loc Location) *Bank { return &c.banks[loc.BankID(c.Geo)] }

// BankByID returns the bank with the given dense index.
func (c *Channel) BankByID(id int) *Bank { return &c.banks[id] }

// NumBanks returns the number of banks in the channel.
func (c *Channel) NumBanks() int { return len(c.banks) }

// CanIssue reports whether cmd may issue at cycle now, and if not now, the
// earliest cycle at which the bank/rank/bus constraints would allow it.
// ok is false when the command is structurally impossible in the current
// state (e.g. RD to a closed row), regardless of time. The command is
// taken by pointer purely to keep the ~100-byte struct off the hot
// path's copy costs; it is never retained.
func (c *Channel) CanIssue(cmd *Command, now int64) (at int64, ok bool) {
	bank := c.Bank(cmd.Loc)
	switch cmd.Type {
	case CmdACT:
		at, ok = bank.CanACT(now)
		if !ok {
			return 0, false
		}
		at = maxI64(at, c.rankACTReady(cmd.Loc.Rank, now))
		return at, true
	case CmdPRE:
		return bank.CanPRE(now)
	case CmdRD:
		at, ok = bank.CanRD(now, cmd.Loc.CacheRow, cmd.Loc.Row)
		if !ok {
			return 0, false
		}
		at = c.colReady(at, &cmd.Loc)
		return c.busReady(at, CmdRD), true
	case CmdWR:
		at, ok = bank.CanWR(now, cmd.Loc.CacheRow, cmd.Loc.Row)
		if !ok {
			return 0, false
		}
		at = c.colReady(at, &cmd.Loc)
		return c.busReady(at, CmdWR), true
	case CmdREF:
		// All banks in the rank must be precharged.
		base := cmd.Loc.Rank * c.Geo.BanksPerRank()
		for i := 0; i < c.Geo.BanksPerRank(); i++ {
			b := &c.banks[base+i]
			if b.openRow != -1 {
				return 0, false
			}
			if t, _ := b.CanACT(now); t > now {
				now = t
			}
		}
		return now, true
	default:
		return 0, false
	}
}

// Issue issues cmd at cycle at (previously validated by CanIssue) and
// returns the cycle the command's effect completes: the last data beat for
// RD/WR, or the issue cycle for ACT/PRE/REF. Like CanIssue, the command
// pointer is never retained.
func (c *Channel) Issue(cmd *Command, at int64) int64 {
	if c.TraceOn {
		c.Trace = append(c.Trace, CommandTrace{At: at, Cmd: *cmd})
	}
	bank := c.Bank(cmd.Loc)
	switch cmd.Type {
	case CmdACT:
		bank.ACT(at, cmd.Loc.CacheRow, cmd.Loc.Row)
		c.noteACT(cmd.Loc.Rank, at)
		return at
	case CmdPRE:
		bank.PRE(at)
		return at
	case CmdRD:
		end := bank.RD(at)
		c.noteColumn(cmd, at, end)
		return end
	case CmdWR:
		end := bank.WR(at)
		c.noteColumn(cmd, at, end)
		return end
	case CmdREF:
		end := at + int64(c.Slow.RFC)
		base := cmd.Loc.Rank * c.Geo.BanksPerRank()
		for i := 0; i < c.Geo.BanksPerRank(); i++ {
			c.banks[base+i].Occupy(end)
		}
		c.refPending[cmd.Loc.Rank] = false
		c.nextREF[cmd.Loc.Rank] += int64(c.Slow.REFI)
		c.NumREF++
		return end
	default:
		panic(fmt.Sprintf("dram: Issue does not handle %v directly", cmd.Type))
	}
}

// CanColumn is CanIssue's CmdRD/CmdWR arm for a caller that already
// holds the resolved bank: same checks in the same order, minus the
// Command construction and bank re-lookup. The scheduler probes column
// candidates every tick, so the ~100-byte command build and the bank-ID
// multiply chain were pure per-tick overhead.
func (c *Channel) CanColumn(bank *Bank, loc *Location, isWrite bool, now int64) (at int64, ok bool) {
	if isWrite {
		at, ok = bank.CanWR(now, loc.CacheRow, loc.Row)
	} else {
		at, ok = bank.CanRD(now, loc.CacheRow, loc.Row)
	}
	if !ok {
		return 0, false
	}
	at = c.colReady(at, loc)
	if isWrite {
		return c.busReady(at, CmdWR), true
	}
	return c.busReady(at, CmdRD), true
}

// CanACTAt is CanIssue's CmdACT arm for a caller that already holds the
// resolved bank.
func (c *Channel) CanACTAt(bank *Bank, rank int, now int64) (int64, bool) {
	at, ok := bank.CanACT(now)
	if !ok {
		return 0, false
	}
	return maxI64(at, c.rankACTReady(rank, now)), true
}

// rankACTReady returns the earliest cycle an ACT can issue in a rank given
// tRRD and tFAW.
func (c *Channel) rankACTReady(rank int, now int64) int64 {
	at := maxI64(now, c.lastACT[rank]+int64(c.Slow.RRDL))
	hist := c.actTimes[rank]
	if len(hist) >= 4 {
		at = maxI64(at, hist[len(hist)-4]+int64(c.Slow.FAW))
	}
	return at
}

func (c *Channel) noteACT(rank int, at int64) {
	c.lastACT[rank] = at
	// Keep the last 8 ACT times, sliding in place so the history stops
	// allocating once it reaches capacity.
	hist := c.actTimes[rank]
	if len(hist) >= 8 {
		copy(hist, hist[len(hist)-7:])
		hist = hist[:7]
	}
	c.actTimes[rank] = append(hist, at)
}

// busReady returns the earliest cycle a column command of kind k can use
// the shared data bus: same-direction bursts pipeline (tCCD spacing,
// enforced bank-wide by noteColumn), while direction changes pay the
// write-to-read (tWTR) or read-to-write (tRTW) turnaround.
func (c *Channel) busReady(at int64, k CmdType) int64 {
	if c.lastColEnd > 0 {
		switch {
		case c.lastColType == CmdWR && k == CmdRD:
			// Write-to-read turnaround (conservatively tWTR_L).
			at = maxI64(at, c.lastColEnd+int64(c.Slow.WTRL))
		case c.lastColType == CmdRD && k == CmdWR:
			at = maxI64(at, c.lastColEnd+int64(c.Slow.RTW))
		}
	}
	return at
}

// noteColumn records data-bus occupancy and the column-to-column
// constraints (tCCD). We conservatively apply tCCD_L within the same
// bank group and tCCD_S across groups; colReady consults the windows at
// issue-check time, so nothing is fanned out per bank.
func (c *Channel) noteColumn(cmd *Command, at, end int64) {
	c.lastColType = cmd.Type
	c.lastColEnd = end
	if t := at + int64(c.Slow.CCDS); t > c.colReadyS {
		c.colReadyS = t
	}
	g := cmd.Loc.Rank*c.Geo.BankGroups + cmd.Loc.Group
	if t := at + int64(c.Slow.CCDL); t > c.colReadyL[g] {
		c.colReadyL[g] = t
	}
}

// colReady applies the channel-level tCCD windows to a column command's
// earliest issue cycle.
func (c *Channel) colReady(at int64, loc *Location) int64 {
	if c.colReadyS > at {
		at = c.colReadyS
	}
	if l := c.colReadyL[loc.Rank*c.Geo.BankGroups+loc.Group]; l > at {
		at = l
	}
	return at
}

// NextRefresh returns the earliest cycle at which RefreshDue will report
// a due refresh: zero if one is already pending, otherwise the nearest
// rank deadline. Refresh deadlines advance only when a REF issues, so the
// value is stable between refreshes and lets the run loop skip idle time.
func (c *Channel) NextRefresh() int64 {
	next := int64(1<<63 - 1)
	for r := range c.nextREF {
		if c.refPending[r] {
			return 0
		}
		if c.nextREF[r] < next {
			next = c.nextREF[r]
		}
	}
	return next
}

// RefreshDue reports whether a refresh is due for any rank at cycle now,
// and which rank.
func (c *Channel) RefreshDue(now int64) (rank int, due bool) {
	for r := range c.nextREF {
		if now >= c.nextREF[r] {
			c.refPending[r] = true
		}
		if c.refPending[r] {
			return r, true
		}
	}
	return 0, false
}

// --- FIGARO and LISA relocation primitives ------------------------------

// RelocCost returns the bank-occupancy cycles of a FIGARO relocation of
// blocks columns from an already-open source row into a destination row of
// the same bank, following Sections 4.1-4.2 and 8.1 of the paper:
//
//	n x RELOC (copy columns through the global row buffer)
//	ACTIVATE destination (overwrites the relocated columns)
//	PRECHARGE (fold tRP into the occupancy; the bank ends precharged)
//
// The first ACTIVATE of the source row is not counted: FIGCache triggers
// relocation while servicing the miss that already opened the row
// (Section 8.1). dstFast selects the destination row's latency class.
func (c *Channel) RelocCost(blocks int, dstCacheRow bool) int64 {
	dst := c.Slow
	if dstCacheRow && (c.Geo.FastSubarrays > 0) {
		dst = c.Fast
	}
	return int64(blocks*c.Slow.RELOC) + int64(dst.RCD) + int64(dst.RP)
}

// RelocStandaloneCost returns the occupancy of a relocation that must open
// the source row first (used for dirty-segment write-backs from the cache
// to the source row): ACT(src) + n x RELOC + ACT(dst) + PRE.
func (c *Channel) RelocStandaloneCost(blocks int, srcCacheRow, dstCacheRow bool) int64 {
	src, dst := c.Slow, c.Slow
	if srcCacheRow && c.Geo.FastSubarrays > 0 {
		src = c.Fast
	}
	if dstCacheRow && c.Geo.FastSubarrays > 0 {
		dst = c.Fast
	}
	return int64(src.RCD) + int64(blocks*c.Slow.RELOC) + int64(dst.RCD) + int64(dst.RP)
}

// Relocate occupies the bank at loc for cost cycles starting at cycle at
// and leaves the bank precharged, modelling an in-DRAM relocation burst.
// It returns the cycle the bank becomes available again.
func (c *Channel) Relocate(loc Location, at, cost int64, blocks int, isLISA bool, hops int) int64 {
	bank := c.Bank(loc)
	bank.ForceClose()
	end := at + cost
	bank.Occupy(end)
	c.RelocBusy += cost
	kind := CmdRELOC
	if isLISA {
		bank.NumRBMHops += int64(hops)
		kind = CmdRBM
	} else {
		bank.NumRELOC += int64(blocks)
	}
	if c.TraceOn {
		c.Trace = append(c.Trace, CommandTrace{At: at, End: end, Cmd: Command{Type: kind, Loc: loc}})
	}
	return end
}

// PSMCost returns the occupancy cycles of relocating blocks columns with
// RowClone-PSM (Section 10's related-work substrate): each block crosses
// the shared internal global data bus twice (source bank to an
// intermediate bank, then intermediate to destination, since source and
// destination share a bank), at one column transfer per tCCD_L, plus the
// activates and precharges of the three rows involved. Unlike FIGARO,
// this occupies the whole channel: the global data bus serves all banks.
func (c *Channel) PSMCost(blocks int, srcOpen bool) int64 {
	cost := int64(2 * blocks * c.Slow.CCDL)
	// Intermediate and destination activates plus the final precharge.
	cost += int64(2*c.Slow.RCD) + int64(c.Slow.RP)
	if !srcOpen {
		cost += int64(c.Slow.RCD)
	}
	return cost
}

// RelocateAll occupies every bank in the channel until at+cost: the
// RowClone-PSM relocation path, which monopolizes the global data bus and
// blocks memory requests to all banks (the bank-level-parallelism loss
// Section 10 describes). The source bank ends precharged.
func (c *Channel) RelocateAll(loc Location, at, cost int64, blocks int) int64 {
	end := at + cost
	c.Bank(loc).ForceClose()
	for i := range c.banks {
		c.banks[i].Occupy(end)
	}
	c.RelocBusy += cost
	c.NumPSMBlocks += int64(blocks)
	if c.TraceOn {
		c.Trace = append(c.Trace, CommandTrace{At: at, End: end, Cmd: Command{Type: CmdRELOC, Loc: loc}})
	}
	return end
}

// RBMCost returns the bank-occupancy cycles of a LISA-VILLA full-row
// relocation over the given number of inter-subarray hops:
// ACT(src) + hops x tRBM + PRE. The latency is distance-dependent, unlike
// FIGARO's RELOC (Section 3).
func (c *Channel) RBMCost(hops int, srcOpen bool) int64 {
	cost := int64(hops * c.Slow.RBMHop)
	if !srcOpen {
		cost += int64(c.Slow.RCD)
	}
	return cost + int64(c.Slow.RP)
}

// ResetStats clears all per-bank and channel counters (not timing state).
func (c *Channel) ResetStats() {
	for i := range c.banks {
		b := &c.banks[i]
		b.NumACT, b.NumACTFast, b.NumPRE, b.NumRD, b.NumWR = 0, 0, 0, 0, 0
		b.NumRELOC, b.NumRBMHops = 0, 0
		b.RowHits, b.RowMisses, b.RowConflict = 0, 0, 0
	}
	c.NumREF = 0
	c.RelocBusy = 0
	c.Trace = c.Trace[:0]
}

// Stats aggregates the per-bank counters of the channel.
type Stats struct {
	ACT, ACTFast, PRE, RD, WR, REF int64
	RELOC, RBMHops                 int64
	RowHits, RowMisses, RowConf    int64
	RelocBusy                      int64
}

// CollectStats sums counters across all banks.
func (c *Channel) CollectStats() Stats {
	var s Stats
	for i := range c.banks {
		b := &c.banks[i]
		s.ACT += b.NumACT
		s.ACTFast += b.NumACTFast
		s.PRE += b.NumPRE
		s.RD += b.NumRD
		s.WR += b.NumWR
		s.RELOC += b.NumRELOC
		s.RBMHops += b.NumRBMHops
		s.RowHits += b.RowHits
		s.RowMisses += b.RowMisses
		s.RowConf += b.RowConflict
	}
	s.REF = c.NumREF
	s.RelocBusy = c.RelocBusy
	return s
}

// RowBufferHitRate returns the fraction of column accesses that hit an
// already-open row.
func (s Stats) RowBufferHitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowConf
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}
