package harness

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/spice"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table1 renders the simulated system configuration (Table 1).
func (r *Runner) Table1() *stats.Table {
	geo := dram.Default()
	tm := dram.DDR4()
	fast := tm.Fast(dram.PaperFastScale())
	t := &stats.Table{
		Title:  "Table 1: simulated system configuration",
		Header: []string{"component", "configuration"},
	}
	t.AddRow("Processor", "8 cores, 3.2 GHz, 3-wide issue, 256-entry instruction window, 8 MSHRs/core")
	t.AddRow("Caches", "L1 4-way 64 kB, L2 8-way 256 kB, LLC 16-way 2 MB/core, 64 B blocks")
	t.AddRow("Memory controller", "64-entry RD/WR queues, FR-FCFS")
	t.AddRow("DRAM", fmt.Sprintf("DDR4-1600 (%.2f ns clock), 1 rank, %d bank groups x %d banks, %d subarrays/bank",
		tm.ClockNS, geo.BankGroups, geo.BanksPerGroup, geo.SubarraysPerBank))
	t.AddRow("", fmt.Sprintf("%d kB rows, %.0f GB/channel; 1 channel (1-core) / 4 channels (8-core)",
		geo.RowBytes/1024, float64(geo.ChannelBytes())/(1<<30)))
	t.AddRow("Address mapping", "{row, rank, bankgroup, bank, channel, column}")
	t.AddRow("FIGARO", fmt.Sprintf("RELOC granularity 64 B (rank), latency %d ns", tm.RELOC))
	t.AddRow("FIGCache", fmt.Sprintf("segment 1 kB (16 blocks, 1/8 row), 64 cache rows/bank; fast subarray tRCD/tRP/tRAS %d/%d/%d (vs %d/%d/%d)",
		fast.RCD, fast.RP, fast.RAS, tm.RCD, tm.RP, tm.RAS))
	t.AddRow("LISA-VILLA", "512 cache rows/bank, 16 interleaved fast subarrays")
	return t
}

// Table2 runs every single-core application on Base and classifies it by
// LLC MPKI, reproducing Table 2's memory-intensity split.
func (r *Runner) Table2() (*stats.Table, error) {
	mixes := r.singleWorkloads()
	res, err := r.runMatrix(nil, mixes)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "Table 2: benchmark classification by LLC MPKI (measured on Base)",
		Header: []string{"benchmark", "paper class", "measured MPKI", "measured class", "match"},
	}
	matches := 0
	for _, mix := range mixes {
		mpki := res.of(r.baseConfig(sim.Base, mix)).LLCMPKI()
		paperClass := "non-intensive"
		if mix.Apps[0].MemIntensive() {
			paperClass = "intensive"
		}
		measured := "non-intensive"
		if mpki > 10 {
			measured = "intensive"
		}
		match := "yes"
		if measured != paperClass {
			match = "NO"
		} else {
			matches++
		}
		t.AddRow(mix.Name, paperClass, stats.F(mpki, 1), measured, match)
	}
	t.AddNote("paper threshold: 10 LLC misses per kilo-instruction; %d/%d match", matches, len(mixes))
	return t, nil
}

// Fig5 reproduces Figure 5: the RELOC bitline transient and the derived
// timing parameter.
func (r *Runner) Fig5() (*stats.Table, error) {
	p := spice.DefaultRelocParams()
	trace, nominal, err := spice.Transient(p)
	if err != nil {
		return nil, err
	}
	worst, err := spice.MonteCarlo(p, r.scale.MCIterations, 0.05, 1)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "Figure 5: RELOC bitline transient (source holds logic 1)",
		Header: []string{"time (ns)", "src bitline (V)", "dst bitline (V)"},
	}
	step := len(trace) / 12
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(trace); i += step {
		pt := trace[i]
		t.AddRow(stats.F(pt.TimeNS, 3), stats.F(pt.SrcV, 3), stats.F(pt.DstV, 3))
	}
	last := trace[len(trace)-1]
	t.AddRow(stats.F(last.TimeNS, 3), stats.F(last.SrcV, 3), stats.F(last.DstV, 3))
	t.AddNote("nominal settle %.3f ns; Monte-Carlo worst case (%d iters, +/-5%%) %.3f ns",
		nominal, r.scale.MCIterations, worst)
	t.AddNote("guardbanded RELOC latency: %.1f ns (paper: 0.57 ns worst case -> 1 ns with 43%% guardband)",
		spice.GuardbandedLatencyNS(worst))
	return t, nil
}

// Sec42 reproduces the Section 4.2 latency/energy analysis.
func (r *Runner) Sec42() *stats.Table {
	tm := dram.DDR4()
	t := &stats.Table{
		Title:  "Section 4.2: RELOC latency and energy analysis",
		Header: []string{"quantity", "modelled", "paper"},
	}
	standalone := spice.StandaloneRelocNS(tm.NS(int64(tm.RAS)), tm.NS(int64(tm.RCD)), tm.NS(int64(tm.RP)), float64(tm.RELOC))
	t.AddRow("RELOC timing parameter", "1 ns", "1 ns")
	t.AddRow("standalone 1-column relocation (ACT+RELOC+ACT+PRE)",
		stats.F(standalone, 1)+" ns", "63.5 ns")
	t.AddRow("one-block rank-level relocation energy",
		fmt.Sprintf("%.3f uJ", energy.RelocOpJ(energy.DefaultParams())*1e6), "0.03 uJ")
	return t
}

// Sec83 reproduces the Section 8.3 hardware-overhead analysis.
func (r *Runner) Sec83() (*stats.Table, error) {
	p := spice.DefaultOverheadParams()
	geo := dram.Default()
	geo.FastSubarrays = 2
	fig := spice.ComputeFIGAROOverhead(p, geo)
	fts, err := spice.ComputeFTSOverhead(dram.Default(), 64, 16, 5)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "Section 8.3: hardware overhead",
		Header: []string{"item", "modelled", "paper"},
	}
	t.AddRow("FIGARO per-subarray additions (col MUX + row MUX + latch)",
		fmt.Sprintf("%.1f um^2, %.1f uW", fig.PerSubarrayAreaUM2, fig.PerSubarrayPowerUW),
		"58.7 um^2, 29.6 uW")
	t.AddRow("FIGARO chip area overhead", stats.F(fig.ChipAreaPercent, 2)+"%", "<0.3%")
	t.AddRow("FIGCache-Fast fast-subarray area",
		stats.F(spice.CacheAreaOverheadPercent(p, dram.Default(), 2), 2)+"%", "0.7%")
	t.AddRow("LISA-VILLA fast-subarray area",
		stats.F(spice.CacheAreaOverheadPercent(p, dram.Default(), 16), 2)+"%", "5.6%")
	t.AddRow("FTS storage per channel",
		fmt.Sprintf("%.1f kB (%d-bit tag, %d-bit entries, %d entries)",
			fts.TotalKB, fts.TagBits, fts.EntryBits, fts.EntriesPerCh),
		"26.0 kB (19-bit tag, 26-bit entries)")
	return t, nil
}

// Multithreaded runs the three multithreaded applications (Section 8.1's
// 16.8% average improvement claim) on Base and FIGCache-Fast.
func (r *Runner) Multithreaded() (*stats.Table, error) {
	// SharedFootprint is part of the fingerprint, so the multithreaded
	// runs can never collide with same-mix multiprogrammed ones.
	mtConfig := func(p sim.Preset, mix workload.Mix) sim.Config {
		cfg := r.baseConfig(p, mix)
		cfg.SharedFootprint = true
		return cfg
	}
	var jobs []sim.Config
	mixes := workload.MultithreadedWorkloads()
	for _, mix := range mixes {
		for _, p := range []sim.Preset{sim.Base, sim.FIGCacheFast} {
			jobs = append(jobs, mtConfig(p, mix))
		}
	}
	res, err := r.runAll(jobs)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "Multithreaded applications: FIGCache-Fast speedup over Base",
		Header: []string{"application", "speedup"},
	}
	var sps []float64
	for _, mix := range mixes {
		base := res.of(mtConfig(sim.Base, mix))
		fast := res.of(mtConfig(sim.FIGCacheFast, mix))
		sp := fast.WeightedSpeedupOver(base)
		sps = append(sps, sp)
		t.AddRow(mix.Name, stats.F(sp, 3))
	}
	t.AddRow("mean", stats.F(stats.Mean(sps), 3))
	t.AddNote("paper: +16.8%% average over Base")
	return t, nil
}
