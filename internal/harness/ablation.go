package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Ablations evaluates the design choices DESIGN.md calls out, beyond the
// paper's own sensitivity studies:
//
//   - deferred versus immediate relocation execution: the controller
//     delays insertion RELOC bursts to row-close time so queued row hits
//     are preserved (Section 8.1's latency argument); the ablation runs
//     the naive execute-at-miss policy for comparison;
//   - the idle-flush quiet window: how long a bank must be idle before
//     deferred relocation work may use it;
//   - the relocation substrate: FIGARO (bank-local, distance-independent)
//     versus RowClone-PSM (Section 10's related-work mechanism, which
//     copies over the shared global data bus and blocks all banks in the
//     channel for the duration).
func (r *Runner) Ablations() (*stats.Table, error) {
	singles := r.singleWorkloads()
	eights := r.eightCoreMixes()
	mixes := append(append([]workload.Mix{}, singles...), eights...)

	type variant struct {
		name   string
		mutate func(*sim.Config)
	}
	variants := []variant{
		{"deferred (default)", func(c *sim.Config) {}},
		{"immediate reloc", func(c *sim.Config) { c.ImmediateReloc = true }},
		{"RowClone-PSM", func(c *sim.Config) {
			fig := core.DefaultFIGCacheConfig()
			fig.Substrate = core.SubstrateRowClonePSM
			c.FIG = &fig
		}},
	}

	// variantConfig deterministically rebuilds each ablation's config, so
	// the same call serves as job builder and result lookup (mutations are
	// fingerprinted by value).
	variantConfig := func(v variant, mix workload.Mix) sim.Config {
		cfg := r.baseConfig(sim.FIGCacheFast, mix)
		v.mutate(&cfg)
		return cfg
	}
	var jobs []sim.Config
	for _, mix := range mixes {
		jobs = append(jobs, r.baseConfig(sim.Base, mix))
		for _, v := range variants {
			jobs = append(jobs, variantConfig(v, mix))
		}
	}
	res, err := r.runAll(jobs)
	if err != nil {
		return nil, err
	}

	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	t := &stats.Table{
		Title:  "Ablation: relocation execution policy (FIGCache-Fast weighted speedup over Base)",
		Header: append([]string{"workload group"}, names...),
	}
	group := func(name string, ms []workload.Mix) {
		row := []string{name}
		for _, v := range variants {
			var vals []float64
			for _, m := range ms {
				base := res.of(r.baseConfig(sim.Base, m))
				run := res.of(variantConfig(v, m))
				vals = append(vals, run.WeightedSpeedupOver(base))
			}
			row = append(row, stats.F(stats.Mean(vals), 3))
		}
		t.AddRow(row...)
	}
	var nonInt, intens []workload.Mix
	for _, m := range singles {
		if m.Apps[0].MemIntensive() {
			intens = append(intens, m)
		} else {
			nonInt = append(nonInt, m)
		}
	}
	group("1-core non-intensive", nonInt)
	group("1-core intensive", intens)
	for _, pct := range []int{25, 50, 75, 100} {
		group(fmt.Sprintf("8-core %d%%", pct), workload.MixesByCategory(eights, pct))
	}
	t.AddNote("deferring relocation to row close preserves queued row hits (Section 8.1); immediate execution steals them")
	return t, nil
}
