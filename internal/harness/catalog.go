package harness

import (
	"fmt"

	"repro/internal/stats"
)

// Experiment is one named entry of the experiment catalog: a paper
// artifact (table or figure) and the builder that renders it.
type Experiment struct {
	Name string
	Run  func() (*stats.Table, error)
}

// Catalog returns the paper's experiment set in canonical order —
// every artifact figbench can render without extra input. The custom
// experiment is not included: it needs user-supplied workloads, so the
// CLIs append it themselves. The distributed dispatch protocol names
// experiments by these strings, so coordinator and workers resolve the
// same names to the same builders.
func (r *Runner) Catalog() []Experiment {
	return []Experiment{
		{"table1", func() (*stats.Table, error) { return r.Table1(), nil }},
		{"table2", r.Table2},
		{"fig5", r.Fig5},
		{"fig7", r.Fig7},
		{"fig8", r.Fig8},
		{"fig9", r.Fig9},
		{"fig10", r.Fig10},
		{"fig11", r.Fig11},
		{"fig12", r.Fig12},
		{"fig13", r.Fig13},
		{"fig14", r.Fig14},
		{"fig15", r.Fig15},
		{"sec42", func() (*stats.Table, error) { return r.Sec42(), nil }},
		{"sec83", r.Sec83},
		{"multithreaded", r.Multithreaded},
		{"ablation", r.Ablations},
	}
}

// SelectExperiments resolves experiment names to their builders, in
// catalog order and deduplicated, so any permutation of the same name
// set selects the identical builder sequence (and therefore enumerates
// the identical job matrix and stamps the identical manifest). The
// returned names are the canonical form of the selection. Unknown names
// are an error listing the catalog — a coordinator and a worker built
// from different binaries must fail loudly, not diverge silently.
func (r *Runner) SelectExperiments(names []string) ([]string, []func() (*stats.Table, error), error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var canonical []string
	var out []func() (*stats.Table, error)
	for _, e := range r.Catalog() {
		if want[e.Name] {
			canonical = append(canonical, e.Name)
			out = append(out, e.Run)
			delete(want, e.Name)
		}
	}
	if len(want) > 0 {
		// Deterministic report: names in catalog order are gone, so only
		// unknown ones remain; list them in the caller's order.
		for _, n := range names {
			if want[n] {
				return nil, nil, fmt.Errorf("harness: unknown experiment %q (catalog: %s)", n, catalogNames(r))
			}
		}
	}
	return canonical, out, nil
}

// catalogNames renders the catalog's names for error messages.
func catalogNames(r *Runner) string {
	s := ""
	for i, e := range r.Catalog() {
		if i > 0 {
			s += " "
		}
		s += e.Name
	}
	return s
}
