package harness

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func sampledBaseConfig(t *testing.T) sim.Config {
	t.Helper()
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	return sim.DefaultConfig(sim.FIGCacheFast, workload.Mix{Name: "mcf", Apps: workload.Sources(spec)})
}

func TestRunSampled(t *testing.T) {
	cfg := sampledBaseConfig(t)
	spec := SampledSpec{FastForward: 10_000, Warmup: 5_000, Measure: 15_000}
	res, err := RunSampled(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	// The cycle-skipping engine may overshoot the warm-up boundary by a
	// batched bubble run, shaving the overshoot off the window; allow a
	// small tolerance but catch a grossly wrong phase split.
	if res.WindowInsts < spec.Measure*9/10 {
		t.Errorf("measurement window retired %d insts, want about %d", res.WindowInsts, spec.Measure)
	}
	if res.WindowCycles <= 0 || res.WindowIPC() <= 0 {
		t.Errorf("degenerate window: %d cycles, IPC %.4f", res.WindowCycles, res.WindowIPC())
	}

	// Sampling is observationally invisible: the full-run statistics
	// must be bit-identical to an unsampled run of the same config.
	sys, err := sim.New(res.Config)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Full, plain) {
		t.Errorf("sampled full-run stats diverge from unsampled run:\n  sampled: %+v\nunsampled: %+v", res.Full, plain)
	}

	// The fast-forward checkpoint is a valid resume point: a fresh
	// System restored from it finishes to the same result.
	resumed, err := sim.New(res.Config)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(bytes.NewReader(res.Checkpoint)); err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, plain) {
		t.Errorf("run resumed from the fast-forward checkpoint diverges:\n want: %+v\n  got: %+v", plain, got)
	}
}

func TestRunSampledRejectsBadSpec(t *testing.T) {
	cfg := sampledBaseConfig(t)
	if _, err := RunSampled(cfg, SampledSpec{Measure: 0}); err == nil {
		t.Error("zero measure window accepted, want error")
	}
	if _, err := RunSampled(cfg, SampledSpec{FastForward: -1, Measure: 100}); err == nil {
		t.Error("negative fast-forward accepted, want error")
	}
}

// BenchmarkSnapshotRoundTrip measures the cost of one checkpoint cycle
// — serializing a warm DefaultScale system and restoring it in place —
// plus its allocation footprint and snapshot size.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig(sim.FIGCacheFast, workload.Mix{Name: "mcf", Apps: workload.Sources(spec)})
	cfg.TargetInsts = DefaultScale().Insts
	sys, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys.RunUntilRetired(cfg.TargetInsts / 4) // warm every structure first
	var buf bytes.Buffer
	if err := sys.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(buf.Len()), "snapshot-bytes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := sys.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
		if err := sys.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}
