package harness

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/expcache"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testRunner(t *testing.T) (*Runner, sim.Config) {
	t.Helper()
	r := NewRunner(Scale{Insts: 2_000, SingleApps: 1, MixesPerCategory: 1, MCIterations: 10, Parallelism: 1})
	return r, testConfig(t, "mcf")
}

// testConfig builds a tiny single-core Base run whose mix carries the
// given name (the name shows up in failure reports via Config.Describe).
func testConfig(t *testing.T, mixName string) sim.Config {
	t.Helper()
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.Mix{Name: mixName, Apps: workload.Sources(spec)}
	cfg := sim.DefaultConfig(sim.Base, mix)
	cfg.TargetInsts = 2_000
	return cfg
}

// TestRunAllCachesSuccessesOnError verifies that completed runs survive a
// failing sibling job, so retries do not recompute them.
func TestRunAllCachesSuccessesOnError(t *testing.T) {
	r, good := testRunner(t)
	bad := good
	bad.TargetInsts = -1 // rejected by sim.New

	out, err := r.runAll([]sim.Config{good, bad})
	if err == nil {
		t.Fatal("runAll accepted an invalid config")
	}
	if out != nil {
		t.Errorf("runAll returned results alongside an error: %v", out)
	}
	cached, ok := r.cache.Get(good.Fingerprint())
	if !ok {
		t.Fatal("successful run was not cached when a sibling job failed")
	}

	// The retry must be served from the cache: no new simulated cycles.
	cyclesBefore := r.SimCycles()
	out2, err := r.runAll([]sim.Config{good})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out2.of(good), cached) {
		t.Error("retry returned a different result than the cached run")
	}
	if r.SimCycles() != cyclesBefore {
		t.Errorf("retry recomputed a cached run (sim cycles %d -> %d)", cyclesBefore, r.SimCycles())
	}
}

// TestRunAllReportsAllFailures verifies that a batch with several broken
// jobs reports every failed run, not just the first error the worker
// pool happened to hit.
func TestRunAllReportsAllFailures(t *testing.T) {
	r, _ := testRunner(t)
	good := testConfig(t, "ok-mix")
	badTarget := testConfig(t, "bad-target")
	badTarget.TargetInsts = -1 // rejected by sim.New
	badMix := testConfig(t, "bad-mix")
	badMix.Mix.Apps = nil // rejected by sim.New for a different reason

	_, err := r.runAll([]sim.Config{badTarget, good, badMix})
	if err == nil {
		t.Fatal("runAll accepted a batch with two invalid configs")
	}
	msg := err.Error()
	for _, want := range []string{"bad-target", "bad-mix", "2 of 3 jobs failed"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
	if strings.Contains(msg, "ok-mix") {
		t.Errorf("error %q implicates the successful job", msg)
	}
	// The successful sibling must still have been cached.
	if _, cached := r.cache.Get(good.Fingerprint()); !cached {
		t.Error("successful run was not cached alongside two failures")
	}
}

// TestRunAllDedupsJobs verifies that identical configurations in one
// batch are computed once (fingerprint dedup replaced the old string
// keys, so equality is semantic, not syntactic).
func TestRunAllDedupsJobs(t *testing.T) {
	r, cfg := testRunner(t)
	// The dense-loop twin must dedup against the skipping-engine config:
	// both engines produce bit-identical results, so DenseLoop is
	// deliberately outside the fingerprint.
	twin := cfg
	twin.DenseLoop = true
	out, err := r.runAll([]sim.Config{cfg, cfg, twin})
	if err != nil {
		t.Fatal(err)
	}
	res := out.of(cfg)
	if res.Cycles == 0 {
		t.Fatal("no result for deduplicated config")
	}
	// SimCycles counts each computed run once; duplicates served from the
	// same computation contribute exactly one run's cycles.
	if got := r.SimCycles(); got != res.Cycles {
		t.Errorf("sim cycles = %d, want %d (one computation for three identical jobs)", got, res.Cycles)
	}
}

// TestRunAllReusesSystems verifies the solo reuse path end to end: a
// single-worker batch of same-shape jobs constructs one System and
// Reset-reuses it for every subsequent run, and the reused results are
// identical to fresh ones. Gangs are disabled — these three jobs share a
// workload and would otherwise execute as one gang (see
// TestRunAllGangExecution).
func TestRunAllReusesSystems(t *testing.T) {
	r, _ := testRunner(t)
	r.SetGangEnabled(false)
	var jobs []sim.Config
	for _, p := range []sim.Preset{sim.Base, sim.FIGCacheFast, sim.LISAVilla} {
		cfg := testConfig(t, "mcf")
		cfg.Preset = p
		jobs = append(jobs, cfg)
	}
	out, err := r.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.SystemsBuilt(); got != 1 {
		t.Errorf("built %d Systems for 3 same-shape jobs on 1 worker, want 1", got)
	}
	if got := r.SystemsReused(); got != 2 {
		t.Errorf("reused %d Systems, want 2", got)
	}
	// Each reused run must match a cold runner's result bit for bit.
	for i, cfg := range jobs {
		fresh, ferr := NewRunner(Scale{Insts: 2_000, Parallelism: 1}).runAll([]sim.Config{cfg})
		if ferr != nil {
			t.Fatal(ferr)
		}
		if !reflect.DeepEqual(out.of(cfg), fresh.of(cfg)) {
			t.Errorf("job %d (%s): reused-System result differs from cold run", i, cfg.Describe())
		}
	}
}

// TestRunAllGangExecution verifies the gang path end to end: same-
// workload jobs execute as one gang (counted by GangsFormed/GangedRuns),
// a different-workload sibling stays solo and reuses a gang member's
// System afterwards, and every result is bit-identical to a gang-
// disabled runner's.
func TestRunAllGangExecution(t *testing.T) {
	row := func() []sim.Config {
		var jobs []sim.Config
		for _, p := range []sim.Preset{sim.Base, sim.FIGCacheFast, sim.LISAVilla} {
			cfg := testConfig(t, "mcf")
			cfg.Preset = p
			jobs = append(jobs, cfg)
		}
		odd := testConfig(t, "odd-one-out")
		odd.Seed = 99 // different stream: must not join the row's gang
		return append(jobs, odd)
	}

	r, _ := testRunner(t)
	out, err := r.runAll(row())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.GangsFormed(); got != 1 {
		t.Errorf("formed %d gangs, want 1", got)
	}
	if got := r.GangedRuns(); got != 3 {
		t.Errorf("%d runs executed ganged, want 3", got)
	}
	// One worker: the gang builds three Systems, the solo job then
	// Reset-reuses one of them.
	if got := r.SystemsBuilt(); got != 3 {
		t.Errorf("built %d Systems, want 3", got)
	}
	if got := r.SystemsReused(); got != 1 {
		t.Errorf("reused %d Systems, want 1", got)
	}

	solo, _ := testRunner(t)
	solo.SetGangEnabled(false)
	want, err := solo.runAll(row())
	if err != nil {
		t.Fatal(err)
	}
	if solo.GangsFormed() != 0 || solo.GangedRuns() != 0 {
		t.Errorf("gang-disabled runner reported gangs (%d formed, %d runs)",
			solo.GangsFormed(), solo.GangedRuns())
	}
	for _, cfg := range row() {
		if !reflect.DeepEqual(out.of(cfg), want.of(cfg)) {
			t.Errorf("%s: gang result differs from solo result", cfg.Describe())
		}
	}
}

// TestRunnerWarmDiskCache verifies incremental reruns across processes:
// a second Runner over the same cache directory recomputes nothing and
// renders the identical table.
func TestRunnerWarmDiskCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix in -short mode")
	}
	dir := t.TempDir()
	scale := Scale{Insts: 10_000, SingleApps: 2, MixesPerCategory: 1, MCIterations: 10, Parallelism: 1}

	cold := NewRunnerWithCache(scale, expcache.New(dir), false)
	coldTab, err := cold.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheStats().DiskHits != 0 {
		t.Errorf("cold pass reported disk hits: %+v", cold.CacheStats())
	}

	warm := NewRunnerWithCache(scale, expcache.New(dir), false)
	warmTab, err := warm.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.SimCycles(); got != 0 {
		t.Errorf("warm pass simulated %d cycles, want 0 (all runs cache-served)", got)
	}
	st := warm.CacheStats()
	if st.Misses != 0 || st.DiskHits == 0 {
		t.Errorf("warm pass stats = %+v, want 0 misses and >0 disk hits", st)
	}
	if coldTab.Render() != warmTab.Render() {
		t.Errorf("warm table differs from cold table:\ncold:\n%s\nwarm:\n%s",
			coldTab.Render(), warmTab.Render())
	}

	// -force bypasses the warm tier: everything is recomputed...
	forced := NewRunnerWithCache(scale, expcache.New(dir), true)
	forcedTab, err := forced.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if forced.SimCycles() == 0 {
		t.Error("forced pass simulated nothing; -force did not bypass the disk tier")
	}
	// ...to the identical result (determinism), which is rewritten.
	if forcedTab.Render() != coldTab.Render() {
		t.Error("forced recomputation produced a different table")
	}
}
