package harness

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func testRunner(t *testing.T) (*Runner, sim.Config) {
	t.Helper()
	r := NewRunner(Scale{Insts: 2_000, SingleApps: 1, MixesPerCategory: 1, MCIterations: 10, Parallelism: 1})
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.Mix{Name: "mcf", Apps: []workload.BenchSpec{spec}}
	return r, r.baseConfig(sim.Base, mix)
}

// TestRunAllCachesSuccessesOnError verifies that completed runs survive a
// failing sibling job, so retries do not recompute them.
func TestRunAllCachesSuccessesOnError(t *testing.T) {
	r, good := testRunner(t)
	bad := good
	bad.TargetInsts = -1 // rejected by sim.New

	out, err := r.runAll([]job{{key: "good", cfg: good}, {key: "bad", cfg: bad}})
	if err == nil {
		t.Fatal("runAll accepted an invalid config")
	}
	if out != nil {
		t.Errorf("runAll returned results alongside an error: %v", out)
	}
	r.mu.Lock()
	cached, ok := r.cache["good"]
	r.mu.Unlock()
	if !ok {
		t.Fatal("successful run was not cached when a sibling job failed")
	}

	// The retry must be served from the cache: no new simulated cycles.
	cyclesBefore := r.SimCycles()
	out2, err := r.runAll([]job{{key: "good", cfg: good}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out2["good"], cached) {
		t.Error("retry returned a different result than the cached run")
	}
	if r.SimCycles() != cyclesBefore {
		t.Errorf("retry recomputed a cached run (sim cycles %d -> %d)", cyclesBefore, r.SimCycles())
	}
}

// TestRunAllReportsAllFailures verifies that a batch with several broken
// jobs reports every failed key, not just the first error the worker
// pool happened to hit.
func TestRunAllReportsAllFailures(t *testing.T) {
	r, good := testRunner(t)
	badTarget := good
	badTarget.TargetInsts = -1 // rejected by sim.New
	badMix := good
	badMix.Mix.Apps = nil // rejected by sim.New for a different reason

	_, err := r.runAll([]job{
		{key: "bad-target", cfg: badTarget},
		{key: "ok", cfg: good},
		{key: "bad-mix", cfg: badMix},
	})
	if err == nil {
		t.Fatal("runAll accepted a batch with two invalid configs")
	}
	msg := err.Error()
	for _, want := range []string{"bad-target", "bad-mix", "2 of 3 jobs failed"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
	if strings.Contains(msg, "ok:") {
		t.Errorf("error %q implicates the successful job", msg)
	}
	// The successful sibling must still have been cached.
	r.mu.Lock()
	_, cached := r.cache["ok"]
	r.mu.Unlock()
	if !cached {
		t.Error("successful run was not cached alongside two failures")
	}
}

// TestRunAllDedupsJobs verifies that duplicate keys in one batch are
// computed once.
func TestRunAllDedupsJobs(t *testing.T) {
	r, cfg := testRunner(t)
	out, err := r.runAll([]job{{key: "k", cfg: cfg}, {key: "k", cfg: cfg}, {key: "k", cfg: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := out["k"]
	if !ok {
		t.Fatal("no result for deduplicated key")
	}
	// SimCycles counts each computed run once; duplicates served from the
	// same computation contribute exactly one run's cycles.
	if got := r.SimCycles(); got != res.Cycles {
		t.Errorf("sim cycles = %d, want %d (one computation for three identical jobs)", got, res.Cycles)
	}
}
