package harness

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// perfPresets are the configurations plotted in Figures 7 and 8.
var perfPresets = []sim.Preset{
	sim.LISAVilla, sim.FIGCacheSlow, sim.FIGCacheFast, sim.FIGCacheIdeal, sim.LLDRAM,
}

// runMatrix runs every (preset, mix) pair of the given sets, always
// including Base for normalization.
func (r *Runner) runMatrix(presets []sim.Preset, mixes []workload.Mix) (results, error) {
	var jobs []sim.Config
	all := append([]sim.Preset{sim.Base}, presets...)
	for _, mix := range mixes {
		for _, p := range all {
			jobs = append(jobs, r.baseConfig(p, mix))
		}
	}
	return r.runAll(jobs)
}

// Fig7 reproduces Figure 7: single-thread application speedups over Base,
// grouped by memory intensity, for every caching configuration.
func (r *Runner) Fig7() (*stats.Table, error) {
	mixes := r.singleWorkloads()
	res, err := r.runMatrix(perfPresets, mixes)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "Figure 7: single-thread speedup over Base",
		Header: append([]string{"app", "class"}, presetNames(perfPresets)...),
	}
	groupSpeedups := map[string]map[sim.Preset][]float64{
		"intensive": make(map[sim.Preset][]float64), "non-intensive": make(map[sim.Preset][]float64),
	}
	for _, mix := range mixes {
		base := res.of(r.baseConfig(sim.Base, mix))
		class := "non-intensive"
		if mix.Apps[0].MemIntensive() {
			class = "intensive"
		}
		row := []string{mix.Name, class}
		for _, p := range perfPresets {
			sp := stats.Speedup(base.Cores[0].IPC, res.of(r.baseConfig(p, mix)).Cores[0].IPC)
			groupSpeedups[class][p] = append(groupSpeedups[class][p], sp)
			row = append(row, stats.F(sp, 3))
		}
		t.AddRow(row...)
	}
	for _, class := range []string{"non-intensive", "intensive"} {
		row := []string{"geomean", class}
		for _, p := range perfPresets {
			row = append(row, stats.F(stats.GeoMean(groupSpeedups[class][p]), 3))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: memory-intensive FIGCache-Fast avg +16.1%% (up to +22.5%%); non-intensive +1.5%%")
	return t, nil
}

// Fig8 reproduces Figure 8: eight-core weighted speedup over Base per
// memory-intensity category.
func (r *Runner) Fig8() (*stats.Table, error) {
	mixes := r.eightCoreMixes()
	res, err := r.runMatrix(perfPresets, mixes)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "Figure 8: eight-core weighted speedup over Base",
		Header: append([]string{"category"}, presetNames(perfPresets)...),
	}
	perCat := make(map[int]map[sim.Preset][]float64)
	var allCats map[sim.Preset][]float64 = make(map[sim.Preset][]float64)
	for _, mix := range mixes {
		base := res.of(r.baseConfig(sim.Base, mix))
		if perCat[mix.IntensivePercent] == nil {
			perCat[mix.IntensivePercent] = make(map[sim.Preset][]float64)
		}
		for _, p := range perfPresets {
			ws := res.of(r.baseConfig(p, mix)).WeightedSpeedupOver(base)
			perCat[mix.IntensivePercent][p] = append(perCat[mix.IntensivePercent][p], ws)
			allCats[p] = append(allCats[p], ws)
		}
	}
	for _, pct := range []int{25, 50, 75, 100} {
		row := []string{fmt.Sprintf("%d%% intensive", pct)}
		for _, p := range perfPresets {
			row = append(row, stats.F(stats.Mean(perCat[pct][p]), 3))
		}
		t.AddRow(row...)
	}
	row := []string{"all 20 mixes"}
	for _, p := range perfPresets {
		row = append(row, stats.F(stats.Mean(allCats[p]), 3))
	}
	t.AddRow(row...)
	t.AddNote("paper: FIGCache-Fast avg +16.3%% over Base (3.9/12.9/21.8/27.1%% per category), +4.7%% over LISA-VILLA")
	return t, nil
}

// cachePresets are the configurations of Figures 9 and 10.
var cachePresets = []sim.Preset{sim.LISAVilla, sim.FIGCacheSlow, sim.FIGCacheFast}

// hitRateTable builds Figures 9/10 from a per-result metric.
func (r *Runner) hitRateTable(title, note string, metric func(sim.Result) float64) (*stats.Table, error) {
	singles := r.singleWorkloads()
	eights := r.eightCoreMixes()
	res, err := r.runMatrix(cachePresets, append(append([]workload.Mix{}, singles...), eights...))
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  title,
		Header: append([]string{"workload group"}, presetNames(cachePresets)...),
	}
	group := func(name string, mixes []workload.Mix) {
		row := []string{name}
		for _, p := range cachePresets {
			var vals []float64
			for _, m := range mixes {
				vals = append(vals, metric(res.of(r.baseConfig(p, m))))
			}
			row = append(row, stats.F(stats.Mean(vals)*100, 1)+"%")
		}
		t.AddRow(row...)
	}
	var nonInt, intens []workload.Mix
	for _, m := range singles {
		if m.Apps[0].MemIntensive() {
			intens = append(intens, m)
		} else {
			nonInt = append(nonInt, m)
		}
	}
	group("1-core non-intensive", nonInt)
	group("1-core intensive", intens)
	for _, pct := range []int{25, 50, 75, 100} {
		group(fmt.Sprintf("8-core %d%%", pct), workload.MixesByCategory(eights, pct))
	}
	t.AddNote("%s", note)
	return t, nil
}

// Fig9 reproduces Figure 9: in-DRAM cache hit rates.
func (r *Runner) Fig9() (*stats.Table, error) {
	return r.hitRateTable(
		"Figure 9: in-DRAM cache hit rate",
		"paper: FIGCache hit rates comparable to LISA-VILLA despite 8x fewer cache rows",
		func(res sim.Result) float64 { return res.InDRAMCacheHitRate() })
}

// Fig10 reproduces Figure 10: DRAM row-buffer hit rates, including Base.
func (r *Runner) Fig10() (*stats.Table, error) {
	t, err := r.hitRateTable(
		"Figure 10: DRAM row buffer hit rate",
		"paper: FIGCache row-buffer hit rate ~18% above LISA-VILLA's on average",
		func(res sim.Result) float64 { return res.RowBufferHitRate() })
	return t, err
}

// Fig11 reproduces Figure 11: system energy breakdown normalized to Base.
func (r *Runner) Fig11() (*stats.Table, error) {
	energyPresets := []sim.Preset{sim.FIGCacheSlow, sim.FIGCacheFast}
	singles := r.singleWorkloads()
	eights := r.eightCoreMixes()
	res, err := r.runMatrix(energyPresets, append(append([]workload.Mix{}, singles...), eights...))
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "Figure 11: system energy normalized to Base (component shares of Base)",
		Header: []string{"workload group", "config", "CPU", "L1&L2", "LLC", "off-chip", "DRAM", "total"},
	}
	params := energy.DefaultParams()
	group := func(name string, mixes []workload.Mix, cores, channels int) {
		var baseTotals []float64
		breakdown := func(p sim.Preset, m workload.Mix) energy.Breakdown {
			return energy.Compute(params, res.of(r.baseConfig(p, m)),
				cores, channels, p != sim.Base)
		}
		for _, m := range mixes {
			baseTotals = append(baseTotals, breakdown(sim.Base, m).Total())
		}
		for _, p := range []sim.Preset{sim.Base, sim.FIGCacheSlow, sim.FIGCacheFast} {
			var cpu, l12, llc, off, dr, tot []float64
			for i, m := range mixes {
				b := breakdown(p, m)
				cpu = append(cpu, b.CPU/baseTotals[i])
				l12 = append(l12, b.L1L2/baseTotals[i])
				llc = append(llc, b.LLC/baseTotals[i])
				off = append(off, b.OffChip/baseTotals[i])
				dr = append(dr, b.DRAM/baseTotals[i])
				tot = append(tot, b.Total()/baseTotals[i])
			}
			t.AddRow(name, p.String(),
				stats.F(stats.Mean(cpu)*100, 1)+"%", stats.F(stats.Mean(l12)*100, 1)+"%",
				stats.F(stats.Mean(llc)*100, 1)+"%", stats.F(stats.Mean(off)*100, 1)+"%",
				stats.F(stats.Mean(dr)*100, 1)+"%", stats.F(stats.Mean(tot)*100, 1)+"%")
		}
	}
	var nonInt, intens []workload.Mix
	for _, m := range singles {
		if m.Apps[0].MemIntensive() {
			intens = append(intens, m)
		} else {
			nonInt = append(nonInt, m)
		}
	}
	group("1-core non-intensive", nonInt, 1, 1)
	group("1-core intensive", intens, 1, 1)
	for _, pct := range []int{25, 50, 75, 100} {
		group(fmt.Sprintf("8-core %d%%", pct), workload.MixesByCategory(eights, pct), 8, 4)
	}
	t.AddNote("paper: intensive 1-core energy -6.9%% (Slow) and -11.1%% (Fast) vs Base; 8-core avg DRAM energy -7.8%%")
	return t, nil
}

func presetNames(ps []sim.Preset) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	return out
}
