package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// recordTestTrace writes a small mcf-derived binary trace file.
func recordTestTrace(t *testing.T, dir string) string {
	t.Helper()
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	spec.FootprintBytes = 64 << 20
	spec.HotSegments = 2048
	gen, err := workload.NewGenerator(spec, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "custom.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 1_000
	tw, err := workload.NewTraceWriter(f, gen.Span(), n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tw.Write(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCustomTraceWorkload runs the custom experiment over a recorded
// trace and a synthetic benchmark through the standard pipeline, and
// checks the trace rows render and the whole table is reproducible.
func TestCustomTraceWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix in -short mode")
	}
	path := recordTestTrace(t, t.TempDir())
	ws, err := ParseCustomWorkloads([]string{"trace:" + path, "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	r := quickRunner()
	tab, err := r.Custom(ws)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	if !strings.Contains(out, "trace:custom.trc") || !strings.Contains(out, "gcc") {
		t.Fatalf("custom table missing workload rows:\n%s", out)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("custom rows = %d, want 2:\n%s", len(tab.Rows), out)
	}

	// A second runner over the same inputs renders identical bytes —
	// recorded-trace replay is deterministic through the whole harness.
	tab2, err := quickRunner().Custom(ws)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Render() != out {
		t.Errorf("custom table not reproducible:\n first:\n%s\n second:\n%s", out, tab2.Render())
	}
}

func TestCustomRejectsEmptyAndUnknown(t *testing.T) {
	if _, err := quickRunner().Custom(nil); err == nil {
		t.Error("Custom accepted an empty workload list")
	}
	if _, err := ParseCustomWorkloads([]string{"nosuch"}); err == nil {
		t.Error("ParseCustomWorkloads accepted an unknown workload")
	}
}

// TestCustomEnumerates checks the custom experiment participates in
// plan-only job enumeration (shard mode) without running any simulation:
// trace-backed jobs are fingerprinted from cached content hashes, no
// replayer is constructed.
func TestCustomEnumerates(t *testing.T) {
	path := recordTestTrace(t, t.TempDir())
	ws, err := ParseCustomWorkloads([]string{"trace:" + path})
	if err != nil {
		t.Fatal(err)
	}
	r := quickRunner()
	jobs, err := r.EnumerateJobs(func() (*stats.Table, error) { return r.Custom(ws) })
	if err != nil {
		t.Fatal(err)
	}
	// One workload, six presets.
	if len(jobs) != 6 {
		t.Fatalf("enumerated %d jobs, want 6", len(jobs))
	}
	if st := r.CacheStats(); st.Stores != 0 {
		t.Errorf("enumeration computed %d runs; planning must not simulate", st.Stores)
	}
}
