// Package harness regenerates every table and figure of the paper's
// evaluation (Sections 7-9) and is the layer that turns one sim.System
// run into an experiment matrix: it enumerates the required (preset,
// workload) configurations per figure, executes them on a worker pool
// with per-worker sim.System reuse, dedups and caches results by
// configuration fingerprint (internal/expcache, optionally persistent),
// and renders the same rows and series the paper reports. cmd/figbench
// drives it at full scale; bench_test.go drives scaled-down versions.
//
// Jobs that share a workload stream (same sim.Config.GangKey — the
// matrix's figure rows, where one app meets every preset) execute as
// one sim.Gang over a shared instruction stream; the rest run solo.
// Results are bit-identical either way (SetGangEnabled(false) is the
// escape hatch, figbench's -gang=false), and cache, shard, and merge
// semantics are unchanged — a gang is purely an execution strategy.
//
// The Scale struct is the single knob for matrix cost (instruction
// budget, workload subset, circuit-model iterations, parallelism);
// DefaultScale is the full matrix, QuickScale the minutes-scale version
// used by tests.
//
// For fanning the matrix out across machines, the package also provides
// the sharding layer (shard.go): EnumerateJobs runs the experiment
// builders in a plan-only mode that records every distinct job without
// simulating, ShardJobs partitions the canonical fingerprint-ordered
// index into K-of-N slices, and ShardManifest describes a slice for
// later merge validation (expcache.Merge). See ARCHITECTURE.md for the
// full multi-machine workflow.
//
// RunSampled (sampled.go) is the sampled-execution workflow built on
// the system checkpoint lifecycle: fast-forward to a region of
// interest, snapshot (keeping the bytes for bit-exact re-entry), warm
// up, and measure a window (SampledResult.WindowIPC).
package harness
