package harness

import (
	"strings"
	"testing"
)

func quickRunner() *Runner {
	s := QuickScale()
	s.Insts = 25_000
	s.SingleApps = 2
	s.MixesPerCategory = 1
	return NewRunner(s)
}

func TestTable1Static(t *testing.T) {
	tab := NewRunner(QuickScale()).Table1()
	out := tab.Render()
	for _, want := range []string{"FR-FCFS", "DDR4", "RELOC", "FIGCache", "LISA-VILLA"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig5AndStaticAnalyses(t *testing.T) {
	r := quickRunner()
	tab, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Errorf("Fig5 has %d trace rows", len(tab.Rows))
	}
	if !strings.Contains(tab.Render(), "guardbanded RELOC latency: 1.0 ns") {
		t.Errorf("Fig5 did not derive the 1 ns parameter:\n%s", tab.Render())
	}
	s42 := r.Sec42()
	if !strings.Contains(s42.Render(), "63.5 ns") {
		t.Error("Sec42 missing the 63.5 ns paper value")
	}
	s83, err := r.Sec83()
	if err != nil {
		t.Fatal(err)
	}
	out := s83.Render()
	for _, want := range []string{"FIGARO chip area", "FTS storage"} {
		if !strings.Contains(out, want) {
			t.Errorf("Sec83 missing %q", want)
		}
	}
}

func TestFig7QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix in -short mode")
	}
	r := quickRunner()
	tab, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// 2 apps + 2 geomean rows; 5 preset columns + app + class.
	if len(tab.Rows) != 4 {
		t.Fatalf("Fig7 rows = %d, want 4:\n%s", len(tab.Rows), tab.Render())
	}
	if len(tab.Header) != 7 {
		t.Fatalf("Fig7 columns = %d, want 7", len(tab.Header))
	}
}

func TestFig8CachesBaseRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix in -short mode")
	}
	r := quickRunner()
	if _, err := r.Fig8(); err != nil {
		t.Fatal(err)
	}
	computed := r.CacheStats().Stores
	if computed == 0 {
		t.Fatal("Fig8 computed no runs")
	}
	// Fig9 reuses the Fig8 matrix for the shared presets; the cache must
	// prevent duplicate runs of identical configurations: its eight-core
	// (LISA-VILLA / FIGCache-Slow / FIGCache-Fast / Base) runs must all be
	// served as hits, so only the single-core additions are computed.
	if _, err := r.Fig9(); err != nil {
		t.Fatal(err)
	}
	st := r.CacheStats()
	if st.Hits() == 0 {
		t.Error("Fig9 recomputed the entire Fig8 matrix (no cache hits)")
	}
	if st.Stores == computed {
		t.Log("Fig9 ran no additional configs (expected: single-core runs)")
	}
	// At this scale several same-shape jobs run back to back, so the
	// worker pools must have reused Systems instead of rebuilding one per
	// run (the profiled construction+GC cost this PR converts).
	if r.SystemsReused() == 0 {
		t.Error("no sim.System was Reset-reused across the matrix")
	}
	if r.SystemsBuilt() == 0 {
		t.Error("runner reports zero constructed Systems")
	}
}

func TestTable2Classification(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix in -short mode")
	}
	r := quickRunner()
	tab, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("Table2 rows = %d, want 2", len(tab.Rows))
	}
	// The subset must include one of each class, and both must match the
	// paper's classification at this scale.
	out := tab.Render()
	if !strings.Contains(out, "intensive") {
		t.Error("Table2 missing classification")
	}
}

func TestScaleNormalization(t *testing.T) {
	r := NewRunner(Scale{Insts: 1000})
	if r.scale.SingleApps != 20 || r.scale.MixesPerCategory != 5 {
		t.Errorf("scale defaults not applied: %+v", r.scale)
	}
	if r.scale.Parallelism <= 0 {
		t.Error("parallelism not defaulted")
	}
	if got := len(r.singleWorkloads()); got != 20 {
		t.Errorf("single workloads = %d, want 20", got)
	}
	if got := len(r.eightCoreMixes()); got != 20 {
		t.Errorf("eight-core mixes = %d, want 20", got)
	}
}

func TestSingleWorkloadSubsetBalanced(t *testing.T) {
	s := QuickScale()
	s.SingleApps = 4
	r := NewRunner(s)
	ws := r.singleWorkloads()
	if len(ws) != 4 {
		t.Fatalf("subset = %d, want 4", len(ws))
	}
	intensive := 0
	for _, w := range ws {
		if w.Apps[0].MemIntensive() {
			intensive++
		}
	}
	if intensive != 2 {
		t.Errorf("subset has %d intensive apps, want 2", intensive)
	}
}
