package harness

import (
	"bytes"
	"fmt"

	"repro/internal/sim"
)

// SampledSpec describes a sampled execution in the classic three-phase
// shape: fast-forward past initialization, warm the microarchitectural
// state, then measure. All three counts are total retired instructions
// summed across cores (the same unit sim.System.RunUntilRetired stops
// on); statistics accumulate over the whole run, but the reported
// window covers only the measurement phase. Phase boundaries are
// RunUntilRetired stop-points: the cycle-skipping engine may overshoot
// one by a batched bubble run, so the reported window counts are the
// exact actuals, not the spec.
type SampledSpec struct {
	// FastForward is skipped before the checkpoint is taken. The run is
	// still simulated cycle-accurately — the point of the phase is the
	// reusable snapshot, not reduced fidelity.
	FastForward int64
	// Warmup runs between the checkpoint and the measurement window,
	// absorbing the (already warm) state into steady-state behavior.
	Warmup int64
	// Measure is the measurement window length. Must be positive.
	Measure int64
}

// SampledResult is one sampled execution's outcome.
type SampledResult struct {
	// Config is the exact (instruction-target-adjusted) configuration
	// the run executed — the one a Checkpoint restore must be built for.
	Config sim.Config
	// Full holds the whole run's statistics, bit-identical to an
	// unsampled run of Config (checkpointing is invisible).
	Full sim.Result
	// WindowInsts / WindowCycles cover the measurement phase only.
	WindowInsts  int64
	WindowCycles int64
	// Checkpoint is the FGSS snapshot taken at the fast-forward point.
	// Restoring it into a fresh sim.New(Config) system resumes the run
	// with fast-forwarding already paid.
	Checkpoint []byte
}

// WindowIPC returns the measurement window's aggregate IPC.
func (s SampledResult) WindowIPC() float64 {
	if s.WindowCycles <= 0 {
		return 0
	}
	return float64(s.WindowInsts) / float64(s.WindowCycles)
}

// retired sums the retired instruction count across the system's cores.
func retired(sys *sim.System) int64 {
	var total int64
	for _, c := range sys.Cores() {
		total += c.Retired
	}
	return total
}

// RunSampled executes cfg's workload in fast-forward / warm-up /
// measure phases. The per-core instruction target is derived from the
// spec (overriding cfg.TargetInsts), the fast-forwarded state is
// checkpointed, and the measurement window's instruction and cycle
// counts are reported alongside the full-run statistics.
func RunSampled(cfg sim.Config, spec SampledSpec) (SampledResult, error) {
	if spec.Measure <= 0 {
		return SampledResult{}, fmt.Errorf("harness: sampled measure window must be positive, got %d", spec.Measure)
	}
	if spec.FastForward < 0 || spec.Warmup < 0 {
		return SampledResult{}, fmt.Errorf("harness: negative sampled phase (fast-forward %d, warmup %d)", spec.FastForward, spec.Warmup)
	}
	cores := int64(len(cfg.Mix.Apps))
	if cores == 0 {
		return SampledResult{}, fmt.Errorf("harness: mix %q has no applications", cfg.Mix.Name)
	}
	total := spec.FastForward + spec.Warmup + spec.Measure
	cfg.TargetInsts = (total + cores - 1) / cores
	cfg.MaxCycles = 0 // re-derive the safety net from the new target

	sys, err := sim.New(cfg)
	if err != nil {
		return SampledResult{}, err
	}
	out := SampledResult{Config: sys.Config()}

	sys.RunUntilRetired(spec.FastForward)
	var buf bytes.Buffer
	if err := sys.Snapshot(&buf); err != nil {
		return SampledResult{}, err
	}
	out.Checkpoint = buf.Bytes()

	sys.RunUntilRetired(spec.FastForward + spec.Warmup)
	warmInsts, warmCycles := retired(sys), sys.Clock()

	res, err := sys.Run()
	if err != nil {
		return SampledResult{}, err
	}
	out.Full = res
	out.WindowInsts = retired(sys) - warmInsts
	out.WindowCycles = res.Cycles - warmCycles
	return out, nil
}
