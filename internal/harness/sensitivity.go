package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// sweepTable runs FIGCache-Fast variants over the eight-core mixes (plus
// single-core groups) and tabulates mean weighted speedup over Base per
// category — the structure shared by Figures 12-15.
func (r *Runner) sweepTable(title, note string, variants []sweepVariant) (*stats.Table, error) {
	singles := r.singleWorkloads()
	eights := r.eightCoreMixes()
	mixes := append(append([]workload.Mix{}, singles...), eights...)

	// variantConfig is both the job builder and the lookup key builder:
	// the FIG override and fast-subarray count are fingerprinted by
	// value, so rebuilding the config re-derives the identity.
	variantConfig := func(v sweepVariant, mix workload.Mix) sim.Config {
		cfg := r.baseConfig(v.preset, mix)
		cfg.FIG = v.fig
		cfg.FastSubarrays = v.fastSubarrays
		return cfg
	}
	var jobs []sim.Config
	for _, mix := range mixes {
		jobs = append(jobs, r.baseConfig(sim.Base, mix))
		for _, v := range variants {
			jobs = append(jobs, variantConfig(v, mix))
		}
	}
	res, err := r.runAll(jobs)
	if err != nil {
		return nil, err
	}

	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	t := &stats.Table{Title: title, Header: append([]string{"workload group"}, names...)}

	group := func(name string, ms []workload.Mix) {
		row := []string{name}
		for _, v := range variants {
			var vals []float64
			for _, m := range ms {
				base := res.of(r.baseConfig(sim.Base, m))
				run := res.of(variantConfig(v, m))
				vals = append(vals, run.WeightedSpeedupOver(base))
			}
			row = append(row, stats.F(stats.Mean(vals), 3))
		}
		t.AddRow(row...)
	}
	var nonInt, intens []workload.Mix
	for _, m := range singles {
		if m.Apps[0].MemIntensive() {
			intens = append(intens, m)
		} else {
			nonInt = append(nonInt, m)
		}
	}
	group("1-core non-intensive", nonInt)
	group("1-core intensive", intens)
	for _, pct := range []int{25, 50, 75, 100} {
		group(fmt.Sprintf("8-core %d%%", pct), workload.MixesByCategory(eights, pct))
	}
	t.AddNote("%s", note)
	return t, nil
}

// sweepVariant is one column of a sensitivity figure.
type sweepVariant struct {
	name          string
	preset        sim.Preset
	fig           *core.FIGCacheConfig
	fastSubarrays int
}

// figVariant builds a FIGCache-Fast variant with a mutated configuration.
func figVariant(name string, fastSubarrays int, mutate func(*core.FIGCacheConfig)) sweepVariant {
	cfg := core.DefaultFIGCacheConfig()
	cfg.CacheRowsPerBank = fastSubarrays * 32
	if mutate != nil {
		mutate(&cfg)
	}
	return sweepVariant{name: name, preset: sim.FIGCacheFast, fig: &cfg, fastSubarrays: fastSubarrays}
}

// Fig12 reproduces Figure 12: performance versus in-DRAM cache capacity
// (1 to 16 fast subarrays), with LL-DRAM as the bound.
func (r *Runner) Fig12() (*stats.Table, error) {
	variants := []sweepVariant{
		figVariant("1 FS", 1, nil),
		figVariant("2 FS", 2, nil),
		figVariant("4 FS", 4, nil),
		figVariant("8 FS", 8, nil),
		figVariant("16 FS", 16, nil),
		{name: "LL-DRAM", preset: sim.LLDRAM, fastSubarrays: 2},
	}
	return r.sweepTable(
		"Figure 12: weighted speedup over Base vs in-DRAM cache capacity",
		"paper: diminishing returns past 2 fast subarrays (2->4: <2.7%%, 4->8: <0.8%% for 100%%-intensive)",
		variants)
}

// Fig13 reproduces Figure 13: performance versus row segment size
// (512 B to the full 8 kB row), with LISA-VILLA for comparison.
func (r *Runner) Fig13() (*stats.Table, error) {
	variants := []sweepVariant{
		figVariant("512B", 2, func(c *core.FIGCacheConfig) { c.SegmentBlocks = 8 }),
		figVariant("1kB", 2, func(c *core.FIGCacheConfig) { c.SegmentBlocks = 16 }),
		figVariant("2kB", 2, func(c *core.FIGCacheConfig) { c.SegmentBlocks = 32 }),
		figVariant("4kB", 2, func(c *core.FIGCacheConfig) { c.SegmentBlocks = 64 }),
		figVariant("8kB", 2, func(c *core.FIGCacheConfig) { c.SegmentBlocks = 128 }),
		{name: "LISA-VILLA", preset: sim.LISAVilla, fastSubarrays: 2},
	}
	return r.sweepTable(
		"Figure 13: weighted speedup over Base vs row segment size",
		"paper: performance peaks at 1 kB (1/8 row); full-row segments fall below LISA-VILLA",
		variants)
}

// Fig14 reproduces Figure 14: in-DRAM cache replacement policies.
func (r *Runner) Fig14() (*stats.Table, error) {
	variants := []sweepVariant{
		figVariant("Random", 2, func(c *core.FIGCacheConfig) { c.Replacement = core.ReplRandom }),
		figVariant("LRU", 2, func(c *core.FIGCacheConfig) { c.Replacement = core.ReplLRU }),
		figVariant("SegmentBenefit", 2, func(c *core.FIGCacheConfig) { c.Replacement = core.ReplSegmentBenefit }),
		figVariant("RowBenefit", 2, func(c *core.FIGCacheConfig) { c.Replacement = core.ReplRowBenefit }),
	}
	return r.sweepTable(
		"Figure 14: weighted speedup over Base vs replacement policy",
		"paper: all policies >= +12.5%%; RowBenefit best, +4.1%% over SegmentBenefit on 100%%-intensive",
		variants)
}

// Fig15 reproduces Figure 15: row segment insertion thresholds.
func (r *Runner) Fig15() (*stats.Table, error) {
	variants := []sweepVariant{
		figVariant("Threshold 1", 2, func(c *core.FIGCacheConfig) { c.InsertThreshold = 1 }),
		figVariant("Threshold 2", 2, func(c *core.FIGCacheConfig) { c.InsertThreshold = 2 }),
		figVariant("Threshold 4", 2, func(c *core.FIGCacheConfig) { c.InsertThreshold = 4 }),
		figVariant("Threshold 8", 2, func(c *core.FIGCacheConfig) { c.InsertThreshold = 8 }),
	}
	return r.sweepTable(
		"Figure 15: weighted speedup over Base vs insertion threshold",
		"paper: threshold 1 (insert-any-miss) best for memory-intensive workloads",
		variants)
}
