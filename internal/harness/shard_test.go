package harness

import (
	"testing"

	"repro/internal/expcache"
	"repro/internal/sim"
	"repro/internal/stats"
)

// enumerationBuilders is a representative experiment set: overlapping
// matrices (Table2's Base runs are a subset of Fig7's), multi-preset
// figures, and config-mutating sweeps.
func enumerationBuilders(r *Runner) []func() (*stats.Table, error) {
	return []func() (*stats.Table, error){r.Table2, r.Fig7, r.Fig8, r.Fig14}
}

// TestEnumerateJobsRunsNothing pins the plan-only contract: enumeration
// discovers a non-trivial matrix without simulating a single cycle or
// touching the result cache.
func TestEnumerateJobsRunsNothing(t *testing.T) {
	r := NewRunner(QuickScale())
	jobs, err := r.EnumerateJobs(enumerationBuilders(r)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("enumeration found no jobs")
	}
	if r.SimCycles() != 0 {
		t.Errorf("enumeration simulated %d cycles", r.SimCycles())
	}
	if st := r.CacheStats(); st.Hits()+st.Misses+st.Stores != 0 {
		t.Errorf("enumeration touched the result cache: %+v", st)
	}
	// Canonical order: ascending fingerprints, no duplicates.
	for i := 1; i < len(jobs); i++ {
		a, b := jobs[i-1].Fingerprint().String(), jobs[i].Fingerprint().String()
		if a >= b {
			t.Fatalf("jobs not in strict fingerprint order at %d: %s >= %s", i, a, b)
		}
	}
}

// TestEnumerateJobsStableAcrossOrder: the canonical index must not
// depend on the order experiments are enumerated in.
func TestEnumerateJobsStableAcrossOrder(t *testing.T) {
	r := NewRunner(QuickScale())
	forward, err := r.EnumerateJobs(enumerationBuilders(r)...)
	if err != nil {
		t.Fatal(err)
	}
	bs := enumerationBuilders(r)
	for i, j := 0, len(bs)-1; i < j; i, j = i+1, j-1 {
		bs[i], bs[j] = bs[j], bs[i]
	}
	backward, err := r.EnumerateJobs(bs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(forward) != len(backward) {
		t.Fatalf("enumeration order changed the matrix size: %d vs %d", len(forward), len(backward))
	}
	for i := range forward {
		if forward[i].Fingerprint() != backward[i].Fingerprint() {
			t.Fatalf("enumeration order changed the canonical index at %d", i)
		}
	}
}

// TestShardPartitionExhaustive: for every split width, the K slices
// cover the canonical index exactly once — no job lost, none duplicated
// — and stay balanced to within one job.
func TestShardPartitionExhaustive(t *testing.T) {
	r := NewRunner(QuickScale())
	jobs, err := r.EnumerateJobs(enumerationBuilders(r)...)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 5; n++ {
		seen := make(map[sim.Fingerprint]int)
		minSize, maxSize := len(jobs), 0
		for k := 1; k <= n; k++ {
			slice := ShardJobs(jobs, k, n)
			if len(slice) < minSize {
				minSize = len(slice)
			}
			if len(slice) > maxSize {
				maxSize = len(slice)
			}
			for _, cfg := range slice {
				seen[cfg.Fingerprint()]++
			}
		}
		if len(seen) != len(jobs) {
			t.Fatalf("n=%d: shards cover %d of %d jobs", n, len(seen), len(jobs))
		}
		for fp, count := range seen {
			if count != 1 {
				t.Fatalf("n=%d: job %s assigned to %d shards", n, fp, count)
			}
		}
		if maxSize-minSize > 1 {
			t.Errorf("n=%d: unbalanced shards (%d..%d jobs)", n, minSize, maxSize)
		}
	}
}

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in   string
		k, n int
		ok   bool
	}{
		{"1/1", 1, 1, true},
		{"2/3", 2, 3, true},
		{" 4 / 8 ", 4, 8, true},
		{"0/3", 0, 0, false},
		{"4/3", 0, 0, false},
		{"-1/3", 0, 0, false},
		{"2", 0, 0, false},
		{"a/b", 0, 0, false},
		{"", 0, 0, false},
	} {
		k, n, err := ParseShard(tc.in)
		if (err == nil) != tc.ok || k != tc.k || n != tc.n {
			t.Errorf("ParseShard(%q) = %d, %d, %v; want %d, %d, ok=%v", tc.in, k, n, err, tc.k, tc.n, tc.ok)
		}
	}
}

// TestShardedRunsReassemble is the in-process version of CI's shard-merge
// job: two shards computed into separate cache directories, merged, and
// the merged directory must serve an unsharded rerun without a single
// recomputation, rendering identical tables to a from-scratch run.
func TestShardedRunsReassemble(t *testing.T) {
	scale := Scale{Insts: 20_000, SingleApps: 2, MixesPerCategory: 1, MCIterations: 200}
	builders := func(r *Runner) []func() (*stats.Table, error) {
		return []func() (*stats.Table, error){r.Table2, r.Fig7}
	}
	names := []string{"table2", "fig7"}

	dirs := []string{t.TempDir(), t.TempDir()}
	for k := 1; k <= 2; k++ {
		cache := expcache.New(dirs[k-1])
		r := NewRunnerWithCache(scale, cache, false)
		jobs, err := r.EnumerateJobs(builders(r)...)
		if err != nil {
			t.Fatal(err)
		}
		mine := ShardJobs(jobs, k, 2)
		if got, err := r.RunJobs(mine); err != nil || got != len(mine) {
			t.Fatalf("shard %d: ran %d of %d jobs, err=%v", k, got, len(mine), err)
		}
		if err := cache.WriteManifest(r.ShardManifest(jobs, k, 2, names)); err != nil {
			t.Fatal(err)
		}
	}

	merged := t.TempDir()
	rep, err := expcache.Merge(merged, dirs, false)
	if err != nil {
		t.Fatalf("merge: %v\n%v", err, rep.Problems())
	}

	render := func(r *Runner) string {
		var out string
		for _, build := range builders(r) {
			tab, err := build()
			if err != nil {
				t.Fatal(err)
			}
			out += tab.Render() + "\n"
		}
		return out
	}
	warm := NewRunnerWithCache(scale, expcache.New(merged), false)
	warmTables := render(warm)
	if st := warm.CacheStats(); st.Misses != 0 || st.Stores != 0 {
		t.Errorf("warm run against merged dir recomputed: misses=%d computed=%d", st.Misses, st.Stores)
	}
	if warm.SimCycles() != 0 {
		t.Errorf("warm run simulated %d cycles", warm.SimCycles())
	}
	scratch := NewRunner(scale)
	if scratchTables := render(scratch); scratchTables != warmTables {
		t.Error("merged-cache tables differ from a from-scratch run")
	}
}
