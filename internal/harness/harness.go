// Package harness regenerates every table and figure of the paper's
// evaluation (Section 7-9): it runs the required simulation matrix with a
// worker pool, caches results shared between figures, and renders the
// same rows and series the paper reports. cmd/figbench drives it at full
// scale; bench_test.go drives scaled-down versions.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Scale controls the cost of the experiment matrix.
type Scale struct {
	// Insts is the per-core retire target of each run.
	Insts int64
	// SingleApps limits the number of single-core applications (max 20).
	SingleApps int
	// MixesPerCategory limits the eight-core mixes per memory-intensity
	// category (max 5).
	MixesPerCategory int
	// MCIterations is the Monte-Carlo iteration count for the circuit
	// model (the paper uses 1e8; 1e4 reproduces the worst case closely).
	MCIterations int
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
}

// QuickScale returns a minutes-scale matrix for tests and benches.
func QuickScale() Scale {
	return Scale{Insts: 60_000, SingleApps: 4, MixesPerCategory: 1, MCIterations: 500}
}

// DefaultScale is the figbench default: every workload (all 20 single-
// core applications and all 5 mixes per category, the full matrix) at a
// laptop-scale instruction budget. The budget was raised 400k -> 1M
// instructions per core once batched core execution and the
// allocation-free access path lifted simulator throughput; longer runs
// give the in-DRAM cache more reuse to exploit, so the full-scale
// figures sit closer to the paper's steady-state numbers.
func DefaultScale() Scale {
	return Scale{Insts: 1_000_000, SingleApps: 20, MixesPerCategory: 5, MCIterations: 20_000}
}

// Runner executes and caches simulation runs.
type Runner struct {
	scale Scale

	mu    sync.Mutex
	cache map[string]sim.Result
	// simCycles accumulates the simulated CPU cycles of every computed
	// run, and simWall the wall-clock spent inside simulation batches
	// (excluding the circuit model and table rendering) — numerator and
	// denominator of the SimCyclesPerSecond throughput metric.
	simCycles int64
	simWall   time.Duration
}

// NewRunner builds a runner for the scale.
func NewRunner(scale Scale) *Runner {
	if scale.Parallelism <= 0 {
		scale.Parallelism = runtime.GOMAXPROCS(0)
	}
	if scale.SingleApps <= 0 || scale.SingleApps > 20 {
		scale.SingleApps = 20
	}
	if scale.MixesPerCategory <= 0 || scale.MixesPerCategory > 5 {
		scale.MixesPerCategory = 5
	}
	return &Runner{scale: scale, cache: make(map[string]sim.Result)}
}

// Scale returns the runner's scale.
func (r *Runner) Scale() Scale { return r.scale }

// job is one simulation to run.
type job struct {
	key string
	cfg sim.Config
}

// runAll executes jobs in parallel (deduplicated against the cache) and
// returns results by key. When jobs fail, every failure is reported —
// one line per job key, in deterministic (sorted) order — so a large
// batch with several broken configurations surfaces all of them at
// once instead of hiding siblings behind the first error.
func (r *Runner) runAll(jobs []job) (map[string]sim.Result, error) {
	out := make(map[string]sim.Result, len(jobs))
	var todo []job
	r.mu.Lock()
	seen := make(map[string]bool)
	for _, j := range jobs {
		if res, ok := r.cache[j.key]; ok {
			out[j.key] = res
		} else if !seen[j.key] {
			seen[j.key] = true
			todo = append(todo, j)
		}
	}
	r.mu.Unlock()

	if len(todo) > 0 {
		batchStart := time.Now()
		sem := make(chan struct{}, r.scale.Parallelism)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var failures []error
		for _, j := range todo {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				system, err := sim.New(j.cfg)
				var res sim.Result
				if err == nil {
					res, err = system.Run()
				}
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					failures = append(failures, fmt.Errorf("%s: %w", j.key, err))
					return
				}
				out[j.key] = res
			}(j)
		}
		wg.Wait()
		// Cache completed results even when some job failed, so a retry
		// (e.g. at a larger scale) does not recompute the finished runs.
		r.mu.Lock()
		for _, j := range todo {
			if res, ok := out[j.key]; ok {
				r.cache[j.key] = res
				r.simCycles += res.Cycles
			}
		}
		r.simWall += time.Since(batchStart)
		r.mu.Unlock()
		if len(failures) > 0 {
			// Goroutine completion order is nondeterministic; sort so the
			// report (and tests over it) are stable.
			sort.Slice(failures, func(i, k int) bool {
				return failures[i].Error() < failures[k].Error()
			})
			return nil, fmt.Errorf("harness: %d of %d jobs failed: %w",
				len(failures), len(todo), errors.Join(failures...))
		}
	}
	return out, nil
}

// SimCycles returns the total number of CPU cycles simulated by this
// runner (cache hits excluded: each run is counted once, when computed).
func (r *Runner) SimCycles() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.simCycles
}

// SimWallSeconds returns the wall-clock seconds this runner spent inside
// simulation batches (the circuit model and table rendering excluded).
func (r *Runner) SimWallSeconds() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.simWall.Seconds()
}

// SimCyclesPerSecond returns the runner's simulation throughput —
// simulated CPU cycles per wall-clock second spent simulating: the
// headline "how fast does the simulator run" metric the benchmarks and
// cmd/figbench report.
func (r *Runner) SimCyclesPerSecond() float64 {
	s := r.SimWallSeconds()
	if s <= 0 {
		return 0
	}
	return float64(r.SimCycles()) / s
}

// keyFor builds a cache key from the run's distinguishing parameters.
func keyFor(p sim.Preset, mix string, insts int64, extra string) string {
	return fmt.Sprintf("%v|%s|%d|%s", p, mix, insts, extra)
}

// baseConfig builds the standard run configuration.
func (r *Runner) baseConfig(p sim.Preset, mix workload.Mix) sim.Config {
	cfg := sim.DefaultConfig(p, mix)
	cfg.TargetInsts = r.scale.Insts
	return cfg
}

// singleWorkloads returns the configured subset of single-core workloads,
// keeping the intensive/non-intensive balance.
func (r *Runner) singleWorkloads() []workload.Mix {
	all := workload.SingleCoreWorkloads()
	if r.scale.SingleApps >= len(all) {
		return all
	}
	// Alternate between non-intensive (first half of Benchmarks) and
	// intensive so small subsets stay balanced.
	var intensive, non []workload.Mix
	for _, m := range all {
		if m.Apps[0].MemIntensive {
			intensive = append(intensive, m)
		} else {
			non = append(non, m)
		}
	}
	var out []workload.Mix
	for i := 0; len(out) < r.scale.SingleApps; i++ {
		if i < len(intensive) {
			out = append(out, intensive[i])
		}
		if len(out) < r.scale.SingleApps && i < len(non) {
			out = append(out, non[i])
		}
		if i >= len(intensive) && i >= len(non) {
			break
		}
	}
	return out
}

// eightCoreMixes returns the configured subset of eight-core mixes.
func (r *Runner) eightCoreMixes() []workload.Mix {
	var out []workload.Mix
	for _, pct := range []int{25, 50, 75, 100} {
		cat := workload.MixesByCategory(workload.EightCoreMixes(), pct)
		if len(cat) > r.scale.MixesPerCategory {
			cat = cat[:r.scale.MixesPerCategory]
		}
		out = append(out, cat...)
	}
	return out
}

// figCfgString encodes a FIGCache override compactly for cache keys.
func figCfgString(c *core.FIGCacheConfig, fastSubarrays int) string {
	if c == nil {
		return fmt.Sprintf("fs%d", fastSubarrays)
	}
	return fmt.Sprintf("fs%d-seg%d-rows%d-repl%d-thr%d",
		fastSubarrays, c.SegmentBlocks, c.CacheRowsPerBank, int(c.Replacement), c.InsertThreshold)
}
