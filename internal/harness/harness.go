package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expcache"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Scale controls the cost of the experiment matrix.
type Scale struct {
	// Insts is the per-core retire target of each run.
	Insts int64
	// SingleApps limits the number of single-core applications (max 20).
	SingleApps int
	// MixesPerCategory limits the eight-core mixes per memory-intensity
	// category (max 5).
	MixesPerCategory int
	// MCIterations is the Monte-Carlo iteration count for the circuit
	// model (the paper uses 1e8; 1e4 reproduces the worst case closely).
	MCIterations int
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
}

// QuickScale returns a minutes-scale matrix for tests and benches.
func QuickScale() Scale {
	return Scale{Insts: 60_000, SingleApps: 4, MixesPerCategory: 1, MCIterations: 500}
}

// DefaultScale is the figbench default: every workload (all 20 single-
// core applications and all 5 mixes per category, the full matrix) at a
// laptop-scale instruction budget. The budget was raised 400k -> 1M
// instructions per core once batched core execution and the
// allocation-free access path lifted simulator throughput; longer runs
// give the in-DRAM cache more reuse to exploit, so the full-scale
// figures sit closer to the paper's steady-state numbers.
func DefaultScale() Scale {
	return Scale{Insts: 1_000_000, SingleApps: 20, MixesPerCategory: 5, MCIterations: 20_000}
}

// Runner executes simulation runs against a two-tier result cache
// (internal/expcache) and reuses sim.Systems across jobs of the same
// shape, so one experiment matrix pays construction and GC for a handful
// of Systems instead of one per run.
type Runner struct {
	scale Scale
	cache *expcache.Cache
	// force skips the persistent tier on lookups: every run is recomputed
	// once per process (in-process dedup still applies) and rewritten.
	force bool
	// noGang disables gang formation: every uncached run executes solo,
	// exactly as before the gang engine existed (figbench -gang=false).
	noGang bool

	mu sync.Mutex
	// simCycles accumulates the simulated CPU cycles of every computed
	// run, and simWall the wall-clock spent inside simulation batches
	// (excluding the circuit model and table rendering) — numerator and
	// denominator of the SimCyclesPerSecond throughput metric.
	simCycles int64
	simWall   time.Duration
	// sysBuilt / sysReused count fresh sim.New constructions versus
	// Reset-reuses across all workers (diagnostics for the reuse rate).
	sysBuilt, sysReused int64
	// gangsFormed counts executed gangs and gangedRuns the member runs
	// they carried; computed-minus-ganged runs executed solo.
	gangsFormed, gangedRuns int64
	// pools holds idle System pools between runAll batches, so reuse
	// extends across an experiment sequence (figbench all): a figure's
	// workers inherit the Systems the previous figure's workers released.
	pools []*systemPool

	// planning switches runAll into job enumeration: submitted
	// configurations are recorded in plan (deduplicated via planSeen)
	// and errPlanOnly aborts the calling experiment builder before it
	// renders anything. EnumerateJobs drives this; see shard.go.
	planning bool
	plan     []sim.Config
	planSeen map[sim.Fingerprint]bool
}

// NewRunner builds a runner for the scale with an in-memory result cache.
func NewRunner(scale Scale) *Runner {
	return NewRunnerWithCache(scale, expcache.New(""), false)
}

// NewRunnerWithCache builds a runner over an explicit result cache
// (typically disk-backed; see expcache.New). force makes lookups bypass
// the persistent tier so every run is recomputed and rewritten.
func NewRunnerWithCache(scale Scale, cache *expcache.Cache, force bool) *Runner {
	if scale.Parallelism <= 0 {
		scale.Parallelism = runtime.GOMAXPROCS(0)
	}
	if scale.SingleApps <= 0 || scale.SingleApps > 20 {
		scale.SingleApps = 20
	}
	if scale.MixesPerCategory <= 0 || scale.MixesPerCategory > 5 {
		scale.MixesPerCategory = 5
	}
	if cache == nil {
		cache = expcache.New("")
	}
	return &Runner{scale: scale, cache: cache, force: force}
}

// Scale returns the runner's scale.
func (r *Runner) Scale() Scale { return r.scale }

// CacheStats returns the result cache's traffic counters.
func (r *Runner) CacheStats() expcache.Stats { return r.cache.Stats() }

// SystemsBuilt returns how many sim.Systems were freshly constructed.
func (r *Runner) SystemsBuilt() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sysBuilt
}

// SystemsReused returns how many runs executed on a Reset-reused System.
func (r *Runner) SystemsReused() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sysReused
}

// SetGangEnabled toggles gang execution (default on). Disabled, every
// uncached run executes solo — the escape hatch behind figbench's
// -gang=false, and the serial reference of the CI gang-vs-serial diff.
func (r *Runner) SetGangEnabled(enabled bool) { r.noGang = !enabled }

// GangsFormed returns how many gangs runAll executed.
func (r *Runner) GangsFormed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gangsFormed
}

// GangedRuns returns how many computed runs executed as gang members
// (the remainder of the computed runs executed solo).
func (r *Runner) GangedRuns() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gangedRuns
}

// results holds one batch's completed runs keyed by fingerprint; of is
// the lookup the figure builders use (recomputing a configuration's
// fingerprint is microseconds against the runs behind it). A missing
// fingerprint is a builder bug — the lookup config drifted from the job
// config — and panics rather than rendering silent zeros into a table.
type results map[sim.Fingerprint]sim.Result

func (rs results) of(cfg sim.Config) sim.Result {
	res, ok := rs[cfg.Fingerprint()]
	if !ok {
		panic(fmt.Sprintf("harness: no result for %s: lookup config does not match any submitted job", cfg.Describe()))
	}
	return res
}

// systemPool reuses sim.Systems across jobs of compatible shape. Each
// worker checks out one pool for the duration of a batch, so reuse needs
// no locking and a System is never shared between goroutines. A shape
// maps to a stack of idle Systems — a gang job checks out one per member
// and returns them all, so the pool's depth grows to the largest gang a
// worker has executed.
type systemPool struct {
	systems       map[string][]*sim.System
	built, reused int64
	// gangs/ganged mirror the runner's gang counters at pool scope,
	// folded into the totals by returnPool like built/reused.
	gangs, ganged int64
}

// take pops an idle System of the shape, or returns nil.
func (p *systemPool) take(key string) *sim.System {
	stack := p.systems[key]
	if n := len(stack); n > 0 {
		sys := stack[n-1]
		stack[n-1] = nil
		p.systems[key] = stack[:n-1]
		return sys
	}
	return nil
}

// put returns an idle System to the shape's stack.
func (p *systemPool) put(key string, sys *sim.System) {
	p.systems[key] = append(p.systems[key], sys)
}

// checkoutPool hands a worker an idle pool (with the Systems a previous
// batch's worker released) or a fresh one.
func (r *Runner) checkoutPool() *systemPool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.pools); n > 0 {
		p := r.pools[n-1]
		r.pools[n-1] = nil
		r.pools = r.pools[:n-1]
		return p
	}
	return &systemPool{systems: make(map[string][]*sim.System)}
}

// returnPool takes a pool back at the end of a batch, folding its
// build/reuse counters into the runner's totals.
func (r *Runner) returnPool(p *systemPool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sysBuilt += p.built
	r.sysReused += p.reused
	r.gangsFormed += p.gangs
	r.gangedRuns += p.ganged
	p.built, p.reused, p.gangs, p.ganged = 0, 0, 0, 0
	r.pools = append(r.pools, p)
}

// run executes one configuration, on a Reset-reused System when the pool
// holds one of the right shape, freshly constructed otherwise.
func (p *systemPool) run(cfg sim.Config) (sim.Result, error) {
	key := cfg.ShapeKey()
	if sys := p.take(key); sys != nil {
		if err := sys.Reset(cfg); err == nil {
			p.reused++
			p.put(key, sys)
			return sys.Run()
		}
		// A failed Reset leaves the System partially reinitialized; drop
		// it and rebuild. (Shape mismatches cannot happen under ShapeKey
		// keying; this covers config errors surfaced mid-Reset.)
	}
	sys, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	p.built++
	// A Run error (instruction target not reached within MaxCycles) does
	// not poison the System: Reset reinitializes every piece of state, so
	// the System stays pooled either way.
	p.put(key, sys)
	return sys.Run()
}

// runGang executes a group of same-workload configurations as one
// sim.Gang over a shared instruction stream, reusing pooled Systems for
// as many members as the shape stack holds. ok=false reports that the
// gang could not be assembled (a member construction or Reset failed);
// the caller falls back to solo execution, which reproduces — and
// properly attributes — any per-configuration error.
func (p *systemPool) runGang(cfgs []sim.Config) (results []sim.Result, errs []error, ok bool) {
	key := cfgs[0].ShapeKey() // GangKey folds in the shape, so all members share it
	var reuse []*sim.System
	for len(reuse) < len(cfgs) {
		sys := p.take(key)
		if sys == nil {
			break
		}
		reuse = append(reuse, sys)
	}
	g, err := sim.NewGang(cfgs, reuse)
	if err != nil {
		// The reuse Systems may be partially reinitialized or hold readers
		// of the abandoned gang's shared stream; discard them.
		return nil, nil, false
	}
	p.reused += int64(len(reuse))
	p.built += int64(len(cfgs) - len(reuse))
	p.gangs++
	p.ganged += int64(len(cfgs))
	results, errs = g.Run()
	for _, sys := range g.Members() {
		p.put(key, sys)
	}
	return results, errs, true
}

// runAll executes the configurations (deduplicated by fingerprint and
// served from the result cache where possible) and returns results by
// fingerprint. Workers pull jobs from a shared index and each keep their
// own System pool. When jobs fail, every failure is reported — one line
// per run, in deterministic (sorted) order — so a large batch with
// several broken configurations surfaces all of them at once instead of
// hiding siblings behind the first error. Completed runs are cached even
// when a sibling fails, so a retry does not recompute them.
func (r *Runner) runAll(cfgs []sim.Config) (results, error) {
	if r.planning {
		for _, cfg := range cfgs {
			fp := cfg.Fingerprint()
			if !r.planSeen[fp] {
				r.planSeen[fp] = true
				r.plan = append(r.plan, cfg)
			}
		}
		return nil, errPlanOnly
	}
	out := make(results, len(cfgs))
	var todo []sim.Config
	var fps []sim.Fingerprint
	seen := make(map[sim.Fingerprint]bool, len(cfgs))
	lookup := r.cache.Get
	if r.force {
		lookup = r.cache.GetMem
	}
	for _, cfg := range cfgs {
		fp := cfg.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		if res, ok := lookup(fp); ok {
			out[fp] = res
			continue
		}
		todo = append(todo, cfg)
		fps = append(fps, fp)
	}
	if len(todo) == 0 {
		return out, nil
	}

	// Partition the uncached runs into jobs: groups of same-workload
	// configurations (equal sim.Config.GangKey) execute as one gang over a
	// shared instruction stream; singletons — and everything when gangs
	// are disabled — execute solo. Each job element indexes todo/fps.
	// First-seen group order keeps job order deterministic.
	var jobs [][]int
	if r.noGang {
		for i := range todo {
			jobs = append(jobs, []int{i})
		}
	} else {
		groups := make(map[string]int, len(todo))
		for i, cfg := range todo {
			key := cfg.GangKey()
			if j, ok := groups[key]; ok {
				jobs[j] = append(jobs[j], i)
			} else {
				groups[key] = len(jobs)
				jobs = append(jobs, []int{i})
			}
		}
	}

	batchStart := time.Now()
	workers := r.scale.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var mu sync.Mutex
	var failures []error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := r.checkoutPool()
			defer r.returnPool(pool)
			// finish records one member run's outcome: failures are
			// collected per run (a gang sibling's failure never hides a
			// completed run), successes are persisted immediately (disk
			// failures degrade to in-memory caching; expcache records them
			// in its stats).
			finish := func(i int, res sim.Result, err error) {
				if err != nil {
					mu.Lock()
					failures = append(failures, fmt.Errorf("%s: %w", todo[i].Describe(), err))
					mu.Unlock()
					return
				}
				_ = r.cache.Put(fps[i], res)
				mu.Lock()
				out[fps[i]] = res
				mu.Unlock()
				r.mu.Lock()
				r.simCycles += res.Cycles
				r.mu.Unlock()
			}
			for {
				j := int(next.Add(1)) - 1
				if j >= len(jobs) {
					return
				}
				job := jobs[j]
				if len(job) > 1 {
					cfgs := make([]sim.Config, len(job))
					for k, i := range job {
						cfgs[k] = todo[i]
					}
					if results, errs, ok := pool.runGang(cfgs); ok {
						for k, i := range job {
							finish(i, results[k], errs[k])
						}
						continue
					}
					// Gang assembly failed (a member's construction or Reset
					// errored): fall through to solo runs, which reproduce
					// and attribute every per-configuration error.
				}
				for _, i := range job {
					res, err := pool.run(todo[i])
					finish(i, res, err)
				}
			}
		}()
	}
	wg.Wait()
	r.mu.Lock()
	r.simWall += time.Since(batchStart)
	r.mu.Unlock()
	if len(failures) > 0 {
		// Worker completion order is nondeterministic; sort so the report
		// (and tests over it) are stable.
		sort.Slice(failures, func(i, k int) bool {
			return failures[i].Error() < failures[k].Error()
		})
		return nil, fmt.Errorf("harness: %d of %d jobs failed: %w",
			len(failures), len(todo), errors.Join(failures...))
	}
	return out, nil
}

// SimCycles returns the total number of CPU cycles simulated by this
// runner (cache hits excluded: each run is counted once, when computed).
func (r *Runner) SimCycles() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.simCycles
}

// SimWallSeconds returns the wall-clock seconds this runner spent inside
// simulation batches (the circuit model and table rendering excluded).
func (r *Runner) SimWallSeconds() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.simWall.Seconds()
}

// SimCyclesPerSecond returns the runner's simulation throughput —
// simulated CPU cycles per wall-clock second spent simulating: the
// headline "how fast does the simulator run" metric the benchmarks and
// cmd/figbench report.
func (r *Runner) SimCyclesPerSecond() float64 {
	s := r.SimWallSeconds()
	if s <= 0 {
		return 0
	}
	return float64(r.SimCycles()) / s
}

// baseConfig builds the standard run configuration.
func (r *Runner) baseConfig(p sim.Preset, mix workload.Mix) sim.Config {
	cfg := sim.DefaultConfig(p, mix)
	cfg.TargetInsts = r.scale.Insts
	return cfg
}

// singleWorkloads returns the configured subset of single-core workloads,
// keeping the intensive/non-intensive balance.
func (r *Runner) singleWorkloads() []workload.Mix {
	all := workload.SingleCoreWorkloads()
	if r.scale.SingleApps >= len(all) {
		return all
	}
	// Alternate between non-intensive (first half of Benchmarks) and
	// intensive so small subsets stay balanced.
	var intensive, non []workload.Mix
	for _, m := range all {
		if m.Apps[0].MemIntensive() {
			intensive = append(intensive, m)
		} else {
			non = append(non, m)
		}
	}
	var out []workload.Mix
	for i := 0; len(out) < r.scale.SingleApps; i++ {
		if i < len(intensive) {
			out = append(out, intensive[i])
		}
		if len(out) < r.scale.SingleApps && i < len(non) {
			out = append(out, non[i])
		}
		if i >= len(intensive) && i >= len(non) {
			break
		}
	}
	return out
}

// eightCoreMixes returns the configured subset of eight-core mixes.
func (r *Runner) eightCoreMixes() []workload.Mix {
	var out []workload.Mix
	for _, pct := range []int{25, 50, 75, 100} {
		cat := workload.MixesByCategory(workload.EightCoreMixes(), pct)
		if len(cat) > r.scale.MixesPerCategory {
			cat = cat[:r.scale.MixesPerCategory]
		}
		out = append(out, cat...)
	}
	return out
}
