package harness

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// CustomWorkload is one user-supplied workload for the custom experiment:
// any mix the workload package can resolve — synthetic benchmarks, mix
// names, multithreaded applications, or recorded traces ("trace:PATH").
type CustomWorkload struct {
	Mix workload.Mix
	// Shared makes all cores address one window (multithreaded apps).
	Shared bool
}

// ParseCustomWorkloads resolves a list of workload arguments (as figsim's
// -workload flag spells them) into custom-experiment workloads.
func ParseCustomWorkloads(names []string) ([]CustomWorkload, error) {
	var out []CustomWorkload
	for _, name := range names {
		mix, shared, err := workload.FindMix(name)
		if err != nil {
			return nil, err
		}
		out = append(out, CustomWorkload{Mix: mix, Shared: shared})
	}
	return out, nil
}

// Custom runs every evaluated preset over user-supplied workloads and
// tabulates IPC and weighted speedup over Base — the same pipeline (and
// result cache, and fingerprints) that produces the paper's figures,
// pointed at workloads the paper never shipped: recorded traces,
// adversarial mixes, cross-tool corpora. Rows keep the order the
// workloads were given in.
func (r *Runner) Custom(workloads []CustomWorkload) (*stats.Table, error) {
	if len(workloads) == 0 {
		return nil, fmt.Errorf("harness: custom experiment needs at least one workload (figbench -workload NAME[,NAME...] custom)")
	}
	cfgOf := func(p sim.Preset, w CustomWorkload) sim.Config {
		cfg := r.baseConfig(p, w.Mix)
		cfg.SharedFootprint = w.Shared
		return cfg
	}
	var jobs []sim.Config
	for _, w := range workloads {
		for _, p := range sim.Presets() {
			jobs = append(jobs, cfgOf(p, w))
		}
	}
	res, err := r.runAll(jobs)
	if err != nil {
		return nil, err
	}

	t := &stats.Table{
		Title:  "Custom workloads: IPC sum (Base) and weighted speedup over Base",
		Header: append([]string{"workload", "cores", "Base IPC"}, presetNames(perfPresets)...),
	}
	for _, w := range workloads {
		base := res.of(cfgOf(sim.Base, w))
		row := []string{w.Mix.Name, fmt.Sprintf("%d", len(w.Mix.Apps)), stats.F(base.IPCSum(), 3)}
		for _, p := range perfPresets {
			row = append(row, stats.F(res.of(cfgOf(p, w)).WeightedSpeedupOver(base), 3))
		}
		t.AddRow(row...)
	}
	t.AddNote("speedups are weighted per core against the Base run of the same workload; recorded traces replay deterministically")
	return t, nil
}
