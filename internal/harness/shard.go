package harness

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/expcache"
	"repro/internal/sim"
	"repro/internal/stats"
)

// errPlanOnly aborts an experiment builder after runAll has captured its
// jobs during enumeration. Builders propagate runAll errors verbatim, so
// the sentinel unwinds them without executing any simulation or touching
// any table — the enumeration contract every builder already satisfies by
// returning on the first runAll error.
var errPlanOnly = errors.New("harness: plan-only enumeration")

// EnumerateJobs runs the given experiment builders in plan-only mode and
// returns every distinct simulation job of their combined matrix in
// ascending fingerprint order — the canonical matrix index that sharding
// partitions. No simulation runs: each builder's first runAll call
// records its jobs and aborts the builder. Builders that run no
// simulations (static tables, the circuit model) contribute no jobs;
// their output is discarded.
//
// The returned order depends only on the set of jobs, not on builder
// order or per-builder enumeration order, so every shard of a split
// derives the identical index as long as it is launched with the same
// experiment set and scale (the manifest records both for verification).
//
// Not safe to call concurrently with the builders' normal execution.
func (r *Runner) EnumerateJobs(builders ...func() (*stats.Table, error)) ([]sim.Config, error) {
	r.planning = true
	r.plan = nil
	r.planSeen = make(map[sim.Fingerprint]bool)
	defer func() {
		r.planning = false
		r.plan = nil
		r.planSeen = nil
	}()
	for _, build := range builders {
		if _, err := build(); err != nil && !errors.Is(err, errPlanOnly) {
			return nil, err
		}
	}
	jobs := make([]sim.Config, len(r.plan))
	copy(jobs, r.plan)
	SortByFingerprint(jobs)
	return jobs, nil
}

// SortByFingerprint puts jobs into canonical ascending fingerprint order,
// the order the shard assignment rule is defined over.
func SortByFingerprint(jobs []sim.Config) {
	fps := make([]sim.Fingerprint, len(jobs))
	for i, cfg := range jobs {
		fps[i] = cfg.Fingerprint()
	}
	sort.Sort(&byFingerprint{jobs, fps})
}

type byFingerprint struct {
	jobs []sim.Config
	fps  []sim.Fingerprint
}

func (s *byFingerprint) Len() int { return len(s.jobs) }
func (s *byFingerprint) Less(i, j int) bool {
	return bytes.Compare(s.fps[i][:], s.fps[j][:]) < 0
}
func (s *byFingerprint) Swap(i, j int) {
	s.jobs[i], s.jobs[j] = s.jobs[j], s.jobs[i]
	s.fps[i], s.fps[j] = s.fps[j], s.fps[i]
}

// ShardJobs returns the subset of a fingerprint-sorted job list assigned
// to shard k of n (both 1-based; k in 1..n): job i belongs to shard
// expcache.ShardOf(i, n). Every job lands in exactly one shard and the
// split is balanced to within one job. jobs must come from EnumerateJobs
// (or SortByFingerprint): the positional rule is only stable over the
// canonical order.
func ShardJobs(jobs []sim.Config, k, n int) []sim.Config {
	var out []sim.Config
	for i, cfg := range jobs {
		if expcache.ShardOf(i, n) == k {
			out = append(out, cfg)
		}
	}
	return out
}

// ParseShard parses a "K/N" shard specification (as figbench's -shard
// flag takes it), requiring 1 <= K <= N.
func ParseShard(s string) (k, n int, err error) {
	a, b, ok := strings.Cut(s, "/")
	if ok {
		k, err = strconv.Atoi(strings.TrimSpace(a))
		if err == nil {
			n, err = strconv.Atoi(strings.TrimSpace(b))
		}
	}
	if !ok || err != nil || k < 1 || n < 1 || k > n {
		return 0, 0, fmt.Errorf("harness: invalid shard %q, want K/N with 1 <= K <= N", s)
	}
	return k, n, nil
}

// RunJobs computes the given configurations through the result cache —
// the execution half of a shard run: no figure is rendered, the cache
// directory fills with this shard's entries. Returns the number of
// distinct jobs (cached or computed).
func (r *Runner) RunJobs(jobs []sim.Config) (int, error) {
	res, err := r.runAll(jobs)
	if err != nil {
		return 0, err
	}
	return len(res), nil
}

// ShardManifest builds the manifest describing shard k of n over the
// canonical (fingerprint-sorted) full job index, stamped with the
// runner's scale and the experiment names the index was enumerated from.
func (r *Runner) ShardManifest(jobs []sim.Config, k, n int, experiments []string) *expcache.Manifest {
	m := &expcache.Manifest{
		Format: expcache.ManifestFormatVersion,
		Engine: sim.EngineVersion,
		Scale: fmt.Sprintf("insts=%d apps=%d mixes=%d mc=%d",
			r.scale.Insts, r.scale.SingleApps, r.scale.MixesPerCategory, r.scale.MCIterations),
		Experiments:  experiments,
		Shard:        k,
		NumShards:    n,
		Fingerprints: make([]string, len(jobs)),
	}
	for i, cfg := range jobs {
		fp := cfg.Fingerprint().String()
		m.Fingerprints[i] = fp
		if expcache.ShardOf(i, n) == k {
			m.Assigned = append(m.Assigned, fp)
		}
	}
	return m
}
