package fgss

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSnapshot builds a well-formed snapshot through Writer for the
// seed corpus.
func fuzzSnapshot(f *testing.F, engine uint32, fp [32]byte) []byte {
	f.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, engine, fp)
	w.Begin(1)
	w.U64(42)
	w.I64(-7)
	w.Bool(true)
	w.Bytes([]byte("payload"))
	w.End()
	w.Begin(2)
	w.Int(123456)
	w.End()
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReader drives NewReader and a generic section walk over arbitrary
// bytes. The engine version and fingerprint are lifted from the input's
// own header so the fuzzer reaches the section framing instead of
// stalling on the identity checks; the walk peeks each section's tag
// from the framing (white-box) and drains payloads through every scalar
// decoder. Nothing may panic or read outside the buffer — corrupt
// length fields must surface as sticky errors.
func FuzzReader(f *testing.F) {
	var fp [32]byte
	for i := range fp {
		fp[i] = byte(i)
	}
	f.Add(fuzzSnapshot(f, 3, fp))
	f.Add(fuzzSnapshot(f, 0, [32]byte{}))
	f.Add([]byte("FGSS"))
	f.Add([]byte{})
	// A section claiming more payload than the stream holds.
	bad := fuzzSnapshot(f, 3, fp)
	binary.LittleEndian.PutUint32(bad[HeaderSize+4:], 1<<30)
	f.Add(bad)

	f.Fuzz(func(t *testing.T, raw []byte) {
		var engine uint32
		var fprint [32]byte
		if len(raw) >= HeaderSize {
			engine = binary.LittleEndian.Uint32(raw[8:12])
			copy(fprint[:], raw[12:44])
		}
		r, err := NewReader(bytes.NewReader(raw), engine, fprint)
		if err != nil {
			return // refused: the only requirement is no panic
		}
		// Cap total scalar decodes so a megabyte of 1-byte varints does
		// not turn one exec into a million calls — the decoder surface is
		// fully exercised long before that.
		ops := 0
		for r.Err() == nil && r.off < len(r.data) && ops < 1<<12 {
			var tag uint32
			if len(r.data)-r.off >= 8 {
				tag = binary.LittleEndian.Uint32(r.data[r.off : r.off+4])
			}
			r.Section(tag)
			for ; r.Err() == nil && r.soff < len(r.sec) && ops < 1<<12; ops++ {
				switch ops % 4 {
				case 0:
					r.U64()
				case 1:
					r.I64()
				case 2:
					r.Bytes()
				case 3:
					r.Bool()
				}
			}
			if r.soff == len(r.sec) {
				r.EndSection()
			} else {
				// Budget ran out mid-section: skip the rest white-box so
				// EndSection's leftover check does not end the walk.
				r.soff = len(r.sec)
				r.EndSection()
			}
		}
		// Close must report leftovers or a sticky error, never panic.
		_ = r.Close()
	})
}

// FuzzWriterRoundTrip encodes fuzzer-chosen scalars through Writer and
// requires the Reader to decode them back exactly — the varint/zigzag/
// length-prefix encodings must round-trip for the whole value range.
func FuzzWriterRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), true, []byte(nil))
	f.Add(uint64(1<<63), int64(-1<<62), false, []byte("abc"))
	f.Add(^uint64(0), int64(1), true, bytes.Repeat([]byte{0xff}, 300))

	f.Fuzz(func(t *testing.T, u uint64, i int64, b bool, blob []byte) {
		var fp [32]byte
		var buf bytes.Buffer
		w := NewWriter(&buf, 7, fp)
		w.Begin(9)
		w.U64(u)
		w.I64(i)
		w.Bool(b)
		w.Bytes(blob)
		w.End()
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()), 7, fp)
		if err != nil {
			t.Fatal(err)
		}
		r.Section(9)
		if got := r.U64(); got != u {
			t.Fatalf("U64: got %d, want %d", got, u)
		}
		if got := r.I64(); got != i {
			t.Fatalf("I64: got %d, want %d", got, i)
		}
		if got := r.Bool(); got != b {
			t.Fatalf("Bool: got %v, want %v", got, b)
		}
		if got := r.Bytes(); !bytes.Equal(got, blob) {
			t.Fatalf("Bytes: got %q, want %q", got, blob)
		}
		r.EndSection()
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
