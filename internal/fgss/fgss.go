// Package fgss implements the FIGARO snapshot format (FGSS): the
// versioned binary container for sim.System checkpoints.
//
// Layout (all multi-byte integers little-endian):
//
//	offset  size  field
//	0       4     magic "FGSS"
//	4       2     format version (currently 1)
//	6       2     reserved (zero)
//	8       4     sim.EngineVersion of the writing build
//	12      32    config fingerprint (sim.Config.Fingerprint)
//	44      ...   sections
//
// Each section is a u32 tag, a u32 payload length, and the payload —
// a sequence of uvarint/zigzag-varint scalars and length-prefixed byte
// strings appended by one simulation layer. Sections appear in a fixed
// order; the reader demands each tag explicitly, so a reordered or
// missing section is a decode error, not silent misinterpretation.
//
// Refusal rules: NewReader rejects bad magic, an unknown format
// version, a mismatched EngineVersion, and a mismatched config
// fingerprint — a snapshot is only meaningful to the exact timing
// model and configuration that produced it. Close rejects trailing
// bytes so a truncated or padded file cannot pass as valid.
//
// Both Writer and Reader use a sticky error: layers append or decode
// unconditionally and the first failure is reported at the end (Flush,
// Close, or any intermediate Err call). This keeps per-layer
// Snapshot/Restore code free of error plumbing.
package fgss

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Magic identifies a FIGARO snapshot stream.
const Magic = "FGSS"

// FormatVersion is the current container format version.
const FormatVersion = 1

// HeaderSize is the byte length of the fixed header.
const HeaderSize = 44

// maxSnapshotBytes bounds how much NewReader will buffer, so a
// corrupt length field cannot drive an absurd allocation.
const maxSnapshotBytes = 1 << 30

// Writer assembles an FGSS stream section by section.
type Writer struct {
	out io.Writer
	buf []byte // current section payload
	tag uint32
	in  bool // inside a Begin/End pair
	err error
}

// NewWriter writes the FGSS header and returns a writer positioned at
// the first section.
func NewWriter(out io.Writer, engineVersion uint32, fingerprint [32]byte) *Writer {
	w := &Writer{out: out}
	var hdr [HeaderSize]byte
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], FormatVersion)
	// hdr[6:8] reserved, zero
	binary.LittleEndian.PutUint32(hdr[8:12], engineVersion)
	copy(hdr[12:44], fingerprint[:])
	if _, err := out.Write(hdr[:]); err != nil {
		w.err = fmt.Errorf("fgss: write header: %w", err)
	}
	return w
}

// Begin opens a new section with the given tag.
func (w *Writer) Begin(tag uint32) {
	if w.err == nil && w.in {
		w.err = fmt.Errorf("fgss: Begin(%d) inside unfinished section %d", tag, w.tag)
		return
	}
	w.tag = tag
	w.in = true
	w.buf = w.buf[:0]
}

// End closes the current section, writing its tag, length, and payload.
func (w *Writer) End() {
	if w.err != nil {
		return
	}
	if !w.in {
		w.err = fmt.Errorf("fgss: End without Begin")
		return
	}
	w.in = false
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], w.tag)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(w.buf)))
	if _, err := w.out.Write(hdr[:]); err != nil {
		w.err = fmt.Errorf("fgss: write section %d: %w", w.tag, err)
		return
	}
	if _, err := w.out.Write(w.buf); err != nil {
		w.err = fmt.Errorf("fgss: write section %d: %w", w.tag, err)
	}
}

// U64 appends an unsigned scalar as a uvarint.
func (w *Writer) U64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// I64 appends a signed scalar as a zigzag varint.
func (w *Writer) I64(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Int appends an int as a zigzag varint.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Flush reports the first error encountered, if any. The stream is
// complete once every section has been written; there is no trailer.
func (w *Writer) Flush() error {
	if w.err == nil && w.in {
		w.err = fmt.Errorf("fgss: Flush inside unfinished section %d", w.tag)
	}
	return w.err
}

// Reader decodes an FGSS stream section by section.
type Reader struct {
	data []byte
	off  int // next unread byte in data (section framing)
	sec  []byte
	soff int // next unread byte in sec (payload scalars)
	tag  uint32
	in   bool
	err  error
}

// NewReader buffers the stream, validates the header, and refuses a
// snapshot whose EngineVersion or config fingerprint does not match
// the caller's.
func NewReader(r io.Reader, engineVersion uint32, fingerprint [32]byte) (*Reader, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxSnapshotBytes+1))
	if err != nil {
		return nil, fmt.Errorf("fgss: read snapshot: %w", err)
	}
	if len(data) > maxSnapshotBytes {
		return nil, fmt.Errorf("fgss: snapshot exceeds %d bytes", maxSnapshotBytes)
	}
	if len(data) < HeaderSize {
		return nil, fmt.Errorf("fgss: truncated header: %d bytes, want at least %d", len(data), HeaderSize)
	}
	if string(data[0:4]) != Magic {
		return nil, fmt.Errorf("fgss: bad magic %q: not a FIGARO snapshot", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != FormatVersion {
		return nil, fmt.Errorf("fgss: unsupported snapshot format version %d (this build reads version %d)", v, FormatVersion)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != engineVersion {
		return nil, fmt.Errorf("fgss: snapshot was written by engine version %d, this build is version %d: timing models differ, restore refused", v, engineVersion)
	}
	var got [32]byte
	copy(got[:], data[12:44])
	if got != fingerprint {
		return nil, fmt.Errorf("fgss: snapshot config fingerprint %x does not match this run's config %x: restore refused", got[:4], fingerprint[:4])
	}
	return &Reader{data: data, off: HeaderSize}, nil
}

// Section opens the next section and requires its tag to match.
func (r *Reader) Section(tag uint32) {
	if r.err != nil {
		return
	}
	if r.in {
		r.err = fmt.Errorf("fgss: Section(%d) inside unfinished section %d", tag, r.tag)
		return
	}
	if len(r.data)-r.off < 8 {
		r.err = fmt.Errorf("fgss: truncated stream: want section %d, have %d bytes", tag, len(r.data)-r.off)
		return
	}
	got := binary.LittleEndian.Uint32(r.data[r.off : r.off+4])
	n := binary.LittleEndian.Uint32(r.data[r.off+4 : r.off+8])
	r.off += 8
	if got != tag {
		r.err = fmt.Errorf("fgss: section tag %d, want %d: layer order mismatch", got, tag)
		return
	}
	if uint64(n) > uint64(len(r.data)-r.off) {
		r.err = fmt.Errorf("fgss: section %d claims %d bytes, only %d remain", tag, n, len(r.data)-r.off)
		return
	}
	r.tag = tag
	r.in = true
	r.sec = r.data[r.off : r.off+int(n)]
	r.soff = 0
	r.off += int(n)
}

// EndSection closes the current section, requiring its payload to be
// fully consumed.
func (r *Reader) EndSection() {
	if r.err != nil {
		return
	}
	if !r.in {
		r.err = fmt.Errorf("fgss: EndSection without Section")
		return
	}
	if r.soff != len(r.sec) {
		r.err = fmt.Errorf("fgss: section %d: %d undecoded payload bytes", r.tag, len(r.sec)-r.soff)
		return
	}
	r.in = false
}

// U64 decodes one uvarint from the current section.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.sec[r.soff:])
	if n <= 0 {
		r.err = fmt.Errorf("fgss: section %d: truncated or overlong varint at offset %d", r.tag, r.soff)
		return 0
	}
	r.soff += n
	return v
}

// I64 decodes one zigzag varint from the current section.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.sec[r.soff:])
	if n <= 0 {
		r.err = fmt.Errorf("fgss: section %d: truncated or overlong varint at offset %d", r.tag, r.soff)
		return 0
	}
	r.soff += n
	return v
}

// Int decodes one zigzag varint as an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool decodes one byte as a boolean; any value other than 0 or 1 is
// a decode error.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.soff >= len(r.sec) {
		r.err = fmt.Errorf("fgss: section %d: truncated bool at offset %d", r.tag, r.soff)
		return false
	}
	b := r.sec[r.soff]
	r.soff++
	if b > 1 {
		r.err = fmt.Errorf("fgss: section %d: invalid bool byte %d at offset %d", r.tag, b, r.soff-1)
		return false
	}
	return b == 1
}

// Bytes decodes one length-prefixed byte string. The returned slice
// aliases the snapshot buffer; copy it if it must outlive the Reader.
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.sec)-r.soff) {
		r.err = fmt.Errorf("fgss: section %d: byte string claims %d bytes, only %d remain", r.tag, n, len(r.sec)-r.soff)
		return nil
	}
	b := r.sec[r.soff : r.soff+int(n)]
	r.soff += int(n)
	return b
}

// Err reports the first decode error encountered so far.
func (r *Reader) Err() error { return r.err }

// Close verifies the stream was fully consumed: no unfinished section
// and no trailing bytes after the last section.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.in {
		return fmt.Errorf("fgss: Close inside unfinished section %d", r.tag)
	}
	if r.off != len(r.data) {
		return fmt.Errorf("fgss: %d trailing bytes after the last section", len(r.data)-r.off)
	}
	return nil
}
