package fgss

import (
	"bytes"
	"strings"
	"testing"
)

func testFingerprint() [32]byte {
	var fp [32]byte
	for i := range fp {
		fp[i] = byte(i * 7)
	}
	return fp
}

// encode builds a small two-section stream for the rejection tests.
func encode(t *testing.T, engineVersion uint32, fp [32]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, engineVersion, fp)
	w.Begin(1)
	w.U64(42)
	w.I64(-7)
	w.Bool(true)
	w.Bytes([]byte("payload"))
	w.End()
	w.Begin(2)
	w.Int(5)
	w.End()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenHeader pins the exact on-disk header layout: any change to
// the magic, the field offsets, or the endianness breaks previously
// written snapshots and must be deliberate (with a FormatVersion bump),
// never accidental.
func TestGoldenHeader(t *testing.T) {
	fp := testFingerprint()
	img := encode(t, 3, fp)
	want := append([]byte{
		'F', 'G', 'S', 'S', // magic
		1, 0, // format version 1, little-endian u16
		0, 0, // reserved
		3, 0, 0, 0, // engine version 3, little-endian u32
	}, fp[:]...)
	if len(img) < HeaderSize {
		t.Fatalf("stream is %d bytes, want at least the %d-byte header", len(img), HeaderSize)
	}
	if !bytes.Equal(img[:HeaderSize], want) {
		t.Errorf("header bytes changed:\n got %x\nwant %x", img[:HeaderSize], want)
	}
}

func TestRoundTrip(t *testing.T) {
	fp := testFingerprint()
	img := encode(t, 3, fp)
	r, err := NewReader(bytes.NewReader(img), 3, fp)
	if err != nil {
		t.Fatal(err)
	}
	r.Section(1)
	if got := r.U64(); got != 42 {
		t.Errorf("U64 = %d, want 42", got)
	}
	if got := r.I64(); got != -7 {
		t.Errorf("I64 = %d, want -7", got)
	}
	if !r.Bool() {
		t.Error("Bool = false, want true")
	}
	if got := r.Bytes(); string(got) != "payload" {
		t.Errorf("Bytes = %q, want %q", got, "payload")
	}
	r.EndSection()
	r.Section(2)
	if got := r.Int(); got != 5 {
		t.Errorf("Int = %d, want 5", got)
	}
	r.EndSection()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReaderRejectsHeader mirrors the FGTR corrupt-trace suite for the
// snapshot container: every header defense refuses with a message that
// names the problem.
func TestReaderRejectsHeader(t *testing.T) {
	fp := testFingerprint()
	img := encode(t, 3, fp)

	otherFP := fp
	otherFP[0] ^= 0xff
	cases := []struct {
		name string
		img  []byte
		ev   uint32
		fp   [32]byte
		want string
	}{
		{"bad magic", append([]byte("NOPE"), img[4:]...), 3, fp, "not a FIGARO snapshot"},
		{"bad format version", func() []byte {
			b := bytes.Clone(img)
			b[4] = 99
			return b
		}(), 3, fp, "unsupported snapshot format version"},
		{"engine version mismatch", img, 4, fp, "engine version 3, this build is version 4"},
		{"fingerprint mismatch", img, 3, otherFP, "does not match this run's config"},
		{"truncated header", img[:HeaderSize/2], 3, fp, "truncated header"},
		{"empty", nil, 3, fp, "truncated header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewReader(bytes.NewReader(tc.img), tc.ev, tc.fp)
			if err == nil {
				t.Fatal("corrupt header accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

// TestReaderRejectsBody covers the section-level defenses: truncation,
// tag mismatch, oversized claims, trailing bytes, undecoded payload,
// and invalid bool bytes.
func TestReaderRejectsBody(t *testing.T) {
	fp := testFingerprint()
	img := encode(t, 3, fp)
	open := func(t *testing.T, b []byte) *Reader {
		t.Helper()
		r, err := NewReader(bytes.NewReader(b), 3, fp)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	t.Run("truncated section", func(t *testing.T) {
		r := open(t, img[:HeaderSize+4])
		r.Section(1)
		if err := r.Err(); err == nil || !strings.Contains(err.Error(), "truncated stream") {
			t.Errorf("err = %v, want truncated stream", err)
		}
	})

	t.Run("tag mismatch", func(t *testing.T) {
		r := open(t, img)
		r.Section(2)
		if err := r.Err(); err == nil || !strings.Contains(err.Error(), "layer order mismatch") {
			t.Errorf("err = %v, want layer order mismatch", err)
		}
	})

	t.Run("oversized section claim", func(t *testing.T) {
		b := bytes.Clone(img)
		b[HeaderSize+4] = 0xff // section 1's length field
		r := open(t, b)
		r.Section(1)
		if err := r.Err(); err == nil || !strings.Contains(err.Error(), "only") {
			t.Errorf("err = %v, want oversized-claim refusal", err)
		}
	})

	t.Run("undecoded payload bytes", func(t *testing.T) {
		r := open(t, img)
		r.Section(1)
		_ = r.U64() // leave the rest of the payload unread
		r.EndSection()
		if err := r.Err(); err == nil || !strings.Contains(err.Error(), "undecoded payload bytes") {
			t.Errorf("err = %v, want undecoded payload bytes", err)
		}
	})

	t.Run("trailing bytes", func(t *testing.T) {
		r := open(t, append(bytes.Clone(img), 0xAA))
		r.Section(1)
		_, _, _ = r.U64(), r.I64(), r.Bool()
		r.Bytes()
		r.EndSection()
		r.Section(2)
		r.Int()
		r.EndSection()
		if err := r.Close(); err == nil || !strings.Contains(err.Error(), "trailing bytes after the last section") {
			t.Errorf("Close = %v, want trailing-bytes refusal", err)
		}
	})

	t.Run("invalid bool byte", func(t *testing.T) {
		var buf bytes.Buffer
		w := NewWriter(&buf, 3, fp)
		w.Begin(1)
		w.U64(2) // will be read back as a bool byte > 1
		w.End()
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := open(t, buf.Bytes())
		r.Section(1)
		r.Bool()
		if err := r.Err(); err == nil || !strings.Contains(err.Error(), "invalid bool byte") {
			t.Errorf("err = %v, want invalid bool byte", err)
		}
	})

	t.Run("overlong byte string", func(t *testing.T) {
		var buf bytes.Buffer
		w := NewWriter(&buf, 3, fp)
		w.Begin(1)
		w.U64(1 << 20) // length prefix far beyond the payload
		w.End()
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := open(t, buf.Bytes())
		r.Section(1)
		r.Bytes()
		if err := r.Err(); err == nil || !strings.Contains(err.Error(), "byte string claims") {
			t.Errorf("err = %v, want byte-string claim refusal", err)
		}
	})
}

// TestWriterMisuse pins the writer's framing defenses.
func TestWriterMisuse(t *testing.T) {
	fp := testFingerprint()
	var buf bytes.Buffer
	w := NewWriter(&buf, 3, fp)
	w.Begin(1)
	w.Begin(2) // nested Begin
	if err := w.Flush(); err == nil || !strings.Contains(err.Error(), "inside unfinished section") {
		t.Errorf("nested Begin: Flush = %v, want unfinished-section error", err)
	}

	buf.Reset()
	w = NewWriter(&buf, 3, fp)
	w.End()
	if err := w.Flush(); err == nil || !strings.Contains(err.Error(), "End without Begin") {
		t.Errorf("bare End: Flush = %v, want End-without-Begin error", err)
	}

	buf.Reset()
	w = NewWriter(&buf, 3, fp)
	w.Begin(1)
	if err := w.Flush(); err == nil || !strings.Contains(err.Error(), "Flush inside unfinished section") {
		t.Errorf("open section: Flush = %v, want unfinished-section error", err)
	}
}
