package cache

import (
	"fmt"
	"unsafe"

	"repro/internal/arena"
	"repro/internal/ev"
)

// Scheduler defers an event token by a number of CPU cycles. The system
// simulator provides the implementation; it must also be able to
// execute tokens (ev.Dispatcher), because a cache fill fires its
// waiters synchronously instead of bouncing them through the queue.
type Scheduler interface {
	After(delay int64, tok ev.Token)
	ev.Dispatcher
}

// LevelSchedulerFactory is an optional refinement of Scheduler: a
// scheduler that can hand out a sub-scheduler dedicated to one fixed
// delay. Every After call a Cache issues uses the same delay (its lookup
// latency), so its deferred tokens become due in non-decreasing order
// — a plain FIFO, which a delay-aware scheduler can service without
// paying heap push/pop per event. The factory may hand the same
// sub-scheduler to every caller with the same latency (tokens from
// different caches at one delay still become due in schedule order). New
// unwraps the factory once at construction; plain Schedulers keep
// working unchanged.
type LevelSchedulerFactory interface {
	LevelScheduler(latency int64) Scheduler
}

// Backend receives misses and write-backs from a cache level: either the
// next cache level or the memory-system adapter.
type Backend interface {
	// Request forwards a block fetch (read) or write-back (write).
	// onDone is dispatched when a fetch completes; it is the zero Token
	// for write-backs.
	Request(addr uint64, isWrite bool, coreID int, onDone ev.Token)
}

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	BlockBytes int
	// Latency is the lookup latency in CPU cycles, applied to hits and to
	// miss detection before the request goes downstream.
	Latency int64
	// MSHRs bounds outstanding misses; 0 means unbounded. Table 1 gives
	// 8 MSHRs per core at L1; lower levels are modelled unbounded.
	MSHRs int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0:
		return fmt.Errorf("cache %s: size, ways and block bytes must be positive", c.Name)
	case c.SizeBytes%(c.Ways*c.BlockBytes) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by ways*block (%d)",
			c.Name, c.SizeBytes, c.Ways*c.BlockBytes)
	case (c.SizeBytes/(c.Ways*c.BlockBytes))&(c.SizeBytes/(c.Ways*c.BlockBytes)-1) != 0:
		return fmt.Errorf("cache %s: set count must be a power of two", c.Name)
	case c.Latency < 0 || c.MSHRs < 0:
		return fmt.Errorf("cache %s: latency and MSHRs must be non-negative", c.Name)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   int64
}

type mshr struct {
	blockAddr uint64
	waiters   []ev.Token
	// markDirty records that a write merged into this outstanding fetch,
	// so the filled line starts dirty.
	markDirty bool
}

// Cache is one cache level.
type Cache struct {
	cfg Config
	// lines is the flat backing array of all sets (set i occupies
	// lines[i*Ways:(i+1)*Ways]). One pointer-free allocation: the GC
	// never scans it, and construction is a single zeroed make — both
	// matter when the harness builds thousands of short-lived systems.
	lines []line
	setsN uint64
	shift uint
	next  Backend   //fglint:preserved wiring, rebound by Hierarchy on construction and reuse alike
	sched Scheduler //fglint:preserved wiring, rebound by Hierarchy on construction and reuse alike
	// disp executes waiter tokens synchronously at fill time. Normally
	// the unwrapped scheduler passed to New; separate field because New
	// may replace sched with a level sub-scheduler.
	disp ev.Dispatcher //fglint:preserved wiring, bound once at construction
	// id is this cache's node ID in its Hierarchy (see Hierarchy.Node):
	// the identifier MSHRStart/MSHRFill event tokens carry so a restored
	// run can route them back here. 0 until SetNodeID.
	id int32 //fglint:preserved topology constant, assigned at Hierarchy construction
	// Outstanding misses, in a small slice scanned linearly. Bounded
	// levels (MSHRs > 0, the per-core L1s) hold at most Table 1's 8
	// entries; unbounded levels stay structurally small too — their
	// misses are fed by the bounded L1s plus queued write-backs — so the
	// linear scan beats map hashing on every lookup, insert and remove.
	active []*mshr
	free   []*mshr //fglint:preserved recycled MSHRs are fully re-initialized by newMSHR before reuse
	clock  int64
	coreID int // reported downstream for per-core accounting

	// Stats.
	Hits, Misses      int64
	WriteBacks        int64
	MSHRMerges        int64
	MSHRFullStalls    int64
	ReadAcc, WriteAcc int64
}

// New builds a cache level on top of next.
func New(cfg Config, next Backend, sched Scheduler, coreID int) (*Cache, error) {
	return NewIn(nil, cfg, next, sched, coreID)
}

// LineArrayBytes returns the size of the flat line array New allocates
// for this configuration — the dominant memory of a cache level — so a
// caller providing an arena can pre-size it.
func (c Config) LineArrayBytes() int {
	if c.Ways <= 0 || c.BlockBytes <= 0 {
		return 0
	}
	sets := c.SizeBytes / (c.Ways * c.BlockBytes)
	return sets * c.Ways * int(unsafe.Sizeof(line{}))
}

// NewIn builds a cache level on top of next, carving the line array out
// of a (the line struct is pointer-free by design). A nil arena keeps
// the plain heap allocation.
func NewIn(a *arena.Arena, cfg Config, next Backend, sched Scheduler, coreID int) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	disp := ev.Dispatcher(sched)
	if f, ok := sched.(LevelSchedulerFactory); ok {
		sched = f.LevelScheduler(cfg.Latency)
	}
	setsN := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	c := &Cache{
		cfg:    cfg,
		lines:  arena.Slice[line](a, setsN*cfg.Ways),
		setsN:  uint64(setsN),
		next:   next,
		sched:  sched,
		disp:   disp,
		coreID: coreID,
	}
	mshrCap := cfg.MSHRs
	if mshrCap <= 0 {
		mshrCap = 16
	}
	c.active = make([]*mshr, 0, mshrCap)
	shift := uint(0)
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		shift++
	}
	c.shift = shift
	return c, nil
}

// SetNodeID assigns the cache's node ID — the ID its event tokens carry.
// NewHierarchy assigns IDs in construction order; standalone caches
// (tests) keep the zero ID.
func (c *Cache) SetNodeID(id int32) { c.id = id }

// NodeID returns the cache's node ID.
func (c *Cache) NodeID() int32 { return c.id }

// Reset invalidates every line and zeroes all counters and outstanding
// misses, returning the cache to its freshly constructed state while
// keeping its allocations — the flat line array (the dominant cost of
// building a hierarchy), the MSHR free list, and the set-index geometry.
// Outstanding MSHRs are recycled without firing their waiters; the
// caller resets the scheduler that held the corresponding events, so no
// stale token can fire afterwards.
func (c *Cache) Reset() {
	clear(c.lines)
	c.clock = 0
	for i, m := range c.active {
		m.waiters = m.waiters[:0]
		c.free = append(c.free, m)
		c.active[i] = nil
	}
	c.active = c.active[:0]
	c.Hits, c.Misses = 0, 0
	c.WriteBacks, c.MSHRMerges, c.MSHRFullStalls = 0, 0, 0
	c.ReadAcc, c.WriteAcc = 0, 0
}

// set returns the ways of one cache set.
func (c *Cache) set(idx uint64) []line {
	w := uint64(c.cfg.Ways)
	return c.lines[idx*w : idx*w+w]
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setAndTag(addr uint64) (setIdx uint64, tag uint64) {
	block := addr >> c.shift
	return block & (c.setsN - 1), block / c.setsN
}

func (c *Cache) blockAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.BlockBytes) - 1)
}

// Access performs a load or store. It returns false when the access
// cannot be accepted this cycle (MSHRs exhausted); the caller must retry.
// onDone, unless zero, is dispatched when the data is available (hits:
// after the lookup latency; misses: when the fill returns).
func (c *Cache) Access(addr uint64, isWrite bool, onDone ev.Token) bool {
	c.clock++
	if isWrite {
		c.WriteAcc++
	} else {
		c.ReadAcc++
	}
	setIdx, tag := c.setAndTag(addr)
	set := c.set(setIdx)
	for i := range set {
		// Tag first: a mismatch is the common way and is rejected on one
		// comparison without also loading the valid flag.
		if set[i].tag == tag && set[i].valid {
			set[i].lru = c.clock
			if isWrite {
				set[i].dirty = true
			}
			c.Hits++
			if !onDone.IsZero() {
				c.sched.After(c.cfg.Latency, onDone)
			}
			return true
		}
	}

	// Miss. Merge into an outstanding fetch of the same block if any.
	blk := c.blockAddr(addr)
	if m := c.findMSHR(blk); m != nil {
		c.MSHRMerges++
		c.Misses++
		if isWrite {
			m.markDirty = true
		}
		if !onDone.IsZero() {
			m.waiters = append(m.waiters, onDone)
		}
		return true
	}
	if c.cfg.MSHRs > 0 && len(c.active) >= c.cfg.MSHRs {
		c.MSHRFullStalls++
		return false
	}
	c.Misses++
	m := c.newMSHR(blk, isWrite)
	if !onDone.IsZero() {
		m.waiters = append(m.waiters, onDone)
	}
	c.addMSHR(m)
	// Fetch after the lookup latency (miss detection time).
	c.sched.After(c.cfg.Latency, ev.Token{Kind: ev.MSHRStart, ID: c.id, Arg: blk})
	return true
}

// StartFetch issues the downstream fetch for an outstanding miss: the
// MSHRStart token scheduled by Access has become due (the lookup latency
// elapsed, miss detected).
func (c *Cache) StartFetch(blk uint64) {
	c.next.Request(blk, false, c.coreID, ev.Token{Kind: ev.MSHRFill, ID: c.id, Arg: blk})
}

// findMSHR returns the outstanding miss for blk, or nil.
func (c *Cache) findMSHR(blk uint64) *mshr {
	for _, m := range c.active {
		if m.blockAddr == blk {
			return m
		}
	}
	return nil
}

// addMSHR registers an outstanding miss.
func (c *Cache) addMSHR(m *mshr) {
	c.active = append(c.active, m)
}

// removeMSHR unregisters and returns the outstanding miss for blk.
// Swap-remove is safe: block addresses are unique in the set, and no
// simulated decision reads the slice order.
func (c *Cache) removeMSHR(blk uint64) *mshr {
	for i, m := range c.active {
		if m.blockAddr == blk {
			last := len(c.active) - 1
			c.active[i] = c.active[last]
			c.active[last] = nil
			c.active = c.active[:last]
			return m
		}
	}
	return nil
}

// AccountRefused credits n refused Access attempts to the statistics:
// the dense run loop retries a blocked access every cycle (each retry
// bumping the access counters and MSHR-full stalls), so the cycle-
// skipping engine calls this for the retries it skipped, keeping the
// diagnostic counters engine-independent.
func (c *Cache) AccountRefused(isWrite bool, n int64) {
	c.clock += n
	if isWrite {
		c.WriteAcc += n
	} else {
		c.ReadAcc += n
	}
	c.MSHRFullStalls += n
}

// newMSHR pops a recycled MSHR or builds a fresh one.
func (c *Cache) newMSHR(blk uint64, markDirty bool) *mshr {
	if n := len(c.free); n > 0 {
		m := c.free[n-1]
		c.free = c.free[:n-1]
		m.blockAddr = blk
		m.markDirty = markDirty
		return m
	}
	return &mshr{blockAddr: blk, markDirty: markDirty}
}

// CanAccept reports whether Access(addr, ...) would be accepted this
// cycle, without performing it: a hit, a merge into an outstanding fetch
// of the same block, or a free MSHR. It has no side effects, so the core
// model can probe whether issuing is possible before spending a cycle.
// The capacity check comes first: with a free MSHR every access is
// accepted, so the run loop's frequent probes skip the tag and MSHR
// scans entirely on the common path.
func (c *Cache) CanAccept(addr uint64) bool {
	if c.cfg.MSHRs == 0 || len(c.active) < c.cfg.MSHRs {
		return true
	}
	setIdx, tag := c.setAndTag(addr)
	set := c.set(setIdx)
	for i := range set {
		// Tag first: a mismatch is the common way and is rejected on one
		// comparison without also loading the valid flag.
		if set[i].tag == tag && set[i].valid {
			return true
		}
	}
	return c.findMSHR(c.blockAddr(addr)) != nil
}

// Fill installs a fetched block, evicting the LRU way (write-back if
// dirty) and waking all waiters. Exposed because the MSHRFill token the
// dispatcher routes here is scheduled by StartFetch's downstream
// request.
func (c *Cache) Fill(blk uint64) {
	setIdx, tag := c.setAndTag(blk)
	set := c.set(setIdx)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.WriteBacks++
		victimAddr := (set[victim].tag*c.setsN + setIdx) << c.shift
		c.next.Request(victimAddr, true, c.coreID, ev.Token{})
	}
	c.clock++
	m := c.removeMSHR(blk)
	set[victim] = line{tag: tag, valid: true, dirty: m.markDirty, lru: c.clock}
	// Waiters fire directly instead of bouncing through the scheduler at
	// zero delay: they only mark their own window entry (or upstream
	// MSHR) complete, so their order relative to other same-cycle events
	// is immaterial, and the detour through the event heap costs a
	// push+pop per miss on the hottest path in the simulator. now is not
	// threaded through Fill; waiter actions ignore their argument's
	// absolute value (completion bookkeeping is cycle-exact via the
	// scheduler events that triggered this fill).
	for i, w := range m.waiters {
		c.disp.Dispatch(w, 0)
		m.waiters[i] = ev.Token{}
	}
	m.waiters = m.waiters[:0]
	c.free = append(c.free, m)
}

// Request implements Backend, so a Cache can serve as the next level of
// another Cache: fetches become reads, write-backs become writes.
func (c *Cache) Request(addr uint64, isWrite bool, coreID int, onDone ev.Token) {
	// Lower levels are modelled without an MSHR bound (Table 1 specifies
	// MSHRs only per core); Access never refuses when MSHRs == 0.
	if !c.Access(addr, isWrite, onDone) {
		panic(fmt.Sprintf("cache %s: unbounded level refused a request", c.cfg.Name))
	}
}

// MissRate returns the fraction of accesses that missed.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Accesses returns the total number of accesses.
func (c *Cache) Accesses() int64 { return c.Hits + c.Misses }

// OutstandingMisses returns the number of allocated MSHRs.
func (c *Cache) OutstandingMisses() int { return len(c.active) }
