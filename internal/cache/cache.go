// Package cache implements the SRAM cache hierarchy of the simulated
// system (Table 1): per-core L1 (64 kB, 4-way) and L2 (256 kB, 8-way)
// caches and a shared last-level cache (2 MB per core, 16-way), all
// write-back write-allocate with LRU replacement and MSHR-based miss
// handling.
package cache

import (
	"fmt"
)

// Scheduler defers a callback by a number of CPU cycles. The system
// simulator provides the implementation.
type Scheduler interface {
	After(delay int64, fn func(now int64))
}

// Backend receives misses and write-backs from a cache level: either the
// next cache level or the memory-system adapter.
type Backend interface {
	// Request forwards a block fetch (read) or write-back (write).
	// onDone fires when a fetch completes; it is nil for write-backs.
	Request(addr uint64, isWrite bool, coreID int, onDone func(now int64))
}

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	BlockBytes int
	// Latency is the lookup latency in CPU cycles, applied to hits and to
	// miss detection before the request goes downstream.
	Latency int64
	// MSHRs bounds outstanding misses; 0 means unbounded. Table 1 gives
	// 8 MSHRs per core at L1; lower levels are modelled unbounded.
	MSHRs int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0:
		return fmt.Errorf("cache %s: size, ways and block bytes must be positive", c.Name)
	case c.SizeBytes%(c.Ways*c.BlockBytes) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by ways*block (%d)",
			c.Name, c.SizeBytes, c.Ways*c.BlockBytes)
	case (c.SizeBytes/(c.Ways*c.BlockBytes))&(c.SizeBytes/(c.Ways*c.BlockBytes)-1) != 0:
		return fmt.Errorf("cache %s: set count must be a power of two", c.Name)
	case c.Latency < 0 || c.MSHRs < 0:
		return fmt.Errorf("cache %s: latency and MSHRs must be non-negative", c.Name)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   int64
}

type mshr struct {
	blockAddr uint64
	waiters   []func(now int64)
	// markDirty records that a write merged into this outstanding fetch,
	// so the filled line starts dirty.
	markDirty bool
}

// Cache is one cache level.
type Cache struct {
	cfg    Config
	sets   [][]line
	setsN  uint64
	shift  uint
	next   Backend
	sched  Scheduler
	mshrs  map[uint64]*mshr
	clock  int64
	coreID int // reported downstream for per-core accounting

	// Stats.
	Hits, Misses      int64
	WriteBacks        int64
	MSHRMerges        int64
	MSHRFullStalls    int64
	ReadAcc, WriteAcc int64
}

// New builds a cache level on top of next.
func New(cfg Config, next Backend, sched Scheduler, coreID int) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	setsN := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	c := &Cache{
		cfg:    cfg,
		sets:   make([][]line, setsN),
		setsN:  uint64(setsN),
		next:   next,
		sched:  sched,
		mshrs:  make(map[uint64]*mshr),
		coreID: coreID,
	}
	shift := uint(0)
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		shift++
	}
	c.shift = shift
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setAndTag(addr uint64) (setIdx uint64, tag uint64) {
	block := addr >> c.shift
	return block & (c.setsN - 1), block / c.setsN
}

func (c *Cache) blockAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.BlockBytes) - 1)
}

// Access performs a load or store. It returns false when the access
// cannot be accepted this cycle (MSHRs exhausted); the caller must retry.
// onDone, if non-nil, fires when the data is available (hits: after the
// lookup latency; misses: when the fill returns).
func (c *Cache) Access(addr uint64, isWrite bool, onDone func(now int64)) bool {
	c.clock++
	if isWrite {
		c.WriteAcc++
	} else {
		c.ReadAcc++
	}
	setIdx, tag := c.setAndTag(addr)
	set := c.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.clock
			if isWrite {
				set[i].dirty = true
			}
			c.Hits++
			if onDone != nil {
				c.sched.After(c.cfg.Latency, onDone)
			}
			return true
		}
	}

	// Miss. Merge into an outstanding fetch of the same block if any.
	blk := c.blockAddr(addr)
	if m, ok := c.mshrs[blk]; ok {
		c.MSHRMerges++
		c.Misses++
		if isWrite {
			m.markDirty = true
		}
		if onDone != nil {
			m.waiters = append(m.waiters, onDone)
		}
		return true
	}
	if c.cfg.MSHRs > 0 && len(c.mshrs) >= c.cfg.MSHRs {
		c.MSHRFullStalls++
		return false
	}
	c.Misses++
	m := &mshr{blockAddr: blk, markDirty: isWrite}
	if onDone != nil {
		m.waiters = append(m.waiters, onDone)
	}
	c.mshrs[blk] = m
	// Fetch after the lookup latency (miss detection time).
	c.sched.After(c.cfg.Latency, func(now int64) {
		c.next.Request(blk, false, c.coreID, func(fillAt int64) { c.fill(blk) })
	})
	return true
}

// fill installs a fetched block, evicting the LRU way (write-back if
// dirty) and waking all waiters.
func (c *Cache) fill(blk uint64) {
	setIdx, tag := c.setAndTag(blk)
	set := c.sets[setIdx]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.WriteBacks++
		victimAddr := (set[victim].tag*c.setsN + setIdx) << c.shift
		c.next.Request(victimAddr, true, c.coreID, nil)
	}
	c.clock++
	m := c.mshrs[blk]
	set[victim] = line{tag: tag, valid: true, dirty: m.markDirty, lru: c.clock}
	delete(c.mshrs, blk)
	for _, w := range m.waiters {
		c.sched.After(0, w)
	}
}

// Request implements Backend, so a Cache can serve as the next level of
// another Cache: fetches become reads, write-backs become writes.
func (c *Cache) Request(addr uint64, isWrite bool, coreID int, onDone func(now int64)) {
	// Lower levels are modelled without an MSHR bound (Table 1 specifies
	// MSHRs only per core); Access never refuses when MSHRs == 0.
	if !c.Access(addr, isWrite, onDone) {
		panic(fmt.Sprintf("cache %s: unbounded level refused a request", c.cfg.Name))
	}
}

// MissRate returns the fraction of accesses that missed.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Accesses returns the total number of accesses.
func (c *Cache) Accesses() int64 { return c.Hits + c.Misses }

// OutstandingMisses returns the number of allocated MSHRs.
func (c *Cache) OutstandingMisses() int { return len(c.mshrs) }
