// Package cache implements the SRAM cache hierarchy of the simulated
// system (Table 1): per-core L1 (64 kB, 4-way) and L2 (256 kB, 8-way)
// caches and a shared last-level cache (2 MB per core, 16-way), all
// write-back write-allocate with LRU replacement and MSHR-based miss
// handling.
//
// In the layer stack this package sits between the core model
// (internal/cpu issues loads and stores into the L1) and the memory
// controller (internal/memctrl receives LLC misses and write-backs). It
// is a timing filter, not a data store: lookups and fills move tags and
// occupancy, and only misses that escape the LLC become DRAM traffic.
// The hierarchy is on the simulator's zero-allocation steady-state path:
// lines live in one flat, pointer-free array per cache and MSHRs are
// pooled, which BenchmarkAccessPathAllocs enforces.
//
// Hierarchy.Snapshot/Restore (snapshot.go) serialize every cache's tag
// and LRU state plus in-flight MSHRs for the system checkpoint
// lifecycle (sim.System.Snapshot).
package cache
