package cache

import (
	"fmt"

	"repro/internal/arena"
)

// HierarchyConfig describes the full SRAM hierarchy of Table 1.
type HierarchyConfig struct {
	L1    Config
	L2    Config
	LLC   Config // total size; the caller scales by core count
	Cores int
	// Arena, when non-nil, backs every level's line array. The caller
	// owns it and must keep it alive as long as the hierarchy.
	Arena *arena.Arena
}

// LineArrayBytes returns the combined size of the line arrays the full
// hierarchy allocates, for pre-sizing an arena.
func (cfg HierarchyConfig) LineArrayBytes() int {
	return cfg.LLC.LineArrayBytes() + cfg.Cores*(cfg.L1.LineArrayBytes()+cfg.L2.LineArrayBytes())
}

// DefaultHierarchyConfig returns Table 1's hierarchy for the given core
// count: L1 4-way 64 kB, L2 8-way 256 kB, LLC 16-way 2 MB per core,
// 64 B blocks, 8 MSHRs per core.
func DefaultHierarchyConfig(cores int) HierarchyConfig {
	return HierarchyConfig{
		Cores: cores,
		L1:    Config{Name: "L1", SizeBytes: 64 << 10, Ways: 4, BlockBytes: 64, Latency: 4, MSHRs: 8},
		L2:    Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8, BlockBytes: 64, Latency: 12},
		LLC:   Config{Name: "LLC", SizeBytes: cores * (2 << 20), Ways: 16, BlockBytes: 64, Latency: 38},
	}
}

// Hierarchy wires per-core L1+L2 caches to a shared LLC over a memory
// backend. It also acts as the cache node registry: every level gets a
// dense node ID in construction order (LLC first, then each core's L2
// and L1), the identifier MSHR event tokens carry so the dispatcher —
// and a restored checkpoint — can route them back to their cache.
type Hierarchy struct {
	L1s []*Cache
	L2s []*Cache
	LLC *Cache

	nodes []*Cache //fglint:preserved topology registry, fixed at construction
}

// NewHierarchy builds the hierarchy on top of mem.
func NewHierarchy(cfg HierarchyConfig, mem Backend, sched Scheduler) (*Hierarchy, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("cache: cores must be positive, got %d", cfg.Cores)
	}
	llc, err := NewIn(cfg.Arena, cfg.LLC, mem, sched, -1)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{LLC: llc}
	h.register(llc)
	for i := 0; i < cfg.Cores; i++ {
		l2cfg := cfg.L2
		l2cfg.Name = fmt.Sprintf("L2.%d", i)
		l2, err := NewIn(cfg.Arena, l2cfg, llc, sched, i)
		if err != nil {
			return nil, err
		}
		l1cfg := cfg.L1
		l1cfg.Name = fmt.Sprintf("L1.%d", i)
		l1, err := NewIn(cfg.Arena, l1cfg, l2, sched, i)
		if err != nil {
			return nil, err
		}
		h.register(l2)
		h.register(l1)
		h.L1s = append(h.L1s, l1)
		h.L2s = append(h.L2s, l2)
	}
	return h, nil
}

// register assigns the next node ID to c.
func (h *Hierarchy) register(c *Cache) {
	c.SetNodeID(int32(len(h.nodes)))
	h.nodes = append(h.nodes, c)
}

// Node returns the cache with the given node ID.
func (h *Hierarchy) Node(id int32) *Cache { return h.nodes[id] }

// Nodes returns every cache level in node-ID order.
func (h *Hierarchy) Nodes() []*Cache { return h.nodes }

// Reset invalidates and zeroes every level, keeping all allocations (see
// Cache.Reset). The hierarchy's shape — core count, level sizes — is
// fixed at construction; Reset only clears state between runs.
func (h *Hierarchy) Reset() {
	h.LLC.Reset()
	for i := range h.L1s {
		h.L1s[i].Reset()
		h.L2s[i].Reset()
	}
}

// LLCMPKI returns the last-level-cache misses per kilo-instruction given
// the retired instruction count — the paper's memory-intensity metric
// (Table 2 classifies applications at 10 MPKI).
func (h *Hierarchy) LLCMPKI(instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(h.LLC.Misses) / float64(instructions) * 1000
}
