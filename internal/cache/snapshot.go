package cache

import (
	"repro/internal/ev"
	"repro/internal/fgss"
)

// Snapshot appends one cache level's full mutable state: every line,
// the LRU clock, the outstanding misses with their waiter tokens, and
// the statistics counters. MSHRs are emitted in active-slice order —
// deterministic (allocation and swap-remove order is a pure function of
// the simulated history), so snapshot bytes are reproducible.
func (c *Cache) Snapshot(w *fgss.Writer) {
	w.Int(len(c.lines))
	for i := range c.lines {
		l := &c.lines[i]
		w.U64(l.tag)
		w.Bool(l.valid)
		w.Bool(l.dirty)
		w.I64(l.lru)
	}
	w.I64(c.clock)
	snapMSHR := func(m *mshr) {
		w.U64(m.blockAddr)
		w.Bool(m.markDirty)
		w.Int(len(m.waiters))
		for _, t := range m.waiters {
			w.U64(uint64(t.Kind))
			w.I64(int64(t.ID))
			w.U64(t.Arg)
		}
	}
	w.Int(len(c.active))
	for _, m := range c.active {
		snapMSHR(m)
	}
	w.I64(c.Hits)
	w.I64(c.Misses)
	w.I64(c.WriteBacks)
	w.I64(c.MSHRMerges)
	w.I64(c.MSHRFullStalls)
	w.I64(c.ReadAcc)
	w.I64(c.WriteAcc)
}

// Restore reads back what Snapshot wrote. Existing outstanding misses
// are recycled to the free list first (mirroring Reset), then the
// snapshotted set is rebuilt through the normal allocation path. The
// receiver must have the snapshotted line count (a mismatch stops
// decoding).
func (c *Cache) Restore(r *fgss.Reader) {
	n := r.Int()
	if n != len(c.lines) {
		return
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		l := &c.lines[i]
		l.tag = r.U64()
		l.valid = r.Bool()
		l.dirty = r.Bool()
		l.lru = r.I64()
	}
	c.clock = r.I64()
	for i, m := range c.active {
		m.waiters = m.waiters[:0]
		c.free = append(c.free, m)
		c.active[i] = nil
	}
	c.active = c.active[:0]
	nm := r.Int()
	for i := 0; i < nm && r.Err() == nil; i++ {
		m := c.newMSHR(r.U64(), r.Bool())
		nw := r.Int()
		for j := 0; j < nw && r.Err() == nil; j++ {
			kind := ev.Kind(r.U64())
			id := int32(r.I64())
			m.waiters = append(m.waiters, ev.Token{Kind: kind, ID: id, Arg: r.U64()})
		}
		c.addMSHR(m)
	}
	c.Hits = r.I64()
	c.Misses = r.I64()
	c.WriteBacks = r.I64()
	c.MSHRMerges = r.I64()
	c.MSHRFullStalls = r.I64()
	c.ReadAcc = r.I64()
	c.WriteAcc = r.I64()
}

// Snapshot appends every level's state in node-ID order — the same
// fixed order the MSHR event tokens identify caches by.
func (h *Hierarchy) Snapshot(w *fgss.Writer) {
	w.Int(len(h.nodes))
	for _, c := range h.nodes {
		c.Snapshot(w)
	}
}

// Restore reads back what Snapshot wrote, level by level in node-ID
// order.
func (h *Hierarchy) Restore(r *fgss.Reader) {
	if r.Int() != len(h.nodes) {
		return
	}
	for _, c := range h.nodes {
		c.Restore(r)
	}
}
