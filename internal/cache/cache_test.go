package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/ev"
)

// testSched is a deterministic event scheduler and token dispatcher for
// unit tests. MSHR tokens route back to the cache under test via node;
// completion tokens invoke the closure registered with tok.
type testSched struct {
	now    int64
	events []tokEvent
	node   func(id int32) *Cache
	done   map[uint64]func(int64)
	nextID uint64
}

type tokEvent struct {
	at  int64
	tok ev.Token
}

func (s *testSched) After(delay int64, tok ev.Token) {
	s.events = append(s.events, tokEvent{s.now + delay, tok})
}

func (s *testSched) Dispatch(tok ev.Token, now int64) {
	switch tok.Kind {
	case ev.CoreSlot:
		if fn := s.done[tok.Arg]; fn != nil {
			fn(now)
		}
	case ev.MSHRStart:
		s.node(tok.ID).StartFetch(tok.Arg)
	case ev.MSHRFill:
		s.node(tok.ID).Fill(tok.Arg)
	}
}

// tok registers fn and returns a completion token that invokes it when
// dispatched. A nil fn yields the zero token (no completion wanted).
func (s *testSched) tok(fn func(int64)) ev.Token {
	if fn == nil {
		return ev.Token{}
	}
	if s.done == nil {
		s.done = make(map[uint64]func(int64))
	}
	s.nextID++
	s.done[s.nextID] = fn
	return ev.Token{Kind: ev.CoreSlot, Arg: s.nextID}
}

// run advances time, firing due events, until none remain or limit cycles
// pass.
func (s *testSched) run(limit int64) {
	for step := int64(0); step < limit; step++ {
		fired := false
		for i := 0; i < len(s.events); {
			if s.events[i].at <= s.now {
				tok := s.events[i].tok
				s.events = append(s.events[:i], s.events[i+1:]...)
				s.Dispatch(tok, s.now)
				fired = true
			} else {
				i++
			}
		}
		if len(s.events) == 0 && !fired {
			return
		}
		s.now++
	}
}

// memStub is a Backend that completes fetches after a fixed delay.
type memStub struct {
	sched   *testSched
	latency int64
	reads   int
	writes  int
	addrs   []uint64
}

func (m *memStub) Request(addr uint64, isWrite bool, coreID int, onDone ev.Token) {
	m.addrs = append(m.addrs, addr)
	if isWrite {
		m.writes++
		return
	}
	m.reads++
	if !onDone.IsZero() {
		m.sched.After(m.latency, onDone)
	}
}

func smallCfg() Config {
	return Config{Name: "t", SizeBytes: 1024, Ways: 2, BlockBytes: 64, Latency: 2, MSHRs: 4}
}

func newTestCache(t *testing.T, cfg Config) (*Cache, *memStub, *testSched) {
	t.Helper()
	s := &testSched{}
	m := &memStub{sched: s, latency: 20}
	c, err := New(cfg, m, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.node = func(int32) *Cache { return c }
	return c, m, s
}

func TestConfigValidate(t *testing.T) {
	if err := smallCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := smallCfg()
	bad.SizeBytes = 1000 // not divisible by ways*block
	if err := bad.Validate(); err == nil {
		t.Error("accepted non-divisible size")
	}
	bad = smallCfg()
	bad.SizeBytes = 3 * 2 * 64 // 3 sets: not a power of two
	if err := bad.Validate(); err == nil {
		t.Error("accepted non-power-of-two set count")
	}
}

func TestMissThenHit(t *testing.T) {
	c, m, s := newTestCache(t, smallCfg())
	var firstDone, secondDone int64
	if !c.Access(0x1000, false, s.tok(func(at int64) { firstDone = at + 1 })) {
		t.Fatal("first access refused")
	}
	s.run(1000)
	if firstDone == 0 {
		t.Fatal("miss never completed")
	}
	if m.reads != 1 {
		t.Fatalf("backend reads = %d, want 1", m.reads)
	}
	if !c.Access(0x1000, false, s.tok(func(at int64) { secondDone = at + 1 })) {
		t.Fatal("second access refused")
	}
	s.run(1000)
	if secondDone == 0 {
		t.Fatal("hit never completed")
	}
	if m.reads != 1 {
		t.Errorf("hit went to backend: reads = %d", m.reads)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestMSHRMergesSameBlock(t *testing.T) {
	c, m, s := newTestCache(t, smallCfg())
	done := 0
	for i := 0; i < 3; i++ {
		if !c.Access(0x2000+uint64(i*8), false, s.tok(func(int64) { done++ })) {
			t.Fatalf("access %d refused", i)
		}
	}
	s.run(1000)
	if done != 3 {
		t.Fatalf("completions = %d, want 3", done)
	}
	if m.reads != 1 {
		t.Errorf("backend reads = %d, want 1 (merged)", m.reads)
	}
	if c.MSHRMerges != 2 {
		t.Errorf("MSHRMerges = %d, want 2", c.MSHRMerges)
	}
}

func TestMSHRLimitRefuses(t *testing.T) {
	c, _, _ := newTestCache(t, smallCfg())
	for i := 0; i < 4; i++ {
		if !c.Access(uint64(i)*0x1000, false, ev.Token{}) {
			t.Fatalf("access %d refused below MSHR limit", i)
		}
	}
	if c.Access(0x9000, false, ev.Token{}) {
		t.Error("access accepted beyond MSHR limit")
	}
	if c.MSHRFullStalls != 1 {
		t.Errorf("MSHRFullStalls = %d, want 1", c.MSHRFullStalls)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := smallCfg()
	c, m, s := newTestCache(t, cfg)
	// Fill both ways of set 0 (set count = 1024/128 = 8; stride 8*64=512).
	c.Access(0x0000, true, ev.Token{}) // write-allocates, dirty
	s.run(1000)
	c.Access(0x0200, false, ev.Token{})
	s.run(1000)
	// Third block in the same set evicts the LRU (0x0000, dirty).
	c.Access(0x0400, false, ev.Token{})
	s.run(1000)
	if c.WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d, want 1", c.WriteBacks)
	}
	if m.writes != 1 {
		t.Fatalf("backend writes = %d, want 1", m.writes)
	}
	// The write-back address must be the evicted block's address.
	found := false
	for _, a := range m.addrs {
		if a == 0x0000 {
			found = true
		}
	}
	if !found {
		t.Errorf("write-back address missing: %#x", m.addrs)
	}
	// Re-access of the evicted block misses again.
	c.Access(0x0000, false, ev.Token{})
	s.run(1000)
	if c.Misses != 4 {
		t.Errorf("Misses = %d, want 4", c.Misses)
	}
}

func TestLRUOrdering(t *testing.T) {
	c, _, s := newTestCache(t, smallCfg())
	c.Access(0x0000, false, ev.Token{})
	s.run(1000)
	c.Access(0x0200, false, ev.Token{})
	s.run(1000)
	// Touch 0x0000 so 0x0200 becomes LRU.
	c.Access(0x0000, false, ev.Token{})
	s.run(1000)
	c.Access(0x0400, false, ev.Token{}) // evicts 0x0200
	s.run(1000)
	c.Access(0x0000, false, ev.Token{}) // must still hit
	s.run(1000)
	if c.Hits != 2 {
		t.Errorf("Hits = %d, want 2 (touch + re-access)", c.Hits)
	}
}

func TestWriteMergeIntoOutstandingFetchMarksDirty(t *testing.T) {
	c, m, s := newTestCache(t, smallCfg())
	c.Access(0x0000, false, ev.Token{})
	c.Access(0x0000, true, ev.Token{}) // merges, marks dirty
	s.run(1000)
	// Evict it via two more blocks in set 0; must write back.
	c.Access(0x0200, false, ev.Token{})
	s.run(1000)
	c.Access(0x0400, false, ev.Token{})
	s.run(1000)
	if m.writes != 1 {
		t.Errorf("backend writes = %d, want 1 (merged write dirtied the line)", m.writes)
	}
}

func TestHierarchyPropagatesMisses(t *testing.T) {
	s := &testSched{}
	m := &memStub{sched: s, latency: 50}
	h, err := NewHierarchy(DefaultHierarchyConfig(2), m, s)
	if err != nil {
		t.Fatal(err)
	}
	s.node = h.Node
	if len(h.L1s) != 2 || len(h.L2s) != 2 {
		t.Fatalf("hierarchy has %d L1s / %d L2s, want 2/2", len(h.L1s), len(h.L2s))
	}
	done := false
	h.L1s[0].Access(0xABC000, false, s.tok(func(int64) { done = true }))
	s.run(5000)
	if !done {
		t.Fatal("access never completed through the hierarchy")
	}
	if h.L1s[0].Misses != 1 || h.L2s[0].Misses != 1 || h.LLC.Misses != 1 {
		t.Errorf("misses L1/L2/LLC = %d/%d/%d, want 1/1/1",
			h.L1s[0].Misses, h.L2s[0].Misses, h.LLC.Misses)
	}
	if m.reads != 1 {
		t.Errorf("memory reads = %d, want 1", m.reads)
	}
	// A second access from the other core hits in the shared LLC.
	done = false
	h.L1s[1].Access(0xABC000, false, s.tok(func(int64) { done = true }))
	s.run(5000)
	if !done {
		t.Fatal("cross-core access never completed")
	}
	if h.LLC.Hits != 1 {
		t.Errorf("LLC hits = %d, want 1 (shared)", h.LLC.Hits)
	}
	if m.reads != 1 {
		t.Errorf("memory reads = %d, want 1 (LLC absorbed)", m.reads)
	}
}

func TestLLCMPKI(t *testing.T) {
	s := &testSched{}
	m := &memStub{sched: s, latency: 10}
	h, err := NewHierarchy(DefaultHierarchyConfig(1), m, s)
	if err != nil {
		t.Fatal(err)
	}
	s.node = h.Node
	for i := 0; i < 10; i++ {
		h.L1s[0].Access(uint64(i)*1<<20, false, ev.Token{})
		s.run(1000)
	}
	if got := h.LLCMPKI(1000); got != 10 {
		t.Errorf("LLCMPKI = %g, want 10", got)
	}
}

// Property: for any access sequence, hits+misses equals accesses, and the
// number of distinct blocks fetched never exceeds the number of misses.
func TestPropertyCacheAccounting(t *testing.T) {
	f := func(addrs []uint32) bool {
		s := &testSched{}
		m := &memStub{sched: s, latency: 5}
		c, err := New(smallCfg(), m, s, 0)
		if err != nil {
			return false
		}
		s.node = func(int32) *Cache { return c }
		accepted := int64(0)
		for _, a := range addrs {
			if c.Access(uint64(a), a%5 == 0, ev.Token{}) {
				accepted++
			}
			s.run(100)
		}
		return c.Hits+c.Misses == accepted && int64(m.reads) <= c.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
