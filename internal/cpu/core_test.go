package cpu

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/ev"
)

// sched is a minimal event scheduler and token dispatcher shared by the
// test fixtures: MSHR tokens route to the single L1 under test, core-slot
// tokens to the single core.
type sched struct {
	now    int64
	events []tokEvent
	l1     *cache.Cache
	core   *Core
}

type tokEvent struct {
	at  int64
	tok ev.Token
}

func (s *sched) After(delay int64, tok ev.Token) {
	s.events = append(s.events, tokEvent{s.now + delay, tok})
}

func (s *sched) Dispatch(tok ev.Token, now int64) {
	switch tok.Kind {
	case ev.CoreSlot:
		s.core.CompleteSlot(int(tok.Arg))
	case ev.MSHRStart:
		s.l1.StartFetch(tok.Arg)
	case ev.MSHRFill:
		s.l1.Fill(tok.Arg)
	}
}

func (s *sched) fire() {
	for i := 0; i < len(s.events); {
		if s.events[i].at <= s.now {
			tok := s.events[i].tok
			s.events = append(s.events[:i], s.events[i+1:]...)
			s.Dispatch(tok, s.now)
		} else {
			i++
		}
	}
}

// fixedMem completes every fetch after a fixed delay.
type fixedMem struct {
	s       *sched
	latency int64
	reqs    int
}

func (m *fixedMem) Request(addr uint64, isWrite bool, coreID int, onDone ev.Token) {
	m.reqs++
	if onDone.IsZero() {
		return
	}
	m.s.After(m.latency, onDone)
}

// sliceTrace replays a fixed set of records, looping forever.
type sliceTrace struct {
	recs []TraceRecord
	pos  int
}

func (t *sliceTrace) Next() TraceRecord {
	r := t.recs[t.pos%len(t.recs)]
	t.pos++
	return r
}

func newCore(t *testing.T, recs []TraceRecord, memLatency int64, target int64) (*Core, *sched, *fixedMem) {
	t.Helper()
	s := &sched{}
	m := &fixedMem{s: s, latency: memLatency}
	l1, err := cache.New(cache.Config{
		Name: "L1", SizeBytes: 64 << 10, Ways: 4, BlockBytes: 64, Latency: 4, MSHRs: 8,
	}, m, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(0, DefaultConfig(), &sliceTrace{recs: recs}, l1, target)
	if err != nil {
		t.Fatal(err)
	}
	s.l1, s.core = l1, c
	return c, s, m
}

// run ticks the core until it reaches its target or limit cycles pass.
func run(c *Core, s *sched, limit int64) int64 {
	for ; s.now < limit; s.now++ {
		s.fire()
		c.Tick(s.now)
		if c.Done() {
			return s.now
		}
	}
	return limit
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.WindowSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero window")
	}
}

func TestPureComputeRetiresAtIssueWidth(t *testing.T) {
	// All bubbles: the core should retire ~3 IPC.
	c, s, _ := newCore(t, []TraceRecord{{Bubbles: 1 << 20}}, 10, 3000)
	end := run(c, s, 100000)
	if !c.Done() {
		t.Fatal("core never finished")
	}
	ipc := c.IPC(end)
	if ipc < 2.5 || ipc > 3.0 {
		t.Errorf("compute-bound IPC = %.2f, want ~3", ipc)
	}
}

func TestMemoryLatencyLimitsIPC(t *testing.T) {
	// A dependent-load-like trace: one load per record with few bubbles
	// and distinct addresses so every load misses L1. Higher memory
	// latency must reduce IPC.
	mkTrace := func() []TraceRecord {
		recs := make([]TraceRecord, 4096)
		for i := range recs {
			recs[i] = TraceRecord{Bubbles: 2, Addr: uint64(i) * 64 * 1024}
		}
		return recs
	}
	cFast, sFast, _ := newCore(t, mkTrace(), 20, 3000)
	endFast := run(cFast, sFast, 1000000)
	cSlow, sSlow, _ := newCore(t, mkTrace(), 200, 3000)
	endSlow := run(cSlow, sSlow, 1000000)
	if !cFast.Done() || !cSlow.Done() {
		t.Fatal("cores never finished")
	}
	if cSlow.IPC(endSlow) >= cFast.IPC(endFast) {
		t.Errorf("IPC with 200-cycle memory (%.3f) not lower than with 20-cycle (%.3f)",
			cSlow.IPC(endSlow), cFast.IPC(endFast))
	}
}

func TestWindowToleratesLatencyViaMLP(t *testing.T) {
	// Independent loads (no dependencies in this model) should overlap:
	// with 8 MSHRs the core sustains much better throughput than serial
	// loads would allow.
	recs := make([]TraceRecord, 4096)
	for i := range recs {
		recs[i] = TraceRecord{Bubbles: 30, Addr: uint64(i) * 64 * 1024}
	}
	c, s, _ := newCore(t, recs, 100, 30000)
	end := run(c, s, 3000000)
	if !c.Done() {
		t.Fatal("core never finished")
	}
	// Serial execution would give IPC ~= 31/ (100+30/3) ~ 0.24; MLP should
	// beat 0.5 comfortably.
	if ipc := c.IPC(end); ipc < 0.5 {
		t.Errorf("IPC = %.3f, want > 0.5 with memory-level parallelism", ipc)
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	// Stores that hit in L1 (small working set) retire immediately and
	// never wait on memory, so IPC stays near the issue width even with a
	// 500-cycle memory latency.
	recs := make([]TraceRecord, 64)
	for i := range recs {
		recs[i] = TraceRecord{Bubbles: 1, Addr: uint64(i%4) * 64, IsWrite: true}
	}
	c, s, _ := newCore(t, recs, 500, 2000)
	end := run(c, s, 500000)
	if !c.Done() {
		t.Fatal("store-heavy core never finished")
	}
	if ipc := c.IPC(end); ipc < 1.5 {
		t.Errorf("store-hit IPC = %.3f, want >= 1.5", ipc)
	}
}

func TestStoreMissesThrottleOnMSHRs(t *testing.T) {
	// Store misses write-allocate and consume MSHRs, so a stream of
	// distinct-address stores is bounded by memory bandwidth — but it must
	// still make forward progress.
	recs := make([]TraceRecord, 1024)
	for i := range recs {
		recs[i] = TraceRecord{Bubbles: 1, Addr: uint64(i) * 64 * 1024, IsWrite: true}
	}
	c, s, _ := newCore(t, recs, 100, 2000)
	run(c, s, 1000000)
	if !c.Done() {
		t.Fatal("store-miss core never finished")
	}
	if c.StoreStalls == 0 {
		t.Error("expected MSHR-full store stalls for distinct-address stores")
	}
	if c.LoadStalls != 0 {
		t.Errorf("pure-store trace credited %d load stalls", c.LoadStalls)
	}
}

func TestFinishedAtRecordedOnce(t *testing.T) {
	c, s, _ := newCore(t, []TraceRecord{{Bubbles: 100}}, 10, 300)
	run(c, s, 10000)
	first := c.FinishedAt
	if first == 0 {
		t.Fatal("FinishedAt not set")
	}
	// Keep running; FinishedAt must not move.
	for ; s.now < first+500; s.now++ {
		s.fire()
		c.Tick(s.now)
	}
	if c.FinishedAt != first {
		t.Errorf("FinishedAt moved from %d to %d", first, c.FinishedAt)
	}
	if c.Retired <= c.TargetInsts {
		t.Error("core stopped retiring after reaching its target")
	}
}

func TestMSHRExhaustionStallsIssue(t *testing.T) {
	// Loads to distinct blocks with zero bubbles and huge latency: after 8
	// outstanding misses the core must stall.
	recs := make([]TraceRecord, 64)
	for i := range recs {
		recs[i] = TraceRecord{Addr: uint64(i) * 64 * 1024}
	}
	c, s, _ := newCore(t, recs, 100000, 1<<40)
	for ; s.now < 200; s.now++ {
		s.fire()
		c.Tick(s.now)
	}
	if c.LoadStalls == 0 {
		t.Error("no load stalls despite MSHR exhaustion")
	}
	if got := c.WindowOccupancy(); got > DefaultConfig().WindowSize {
		t.Errorf("window occupancy %d exceeds size", got)
	}
}

func TestNewRejectsNilDeps(t *testing.T) {
	if _, err := New(0, DefaultConfig(), nil, nil, 10); err == nil {
		t.Error("accepted nil trace and l1")
	}
}

// TestAccountSkippedCreditsRightCounter exercises the skip-credit path
// directly: a core blocked on a refused load must accrue LoadStalls, a
// core blocked on a refused store StoreStalls, and a core with a full
// window WindowFull — exactly what the dense loop's per-cycle retries
// would have recorded.
func TestAccountSkippedCreditsRightCounter(t *testing.T) {
	block := func(isWrite bool) *Core {
		// Distinct-address accesses with no bubbles exhaust the 8 L1
		// MSHRs; the slow memory (never completes within the driven
		// window) keeps them exhausted, so the pending access is refused.
		recs := make([]TraceRecord, 64)
		for i := range recs {
			recs[i] = TraceRecord{Addr: uint64(i) * 64 * 1024, IsWrite: isWrite}
		}
		c, s, _ := newCore(t, recs, 1_000_000, 1<<40)
		for ; s.now < 64; s.now++ {
			s.fire()
			c.Tick(s.now)
		}
		if c.NextWake(s.now) != int64(math.MaxInt64) {
			t.Fatal("core not blocked after MSHR exhaustion")
		}
		return c
	}

	c := block(false)
	loads, stores := c.LoadStalls, c.StoreStalls
	c.AccountSkipped(100)
	if c.LoadStalls != loads+100 || c.StoreStalls != stores {
		t.Errorf("blocked load credited (load=%d store=%d), want load +100",
			c.LoadStalls-loads, c.StoreStalls-stores)
	}

	c = block(true)
	loads, stores = c.LoadStalls, c.StoreStalls
	c.AccountSkipped(100)
	if c.StoreStalls != stores+100 || c.LoadStalls != loads {
		t.Errorf("blocked store credited (load=%d store=%d), want store +100",
			c.LoadStalls-loads, c.StoreStalls-stores)
	}

	// Full window: loads that never complete fill all 256 entries.
	recs := []TraceRecord{{Bubbles: 1 << 30}}
	c, _, _ = newCore(t, recs, 1_000_000, 1<<40)
	c.count = c.cfg.WindowSize // simulate a filled window
	full := c.WindowFull
	c.AccountSkipped(7)
	if c.WindowFull != full+7 {
		t.Errorf("full window credited %d, want 7", c.WindowFull-full)
	}
}

// batchCore builds a core over an endless pure-bubble trace (no memory
// traffic, so no events) and ticks it a few cycles to reach a running
// state.
func batchCore(t *testing.T, bubbles int, target int64, warm int64) (*Core, *sched) {
	t.Helper()
	c, s, _ := newCore(t, []TraceRecord{{Bubbles: bubbles}}, 10, target)
	for ; s.now < warm; s.now++ {
		s.fire()
		c.Tick(s.now)
	}
	return c, s
}

// TestAdvanceMatchesDenseTicks is the unit-level equivalence check for
// the closed-form bubble batch: after Advance(now, k), the core must be
// observably identical to a twin that executed the same k cycles with
// per-cycle Ticks — immediately and on every subsequent cycle.
func TestAdvanceMatchesDenseTicks(t *testing.T) {
	for _, span := range []int64{1, 2, 3, 17, 300} {
		batched, s := batchCore(t, 1<<20, 1<<40, 7)
		dense, _ := batchCore(t, 1<<20, 1<<40, 7)

		now := s.now
		k := batched.BatchableCycles()
		if k < span {
			t.Fatalf("span %d: BatchableCycles = %d, test needs more headroom", span, k)
		}
		batched.AdvanceBatch(now-1, span)
		for j := int64(0); j < span; j++ {
			dense.Tick(now + j)
		}
		// The ring position is internal; everything observable must match.
		if batched.Retired != dense.Retired ||
			batched.WindowOccupancy() != dense.WindowOccupancy() ||
			batched.pending.Bubbles != dense.pending.Bubbles ||
			batched.FinishedAt != dense.FinishedAt {
			t.Fatalf("span %d diverged: batched (ret=%d occ=%d bub=%d fin=%d) dense (ret=%d occ=%d bub=%d fin=%d)",
				span, batched.Retired, batched.WindowOccupancy(), batched.pending.Bubbles, batched.FinishedAt,
				dense.Retired, dense.WindowOccupancy(), dense.pending.Bubbles, dense.FinishedAt)
		}
		// Keep ticking both densely: behaviour must stay in lockstep.
		for j := int64(0); j < 50; j++ {
			at := now + span + j
			batched.Tick(at)
			dense.Tick(at)
			if batched.Retired != dense.Retired {
				t.Fatalf("span %d: post-batch cycle %d retired %d vs %d",
					span, at, batched.Retired, dense.Retired)
			}
		}
	}
}

// TestAdvanceCrossesTargetWhereDenseWould pins the batch cap: a batch
// that reaches the instruction target must record FinishedAt on exactly
// the cycle the dense loop would have.
func TestAdvanceCrossesTargetWhereDenseWould(t *testing.T) {
	for _, target := range []int64{20, 21, 22, 23, 100} {
		batched, _ := batchCore(t, 1<<20, target, 3)
		dense, _ := batchCore(t, 1<<20, target, 3)

		now := int64(3)
		k := batched.BatchableCycles()
		if k <= 0 {
			t.Fatalf("target %d: core not batchable", target)
		}
		batched.AdvanceBatch(now-1, k)
		var j int64
		for ; !dense.Done() && j < 10*k; j++ {
			dense.Tick(now + j)
		}
		if !batched.Done() {
			t.Fatalf("target %d: batch of %d cycles did not finish the core", target, k)
		}
		if batched.FinishedAt != dense.FinishedAt || batched.Retired != dense.Retired {
			t.Errorf("target %d: batched fin=%d ret=%d, dense fin=%d ret=%d",
				target, batched.FinishedAt, batched.Retired, dense.FinishedAt, dense.Retired)
		}
	}
}

// TestBatchableCyclesGating verifies the batch preconditions: no batch
// without a buffered record, never more cycles than the bubble run
// sustains, and — with loads in flight — never past the point where
// retirement would reach an entry still waiting on its fill.
func TestBatchableCyclesGating(t *testing.T) {
	// A fresh core has no pending record: not batchable.
	c, s, _ := newCore(t, []TraceRecord{{Bubbles: 90}}, 50, 1<<40)
	if got := c.BatchableCycles(); got != 0 {
		t.Errorf("fresh core batchable for %d cycles", got)
	}
	// After one tick it holds a bubble run: batchable, capped at B/issue.
	s.fire()
	c.Tick(0)
	want := int64(c.pending.Bubbles / c.cfg.IssueWidth)
	if got := c.BatchableCycles(); got != want {
		t.Errorf("BatchableCycles = %d, want %d", got, want)
	}
	// With load misses in flight, a batch must keep every cycle fully
	// determined: full retire groups only within the retirable head run,
	// and never a cycle that would overflow the window.
	recs := make([]TraceRecord, 64)
	for i := range recs {
		recs[i] = TraceRecord{Bubbles: 300, Addr: uint64(i) * 64 * 1024}
	}
	c, s, _ = newCore(t, recs, 40, 1<<40)
	for ; s.now < 200; s.now++ {
		s.fire()
		c.Tick(s.now)
		if c.pendingFills == 0 {
			continue
		}
		got := c.BatchableCycles()
		if got == 0 {
			continue
		}
		iw := int64(c.cfg.IssueWidth)
		if max := int64(c.pending.Bubbles) / iw; got > max {
			t.Fatalf("cycle %d: batch %d exceeds bubble supply (%d)", s.now, got, max)
		}
		avail := c.retirableRun()
		if avail >= iw {
			if got > avail/iw {
				t.Fatalf("cycle %d: batch %d retires past the head run (%d retirable)",
					s.now, got, avail)
			}
		} else if int64(c.count)-avail+iw*got > int64(c.cfg.WindowSize) {
			t.Fatalf("cycle %d: batch %d overflows the window (count %d, avail %d)",
				s.now, got, c.count, avail)
		}
	}
}

// scanAvail recomputes the retirable head run from scratch.
func scanAvail(c *Core) int {
	n := 0
	i := c.head
	for n < c.count && c.done[i] {
		n++
		i++
		if i == c.cfg.WindowSize {
			i = 0
		}
	}
	return n
}

// TestAvailInvariant drives mixed traces (hits, misses, stores, MSHR
// pressure) and checks every cycle that the incrementally maintained
// retirable-run length matches a fresh scan of the window.
func TestAvailInvariant(t *testing.T) {
	for _, bubbles := range []int{0, 2, 40, 200} {
		recs := make([]TraceRecord, 512)
		for i := range recs {
			recs[i] = TraceRecord{
				Bubbles: bubbles,
				Addr:    uint64(i%97) * 64 * 257, // mix of reuse and misses
				IsWrite: i%5 == 0,
			}
		}
		c, s, _ := newCore(t, recs, 60, 1<<40)
		for ; s.now < 5_000; s.now++ {
			s.fire()
			c.Tick(s.now)
			if got, want := c.avail, scanAvail(c); got != want {
				t.Fatalf("bubbles=%d cycle %d: avail=%d, scan=%d", bubbles, s.now, got, want)
			}
			if b := c.BatchableCycles(); b > 0 {
				// Exercise the batch paths under the invariant too.
				c.AdvanceBatch(s.now, b)
				s.now += b
				if got, want := c.avail, scanAvail(c); got != want {
					t.Fatalf("bubbles=%d post-batch cycle %d: avail=%d, scan=%d", bubbles, s.now, got, want)
				}
			}
		}
	}
}

// inflightCore drives a core over a bubbles+loads trace until it has at
// least one load in flight and a batchable bubble run, then returns it.
func inflightCore(t *testing.T, bubbles int, latency int64, target int64) (*Core, *sched) {
	t.Helper()
	recs := make([]TraceRecord, 4096)
	for i := range recs {
		recs[i] = TraceRecord{Bubbles: bubbles, Addr: uint64(i) * 64 * 1024}
	}
	c, s, _ := newCore(t, recs, latency, target)
	for ; s.now < 100_000; s.now++ {
		s.fire()
		c.Tick(s.now)
		if c.pendingFills > 0 && c.BatchableCycles() > 0 {
			s.now++
			return c, s
		}
	}
	t.Fatal("core never reached an in-flight batchable state")
	return nil, nil
}

// TestAdvanceInFlightMatchesDenseTicks checks the closed form with loads
// outstanding: within the event horizon (no fill completes), Advance
// must leave the core bit-identical to per-cycle Ticks — including the
// ring itself, since pending fills pin absolute slot positions.
func TestAdvanceInFlightMatchesDenseTicks(t *testing.T) {
	for _, bubbles := range []int{120, 250, 1000} {
		batched, s := inflightCore(t, bubbles, 400, 1<<40)
		dense, sd := inflightCore(t, bubbles, 400, 1<<40)
		if s.now != sd.now {
			t.Fatalf("twin cores diverged during warmup: %d vs %d", s.now, sd.now)
		}
		now := s.now
		// Cap the batch at the twins' next scheduled event, as the run
		// loop would.
		span := batched.BatchableCycles()
		for _, e := range s.events {
			if h := e.at - now; h < span {
				span = h
			}
		}
		if span <= 0 {
			continue
		}
		batched.AdvanceBatch(now-1, span)
		for j := int64(0); j < span; j++ {
			dense.Tick(now + j)
		}
		if batched.Retired != dense.Retired ||
			batched.head != dense.head || batched.tail != dense.tail ||
			batched.count != dense.count ||
			batched.pending.Bubbles != dense.pending.Bubbles {
			t.Fatalf("bubbles=%d span=%d: batched (ret=%d head=%d tail=%d count=%d bub=%d) dense (ret=%d head=%d tail=%d count=%d bub=%d)",
				bubbles, span,
				batched.Retired, batched.head, batched.tail, batched.count, batched.pending.Bubbles,
				dense.Retired, dense.head, dense.tail, dense.count, dense.pending.Bubbles)
		}
		// Epochs are not compared: the batch skips bubble epoch bumps by
		// design (they only guard load-slot reuse), so only the done
		// flags must be bit-identical.
		for i := range batched.done {
			if batched.done[i] != dense.done[i] {
				t.Fatalf("bubbles=%d span=%d: slot %d done diverged (%v vs %v)",
					bubbles, span, i, batched.done[i], dense.done[i])
			}
		}
		// Let the outstanding fills land and the traces play on: the twins
		// must stay in lockstep.
		for j := int64(0); j < 2000; j++ {
			at := now + span + j
			s.now, sd.now = at, at
			s.fire()
			sd.fire()
			batched.Tick(at)
			dense.Tick(at)
			if batched.Retired != dense.Retired {
				t.Fatalf("bubbles=%d: post-batch cycle %d retired %d vs %d",
					bubbles, at, batched.Retired, dense.Retired)
			}
		}
	}
}
