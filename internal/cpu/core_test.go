package cpu

import (
	"testing"

	"repro/internal/cache"
)

// sched is a minimal event scheduler shared by the test fixtures.
type sched struct {
	now    int64
	events []struct {
		at int64
		fn func(int64)
	}
}

func (s *sched) After(delay int64, fn func(int64)) {
	s.events = append(s.events, struct {
		at int64
		fn func(int64)
	}{s.now + delay, fn})
}

func (s *sched) fire() {
	for i := 0; i < len(s.events); {
		if s.events[i].at <= s.now {
			fn := s.events[i].fn
			s.events = append(s.events[:i], s.events[i+1:]...)
			fn(s.now)
		} else {
			i++
		}
	}
}

// fixedMem completes every fetch after a fixed delay.
type fixedMem struct {
	s       *sched
	latency int64
	reqs    int
}

func (m *fixedMem) Request(addr uint64, isWrite bool, coreID int, onDone func(int64)) {
	m.reqs++
	if onDone == nil {
		return
	}
	m.s.After(m.latency, onDone)
}

// sliceTrace replays a fixed set of records, looping forever.
type sliceTrace struct {
	recs []TraceRecord
	pos  int
}

func (t *sliceTrace) Next() TraceRecord {
	r := t.recs[t.pos%len(t.recs)]
	t.pos++
	return r
}

func newCore(t *testing.T, recs []TraceRecord, memLatency int64, target int64) (*Core, *sched, *fixedMem) {
	t.Helper()
	s := &sched{}
	m := &fixedMem{s: s, latency: memLatency}
	l1, err := cache.New(cache.Config{
		Name: "L1", SizeBytes: 64 << 10, Ways: 4, BlockBytes: 64, Latency: 4, MSHRs: 8,
	}, m, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(0, DefaultConfig(), &sliceTrace{recs: recs}, l1, target)
	if err != nil {
		t.Fatal(err)
	}
	return c, s, m
}

// run ticks the core until it reaches its target or limit cycles pass.
func run(c *Core, s *sched, limit int64) int64 {
	for ; s.now < limit; s.now++ {
		s.fire()
		c.Tick(s.now)
		if c.Done() {
			return s.now
		}
	}
	return limit
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.WindowSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero window")
	}
}

func TestPureComputeRetiresAtIssueWidth(t *testing.T) {
	// All bubbles: the core should retire ~3 IPC.
	c, s, _ := newCore(t, []TraceRecord{{Bubbles: 1 << 20}}, 10, 3000)
	end := run(c, s, 100000)
	if !c.Done() {
		t.Fatal("core never finished")
	}
	ipc := c.IPC(end)
	if ipc < 2.5 || ipc > 3.0 {
		t.Errorf("compute-bound IPC = %.2f, want ~3", ipc)
	}
}

func TestMemoryLatencyLimitsIPC(t *testing.T) {
	// A dependent-load-like trace: one load per record with few bubbles
	// and distinct addresses so every load misses L1. Higher memory
	// latency must reduce IPC.
	mkTrace := func() []TraceRecord {
		recs := make([]TraceRecord, 4096)
		for i := range recs {
			recs[i] = TraceRecord{Bubbles: 2, Addr: uint64(i) * 64 * 1024}
		}
		return recs
	}
	cFast, sFast, _ := newCore(t, mkTrace(), 20, 3000)
	endFast := run(cFast, sFast, 1000000)
	cSlow, sSlow, _ := newCore(t, mkTrace(), 200, 3000)
	endSlow := run(cSlow, sSlow, 1000000)
	if !cFast.Done() || !cSlow.Done() {
		t.Fatal("cores never finished")
	}
	if cSlow.IPC(endSlow) >= cFast.IPC(endFast) {
		t.Errorf("IPC with 200-cycle memory (%.3f) not lower than with 20-cycle (%.3f)",
			cSlow.IPC(endSlow), cFast.IPC(endFast))
	}
}

func TestWindowToleratesLatencyViaMLP(t *testing.T) {
	// Independent loads (no dependencies in this model) should overlap:
	// with 8 MSHRs the core sustains much better throughput than serial
	// loads would allow.
	recs := make([]TraceRecord, 4096)
	for i := range recs {
		recs[i] = TraceRecord{Bubbles: 30, Addr: uint64(i) * 64 * 1024}
	}
	c, s, _ := newCore(t, recs, 100, 30000)
	end := run(c, s, 3000000)
	if !c.Done() {
		t.Fatal("core never finished")
	}
	// Serial execution would give IPC ~= 31/ (100+30/3) ~ 0.24; MLP should
	// beat 0.5 comfortably.
	if ipc := c.IPC(end); ipc < 0.5 {
		t.Errorf("IPC = %.3f, want > 0.5 with memory-level parallelism", ipc)
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	// Stores that hit in L1 (small working set) retire immediately and
	// never wait on memory, so IPC stays near the issue width even with a
	// 500-cycle memory latency.
	recs := make([]TraceRecord, 64)
	for i := range recs {
		recs[i] = TraceRecord{Bubbles: 1, Addr: uint64(i%4) * 64, IsWrite: true}
	}
	c, s, _ := newCore(t, recs, 500, 2000)
	end := run(c, s, 500000)
	if !c.Done() {
		t.Fatal("store-heavy core never finished")
	}
	if ipc := c.IPC(end); ipc < 1.5 {
		t.Errorf("store-hit IPC = %.3f, want >= 1.5", ipc)
	}
}

func TestStoreMissesThrottleOnMSHRs(t *testing.T) {
	// Store misses write-allocate and consume MSHRs, so a stream of
	// distinct-address stores is bounded by memory bandwidth — but it must
	// still make forward progress.
	recs := make([]TraceRecord, 1024)
	for i := range recs {
		recs[i] = TraceRecord{Bubbles: 1, Addr: uint64(i) * 64 * 1024, IsWrite: true}
	}
	c, s, _ := newCore(t, recs, 100, 2000)
	run(c, s, 1000000)
	if !c.Done() {
		t.Fatal("store-miss core never finished")
	}
	if c.LoadStalls == 0 {
		t.Error("expected MSHR-full stalls for distinct-address stores")
	}
}

func TestFinishedAtRecordedOnce(t *testing.T) {
	c, s, _ := newCore(t, []TraceRecord{{Bubbles: 100}}, 10, 300)
	run(c, s, 10000)
	first := c.FinishedAt
	if first == 0 {
		t.Fatal("FinishedAt not set")
	}
	// Keep running; FinishedAt must not move.
	for ; s.now < first+500; s.now++ {
		s.fire()
		c.Tick(s.now)
	}
	if c.FinishedAt != first {
		t.Errorf("FinishedAt moved from %d to %d", first, c.FinishedAt)
	}
	if c.Retired <= c.TargetInsts {
		t.Error("core stopped retiring after reaching its target")
	}
}

func TestMSHRExhaustionStallsIssue(t *testing.T) {
	// Loads to distinct blocks with zero bubbles and huge latency: after 8
	// outstanding misses the core must stall.
	recs := make([]TraceRecord, 64)
	for i := range recs {
		recs[i] = TraceRecord{Addr: uint64(i) * 64 * 1024}
	}
	c, s, _ := newCore(t, recs, 100000, 1<<40)
	for ; s.now < 200; s.now++ {
		s.fire()
		c.Tick(s.now)
	}
	if c.LoadStalls == 0 {
		t.Error("no load stalls despite MSHR exhaustion")
	}
	if got := c.WindowOccupancy(); got > DefaultConfig().WindowSize {
		t.Errorf("window occupancy %d exceeds size", got)
	}
}

func TestNewRejectsNilDeps(t *testing.T) {
	if _, err := New(0, DefaultConfig(), nil, nil, 10); err == nil {
		t.Error("accepted nil trace and l1")
	}
}
