package cpu

import "repro/internal/fgss"

// TraceReader returns the core's trace source, so the system layer can
// checkpoint the stream position alongside the core.
func (c *Core) TraceReader() TraceReader { return c.trace }

// Snapshot appends the core's full execution state: the instruction
// window ring (completion flags, slot epochs, issue epochs), the
// buffered trace record, progress, and stall counters. TargetInsts is
// configuration and does not travel in the snapshot.
func (c *Core) Snapshot(w *fgss.Writer) {
	w.Int(len(c.done))
	for i := range c.done {
		w.Bool(c.done[i])
		w.I64(c.epoch[i])
		w.I64(c.issueEp[i])
	}
	w.Int(c.head)
	w.Int(c.tail)
	w.Int(c.count)
	w.Int(c.pending.Bubbles)
	w.U64(c.pending.Addr)
	w.Bool(c.pending.IsWrite)
	w.Bool(c.hasPending)
	w.Int(c.pendingFills)
	w.Int(c.avail)
	w.I64(c.Retired)
	w.I64(c.FinishedAt)
	w.I64(c.LoadStalls)
	w.I64(c.StoreStalls)
	w.I64(c.WindowFull)
}

// Restore reads back what Snapshot wrote. The receiver must be built
// with the snapshotted window size (a mismatch stops decoding).
func (c *Core) Restore(r *fgss.Reader) {
	n := r.Int()
	if n != len(c.done) {
		return
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		c.done[i] = r.Bool()
		c.epoch[i] = r.I64()
		c.issueEp[i] = r.I64()
	}
	c.head = r.Int()
	c.tail = r.Int()
	c.count = r.Int()
	c.pending.Bubbles = r.Int()
	c.pending.Addr = r.U64()
	c.pending.IsWrite = r.Bool()
	c.hasPending = r.Bool()
	c.pendingFills = r.Int()
	c.avail = r.Int()
	c.Retired = r.I64()
	c.FinishedAt = r.I64()
	c.LoadStalls = r.I64()
	c.StoreStalls = r.I64()
	c.WindowFull = r.I64()
}
