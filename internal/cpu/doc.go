// Package cpu implements the trace-driven processor core model of the
// simulated system (Table 1): a simplified out-of-order core with a
// 256-entry instruction window and 3-wide issue/retire, in the style of
// Ramulator's attached core model. Non-memory instructions occupy window
// entries and retire immediately; loads occupy an entry until their data
// returns from the cache hierarchy; stores retire immediately (modelling
// a write buffer) but still traverse the hierarchy.
//
// The core is the top of the timing stack: it consumes the instruction
// stream internal/workload generates and pushes memory operations into
// internal/cache. Two accessors exist purely for the cycle-skipping
// engine in internal/sim: NextWake bounds the next cycle the core can
// make progress on its own, and BatchableCycles/AdvanceBatch execute
// bubble runs (non-memory instructions issuing at full width) in closed
// form instead of cycle by cycle. AccountSkipped credits the stall
// counters the dense reference loop would have recorded, keeping both
// engines bit-identical (TestEngineEquivalence).
//
// Core.Snapshot/Restore (snapshot.go) serialize the window ring, issue
// state, and per-core statistics for the system checkpoint lifecycle;
// the trace cursor itself is checkpointed by the system layer, which
// knows the concrete reader type (TraceReader exposes it).
package cpu
