package cpu

import (
	"fmt"
	"math"

	"repro/internal/arena"
	"repro/internal/cache"
	"repro/internal/ev"
)

// TraceRecord is one unit of a core's instruction trace: Bubbles
// non-memory instructions followed by one memory access.
type TraceRecord struct {
	Bubbles int    // non-memory instructions preceding the access
	Addr    uint64 // physical address of the memory access
	IsWrite bool
}

// TraceReader supplies an endless instruction trace; generators in
// internal/workload implement it deterministically.
type TraceReader interface {
	Next() TraceRecord
}

// Config holds the core parameters from Table 1.
type Config struct {
	WindowSize  int // reorder/instruction window entries (256)
	IssueWidth  int // instructions issued per cycle (3)
	RetireWidth int // instructions retired per cycle (3)
}

// DefaultConfig returns Table 1's core parameters.
func DefaultConfig() Config {
	return Config{WindowSize: 256, IssueWidth: 3, RetireWidth: 3}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.WindowSize <= 0 || c.IssueWidth <= 0 || c.RetireWidth <= 0 {
		return fmt.Errorf("cpu: window (%d), issue (%d) and retire (%d) widths must be positive",
			c.WindowSize, c.IssueWidth, c.RetireWidth)
	}
	return nil
}

// Core is one simulated core.
type Core struct {
	ID  int
	cfg Config

	trace TraceReader  //fglint:preserved the cursor is checkpointed by the system layer (trace section), which knows the concrete reader type
	l1    *cache.Cache //fglint:preserved wiring only; the cache's own state is reset by Hierarchy.Reset and checkpointed by Hierarchy.Snapshot

	// Instruction window: a ring buffer of completion flags. done[i]
	// marks the entry ready to retire. epoch[i] disambiguates reuse of a
	// slot, so a late load completion cannot mark a newer instruction
	// done after its own entry retired.
	done  []bool
	epoch []int64
	head  int
	tail  int
	count int

	// issueEp[i] is the epoch the in-flight load in slot i was issued
	// with. A load's completion is the CoreSlot event token carrying this
	// core's ID and the slot index; CompleteSlot compares the slot's
	// current epoch against issueEp to reject a stale completion after
	// the entry retired and the slot was reused.
	issueEp []int64

	pending    TraceRecord
	hasPending bool

	// pendingFills counts window entries whose load has not completed
	// yet (inserted not-done, completion callback still outstanding).
	// Zero means every in-window entry is retirable, the precondition
	// for the fastest closed-form batch execution of bubble runs.
	pendingFills int
	// avail is the length of the run of completed entries at the window
	// head: done[head .. head+avail) are all true and entry head+avail
	// (if within the window) still waits on its load. Maintained
	// incrementally — retires shrink it, completions extend it, each
	// entry joining the run exactly once — so the cycle-skipping engine
	// can size retire batches in O(1) per query.
	avail int

	// Progress.
	Retired int64
	// TargetInsts, when reached, records FinishedAt once; the core keeps
	// running (its trace continues) so it still exerts memory pressure on
	// co-running cores, per the multiprogrammed-evaluation methodology.
	TargetInsts int64
	FinishedAt  int64 // cycle Retired first reached TargetInsts; 0 if not yet

	// Stats.
	LoadStalls  int64 // cycles issue stopped on a refused load (MSHRs full)
	StoreStalls int64 // cycles issue stopped on a refused store (MSHRs full)
	WindowFull  int64 // cycles issue stopped on a full window
}

// New builds a core reading trace and accessing the hierarchy through l1.
func New(id int, cfg Config, trace TraceReader, l1 *cache.Cache, targetInsts int64) (*Core, error) {
	return NewIn(nil, id, cfg, trace, l1, targetInsts)
}

// NewIn is New with the window rings (done/epoch/issueEp — all
// pointer-free) carved out of a. A nil arena keeps plain allocations.
func NewIn(a *arena.Arena, id int, cfg Config, trace TraceReader, l1 *cache.Cache, targetInsts int64) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trace == nil || l1 == nil {
		return nil, fmt.Errorf("cpu: trace and l1 must be non-nil")
	}
	c := &Core{
		ID:          id,
		cfg:         cfg,
		trace:       trace,
		l1:          l1,
		done:        arena.Slice[bool](a, cfg.WindowSize),
		epoch:       arena.Slice[int64](a, cfg.WindowSize),
		issueEp:     arena.Slice[int64](a, cfg.WindowSize),
		TargetInsts: targetInsts,
	}
	return c, nil
}

// CompleteSlot marks the load occupying `slot` done — the action of the
// CoreSlot event token issued with it. The epoch guard rejects a stale
// completion: valid only while the slot's epoch still matches the epoch
// recorded at issue (a reused slot has a different epoch).
func (c *Core) CompleteSlot(slot int) {
	if c.epoch[slot] == c.issueEp[slot] && !c.done[slot] {
		c.done[slot] = true
		c.pendingFills--
		c.extendAvail(slot)
	}
}

// Reset rebinds the core to a new trace and retire target and clears all
// execution state — window, epochs, pending record, progress, stall
// counters — returning it to the state New would produce. The window
// arrays are reused, so reuse across runs allocates nothing. cfg must
// equal the configuration the core was built with: the window arrays are
// sized by it. The caller must have discarded any scheduler events still
// holding the old run's completion tokens.
func (c *Core) Reset(cfg Config, trace TraceReader, targetInsts int64) error {
	if cfg != c.cfg {
		return fmt.Errorf("cpu: Reset config %+v does not match construction config %+v", cfg, c.cfg)
	}
	if trace == nil {
		return fmt.Errorf("cpu: trace must be non-nil")
	}
	c.trace = trace
	for i := range c.done {
		c.done[i] = false
		c.epoch[i] = 0
		c.issueEp[i] = 0
	}
	c.head, c.tail, c.count = 0, 0, 0
	c.pending = TraceRecord{}
	c.hasPending = false
	c.pendingFills = 0
	c.avail = 0
	c.Retired = 0
	c.TargetInsts = targetInsts
	c.FinishedAt = 0
	c.LoadStalls, c.StoreStalls, c.WindowFull = 0, 0, 0
	return nil
}

// Done reports whether the core has retired its target instruction count.
func (c *Core) Done() bool { return c.FinishedAt > 0 }

// IPC returns instructions per cycle at the point the target was reached,
// or the running IPC at cycle now if the target is not yet reached.
func (c *Core) IPC(now int64) float64 {
	cycles := c.FinishedAt
	insts := c.TargetInsts
	if cycles == 0 {
		cycles, insts = now, c.Retired
	}
	if cycles == 0 {
		return 0
	}
	return float64(insts) / float64(cycles)
}

// Tick advances the core one CPU cycle: retire from the window head, then
// issue new instructions into the tail.
func (c *Core) Tick(now int64) {
	// Retire.
	for r := 0; r < c.cfg.RetireWidth && c.count > 0 && c.done[c.head]; r++ {
		c.done[c.head] = false
		c.avail--
		c.head++
		if c.head == c.cfg.WindowSize {
			c.head = 0
		}
		c.count--
		c.Retired++
		if c.FinishedAt == 0 && c.Retired >= c.TargetInsts {
			c.FinishedAt = now
		}
	}

	// Issue.
	for i := 0; i < c.cfg.IssueWidth; i++ {
		if c.count >= c.cfg.WindowSize {
			c.WindowFull++
			return
		}
		if !c.hasPending {
			c.pending = c.trace.Next()
			c.hasPending = true
		}
		if c.pending.Bubbles > 0 {
			c.pending.Bubbles--
			c.insert(true)
			continue
		}
		// The memory access of the pending record.
		if c.pending.IsWrite {
			// Stores retire immediately; the write continues through the
			// hierarchy in the background.
			if !c.l1.Access(c.pending.Addr, true, ev.Token{}) {
				c.StoreStalls++
				return // retry next cycle
			}
			c.insert(true)
		} else {
			// The completion token is valid while the slot's epoch still
			// matches the epoch recorded at issue; a late dispatch after
			// the entry retired and the slot was reused finds a different
			// epoch and is ignored (see CompleteSlot).
			slot := c.tail
			c.issueEp[slot] = c.epoch[slot] + 1
			tok := ev.Token{Kind: ev.CoreSlot, ID: int32(c.ID), Arg: uint64(slot)}
			if !c.l1.Access(c.pending.Addr, false, tok) {
				c.LoadStalls++
				return
			}
			c.insert(false)
		}
		c.hasPending = false
	}
}

// NextWake returns the next CPU cycle at which Tick could make progress:
// now+1 while the core can retire or issue, or math.MaxInt64 when it is
// fully blocked (window head waiting on a fill, or the pending memory
// access refused by the L1). A blocked core's state only changes through
// scheduler events — a cache fill marking a window entry done or freeing
// an L1 MSHR — so the run loop may skip it until the next event fires.
func (c *Core) NextWake(now int64) int64 {
	if c.count > 0 && c.done[c.head] {
		return now + 1 // can retire
	}
	if c.count < c.cfg.WindowSize {
		// Can issue: a buffered bubble always inserts; a fresh trace
		// record is fetched optimistically (it may start with bubbles);
		// a pending memory access issues iff the L1 would accept it.
		if !c.hasPending || c.pending.Bubbles > 0 || c.l1.CanAccept(c.pending.Addr) {
			return now + 1
		}
	}
	return math.MaxInt64
}

// AccountSkipped credits the stall counters for cycles the run loop
// skipped while the core was fully blocked (NextWake == MaxInt64). The
// dense loop would have ticked the core each of those cycles, recording
// one window-full cycle, or one refused issue attempt (a load or store
// stall plus an L1 retry), so the diagnostic statistics stay
// engine-independent.
func (c *Core) AccountSkipped(cycles int64) {
	if cycles <= 0 {
		return
	}
	if c.count >= c.cfg.WindowSize {
		c.WindowFull += cycles
		return
	}
	if c.pending.IsWrite {
		c.StoreStalls += cycles
	} else {
		c.LoadStalls += cycles
	}
	c.l1.AccountRefused(c.pending.IsWrite, cycles)
}

// BatchableCycles reports how many upcoming cycles — starting at the
// cycle after the current one — the core can execute in closed form
// instead of cycle-by-cycle Ticks. A cycle is batchable when its dense
// execution is fully determined: the pending trace record still holds
// at least a full issue group of bubbles (so issue touches no cache and
// fetches no trace record), and retirement is predictable — either the
// whole window is retirable, or the run of retirable entries at the
// head is long enough that every batched cycle retires a full group
// before reaching the first entry still waiting on a load. Outstanding
// loads only complete through scheduler events, and the run loop never
// jumps past a pending event, so the retirable run cannot grow inside
// the batch. The count is capped at the cycle the core would reach its
// instruction target, so the run loop observes the finish exactly where
// the dense loop would.
//
// Returns 0 when the next cycle must be executed normally.
func (c *Core) BatchableCycles() int64 {
	if !c.hasPending || c.cfg.IssueWidth != c.cfg.RetireWidth {
		return 0
	}
	iw := int64(c.cfg.IssueWidth)
	// Cycles the dense loop would spend issuing only bubbles: a cycle
	// issues IssueWidth of them iff that many remain at its start.
	n := int64(c.pending.Bubbles) / iw
	if n <= 0 {
		return 0
	}
	if c.pendingFills == 0 {
		// Whole window retirable: issue refills what retire drains, so
		// the regime holds for the entire bubble run.
		if c.FinishedAt == 0 {
			if k := c.cyclesToTarget(); k < n {
				n = k
			}
		}
		return n
	}
	// Loads in flight: retirement stops at the first not-done entry.
	avail := c.retirableRun()
	if avail >= iw {
		// Full-group retire+issue cycles until the retirable run shrinks
		// below one group; occupancy is stable, so no window-full cycles.
		if m := avail / iw; m < n {
			n = m
		}
		if c.FinishedAt == 0 {
			need := c.TargetInsts - c.Retired
			if need < 1 {
				need = 1
			}
			if k := (need + iw - 1) / iw; k < n {
				n = k
			}
		}
		return n
	}
	// Head (nearly) blocked: the first cycle retires the remaining short
	// run, after which bubbles accumulate at issue width. Stop before the
	// window fills so no cycle is issue-limited (window-full cycles are
	// the blocked path's business).
	if m := (int64(c.cfg.WindowSize) - int64(c.count) + avail) / iw; m < n {
		n = m
	}
	if n <= 0 {
		return 0
	}
	if c.FinishedAt == 0 && c.TargetInsts-c.Retired <= avail {
		n = 1 // crossing happens on the batch's first (only retiring) cycle
	}
	return n
}

// retirableRun returns the length of the run of completed entries at the
// window head — how many instructions can retire before the first entry
// still waiting on its load.
func (c *Core) retirableRun() int64 { return int64(c.avail) }

// cyclesToTarget returns the batched-cycle index (1-based) at which the
// retire stream crosses TargetInsts in the all-done regime: the first
// cycle retires min(RetireWidth, count) entries, every later one a full
// RetireWidth (the window refills at issue width each cycle).
func (c *Core) cyclesToTarget() int64 {
	r0 := int64(c.cfg.RetireWidth)
	if int64(c.count) < r0 {
		r0 = int64(c.count)
	}
	need := c.TargetInsts - c.Retired
	if need < 1 {
		// Only reachable with a zero/negative target: the crossing still
		// needs one actual retire, so it lands on the first retiring cycle.
		need = 1
	}
	if need <= r0 {
		return 1
	}
	r := int64(c.cfg.RetireWidth)
	return 1 + (need-r0+r-1)/r
}

// AdvanceBatch fast-forwards the core over `cycles` skipped cycles (the
// cycles now+1 .. now+cycles, which the run loop will not execute) by
// applying the closed-form bubble execution. The caller must have
// established batchability (BatchableCycles() >= cycles) for the
// current state; the run loop computes that once during its wake scan
// and dispatches here without re-deriving it. Blocked cores take
// AccountSkipped instead.
func (c *Core) AdvanceBatch(now, cycles int64) {
	if cycles <= 0 {
		return
	}
	if c.pendingFills == 0 {
		c.advanceAllDone(now, cycles)
	} else {
		c.advanceInFlight(now, cycles)
	}
}

// advanceAllDone applies `cycles` bubble cycles over a fully retirable
// window. Instead of sliding the ring buffer — whose absolute position
// is unobservable: retire/issue only read done/epoch relative to head
// and tail, and the epoch guard only compares values recorded at issue
// — the window is left in place and only grown to its steady-state
// occupancy, so the cost is O(RetireWidth) regardless of span.
func (c *Core) advanceAllDone(now, cycles int64) {
	r := int64(c.cfg.RetireWidth)
	r0 := r
	if int64(c.count) < r0 {
		r0 = int64(c.count)
	}
	retired := r0 + r*(cycles-1)
	c.pending.Bubbles -= int(int64(c.cfg.IssueWidth) * cycles)
	// Resolve the target-crossing cycle before mutating Retired, with
	// the same formula BatchableCycles used to cap the batch (the cap
	// puts the crossing on the batch's last cycle).
	crossAt := int64(0)
	if c.FinishedAt == 0 && c.Retired+retired >= c.TargetInsts {
		crossAt = now + c.cyclesToTarget()
	}
	c.Retired += retired
	if crossAt > 0 {
		c.FinishedAt = crossAt
	}
	// Steady-state occupancy: a window below RetireWidth refills to it on
	// the first cycle (retire everything, issue a full group) and then
	// holds; a larger window retires and issues in lockstep.
	for int64(c.count) < r {
		c.insert(true)
	}
}

// advanceInFlight applies `cycles` bubble cycles while loads are in
// flight. Here the not-done entries pin absolute ring positions (their
// completion tokens name their physical slots), so the ring is
// updated exactly as the dense per-cycle loop would: retired entries
// are cleared off the head, issued bubbles inserted at the tail.
func (c *Core) advanceInFlight(now, cycles int64) {
	iw := int64(c.cfg.IssueWidth)
	avail := c.retirableRun()
	var retired int64
	if avail >= iw {
		retired = iw * cycles // full retire group every batched cycle
	} else {
		retired = avail // first cycle drains the run; the rest retire 0
	}
	w := c.cfg.WindowSize
	// Clear the retired entries off the head in at most two wrap-free
	// runs; the range-clear loops compile to block fills instead of a
	// per-entry wrap check.
	if h, n := c.head, int(retired); h+n <= w {
		clearDone(c.done[h : h+n])
		if h += n; h == w {
			h = 0
		}
		c.head = h
	} else {
		clearDone(c.done[h:])
		h += n - w
		clearDone(c.done[:h])
		c.head = h
	}
	c.count -= int(retired)
	c.avail -= int(retired)
	c.Retired += retired
	if c.FinishedAt == 0 && c.Retired >= c.TargetInsts {
		need := c.TargetInsts - (c.Retired - retired)
		if need < 1 {
			need = 1
		}
		k := int64(1)
		if avail >= iw {
			k = (need + iw - 1) / iw
		}
		c.FinishedAt = now + k
	}
	c.pending.Bubbles -= int(iw * cycles)
	// Tight bubble-insert loop: the generic insert pays a wrap check and
	// pendingFills/avail bookkeeping per entry; here every entry is a
	// completed bubble behind a pending load, so only the done flags need
	// writing. The epoch bump is skipped too: epochs disambiguate slot
	// reuse for *load* completion tokens, every token fires exactly
	// once before its entry can retire, and the `!done` guard already
	// rejects a (hypothetical) stale fire while a bubble occupies the
	// slot — a bubble entry is done for its whole residence. Epoch values
	// are only ever compared against issueEp recorded at load issue, so
	// skipping bumps for bubbles leaves that relation intact.
	ins := int(iw * cycles)
	if t := c.tail; t+ins <= w {
		setDone(c.done[t : t+ins])
		if t += ins; t == w {
			t = 0
		}
		c.tail = t
	} else {
		setDone(c.done[t:])
		t += ins - w
		setDone(c.done[:t])
		c.tail = t
	}
	c.count += ins
}

// clearDone and setDone fill a done-flag run; kept as named helpers so
// both wrap halves share the compiler's block-fill lowering.
func clearDone(s []bool) {
	for i := range s {
		s[i] = false
	}
}

func setDone(s []bool) {
	for i := range s {
		s[i] = true
	}
}

// insert places one instruction at the window tail.
func (c *Core) insert(done bool) {
	c.done[c.tail] = done
	if !done {
		c.pendingFills++
	} else if c.avail == c.count {
		c.avail++ // the retirable head run reaches the tail: extend it
	}
	c.epoch[c.tail]++
	c.tail++
	if c.tail == c.cfg.WindowSize {
		c.tail = 0
	}
	c.count++
}

// extendAvail grows the retirable head run after the entry in `slot`
// completed. Only a completion at the run's exact end extends it; the
// run then absorbs any already-completed entries behind it. Each entry
// is absorbed exactly once, so the maintenance is O(1) amortized.
func (c *Core) extendAvail(slot int) {
	end := c.head + c.avail
	if end >= c.cfg.WindowSize {
		end -= c.cfg.WindowSize
	}
	if slot != end {
		return
	}
	for c.avail < c.count {
		i := c.head + c.avail
		if i >= c.cfg.WindowSize {
			i -= c.cfg.WindowSize
		}
		if !c.done[i] {
			break
		}
		c.avail++
	}
}

// WindowOccupancy returns the number of in-flight window entries.
func (c *Core) WindowOccupancy() int { return c.count }
