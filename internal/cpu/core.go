// Package cpu implements the trace-driven processor core model of the
// simulated system (Table 1): a simplified out-of-order core with a
// 256-entry instruction window and 3-wide issue/retire, in the style of
// Ramulator's attached core model. Non-memory instructions occupy window
// entries and retire immediately; loads occupy an entry until their data
// returns from the cache hierarchy; stores retire immediately (modelling
// a write buffer) but still traverse the hierarchy.
package cpu

import (
	"fmt"
	"math"

	"repro/internal/cache"
)

// TraceRecord is one unit of a core's instruction trace: Bubbles
// non-memory instructions followed by one memory access.
type TraceRecord struct {
	Bubbles int    // non-memory instructions preceding the access
	Addr    uint64 // physical address of the memory access
	IsWrite bool
}

// TraceReader supplies an endless instruction trace; generators in
// internal/workload implement it deterministically.
type TraceReader interface {
	Next() TraceRecord
}

// Config holds the core parameters from Table 1.
type Config struct {
	WindowSize  int // reorder/instruction window entries (256)
	IssueWidth  int // instructions issued per cycle (3)
	RetireWidth int // instructions retired per cycle (3)
}

// DefaultConfig returns Table 1's core parameters.
func DefaultConfig() Config {
	return Config{WindowSize: 256, IssueWidth: 3, RetireWidth: 3}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.WindowSize <= 0 || c.IssueWidth <= 0 || c.RetireWidth <= 0 {
		return fmt.Errorf("cpu: window (%d), issue (%d) and retire (%d) widths must be positive",
			c.WindowSize, c.IssueWidth, c.RetireWidth)
	}
	return nil
}

// Core is one simulated core.
type Core struct {
	ID  int
	cfg Config

	trace TraceReader
	l1    *cache.Cache

	// Instruction window: a ring buffer of completion flags. done[i]
	// marks the entry ready to retire. epoch[i] disambiguates reuse of a
	// slot, so a late load completion cannot mark a newer instruction
	// done after its own entry retired.
	done  []bool
	epoch []int64
	head  int
	tail  int
	count int

	// issueEp[i] is the epoch the in-flight load in slot i was issued
	// with, and onDone[i] its completion callback. The callbacks are
	// created once per slot at construction (each captures only its slot
	// index), so issuing a load does not allocate a closure.
	issueEp []int64
	onDone  []func(now int64)

	pending    TraceRecord
	hasPending bool

	// Progress.
	Retired int64
	// TargetInsts, when reached, records FinishedAt once; the core keeps
	// running (its trace continues) so it still exerts memory pressure on
	// co-running cores, per the multiprogrammed-evaluation methodology.
	TargetInsts int64
	FinishedAt  int64 // cycle Retired first reached TargetInsts; 0 if not yet

	// Stats.
	LoadStalls int64 // cycles issue stopped because L1 refused (MSHRs full)
	WindowFull int64 // cycles issue stopped on a full window
}

// New builds a core reading trace and accessing the hierarchy through l1.
func New(id int, cfg Config, trace TraceReader, l1 *cache.Cache, targetInsts int64) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trace == nil || l1 == nil {
		return nil, fmt.Errorf("cpu: trace and l1 must be non-nil")
	}
	c := &Core{
		ID:          id,
		cfg:         cfg,
		trace:       trace,
		l1:          l1,
		done:        make([]bool, cfg.WindowSize),
		epoch:       make([]int64, cfg.WindowSize),
		issueEp:     make([]int64, cfg.WindowSize),
		onDone:      make([]func(now int64), cfg.WindowSize),
		TargetInsts: targetInsts,
	}
	for i := range c.onDone {
		slot := i
		c.onDone[i] = func(int64) {
			if c.epoch[slot] == c.issueEp[slot] {
				c.done[slot] = true
			}
		}
	}
	return c, nil
}

// Done reports whether the core has retired its target instruction count.
func (c *Core) Done() bool { return c.FinishedAt > 0 }

// IPC returns instructions per cycle at the point the target was reached,
// or the running IPC at cycle now if the target is not yet reached.
func (c *Core) IPC(now int64) float64 {
	cycles := c.FinishedAt
	insts := c.TargetInsts
	if cycles == 0 {
		cycles, insts = now, c.Retired
	}
	if cycles == 0 {
		return 0
	}
	return float64(insts) / float64(cycles)
}

// Tick advances the core one CPU cycle: retire from the window head, then
// issue new instructions into the tail.
func (c *Core) Tick(now int64) {
	// Retire.
	for r := 0; r < c.cfg.RetireWidth && c.count > 0 && c.done[c.head]; r++ {
		c.done[c.head] = false
		c.head = (c.head + 1) % c.cfg.WindowSize
		c.count--
		c.Retired++
		if c.FinishedAt == 0 && c.Retired >= c.TargetInsts {
			c.FinishedAt = now
		}
	}

	// Issue.
	for i := 0; i < c.cfg.IssueWidth; i++ {
		if c.count >= c.cfg.WindowSize {
			c.WindowFull++
			return
		}
		if !c.hasPending {
			c.pending = c.trace.Next()
			c.hasPending = true
		}
		if c.pending.Bubbles > 0 {
			c.pending.Bubbles--
			c.insert(true)
			continue
		}
		// The memory access of the pending record.
		if c.pending.IsWrite {
			// Stores retire immediately; the write continues through the
			// hierarchy in the background.
			if !c.l1.Access(c.pending.Addr, true, nil) {
				c.LoadStalls++
				return // retry next cycle
			}
			c.insert(true)
		} else {
			// The completion callback is valid while the slot's epoch
			// still matches the epoch recorded at issue; a late fire
			// after the entry retired and the slot was reused finds a
			// different epoch and is ignored.
			slot := c.tail
			c.issueEp[slot] = c.epoch[slot] + 1
			if !c.l1.Access(c.pending.Addr, false, c.onDone[slot]) {
				c.LoadStalls++
				return
			}
			c.insert(false)
		}
		c.hasPending = false
	}
}

// NextWake returns the next CPU cycle at which Tick could make progress:
// now+1 while the core can retire or issue, or math.MaxInt64 when it is
// fully blocked (window head waiting on a fill, or the pending memory
// access refused by the L1). A blocked core's state only changes through
// scheduler events — a cache fill marking a window entry done or freeing
// an L1 MSHR — so the run loop may skip it until the next event fires.
func (c *Core) NextWake(now int64) int64 {
	if c.count > 0 && c.done[c.head] {
		return now + 1 // can retire
	}
	if c.count < c.cfg.WindowSize {
		// Can issue: a buffered bubble always inserts; a fresh trace
		// record is fetched optimistically (it may start with bubbles);
		// a pending memory access issues iff the L1 would accept it.
		if !c.hasPending || c.pending.Bubbles > 0 || c.l1.CanAccept(c.pending.Addr) {
			return now + 1
		}
	}
	return math.MaxInt64
}

// AccountSkipped credits the stall counters for cycles the run loop
// skipped while the core was fully blocked (NextWake == MaxInt64). The
// dense loop would have ticked the core each of those cycles, recording
// one window-full cycle, or one refused issue attempt (a load stall plus
// an L1 retry), so the diagnostic statistics stay engine-independent.
func (c *Core) AccountSkipped(cycles int64) {
	if cycles <= 0 {
		return
	}
	if c.count >= c.cfg.WindowSize {
		c.WindowFull += cycles
		return
	}
	c.LoadStalls += cycles
	c.l1.AccountRefused(c.pending.IsWrite, cycles)
}

// insert places one instruction at the window tail.
func (c *Core) insert(done bool) {
	c.done[c.tail] = done
	c.epoch[c.tail]++
	c.tail = (c.tail + 1) % c.cfg.WindowSize
	c.count++
}

// WindowOccupancy returns the number of in-flight window entries.
func (c *Core) WindowOccupancy() int { return c.count }
