// Package workload synthesizes deterministic instruction traces that
// statistically reproduce the memory behaviour the FIGARO paper's
// benchmarks exhibit, and composes them into the paper's single-core,
// eight-core multiprogrammed, and multithreaded workloads (Table 2,
// Section 7).
//
// The paper drives its simulator with Pin traces of SPEC CPU2006, TPC,
// MediaBench, the Memory Scheduling Championship and BioBench binaries.
// Those traces are unavailable, so each benchmark is modelled by a
// parameterized generator that reproduces the properties FIGCache's
// behaviour depends on:
//
//   - memory intensity: LLC misses per kilo-instruction (>10 MPKI for the
//     paper's "memory intensive" class);
//   - segment-level reuse beyond SRAM reach: a Zipf-distributed hot set of
//     1 kB row segments much larger than the LLC, so reuse hits DRAM;
//   - limited row-buffer locality: hot segments are scattered so that a
//     DRAM row rarely holds more than one of them, making whole-row
//     caching wasteful (Section 3);
//   - spatial locality inside a segment: short sequential block runs;
//   - store traffic via a configurable write fraction.
//
// Generators are pure functions of their parameters and seed: the same
// BenchSpec always emits the same trace, which is what makes a
// sim.Config.Fingerprint a complete run identity. Every generator
// parameter is folded into the fingerprint, so sensitivity studies that
// mutate a spec can never collide with the stock benchmark's cached
// results.
//
// Workload identity is abstracted behind Source: a core's trace comes
// either from a synthetic generator (KindSynth, the spec above) or from
// a recorded trace file (KindTrace) replayed through the identical
// pipeline — the door to real SPEC/gem5-derived traces and adversarial
// access patterns. Recorded traces use a compact versioned binary format
// (TraceWriter/TraceScanner; see trace.go for the layout) with an
// allocation-free streaming reader and a deterministic looping Replayer;
// a trace's run identity is the sha256 of its content (cached per path
// by LoadTrace), never its filename. tracegen records them, figsim and
// figbench replay them as "trace:FILE" workloads.
//
// Generator.Snapshot/Restore and Replayer.Snapshot/Restore
// (snapshot.go) serialize the RNG, sweep-stream, and cursor state for
// the system checkpoint lifecycle, so a restored trace source resumes
// mid-stream bit-identically.
//
// Tee (tee.go) shares one opened reader among N consumers for gang
// execution (sim.Gang): records are produced once and memoized in a
// ring window bounded by the laggard consumer, and each member reads
// the identical stream at its own pace through per-member cursors.
package workload
