package workload

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/cpu"
)

// fuzzTrace builds a well-formed binary trace through TraceWriter —
// encodeTrace for both *testing.F (seeds) and *testing.T (fuzz body).
func fuzzTrace(tb testing.TB, span uint64, recs []cpu.TraceRecord) []byte {
	tb.Helper()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, span, uint64(len(recs)))
	if err != nil {
		tb.Fatal(err)
	}
	for _, rec := range recs {
		if err := tw.Write(rec); err != nil {
			tb.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzParseTrace hammers the binary trace loader with arbitrary bytes.
// parseTrace must never panic or over-read; when it accepts an image,
// the scanner, the replayer's first pass, and a TraceWriter re-encode
// must all agree on the record stream — the "validated at load, decoded
// blind at replay" contract Replayer.Next relies on.
func FuzzParseTrace(f *testing.F) {
	f.Add(fuzzTrace(f, 1<<20, []cpu.TraceRecord{
		{Bubbles: 0, Addr: 0, IsWrite: false},
		{Bubbles: 3, Addr: 64, IsWrite: true},
		{Bubbles: 1, Addr: 128, IsWrite: false},
	}))
	f.Add(fuzzTrace(f, 4096, []cpu.TraceRecord{
		{Bubbles: 1000, Addr: 4095, IsWrite: true},
		{Bubbles: 0, Addr: 0, IsWrite: false},
	}))
	// Header-shaped near-misses: short, bad magic, bad version, zero
	// span, zero count, count overruns payload, trailing garbage.
	f.Add([]byte("FGTR"))
	f.Add([]byte("NOPE____________________"))
	valid := fuzzTrace(f, 64, []cpu.TraceRecord{{Bubbles: 1, Addr: 0}})
	f.Add(valid[:traceHeaderBytes])
	f.Add(append(append([]byte{}, valid...), 0x00))
	big := append([]byte{}, valid...)
	binary.LittleEndian.PutUint64(big[16:24], 1<<40)
	f.Add(big)

	f.Fuzz(func(t *testing.T, raw []byte) {
		td, err := parseTrace(raw)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		// Accepted image: the scanner must reproduce exactly Count
		// records and end cleanly.
		s, err := NewTraceScanner(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("parseTrace accepted what NewTraceScanner rejects: %v", err)
		}
		var recs []cpu.TraceRecord
		for s.Scan() {
			recs = append(recs, s.Record())
		}
		if s.Err() != nil {
			t.Fatalf("parseTrace accepted what the scanner rejects: %v", s.Err())
		}
		if uint64(len(recs)) != td.Count {
			t.Fatalf("scanner decoded %d records, trace declares %d", len(recs), td.Count)
		}
		// The replayer's first pass decodes the same payload blind; it
		// must agree with the scanner record for record and never emit
		// an address outside the declared window.
		rp, err := td.Replayer(0, td.Span)
		if err != nil {
			t.Fatalf("Replayer over a validated trace: %v", err)
		}
		for i, want := range recs {
			got := rp.Next()
			if got != want {
				t.Fatalf("record %d: replayer %+v, scanner %+v", i, got, want)
			}
			if got.Addr >= td.Span {
				t.Fatalf("record %d: address %#x outside %d-byte span", i, got.Addr, td.Span)
			}
		}
		// Loop boundary: the next record must be the first again.
		if got := rp.Next(); got != recs[0] {
			t.Fatalf("loop restart: got %+v, want %+v", got, recs[0])
		}
		// Semantic round trip: re-encoding the decoded records yields an
		// image that decodes to the same stream (byte identity is not
		// required — the wire accepts non-canonical varints).
		re := fuzzTrace(t, td.Span, recs)
		td2, err := parseTrace(re)
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if td2.Span != td.Span || td2.Count != td.Count {
			t.Fatalf("re-encode changed header: span %d->%d count %d->%d",
				td.Span, td2.Span, td.Count, td2.Count)
		}
	})
}
