package workload

import "fmt"

// BenchSpec parameterizes the synthetic generator for one benchmark.
type BenchSpec struct {
	Name string
	// MemIntensive mirrors Table 2's classification (>10 LLC MPKI).
	MemIntensive bool

	// Bubbles is the number of non-memory instructions between memory
	// accesses: the main lever on memory intensity.
	Bubbles int
	// FootprintBytes is the total address range the benchmark touches.
	FootprintBytes int64
	// HotSegments is the size of the hot set, counted in 1 kB segments.
	// Chosen well above the LLC so segment reuse reaches DRAM, and within
	// FIGCache reach so caching can capture it. Hot segments are scattered
	// one-per-DRAM-row (the paper's limited-row-locality regime) and
	// visited by looping sweep streams, so segments accessed close in time
	// are re-accessed close in time — the temporal correlation FIGCache's
	// co-location exploits (Section 5.1).
	HotSegments int
	// Streams is the number of concurrent sweep streams over the hot set
	// (modelling independent arrays/data structures).
	Streams int
	// ZipfTheta skews how often each stream is accessed (0 = uniform).
	ZipfTheta float64
	// HotFraction is the probability an access burst targets the hot set;
	// the rest streams through the cold footprint.
	HotFraction float64
	// SeqRun is the number of consecutive blocks touched per burst
	// (spatial locality within a segment).
	SeqRun int
	// WriteFrac is the fraction of memory accesses that are stores.
	WriteFrac float64
}

// Validate reports parameter errors.
func (b BenchSpec) Validate() error {
	switch {
	case b.Name == "":
		return fmt.Errorf("workload: benchmark name empty")
	case b.Bubbles < 0:
		return fmt.Errorf("workload %s: bubbles must be non-negative", b.Name)
	case b.FootprintBytes < segmentBytes:
		return fmt.Errorf("workload %s: footprint %d below one segment", b.Name, b.FootprintBytes)
	case b.HotSegments <= 0:
		return fmt.Errorf("workload %s: hot segments must be positive", b.Name)
	case b.Streams <= 0 || b.Streams > b.HotSegments:
		return fmt.Errorf("workload %s: streams must be in [1,%d], got %d", b.Name, b.HotSegments, b.Streams)
	case b.ZipfTheta < 0 || b.ZipfTheta >= 1:
		return fmt.Errorf("workload %s: zipf theta must be in [0,1), got %g", b.Name, b.ZipfTheta)
	case b.HotFraction < 0 || b.HotFraction > 1:
		return fmt.Errorf("workload %s: hot fraction must be in [0,1], got %g", b.Name, b.HotFraction)
	case b.SeqRun <= 0 || b.SeqRun > segmentBytes/blockBytes:
		return fmt.Errorf("workload %s: seq run must be in [1,%d], got %d", b.Name, segmentBytes/blockBytes, b.SeqRun)
	case b.WriteFrac < 0 || b.WriteFrac > 1:
		return fmt.Errorf("workload %s: write fraction must be in [0,1], got %g", b.Name, b.WriteFrac)
	}
	return nil
}

const (
	blockBytes   = 64
	segmentBytes = 1024 // the paper's default row segment (1/8 of 8 kB)
)

// The twenty single-thread benchmarks of Table 2. The intensive class
// uses small bubble counts and DRAM-sized hot sets; the non-intensive
// class mostly fits in the SRAM hierarchy. Parameters vary per benchmark
// so the population covers a range of intensities and localities.
var specs = []BenchSpec{
	// Memory intensive (Table 2, top row). Hot sets are sized between the
	// per-core LLC share (~2 MB) and the per-core in-DRAM cache reach
	// (~4-8 MB): segment reuse escapes SRAM but is capturable by FIGCache,
	// the regime the paper's intensive applications occupy (their working
	// sets exceed the LLC but their hot rows fit the in-DRAM cache).
	{Name: "zeusmp", MemIntensive: true, Bubbles: 54, FootprintBytes: 512 << 20, HotSegments: 2304, Streams: 2, ZipfTheta: 0.60, HotFraction: 0.90, SeqRun: 2, WriteFrac: 0.25},
	{Name: "leslie3d", MemIntensive: true, Bubbles: 66, FootprintBytes: 384 << 20, HotSegments: 2176, Streams: 2, ZipfTheta: 0.55, HotFraction: 0.88, SeqRun: 4, WriteFrac: 0.30},
	{Name: "mcf", MemIntensive: true, Bubbles: 36, FootprintBytes: 1024 << 20, HotSegments: 2944, Streams: 2, ZipfTheta: 0.70, HotFraction: 0.93, SeqRun: 1, WriteFrac: 0.15},
	{Name: "GemsFDTD", MemIntensive: true, Bubbles: 60, FootprintBytes: 768 << 20, HotSegments: 2560, Streams: 2, ZipfTheta: 0.50, HotFraction: 0.88, SeqRun: 4, WriteFrac: 0.35},
	{Name: "libquantum", MemIntensive: true, Bubbles: 48, FootprintBytes: 256 << 20, HotSegments: 2240, Streams: 2, ZipfTheta: 0.40, HotFraction: 0.86, SeqRun: 6, WriteFrac: 0.20},
	{Name: "bwaves", MemIntensive: true, Bubbles: 72, FootprintBytes: 512 << 20, HotSegments: 2368, Streams: 2, ZipfTheta: 0.55, HotFraction: 0.88, SeqRun: 4, WriteFrac: 0.30},
	{Name: "lbm", MemIntensive: true, Bubbles: 42, FootprintBytes: 448 << 20, HotSegments: 2432, Streams: 2, ZipfTheta: 0.45, HotFraction: 0.86, SeqRun: 5, WriteFrac: 0.40},
	{Name: "com", MemIntensive: true, Bubbles: 45, FootprintBytes: 640 << 20, HotSegments: 2688, Streams: 2, ZipfTheta: 0.65, HotFraction: 0.90, SeqRun: 2, WriteFrac: 0.20},
	{Name: "tigr", MemIntensive: true, Bubbles: 39, FootprintBytes: 896 << 20, HotSegments: 2880, Streams: 2, ZipfTheta: 0.68, HotFraction: 0.92, SeqRun: 1, WriteFrac: 0.10},
	{Name: "mum", MemIntensive: true, Bubbles: 51, FootprintBytes: 768 << 20, HotSegments: 2624, Streams: 2, ZipfTheta: 0.62, HotFraction: 0.90, SeqRun: 2, WriteFrac: 0.12},

	// Memory non-intensive (Table 2, bottom row).
	{Name: "h264ref", MemIntensive: false, Bubbles: 180, FootprintBytes: 64 << 20, HotSegments: 2304, Streams: 2, ZipfTheta: 0.80, HotFraction: 0.92, SeqRun: 4, WriteFrac: 0.25},
	{Name: "bzip2", MemIntensive: false, Bubbles: 140, FootprintBytes: 96 << 20, HotSegments: 2432, Streams: 2, ZipfTheta: 0.75, HotFraction: 0.90, SeqRun: 3, WriteFrac: 0.30},
	{Name: "gromacs", MemIntensive: false, Bubbles: 220, FootprintBytes: 48 << 20, HotSegments: 2240, Streams: 2, ZipfTheta: 0.80, HotFraction: 0.92, SeqRun: 4, WriteFrac: 0.25},
	{Name: "gcc", MemIntensive: false, Bubbles: 160, FootprintBytes: 128 << 20, HotSegments: 2560, Streams: 2, ZipfTheta: 0.78, HotFraction: 0.90, SeqRun: 2, WriteFrac: 0.30},
	{Name: "bfssandy", MemIntensive: false, Bubbles: 120, FootprintBytes: 192 << 20, HotSegments: 2688, Streams: 2, ZipfTheta: 0.72, HotFraction: 0.85, SeqRun: 1, WriteFrac: 0.10},
	{Name: "grep", MemIntensive: false, Bubbles: 130, FootprintBytes: 64 << 20, HotSegments: 2368, Streams: 2, ZipfTheta: 0.70, HotFraction: 0.85, SeqRun: 5, WriteFrac: 0.05},
	{Name: "wc-8443", MemIntensive: false, Bubbles: 200, FootprintBytes: 32 << 20, HotSegments: 2176, Streams: 2, ZipfTheta: 0.80, HotFraction: 0.95, SeqRun: 6, WriteFrac: 0.10},
	{Name: "sjeng", MemIntensive: false, Bubbles: 240, FootprintBytes: 48 << 20, HotSegments: 2240, Streams: 2, ZipfTheta: 0.82, HotFraction: 0.95, SeqRun: 1, WriteFrac: 0.20},
	{Name: "tpcc64", MemIntensive: false, Bubbles: 110, FootprintBytes: 256 << 20, HotSegments: 2816, Streams: 2, ZipfTheta: 0.75, HotFraction: 0.88, SeqRun: 2, WriteFrac: 0.35},
	{Name: "tpch2", MemIntensive: false, Bubbles: 120, FootprintBytes: 192 << 20, HotSegments: 2624, Streams: 2, ZipfTheta: 0.74, HotFraction: 0.88, SeqRun: 3, WriteFrac: 0.15},
}

// Multithreaded applications (Section 7: canneal and fluidanimate from
// PARSEC, radix from SPLASH-2): all threads share one footprint.
var multithreaded = []BenchSpec{
	{Name: "canneal", MemIntensive: true, Bubbles: 42, FootprintBytes: 1024 << 20, HotSegments: 12 << 10, Streams: 2, ZipfTheta: 0.65, HotFraction: 0.88, SeqRun: 1, WriteFrac: 0.20},
	{Name: "fluidanimate", MemIntensive: true, Bubbles: 78, FootprintBytes: 512 << 20, HotSegments: 10 << 10, Streams: 2, ZipfTheta: 0.55, HotFraction: 0.80, SeqRun: 3, WriteFrac: 0.30},
	{Name: "radix", MemIntensive: true, Bubbles: 48, FootprintBytes: 768 << 20, HotSegments: 12 << 10, Streams: 2, ZipfTheta: 0.50, HotFraction: 0.78, SeqRun: 4, WriteFrac: 0.35},
}

// Benchmarks returns the twenty single-thread benchmark specs of Table 2.
func Benchmarks() []BenchSpec {
	out := make([]BenchSpec, len(specs))
	copy(out, specs)
	return out
}

// Multithreaded returns the three multithreaded application specs.
func Multithreaded() []BenchSpec {
	out := make([]BenchSpec, len(multithreaded))
	copy(out, multithreaded)
	return out
}

// ByName returns the spec for a benchmark (single-thread or
// multithreaded).
func ByName(name string) (BenchSpec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range multithreaded {
		if s.Name == name {
			return s, nil
		}
	}
	return BenchSpec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Intensive returns the memory-intensive subset of Benchmarks.
func Intensive() []BenchSpec {
	var out []BenchSpec
	for _, s := range specs {
		if s.MemIntensive {
			out = append(out, s)
		}
	}
	return out
}

// NonIntensive returns the memory-non-intensive subset of Benchmarks.
func NonIntensive() []BenchSpec {
	var out []BenchSpec
	for _, s := range specs {
		if !s.MemIntensive {
			out = append(out, s)
		}
	}
	return out
}
