package workload

import (
	"testing"

	"repro/internal/cpu"
)

// teeRefReader builds the solo reference stream: a fresh generator with
// the same parameters as the tee's source.
func teeGen(t *testing.T, name string, seed uint64) cpu.TraceReader {
	t.Helper()
	spec, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(spec, seed, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTeeDeterminism drives three members through one shared stream at
// very different paces — including drift far past the initial ring
// capacity, which forces growth — and checks every member sees exactly
// the solo generator's record sequence.
func TestTeeDeterminism(t *testing.T) {
	const total = 10_000 // ~10x the initial ring capacity
	want := make([]cpu.TraceRecord, total)
	ref := teeGen(t, "mcf", 3)
	for i := range want {
		want[i] = ref.Next()
	}

	tee, err := NewTee(teeGen(t, "mcf", 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	readers := []cpu.TraceReader{tee.Reader(0), tee.Reader(1), tee.Reader(2)}
	cursors := make([]int, 3)
	check := func(member, n int) {
		t.Helper()
		for k := 0; k < n && cursors[member] < total; k++ {
			got := readers[member].Next()
			if got != want[cursors[member]] {
				t.Fatalf("member %d record %d = %+v, want %+v", member, cursors[member], got, want[cursors[member]])
			}
			cursors[member]++
		}
	}

	// Unequal paces with the laggard mostly advanced last: member 0 races
	// ahead in large strides (beyond teeInitialCap, forcing ring growth
	// while members 1 and 2 still hold early cursors), member 1 follows in
	// mid strides, member 2 crawls.
	for cursors[0] < total || cursors[1] < total || cursors[2] < total {
		check(0, 1500)
		check(1, 700)
		check(2, 90)
		if cursors[2] < cursors[1]/4 {
			check(2, cursors[1]/4-cursors[2]) // keep the crawler within the grown window
		}
	}
	for m, c := range cursors {
		if c != total {
			t.Errorf("member %d consumed %d records, want %d", m, c, total)
		}
		if got := tee.Consumed(m); got != uint64(c) {
			t.Errorf("Consumed(%d) = %d, want %d", m, got, c)
		}
	}
}

// TestTeeClose checks that closing a finished member releases its hold
// on the ring window: the remaining member can stream far past the
// closed cursor without unbounded growth, and still sees the reference
// sequence.
func TestTeeClose(t *testing.T) {
	const total = 50_000
	ref := teeGen(t, "gcc", 11)
	tee, err := NewTee(teeGen(t, "gcc", 11), 2)
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := tee.Reader(0), tee.Reader(1)
	// Member 1 reads a short prefix and finishes; member 0 streams on.
	for i := 0; i < 100; i++ {
		want := ref.Next()
		if got := r1.Next(); got != want {
			t.Fatalf("member 1 record %d = %+v, want %+v", i, got, want)
		}
		if got := r0.Next(); got != want {
			t.Fatalf("member 0 record %d = %+v, want %+v", i, got, want)
		}
	}
	tee.Close(1)
	for i := 100; i < total; i++ {
		if got, want := r0.Next(), ref.Next(); got != want {
			t.Fatalf("member 0 record %d after Close(1) = %+v, want %+v", i, got, want)
		}
	}
	// The surviving member never drifted from itself, so the ring must
	// not have grown past the initial capacity.
	if len(tee.ring) != teeInitialCap {
		t.Errorf("ring grew to %d entries with only one open member, want %d", len(tee.ring), teeInitialCap)
	}
}
