package workload

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"repro/internal/cpu"
)

// SourceKind discriminates the implementations of a workload Source.
type SourceKind uint8

const (
	// KindSynth is the synthetic Table-2 generator (see Generator).
	KindSynth SourceKind = iota
	// KindTrace replays a recorded binary trace file (see TraceData).
	KindTrace
)

func (k SourceKind) String() string {
	switch k {
	case KindSynth:
		return "synth"
	case KindTrace:
		return "trace"
	default:
		return fmt.Sprintf("SourceKind(%d)", int(k))
	}
}

// Source describes where one core's instruction trace comes from: either
// the synthetic generator parameterized by a BenchSpec, or a recorded
// trace file replayed deterministically. A Source is a pure value — it
// can be validated, copied, compared and canonically serialized without
// touching the filesystem; the trace file behind a KindTrace source is
// only read when the run identity (ContentHash) or the records
// themselves (Open) are needed.
type Source struct {
	Kind SourceKind
	// Synth parameterizes the synthetic generator (KindSynth). It is a
	// value, not a pointer, so copied mixes can be mutated independently
	// (the sensitivity builders rely on that).
	Synth BenchSpec
	// TracePath is the recorded trace file to replay (KindTrace). Run
	// identity hashes the file's *content* and base name, never its
	// directory: the same trace shipped to another machine is the same
	// workload (see WriteCanonical).
	TracePath string
}

// SynthSource wraps a synthetic benchmark spec as a workload source.
func SynthSource(spec BenchSpec) Source { return Source{Kind: KindSynth, Synth: spec} }

// TraceSource references a recorded binary trace file as a workload
// source. The file is not opened here; Validate checks only the path
// shape, and the content is read lazily by ContentHash/FootprintBytes/
// Open (cached per path, see LoadTrace).
func TraceSource(path string) Source { return Source{Kind: KindTrace, TracePath: path} }

// Sources wraps benchmark specs as synthetic sources, in order — the
// common "mix of Table-2 apps" constructor.
func Sources(specs ...BenchSpec) []Source {
	out := make([]Source, len(specs))
	for i, s := range specs {
		out[i] = SynthSource(s)
	}
	return out
}

// Validate reports parameter errors that need no file access. Trace
// sources are further validated (header, record stream) when loaded.
func (s Source) Validate() error {
	switch s.Kind {
	case KindSynth:
		return s.Synth.Validate()
	case KindTrace:
		if s.TracePath == "" {
			return fmt.Errorf("workload: trace source has no path")
		}
		return nil
	default:
		return fmt.Errorf("workload: unknown source kind %d", int(s.Kind))
	}
}

// Name returns the source's display name: the benchmark name for
// synthetic sources, "trace:<file>" for recorded traces.
func (s Source) Name() string {
	if s.Kind == KindTrace {
		return "trace:" + filepath.Base(s.TracePath)
	}
	return s.Synth.Name
}

// MemIntensive reports the Table-2 intensity classification. Recorded
// traces carry no classification and are grouped as memory-intensive
// (recording is usually done to capture memory behaviour); the paper's
// figure groupings only ever see synthetic sources.
func (s Source) MemIntensive() bool {
	if s.Kind == KindTrace {
		return true
	}
	return s.Synth.MemIntensive
}

// FootprintBytes returns the address-window footprint the source needs:
// the benchmark's footprint for synthetic sources, the recorded span for
// traces (which loads — and caches — the trace file).
func (s Source) FootprintBytes() (int64, error) {
	if s.Kind == KindTrace {
		td, err := LoadTrace(s.TracePath)
		if err != nil {
			return 0, err
		}
		return int64(td.Span), nil
	}
	return s.Synth.FootprintBytes, nil
}

// Open builds the cpu.TraceReader that feeds one core: a deterministic
// Generator for synthetic sources, a looping Replayer for recorded
// traces. The reader emits addresses in [base, base+span); span must be
// a power of two at least FootprintBytes. Trace replay is a pure
// function of the file content plus (base, span): seed and layout only
// steer the synthetic generator and are ignored for traces.
func (s Source) Open(seed, base, span uint64, layout Layout) (cpu.TraceReader, error) {
	switch s.Kind {
	case KindSynth:
		return NewGeneratorLayout(s.Synth, seed, base, span, layout)
	case KindTrace:
		td, err := LoadTrace(s.TracePath)
		if err != nil {
			return nil, err
		}
		return td.Replayer(base, span)
	default:
		return nil, fmt.Errorf("workload: unknown source kind %d", int(s.Kind))
	}
}

// WriteCanonical serializes the source's run identity into w, one line
// per source, for configuration fingerprinting (sim.Config.Fingerprint).
//
// The synthetic line layout predates Source and MUST NOT change: it is
// the persisted cache identity of every synthetic run ever computed, and
// changing a byte of it would orphan those results as surely as an
// engine-version bump.
//
// Trace sources hash the file's content (sha256, cached), span, record
// count, and display name (the base file name, which labels the run's
// results) — never the directory. The fingerprint therefore changes
// exactly when the replayed records can change or the result labels
// would: editing the file moves it, and moving the file between
// directories or machines does not — the property that lets recorded
// traces flow through the shard/merge workflow. (The name must be
// folded in because equal fingerprints promise bit-identical
// sim.Results, and results carry the trace's display name.) An
// unreadable trace serializes its error, keeping the fingerprint
// deterministic; such configurations fail properly when the run tries
// to open the source.
func (s Source) WriteCanonical(w io.Writer) {
	if s.Kind == KindTrace {
		td, err := LoadTrace(s.TracePath)
		if err != nil {
			fmt.Fprintf(w, "traceapp err=%q\n", err.Error())
			return
		}
		fmt.Fprintf(w, "traceapp=%q sha256=%x span=%d count=%d\n", s.Name(), td.SHA, td.Span, td.Count)
		return
	}
	b := s.Synth
	fmt.Fprintf(w, "app=%q mi=%t bub=%d fp=%d hot=%d str=%d zipf=%g hf=%g seq=%d wf=%g\n",
		b.Name, b.MemIntensive, b.Bubbles, b.FootprintBytes, b.HotSegments,
		b.Streams, b.ZipfTheta, b.HotFraction, b.SeqRun, b.WriteFrac)
}

// FindMix resolves a workload argument the way the CLIs spell them:
//
//   - "trace:PATH" — a recorded trace replayed on one core
//   - a Table-2 benchmark name (single-core)
//   - an eight-core mix name like "mix-100-0"
//   - "mt-<app>" — a multithreaded application (shared footprint)
//
// The boolean reports whether the cores share one address window
// (multithreaded workloads).
func FindMix(name string) (Mix, bool, error) {
	if path, ok := strings.CutPrefix(name, "trace:"); ok {
		if path == "" {
			return Mix{}, false, fmt.Errorf("workload: empty trace path in %q", name)
		}
		src := TraceSource(path)
		// The mix is named by the trace's base name, not its full path, so
		// the same trace replayed from different directories (or machines)
		// keeps one identity and one cache entry.
		return Mix{Name: src.Name(), Apps: []Source{src}}, false, nil
	}
	if app, ok := strings.CutPrefix(name, "mt-"); ok {
		for _, m := range MultithreadedWorkloads() {
			if m.Name == app {
				return m, true, nil
			}
		}
		return Mix{}, false, fmt.Errorf("workload: unknown multithreaded workload %q", name)
	}
	for _, m := range EightCoreMixes() {
		if m.Name == name {
			return m, false, nil
		}
	}
	if spec, err := ByName(name); err == nil {
		return Mix{Name: name, Apps: Sources(spec)}, false, nil
	}
	return Mix{}, false, fmt.Errorf("workload: unknown workload %q", name)
}

// MixNames returns every workload name FindMix accepts (except the open
// "trace:PATH" form), for catalogs and typo suggestions.
func MixNames() []string {
	var out []string
	for _, s := range Benchmarks() {
		out = append(out, s.Name)
	}
	for _, m := range EightCoreMixes() {
		out = append(out, m.Name)
	}
	for _, m := range MultithreadedWorkloads() {
		out = append(out, "mt-"+m.Name)
	}
	return out
}

// Suggest returns the candidate closest to name by edit distance, or ""
// when nothing is close enough to plausibly be a typo (distance > 1/2 of
// the name's length, capped at 5).
func Suggest(name string, candidates []string) string {
	maxDist := len(name) / 2
	if maxDist > 5 {
		maxDist = 5
	}
	best, bestDist := "", maxDist+1 // strict < below accepts d <= maxDist
	for _, c := range candidates {
		if d := editDistance(strings.ToLower(name), strings.ToLower(c)); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance over bytes (workload names
// are ASCII), with two rolling rows.
func editDistance(a, b string) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	prev := make([]int, len(a)+1)
	cur := make([]int, len(a)+1)
	for i := range prev {
		prev[i] = i
	}
	for j := 1; j <= len(b); j++ {
		cur[0] = j
		for i := 1; i <= len(a); i++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[i-1] + cost        // substitute
			if d := prev[i] + 1; d < m { // delete
				m = d
			}
			if d := cur[i-1] + 1; d < m { // insert
				m = d
			}
			cur[i] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(a)]
}
