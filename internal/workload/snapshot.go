package workload

import "repro/internal/fgss"

// Snapshot appends the generator's mutable state: the PRNG, each sweep
// stream's position, and the current run. Everything else — the spec,
// layout strides, and zipf CDF — is derived from configuration at Open
// time and comes back for free on a fingerprint-matched restore.
func (g *Generator) Snapshot(w *fgss.Writer) {
	w.U64(uint64(g.rng))
	w.Int(len(g.streams))
	for i := range g.streams {
		w.I64(g.streams[i].pos)
	}
	w.Int(g.runLeft)
	w.U64(g.runAddr)
}

// Restore reads back what Snapshot wrote. The receiver must come from
// the same spec (stream count mismatch stops decoding).
func (g *Generator) Restore(r *fgss.Reader) {
	g.rng = splitmix64(r.U64())
	n := r.Int()
	if n != len(g.streams) {
		return
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		g.streams[i].pos = r.I64()
	}
	g.runLeft = r.Int()
	g.runAddr = r.U64()
}

// Snapshot appends the replayer's position in the recorded trace. The
// trace bytes themselves are content-addressed by the config
// fingerprint, so only the cursor travels in the checkpoint.
func (r *Replayer) Snapshot(w *fgss.Writer) {
	w.Int(r.off)
	w.U64(r.prev)
}

// Restore reads back what Snapshot wrote. An offset outside the trace
// is a structural mismatch and decoding stops.
func (r *Replayer) Restore(rd *fgss.Reader) {
	off := rd.Int()
	if off < 0 || off > len(r.data) {
		return
	}
	r.off = off
	r.prev = rd.U64()
}
