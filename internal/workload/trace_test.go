package workload

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cpu"
)

// genRecords produces n records from a fresh mcf generator.
func genRecords(t *testing.T, n int, seed uint64) ([]cpu.TraceRecord, uint64) {
	t.Helper()
	spec, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(spec, seed, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]cpu.TraceRecord, n)
	for i := range recs {
		recs[i] = g.Next()
	}
	return recs, g.Span()
}

// encodeTrace writes records through TraceWriter into a byte buffer.
func encodeTrace(t *testing.T, recs []cpu.TraceRecord, span uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, span, uint64(len(recs)))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeTraceFile records n generator records into a fresh trace file.
func writeTraceFile(t *testing.T, dir, name string, n int, seed uint64) (string, []cpu.TraceRecord) {
	t.Helper()
	recs, span := genRecords(t, n, seed)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, encodeTrace(t, recs, span), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, recs
}

func TestTraceWriterScannerRoundTrip(t *testing.T) {
	recs, span := genRecords(t, 2000, 42)
	img := encodeTrace(t, recs, span)

	s, err := NewTraceScanner(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if s.Span() != span || s.Count() != 2000 {
		t.Fatalf("header span=%d count=%d, want %d/2000", s.Span(), s.Count(), span)
	}
	var got []cpu.TraceRecord
	for s.Scan() {
		got = append(got, s.Record())
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("scanner records differ from written records")
	}
}

func TestTraceWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewTraceWriter(&buf, 12345, 1); err == nil {
		t.Error("non-power-of-two span accepted")
	}
	if _, err := NewTraceWriter(&buf, 1<<20, 0); err == nil {
		t.Error("zero record count accepted")
	}
	tw, err := NewTraceWriter(&buf, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(cpu.TraceRecord{Bubbles: -1}); err == nil {
		t.Error("negative bubbles accepted")
	}
	if err := tw.Write(cpu.TraceRecord{}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err == nil {
		t.Error("Close accepted a short trace (declared 2, wrote 1)")
	}
	if err := tw.Write(cpu.TraceRecord{}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(cpu.TraceRecord{}); err == nil {
		t.Error("write past the declared count accepted")
	}
	tw2, err := NewTraceWriter(&buf, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw2.Write(cpu.TraceRecord{Addr: 1 << 20}); err == nil {
		t.Error("address outside the declared span accepted (traces are window-relative)")
	}
}

// TestTraceRejectsOutOfSpanAddress hand-crafts a trace whose record
// address exceeds the declared span — an externally produced file the
// writer could never emit — and checks the loader rejects it instead of
// letting replay alias it onto another address.
func TestTraceRejectsOutOfSpanAddress(t *testing.T) {
	img := make([]byte, traceHeaderBytes)
	copy(img[0:4], traceMagic)
	binary.LittleEndian.PutUint16(img[4:6], TraceFormatVersion)
	binary.LittleEndian.PutUint64(img[8:16], 1<<20) // span
	binary.LittleEndian.PutUint64(img[16:24], 1)    // count
	var rec [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(rec[:], 0)               // bubbles 0, read
	n += binary.PutVarint(rec[n:], int64(1<<20)+64) // addr past the span
	if _, err := parseTrace(append(img, rec[:n]...)); err == nil {
		t.Error("parseTrace accepted an address outside the declared span")
	}
}

func TestTraceScannerRejectsCorrupt(t *testing.T) {
	recs, span := genRecords(t, 50, 1)
	img := encodeTrace(t, recs, span)

	cases := map[string][]byte{
		"bad magic":   append([]byte("NOPE"), img[4:]...),
		"bad version": func() []byte { b := append([]byte(nil), img...); b[4] = 99; return b }(),
		"zero span":   func() []byte { b := append([]byte(nil), img...); copy(b[8:16], make([]byte, 8)); return b }(),
		"short file":  img[:len(img)/2],
		"empty":       nil,
	}
	for name, b := range cases {
		s, err := NewTraceScanner(bytes.NewReader(b))
		if err != nil {
			continue // rejected at the header, fine
		}
		for s.Scan() {
		}
		if s.Err() == nil && s.n == s.count {
			t.Errorf("%s: corrupt trace fully decoded", name)
		}
	}
	if _, err := parseTrace(img[:len(img)/2]); err == nil {
		t.Error("parseTrace accepted a truncated image")
	}
	// Trailing bytes after the declared records would be decoded as
	// phantom records when the replayer loops; they must be rejected.
	if _, err := parseTrace(append(append([]byte(nil), img...), 0x80)); err == nil {
		t.Error("parseTrace accepted trailing bytes after the declared records")
	}
}

// TestReplayerLoopsDeterministically replays more records than the trace
// holds and checks the stream loops back to the start bit-identically,
// and that two replayers over the same data agree.
func TestReplayerLoopsDeterministically(t *testing.T) {
	recs, span := genRecords(t, 100, 7)
	td, err := parseTrace(encodeTrace(t, recs, span))
	if err != nil {
		t.Fatal(err)
	}
	a, err := td.Replayer(0, span)
	if err != nil {
		t.Fatal(err)
	}
	b, err := td.Replayer(0, span)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 350; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("record %d: replayers diverge: %+v vs %+v", i, ra, rb)
		}
		if want := recs[i%len(recs)]; ra != want {
			t.Fatalf("record %d: got %+v, want %+v (loop broken)", i, ra, want)
		}
	}
}

func TestReplayerRebasesAddresses(t *testing.T) {
	recs, span := genRecords(t, 200, 3)
	td, err := parseTrace(encodeTrace(t, recs, span))
	if err != nil {
		t.Fatal(err)
	}
	base := uint64(4) * span
	r, err := td.Replayer(base, span*2) // larger window: addresses must not alias
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		got := r.Next()
		if got.Addr != base+recs[i].Addr {
			t.Fatalf("record %d: addr %#x, want base %#x + %#x", i, got.Addr, base, recs[i].Addr)
		}
	}
	// A window smaller than the recorded span would alias addresses.
	if _, err := td.Replayer(0, span/2); err == nil {
		t.Error("replay window smaller than the recorded span accepted")
	}
	if _, err := td.Replayer(0, span*3); err == nil {
		t.Error("non-power-of-two replay window accepted")
	}
}

// TestTextBinaryRoundTrip pins that the text format and the binary
// format describe the same records: encode records both ways, decode
// both, and compare record-for-record.
func TestTextBinaryRoundTrip(t *testing.T) {
	recs, span := genRecords(t, 1000, 11)

	// Text: format then parse each record.
	for i, rec := range recs {
		got, err := ParseTextRecord(FormatTextRecord(rec))
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != rec {
			t.Fatalf("record %d: text round trip %+v != %+v", i, got, rec)
		}
	}

	// Binary: write then scan, comparing against the text rendering so
	// both formats are checked against one another, not just themselves.
	s, err := NewTraceScanner(bytes.NewReader(encodeTrace(t, recs, span)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; s.Scan(); i++ {
		if FormatTextRecord(s.Record()) != FormatTextRecord(recs[i]) {
			t.Fatalf("record %d: binary %q != text %q", i, FormatTextRecord(s.Record()), FormatTextRecord(recs[i]))
		}
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
}

func TestParseTextRecordRejects(t *testing.T) {
	for _, line := range []string{"", "1 0x40", "x 0x40 R", "-2 0x40 R", "1 zz R", "1 0x40 Q", "1 0x40 R extra"} {
		if _, err := ParseTextRecord(line); err == nil {
			t.Errorf("ParseTextRecord(%q) accepted", line)
		}
	}
}

func TestLoadTraceCachesAndInvalidates(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeTraceFile(t, dir, "a.trc", 100, 1)
	td1, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	td2, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if td1 != td2 {
		t.Error("unchanged file was reloaded instead of served from cache")
	}

	// Rewrite with different content: the cache must notice.
	recs, span := genRecords(t, 100, 2)
	if err := os.WriteFile(path, encodeTrace(t, recs, span), 0o644); err != nil {
		t.Fatal(err)
	}
	td3, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if td3.SHA == td1.SHA {
		t.Error("rewritten trace served with the old content hash")
	}

	// The racy case: a same-length rewrite inside the filesystem's mtime
	// granularity. Flipping the first record's write bit keeps the byte
	// length and the varint structure but changes the content; the cache
	// must not serve the old bytes on a (size, mtime) match alone.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[24] ^= 1 // first record's bubbles<<1|isWrite byte
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	td4, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if td4.SHA == td3.SHA {
		t.Error("same-size rewrite within the mtime window served stale content")
	}
}

func TestSourceValidateAndNames(t *testing.T) {
	spec, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	s := SynthSource(spec)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Name() != "mcf" || !s.MemIntensive() {
		t.Errorf("synth source name=%q intensive=%v", s.Name(), s.MemIntensive())
	}
	fb, err := s.FootprintBytes()
	if err != nil || fb != spec.FootprintBytes {
		t.Errorf("synth footprint = %d, %v", fb, err)
	}

	tr := TraceSource("/some/dir/mcf.trc")
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "trace:mcf.trc" {
		t.Errorf("trace source name = %q", tr.Name())
	}
	if err := TraceSource("").Validate(); err == nil {
		t.Error("empty trace path accepted")
	}
	if err := (Source{Kind: 99}).Validate(); err == nil {
		t.Error("unknown source kind accepted")
	}
}

// TestSourceOpenTraceMatchesGenerator records a generator's stream and
// checks the opened trace source replays it exactly — the end-to-end
// "record and replay through the same interface" contract.
func TestSourceOpenTraceMatchesGenerator(t *testing.T) {
	dir := t.TempDir()
	path, recs := writeTraceFile(t, dir, "mcf.trc", 500, 5)
	td, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	rdr, err := TraceSource(path).Open(123 /* ignored */, 0, td.Span, Layout{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		if got := rdr.Next(); got != want {
			t.Fatalf("record %d: %+v, want %+v", i, got, want)
		}
	}
}

func TestSourceWriteCanonical(t *testing.T) {
	spec, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic line is a persisted-cache identity; its exact bytes
	// must never change (see Source.WriteCanonical).
	var buf bytes.Buffer
	SynthSource(spec).WriteCanonical(&buf)
	want := `app="mcf" mi=true bub=36 fp=1073741824 hot=2944 str=2 zipf=0.7 hf=0.93 seq=1 wf=0.15` + "\n"
	if buf.String() != want {
		t.Errorf("synthetic canonical line changed:\n got: %q\nwant: %q", buf.String(), want)
	}

	dir := t.TempDir()
	pathA, _ := writeTraceFile(t, dir, "a.trc", 80, 9)
	var a bytes.Buffer
	TraceSource(pathA).WriteCanonical(&a)

	// Same content and file name in a different directory (the
	// cross-machine case): same canonical identity.
	sub := filepath.Join(dir, "elsewhere")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	pathB := filepath.Join(sub, "a.trc")
	if err := os.WriteFile(pathB, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	TraceSource(pathB).WriteCanonical(&b)
	if a.String() != b.String() {
		t.Error("identical trace content+name in two directories serializes differently")
	}

	// Same content under a different file name: different identity (the
	// name labels results, so it is part of the run's identity).
	pathR := filepath.Join(dir, "renamed.trc")
	if err := os.WriteFile(pathR, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var rn bytes.Buffer
	TraceSource(pathR).WriteCanonical(&rn)
	if a.String() == rn.String() {
		t.Error("renamed trace kept its canonical identity despite relabelled results")
	}

	// Different content: different identity.
	pathC, _ := writeTraceFile(t, dir, "c.trc", 80, 10)
	var c bytes.Buffer
	TraceSource(pathC).WriteCanonical(&c)
	if a.String() == c.String() {
		t.Error("different trace content shares a canonical identity")
	}

	// Unreadable: deterministic error form, twice the same.
	var e1, e2 bytes.Buffer
	missing := TraceSource(filepath.Join(dir, "missing.trc"))
	missing.WriteCanonical(&e1)
	missing.WriteCanonical(&e2)
	if e1.String() != e2.String() || e1.Len() == 0 {
		t.Error("unreadable trace does not serialize deterministically")
	}
}

func TestFindMix(t *testing.T) {
	if m, shared, err := FindMix("mcf"); err != nil || shared || len(m.Apps) != 1 || m.Apps[0].Kind != KindSynth {
		t.Errorf("FindMix(mcf) = %+v shared=%v err=%v", m, shared, err)
	}
	if m, _, err := FindMix("mix-100-0"); err != nil || len(m.Apps) != 8 {
		t.Errorf("FindMix(mix-100-0) = %+v err=%v", m, err)
	}
	if m, shared, err := FindMix("mt-canneal"); err != nil || !shared || len(m.Apps) != 8 {
		t.Errorf("FindMix(mt-canneal) = %+v shared=%v err=%v", m, shared, err)
	}
	if m, shared, err := FindMix("trace:some/file.trc"); err != nil || shared ||
		len(m.Apps) != 1 || m.Apps[0].Kind != KindTrace || m.Apps[0].TracePath != "some/file.trc" {
		t.Errorf("FindMix(trace:...) = %+v shared=%v err=%v", m, shared, err)
	}
	for _, bad := range []string{"nosuch", "mt-nosuch", "trace:"} {
		if _, _, err := FindMix(bad); err == nil {
			t.Errorf("FindMix(%q) accepted", bad)
		}
	}
}

func TestSuggest(t *testing.T) {
	names := MixNames()
	cases := map[string]string{
		"mcff":      "mcf",
		"sjneg":     "sjeng",
		"mix-100-O": "mix-100-0",
		"mt-cannea": "mt-canneal",
	}
	for typo, want := range cases {
		if got := Suggest(typo, names); got != want {
			t.Errorf("Suggest(%q) = %q, want %q", typo, got, want)
		}
	}
	if got := Suggest("zzzzzzzzzz", names); got != "" {
		t.Errorf("Suggest(garbage) = %q, want no suggestion", got)
	}
}
