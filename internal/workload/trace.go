package workload

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cpu"
)

// Binary trace file format (version 1)
//
// A recorded trace is the exact cpu.TraceRecord stream a core consumes,
// in a compact delta encoding:
//
//	header (24 bytes, little-endian):
//	  [0:4]   magic "FGTR"
//	  [4:6]   format version (uint16, currently 1)
//	  [6:8]   reserved (0)
//	  [8:16]  span  (uint64): the power-of-two address window the
//	          records were generated in; replay rebases addresses into
//	          a window of at least this size
//	  [16:24] count (uint64, >= 1): records in the file
//	records (count times):
//	  uvarint  bubbles<<1 | isWrite
//	  varint   addr - prevAddr   (prevAddr starts at 0, zigzag-encoded)
//
// Sequential runs dominate generated traces, so the address delta is
// usually one block (64) and most records fit in 2-3 bytes. The format
// is versioned: readers reject unknown versions instead of guessing.
const (
	traceMagic         = "FGTR"
	TraceFormatVersion = 1
	traceHeaderBytes   = 24
)

// TraceWriter streams records into the binary trace format. The record
// count and address span are declared up front (the header is fixed
// size, so the stream needs no seeking); Close verifies the declared
// count was written. Steady-state writes allocate nothing.
type TraceWriter struct {
	w     *bufio.Writer
	prev  uint64
	n     uint64
	span  uint64
	count uint64
	buf   [2 * binary.MaxVarintLen64]byte
}

// NewTraceWriter writes the header for a trace of count records
// generated in a span-byte address window (span must be a power of two).
func NewTraceWriter(w io.Writer, span, count uint64) (*TraceWriter, error) {
	if span == 0 || span&(span-1) != 0 {
		return nil, fmt.Errorf("workload: trace span %d must be a power of two", span)
	}
	if count == 0 {
		return nil, fmt.Errorf("workload: trace must declare at least one record")
	}
	tw := &TraceWriter{w: bufio.NewWriter(w), span: span, count: count}
	var hdr [traceHeaderBytes]byte
	copy(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], TraceFormatVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], span)
	binary.LittleEndian.PutUint64(hdr[16:24], count)
	if _, err := tw.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return tw, nil
}

// Write appends one record. Addresses must lie inside the declared span
// (traces are recorded window-relative, base 0).
func (t *TraceWriter) Write(rec cpu.TraceRecord) error {
	if rec.Bubbles < 0 {
		return fmt.Errorf("workload: record %d has negative bubbles %d", t.n, rec.Bubbles)
	}
	if rec.Addr >= t.span {
		return fmt.Errorf("workload: record %d address %#x outside the declared %d-byte span", t.n, rec.Addr, t.span)
	}
	if t.n >= t.count {
		return fmt.Errorf("workload: trace declared %d records, writing more", t.count)
	}
	u := uint64(rec.Bubbles) << 1
	if rec.IsWrite {
		u |= 1
	}
	n := binary.PutUvarint(t.buf[:], u)
	n += binary.PutVarint(t.buf[n:], int64(rec.Addr)-int64(t.prev))
	t.prev = rec.Addr
	t.n++
	_, err := t.w.Write(t.buf[:n])
	return err
}

// Close flushes and verifies the declared record count was written.
func (t *TraceWriter) Close() error {
	if t.n != t.count {
		return fmt.Errorf("workload: trace declared %d records, wrote %d", t.count, t.n)
	}
	return t.w.Flush()
}

// TraceScanner streams records out of a binary trace — the tooling-side
// reader (dumps, round-trip checks, validation). Simulation replay uses
// the in-memory Replayer instead.
type TraceScanner struct {
	r     io.ByteReader
	span  uint64
	count uint64
	n     uint64
	prev  uint64
	rec   cpu.TraceRecord
	err   error
}

// NewTraceScanner parses the header and prepares to scan records.
func NewTraceScanner(r io.Reader) (*TraceScanner, error) {
	var hdr [traceHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if string(hdr[0:4]) != traceMagic {
		return nil, fmt.Errorf("workload: not a trace file (bad magic %q)", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != TraceFormatVersion {
		return nil, fmt.Errorf("workload: trace format version %d, this build reads %d", v, TraceFormatVersion)
	}
	span := binary.LittleEndian.Uint64(hdr[8:16])
	if span == 0 || span&(span-1) != 0 {
		return nil, fmt.Errorf("workload: trace span %d is not a power of two", span)
	}
	count := binary.LittleEndian.Uint64(hdr[16:24])
	if count == 0 {
		return nil, fmt.Errorf("workload: trace declares zero records")
	}
	br, ok := r.(io.ByteReader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &TraceScanner{r: br, span: span, count: count}, nil
}

// Span returns the address window span the trace was recorded in.
func (s *TraceScanner) Span() uint64 { return s.span }

// Count returns the number of records the trace declares.
func (s *TraceScanner) Count() uint64 { return s.count }

// Scan decodes the next record; false at the declared end or on error.
func (s *TraceScanner) Scan() bool {
	if s.err != nil || s.n >= s.count {
		return false
	}
	u, err := binary.ReadUvarint(s.r)
	if err != nil {
		s.err = fmt.Errorf("workload: record %d: %w (trace truncated?)", s.n, err)
		return false
	}
	d, err := binary.ReadVarint(s.r)
	if err != nil {
		s.err = fmt.Errorf("workload: record %d address: %w (trace truncated?)", s.n, err)
		return false
	}
	s.prev = uint64(int64(s.prev) + d)
	// Addresses are window-relative; one outside the declared span would
	// alias another address when replay reduces modulo the span.
	if s.prev >= s.span {
		s.err = fmt.Errorf("workload: record %d address %#x outside the declared %d-byte span", s.n, s.prev, s.span)
		return false
	}
	s.rec = cpu.TraceRecord{Bubbles: int(u >> 1), Addr: s.prev, IsWrite: u&1 == 1}
	s.n++
	return true
}

// Record returns the record decoded by the last successful Scan.
func (s *TraceScanner) Record() cpu.TraceRecord { return s.rec }

// Err returns the first decode error, if any.
func (s *TraceScanner) Err() error { return s.err }

// TraceData is one loaded, validated trace: the decoded header, the raw
// record payload (kept encoded — replay decodes on the fly), and the
// sha256 of the whole file, which is the trace's run identity.
type TraceData struct {
	Span  uint64
	Count uint64
	SHA   [sha256.Size]byte
	data  []byte // encoded records, validated end to end at load
}

// traceCache memoizes loaded traces by path, invalidated by file size
// and modification time, so an experiment matrix replaying one trace on
// many cores and many configurations reads and hashes the file once.
var traceCache = struct {
	sync.Mutex
	m map[string]*traceCacheEntry
}{m: map[string]*traceCacheEntry{}}

type traceCacheEntry struct {
	size  int64
	mtime int64
	td    *TraceData
}

// mtimeTrustWindow is how old a trace file's mtime must be before a
// matching (size, mtime) pair proves the cached bytes are current.
// Filesystems report modification times at coarse granularity, so a
// file rewritten with same-length content within one timestamp tick
// would satisfy the cheap check while holding different records — the
// classic racy-index problem. Hits inside the window re-read and
// content-compare instead; in steady state (experiment matrices over
// traces recorded minutes ago) the window never triggers.
const mtimeTrustWindow = 2 * time.Second

// LoadTrace reads, validates and caches a binary trace file. The whole
// record stream is decoded once here, so Replayer.Next can assume a
// well-formed payload. Errors are not cached: a fixed file is retried.
func LoadTrace(path string) (*TraceData, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("workload: trace %s: %w", path, err)
	}
	traceCache.Lock()
	e := traceCache.m[path]
	traceCache.Unlock()
	statMatch := e != nil && e.size == fi.Size() && e.mtime == fi.ModTime().UnixNano()
	recent := time.Since(fi.ModTime()).Abs() < mtimeTrustWindow //fglint:deterministic trace-file cache freshness at load time; the decoded trace, not the clock, feeds the simulation
	if statMatch && !recent {
		return e.td, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: trace %s: %w", path, err)
	}
	if statMatch && sha256.Sum256(raw) == e.td.SHA {
		return e.td, nil // recently-touched file, bytes verified current
	}
	td, err := parseTrace(raw)
	if err != nil {
		return nil, fmt.Errorf("workload: trace %s: %w", path, err)
	}
	traceCache.Lock()
	traceCache.m[path] = &traceCacheEntry{size: fi.Size(), mtime: fi.ModTime().UnixNano(), td: td}
	traceCache.Unlock()
	return td, nil
}

// TraceContentHash returns the sha256 of the trace file's content (the
// fingerprint component of a trace source), loading through the cache.
func TraceContentHash(path string) ([sha256.Size]byte, error) {
	td, err := LoadTrace(path)
	if err != nil {
		return [sha256.Size]byte{}, err
	}
	return td.SHA, nil
}

// parseTrace validates a whole trace image and returns its TraceData.
func parseTrace(raw []byte) (*TraceData, error) {
	br := bytes.NewReader(raw)
	s, err := NewTraceScanner(br)
	if err != nil {
		return nil, err
	}
	for s.Scan() {
	}
	if s.Err() != nil {
		return nil, s.Err()
	}
	if s.n != s.count {
		return nil, fmt.Errorf("workload: trace declares %d records, decoded %d", s.count, s.n)
	}
	// Trailing bytes would sit past the Replayer's loop boundary and be
	// decoded as phantom records on the second pass; a well-formed trace
	// ends exactly after its declared count.
	if br.Len() > 0 {
		return nil, fmt.Errorf("workload: trace has %d trailing bytes after its %d declared records", br.Len(), s.count)
	}
	return &TraceData{
		Span:  s.span,
		Count: s.count,
		SHA:   sha256.Sum256(raw),
		data:  raw[traceHeaderBytes:],
	}, nil
}

// Replayer replays a loaded trace into cpu.TraceRecords, looping back to
// the first record when the file is exhausted — recorded traces are
// finite but cores consume an endless stream. Replay is deterministic:
// the same TraceData, base and span always produce the same stream, and
// a fresh Replayer (e.g. after sim.System.Reset) rewinds bit-identically.
//
// Addresses are rebased into [base, base+span): recorded addresses are
// window-relative (validated against the recorded span at load) and are
// offset by base. span must be a power of two at least the recorded
// span, so distinct recorded addresses never alias.
type Replayer struct {
	data []byte
	off  int
	prev uint64
	base uint64
	mask uint64
}

// Replayer builds a replayer emitting the trace into [base, base+span).
func (d *TraceData) Replayer(base, span uint64) (*Replayer, error) {
	if d.Count == 0 || len(d.data) == 0 {
		return nil, fmt.Errorf("workload: cannot replay an empty trace")
	}
	if span == 0 || span&(span-1) != 0 {
		return nil, fmt.Errorf("workload: replay span %d must be a power of two", span)
	}
	if span < d.Span {
		return nil, fmt.Errorf("workload: trace span %d exceeds its %d-byte replay window", d.Span, span)
	}
	return &Replayer{data: d.data, base: base, mask: d.Span - 1}, nil
}

// Next implements cpu.TraceReader. The payload was fully validated at
// load time, so decoding cannot fail mid-stream.
func (r *Replayer) Next() cpu.TraceRecord {
	if r.off >= len(r.data) {
		r.off, r.prev = 0, 0 // loop: restart the recorded stream
	}
	u, n := binary.Uvarint(r.data[r.off:])
	r.off += n
	d, n := binary.Varint(r.data[r.off:])
	r.off += n
	r.prev = uint64(int64(r.prev) + d)
	return cpu.TraceRecord{
		Bubbles: int(u >> 1),
		Addr:    r.base + (r.prev & r.mask),
		IsWrite: u&1 == 1,
	}
}

// FormatTextRecord renders one record in tracegen's line-oriented text
// format: "<bubbles> <hex addr> R|W".
func FormatTextRecord(rec cpu.TraceRecord) string {
	kind := "R"
	if rec.IsWrite {
		kind = "W"
	}
	return fmt.Sprintf("%d %#x %s", rec.Bubbles, rec.Addr, kind)
}

// ParseTextRecord parses one line of the text format. Text and binary
// describe the same records: for any record, ParseTextRecord(
// FormatTextRecord(rec)) == rec, and a binary trace dumped as text line
// by line round-trips likewise (pinned by TestTextBinaryRoundTrip).
func ParseTextRecord(line string) (cpu.TraceRecord, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return cpu.TraceRecord{}, fmt.Errorf("workload: text record %q: want \"<bubbles> <addr> R|W\"", line)
	}
	bubbles, err := strconv.Atoi(fields[0])
	if err != nil || bubbles < 0 {
		return cpu.TraceRecord{}, fmt.Errorf("workload: text record %q: bad bubble count", line)
	}
	addr, err := strconv.ParseUint(fields[1], 0, 64)
	if err != nil {
		return cpu.TraceRecord{}, fmt.Errorf("workload: text record %q: bad address", line)
	}
	var isWrite bool
	switch fields[2] {
	case "R":
	case "W":
		isWrite = true
	default:
		return cpu.TraceRecord{}, fmt.Errorf("workload: text record %q: kind must be R or W", line)
	}
	return cpu.TraceRecord{Bubbles: bubbles, Addr: addr, IsWrite: isWrite}, nil
}
