package workload

import (
	"testing"
	"testing/quick"
)

func TestAllSpecsValid(t *testing.T) {
	for _, s := range append(Benchmarks(), Multithreaded()...) {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestTable2Classification(t *testing.T) {
	// Table 2: 10 memory-intensive + 10 non-intensive benchmarks.
	if got := len(Benchmarks()); got != 20 {
		t.Fatalf("benchmark count = %d, want 20", got)
	}
	if got := len(Intensive()); got != 10 {
		t.Errorf("intensive count = %d, want 10", got)
	}
	if got := len(NonIntensive()); got != 10 {
		t.Errorf("non-intensive count = %d, want 10", got)
	}
	if got := len(Multithreaded()); got != 3 {
		t.Errorf("multithreaded count = %d, want 3", got)
	}
	for _, name := range []string{"mcf", "libquantum", "lbm", "bwaves"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if !s.MemIntensive {
			t.Errorf("%s must be memory intensive per Table 2", name)
		}
	}
	for _, name := range []string{"gcc", "sjeng", "bzip2", "h264ref"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if s.MemIntensive {
			t.Errorf("%s must be non-intensive per Table 2", name)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
}

func TestSpecValidateRejectsBad(t *testing.T) {
	base, _ := ByName("mcf")
	cases := []func(*BenchSpec){
		func(s *BenchSpec) { s.Name = "" },
		func(s *BenchSpec) { s.Bubbles = -1 },
		func(s *BenchSpec) { s.FootprintBytes = 100 },
		func(s *BenchSpec) { s.HotSegments = 0 },
		func(s *BenchSpec) { s.ZipfTheta = 1.5 },
		func(s *BenchSpec) { s.HotFraction = 2 },
		func(s *BenchSpec) { s.SeqRun = 0 },
		func(s *BenchSpec) { s.SeqRun = 999 },
		func(s *BenchSpec) { s.WriteFrac = -0.1 },
	}
	for i, mutate := range cases {
		s := base
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	spec, _ := ByName("mcf")
	a, err := NewGenerator(spec, 42, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewGenerator(spec, 42, 0, 0)
	for i := 0; i < 10000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("record %d differs: %+v vs %+v", i, ra, rb)
		}
	}
	// A different seed must give a different stream.
	c, _ := NewGenerator(spec, 43, 0, 0)
	same := true
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneratorAddressesInWindow(t *testing.T) {
	spec, _ := ByName("lbm")
	base := uint64(1) << 32
	g, err := NewGenerator(spec, 1, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		r := g.Next()
		if r.Addr < base || r.Addr >= base+g.Span() {
			t.Fatalf("address %#x outside window [%#x,%#x)", r.Addr, base, base+g.Span())
		}
		if r.Addr%blockBytes != 0 {
			t.Fatalf("address %#x not block aligned", r.Addr)
		}
	}
}

func TestGeneratorSpanValidation(t *testing.T) {
	spec, _ := ByName("lbm")
	if _, err := NewGenerator(spec, 1, 0, 12345); err == nil {
		t.Error("accepted non-power-of-two span")
	}
	if _, err := NewGenerator(spec, 1, 0, 1<<20); err == nil {
		t.Error("accepted span below footprint")
	}
	g, err := NewGenerator(spec, 1, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if g.Span() != 1<<30 {
		t.Errorf("span = %d, want 1<<30", g.Span())
	}
}

func TestGeneratorScattersAcrossWindow(t *testing.T) {
	// A small footprint must not concentrate in the low addresses of the
	// window: physical segments should spread across the whole span.
	spec, _ := ByName("wc-8443") // 32 MB footprint
	g, err := NewGenerator(spec, 3, 0, 1<<32)
	if err != nil {
		t.Fatal(err)
	}
	top := 0
	n := 20000
	for i := 0; i < n; i++ {
		if g.Next().Addr >= 1<<31 {
			top++
		}
	}
	frac := float64(top) / float64(n)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("upper-half fraction = %.2f, want ~0.5 (scattered)", frac)
	}
}

func TestGeneratorWriteFraction(t *testing.T) {
	spec, _ := ByName("lbm") // WriteFrac 0.40
	g, _ := NewGenerator(spec, 5, 0, 0)
	writes := 0
	n := 100000
	for i := 0; i < n; i++ {
		if g.Next().IsWrite {
			writes++
		}
	}
	frac := float64(writes) / float64(n)
	if frac < 0.35 || frac > 0.45 {
		t.Errorf("write fraction = %.3f, want ~0.40", frac)
	}
}

func TestGeneratorHotSweepRevisits(t *testing.T) {
	// The sweep streams must revisit hot segments in a consistent order:
	// after enough bursts to cover the hot set several times, hot
	// segments are seen repeatedly, and the sequence of first-visits in
	// one sweep matches the next sweep's order.
	spec, _ := ByName("mcf")
	g, _ := NewGenerator(spec, 9, 0, 0)
	counts := make(map[uint64]int)
	// Enough bursts for ~6 sweeps of the 6k-segment hot set.
	for i := 0; i < 6*spec.HotSegments*spec.SeqRun; i++ {
		r := g.Next()
		counts[r.Addr/segmentBytes]++
	}
	revisited := 0
	for _, c := range counts {
		if c >= 2*spec.SeqRun { // segment visited in at least ~2 sweeps
			revisited++
		}
	}
	if revisited < spec.HotSegments/2 {
		t.Errorf("only %d of %d hot segments revisited; sweeps not looping",
			revisited, spec.HotSegments)
	}
}

func TestGeneratorStreamsPartitionHotSet(t *testing.T) {
	spec, _ := ByName("mcf")
	spec.Streams = 4
	g, err := NewGenerator(spec, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.streams) != 4 {
		t.Fatalf("streams = %d, want 4", len(g.streams))
	}
	covered := int64(0)
	for i, s := range g.streams {
		if s.lo >= s.hi {
			t.Errorf("stream %d empty range [%d,%d)", i, s.lo, s.hi)
		}
		if s.pos < s.lo || s.pos >= s.hi {
			t.Errorf("stream %d position %d outside [%d,%d)", i, s.pos, s.lo, s.hi)
		}
		covered += s.hi - s.lo
	}
	if covered != int64(spec.HotSegments) {
		t.Errorf("streams cover %d ranks, want %d", covered, spec.HotSegments)
	}
}

func TestGeneratorSpatialRuns(t *testing.T) {
	spec, _ := ByName("libquantum") // SeqRun 12
	g, _ := NewGenerator(spec, 3, 0, 0)
	sequential := 0
	var prev uint64
	n := 50000
	for i := 0; i < n; i++ {
		r := g.Next()
		if i > 0 && r.Addr == prev+blockBytes {
			sequential++
		}
		prev = r.Addr
	}
	// With 12-block runs, ~11/12 of transitions are sequential.
	if frac := float64(sequential) / float64(n); frac < 0.8 {
		t.Errorf("sequential fraction = %.2f, want > 0.8", frac)
	}
}

func TestZipfSamplerBounds(t *testing.T) {
	z := newZipfSampler(100, 0.9, 1)
	rng := splitmix64(11)
	seen0 := false
	for i := 0; i < 10000; i++ {
		r := z.sample(&rng)
		if r < 0 || r >= 100 {
			t.Fatalf("rank %d out of [0,100)", r)
		}
		if r == 0 {
			seen0 = true
		}
	}
	if !seen0 {
		t.Error("rank 0 (most popular) never sampled")
	}
}

func TestZipfThetaZeroIsUniformish(t *testing.T) {
	z := newZipfSampler(16, 0, 2)
	rng := splitmix64(3)
	counts := make([]int, 16)
	n := 160000
	for i := 0; i < n; i++ {
		counts[z.sample(&rng)]++
	}
	for r, c := range counts {
		if c < n/16/2 || c > n/16*2 {
			t.Errorf("theta=0 rank %d count %d far from uniform %d", r, c, n/16)
		}
	}
}

func TestEightCoreMixes(t *testing.T) {
	mixes := EightCoreMixes()
	if len(mixes) != 20 {
		t.Fatalf("mix count = %d, want 20", len(mixes))
	}
	for _, pct := range []int{25, 50, 75, 100} {
		cat := MixesByCategory(mixes, pct)
		if len(cat) != 5 {
			t.Errorf("category %d%%: %d mixes, want 5", pct, len(cat))
		}
		for _, m := range cat {
			if len(m.Apps) != 8 {
				t.Fatalf("%s: %d apps, want 8", m.Name, len(m.Apps))
			}
			nInt := 0
			for _, a := range m.Apps {
				if a.MemIntensive() {
					nInt++
				}
			}
			if want := 8 * pct / 100; nInt != want {
				t.Errorf("%s: %d intensive apps, want %d", m.Name, nInt, want)
			}
		}
	}
}

func TestSingleCoreWorkloads(t *testing.T) {
	ws := SingleCoreWorkloads()
	if len(ws) != 20 {
		t.Fatalf("single-core workloads = %d, want 20", len(ws))
	}
	for _, w := range ws {
		if len(w.Apps) != 1 {
			t.Errorf("%s has %d apps", w.Name, len(w.Apps))
		}
	}
}

func TestMultithreadedWorkloadsShareSpec(t *testing.T) {
	ws := MultithreadedWorkloads()
	if len(ws) != 3 {
		t.Fatalf("multithreaded workloads = %d, want 3", len(ws))
	}
	for _, w := range ws {
		if len(w.Apps) != 8 {
			t.Fatalf("%s: %d threads, want 8", w.Name, len(w.Apps))
		}
		for _, a := range w.Apps {
			if a.Name() != w.Name {
				t.Errorf("%s thread runs %s", w.Name, a.Name())
			}
		}
	}
}

// Property: generator addresses always stay block-aligned and inside the
// footprint for arbitrary seeds.
func TestPropertyGeneratorWellFormed(t *testing.T) {
	spec, _ := ByName("zeusmp")
	f := func(seed uint64) bool {
		g, err := NewGenerator(spec, seed, 0, 0)
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			r := g.Next()
			if r.Addr >= uint64(spec.FootprintBytes) || r.Addr%blockBytes != 0 || r.Bubbles < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
