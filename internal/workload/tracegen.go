package workload

import (
	"fmt"
	"math"

	"repro/internal/cpu"
)

// Generator is a deterministic trace synthesizer implementing
// cpu.TraceReader for one benchmark instance. Two generators with the
// same spec, seed and address window produce identical traces.
//
// Hot traffic is produced by Streams concurrent sweep streams, each
// looping over its share of the hot set in a fixed order. Hot ranks map
// to scattered physical segments (one per DRAM row), so a sweep revisits
// DRAM rows in a consistent per-bank order on every pass — the temporal
// correlation between co-inserted row segments that FIGCache's
// row-granularity packing turns into DRAM row-buffer hits. Cold traffic
// is uniform over the footprint.
type Generator struct {
	spec BenchSpec
	rng  splitmix64

	// Address window: the generator emits addresses in
	// [base, base+span). For multiprogrammed mixes, each core receives a
	// disjoint window; multithreaded workloads share one. The footprint's
	// logical segments are scattered over the whole window by an
	// injective stride map, mimicking OS page placement: without it a
	// small footprint would occupy only the lowest rows of every bank
	// (e.g. exactly the reserved subarray FIGCache-Slow excludes).
	base   uint64
	span   uint64
	layout Layout

	streams    []sweepStream
	streamZipf *zipfSampler //fglint:preserved precomputed CDF, read-only after construction; sampling draws from the serialized rng

	// Burst state: remaining sequential blocks of the current run.
	runLeft int
	runAddr uint64

	totalSegments int64
	spanSegments  uint64
	hotStride     uint64
	spreadStride  uint64
}

// sweepStream loops over hot ranks [lo, hi).
type sweepStream struct {
	lo, hi, pos int64
}

// Layout describes how the generator maps logical hot segments onto
// physical addresses.
type Layout struct {
	// RowStrideBytes is the address distance between two rows of the same
	// bank under the system's address interleaving (row bytes x channels
	// x banks x ranks). When non-zero, the generator places groups of
	// GroupSize consecutive hot ranks in the *same bank but different
	// rows*: the bank-conflict chains Section 8.1 describes, which
	// conventional DRAM serves with a precharge+activate per access and
	// FIGCache collapses into one cache row. Zero scatters hot segments
	// uniformly instead.
	RowStrideBytes uint64
	// GroupSize is the number of consecutive hot ranks per conflict group
	// (default 8, one in-DRAM cache row's worth of segments).
	GroupSize int
	// LayoutSeed, when non-zero, decouples the logical-to-physical address
	// mapping from the generator seed. Threads of a multithreaded
	// application must share a LayoutSeed so the same logical segment maps
	// to the same physical address for every thread, while their access
	// interleavings (driven by the per-thread seed) still differ.
	LayoutSeed uint64
}

// NewGenerator builds a generator with uniform hot-segment scatter; see
// NewGeneratorLayout for the bank-conflict-group layout.
func NewGenerator(spec BenchSpec, seed uint64, base uint64, span uint64) (*Generator, error) {
	return NewGeneratorLayout(spec, seed, base, span, Layout{})
}

// NewGeneratorLayout builds a generator for spec with the given seed,
// emitting addresses in [base, base+span). span must be a power-of-two
// multiple of the segment size and at least the footprint; 0 selects the
// footprint rounded up to a power of two.
func NewGeneratorLayout(spec BenchSpec, seed uint64, base uint64, span uint64, layout Layout) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if span == 0 {
		span = nextPow2(uint64(spec.FootprintBytes))
	}
	if span&(span-1) != 0 || span%segmentBytes != 0 {
		return nil, fmt.Errorf("workload %s: span %d must be a power-of-two multiple of %d",
			spec.Name, span, segmentBytes)
	}
	if span < uint64(spec.FootprintBytes) {
		return nil, fmt.Errorf("workload %s: span %d below footprint %d", spec.Name, span, spec.FootprintBytes)
	}
	if layout.RowStrideBytes > 0 {
		if layout.RowStrideBytes%segmentBytes != 0 || span%layout.RowStrideBytes != 0 {
			return nil, fmt.Errorf("workload %s: row stride %d must divide span %d and be a multiple of %d",
				spec.Name, layout.RowStrideBytes, span, segmentBytes)
		}
		if layout.GroupSize <= 0 {
			layout.GroupSize = 8
		}
	}
	g := &Generator{
		spec:          spec,
		rng:           splitmix64(seed*0x9e3779b97f4a7c15 + 1),
		base:          base,
		span:          span,
		layout:        layout,
		totalSegments: spec.FootprintBytes / segmentBytes,
		spanSegments:  span / segmentBytes,
	}
	// An odd stride modulo a power-of-two segment count is a bijection,
	// so distinct logical segments land on distinct physical segments.
	layoutSeed := layout.LayoutSeed
	if layoutSeed == 0 {
		layoutSeed = seed
	}
	g.spreadStride = (layoutSeed*2654435761 + 0x9e3779b9) | 1
	// Partition the hot ranks into one contiguous range per stream, and
	// stagger starting positions so streams do not march in lockstep.
	per := int64(spec.HotSegments) / int64(spec.Streams)
	if per < 1 {
		per = 1
	}
	for i := 0; i < spec.Streams; i++ {
		lo := int64(i) * per
		hi := lo + per
		if i == spec.Streams-1 {
			hi = int64(spec.HotSegments)
		}
		if lo >= hi {
			break
		}
		start := lo + int64(g.rng.next()%uint64(hi-lo))
		g.streams = append(g.streams, sweepStream{lo: lo, hi: hi, pos: start})
	}
	g.streamZipf = newZipfSampler(len(g.streams), spec.ZipfTheta, seed+7)
	// Hot ranks are scattered across the footprint with a fixed odd
	// stride, so they land in distinct DRAM rows and banks: one hot
	// segment per row, the paper's limited-row-locality regime.
	g.hotStride = oddStride(uint64(g.totalSegments))
	return g, nil
}

// Spec returns the generated benchmark's parameters.
func (g *Generator) Spec() BenchSpec { return g.spec }

// Span returns the size of the generator's address window.
func (g *Generator) Span() uint64 { return g.span }

// Next implements cpu.TraceReader.
func (g *Generator) Next() cpu.TraceRecord {
	if g.runLeft == 0 {
		g.startBurst()
	}
	addr := g.runAddr
	g.runAddr += blockBytes
	g.runLeft--

	isWrite := g.rng.float64() < g.spec.WriteFrac
	// Jitter bubbles ±50% around the mean for irregular arrival times.
	b := g.spec.Bubbles
	if b > 1 {
		b = b/2 + int(g.rng.next()%uint64(g.spec.Bubbles))
	}
	return cpu.TraceRecord{Bubbles: b, Addr: addr, IsWrite: isWrite}
}

// startBurst picks the next segment (hot via a sweep stream, or cold
// uniform) and a block run inside it.
func (g *Generator) startBurst() {
	var phys uint64
	if g.rng.float64() < g.spec.HotFraction {
		st := &g.streams[g.streamZipf.sample(&g.rng)]
		rank := st.pos
		st.pos++
		if st.pos >= st.hi {
			st.pos = st.lo
		}
		phys = g.hotPhys(uint64(rank))
	} else {
		segIdx := g.rng.next() % uint64(g.totalSegments)
		// Spread cold segments over the whole window (injective for
		// power-of-two spanSegments and odd stride).
		phys = (segIdx * g.spreadStride) % g.spanSegments
	}

	blocksPerSeg := int64(segmentBytes / blockBytes)
	run := g.spec.SeqRun
	start := int64(0)
	if run < int(blocksPerSeg) {
		start = int64(g.rng.next() % uint64(blocksPerSeg-int64(run)+1))
	}
	g.runAddr = g.base + phys*segmentBytes + uint64(start*blockBytes)
	g.runLeft = run
}

// hotPhys maps a hot rank to its physical segment within the window.
//
// Without a layout, ranks scatter uniformly (one hot segment per DRAM
// row). With a bank-conflict layout, GroupSize consecutive ranks share a
// bank-slot (the same channel/bank/segment-in-row position) but occupy
// different rows: a sweep then produces chains of same-bank row conflicts
// on conventional DRAM, while FIGCache co-locates the whole group into a
// single in-DRAM cache row (Section 8.1).
func (g *Generator) hotPhys(rank uint64) uint64 {
	if g.layout.RowStrideBytes == 0 {
		logical := (rank * g.hotStride) % uint64(g.totalSegments)
		return (logical * g.spreadStride) % g.spanSegments
	}
	gs := uint64(g.layout.GroupSize)
	group, member := rank/gs, rank%gs
	slotsPerStride := g.layout.RowStrideBytes / segmentBytes
	rows := g.span / g.layout.RowStrideBytes
	// The group's bank-slot: one of the channel/bank/segment positions
	// within a row stride, chosen by an odd-stride hash so groups spread
	// over all banks.
	slot := (group * g.spreadStride) % slotsPerStride
	// The member's row: consecutive members land in distinct rows spread
	// across the bank (multiplication by an odd constant is injective
	// modulo the power-of-two row count).
	row := ((group*0x9e3779b9 + member*g.hotStride) * 2654435761) % rows
	return row*slotsPerStride + slot
}

// nextPow2 rounds v up to a power of two.
func nextPow2(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// zipfSampler draws ranks in [0,n) with probability proportional to
// 1/(rank+1)^theta, via inverse-CDF binary search over a precomputed
// table. theta = 0 degenerates to uniform.
type zipfSampler struct {
	cdf []float64
}

func newZipfSampler(n int, theta float64, seed uint64) *zipfSampler {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfSampler{cdf: cdf}
}

func (z *zipfSampler) sample(rng *splitmix64) int {
	u := rng.float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// splitmix64 is the deterministic PRNG used throughout trace generation.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// oddStride derives a large odd stride co-prime with any power-of-two
// segment count, spreading consecutive hot ranks across the footprint.
func oddStride(n uint64) uint64 {
	s := (n/2 + 1) | 1
	// Golden-ratio-ish multiplier keeps ranks far apart for small n too.
	s = s*2654435761 | 1
	if n > 0 {
		s %= n
		if s == 0 {
			s = 1
		}
		s |= 1
	}
	return s
}
