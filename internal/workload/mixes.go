package workload

import "fmt"

// Mix is one multiprogrammed workload: an ordered list of workload
// sources, one per core, plus the category it belongs to (fraction of
// memory-intensive applications). Sources may be synthetic generators,
// recorded traces, or any combination.
type Mix struct {
	Name             string
	Apps             []Source
	IntensivePercent int // 25, 50, 75 or 100
}

// EightCoreMixes builds the paper's 20 eight-core multiprogrammed
// workloads: five mixes in each of the 25%, 50%, 75% and 100%
// memory-intensive categories (Section 7). Mix composition is
// deterministic: benchmarks rotate through the intensive and
// non-intensive pools.
func EightCoreMixes() []Mix {
	intensive := Intensive()
	nonIntensive := NonIntensive()
	var mixes []Mix
	categories := []int{25, 50, 75, 100}
	perCategory := 5
	cores := 8
	ii, ni := 0, 0
	for _, pct := range categories {
		nInt := cores * pct / 100
		for m := 0; m < perCategory; m++ {
			mix := Mix{
				Name:             fmt.Sprintf("mix-%d-%d", pct, m),
				IntensivePercent: pct,
			}
			for c := 0; c < cores; c++ {
				if c < nInt {
					mix.Apps = append(mix.Apps, SynthSource(intensive[ii%len(intensive)]))
					ii++
				} else {
					mix.Apps = append(mix.Apps, SynthSource(nonIntensive[ni%len(nonIntensive)]))
					ni++
				}
			}
			mixes = append(mixes, mix)
		}
	}
	return mixes
}

// MixesByCategory filters mixes to one intensive-percentage category.
func MixesByCategory(mixes []Mix, pct int) []Mix {
	var out []Mix
	for _, m := range mixes {
		if m.IntensivePercent == pct {
			out = append(out, m)
		}
	}
	return out
}

// SingleCoreWorkloads returns one single-app "mix" per benchmark, for the
// paper's single-core evaluation (Figure 7).
func SingleCoreWorkloads() []Mix {
	var out []Mix
	for _, s := range Benchmarks() {
		pct := 0
		if s.MemIntensive {
			pct = 100
		}
		out = append(out, Mix{Name: s.Name, Apps: Sources(s), IntensivePercent: pct})
	}
	return out
}

// MultithreadedWorkloads returns the three multithreaded applications as
// eight-core mixes where every core runs a thread of the same application
// over a shared footprint.
func MultithreadedWorkloads() []Mix {
	var out []Mix
	for _, s := range Multithreaded() {
		mix := Mix{Name: s.Name, IntensivePercent: 100}
		for c := 0; c < 8; c++ {
			mix.Apps = append(mix.Apps, SynthSource(s))
		}
		out = append(out, mix)
	}
	return out
}
