package workload

import (
	"fmt"

	"repro/internal/cpu"
)

// Tee shares one decoded instruction stream between the members of a
// simulation gang (sim.Gang). The underlying reader — a synthetic
// Generator or a trace Replayer — is consulted exactly once per record;
// the records are memoized in a ring so every member observes the
// identical sequence without re-running the generator arithmetic or the
// trace decode. Members advance independent cursors at their own
// simulated pace: the ring holds the window between the laggard cursor
// and the most recently produced record, growing (by doubling) only when
// the gang's scheduler lets members drift further apart than the current
// capacity.
//
// A Tee is deliberately not a cpu.TraceReader itself — each member reads
// through the handle returned by Reader(i), so a record consumed by one
// member stays available to the others.
//
// Tees are single-goroutine by design, like the Systems they feed: the
// gang engine interleaves its members on one goroutine, so cursor and
// ring updates need no synchronization.
type Tee struct {
	src     cpu.TraceReader
	ring    []cpu.TraceRecord
	mask    uint64
	head    uint64 // absolute index of the next record to produce
	cursors []uint64
	// closed marks members that have finished their run: their cursors no
	// longer bound the ring window, so a finished fast member cannot force
	// the ring to retain the whole remaining stream.
	closed []bool
}

// teeInitialCap is the starting ring capacity. Gang scheduling always
// advances the member with the fewest consumed records, so the drift
// between cursors — and therefore the ring — stays near one scheduling
// slice's worth of records; the ring doubles on demand if a gang drifts
// further.
const teeInitialCap = 1 << 10

// NewTee wraps src for a gang of members readers.
func NewTee(src cpu.TraceReader, members int) (*Tee, error) {
	if src == nil {
		return nil, fmt.Errorf("workload: tee source must be non-nil")
	}
	if members <= 0 {
		return nil, fmt.Errorf("workload: tee needs at least one member, got %d", members)
	}
	return &Tee{
		src:     src,
		ring:    make([]cpu.TraceRecord, teeInitialCap),
		mask:    teeInitialCap - 1,
		cursors: make([]uint64, members),
		closed:  make([]bool, members),
	}, nil
}

// Reader returns member's view of the shared stream. Each member must
// use its own reader; the reader is valid for the Tee's lifetime.
func (t *Tee) Reader(member int) cpu.TraceReader {
	return &teeReader{tee: t, member: member}
}

// Consumed returns how many records member has read — the gang
// scheduler's progress metric (always advancing the member with the
// fewest consumed records keeps the ring window tight).
func (t *Tee) Consumed(member int) uint64 { return t.cursors[member] }

// Close marks member finished: its cursor stops bounding the ring
// window, so a member that completed its run early cannot force the ring
// to retain the whole remaining stream. Closing is final — records
// behind a closed cursor may be overwritten as the open members advance,
// so the member's reader must not be used after Close. The gang engine
// closes a member exactly when its System has completed its run (and
// will therefore never read again).
func (t *Tee) Close(member int) { t.closed[member] = true }

// next returns the record at absolute index c, producing it from the
// source if no member has reached it yet.
func (t *Tee) next(c uint64) cpu.TraceRecord {
	if c == t.head {
		if t.head-t.lag() >= uint64(len(t.ring)) {
			t.grow()
		}
		t.ring[t.head&t.mask] = t.src.Next()
		t.head++
	}
	return t.ring[c&t.mask]
}

// lag returns the smallest open cursor (the laggard), or head when every
// member is closed.
func (t *Tee) lag() uint64 {
	min := t.head
	for i, c := range t.cursors {
		if !t.closed[i] && c < min {
			min = c
		}
	}
	return min
}

// grow doubles the ring, re-homing the live window [lag, head). Indices
// are absolute, so only the masked positions change.
func (t *Tee) grow() {
	old := t.ring
	oldMask := t.mask
	t.ring = make([]cpu.TraceRecord, 2*len(old))
	t.mask = uint64(len(t.ring)) - 1
	for c := t.lag(); c < t.head; c++ {
		t.ring[c&t.mask] = old[c&oldMask]
	}
}

// teeReader is one member's cursor over the shared stream.
type teeReader struct {
	tee    *Tee
	member int
}

// Next implements cpu.TraceReader: return the member's next record,
// advancing only this member's cursor.
func (r *teeReader) Next() cpu.TraceRecord {
	c := r.tee.cursors[r.member]
	rec := r.tee.next(c)
	r.tee.cursors[r.member] = c + 1
	return rec
}
