// Package ev defines the serializable event token that replaces
// in-flight closures throughout the simulator.
//
// The event queue used to hold `func(now int64)` callbacks. Closures
// cannot be written to a checkpoint, so every deferred action is now a
// Token — a small value naming *what* to do (complete a core window
// slot, start or finish an MSHR fetch) plus the identifiers needed to
// do it. A Dispatcher (implemented by sim.System) turns a token back
// into the method call the closure used to capture.
//
// The token vocabulary is closed by construction: auditing every
// Scheduler.After / Backend.Request call site shows the only deferred
// actions are core slot completions, MSHR fetch starts, and MSHR fills
// (write-backs and stores pass the zero Token, meaning "no action").
// Keeping the set closed is what makes snapshots possible, so new
// deferred behavior must be added here as a new Kind, never as a
// closure.
//
// Snapshot/Restore contract: a Token is plain data; layers that buffer
// tokens (the event queue, MSHR waiter lists, memctrl requests)
// serialize them as three scalars and restore them verbatim.
package ev

// Kind names the deferred action a Token performs.
type Kind uint8

const (
	// None is the zero token: no action. Write-backs and completed
	// stores schedule nothing.
	None Kind = iota
	// CoreSlot completes load slot Arg in core ID's window.
	CoreSlot
	// MSHRStart begins the backing fetch for block address Arg at
	// cache node ID (the miss latency has elapsed).
	MSHRStart
	// MSHRFill installs block address Arg into cache node ID (the
	// backing fetch has returned).
	MSHRFill
)

// Token is a defunctionalized event callback: Kind selects the action,
// ID names the acting component (core ID or cache node ID), and Arg
// carries the payload (window slot or block address).
type Token struct {
	Kind Kind
	ID   int32
	Arg  uint64
}

// IsZero reports whether the token performs no action.
func (t Token) IsZero() bool { return t.Kind == None }

// Dispatcher executes tokens. sim.System implements it by routing
// CoreSlot to cpu.Core.CompleteSlot and the MSHR kinds to the cache
// node registry.
type Dispatcher interface {
	Dispatch(t Token, now int64)
}
