package memctrl

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/ev"
)

// benchDrain fills the write queue with locs and ticks the controller
// (driven densely, as a busy system's completion events would) until the
// queue is empty, refilling b.N times.
func benchDrain(b *testing.B, locs func(i int, geo dram.Geometry) dram.Location) {
	geo := dram.Default()
	slow := dram.DDR4()
	ch, err := dram.NewChannel(geo, slow, slow.Fast(dram.PaperFastScale()), false)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	c := NewController(0, cfg, ch, nil)
	sched := func(at int64, tok ev.Token) {}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		c.Reset(cfg, nil)
		if err := ch.Reset(geo, false); err != nil {
			b.Fatal(err)
		}
		reqs := make([]*Request, cfg.WriteQueueDepth)
		for i := range reqs {
			reqs[i] = &Request{IsWrite: true, Loc: locs(i, geo)}
		}
		b.StartTimer()
		now := int64(0)
		for _, r := range reqs {
			c.Enqueue(r, now)
		}
		for c.PendingWrites() > 0 {
			c.Tick(now, sched)
			now++
		}
	}
}

// BenchmarkWriteDrainDeepQueue measures the FR-FCFS scheduling cost of
// draining a full 64-entry write queue — the deep-queue scan the ROADMAP
// profiled as the remaining scheduler lever — with writes spread over
// every bank (several rows per bank, so drains mix row hits, conflicts
// and activates).
func BenchmarkWriteDrainDeepQueue(b *testing.B) {
	benchDrain(b, func(i int, geo dram.Geometry) dram.Location {
		return dram.Location{
			Group: i % geo.BankGroups,
			Bank:  (i / geo.BankGroups) % geo.BanksPerGroup,
			Row:   (i / (geo.BankGroups * geo.BanksPerGroup)) * 7,
			Block: i % 128,
		}
	})
}

// BenchmarkWriteDrainHotBank drains a queue dominated by a sequential
// burst to one hot row — the pattern that made the former whole-queue
// scan quadratic: on every tick that issues nothing, each queued request
// to the open hot row re-priced the identical column command, so a
// 64-deep burst paid 64 CanIssue calls per tick. The per-bank candidate
// walk prices one.
func BenchmarkWriteDrainHotBank(b *testing.B) {
	benchDrain(b, func(i int, geo dram.Geometry) dram.Location {
		if i%8 == 7 { // a few strays keep several banks occupied
			return dram.Location{Group: i % geo.BankGroups, Bank: 1, Row: 3, Block: i % 128}
		}
		return dram.Location{Group: 0, Bank: 0, Row: 9, Block: i % 128}
	})
}
