package memctrl

import (
	"fmt"

	"repro/internal/dram"
)

// AddrMapper decodes a physical byte address into a channel index and a
// fully decoded DRAM location using the paper's interleaving
// {row, rank, bankgroup, bank, channel, column} — the row bits are the
// most significant, the column (block) bits the least significant (above
// the block offset), with the channel bits between bank and column so that
// consecutive rows of blocks stripe across channels.
type AddrMapper struct {
	geo      dram.Geometry
	channels int

	blockShift int // log2(block bytes)
	blocksMask uint64
	blockBits  int
	chanBits   int
	bankBits   int
	groupBits  int
	rankBits   int
}

// NewAddrMapper builds a mapper for the given geometry and channel count.
// All dimension sizes must be powers of two.
func NewAddrMapper(geo dram.Geometry, channels int) (*AddrMapper, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if channels <= 0 {
		return nil, fmt.Errorf("memctrl: channels must be positive, got %d", channels)
	}
	m := &AddrMapper{geo: geo, channels: channels}
	dims := []struct {
		name string
		n    int
		bits *int
	}{
		{"block bytes", geo.BlockBytes, &m.blockShift},
		{"blocks per row", geo.BlocksPerRow(), &m.blockBits},
		{"channels", channels, &m.chanBits},
		{"banks per group", geo.BanksPerGroup, &m.bankBits},
		{"bank groups", geo.BankGroups, &m.groupBits},
		{"ranks", geo.Ranks, &m.rankBits},
	}
	for _, d := range dims {
		b, ok := log2(d.n)
		if !ok {
			return nil, fmt.Errorf("memctrl: %s (%d) must be a power of two", d.name, d.n)
		}
		*d.bits = b
	}
	m.blocksMask = uint64(geo.BlocksPerRow() - 1)
	return m, nil
}

// Channels returns the number of channels the mapper interleaves across.
func (m *AddrMapper) Channels() int { return m.channels }

// Geometry returns the per-channel geometry.
func (m *AddrMapper) Geometry() dram.Geometry { return m.geo }

// TotalBytes returns the capacity across all channels.
func (m *AddrMapper) TotalBytes() int64 { return int64(m.channels) * m.geo.ChannelBytes() }

// Decode splits a physical byte address into (channel, location).
// Addresses wrap modulo the total capacity.
func (m *AddrMapper) Decode(addr uint64) (channel int, loc dram.Location) {
	a := addr >> uint(m.blockShift)
	// {row, rank, bankgroup, bank, channel, column}: peel from the least
	// significant side in reverse order of the interleaving string.
	loc.Block = int(a & m.blocksMask)
	a >>= uint(m.blockBits)
	channel = int(a & uint64(m.channels-1))
	a >>= uint(m.chanBits)
	loc.Bank = int(a & uint64(m.geo.BanksPerGroup-1))
	a >>= uint(m.bankBits)
	loc.Group = int(a & uint64(m.geo.BankGroups-1))
	a >>= uint(m.groupBits)
	loc.Rank = int(a & uint64(m.geo.Ranks-1))
	a >>= uint(m.rankBits)
	loc.Row = int(a % uint64(m.geo.RowsPerBank()))
	return channel, loc
}

// Encode is the inverse of Decode; it reconstructs the canonical physical
// byte address of a (channel, location) pair. Used by tests to verify the
// mapping is a bijection, and by trace tooling.
func (m *AddrMapper) Encode(channel int, loc dram.Location) uint64 {
	a := uint64(loc.Row)
	a = a<<uint(m.rankBits) | uint64(loc.Rank)
	a = a<<uint(m.groupBits) | uint64(loc.Group)
	a = a<<uint(m.bankBits) | uint64(loc.Bank)
	a = a<<uint(m.chanBits) | uint64(channel)
	a = a<<uint(m.blockBits) | uint64(loc.Block)
	return a << uint(m.blockShift)
}

func log2(n int) (bits int, ok bool) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, false
	}
	for n > 1 {
		n >>= 1
		bits++
	}
	return bits, true
}
