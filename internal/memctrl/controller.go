package memctrl

import (
	"math"

	"repro/internal/arena"
	"repro/internal/dram"
	"repro/internal/ev"
	"repro/internal/stats"
)

// CacheHook is the interface through which an in-DRAM cache (FIGCache or
// LISA-VILLA, in internal/core) plugs into the memory controller. The
// controller consults the hook on every request, and notifies it when a
// miss finishes its column access with the source row still open — the
// moment FIGCache exploits to relocate the row segment into the cache
// without paying the first ACTIVATE (Section 8.1 of the paper).
type CacheHook interface {
	// Lookup checks whether the block at loc is cached. On a hit it
	// returns the in-DRAM cache location that serves the request. The
	// hook updates its benefit/dirty metadata internally.
	Lookup(loc dram.Location, isWrite bool) (redirect dram.Location, hit bool)

	// ShouldInsert asks the insertion policy whether the missing block's
	// segment should be relocated into the cache once its row is open.
	ShouldInsert(loc dram.Location) bool

	// Insert performs the cache bookkeeping for inserting the segment
	// containing loc, assuming the source row is currently open in its
	// local row buffer. It returns the relocation work to perform:
	// occupancy cycles for the bank and the number of RELOC column
	// operations (or LISA hops). A nil plan means the insertion was
	// cancelled (e.g. no evictable slot). The returned plan is valid
	// only until the hook's next Insert call: the controller copies it
	// into pooled storage immediately, which lets hooks return a pointer
	// to a reused scratch plan instead of allocating per insertion.
	Insert(ch *dram.Channel, loc dram.Location, now int64) *RelocPlan

	// Commit installs the cache tags for a plan this hook returned from
	// Insert, at the moment the controller executes the relocation. The
	// plan's CommitBank/CommitSlot/CommitRow/CommitSeg fields carry the
	// hook-specific payload recorded at Insert time.
	Commit(p *RelocPlan)
}

// RelocPlan describes in-DRAM relocation work the controller must apply to
// a bank: total occupancy cycles and accounting detail. The controller
// defers the work until the source row is about to close; CacheHook.Commit
// installs the cache metadata at that point, so requests arriving while
// the source row is still open keep being served from it (as row hits),
// exactly as the paper's insertion sequence allows (Section 8.1). The plan
// is plain data — the commit payload is carried in the Commit* fields
// rather than a closure — so deferred plans survive a checkpoint.
type RelocPlan struct {
	Loc    dram.Location // bank being occupied
	Cost   int64         // occupancy in bus cycles
	Blocks int           // FIGARO RELOC column operations performed
	Hops   int           // LISA inter-subarray hops performed
	IsLISA bool
	// ChannelWide marks a RowClone-PSM relocation: the copy crosses the
	// shared global data bus and occupies every bank in the channel, not
	// just the source bank.
	ChannelWide bool
	// Commit payload, recorded by the hook's Insert and consumed by its
	// Commit: the hook-local dense bank index, the reserved slot, and the
	// source row (FIGCache additionally uses the segment index).
	CommitBank int
	CommitSlot int
	CommitRow  int
	CommitSeg  int
}

// Config holds the controller parameters from Table 1.
type Config struct {
	ReadQueueDepth  int
	WriteQueueDepth int
	// Write drain watermarks: the controller switches to write mode when
	// the write queue reaches HighWatermark and leaves it at LowWatermark.
	HighWatermark int
	LowWatermark  int
	// IdleFlushAfter is how long (bus cycles) a bank must be free of
	// column traffic before an otherwise idle tick may spend it on
	// deferred relocation work.
	IdleFlushAfter int64
	// ImmediateReloc executes insertion relocations at miss time instead
	// of deferring them to row close. This is the naive policy the
	// deferred design is ablated against: it steals row hits from queued
	// requests and occupies hot banks at their busiest moment.
	ImmediateReloc bool
	// LatSampleCap bounds the per-controller read-latency sample
	// reservoir; 0 selects the default (2048 samples).
	LatSampleCap int
}

// DefaultConfig returns the 64-entry read/write queues from Table 1.
func DefaultConfig() Config {
	return Config{
		ReadQueueDepth: 64, WriteQueueDepth: 64,
		HighWatermark: 48, LowWatermark: 16,
		IdleFlushAfter: 64, // ~80 ns of bank quiet time
	}
}

// Controller is one channel's memory controller. It ticks once per DRAM
// bus cycle and issues at most one command per tick, chosen by FR-FCFS:
// column commands to open rows first (row hits), then the oldest request.
type Controller struct {
	ID      int
	cfg     Config
	channel *dram.Channel //fglint:preserved wiring only; System.Reset resets the channel itself
	cache   CacheHook

	readQ   *queue
	writeQ  *queue
	writing bool // in write-drain mode

	// pendingRelocs holds cache-insertion relocation plans per bank
	// (indexed by dense bank ID), deferred until the source row's useful
	// life ends (conflict precharge, refresh precharge, or an idle tick).
	// Deferring keeps the row open for queued row hits — the RELOCs only
	// need the row in the local row buffer, and the controller schedules
	// them when no column commands are pending (Section 8.1).
	pendingRelocs [][]*RelocPlan
	// planPool recycles RelocPlan storage: issueColumn copies each plan
	// the hook returns into a pooled object, and flushRelocs returns the
	// objects after Commit, so steady-state relocation traffic allocates
	// nothing.
	//fglint:preserved recycled plans are fully overwritten before reuse and never carry state across runs
	planPool []*RelocPlan
	// relocBanks counts banks with pending relocation plans, so idle
	// ticks skip the per-bank scan when there is no deferred work.
	relocBanks int
	// lastColumn records each bank's last column-access cycle (indexed by
	// dense bank ID); the idle flush waits IdleFlushAfter cycles beyond
	// it, so relocations do not close a row in the middle of a spatial
	// burst whose next block is still working its way down the cache
	// hierarchy.
	lastColumn []int64
	// cands is scratch space for the FR-FCFS pass-1 arbitration: one
	// column-command candidate per open bank (the bank's oldest request
	// matching the open row, plus its bucket index). At most one entry
	// per bank, reused across ticks without allocating.
	cands []colCand
	// lastTick is the bus cycle of the previous Tick call, used to credit
	// the write-drain diagnostic for ticks a cycle-skipping caller
	// elided; -1 before the first tick.
	lastTick int64
	// spanHorizon bounds the TickSpan in progress (exclusive): the span
	// must stop before the earliest completion it scheduled, because that
	// event can feed the controller a new request at the same bus cycle.
	// issueColumn clamps it as completions are scheduled.
	//fglint:preserved transient TickSpan bound; always math.MaxInt64 between Tick calls, so neither a checkpoint nor a reused System can observe another value
	spanHorizon int64

	// Stats.
	NumReads, NumWrites    int64
	CacheHits, CacheMisses int64
	ReadLatencySum         int64 // queue-arrival to data cycles, reads only
	Inserted               int64 // segments inserted into the in-DRAM cache
	QueueFullStalls        int64

	// Diagnostics for calibration and latency-composition analysis.
	MaxReadQ, MaxWriteQ int
	WritingCycles       int64 // bus cycles spent in write-drain mode
	// latSamples keeps a bounded, deterministic reservoir of per-read
	// latencies (bus cycles) instead of an unbounded append-per-read
	// slice, so full-scale runs stop accumulating one int64 per read.
	latSamples *stats.Reservoir

	// Release, when non-nil, receives each request after the controller
	// has fully served it (column command issued, completion callback
	// scheduled, insertion bookkeeping done). The request creator uses it
	// to recycle Request objects; the controller never touches a request
	// after releasing it.
	Release func(*Request)
}

// NewController builds a controller over the channel. cache may be nil for
// the Base configuration.
func NewController(id int, cfg Config, ch *dram.Channel, cache CacheHook) *Controller {
	return NewControllerIn(nil, id, cfg, ch, cache)
}

// NewControllerIn is NewController with the pointer-free per-bank arrays
// (last-column registers, queue occupancy indexes) carved out of a. A
// nil arena keeps plain allocations.
func NewControllerIn(a *arena.Arena, id int, cfg Config, ch *dram.Channel, cache CacheHook) *Controller {
	if cfg.LatSampleCap == 0 {
		cfg.LatSampleCap = 2048
	}
	return &Controller{
		ID:            id,
		cfg:           cfg,
		channel:       ch,
		cache:         cache,
		readQ:         newQueueIn(a, cfg.ReadQueueDepth, ch.NumBanks()),
		writeQ:        newQueueIn(a, cfg.WriteQueueDepth, ch.NumBanks()),
		pendingRelocs: make([][]*RelocPlan, ch.NumBanks()),
		lastColumn:    arena.Slice[int64](a, ch.NumBanks()),
		cands:         make([]colCand, 0, ch.NumBanks()),
		lastTick:      -1,
		spanHorizon:   math.MaxInt64,
		// Seed by controller ID so per-channel reservoirs differ but any
		// two runs of the same configuration sample identically.
		latSamples: stats.NewReservoir(cfg.LatSampleCap, uint64(id)+1),
	}
}

// Channel exposes the underlying DRAM channel (stats, tests).
func (c *Controller) Channel() *dram.Channel { return c.channel }

// Reset returns the controller to its freshly constructed state over the
// same channel, with a new configuration and cache hook, reusing every
// allocation (queues, per-bank relocation/claim/last-column arrays, the
// latency reservoir). Queued requests are dropped without Release: their
// creator resets its own pool alongside this call. The caller must Reset
// the channel itself separately.
func (c *Controller) Reset(cfg Config, cache CacheHook) {
	if cfg.LatSampleCap == 0 {
		cfg.LatSampleCap = 2048
	}
	c.cfg = cfg
	c.cache = cache
	c.readQ.reset(cfg.ReadQueueDepth)
	c.writeQ.reset(cfg.WriteQueueDepth)
	c.writing = false
	for i := range c.pendingRelocs {
		plans := c.pendingRelocs[i]
		for j, p := range plans {
			c.planPool = append(c.planPool, p)
			plans[j] = nil
		}
		c.pendingRelocs[i] = plans[:0]
	}
	c.relocBanks = 0
	for i := range c.lastColumn {
		c.lastColumn[i] = 0
	}
	c.lastTick = -1
	c.spanHorizon = math.MaxInt64
	c.NumReads, c.NumWrites = 0, 0
	c.CacheHits, c.CacheMisses = 0, 0
	c.ReadLatencySum, c.Inserted, c.QueueFullStalls = 0, 0, 0
	c.MaxReadQ, c.MaxWriteQ = 0, 0
	c.WritingCycles = 0
	c.latSamples.Reset(cfg.LatSampleCap, uint64(c.ID)+1)
}

// AccountSkippedTail credits the write-drain diagnostic for no-op ticks
// between the controller's last tick and the end of the run (bus cycle
// lastBus inclusive). Tick credits skipped ticks lazily on the next
// call, so a run that ends mid-gap must settle the remainder here to
// keep WritingCycles identical to the dense cycle-by-cycle loop.
func (c *Controller) AccountSkippedTail(lastBus int64) {
	if c.writing && c.lastTick >= 0 && lastBus > c.lastTick {
		c.WritingCycles += lastBus - c.lastTick
	}
	c.lastTick = lastBus
}

// CanAccept reports whether a request of the given kind can enter its
// queue this cycle.
func (c *Controller) CanAccept(isWrite bool) bool {
	if isWrite {
		return !c.writeQ.full()
	}
	return !c.readQ.full()
}

// Enqueue adds a request. The caller must have checked CanAccept. The
// controller performs the in-DRAM cache lookup at enqueue time: the tag
// store (FTS) lives in the memory controller and is consulted for every
// memory request (Section 5.1).
func (c *Controller) Enqueue(r *Request, now int64) {
	r.Arrive = now
	r.ServiceLoc = r.Loc
	if c.cache != nil {
		if redirect, hit := c.cache.Lookup(r.Loc, r.IsWrite); hit {
			r.ServiceLoc = redirect
			r.CacheHit = true
			c.CacheHits++
		} else {
			c.CacheMisses++
			if !c.cache.ShouldInsert(r.Loc) {
				r.noInsert = true
			}
		}
	}
	r.bankID = r.ServiceLoc.BankID(c.channel.Geo)
	r.bank = c.channel.BankByID(r.bankID)
	if r.IsWrite {
		c.writeQ.push(r)
	} else {
		c.readQ.push(r)
	}
}

// PendingReads returns the number of queued read requests.
func (c *Controller) PendingReads() int { return c.readQ.size() }

// PendingWrites returns the number of queued write requests.
func (c *Controller) PendingWrites() int { return c.writeQ.size() }

// Tick advances the controller by one bus cycle, issuing at most one
// command. done receives completion callbacks to schedule; the controller
// calls them synchronously at the data-end cycle via the deferred list the
// caller drains.
//
// The return value is the controller's next-work probe: a lower bound on
// the next bus cycle at which the controller could change state, assuming
// no new request is enqueued before then. The run loop may skip all bus
// cycles up to (but not including) that cycle; ticking earlier is always
// safe and behaves exactly like the skipped idle ticks (a no-op).
func (c *Controller) Tick(now int64, schedule func(at int64, tok ev.Token)) int64 {
	// Credit the write-drain diagnostic for ticks the caller skipped: a
	// skipped tick is by contract a no-op, but the dense loop would still
	// have counted it as a write-drain cycle while the mode was active
	// (the mode cannot change during no-op ticks — queue sizes are
	// stable, so the hysteresis is at a fixed point).
	if c.writing && c.lastTick >= 0 && now > c.lastTick+1 {
		c.WritingCycles += now - c.lastTick - 1
	}
	c.lastTick = now

	// Refresh has strict priority once due: the controller stops issuing
	// new work to the rank, precharges its open banks as their timing
	// allows, and issues REF as soon as every bank is closed and the bus
	// timing permits. Without the full stop, normal scheduling would
	// re-activate rows between precharges and the refresh would starve.
	if rank, due := c.channel.RefreshDue(now); due {
		cmd := dram.Command{Type: dram.CmdREF, Loc: dram.Location{Rank: rank}}
		if at, ok := c.channel.CanIssue(&cmd, now); ok {
			if at <= now {
				c.channel.Issue(&cmd, now)
			}
			return now + 1 // all banks closed; wait for REF timing
		}
		c.prechargeForRefresh(rank, now)
		return now + 1 // hold new work until the refresh has issued
	}

	c.noteQueueDepths()
	// Write drain mode hysteresis.
	if c.writing {
		if c.writeQ.size() <= c.cfg.LowWatermark {
			c.writing = false
		}
	} else if c.writeQ.full() || c.writeQ.size() >= c.cfg.HighWatermark {
		c.writing = true
	} else if c.readQ.empty() && c.writeQ.size() > 0 {
		c.writing = true // opportunistic drain when no reads are waiting
	}

	q := c.readQ
	if c.writing {
		c.WritingCycles++
		q = c.writeQ
	}
	if q.empty() {
		// Nothing in the preferred queue; try the other one.
		if c.writing {
			q = c.readQ
		} else {
			q = c.writeQ
		}
	}
	nextAt := int64(math.MaxInt64)
	if !q.empty() {
		issued, qNext := c.schedule(q, now, schedule)
		if issued {
			return now + 1
		}
		nextAt = qNext
	}
	// Nothing issuable this tick: spend it on deferred relocations.
	flushed, relocNext := c.flushIdleRelocs(now)
	if flushed {
		return now + 1
	}
	if relocNext < nextAt {
		nextAt = relocNext
	}
	if t := c.channel.NextRefresh(); t < nextAt {
		nextAt = t
	}
	if nextAt <= now {
		nextAt = now + 1
	}
	return nextAt
}

// TickSpan is the controller's micro-engine: it advances through its own
// due ticks — each Tick's next-work probe feeds the next call — until the
// probe reaches horizon (exclusive, in bus cycles). The caller guarantees
// that nothing outside this controller can interact with it below the
// horizon: no event fires, no core executes, no request is drained into
// any queue, and no other controller becomes due. Under that guarantee
// the span is bit-identical to surfacing every wake to the run loop: the
// skipped cycles are no-op ticks either way, and the executed ticks see
// exactly the dense loop's state.
//
// One interaction the caller cannot see coming is created by the span
// itself: issuing a read schedules its completion, and the event firing
// at that bus cycle can feed this controller a new request in the same
// cycle (the dense loop drains the adapter before ticking controllers).
// issueColumn therefore clamps spanHorizon to each scheduled completion
// cycle, so the span stops short and the run loop resumes interleaving
// from there. The returned next-work probe carries the usual contract.
func (c *Controller) TickSpan(now, horizon int64, schedule func(at int64, tok ev.Token)) int64 {
	c.spanHorizon = horizon
	next := c.Tick(now, schedule)
	for next < c.spanHorizon {
		next = c.Tick(next, schedule)
	}
	c.spanHorizon = math.MaxInt64
	return next
}

// prechargeForRefresh closes one open bank in the rank; returns true if a
// PRE was issued.
func (c *Controller) prechargeForRefresh(rank int, now int64) bool {
	geo := c.channel.Geo
	for g := 0; g < geo.BankGroups; g++ {
		for b := 0; b < geo.BanksPerGroup; b++ {
			loc := dram.Location{Rank: rank, Group: g, Bank: b}
			bank := c.channel.Bank(loc)
			if row, cache := bank.Open(); row != -1 {
				loc.Row, loc.CacheRow = row, cache
				cmd := dram.Command{Type: dram.CmdPRE, Loc: loc}
				if at, ok := c.channel.CanIssue(&cmd, now); ok && at <= now {
					if c.flushRelocs(loc.BankID(geo), now, true) {
						return true
					}
					c.channel.Issue(&cmd, now)
					return true
				}
			}
		}
	}
	return false
}

// flushRelocs performs the deferred relocation work for a bank, occupying
// it for the combined cost and leaving it precharged. rowOpen indicates
// that the source rows' data is still reachable via the open-row path; if
// the bank was already closed (e.g. the row was precharged by refresh
// before the flush), each plan pays an extra ACTIVATE to reopen its source
// row. Returns false when the bank has no pending work.
func (c *Controller) flushRelocs(bankID int, now int64, rowOpen bool) bool {
	plans := c.pendingRelocs[bankID]
	if len(plans) == 0 {
		return false
	}
	// Keep the backing array: the bank will accumulate plans again, and
	// regrowing the slice every flush is a steady-state allocation.
	c.pendingRelocs[bankID] = plans[:0]
	c.relocBanks--
	var cost int64
	blocks, hops := 0, 0
	isLISA, channelWide := false, false
	for _, p := range plans {
		cost += p.Cost
		if !rowOpen {
			cost += int64(c.channel.Slow.RCD)
		}
		blocks += p.Blocks
		hops += p.Hops
		isLISA = isLISA || p.IsLISA
		channelWide = channelWide || p.ChannelWide
		c.cache.Commit(p)
	}
	if channelWide {
		c.channel.RelocateAll(plans[0].Loc, now, cost, blocks)
	} else {
		c.channel.Relocate(plans[0].Loc, now, cost, blocks, isLISA, hops)
	}
	for i, p := range plans {
		c.planPool = append(c.planPool, p)
		plans[i] = nil
	}
	return true
}

// takePlan returns a recycled RelocPlan from the pool, or a fresh one
// when the pool is empty. Callers fully overwrite the plan.
func (c *Controller) takePlan() *RelocPlan {
	if n := len(c.planPool); n > 0 {
		p := c.planPool[n-1]
		c.planPool = c.planPool[:n-1]
		return p
	}
	return new(RelocPlan)
}

// relocFlushReady returns the earliest bus cycle at which the bank's
// deferred relocation work may be flushed: the quiet window after its
// last column access must have elapsed (IdleFlushAfter), and the bank
// must be able to precharge (row open, tRAS met) or activate (row
// closed). math.MaxInt64 when the bank has no pending work. Both the
// idle flush and the next-work probe derive from this single predicate,
// so the cycle-skipping engine can never wake later than a flush.
func (c *Controller) relocFlushReady(bankID int, now int64) int64 {
	plans := c.pendingRelocs[bankID]
	if len(plans) == 0 {
		return math.MaxInt64
	}
	bank := c.channel.Bank(plans[0].Loc)
	var ready int64
	if row, _ := bank.Open(); row != -1 {
		ready, _ = bank.CanPRE(now) // a bank with an open row can always PRE eventually
	} else {
		ready, _ = bank.CanACT(now) // a closed bank can always ACT eventually
	}
	if quiet := c.lastColumn[bankID] + c.cfg.IdleFlushAfter; quiet > ready {
		ready = quiet
	}
	return ready
}

// flushIdleRelocs spends an otherwise idle tick performing deferred
// relocation work on a bank that no queued request needs right now and
// that has been quiet for at least IdleFlushAfter cycles. Banks are
// visited in ascending ID order so that runs are deterministic when
// several banks are eligible on the same tick. When nothing is flushed,
// nextAt is the earliest bus cycle a flush could happen (math.MaxInt64
// if no work is pending), so the caller gets the next-work probe from
// the same single scan.
func (c *Controller) flushIdleRelocs(now int64) (flushed bool, nextAt int64) {
	nextAt = math.MaxInt64
	if c.relocBanks == 0 {
		return false, nextAt
	}
	for bankID := range c.pendingRelocs {
		ready := c.relocFlushReady(bankID, now)
		if ready > now {
			if ready < nextAt {
				nextAt = ready
			}
			continue
		}
		row, _ := c.channel.Bank(c.pendingRelocs[bankID][0].Loc).Open()
		c.flushRelocs(bankID, now, row != -1)
		return true, now + 1
	}
	return false, nextAt
}

// colCand is one bank's pass-1 column candidate: the bank's oldest
// request matching its open row, and that request's bucket index.
type colCand struct {
	r   *Request
	idx int
}

// schedule implements FR-FCFS over queue q: first any request whose column
// command is ready on an open row (oldest first), then the oldest request,
// for which it issues the next command of the ACT/PRE sequence.
//
// Both passes run over the queue's per-bank buckets, so the work per tick
// is bounded by the number of banks with queued work, not the queue depth
// (the lever behind deep write-queue drains). The bucket walk is exactly
// equivalent to the former whole-queue age-order scan:
//
//   - Pass 1: only a bank with an open row can serve a column command,
//     and within one bank every request matching the open row builds the
//     identical command (same rank/group/bank/row, same type — the queue
//     is all-reads or all-writes), so they share one CanIssue answer.
//     The oldest match per open bank therefore stands in for all of
//     them, and trying those candidates oldest-first until one is
//     issuable reproduces the age-order scan's choice (and its CanIssue
//     call order, minus same-bank duplicates). Arbitration is
//     incremental: occupied is head-age ordered, and every candidate a
//     later bank can contribute is younger than that bank's head, so a
//     pending candidate older than the current bank's head is final —
//     it is tried (and usually issues) without visiting the remaining
//     banks, preserving the age scan's early exit.
//
//   - Pass 2 only ever acted on the oldest request per bank (younger
//     requests to a claimed bank were skipped: they must not precharge a
//     row an older request is still waiting on). The bucket heads are
//     those oldest-per-bank requests, and occupied's head-age order is
//     the order the old scan claimed banks in, so a direct front-to-back
//     iteration visits them identically.
//
// When nothing is issuable this tick, nextAt is the earliest bus cycle at
// which any considered command becomes issuable. The DRAM timing windows
// only move when a command issues, so nextAt stays valid until the next
// enqueue — the run loop can skip the idle ticks in between.
func (c *Controller) schedule(q *queue, now int64, schedule func(at int64, tok ev.Token)) (issued bool, nextAt int64) {
	nextAt = math.MaxInt64
	// Pass 1: row hits — column command ready now. Closed banks are
	// skipped whole; an open bank's bucket is scanned only up to its
	// oldest request matching the open row.
	cands := c.cands[:0]
	ci := 0 // arbitration cursor: cands[ci:] are pending, seq-ordered
	tryCand := func(cc colCand) bool {
		if at, ok := c.channel.CanColumn(cc.r.bank, &cc.r.ServiceLoc, cc.r.IsWrite, now); ok {
			if at <= now {
				c.issueColumn(q, cc.idx, cc.r, now, schedule)
				return true
			}
			if at < nextAt {
				nextAt = at
			}
		}
		return false
	}
	for k, h := range q.heads {
		// Pending candidates older than this bank's head cannot be
		// displaced by this or any later bank: arbitrate them now.
		for ci < len(cands) && cands[ci].r.seq < h.seq {
			cc := cands[ci]
			ci++
			if tryCand(cc) {
				return true, now + 1
			}
		}
		var cand colCand
		if h.bank.IsOpen(h.ServiceLoc.CacheRow, h.ServiceLoc.Row) {
			cand = colCand{h, 0}
		} else {
			row, cacheRow := h.bank.Open()
			if row == -1 {
				continue
			}
			// Head misses the open row; find the bank's oldest match.
			bucket := q.byBank[q.occupied[k]]
			for i := 1; i < len(bucket); i++ {
				if r := bucket[i]; r.ServiceLoc.Row == row && r.ServiceLoc.CacheRow == cacheRow {
					cand = colCand{r, i}
					break
				}
			}
			if cand.r == nil {
				continue
			}
		}
		// Keep the pending window seq-ordered; candidates arrive nearly
		// ordered (head order), so the bubble is rare.
		cands = append(cands, cand)
		for j := len(cands) - 1; j > ci && cands[j-1].r.seq > cands[j].r.seq; j-- {
			cands[j-1], cands[j] = cands[j], cands[j-1]
		}
	}
	for ; ci < len(cands); ci++ {
		if tryCand(cands[ci]) {
			return true, now + 1
		}
	}
	// Pass 2: oldest request first, issue ACT or PRE as needed. Each bank
	// belongs to the oldest request targeting it — its bucket head;
	// heads is already in age order.
	for _, r := range q.heads {
		bank := r.bank
		row, cacheRow := bank.Open()
		if row == r.ServiceLoc.Row && cacheRow == r.ServiceLoc.CacheRow {
			continue // waiting on tRCD; pass 1 covers its column command
		}
		if row != -1 {
			// Conflict: precharge the open row, folding in any pending
			// relocation work for the bank (the RELOC burst ends with the
			// precharge the row needed anyway). The readiness probe is
			// CanIssue's CmdPRE arm verbatim; the command itself is only
			// built on the rare tick that actually issues it.
			if at, ok := bank.CanPRE(now); ok {
				if at <= now {
					bank.RowConflict++
					if c.flushRelocs(r.bankID, now, true) {
						return true, now + 1
					}
					pre := dram.Command{Type: dram.CmdPRE,
						Loc: dram.Location{Rank: r.ServiceLoc.Rank, Group: r.ServiceLoc.Group,
							Bank: r.ServiceLoc.Bank, Row: row, CacheRow: cacheRow}}
					c.channel.Issue(&pre, now)
					return true, now + 1
				}
				if at < nextAt {
					nextAt = at
				}
			}
			continue
		}
		if at, ok := c.channel.CanACTAt(bank, r.ServiceLoc.Rank, now); ok {
			if at <= now {
				bank.RowMisses++
				act := dram.Command{Type: dram.CmdACT, Loc: r.ServiceLoc}
				c.channel.Issue(&act, now)
				return true, now + 1
			}
			if at < nextAt {
				nextAt = at
			}
		}
	}
	return false, nextAt
}

func (c *Controller) columnCmd(r *Request) dram.Command {
	t := dram.CmdRD
	if r.IsWrite {
		t = dram.CmdWR
	}
	return dram.Command{Type: t, Loc: r.ServiceLoc}
}

// issueColumn issues the RD/WR for the i-th request of its bank's bucket,
// retires the request, and triggers cache insertion for read misses (the
// relocation runs while the just-accessed source row is still open).
func (c *Controller) issueColumn(q *queue, i int, r *Request, now int64, schedule func(at int64, tok ev.Token)) {
	r.bank.RowHits++
	c.lastColumn[r.bankID] = now
	cmd := c.columnCmd(r)
	end := c.channel.Issue(&cmd, now)
	if r.IsWrite {
		c.NumWrites++
	} else {
		c.NumReads++
		c.ReadLatencySum += end - r.Arrive
		c.latSamples.Add(end - r.Arrive)
	}
	if !r.OnComplete.IsZero() {
		schedule(end, r.OnComplete)
		// The completion's event can hand the controller a new request at
		// bus cycle `end`; a TickSpan in progress must not tick past it.
		if end < c.spanHorizon {
			c.spanHorizon = end
		}
	}
	q.remove(r.bankID, i)

	// Cache insertion on miss: the source row is open in its local row
	// buffer, so the relocation skips the first ACTIVATE (Section 8.1).
	// The relocation work is deferred until the row is about to close so
	// it does not steal row hits from queued requests. A zero-cost plan
	// (the FIGCache-Ideal configuration) updates metadata only.
	if c.cache != nil && !r.CacheHit && !r.noInsert && !r.ServiceLoc.CacheRow {
		if plan := c.cache.Insert(c.channel, r.Loc, now); plan != nil {
			// The hook's plan is scratch, valid only until its next
			// Insert; keep a pooled copy (see CacheHook.Insert).
			p := c.takePlan()
			*p = *plan
			id := p.Loc.BankID(c.channel.Geo)
			if len(c.pendingRelocs[id]) == 0 {
				c.relocBanks++
			}
			c.pendingRelocs[id] = append(c.pendingRelocs[id], p)
			c.Inserted++
			if c.cfg.ImmediateReloc {
				c.flushRelocs(id, now, true)
			}
		}
	}
	if c.Release != nil {
		c.Release(r)
	}
}

// AvgReadLatencyNS returns the mean read latency (arrival to last data
// beat) in nanoseconds.
func (c *Controller) AvgReadLatencyNS() float64 {
	if c.NumReads == 0 {
		return 0
	}
	return c.channel.Slow.NS(c.ReadLatencySum) / float64(c.NumReads)
}

// LatencySamples returns the controller's bounded reservoir of per-read
// latency samples (bus cycles): a uniform, deterministic sample of every
// read the controller served. The slice aliases internal storage.
func (c *Controller) LatencySamples() []int64 { return c.latSamples.Samples() }

// ReadLatencyPercentilesNS returns the requested read-latency
// percentiles (each in [0,1]) in nanoseconds, estimated from the sample
// reservoir. The mean alone hides the tail that queueing and refresh
// interference produce; the reservoir keeps the tail visible at O(1)
// memory. Returns nil when no reads were sampled.
func (c *Controller) ReadLatencyPercentilesNS(ps ...float64) []float64 {
	vals := stats.WeightedPercentiles([][]int64{c.latSamples.Samples()}, []int64{c.NumReads}, ps)
	if vals == nil {
		return nil
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = c.channel.Slow.NS(v)
	}
	return out
}

// CacheHitRate returns the in-DRAM cache hit rate observed by this
// controller, or 0 when no cache is configured.
func (c *Controller) CacheHitRate() float64 {
	total := c.CacheHits + c.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(c.CacheHits) / float64(total)
}

// Debug instrumentation (kept cheap; used by calibration tests and the
// figbench harness to explain latency composition).
func (c *Controller) noteQueueDepths() {
	if n := c.readQ.size(); n > c.MaxReadQ {
		c.MaxReadQ = n
	}
	if n := c.writeQ.size(); n > c.MaxWriteQ {
		c.MaxWriteQ = n
	}
}
