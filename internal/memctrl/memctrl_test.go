package memctrl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/ev"
)

// testCtrl wraps a Controller with a token-to-closure registry: tests
// register a completion closure with on and pass the returned token as
// Request.OnComplete; runUntil dispatches fired tokens back through it.
type testCtrl struct {
	*Controller
	fns []func(int64)
}

func (c *testCtrl) on(fn func(int64)) ev.Token {
	c.fns = append(c.fns, fn)
	return ev.Token{Kind: ev.CoreSlot, Arg: uint64(len(c.fns) - 1)}
}

func (c *testCtrl) dispatch(tok ev.Token, now int64) {
	if tok.Kind == ev.CoreSlot {
		c.fns[tok.Arg](now)
	}
}

func newTestController(t *testing.T, hook CacheHook) *testCtrl {
	t.Helper()
	geo := dram.Default()
	slow := dram.DDR4()
	ch, err := dram.NewChannel(geo, slow, slow.Fast(dram.PaperFastScale()), false)
	if err != nil {
		t.Fatal(err)
	}
	return &testCtrl{Controller: NewController(0, DefaultConfig(), ch, hook)}
}

// runUntil ticks the controller until pred returns true or the cycle limit
// is reached, dispatching scheduled tokens at their due cycle.
func runUntil(c *testCtrl, limit int64, pred func() bool) int64 {
	type pendingTok struct {
		at  int64
		tok ev.Token
	}
	var pending []pendingTok
	for now := int64(0); now < limit; now++ {
		for i := 0; i < len(pending); {
			if pending[i].at <= now {
				tok := pending[i].tok
				pending = append(pending[:i], pending[i+1:]...)
				c.dispatch(tok, now)
			} else {
				i++
			}
		}
		if pred() {
			return now
		}
		c.Tick(now, func(at int64, tok ev.Token) {
			pending = append(pending, pendingTok{at, tok})
		})
	}
	return limit
}

func TestAddrMapperBijection(t *testing.T) {
	for _, channels := range []int{1, 4} {
		m, err := NewAddrMapper(dram.Default(), channels)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 2000; i++ {
			addr := (rng.Uint64() % uint64(m.TotalBytes())) &^ uint64(m.geo.BlockBytes-1)
			ch, loc := m.Decode(addr)
			if got := m.Encode(ch, loc); got != addr {
				t.Fatalf("channels=%d: Encode(Decode(%#x)) = %#x", channels, addr, got)
			}
			if ch < 0 || ch >= channels {
				t.Fatalf("channel %d out of range", ch)
			}
		}
	}
}

func TestAddrMapperInterleaving(t *testing.T) {
	// {row, rank, bankgroup, bank, channel, column}: consecutive blocks
	// within a row map to the same bank/channel until the column bits
	// roll over; then the channel changes.
	m, err := NewAddrMapper(dram.Default(), 4)
	if err != nil {
		t.Fatal(err)
	}
	blk := uint64(m.geo.BlockBytes)
	ch0, loc0 := m.Decode(0)
	ch1, loc1 := m.Decode(blk)
	if ch0 != ch1 || !loc0.SameBank(loc1) || loc1.Block != loc0.Block+1 {
		t.Errorf("consecutive blocks: (%d,%v) then (%d,%v)", ch0, loc0, ch1, loc1)
	}
	// Crossing the row's worth of blocks switches channel first.
	rowBytes := uint64(m.geo.RowBytes)
	chN, _ := m.Decode(rowBytes)
	if chN == ch0 {
		t.Errorf("row-size stride stayed on channel %d; want channel interleave", chN)
	}
}

func TestAddrMapperRejectsNonPow2(t *testing.T) {
	geo := dram.Default()
	geo.BankGroups = 3
	if _, err := NewAddrMapper(geo, 1); err == nil {
		t.Error("accepted non-power-of-two bank groups")
	}
	if _, err := NewAddrMapper(dram.Default(), 0); err == nil {
		t.Error("accepted zero channels")
	}
}

func TestReadRequestCompletes(t *testing.T) {
	c := newTestController(t, nil)
	done := false
	var doneAt int64
	r := &Request{Loc: dram.Location{Row: 42, Block: 5},
		OnComplete: c.on(func(at int64) { done = true; doneAt = at })}
	c.Enqueue(r, 0)
	end := runUntil(c, 200, func() bool { return done })
	if !done {
		t.Fatal("read did not complete within 200 cycles")
	}
	tm := c.Channel().Slow
	// Minimum latency: tRCD + tCL + tBL.
	if min := int64(tm.RCD + tm.CL + tm.BL); doneAt < min {
		t.Errorf("read completed at %d, faster than minimum %d", doneAt, min)
	}
	_ = end
	if c.NumReads != 1 {
		t.Errorf("NumReads = %d, want 1", c.NumReads)
	}
}

func TestRowHitSecondRead(t *testing.T) {
	c := newTestController(t, nil)
	var completions int
	mk := func(block int) *Request {
		return &Request{Loc: dram.Location{Row: 42, Block: block},
			OnComplete: c.on(func(int64) { completions++ })}
	}
	c.Enqueue(mk(0), 0)
	c.Enqueue(mk(1), 0)
	runUntil(c, 300, func() bool { return completions == 2 })
	if completions != 2 {
		t.Fatal("both reads should complete")
	}
	s := c.Channel().CollectStats()
	if s.ACT != 1 {
		t.Errorf("ACT count = %d, want 1 (second read is a row hit)", s.ACT)
	}
	if s.RowHits != 2 {
		t.Errorf("RowHits = %d, want 2 column accesses on the open row", s.RowHits)
	}
}

func TestRowConflictPrecharges(t *testing.T) {
	c := newTestController(t, nil)
	var completions int
	on := c.on(func(int64) { completions++ })
	c.Enqueue(&Request{Loc: dram.Location{Row: 1}, OnComplete: on}, 0)
	c.Enqueue(&Request{Loc: dram.Location{Row: 2}, OnComplete: on}, 0)
	runUntil(c, 500, func() bool { return completions == 2 })
	if completions != 2 {
		t.Fatal("both reads should complete")
	}
	s := c.Channel().CollectStats()
	if s.ACT != 2 || s.PRE < 1 {
		t.Errorf("stats %+v: want 2 ACT and at least 1 PRE", s)
	}
	if s.RowConf != 1 {
		t.Errorf("RowConf = %d, want 1", s.RowConf)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	c := newTestController(t, nil)
	order := make([]int, 0, 3)
	mk := func(id, row, block int) *Request {
		return &Request{Loc: dram.Location{Row: row, Block: block},
			OnComplete: c.on(func(int64) { order = append(order, id) })}
	}
	// Open row 1 via request 0; then a conflicting request to row 9
	// arrives before another hit to row 1. FR-FCFS must serve the row hit
	// (request 2) before the older conflicting request 1.
	c.Enqueue(mk(0, 1, 0), 0)
	runUntil(c, 100, func() bool { return len(order) == 1 })
	c.Enqueue(mk(1, 9, 0), 40)
	c.Enqueue(mk(2, 1, 1), 41)
	runUntil(c, 600, func() bool { return len(order) == 3 })
	if len(order) != 3 || order[1] != 2 || order[2] != 1 {
		t.Errorf("completion order = %v, want [0 2 1] (row hit first)", order)
	}
}

func TestWriteDrainHysteresis(t *testing.T) {
	c := newTestController(t, nil)
	// Fill the write queue past the high watermark; the controller must
	// drain it below the low watermark even while reads keep arriving.
	for i := 0; i < c.cfg.HighWatermark+1; i++ {
		c.Enqueue(&Request{Loc: dram.Location{Row: i % 4, Block: i % 128}, IsWrite: true}, 0)
	}
	runUntil(c, 5000, func() bool { return c.PendingWrites() <= c.cfg.LowWatermark })
	if c.PendingWrites() > c.cfg.LowWatermark {
		t.Errorf("write queue not drained: %d pending", c.PendingWrites())
	}
	if c.NumWrites == 0 {
		t.Error("no writes issued")
	}
}

func TestOpportunisticWriteDrain(t *testing.T) {
	c := newTestController(t, nil)
	c.Enqueue(&Request{Loc: dram.Location{Row: 3}, IsWrite: true}, 0)
	runUntil(c, 1000, func() bool { return c.PendingWrites() == 0 })
	if c.PendingWrites() != 0 {
		t.Error("single write never drained with an empty read queue")
	}
}

func TestQueueCapacity(t *testing.T) {
	c := newTestController(t, nil)
	for i := 0; i < c.cfg.ReadQueueDepth; i++ {
		if !c.CanAccept(false) {
			t.Fatalf("queue refused request %d of %d", i, c.cfg.ReadQueueDepth)
		}
		c.Enqueue(&Request{Loc: dram.Location{Row: i}}, 0)
	}
	if c.CanAccept(false) {
		t.Error("queue accepted request beyond capacity")
	}
	if !c.CanAccept(true) {
		t.Error("write queue should still accept")
	}
}

func TestRefreshEventuallyIssues(t *testing.T) {
	c := newTestController(t, nil)
	// Keep a stream of reads flowing across several tREFI periods and
	// verify refreshes still happen.
	var served int64
	row := 0
	limit := int64(c.Channel().Slow.REFI) * 3
	for now := int64(0); now < limit; now++ {
		if c.CanAccept(false) && now%50 == 0 {
			row++
			c.Enqueue(&Request{Loc: dram.Location{Row: row % 1000},
				OnComplete: c.on(func(int64) { served++ })}, now)
		}
		c.Tick(now, func(at int64, tok ev.Token) {})
	}
	if c.Channel().NumREF < 2 {
		t.Errorf("NumREF = %d over 3 tREFI, want >= 2", c.Channel().NumREF)
	}
}

// fakeCache is a deterministic CacheHook for controller-integration tests.
type fakeCache struct {
	cached    map[uint64]dram.Location
	insertAll bool
	inserted  int
	lookups   int
	relocCost int64
	relocLoc  dram.Location
	blocks    int
}

func key(loc dram.Location) uint64 {
	return uint64(loc.BankID(dram.Default()))<<40 | uint64(loc.Row)<<8 | uint64(loc.Block/16)
}

func (f *fakeCache) Lookup(loc dram.Location, isWrite bool) (dram.Location, bool) {
	f.lookups++
	redirect, ok := f.cached[key(loc)]
	if ok {
		redirect.Block = loc.Block % 16
	}
	return redirect, ok
}

func (f *fakeCache) ShouldInsert(loc dram.Location) bool { return f.insertAll }

func (f *fakeCache) Insert(ch *dram.Channel, loc dram.Location, now int64) *RelocPlan {
	f.inserted++
	redirect := dram.Location{Rank: loc.Rank, Group: loc.Group, Bank: loc.Bank, Row: 0, CacheRow: true}
	f.cached[key(loc)] = redirect
	return &RelocPlan{Loc: loc, Cost: f.relocCost, Blocks: f.blocks}
}

func (f *fakeCache) Commit(p *RelocPlan) {}

func TestCacheHookHitRedirects(t *testing.T) {
	fc := &fakeCache{cached: map[uint64]dram.Location{}, insertAll: true, relocCost: 30, blocks: 16}
	c := newTestController(t, fc)
	var completions int
	on := c.on(func(int64) { completions++ })

	// First access: miss, triggers insertion.
	c.Enqueue(&Request{Loc: dram.Location{Row: 7, Block: 3}, OnComplete: on}, 0)
	runUntil(c, 400, func() bool { return completions == 1 })
	if fc.inserted != 1 || c.Inserted != 1 {
		t.Fatalf("inserted = %d/%d, want 1/1", fc.inserted, c.Inserted)
	}
	if c.CacheMisses != 1 {
		t.Fatalf("CacheMisses = %d, want 1", c.CacheMisses)
	}

	// Second access to the same segment: must hit and be served from the
	// cache row.
	c.Enqueue(&Request{Loc: dram.Location{Row: 7, Block: 4}, OnComplete: on}, 500)
	runUntil(c, 1500, func() bool { return completions == 2 })
	if c.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", c.CacheHits)
	}
	if fc.inserted != 1 {
		t.Errorf("hit triggered another insertion: %d", fc.inserted)
	}
}

func TestCacheInsertOccupiesBank(t *testing.T) {
	fc := &fakeCache{cached: map[uint64]dram.Location{}, insertAll: true, relocCost: 100, blocks: 16}
	c := newTestController(t, fc)
	var first, second int64
	c.Enqueue(&Request{Loc: dram.Location{Row: 7}, OnComplete: c.on(func(at int64) { first = at })}, 0)
	runUntil(c, 400, func() bool { return first != 0 })
	// A conflicting request right after insertion must wait out the
	// relocation occupancy.
	c.Enqueue(&Request{Loc: dram.Location{Row: 8}, OnComplete: c.on(func(at int64) { second = at })}, first)
	runUntil(c, 2000, func() bool { return second != 0 })
	// The second insertion is deferred; idle ticks must flush it.
	runUntil(c, 4000, func() bool { return c.Channel().CollectStats().RELOC >= 32 })
	s := c.Channel().CollectStats()
	if s.RELOC != 32 { // both misses insert a 16-block segment
		t.Errorf("RELOC blocks = %d, want 32", s.RELOC)
	}
	tm := c.Channel().Slow
	// second must be at least relocCost after the first column access.
	if second-first < 100-int64(tm.CL+tm.BL) {
		t.Errorf("conflicting read finished at %d, only %d after first; relocation not enforced",
			second, second-first)
	}
}

func TestNoInsertWhenPolicyDeclines(t *testing.T) {
	fc := &fakeCache{cached: map[uint64]dram.Location{}, insertAll: false}
	c := newTestController(t, fc)
	done := false
	c.Enqueue(&Request{Loc: dram.Location{Row: 7}, OnComplete: c.on(func(int64) { done = true })}, 0)
	runUntil(c, 400, func() bool { return done })
	if fc.inserted != 0 {
		t.Errorf("inserted %d despite policy declining", fc.inserted)
	}
}

func TestWritesDoNotTriggerInsertDuringService(t *testing.T) {
	// Writes are drained lazily; insertion is still allowed for them per
	// insert-any-miss, but the fake declines everything so the write path
	// must not call Insert.
	fc := &fakeCache{cached: map[uint64]dram.Location{}, insertAll: false}
	c := newTestController(t, fc)
	c.Enqueue(&Request{Loc: dram.Location{Row: 7}, IsWrite: true}, 0)
	runUntil(c, 1000, func() bool { return c.PendingWrites() == 0 })
	if fc.inserted != 0 {
		t.Errorf("write path inserted %d", fc.inserted)
	}
}

// Property: every enqueued read eventually completes, in bounded time,
// regardless of the address mix.
func TestPropertyAllReadsComplete(t *testing.T) {
	f := func(rows []uint16) bool {
		if len(rows) > 32 {
			rows = rows[:32]
		}
		c := newTestController(t, nil)
		want := 0
		got := 0
		for now := int64(0); now < 100000; now++ {
			if want < len(rows) && c.CanAccept(false) {
				c.Enqueue(&Request{
					Loc:        dram.Location{Row: int(rows[want]) % 32768, Block: int(rows[want]) % 128},
					OnComplete: c.on(func(int64) { got++ }),
				}, now)
				want++
			}
			c.Tick(now, func(at int64, tok ev.Token) {
				// Completion tokens only mutate counters; dispatch late.
				defer c.dispatch(tok, at)
			})
			if want == len(rows) && got == want {
				return true
			}
		}
		return len(rows) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQueueHeadIndexInvariants pins the queue's incrementally maintained
// oldest-per-bank index (the structure that bounds FR-FCFS scans by bank
// count instead of queue depth): after any sequence of pushes and
// removals, occupied must list exactly the non-empty banks in strictly
// ascending head-age order, heads must mirror their bucket heads, and pos
// must invert occupied.
func TestQueueHeadIndexInvariants(t *testing.T) {
	const banks = 8
	q := newQueue(64, banks)
	rng := rand.New(rand.NewSource(11))
	check := func(step int) {
		t.Helper()
		total := 0
		for b := 0; b < banks; b++ {
			n := len(q.byBank[b])
			total += n
			if n == 0 {
				if q.pos[b] != -1 {
					t.Fatalf("step %d: empty bank %d has pos %d", step, b, q.pos[b])
				}
				continue
			}
			idx := q.pos[b]
			if idx < 0 || idx >= len(q.occupied) || q.occupied[idx] != b {
				t.Fatalf("step %d: bank %d pos %d does not invert occupied %v", step, b, idx, q.occupied)
			}
			if q.heads[idx] != q.byBank[b][0] {
				t.Fatalf("step %d: heads[%d] is not bank %d's bucket head", step, idx, b)
			}
			for i := 1; i < n; i++ {
				if q.byBank[b][i-1].seq >= q.byBank[b][i].seq {
					t.Fatalf("step %d: bank %d bucket not age-ordered", step, b)
				}
			}
		}
		if total != q.count {
			t.Fatalf("step %d: count %d, buckets hold %d", step, q.count, total)
		}
		if len(q.occupied) != len(q.heads) {
			t.Fatalf("step %d: occupied/heads length mismatch", step)
		}
		for i := 1; i < len(q.heads); i++ {
			if q.heads[i-1].seq >= q.heads[i].seq {
				t.Fatalf("step %d: occupied not in head-age order: %v", step, q.occupied)
			}
		}
	}
	for step := 0; step < 4000; step++ {
		if q.count == 0 || (!q.full() && rng.Intn(2) == 0) {
			r := &Request{bankID: rng.Intn(banks)}
			q.push(r)
		} else {
			b := q.occupied[rng.Intn(len(q.occupied))]
			q.remove(b, rng.Intn(len(q.byBank[b])))
		}
		check(step)
	}
	q.reset(64)
	check(-1)
	if q.count != 0 || len(q.occupied) != 0 || len(q.heads) != 0 {
		t.Fatal("reset left queue state behind")
	}
}

// TestWriteDrainFRFCFSOrder pins the drain scheduling order across banks:
// with symmetric writes queued to two closed banks, the controller must
// serve the oldest request's bank first, and a same-bank row hit must not
// overtake an older request to another open bank (FR-FCFS arbitration is
// by request age among issuable candidates).
func TestWriteDrainFRFCFSOrder(t *testing.T) {
	c := newTestController(t, nil)
	var order []int
	mk := func(id, bank, row, block int) *Request {
		return &Request{IsWrite: true,
			Loc:        dram.Location{Bank: bank, Row: row, Block: block},
			OnComplete: c.on(func(int64) { order = append(order, id) })}
	}
	// W0 -> bank0/row1, W1 -> bank1/row1, W2 -> bank0/row1 (row hit once
	// bank0 is open). Oldest-first: W0, then W1 (older than the bank0 row
	// hit W2), then W2.
	c.Enqueue(mk(0, 0, 1, 0), 0)
	c.Enqueue(mk(1, 1, 1, 0), 0)
	c.Enqueue(mk(2, 0, 1, 1), 0)
	runUntil(c, 2000, func() bool { return len(order) == 3 })
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("drain order = %v, want [0 1 2] (oldest issuable first)", order)
	}
}

// TestReadLatencyPercentiles drives reads through a controller and checks
// the reservoir-backed percentile accessor: samples are recorded, the
// percentiles are ordered, and they bracket the mean.
func TestReadLatencyPercentiles(t *testing.T) {
	c := newTestController(t, nil)
	done := 0
	for i := 0; i < 32; i++ {
		r := &Request{Loc: dram.Location{Row: i * 7, Block: i % 16},
			OnComplete: c.on(func(int64) { done++ })}
		c.Enqueue(r, 0)
	}
	runUntil(c, 100_000, func() bool { return done == 32 })
	if done != 32 {
		t.Fatalf("only %d/32 reads completed", done)
	}
	if n := len(c.LatencySamples()); n != 32 {
		t.Fatalf("reservoir holds %d samples, want 32 (below capacity keeps all)", n)
	}
	ps := c.ReadLatencyPercentilesNS(0.50, 0.90, 0.99)
	if ps == nil {
		t.Fatal("no percentiles despite completed reads")
	}
	if !(ps[0] <= ps[1] && ps[1] <= ps[2]) {
		t.Errorf("percentiles not monotonic: %v", ps)
	}
	mean := c.AvgReadLatencyNS()
	if ps[0] <= 0 || ps[2] < mean*0.5 {
		t.Errorf("implausible percentiles %v for mean %.1f ns", ps, mean)
	}
}
