package memctrl

import "repro/internal/dram"

// Request is one cache-block memory request queued at a channel's memory
// controller.
type Request struct {
	Addr    uint64        // physical byte address (block aligned)
	Loc     dram.Location // decoded location in the channel
	IsWrite bool
	Arrive  int64 // bus cycle the request entered the queue
	CoreID  int   // originating core, for per-core statistics

	// OnComplete, if non-nil, fires once the request's data transfer has
	// finished (reads: last beat received; writes: retired from the write
	// queue). The argument is the completion bus cycle.
	OnComplete func(at int64)

	// ServiceLoc is where the request is actually served: either Loc, or
	// the in-DRAM cache location the cache hook redirected it to.
	ServiceLoc dram.Location
	// CacheHit marks requests served from the in-DRAM cache.
	CacheHit bool
	// noInsert suppresses cache insertion for this request (set by the
	// cache hook when the insertion policy declines the segment).
	noInsert bool

	// bank and bankID cache the ServiceLoc's bank resolution at enqueue
	// time: the FR-FCFS scheduler consults them for every queued request
	// on every tick, and the dense-index multiply chain adds up.
	bank   *dram.Bank
	bankID int
}

// queue is a FIFO of requests with a fixed capacity.
type queue struct {
	items []*Request
	cap   int
}

func newQueue(capacity int) *queue { return &queue{cap: capacity} }

func (q *queue) full() bool      { return len(q.items) >= q.cap }
func (q *queue) empty() bool     { return len(q.items) == 0 }
func (q *queue) size() int       { return len(q.items) }
func (q *queue) capacity() int   { return q.cap }
func (q *queue) push(r *Request) { q.items = append(q.items, r) }

// reset drops every queued request (releasing the pointers for GC) and
// applies a new capacity, returning the queue to its constructed state.
func (q *queue) reset(capacity int) {
	for i := range q.items {
		q.items[i] = nil
	}
	q.items = q.items[:0]
	q.cap = capacity
}

// remove deletes the request at index i, preserving arrival order.
func (q *queue) remove(i int) {
	copy(q.items[i:], q.items[i+1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
}
