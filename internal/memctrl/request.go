package memctrl

import (
	"repro/internal/arena"
	"repro/internal/dram"
	"repro/internal/ev"
)

// Request is one cache-block memory request queued at a channel's memory
// controller.
type Request struct {
	Addr    uint64        // physical byte address (block aligned)
	Loc     dram.Location // decoded location in the channel
	IsWrite bool
	Arrive  int64 // bus cycle the request entered the queue
	CoreID  int   // originating core, for per-core statistics

	// OnComplete, unless zero, is the event token the controller hands to
	// its scheduler once the request's data transfer has finished (reads:
	// last beat received; writes: retired from the write queue), stamped
	// with the completion bus cycle.
	OnComplete ev.Token

	// ServiceLoc is where the request is actually served: either Loc, or
	// the in-DRAM cache location the cache hook redirected it to.
	ServiceLoc dram.Location
	// CacheHit marks requests served from the in-DRAM cache.
	CacheHit bool
	// noInsert suppresses cache insertion for this request (set by the
	// cache hook when the insertion policy declines the segment).
	noInsert bool

	// bank and bankID cache the ServiceLoc's bank resolution at enqueue
	// time: the FR-FCFS scheduler consults them for every queued request
	// on every tick, and the dense-index multiply chain adds up.
	bank   *dram.Bank
	bankID int
	// seq is the request's queue push sequence number: a strictly
	// increasing per-queue stamp that totally orders queued requests by
	// age. The per-bank buckets keep only bank-local order; FR-FCFS
	// arbitration across banks compares seq.
	seq int64
}

// queue holds the pending requests of one kind (read or write) bucketed
// by dense bank ID, each bucket in arrival order. FR-FCFS consults the
// queue per bank — "which bank has work, and what is the oldest request
// for it" — so bucketing bounds every scheduling scan by the bank count
// (16) instead of the queue depth (64): a deep write queue being drained
// no longer pays a whole-queue rescan per issued command. Global age
// order across buckets is recovered from Request.seq.
type queue struct {
	byBank [][]*Request
	// occupied lists the bank IDs with a non-empty bucket, ordered by
	// the age (push sequence) of each bucket's head — the queue's
	// incrementally tracked "oldest request per bank" index — and heads
	// mirrors it with the head requests themselves, so the scheduler's
	// per-bank walk dereferences one pointer instead of chasing
	// byBank[bank][0]. pos[bank] is the bank's index in occupied, -1
	// when absent. The order is maintained on push (a newly occupied
	// bank's head is the youngest request, so it appends) and on head
	// removal (the new head is younger, so the bank shifts right).
	// Scheduling scans iterate occupied front-to-back and get banks in
	// exactly the order the old whole-queue age scan discovered them, at
	// a cost bounded by min(queued requests, banks) instead of the
	// queue depth.
	occupied []int
	heads    []*Request
	pos      []int
	count    int
	cap      int
	seq      int64
}

func newQueue(capacity, banks int) *queue {
	return newQueueIn(nil, capacity, banks)
}

// newQueueIn carves the queue's pointer-free occupancy indexes (occupied,
// pos) out of a; the request buckets and head mirror hold pointers and
// stay on the regular heap. A nil arena keeps plain allocations.
func newQueueIn(a *arena.Arena, capacity, banks int) *queue {
	q := &queue{
		byBank:   make([][]*Request, banks),
		occupied: arena.Slice[int](a, banks)[:0],
		heads:    make([]*Request, 0, banks),
		pos:      arena.Slice[int](a, banks),
		cap:      capacity,
	}
	// Pre-size each bucket to the queue capacity (the per-bank worst
	// case: every queued request targets one bank), so bucket growth
	// never allocates mid-run no matter how skewed the traffic. All
	// buckets share one backing block, three-index-sliced so an append
	// past one bucket's capacity can never bleed into its neighbor.
	bucketBacking := make([]*Request, banks*capacity)
	for i := range q.byBank {
		q.byBank[i] = bucketBacking[i*capacity : i*capacity : (i+1)*capacity]
	}
	for i := range q.pos {
		q.pos[i] = -1
	}
	return q
}

func (q *queue) full() bool  { return q.count >= q.cap }
func (q *queue) empty() bool { return q.count == 0 }
func (q *queue) size() int   { return q.count }

// push appends r to its bank's bucket. The caller must have resolved
// r.bankID (Enqueue does).
func (q *queue) push(r *Request) {
	r.seq = q.seq
	q.seq++
	b := r.bankID
	if len(q.byBank[b]) == 0 {
		q.pos[b] = len(q.occupied)
		q.occupied = append(q.occupied, b)
		q.heads = append(q.heads, r)
	}
	q.byBank[b] = append(q.byBank[b], r)
	q.count++
}

// reset drops every queued request (releasing the pointers for GC) and
// applies a new capacity, returning the queue to its constructed state.
// Bucket storage is kept, so a Reset-reused controller schedules without
// reallocating.
func (q *queue) reset(capacity int) {
	for i, b := range q.occupied {
		bucket := q.byBank[b]
		for j := range bucket {
			bucket[j] = nil
		}
		q.byBank[b] = bucket[:0]
		q.pos[b] = -1
		q.heads[i] = nil
	}
	q.occupied = q.occupied[:0]
	q.heads = q.heads[:0]
	q.count = 0
	q.seq = 0
	q.cap = capacity
}

// remove deletes the i-th request of bankID's bucket, preserving arrival
// order within the bank and the head-age order of occupied.
func (q *queue) remove(bankID, i int) {
	b := q.byBank[bankID]
	copy(b[i:], b[i+1:])
	b[len(b)-1] = nil
	b = b[:len(b)-1]
	q.byBank[bankID] = b
	q.count--
	if len(b) == 0 {
		// Bank drained: delete it from occupied/heads, preserving order.
		idx := q.pos[bankID]
		copy(q.occupied[idx:], q.occupied[idx+1:])
		copy(q.heads[idx:], q.heads[idx+1:])
		last := len(q.occupied) - 1
		q.occupied = q.occupied[:last]
		q.heads[last] = nil
		q.heads = q.heads[:last]
		for j := idx; j < last; j++ {
			q.pos[q.occupied[j]] = j
		}
		q.pos[bankID] = -1
		return
	}
	if i == 0 {
		// Head removed: the new head is younger, so the bank may belong
		// further right in occupied. Shift it past banks with older heads.
		idx := q.pos[bankID]
		hseq := b[0].seq
		j := idx
		for j+1 < len(q.occupied) && q.heads[j+1].seq < hseq {
			q.occupied[j] = q.occupied[j+1]
			q.heads[j] = q.heads[j+1]
			q.pos[q.occupied[j]] = j
			j++
		}
		q.occupied[j] = bankID
		q.heads[j] = b[0]
		q.pos[bankID] = j
	}
}
