package memctrl

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/ev"
)

// planCache is a CacheHook whose Commit installs the planned segment,
// for testing the deferred-relocation engine.
type planCache struct {
	cost      int64
	committed int
	inflight  map[uint64]bool
	cached    map[uint64]dram.Location
}

func newPlanCache(cost int64) *planCache {
	return &planCache{cost: cost, inflight: map[uint64]bool{}, cached: map[uint64]dram.Location{}}
}

func (p *planCache) key(loc dram.Location) uint64 {
	return uint64(loc.BankID(dram.Default()))<<32 | uint64(loc.Row)
}

func (p *planCache) Lookup(loc dram.Location, isWrite bool) (dram.Location, bool) {
	redirect, ok := p.cached[p.key(loc)]
	return redirect, ok
}

func (p *planCache) ShouldInsert(loc dram.Location) bool { return true }

func (p *planCache) Insert(ch *dram.Channel, loc dram.Location, now int64) *RelocPlan {
	k := p.key(loc)
	if p.inflight[k] {
		return nil
	}
	p.inflight[k] = true
	return &RelocPlan{Loc: loc, Cost: p.cost, Blocks: 16}
}

func (p *planCache) Commit(plan *RelocPlan) {
	loc := plan.Loc
	k := p.key(loc)
	delete(p.inflight, k)
	p.committed++
	p.cached[k] = dram.Location{
		Rank: loc.Rank, Group: loc.Group, Bank: loc.Bank,
		Row: 0, Block: loc.Block, CacheRow: true,
	}
}

func TestDeferredRelocCommitsAtRowClose(t *testing.T) {
	pc := newPlanCache(40)
	c := newTestController(t, pc)
	var done int
	on := c.on(func(int64) { done++ })
	// Miss to row 1 plans an insertion; it must not commit while row 1
	// keeps serving requests.
	c.Enqueue(&Request{Loc: dram.Location{Row: 1, Block: 0}, OnComplete: on}, 0)
	runUntil(c, 200, func() bool { return done == 1 })
	if pc.committed != 0 {
		t.Fatalf("committed %d before row close", pc.committed)
	}
	// A row hit to the same row is served from the still-open source row
	// (no FTS entry exists yet, so no redirect happens).
	c.Enqueue(&Request{Loc: dram.Location{Row: 1, Block: 5}, OnComplete: on}, 60)
	runUntil(c, 400, func() bool { return done == 2 })
	if pc.committed != 0 {
		t.Fatalf("committed %d while the source row was open", pc.committed)
	}
	// A conflicting request forces the row closed: the relocation executes
	// and commits there.
	c.Enqueue(&Request{Loc: dram.Location{Row: 9, Block: 0}, OnComplete: on}, 400)
	runUntil(c, 1200, func() bool { return done == 3 })
	if pc.committed == 0 {
		t.Fatal("relocation never committed at row close")
	}
	// Subsequent access to row 1 now hits the cache.
	if _, hit := pc.Lookup(dram.Location{Row: 1, Block: 0}, false); !hit {
		t.Error("segment not cached after commit")
	}
}

func TestIdleFlushWaitsForQuietWindow(t *testing.T) {
	pc := newPlanCache(40)
	c := newTestController(t, pc)
	quiet := c.cfg.IdleFlushAfter
	var colAt, flushAt int64
	// One continuous clock: the insertion is planned when the miss's
	// column command issues; the idle flush may run only after the bank
	// has been quiet for the configured window.
	for now := int64(0); now < quiet*6; now++ {
		if now == 0 {
			c.Enqueue(&Request{Loc: dram.Location{Row: 1, Block: 0},
				OnComplete: c.on(func(at int64) { colAt = at })}, 0)
		}
		c.Tick(now, func(at int64, tok ev.Token) { c.dispatch(tok, at) })
		if pc.committed > 0 && flushAt == 0 {
			flushAt = now
		}
	}
	if pc.committed != 1 {
		t.Fatalf("idle flush never fired (committed=%d)", pc.committed)
	}
	if colAt == 0 {
		t.Fatal("read never completed")
	}
	// The flush must respect the quiet window measured from the column
	// access (colAt is the data-end time; the command issued CL+BL
	// earlier, so allow that much slack).
	tm := c.Channel().Slow
	issueAt := colAt - int64(tm.CL+tm.BL)
	if flushAt < issueAt+quiet {
		t.Errorf("idle flush at %d, only %d cycles after the column access at %d (window %d)",
			flushAt, flushAt-issueAt, issueAt, quiet)
	}
	// The bank must be left precharged.
	if row, _ := c.Channel().Bank(dram.Location{}).Open(); row != -1 {
		t.Error("bank open after relocation flush")
	}
}

func TestImmediateRelocExecutesAtMiss(t *testing.T) {
	pc := newPlanCache(40)
	geo := dram.Default()
	slow := dram.DDR4()
	ch, err := dram.NewChannel(geo, slow, slow.Fast(dram.PaperFastScale()), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ImmediateReloc = true
	c := &testCtrl{Controller: NewController(0, cfg, ch, pc)}
	done := false
	c.Enqueue(&Request{Loc: dram.Location{Row: 1, Block: 0}, OnComplete: c.on(func(int64) { done = true })}, 0)
	runUntil(c, 200, func() bool { return done && pc.committed > 0 })
	if pc.committed != 1 {
		t.Fatalf("immediate mode committed %d at miss time, want 1", pc.committed)
	}
	if row, _ := ch.Bank(dram.Location{}).Open(); row != -1 {
		t.Error("bank open after immediate relocation")
	}
}

func TestRefreshFlushesPendingRelocs(t *testing.T) {
	pc := newPlanCache(40)
	c := newTestController(t, pc)
	done := false
	c.Enqueue(&Request{Loc: dram.Location{Row: 1, Block: 0}, OnComplete: c.on(func(int64) { done = true })}, 0)
	// Serve the miss just before the refresh deadline, then keep the bank
	// busy enough that only the refresh path can close it.
	refi := int64(c.Channel().Slow.REFI)
	runUntil(c, 100, func() bool { return done })
	if !done {
		t.Fatal("read never completed")
	}
	// Run across the refresh deadline: the refresh precharge path must
	// execute the pending relocation (or the idle flush gets it first;
	// either way it must be done before REF issues).
	runUntil(c, refi+int64(c.Channel().Slow.RFC)+200, func() bool {
		return c.Channel().NumREF > 0
	})
	if c.Channel().NumREF == 0 {
		t.Fatal("refresh never issued")
	}
	if pc.committed != 1 {
		t.Errorf("pending relocation not executed by refresh time (committed=%d)", pc.committed)
	}
}

func TestRelocPlanAccountingInStats(t *testing.T) {
	pc := newPlanCache(25)
	c := newTestController(t, pc)
	c.Enqueue(&Request{Loc: dram.Location{Row: 1, Block: 0}}, 0)
	quiet := c.cfg.IdleFlushAfter
	runUntil(c, 400+quiet*4, func() bool { return pc.committed == 1 })
	s := c.Channel().CollectStats()
	if s.RELOC != 16 {
		t.Errorf("RELOC columns = %d, want 16", s.RELOC)
	}
	if s.RelocBusy != 25 {
		t.Errorf("RelocBusy = %d, want the plan cost 25", s.RelocBusy)
	}
	if c.Inserted != 1 {
		t.Errorf("Inserted = %d, want 1", c.Inserted)
	}
}
