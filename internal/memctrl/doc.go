// Package memctrl implements the memory controller: per-channel read and
// write request queues, FR-FCFS command scheduling, the DDR4 address
// interleaving from Table 1 of the FIGARO paper, write draining and
// refresh management, plus the hook through which an in-DRAM cache
// (FIGCache or LISA-VILLA, in internal/core) redirects requests and
// triggers in-DRAM relocations.
//
// The controller is the layer between the cache hierarchy and the DRAM
// device model: LLC misses and write-backs enter through Enqueue, and
// each Tick issues at most one DRAM command chosen by FR-FCFS (column
// commands to open rows first, then the oldest request's ACT/PRE
// sequence). Cache-insertion relocations are deferred until the source
// row is about to close (Section 8.1), so they never steal row hits from
// queued requests.
//
// Two properties matter to the layers above:
//
//   - Tick returns a next-work probe — a lower bound on the next bus
//     cycle the controller could change state — which is what lets the
//     cycle-skipping engine in internal/sim jump over idle bus cycles.
//
//   - Scheduling work per tick is bounded by the number of banks with
//     queued work, not the queue depth: the queues bucket requests per
//     bank and incrementally maintain the oldest request of each bank
//     in age order, so deep write-queue drains cost the same per issued
//     command as shallow queues (see queue in request.go).
//
// Controller.Snapshot/Restore (snapshot.go) serialize the queues,
// in-flight requests (SnapshotRequest/RestoreRequest, driven by the
// sim layer, which owns request identity), drain/refresh state, and
// the latency reservoir for the system checkpoint lifecycle.
package memctrl
