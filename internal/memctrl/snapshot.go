package memctrl

import (
	"repro/internal/dram"
	"repro/internal/ev"
	"repro/internal/fgss"
)

func snapLoc(w *fgss.Writer, l dram.Location) {
	w.Int(l.Rank)
	w.Int(l.Group)
	w.Int(l.Bank)
	w.Int(l.Row)
	w.Int(l.Block)
	w.Bool(l.CacheRow)
}

func restoreLoc(r *fgss.Reader) dram.Location {
	var l dram.Location
	l.Rank = r.Int()
	l.Group = r.Int()
	l.Bank = r.Int()
	l.Row = r.Int()
	l.Block = r.Int()
	l.CacheRow = r.Bool()
	return l
}

func snapToken(w *fgss.Writer, t ev.Token) {
	w.U64(uint64(t.Kind))
	w.I64(int64(t.ID))
	w.U64(t.Arg)
}

func restoreToken(r *fgss.Reader) ev.Token {
	kind := ev.Kind(r.U64())
	id := int32(r.I64())
	return ev.Token{Kind: kind, ID: id, Arg: r.U64()}
}

// SnapshotRequest appends one request's full payload: everything but
// the bank resolution (recomputed from ServiceLoc on restore) travels
// in the snapshot.
func SnapshotRequest(w *fgss.Writer, r *Request) {
	w.U64(r.Addr)
	snapLoc(w, r.Loc)
	w.Bool(r.IsWrite)
	w.I64(r.Arrive)
	w.Int(r.CoreID)
	snapToken(w, r.OnComplete)
	snapLoc(w, r.ServiceLoc)
	w.Bool(r.CacheHit)
	w.Bool(r.noInsert)
	w.I64(r.seq)
}

// RestoreRequest reads back what SnapshotRequest wrote into r and
// re-resolves the bank cache against ch.
func RestoreRequest(rd *fgss.Reader, r *Request, ch *dram.Channel) {
	r.Addr = rd.U64()
	r.Loc = restoreLoc(rd)
	r.IsWrite = rd.Bool()
	r.Arrive = rd.I64()
	r.CoreID = rd.Int()
	r.OnComplete = restoreToken(rd)
	r.ServiceLoc = restoreLoc(rd)
	r.CacheHit = rd.Bool()
	r.noInsert = rd.Bool()
	r.seq = rd.I64()
	r.bankID = r.ServiceLoc.BankID(ch.Geo)
	r.bank = ch.BankByID(r.bankID)
}

// snapshot appends the queue's push counter and every queued request,
// bucket by bucket in occupied (head-age) order — the walk order that
// lets restore rebuild occupied/heads/pos exactly.
func (q *queue) snapshot(w *fgss.Writer) {
	w.I64(q.seq)
	w.Int(len(q.occupied))
	for _, b := range q.occupied {
		bucket := q.byBank[b]
		w.Int(len(bucket))
		for _, r := range bucket {
			SnapshotRequest(w, r)
		}
	}
}

// restore reads back what snapshot wrote, dropping any currently
// queued requests first. Requests are re-bucketed by their re-resolved
// bank ID in serialized order, which reproduces the occupied/heads/pos
// index byte-for-byte because snapshot walked buckets in head-age
// order.
func (q *queue) restore(rd *fgss.Reader, ch *dram.Channel) {
	q.reset(q.cap)
	q.seq = rd.I64()
	nOcc := rd.Int()
	if nOcc < 0 || nOcc > len(q.byBank) {
		return
	}
	for i := 0; i < nOcc && rd.Err() == nil; i++ {
		n := rd.Int()
		for j := 0; j < n && rd.Err() == nil; j++ {
			r := &Request{}
			RestoreRequest(rd, r, ch)
			if rd.Err() != nil {
				return
			}
			b := r.bankID
			if len(q.byBank[b]) == 0 {
				q.pos[b] = len(q.occupied)
				q.occupied = append(q.occupied, b)
				q.heads = append(q.heads, r)
			}
			q.byBank[b] = append(q.byBank[b], r)
			q.count++
		}
	}
}

func snapPlan(w *fgss.Writer, p *RelocPlan) {
	snapLoc(w, p.Loc)
	w.I64(p.Cost)
	w.Int(p.Blocks)
	w.Int(p.Hops)
	w.Bool(p.IsLISA)
	w.Bool(p.ChannelWide)
	w.Int(p.CommitBank)
	w.Int(p.CommitSlot)
	w.Int(p.CommitRow)
	w.Int(p.CommitSeg)
}

func restorePlan(r *fgss.Reader) *RelocPlan {
	p := &RelocPlan{}
	p.Loc = restoreLoc(r)
	p.Cost = r.I64()
	p.Blocks = r.Int()
	p.Hops = r.Int()
	p.IsLISA = r.Bool()
	p.ChannelWide = r.Bool()
	p.CommitBank = r.Int()
	p.CommitSlot = r.Int()
	p.CommitRow = r.Int()
	p.CommitSeg = r.Int()
	return p
}

// Snapshot appends the controller's full mutable state: both request
// queues, the write-drain mode, every deferred relocation plan, the
// per-bank quiet-window registers, the lazy write-drain tick register,
// the statistics counters, and the latency reservoir.
func (c *Controller) Snapshot(w *fgss.Writer) {
	c.readQ.snapshot(w)
	c.writeQ.snapshot(w)
	w.Bool(c.writing)
	w.Int(len(c.pendingRelocs))
	for _, plans := range c.pendingRelocs {
		w.Int(len(plans))
		for _, p := range plans {
			snapPlan(w, p)
		}
	}
	w.Int(len(c.lastColumn))
	for _, v := range c.lastColumn {
		w.I64(v)
	}
	w.I64(c.lastTick)
	w.I64(c.NumReads)
	w.I64(c.NumWrites)
	w.I64(c.CacheHits)
	w.I64(c.CacheMisses)
	w.I64(c.ReadLatencySum)
	w.I64(c.Inserted)
	w.I64(c.QueueFullStalls)
	w.Int(c.MaxReadQ)
	w.Int(c.MaxWriteQ)
	w.I64(c.WritingCycles)
	c.latSamples.Snapshot(w)
}

// Restore reads back what Snapshot wrote, recomputing the derived
// relocation-work bank count. Queued requests are rebuilt as fresh
// objects; the creator's pooling resumes as they are served and
// released. The receiver must be built over a channel with the
// snapshotted bank count (a mismatch stops decoding).
func (c *Controller) Restore(r *fgss.Reader) {
	c.readQ.restore(r, c.channel)
	c.writeQ.restore(r, c.channel)
	c.writing = r.Bool()
	if r.Int() != len(c.pendingRelocs) {
		return
	}
	c.relocBanks = 0
	for i := range c.pendingRelocs {
		c.pendingRelocs[i] = nil
		n := r.Int()
		for j := 0; j < n && r.Err() == nil; j++ {
			c.pendingRelocs[i] = append(c.pendingRelocs[i], restorePlan(r))
		}
		if len(c.pendingRelocs[i]) > 0 {
			c.relocBanks++
		}
	}
	if r.Int() != len(c.lastColumn) {
		return
	}
	for i := range c.lastColumn {
		c.lastColumn[i] = r.I64()
	}
	c.lastTick = r.I64()
	c.NumReads = r.I64()
	c.NumWrites = r.I64()
	c.CacheHits = r.I64()
	c.CacheMisses = r.I64()
	c.ReadLatencySum = r.I64()
	c.Inserted = r.I64()
	c.QueueFullStalls = r.I64()
	c.MaxReadQ = r.Int()
	c.MaxWriteQ = r.Int()
	c.WritingCycles = r.I64()
	c.latSamples.Restore(r)
}
