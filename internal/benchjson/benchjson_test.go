package benchjson

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatorThroughput-8   	     100	   2045500 ns/op	  24400000 sim-insts/s	       0 B/op	       0 allocs/op
BenchmarkAccessPathAllocs-8      	      10	    928428 ns/op	  53861190 sim-cycles/s	       0 B/op	       0 allocs/op
--- FAIL: BenchmarkBroken
    bench_test.go:10: boom
PASS
ok  	repro/internal/sim	1.234s
pkg: repro/internal/dram
BenchmarkChannelTick-8           	 5000000	       231.5 ns/op
FAIL
`

func TestParse(t *testing.T) {
	run, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if run.GOOS != "linux" || run.GOARCH != "amd64" {
		t.Errorf("goos/goarch = %q/%q", run.GOOS, run.GOARCH)
	}
	if !strings.Contains(run.CPU, "Xeon") {
		t.Errorf("cpu = %q", run.CPU)
	}
	if len(run.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(run.Results))
	}

	tp := run.Results[0]
	if tp.Name != "BenchmarkSimulatorThroughput-8" {
		t.Errorf("name = %q", tp.Name)
	}
	if tp.Package != "repro/internal/sim" {
		t.Errorf("package = %q", tp.Package)
	}
	if tp.Iterations != 100 {
		t.Errorf("iterations = %d", tp.Iterations)
	}
	if tp.NsPerOp != 2045500 {
		t.Errorf("ns/op = %v", tp.NsPerOp)
	}
	if got := tp.Metrics["sim-insts/s"]; got != 24400000 {
		t.Errorf("sim-insts/s = %v", got)
	}
	if got, ok := tp.Metrics["allocs/op"]; !ok || got != 0 {
		t.Errorf("allocs/op = %v (present %v)", got, ok)
	}

	// The pkg: header switches mid-stream.
	ct := run.Results[2]
	if ct.Package != "repro/internal/dram" {
		t.Errorf("package = %q", ct.Package)
	}
	if ct.NsPerOp != 231.5 {
		t.Errorf("ns/op = %v", ct.NsPerOp)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	noise := `random log line
Benchmark line without iteration count
PASS
`
	run, err := Parse(strings.NewReader(noise))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != 0 {
		t.Fatalf("got %d results from noise, want 0", len(run.Results))
	}
}

func TestWriteRoundTrip(t *testing.T) {
	run, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Run
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(back.Results) != len(run.Results) {
		t.Errorf("round trip lost results: %d != %d", len(back.Results), len(run.Results))
	}
	if back.Results[0].Metrics["sim-insts/s"] != 24400000 {
		t.Errorf("round trip lost metrics")
	}
}
