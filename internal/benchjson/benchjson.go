// Package benchjson converts `go test -bench` text output into
// machine-readable JSON, so the perf trajectory of the simulator can be
// tracked as BENCH_*.json artifacts across PRs instead of eyeballed
// from CI logs.
//
// The parser understands the standard benchmark line format — name,
// iteration count, then (value, unit) pairs — and keeps every metric it
// sees: ns/op, B/op, allocs/op, and custom ReportMetric units such as
// sim-insts/s or sim-cycles/s. Header lines (goos, goarch, pkg, cpu)
// become run metadata.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix kept as
	// printed (e.g. "BenchmarkSimulatorThroughput-8").
	Name string `json:"name"`
	// Package is the pkg: header in effect when the line was read.
	Package string `json:"package,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op metric, 0 if absent.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every (value, unit) pair of the line keyed by unit,
	// including ns/op, B/op, allocs/op, and custom metrics.
	Metrics map[string]float64 `json:"metrics"`
}

// Run is a full parsed `go test -bench` invocation.
type Run struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// Parse reads `go test -bench` output and returns the structured run.
// Non-benchmark lines (PASS, ok, test logs) are ignored, so the full
// combined output of a multi-package run can be piped in unfiltered.
func Parse(r io.Reader) (*Run, error) {
	run := &Run{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			run.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if !ok {
				continue
			}
			res.Package = pkg
			run.Results = append(run.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	return run, nil
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName-8  100  2045500 ns/op  24400000 sim-insts/s  0 allocs/op
//
// Fields after the iteration count come in (value, unit) pairs.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		res.Metrics[unit] = v
		if unit == "ns/op" {
			res.NsPerOp = v
		}
	}
	return res, true
}

// Write emits the run as indented JSON.
func (run *Run) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(run)
}
