// Package repro_bench provides one testing.B benchmark per table and
// figure of the paper's evaluation. Each benchmark regenerates its
// artifact through the same harness cmd/figbench uses, at a reduced scale
// so `go test -bench=.` completes in minutes; custom metrics report the
// headline numbers (speedups, hit rates) next to wall-clock time. Run
// cmd/figbench for full-scale reproductions, and see EXPERIMENTS.md for
// recorded paper-vs-measured results.
package repro_bench

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchScale is the reduced experiment scale used by all benchmarks.
func benchScale() harness.Scale {
	return harness.Scale{
		Insts:            60_000,
		SingleApps:       4,
		MixesPerCategory: 1,
		MCIterations:     2_000,
	}
}

// runTable executes one harness experiment per b.N iteration and reports
// the simulator's cycle throughput next to wall-clock time.
func runTable(b *testing.B, f func(*harness.Runner) (*stats.Table, error)) *stats.Table {
	b.Helper()
	var tab *stats.Table
	var simCycles int64
	var simWall float64
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchScale())
		var err error
		tab, err = f(r)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += r.SimCycles()
		simWall += r.SimWallSeconds()
	}
	if simWall > 0 && simCycles > 0 {
		b.ReportMetric(float64(simCycles)/simWall, "sim-cycles/s")
	}
	return tab
}

// lastCellMean averages the numeric value of column col over all rows
// whose first cell contains match.
func lastCellMean(tab *stats.Table, match string, col int) float64 {
	var vals []float64
	for _, row := range tab.Rows {
		if !strings.Contains(row[0], match) || col >= len(row) {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
		if err == nil {
			vals = append(vals, v)
		}
	}
	return stats.Mean(vals)
}

func BenchmarkTable1Config(b *testing.B) {
	runTable(b, func(r *harness.Runner) (*stats.Table, error) { return r.Table1(), nil })
}

func BenchmarkTable2Benchmarks(b *testing.B) {
	tab := runTable(b, (*harness.Runner).Table2)
	b.ReportMetric(lastCellMean(tab, "mcf", 2), "mcf-mpki")
}

func BenchmarkFig5Reloc(b *testing.B) {
	runTable(b, (*harness.Runner).Fig5)
}

func BenchmarkFig7SingleCore(b *testing.B) {
	tab := runTable(b, (*harness.Runner).Fig7)
	// Column 4 is FIGCache-Fast (app, class, LISA, Slow, Fast, Ideal, LL).
	b.ReportMetric(lastCellMean(tab, "geomean", 4), "figcache-fast-speedup")
}

func BenchmarkFig8EightCore(b *testing.B) {
	tab := runTable(b, (*harness.Runner).Fig8)
	b.ReportMetric(lastCellMean(tab, "all 20 mixes", 3), "figcache-fast-ws")
}

func BenchmarkFig9CacheHitRate(b *testing.B) {
	tab := runTable(b, (*harness.Runner).Fig9)
	b.ReportMetric(lastCellMean(tab, "8-core 100%", 3), "fast-hitrate-pct")
}

func BenchmarkFig10RowHitRate(b *testing.B) {
	tab := runTable(b, (*harness.Runner).Fig10)
	b.ReportMetric(lastCellMean(tab, "8-core 100%", 3), "fast-rowhit-pct")
}

func BenchmarkFig11Energy(b *testing.B) {
	tab := runTable(b, (*harness.Runner).Fig11)
	_ = tab
}

func BenchmarkFig12Capacity(b *testing.B) {
	runTable(b, (*harness.Runner).Fig12)
}

func BenchmarkFig13SegmentSize(b *testing.B) {
	runTable(b, (*harness.Runner).Fig13)
}

func BenchmarkFig14Replacement(b *testing.B) {
	runTable(b, (*harness.Runner).Fig14)
}

func BenchmarkFig15Insertion(b *testing.B) {
	runTable(b, (*harness.Runner).Fig15)
}

func BenchmarkSec42Analysis(b *testing.B) {
	runTable(b, func(r *harness.Runner) (*stats.Table, error) { return r.Sec42(), nil })
}

func BenchmarkSec83Overhead(b *testing.B) {
	runTable(b, (*harness.Runner).Sec83)
}

func BenchmarkMultithreaded(b *testing.B) {
	runTable(b, (*harness.Runner).Multithreaded)
}

// BenchmarkAblationRelocPolicy compares deferred versus immediate
// relocation execution, the main controller design choice beyond the
// paper's own sensitivity studies.
func BenchmarkAblationRelocPolicy(b *testing.B) {
	runTable(b, (*harness.Runner).Ablations)
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// instructions per wall-clock second on the Base configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	mix := workload.Mix{Name: "mcf", Apps: workload.Sources(spec)}
	b.ResetTimer()
	var insts, cycles int64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(sim.Base, mix)
		cfg.TargetInsts = 50_000
		system, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := system.Run()
		if err != nil {
			b.Fatal(err)
		}
		insts += res.TotalInsts
		cycles += res.Cycles
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkGangRow pits gang execution against serial execution of one
// figure row: a single Table-2 application simulated under all six
// presets. The serial arm mirrors the harness solo path (one System
// Reset-reused across the row, so workload generation runs six times);
// the gang arm runs the row as one sim.Gang over a shared instruction
// stream (generation runs once, teed to all members). Both arms reuse
// their Systems across b.N iterations, so the comparison is steady
// state and the ratio isolates the amortized generation work against
// the gang's interleaving overhead. Generation is a few percent of a
// run after the engine optimizations of earlier PRs, so expect the
// arms within noise of each other — the profile satellites in the
// README show where the remaining 96% goes.
func BenchmarkGangRow(b *testing.B) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	mix := workload.Mix{Name: spec.Name, Apps: workload.Sources(spec)}
	var row []sim.Config
	for _, p := range sim.Presets() {
		cfg := sim.DefaultConfig(p, mix)
		cfg.TargetInsts = 100_000
		row = append(row, cfg)
	}

	b.Run("serial", func(b *testing.B) {
		system, err := sim.New(row[0])
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var cycles int64
		for i := 0; i < b.N; i++ {
			for _, cfg := range row {
				if err := system.Reset(cfg); err != nil {
					b.Fatal(err)
				}
				res, err := system.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
	})

	b.Run("gang", func(b *testing.B) {
		warm, err := sim.NewGang(row, nil)
		if err != nil {
			b.Fatal(err)
		}
		reuse := warm.Members()
		b.ResetTimer()
		var cycles int64
		for i := 0; i < b.N; i++ {
			gang, err := sim.NewGang(row, reuse)
			if err != nil {
				b.Fatal(err)
			}
			results, errs := gang.Run()
			for _, e := range errs {
				if e != nil {
					b.Fatal(e)
				}
			}
			for _, res := range results {
				cycles += res.Cycles
			}
			reuse = gang.Members()
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
	})
}

// BenchmarkEngineComparison pits the cycle-skipping engine against the
// dense reference loop on the same memory-intensive Base run, so the
// speedup is visible directly in the benchmark output.
func BenchmarkEngineComparison(b *testing.B) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	mix := workload.Mix{Name: "mcf", Apps: workload.Sources(spec)}
	for _, eng := range []struct {
		name  string
		dense bool
	}{{"skipping", false}, {"dense", true}} {
		b.Run(eng.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(sim.Base, mix)
				cfg.TargetInsts = 50_000
				cfg.DenseLoop = eng.dense
				system, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := system.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
		})
	}
}
