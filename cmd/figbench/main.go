// Command figbench regenerates every table and figure of the paper's
// evaluation. Each subcommand prints the rows/series of one artifact;
// "all" runs the complete set.
//
// Usage:
//
//	figbench [-insts N] [-apps N] [-mixes N] [-mc N] [-cache-dir DIR] [-force] <experiment>...
//	figbench all
//	figbench -cache-dir .figcache fig8 fig10
//
// Experiments: table1 table2 fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 fig15 sec42 sec83 multithreaded
//
// The instruction budget trades fidelity for runtime; the shipped default
// reproduces the paper's qualitative shapes in minutes on one machine.
// See EXPERIMENTS.md for recorded paper-vs-measured results.
//
// With -cache-dir, every computed run is persisted keyed by its
// configuration fingerprint (which folds in the engine version stamp), so
// a rerun only recomputes runs the current binary would produce
// differently; -force recomputes everything and rewrites the store. See
// the "Warm cache" section of the README for the versioning contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/expcache"
	"repro/internal/harness"
	"repro/internal/stats"
)

func main() {
	// Flag defaults derive from harness.DefaultScale, the single source of
	// truth for the full-scale matrix — they cannot drift when the scale
	// moves again.
	def := harness.DefaultScale()
	insts := flag.Int64("insts", def.Insts, "per-core instruction target per run")
	apps := flag.Int("apps", def.SingleApps, "single-core applications to include (max 20)")
	mixes := flag.Int("mixes", def.MixesPerCategory, "eight-core mixes per category (max 5)")
	mc := flag.Int("mc", def.MCIterations, "Monte-Carlo iterations for the circuit model")
	par := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persistent result cache directory (empty = in-memory only)")
	force := flag.Bool("force", false, "recompute cached runs and rewrite the persistent cache")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	r := harness.NewRunnerWithCache(harness.Scale{
		Insts: *insts, SingleApps: *apps, MixesPerCategory: *mixes,
		MCIterations: *mc, Parallelism: *par,
	}, expcache.New(*cacheDir), *force)

	type experiment struct {
		name string
		run  func() (*stats.Table, error)
	}
	catalog := []experiment{
		{"table1", func() (*stats.Table, error) { return r.Table1(), nil }},
		{"table2", r.Table2},
		{"fig5", r.Fig5},
		{"fig7", r.Fig7},
		{"fig8", r.Fig8},
		{"fig9", r.Fig9},
		{"fig10", r.Fig10},
		{"fig11", r.Fig11},
		{"fig12", r.Fig12},
		{"fig13", r.Fig13},
		{"fig14", r.Fig14},
		{"fig15", r.Fig15},
		{"sec42", func() (*stats.Table, error) { return r.Sec42(), nil }},
		{"sec83", r.Sec83},
		{"multithreaded", r.Multithreaded},
		{"ablation", r.Ablations},
	}

	want := make(map[string]bool)
	for _, a := range args {
		if a == "all" {
			for _, e := range catalog {
				want[e.name] = true
			}
			continue
		}
		found := false
		for _, e := range catalog {
			if e.name == a {
				want[a] = true
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "figbench: unknown experiment %q\n", a)
			usage()
			os.Exit(2)
		}
	}

	for _, e := range catalog {
		if !want[e.name] {
			continue
		}
		start := time.Now()
		tab, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(tab.Render())
		fmt.Printf("(%s completed in %.1fs)\n\n", e.name, time.Since(start).Seconds())
	}
	if cps := r.SimCyclesPerSecond(); cps > 0 {
		fmt.Printf("simulator throughput: %d cycles in %.1fs of simulation (%.2fM sim-cycles/s)\n",
			r.SimCycles(), r.SimWallSeconds(), cps/1e6)
	}
	st := r.CacheStats()
	fmt.Printf("result cache: hits=%d (mem=%d disk=%d) misses=%d computed=%d systems=%d built+%d reused",
		st.Hits(), st.MemHits, st.DiskHits, st.Misses, st.Stores,
		r.SystemsBuilt(), r.SystemsReused())
	if *cacheDir != "" {
		fmt.Printf(" dir=%s", *cacheDir)
	}
	if st.DiskError > 0 {
		fmt.Printf(" disk-errors=%d", st.DiskError)
	}
	fmt.Println()
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: figbench [flags] <experiment>...
experiments: all table1 table2 fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 sec42 sec83 multithreaded ablation`)
	flag.PrintDefaults()
}
