// Command figbench regenerates every table and figure of the paper's
// evaluation. Each subcommand prints the rows/series of one artifact;
// "all" runs the complete set.
//
// Usage:
//
//	figbench [-insts N] [-apps N] [-mixes N] [-mc N] [-cache-dir DIR] [-force] <experiment>...
//	figbench all
//	figbench -cache-dir .figcache fig8 fig10
//
// Experiments: table1 table2 fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 fig15 sec42 sec83 multithreaded ablation custom
//
// The custom experiment runs user-supplied workloads — anything figsim's
// -workload flag accepts, including recorded traces — through the exact
// pipeline that renders the paper's figures:
//
//	figbench -workload trace:mcf.trc,mix-100-0 custom
//
// The instruction budget trades fidelity for runtime; the shipped default
// reproduces the paper's qualitative shapes in minutes on one machine.
// See EXPERIMENTS.md for recorded paper-vs-measured results.
//
// With -cache-dir, every computed run is persisted keyed by its
// configuration fingerprint (which folds in the engine version stamp), so
// a rerun only recomputes runs the current binary would produce
// differently; -force recomputes everything and rewrites the store. See
// the "Warm cache" section of the README for the versioning contract.
//
// With -shard K/N the experiment matrix is fanned out across machines:
// each invocation enumerates the full job index of the selected
// experiments, computes only its fingerprint-ordered 1/N slice into
// -cache-dir (no tables are rendered), and writes a shard manifest
// describing the split. Collect the cache directories, merge them with
// figmerge, and rerun figbench unsharded against the merged directory:
// it recomputes nothing and renders tables byte-identical to a
// single-machine run. See ARCHITECTURE.md for the full workflow.
//
// With -worker URL the invocation instead serves a figserve coordinator:
// it adopts the coordinator's scale and experiment set (local scale and
// experiment arguments are rejected to prevent silent drift), computes
// leased slices of the matrix, and uploads the results until the
// coordinator reports the matrix complete. See the "Distributed
// dispatch" section of ARCHITECTURE.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/dispatch"
	"repro/internal/expcache"
	"repro/internal/harness"
	"repro/internal/stats"
)

func main() {
	// Flag defaults derive from harness.DefaultScale, the single source of
	// truth for the full-scale matrix — they cannot drift when the scale
	// moves again.
	def := harness.DefaultScale()
	insts := flag.Int64("insts", def.Insts, "per-core instruction target per run")
	apps := flag.Int("apps", def.SingleApps, "single-core applications to include (max 20)")
	mixes := flag.Int("mixes", def.MixesPerCategory, "eight-core mixes per category (max 5)")
	mc := flag.Int("mc", def.MCIterations, "Monte-Carlo iterations for the circuit model")
	par := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persistent result cache directory (empty = in-memory only)")
	force := flag.Bool("force", false, "recompute cached runs and rewrite the persistent cache")
	shard := flag.String("shard", "", "compute only slice K/N of the experiment matrix into -cache-dir (no tables are rendered; merge shards with figmerge)")
	customWl := flag.String("workload", "", "comma-separated workloads for the custom experiment (benchmarks, mixes, mt-<app>, trace:FILE)")
	gang := flag.Bool("gang", true, "execute same-workload runs as one gang over a shared instruction stream (results are bit-identical either way)")
	worker := flag.String("worker", "", "serve a figserve coordinator at this base URL instead of running locally (scale and experiments come from the coordinator)")
	workerID := flag.String("worker-id", "", "worker name in coordinator logs (default: host-pid)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	flag.Parse()

	args := flag.Args()
	if *worker != "" {
		// Worker mode: the coordinator owns the scale and experiment set;
		// local selections would silently disagree with the fleet's matrix,
		// so refuse them rather than ignore them.
		if len(args) != 0 {
			fmt.Fprintf(os.Stderr, "figbench: -worker takes no experiment arguments (the coordinator picks the matrix); got %v\n", args)
			os.Exit(2)
		}
		id := *workerID
		if id == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "worker"
			}
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		fmt.Printf("figbench: worker %s serving %s\n", id, *worker)
		err := dispatch.RunWorker(*worker, dispatch.WorkerOptions{
			ID:          id,
			Parallelism: *par,
			Logf:        func(format string, a ...any) { fmt.Printf(format+"\n", a...) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "figbench: worker: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("figbench: worker done: matrix complete")
		return
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "figbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeHeapProfile(*memProfile)
	}
	cache := expcache.New(*cacheDir)
	r := harness.NewRunnerWithCache(harness.Scale{
		Insts: *insts, SingleApps: *apps, MixesPerCategory: *mixes,
		MCIterations: *mc, Parallelism: *par,
	}, cache, *force)
	r.SetGangEnabled(*gang)

	// The catalog is the harness's canonical experiment list — the same
	// one figserve workers resolve — plus the CLI-only custom experiment,
	// which needs -workload input and so cannot live in the shared set.
	catalog := append(r.Catalog(), harness.Experiment{
		Name: "custom",
		Run: func() (*stats.Table, error) {
			ws, err := harness.ParseCustomWorkloads(splitList(*customWl))
			if err != nil {
				return nil, err
			}
			return r.Custom(ws)
		},
	})

	want := make(map[string]bool)
	for _, a := range args {
		if a == "all" {
			// "all" is the paper's matrix; custom needs -workload input
			// and is only run when named explicitly.
			for _, e := range catalog {
				if e.Name != "custom" {
					want[e.Name] = true
				}
			}
			continue
		}
		found := false
		for _, e := range catalog {
			if e.Name == a {
				want[a] = true
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "figbench: unknown experiment %q\n", a)
			usage()
			os.Exit(2)
		}
	}

	if *customWl != "" && !want["custom"] {
		// -workload only feeds the custom experiment; silently ignoring it
		// would run the stock matrix and never touch the user's workloads.
		fmt.Fprintln(os.Stderr, "figbench: -workload is set but the custom experiment was not selected (name it explicitly: figbench -workload ... custom)")
		os.Exit(2)
	}

	if *shard != "" {
		// Shard mode: enumerate the selected experiments' full job
		// index, compute only this shard's fingerprint-ordered slice
		// into the cache directory, and describe the split in a
		// manifest so figmerge can validate the reassembled matrix. No
		// tables are rendered — that is the job of an unsharded rerun
		// against the merged directory, which recomputes nothing.
		k, n, err := harness.ParseShard(*shard)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figbench:", err)
			os.Exit(2)
		}
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "figbench: -shard requires -cache-dir (the shard's results must land somewhere)")
			os.Exit(2)
		}
		var names []string
		var builders []func() (*stats.Table, error)
		for _, e := range catalog {
			if want[e.Name] {
				names = append(names, e.Name)
				builders = append(builders, e.Run)
			}
		}
		jobs, err := r.EnumerateJobs(builders...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figbench: enumerating jobs: %v\n", err)
			os.Exit(1)
		}
		mine := harness.ShardJobs(jobs, k, n)
		fmt.Printf("shard %d/%d: %d of %d matrix jobs\n", k, n, len(mine), len(jobs))
		if _, err := r.RunJobs(mine); err != nil {
			fmt.Fprintf(os.Stderr, "figbench: %v\n", err)
			os.Exit(1)
		}
		if err := cache.WriteManifest(r.ShardManifest(jobs, k, n, names)); err != nil {
			fmt.Fprintf(os.Stderr, "figbench: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, e := range catalog {
			if !want[e.Name] {
				continue
			}
			start := time.Now()
			tab, err := e.Run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "figbench: %s: %v\n", e.Name, err)
				os.Exit(1)
			}
			fmt.Println(tab.Render())
			fmt.Printf("(%s completed in %.1fs)\n\n", e.Name, time.Since(start).Seconds())
		}
	}
	if cps := r.SimCyclesPerSecond(); cps > 0 {
		fmt.Printf("simulator throughput: %d cycles in %.1fs of simulation (%.2fM sim-cycles/s)\n",
			r.SimCycles(), r.SimWallSeconds(), cps/1e6)
	}
	st := r.CacheStats()
	fmt.Printf("result cache: hits=%d (mem=%d disk=%d) misses=%d computed=%d systems=%d built+%d reused gangs=%d ganged=%d",
		st.Hits(), st.MemHits, st.DiskHits, st.Misses, st.Stores,
		r.SystemsBuilt(), r.SystemsReused(), r.GangsFormed(), r.GangedRuns())
	if *cacheDir != "" {
		fmt.Printf(" dir=%s", *cacheDir)
	}
	if *shard != "" {
		fmt.Printf(" shard=%s", *shard)
	}
	if st.DiskError > 0 {
		fmt.Printf(" disk-errors=%d", st.DiskError)
	}
	fmt.Println()
}

// writeHeapProfile snapshots the heap into path after a final GC, so the
// profile reflects live retained memory rather than collectable garbage.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figbench: -memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "figbench: -memprofile: %v\n", err)
	}
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: figbench [flags] <experiment>...
experiments: all table1 table2 fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 sec42 sec83 multithreaded ablation custom
(custom runs the workloads named by -workload, e.g. -workload trace:mcf.trc,mix-100-0 custom)`)
	flag.PrintDefaults()
}
