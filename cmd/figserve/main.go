// Command figserve coordinates a fleet of figbench workers computing one
// experiment matrix: it enumerates the matrix, serves fingerprint leases
// over HTTP, tracks heartbeats, re-dispatches expired or straggling
// leases, validates uploaded result entries, and assembles a merged
// cache directory plus a final manifest — then exits.
//
// Usage:
//
//	figserve -cache-dir DIR [-addr :9090] [-lease-ttl 30s] [-batch 4] \
//	         [-insts N] [-apps N] [-mixes N] [-mc N] <experiment>...
//	figserve -cache-dir fleet.cache table2 fig7
//
// Workers are plain figbench processes pointed at the coordinator:
//
//	figbench -worker http://coordinator:9090
//
// They adopt the coordinator's scale and experiment set (no local flags
// to keep in sync) and refuse to serve a coordinator whose engine
// version or enumerated matrix differs from their own build's. When the
// matrix completes, the cache directory serves a warm unsharded rerun
//
//	figbench -insts ... -cache-dir DIR <experiment>...
//
// with misses=0 computed=0 and tables byte-identical to a solo run.
// Restarting figserve over a partially-filled directory resumes: valid
// entries are detected and only the missing fingerprints re-dispatched.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/dispatch"
	"repro/internal/expcache"
	"repro/internal/harness"
)

func main() {
	def := harness.DefaultScale()
	addr := flag.String("addr", ":9090", "HTTP listen address (host:port; port 0 picks a free port)")
	cacheDir := flag.String("cache-dir", "", "destination cache directory for validated entries (required)")
	insts := flag.Int64("insts", def.Insts, "per-core instruction target per run")
	apps := flag.Int("apps", def.SingleApps, "single-core applications to include (max 20)")
	mixes := flag.Int("mixes", def.MixesPerCategory, "eight-core mixes per category (max 5)")
	mc := flag.Int("mc", def.MCIterations, "Monte-Carlo iterations for the circuit model")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "lease lifetime between heartbeats; expired leases are re-dispatched")
	batch := flag.Int("batch", 4, "maximum fingerprints per lease")
	verbose := flag.Bool("v", false, "log every protocol event")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "figserve: -cache-dir is required (validated entries must land somewhere)")
		usage()
		os.Exit(2)
	}
	names := expandAll(args)

	// Plan-only enumeration: the coordinator never simulates.
	r := harness.NewRunner(harness.Scale{
		Insts: *insts, SingleApps: *apps, MixesPerCategory: *mixes, MCIterations: *mc,
	})
	spec, _, manifest, err := dispatch.BuildSpec(r, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figserve:", err)
		os.Exit(1)
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
	}
	coord, err := dispatch.NewCoordinator(spec, expcache.NewDirStore(*cacheDir), dispatch.Options{
		LeaseTTL: *leaseTTL,
		Batch:    *batch,
		Manifest: manifest,
		Logf:     logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "figserve:", err)
		os.Exit(1)
	}
	st := coord.Status()
	fmt.Printf("figserve: matrix %d jobs (%d resumed) over %v\n", st.Total, st.Resumed, names)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figserve:", err)
		os.Exit(1)
	}
	// The smoke test and scripts parse this line to find a :0 port.
	fmt.Printf("figserve: listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Progress heartbeat on stdout until the matrix completes.
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	last := Status{}
	for {
		select {
		case err := <-serveErr:
			fmt.Fprintln(os.Stderr, "figserve:", err)
			os.Exit(1)
		case <-tick.C:
			if st := coord.Status(); st != last {
				last = st
				fmt.Printf("figserve: %d/%d done, %d leases active, %d uploads (%d rejected)\n",
					st.Done, st.Total, st.Leases, st.Uploads, st.Rejected)
			}
		case <-coord.Done():
			st := coord.Status()
			fmt.Printf("figserve: complete: %d jobs (%d resumed, %d uploaded, %d rejected), manifest written to %s\n",
				st.Total, st.Resumed, st.Uploads, st.Rejected, *cacheDir)
			// Drain: idle workers learn of completion on their next lease
			// poll (the finishing worker already learned from its upload
			// ack), so keep answering for a couple of poll intervals.
			time.Sleep(2500 * time.Millisecond)
			srv.Close()
			return
		}
	}
}

// Status aliases dispatch.Status for the change-detection comparison.
type Status = dispatch.Status

// expandAll replaces the "all" shorthand with the full catalog, matching
// figbench's convention (custom is excluded: it needs -workload input).
func expandAll(args []string) []string {
	names := make([]string, 0, len(args))
	for _, a := range args {
		if a == "all" {
			r := harness.NewRunner(harness.QuickScale())
			for _, e := range r.Catalog() {
				names = append(names, e.Name)
			}
			continue
		}
		names = append(names, a)
	}
	return names
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: figserve -cache-dir DIR [flags] <experiment>...
experiments: all table1 table2 fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 sec42 sec83 multithreaded ablation
workers: figbench -worker http://HOST:PORT`)
	flag.PrintDefaults()
}
