// Command fglint machine-enforces the simulator's standing invariants:
// deterministic iteration in result-affecting code (maprange), no
// wall-clock/global-rand/environment reads on the timing path
// (nondeterm), Reset methods that cover every simulation-mutated field
// (resetcomplete), and — with -base — EngineVersion bumps for
// timing-path changes (versionguard).
//
// Usage:
//
//	fglint [-list] [-only analyzer] [-base ref] [packages...]
//
// Package patterns are module-relative ("./...", "./internal/sim",
// "internal/harness/..."); the default is ./... from the module root.
// Exit status: 0 clean, 1 findings, 2 usage or internal error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/versionguard"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("fglint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	list := fs.Bool("list", false, "list the available analyzers and exit")
	only := fs.String("only", "", "run only the named analyzer")
	base := fs.String("base", "", "also run versionguard against the merge-base with this git ref")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fglint [-list] [-only analyzer] [-base ref] [packages...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the unknown-flag message
	}

	all := lint.Analyzers()
	if *list {
		if fs.NArg() > 0 || *only != "" || *base != "" {
			fmt.Fprintln(os.Stderr, "fglint: -list takes no other flags or arguments")
			return 2
		}
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-14s %s\n", versionguard.Name, versionguard.Doc)
		return 0
	}

	analyzers := all
	runVersionGuard := *base != ""
	if *only != "" {
		analyzers = nil
		for _, a := range all {
			if a.Name == *only {
				analyzers = []*analysis.Analyzer{a}
				break
			}
		}
		switch {
		case *only == versionguard.Name:
			if *base == "" {
				fmt.Fprintf(os.Stderr, "fglint: -only %s requires -base <ref>\n", versionguard.Name)
				return 2
			}
		case analyzers == nil:
			fmt.Fprintf(os.Stderr, "fglint: unknown analyzer %q (see fglint -list)\n", *only)
			return 2
		default:
			runVersionGuard = false // a single AST analyzer was selected
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fglint: %v\n", err)
		return 2
	}

	findings := 0
	if len(analyzers) > 0 {
		diags, err := lint.CheckModule(root, analyzers, fs.Args()...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fglint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d)
		}
		findings += len(diags)
	}
	if runVersionGuard {
		vg, err := versionguard.Check(root, *base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fglint: %v\n", err)
			return 2
		}
		for _, f := range vg {
			fmt.Printf("[%s] %s\n", versionguard.Name, f.Message)
		}
		findings += len(vg)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "fglint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
