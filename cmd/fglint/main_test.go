package main

import "testing"

// The exit-code contract is part of the tool's interface: CI keys off
// it, so lock it down. run() prints to stdout/stderr; these tests only
// assert the codes.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list", []string{"-list"}, 0},
		{"list rejects extra args", []string{"-list", "./..."}, 2},
		{"unknown flag", []string{"-frobnicate"}, 2},
		{"unknown analyzer", []string{"-only", "nosuchcheck"}, 2},
		{"only versionguard needs base", []string{"-only", "versionguard"}, 2},
		{"bad package pattern", []string{"no/such/dir"}, 2},
		{"single analyzer clean tree", []string{"-only", "maprange", "./internal/dram"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args); got != tc.want {
				t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

func TestFullSuiteCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	if got := run([]string{"./..."}); got != 0 {
		t.Errorf("run(./...) = %d, want 0 (tree must stay fglint-clean)", got)
	}
}
