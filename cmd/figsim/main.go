// Command figsim runs one simulated system configuration on one workload
// and prints its statistics: the quickest way to inspect a single run.
// Workloads are anything the workload package resolves: Table-2
// benchmarks, eight-core mixes, multithreaded applications, or recorded
// binary traces ("trace:FILE", see tracegen -o). Trace replay is
// deterministic — two runs of the same trace print identical statistics.
//
// Usage:
//
//	figsim -preset FIGCache-Fast -workload mcf -insts 400000
//	figsim -preset Base -workload mix-100-0 -insts 200000
//	figsim -preset FIGCache-Fast -workload trace:mcf.trc
//	figsim -list
//
// Checkpoint/restore: -checkpoint-at N pauses the run once N
// instructions have retired (summed across cores) and writes the full
// machine state to -checkpoint-out as an FGSS snapshot, then finishes
// the run. -restore FILE resumes a snapshotted run instead of starting
// from cycle zero; the remaining flags must describe the snapshotted
// configuration exactly (the snapshot header pins the config
// fingerprint and the engine version, and restore refuses a mismatch).
// A restored run prints statistics bit-identical to the uninterrupted
// run — checkpointing is invisible in the results.
//
//	figsim -workload mcf -checkpoint-at 200000 -checkpoint-out mcf.fgss
//	figsim -workload mcf -restore mcf.fgss
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	preset := flag.String("preset", "FIGCache-Fast",
		"configuration: Base, LISA-VILLA, FIGCache-Slow, FIGCache-Fast, FIGCache-Ideal, LL-DRAM")
	wl := flag.String("workload", "mcf",
		"benchmark name (single-core), mix name like mix-100-0 (eight-core), mt-<app> (multithreaded), or trace:FILE (recorded trace)")
	insts := flag.Int64("insts", 400_000, "per-core instruction target")
	seed := flag.Uint64("seed", 1, "trace generation seed")
	list := flag.Bool("list", false, "list available presets and workloads, then exit")
	ckptAt := flag.Int64("checkpoint-at", 0,
		"pause after this many retired instructions (total across cores) and write a snapshot (0 = off)")
	ckptOut := flag.String("checkpoint-out", "",
		"snapshot output file for -checkpoint-at")
	restore := flag.String("restore", "",
		"resume from a snapshot file instead of starting fresh (config flags must match the snapshot)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	flag.Parse()

	if *list {
		printCatalog()
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeHeapProfile(*memProfile)
	}
	p, err := parsePreset(*preset)
	if err != nil {
		fatal(err)
	}
	mix, shared, err := findWorkload(*wl)
	if err != nil {
		fatal(err)
	}

	cfg := sim.DefaultConfig(p, mix)
	cfg.TargetInsts = *insts
	cfg.Seed = *seed
	cfg.SharedFootprint = shared
	system, err := sim.New(cfg)
	if err != nil {
		fatal(err)
	}
	if *restore != "" {
		if err := restoreSnapshot(system, *restore); err != nil {
			fatal(err)
		}
	}
	if *ckptAt > 0 {
		if *ckptOut == "" {
			fatal(fmt.Errorf("-checkpoint-at needs -checkpoint-out FILE"))
		}
		system.RunUntilRetired(*ckptAt)
		if err := writeSnapshot(system, *ckptOut); err != nil {
			fatal(err)
		}
	}
	res, err := system.Run()
	if err != nil {
		fatal(err)
	}
	printResult(system.Config(), res)
	printLatencyTail(system)
}

// writeHeapProfile snapshots the heap into path after a final GC, so the
// profile reflects live retained memory rather than collectable garbage.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figsim: -memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "figsim: -memprofile:", err)
	}
}

// writeSnapshot checkpoints the system's full state to path.
func writeSnapshot(system *sim.System, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := system.Snapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// restoreSnapshot resumes the system from a snapshot file.
func restoreSnapshot(system *sim.System, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return system.Restore(f)
}

// printLatencyTail reports sampled read-latency percentiles from the
// controllers' bounded latency reservoirs: the mean alone hides the
// queueing/refresh tail. Per-channel reservoirs are merged weighted by
// each channel's read count, so a busy channel dominates the tail the
// way it dominates the traffic.
func printLatencyTail(system *sim.System) {
	ctrls := system.Controllers()
	sets := make([][]int64, len(ctrls))
	streamLens := make([]int64, len(ctrls))
	samples := 0
	for i, c := range ctrls {
		sets[i] = c.LatencySamples()
		streamLens[i] = c.NumReads
		samples += len(sets[i])
	}
	vals := stats.WeightedPercentiles(sets, streamLens, []float64{0.50, 0.90, 0.99})
	if vals == nil {
		return
	}
	tm := ctrls[0].Channel().Slow
	fmt.Printf("           read latency p50/p90/p99: %.1f / %.1f / %.1f ns (from %d sampled reads)\n",
		tm.NS(vals[0]), tm.NS(vals[1]), tm.NS(vals[2]), samples)
}

func parsePreset(name string) (sim.Preset, error) {
	for _, p := range sim.Presets() {
		if strings.EqualFold(p.String(), name) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown preset %q (try -list)", name)
}

// findWorkload resolves the -workload argument; an unknown name gets a
// closest-match suggestion so a typo'd mix name is a one-glance fix.
func findWorkload(name string) (workload.Mix, bool, error) {
	mix, shared, err := workload.FindMix(name)
	if err == nil {
		return mix, shared, nil
	}
	if !strings.HasPrefix(name, "trace:") {
		if s := workload.Suggest(name, workload.MixNames()); s != "" {
			return workload.Mix{}, false, fmt.Errorf("unknown workload %q — did you mean %q? (try -list)", name, s)
		}
	}
	return workload.Mix{}, false, fmt.Errorf("%v (try -list)", err)
}

func printCatalog() {
	fmt.Println("presets:")
	for _, p := range sim.Presets() {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println("single-core benchmarks (Table 2):")
	for _, s := range workload.Benchmarks() {
		class := "non-intensive"
		if s.MemIntensive {
			class = "intensive"
		}
		fmt.Printf("  %-12s %s\n", s.Name, class)
	}
	fmt.Println("eight-core mixes:")
	for _, m := range workload.EightCoreMixes() {
		fmt.Printf("  %-12s %d%% intensive\n", m.Name, m.IntensivePercent)
	}
	fmt.Println("multithreaded (prefix with mt-):")
	for _, m := range workload.MultithreadedWorkloads() {
		fmt.Printf("  mt-%s\n", m.Name)
	}
	fmt.Println("recorded traces:")
	fmt.Println("  trace:FILE    replay a binary trace recorded with tracegen -o FILE")
}

func printResult(cfg sim.Config, res sim.Result) {
	fmt.Printf("preset:    %s\n", res.Preset)
	fmt.Printf("workload:  %s (%d cores, %d channels)\n", res.Workload, len(res.Cores), cfg.Channels)
	fmt.Printf("cycles:    %d\n", res.Cycles)
	for _, c := range res.Cores {
		fmt.Printf("  core %-12s IPC %.4f (%d insts)\n", c.App, c.IPC, c.Insts)
	}
	fmt.Printf("IPC sum:   %.4f\n", res.IPCSum())
	fmt.Printf("LLC MPKI:  %.1f\n", res.LLCMPKI())
	fmt.Printf("DRAM:      reads %d, writes %d, avg read latency %.1f ns\n",
		res.MemReads, res.MemWrites, res.AvgReadLatencyNS)
	fmt.Printf("           ACT %d (fast %d), PRE %d, REF %d, RELOC %d, RBM hops %d\n",
		res.DRAM.ACT, res.DRAM.ACTFast, res.DRAM.PRE, res.DRAM.REF, res.DRAM.RELOC, res.DRAM.RBMHops)
	fmt.Printf("row buffer hit rate: %.1f%%\n", res.RowBufferHitRate()*100)
	if res.CacheHits+res.CacheMisses > 0 {
		fmt.Printf("in-DRAM cache: hit rate %.1f%%, %d insertions\n",
			res.InDRAMCacheHitRate()*100, res.Inserted)
	}
	b := energy.Compute(energy.DefaultParams(), res, len(res.Cores), cfg.Channels, res.Preset != sim.Base && res.Preset != sim.LLDRAM)
	fmt.Printf("energy:    total %.3f mJ (CPU %.3f, L1&L2 %.3f, LLC %.3f, off-chip %.3f, DRAM %.3f)\n",
		b.Total()*1e3, b.CPU*1e3, b.L1L2*1e3, b.LLC*1e3, b.OffChip*1e3, b.DRAM*1e3)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figsim:", err)
	os.Exit(1)
}
