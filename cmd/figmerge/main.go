// Command figmerge reassembles an experiment matrix computed in shards:
// it merges the result-cache directories that figbench -shard runs filled
// on separate machines into one directory an unsharded figbench run can
// render from without recomputing anything.
//
// Usage:
//
//	figmerge [-force] [-dry-run] -out DIR SRC_DIR...
//	figmerge -out merged .cache-shard1 .cache-shard2
//
// Before writing a single file, figmerge validates the merge end to end:
// every result entry must parse and carry the current engine/format
// stamps under its claimed fingerprint, every shard manifest must
// describe the same matrix, the union of shards should cover it, every
// fingerprint assigned to a present shard must have an entry, no entry
// may fall outside the matrix, and no two sources may disagree on an
// entry's bytes (the simulator is deterministic — disagreement means the
// shards ran different engine builds or configurations). Any violation
// aborts the merge with nothing written.
//
// -force proceeds anyway on a first-source-wins basis; missing pieces
// stay missing and are recomputed by the next figbench run against the
// merged directory. That is also how deliberate partial merges are done
// (e.g. folding in shards as they finish). -dry-run validates and
// reports without writing.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/expcache"
)

func main() {
	out := flag.String("out", "", "destination cache directory (created if missing; may be one of the sources)")
	force := flag.Bool("force", false, "merge despite validation problems (first source wins on conflicts)")
	dryRun := flag.Bool("dry-run", false, "validate and report only; write nothing")
	flag.Parse()

	srcs := flag.Args()
	if *out == "" && !*dryRun {
		fmt.Fprintln(os.Stderr, "figmerge: -out is required (or use -dry-run)")
		usage()
		os.Exit(2)
	}
	if len(srcs) == 0 {
		fmt.Fprintln(os.Stderr, "figmerge: no source directories")
		usage()
		os.Exit(2)
	}

	rep, err := merge(*out, srcs, *force, *dryRun)
	if rep != nil {
		for _, p := range rep.Problems() {
			fmt.Fprintln(os.Stderr, "figmerge: problem:", p)
		}
		fmt.Println("figmerge:", rep.Summary())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figmerge:", err)
		os.Exit(1)
	}
	if *dryRun && rep != nil && len(rep.Problems()) > 0 {
		os.Exit(1)
	}
}

// merge runs the validation-plus-copy; with dryRun it validates via a
// forced merge into nowhere by asking Merge to stop before writing.
func merge(out string, srcs []string, force, dryRun bool) (*expcache.MergeReport, error) {
	if dryRun {
		return expcache.Validate(srcs)
	}
	return expcache.Merge(out, srcs, force)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: figmerge [-force] [-dry-run] -out DIR SRC_DIR...")
	flag.PrintDefaults()
}
