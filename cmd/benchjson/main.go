// Command benchjson converts `go test -bench` output into JSON, so CI
// can archive benchmark results as machine-readable artifacts:
//
//	go test ./internal/sim/ -run NONE -bench . -benchmem | tee /dev/stderr | benchjson -o BENCH_sim.json
//
// Reads the benchmark text from stdin (or the files named as
// arguments), writes JSON to -o (default stdout). Non-benchmark lines
// are ignored, so the raw combined output of a multi-package run pipes
// straight through.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchjson"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if args := flag.Args(); len(args) > 0 {
		readers := make([]io.Reader, 0, len(args))
		for _, name := range args {
			f, err := os.Open(name)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}

	run, err := benchjson.Parse(in)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := run.Write(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
