// Command tracegen emits synthetic benchmark traces as text, one record
// per line ("<bubbles> <hex addr> R|W"), for inspecting the workload
// model or feeding external tools.
//
// Usage:
//
//	tracegen -bench mcf -n 1000 -seed 1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "mcf", "benchmark name from Table 2")
	n := flag.Int("n", 1000, "number of trace records to emit")
	seed := flag.Uint64("seed", 1, "generator seed")
	base := flag.Uint64("base", 0, "address window base")
	stats := flag.Bool("stats", false, "print a summary instead of records")
	flag.Parse()

	spec, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	gen, err := workload.NewGenerator(spec, *seed, *base, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if *stats {
		printStats(spec, gen, *n)
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := 0; i < *n; i++ {
		rec := gen.Next()
		kind := "R"
		if rec.IsWrite {
			kind = "W"
		}
		fmt.Fprintf(w, "%d %#x %s\n", rec.Bubbles, rec.Addr, kind)
	}
}

func printStats(spec workload.BenchSpec, gen *workload.Generator, n int) {
	segs := make(map[uint64]int)
	writes, bubbles := 0, 0
	for i := 0; i < n; i++ {
		rec := gen.Next()
		segs[rec.Addr/1024]++
		if rec.IsWrite {
			writes++
		}
		bubbles += rec.Bubbles
	}
	fmt.Printf("benchmark:       %s (intensive=%v)\n", spec.Name, spec.MemIntensive)
	fmt.Printf("records:         %d\n", n)
	fmt.Printf("distinct 1 kB segments: %d\n", len(segs))
	fmt.Printf("write fraction:  %.3f (spec %.2f)\n", float64(writes)/float64(n), spec.WriteFrac)
	fmt.Printf("mean bubbles:    %.1f (spec %d)\n", float64(bubbles)/float64(n), spec.Bubbles)
	max := 0
	for _, c := range segs {
		if c > max {
			max = c
		}
	}
	fmt.Printf("max segment visits: %d\n", max)
}
