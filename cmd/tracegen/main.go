// Command tracegen emits synthetic benchmark traces — as text ("<bubbles>
// <hex addr> R|W", one record per line) for inspection, or as the compact
// versioned binary trace format (-o) that figsim and figbench replay with
// "-workload trace:FILE". It also decodes binary traces back to text
// (-dump), so the two formats can be diffed record for record.
//
// Usage:
//
//	tracegen -bench mcf -n 1000 -seed 1          # text to stdout
//	tracegen -bench mcf -n 200000 -o mcf.trc     # record a binary trace
//	tracegen -dump mcf.trc                       # binary back to text
//	tracegen -bench mcf -n 100000 -stats         # workload summary
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
)

func main() {
	flag.Usage = usage
	bench := flag.String("bench", "mcf", "benchmark name from Table 2")
	n := flag.Int("n", 1000, "number of trace records to emit (must be positive)")
	seed := flag.Uint64("seed", 1, "generator seed")
	base := flag.Uint64("base", 0, "address window base")
	stats := flag.Bool("stats", false, "print a summary instead of records")
	out := flag.String("o", "", "record a binary trace to this file instead of printing text")
	dump := flag.String("dump", "", "decode a binary trace file to text and exit (ignores generator flags)")
	flag.Parse()

	if args := flag.Args(); len(args) > 0 {
		fmt.Fprintf(os.Stderr, "tracegen: unexpected argument %q\n", args[0])
		usage()
		os.Exit(2)
	}

	if *dump != "" {
		if err := dumpTrace(*dump); err != nil {
			fatal(err)
		}
		return
	}

	if *n <= 0 {
		fmt.Fprintf(os.Stderr, "tracegen: -n must be positive, got %d\n", *n)
		usage()
		os.Exit(2)
	}
	if *out != "" && *stats {
		fmt.Fprintln(os.Stderr, "tracegen: -stats and -o are mutually exclusive")
		usage()
		os.Exit(2)
	}
	if *out != "" && *base != 0 {
		// The binary header records the span only; a nonzero base would
		// bake a rotation into the addresses that replay cannot undo.
		fmt.Fprintln(os.Stderr, "tracegen: -o records address-window-relative traces; use -base 0 (the default)")
		usage()
		os.Exit(2)
	}
	spec, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	gen, err := workload.NewGenerator(spec, *seed, *base, 0)
	if err != nil {
		fatal(err)
	}

	switch {
	case *out != "":
		if err := record(gen, *out, *n); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d %s records (span %d bytes) to %s\n", *n, spec.Name, gen.Span(), *out)
	case *stats:
		printStats(spec, gen, *n)
	default:
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for i := 0; i < *n; i++ {
			fmt.Fprintln(w, workload.FormatTextRecord(gen.Next()))
		}
	}
}

// record writes n generator records as a binary trace file.
func record(gen *workload.Generator, path string, n int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tw, err := workload.NewTraceWriter(f, gen.Span(), uint64(n))
	if err != nil {
		f.Close()
		return err
	}
	for i := 0; i < n; i++ {
		if err := tw.Write(gen.Next()); err != nil {
			f.Close()
			return err
		}
	}
	if err := tw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dumpTrace decodes a binary trace to the text format, line by line — by
// construction the exact text tracegen would have printed for the same
// records, so text and binary outputs diff clean.
func dumpTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := workload.NewTraceScanner(bufio.NewReader(f))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for s.Scan() {
		fmt.Fprintln(w, workload.FormatTextRecord(s.Record()))
	}
	return s.Err()
}

func printStats(spec workload.BenchSpec, gen *workload.Generator, n int) {
	segs := make(map[uint64]int)
	writes, bubbles := 0, 0
	for i := 0; i < n; i++ {
		rec := gen.Next()
		segs[rec.Addr/1024]++
		if rec.IsWrite {
			writes++
		}
		bubbles += rec.Bubbles
	}
	fmt.Printf("benchmark:       %s (intensive=%v)\n", spec.Name, spec.MemIntensive)
	fmt.Printf("records:         %d\n", n)
	fmt.Printf("distinct 1 kB segments: %d\n", len(segs))
	fmt.Printf("write fraction:  %.3f (spec %.2f)\n", float64(writes)/float64(n), spec.WriteFrac)
	fmt.Printf("mean bubbles:    %.1f (spec %d)\n", float64(bubbles)/float64(n), spec.Bubbles)
	max := 0
	for _, c := range segs {
		if c > max {
			max = c
		}
	}
	fmt.Printf("max segment visits: %d\n", max)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tracegen [-bench NAME] [-n N] [-seed S] [-base B] [-stats | -o FILE]
       tracegen -dump FILE`)
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
