package repro_bench

import (
	"bufio"
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCommandsSmoke builds the cmd/* binaries and drives their
// user-facing contracts end to end: catalog listing, workload stats,
// input validation, the record→replay loop (byte-identical statistics on
// a second replay — the determinism promise the trace format makes), the
// text↔binary round trip, and figmerge's refuse-by-default validation.
// Before this test the commands were compiled but never executed by the
// test suite.
func TestCommandsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping command execution in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}

	binDir := t.TempDir()
	build := exec.Command(goBin, "build", "-o", binDir, "./cmd/...")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building commands: %v\n%s", err, out)
	}
	workDir := t.TempDir()

	// run executes a built binary and returns its combined output; the
	// returned error is nil iff the binary exited zero.
	run := func(t *testing.T, name string, args ...string) (string, error) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		cmd := exec.CommandContext(ctx, filepath.Join(binDir, name), args...)
		cmd.Dir = workDir
		out, err := cmd.CombinedOutput()
		return string(out), err
	}
	mustRun := func(t *testing.T, name string, args ...string) string {
		t.Helper()
		out, err := run(t, name, args...)
		if err != nil {
			t.Fatalf("%s %v failed: %v\n%s", name, args, err, out)
		}
		return out
	}

	t.Run("figsim-list", func(t *testing.T) {
		t.Parallel()
		out := mustRun(t, "figsim", "-list")
		for _, want := range []string{"presets:", "FIGCache-Fast", "mix-100-0", "mt-canneal", "trace:FILE"} {
			if !strings.Contains(out, want) {
				t.Errorf("figsim -list missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("figsim-did-you-mean", func(t *testing.T) {
		t.Parallel()
		out, err := run(t, "figsim", "-workload", "mix-100-O", "-insts", "1000")
		if err == nil {
			t.Fatal("figsim accepted a typo'd workload")
		}
		if !strings.Contains(out, `did you mean "mix-100-0"`) {
			t.Errorf("no suggestion for typo'd mix name:\n%s", out)
		}
	})

	t.Run("tracegen-stats", func(t *testing.T) {
		t.Parallel()
		out := mustRun(t, "tracegen", "-bench", "mcf", "-n", "5000", "-stats")
		for _, want := range []string{"benchmark:", "mcf", "write fraction:"} {
			if !strings.Contains(out, want) {
				t.Errorf("tracegen -stats missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("tracegen-rejects-bad-input", func(t *testing.T) {
		t.Parallel()
		for _, args := range [][]string{
			{"-n", "0"},
			{"-n", "-5"},
			{"-no-such-flag"},
			{"unexpected-positional"},
			{"-bench", "nosuch"},
			{"-stats", "-o", "conflict.trc"},
			{"-base", "4096", "-o", "rebased.trc"},
		} {
			out, err := run(t, "tracegen", args...)
			if err == nil {
				t.Errorf("tracegen %v exited zero:\n%s", args, out)
			}
		}
		// Validation failures must explain themselves.
		out, _ := run(t, "tracegen", "-n", "0")
		if !strings.Contains(out, "usage:") || !strings.Contains(out, "-n must be positive") {
			t.Errorf("tracegen -n 0 printed no usage message:\n%s", out)
		}
	})

	t.Run("record-replay-deterministic", func(t *testing.T) {
		t.Parallel()
		trc := filepath.Join(workDir, "smoke-mcf.trc")
		mustRun(t, "tracegen", "-bench", "mcf", "-n", "20000", "-o", trc)
		args := []string{"-preset", "FIGCache-Fast", "-workload", "trace:" + trc, "-insts", "10000"}
		first := mustRun(t, "figsim", args...)
		second := mustRun(t, "figsim", args...)
		if first != second {
			t.Errorf("two replays of one trace printed different statistics:\n--- first\n%s\n--- second\n%s", first, second)
		}
		if !strings.Contains(first, "trace:") {
			t.Errorf("replay output does not name the trace workload:\n%s", first)
		}
	})

	t.Run("checkpoint-restore-identical-stats", func(t *testing.T) {
		t.Parallel()
		args := []string{"-preset", "FIGCache-Fast", "-workload", "mcf", "-insts", "20000"}
		snap := filepath.Join(workDir, "smoke-ckpt.fgss")

		full := mustRun(t, "figsim", args...)
		// Checkpoint mid-run, then let the same process finish: statistics
		// must be untouched by the snapshot detour.
		ckpt := mustRun(t, "figsim", append([]string{"-checkpoint-at", "7000", "-checkpoint-out", snap}, args...)...)
		if full != ckpt {
			t.Errorf("checkpointing changed the statistics:\n--- full\n%s\n--- checkpointed\n%s", full, ckpt)
		}
		// A fresh process restored from the snapshot must finish with
		// byte-identical statistics — the bit-exact resume promise.
		restored := mustRun(t, "figsim", append([]string{"-restore", snap}, args...)...)
		if full != restored {
			t.Errorf("restore diverged from the uninterrupted run:\n--- full\n%s\n--- restored\n%s", full, restored)
		}

		// A snapshot only restores into the configuration that wrote it.
		out, err := run(t, "figsim", "-restore", snap, "-preset", "FIGCache-Fast", "-workload", "gcc", "-insts", "20000")
		if err == nil {
			t.Fatalf("figsim restored a snapshot into a different workload:\n%s", out)
		}
		if !strings.Contains(out, "restore refused") {
			t.Errorf("mismatched restore did not say why it refused:\n%s", out)
		}
	})

	t.Run("text-binary-round-trip", func(t *testing.T) {
		t.Parallel()
		trc := filepath.Join(workDir, "smoke-rt.trc")
		text := mustRun(t, "tracegen", "-bench", "gcc", "-n", "2000", "-seed", "7")
		mustRun(t, "tracegen", "-bench", "gcc", "-n", "2000", "-seed", "7", "-o", trc)
		dump := mustRun(t, "tracegen", "-dump", trc)
		if !bytes.Equal([]byte(text), []byte(dump)) {
			t.Error("text output and binary dump of the same generation differ")
		}
	})

	t.Run("figbench-workload-needs-custom", func(t *testing.T) {
		t.Parallel()
		out, err := run(t, "figbench", "-workload", "trace:whatever.trc", "table1")
		if err == nil {
			t.Fatalf("figbench silently ignored -workload without the custom experiment:\n%s", out)
		}
		if !strings.Contains(out, "custom") {
			t.Errorf("refusal does not point at the custom experiment:\n%s", out)
		}
	})

	// startFigserve launches the coordinator on an ephemeral port and
	// parses the base URL from its "listening on" line. The output method
	// is only safe after wait() has returned.
	type figserveProc struct {
		cmd      *exec.Cmd
		url      string
		out, err bytes.Buffer
		scanDone chan struct{}
	}
	startFigserve := func(t *testing.T, args ...string) *figserveProc {
		t.Helper()
		p := &figserveProc{scanDone: make(chan struct{})}
		p.cmd = exec.Command(filepath.Join(binDir, "figserve"), args...)
		p.cmd.Dir = workDir
		stdout, err := p.cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		p.cmd.Stderr = &p.err
		if err := p.cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.cmd.Process.Kill() })
		urlCh := make(chan string, 1)
		go func() {
			defer close(p.scanDone)
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				p.out.WriteString(line + "\n")
				if rest, ok := strings.CutPrefix(line, "figserve: listening on "); ok {
					select {
					case urlCh <- rest:
					default:
					}
				}
			}
		}()
		select {
		case p.url = <-urlCh:
			return p
		case <-time.After(30 * time.Second):
			_ = p.cmd.Process.Kill()
			<-p.scanDone
			t.Fatalf("figserve never printed its listening address:\n%s%s", p.out.String(), p.err.String())
			return nil
		}
	}
	// wait drains figserve's stdout to EOF, then reaps the process; the
	// combined output is complete once it returns.
	waitFigserve := func(p *figserveProc) (string, error) {
		select {
		case <-p.scanDone:
		case <-time.After(2 * time.Minute):
			_ = p.cmd.Process.Kill()
			<-p.scanDone
		}
		err := p.cmd.Wait()
		return p.out.String() + p.err.String(), err
	}
	scaleArgs := []string{"-insts", "8000", "-apps", "2", "-mixes", "1", "-mc", "100"}

	t.Run("figserve-fleet-warm-rerun", func(t *testing.T) {
		t.Parallel()
		dir := filepath.Join(workDir, "fleet-cache")
		serveArgs := append(append([]string{"-addr", "127.0.0.1:0", "-cache-dir", dir, "-lease-ttl", "10s", "-batch", "2"}, scaleArgs...), "table2", "fig7")
		serve := startFigserve(t, serveArgs...)

		// Two worker processes split the matrix between them.
		errs := make(chan error, 2)
		outs := make([]string, 2)
		for i := range outs {
			go func(i int) {
				out, err := run(t, "figbench", "-worker", serve.url, "-worker-id", []string{"w1", "w2"}[i])
				outs[i] = out
				errs <- err
			}(i)
		}
		for i := 0; i < 2; i++ {
			if err := <-errs; err != nil {
				t.Fatalf("worker failed: %v\n--- w1\n%s\n--- w2\n%s", err, outs[0], outs[1])
			}
		}
		serveOut, err := waitFigserve(serve)
		if err != nil {
			t.Fatalf("figserve exited nonzero: %v\n%s", err, serveOut)
		}
		if !strings.Contains(serveOut, "figserve: complete:") {
			t.Errorf("figserve never reported completion:\n%s", serveOut)
		}
		for i, out := range outs {
			if !strings.Contains(out, "matrix complete") {
				t.Errorf("worker %d did not report a complete matrix:\n%s", i+1, out)
			}
		}
		// The assembled directory serves a warm unsharded rerun without a
		// single recomputation.
		warm := mustRun(t, "figbench", append(append([]string{"-cache-dir", dir}, scaleArgs...), "table2", "fig7")...)
		if !strings.Contains(warm, "misses=0 computed=0") {
			t.Errorf("warm rerun over the fleet directory recomputed work:\n%s", warm)
		}
	})

	t.Run("figserve-restart-resume", func(t *testing.T) {
		t.Parallel()
		dir := filepath.Join(workDir, "resume-cache")
		// Seed a partial directory the way an interrupted fleet leaves one:
		// a 1-of-2 shard run computes half the table2 matrix into it.
		mustRun(t, "figbench", append(append([]string{"-shard", "1/2", "-cache-dir", dir}, scaleArgs...), "table2")...)

		serveArgs := append(append([]string{"-addr", "127.0.0.1:0", "-cache-dir", dir, "-lease-ttl", "10s", "-batch", "2"}, scaleArgs...), "table2")
		// First coordinator incarnation adopts the partial entries, then
		// dies before any worker shows up.
		serve1 := startFigserve(t, serveArgs...)
		if err := serve1.cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		out1, _ := waitFigserve(serve1)
		if !strings.Contains(out1, "(1 resumed)") {
			t.Fatalf("first incarnation did not resume the shard's entry:\n%s", out1)
		}

		// The restarted coordinator resumes the same entry and dispatches
		// only the remainder to a single worker.
		serve2 := startFigserve(t, serveArgs...)
		if out, err := run(t, "figbench", "-worker", serve2.url); err != nil {
			t.Fatalf("worker failed: %v\n%s", err, out)
		}
		out2, err := waitFigserve(serve2)
		if err != nil {
			t.Fatalf("figserve exited nonzero: %v\n%s", err, out2)
		}
		if !strings.Contains(out2, "(1 resumed)") {
			t.Fatalf("restarted coordinator did not resume:\n%s", out2)
		}
		if !strings.Contains(out2, "figserve: complete:") {
			t.Errorf("restarted coordinator never completed:\n%s", out2)
		}
		warm := mustRun(t, "figbench", append(append([]string{"-cache-dir", dir}, scaleArgs...), "table2")...)
		if !strings.Contains(warm, "misses=0 computed=0") {
			t.Errorf("warm rerun after restart-resume recomputed work:\n%s", warm)
		}
	})

	t.Run("figmerge-dry-run-refusal", func(t *testing.T) {
		t.Parallel()
		empty := filepath.Join(workDir, "empty-cache")
		if err := os.MkdirAll(empty, 0o755); err != nil {
			t.Fatal(err)
		}
		out, err := run(t, "figmerge", "-dry-run", empty)
		if err == nil {
			t.Fatalf("figmerge -dry-run validated an empty cache directory:\n%s", out)
		}
		if !strings.Contains(out, "problem:") {
			t.Errorf("refusal did not report its problems:\n%s", out)
		}
	})
}
