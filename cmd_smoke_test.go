package repro_bench

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCommandsSmoke builds the cmd/* binaries and drives their
// user-facing contracts end to end: catalog listing, workload stats,
// input validation, the record→replay loop (byte-identical statistics on
// a second replay — the determinism promise the trace format makes), the
// text↔binary round trip, and figmerge's refuse-by-default validation.
// Before this test the commands were compiled but never executed by the
// test suite.
func TestCommandsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping command execution in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}

	binDir := t.TempDir()
	build := exec.Command(goBin, "build", "-o", binDir, "./cmd/...")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building commands: %v\n%s", err, out)
	}
	workDir := t.TempDir()

	// run executes a built binary and returns its combined output; the
	// returned error is nil iff the binary exited zero.
	run := func(t *testing.T, name string, args ...string) (string, error) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		cmd := exec.CommandContext(ctx, filepath.Join(binDir, name), args...)
		cmd.Dir = workDir
		out, err := cmd.CombinedOutput()
		return string(out), err
	}
	mustRun := func(t *testing.T, name string, args ...string) string {
		t.Helper()
		out, err := run(t, name, args...)
		if err != nil {
			t.Fatalf("%s %v failed: %v\n%s", name, args, err, out)
		}
		return out
	}

	t.Run("figsim-list", func(t *testing.T) {
		t.Parallel()
		out := mustRun(t, "figsim", "-list")
		for _, want := range []string{"presets:", "FIGCache-Fast", "mix-100-0", "mt-canneal", "trace:FILE"} {
			if !strings.Contains(out, want) {
				t.Errorf("figsim -list missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("figsim-did-you-mean", func(t *testing.T) {
		t.Parallel()
		out, err := run(t, "figsim", "-workload", "mix-100-O", "-insts", "1000")
		if err == nil {
			t.Fatal("figsim accepted a typo'd workload")
		}
		if !strings.Contains(out, `did you mean "mix-100-0"`) {
			t.Errorf("no suggestion for typo'd mix name:\n%s", out)
		}
	})

	t.Run("tracegen-stats", func(t *testing.T) {
		t.Parallel()
		out := mustRun(t, "tracegen", "-bench", "mcf", "-n", "5000", "-stats")
		for _, want := range []string{"benchmark:", "mcf", "write fraction:"} {
			if !strings.Contains(out, want) {
				t.Errorf("tracegen -stats missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("tracegen-rejects-bad-input", func(t *testing.T) {
		t.Parallel()
		for _, args := range [][]string{
			{"-n", "0"},
			{"-n", "-5"},
			{"-no-such-flag"},
			{"unexpected-positional"},
			{"-bench", "nosuch"},
			{"-stats", "-o", "conflict.trc"},
			{"-base", "4096", "-o", "rebased.trc"},
		} {
			out, err := run(t, "tracegen", args...)
			if err == nil {
				t.Errorf("tracegen %v exited zero:\n%s", args, out)
			}
		}
		// Validation failures must explain themselves.
		out, _ := run(t, "tracegen", "-n", "0")
		if !strings.Contains(out, "usage:") || !strings.Contains(out, "-n must be positive") {
			t.Errorf("tracegen -n 0 printed no usage message:\n%s", out)
		}
	})

	t.Run("record-replay-deterministic", func(t *testing.T) {
		t.Parallel()
		trc := filepath.Join(workDir, "smoke-mcf.trc")
		mustRun(t, "tracegen", "-bench", "mcf", "-n", "20000", "-o", trc)
		args := []string{"-preset", "FIGCache-Fast", "-workload", "trace:" + trc, "-insts", "10000"}
		first := mustRun(t, "figsim", args...)
		second := mustRun(t, "figsim", args...)
		if first != second {
			t.Errorf("two replays of one trace printed different statistics:\n--- first\n%s\n--- second\n%s", first, second)
		}
		if !strings.Contains(first, "trace:") {
			t.Errorf("replay output does not name the trace workload:\n%s", first)
		}
	})

	t.Run("checkpoint-restore-identical-stats", func(t *testing.T) {
		t.Parallel()
		args := []string{"-preset", "FIGCache-Fast", "-workload", "mcf", "-insts", "20000"}
		snap := filepath.Join(workDir, "smoke-ckpt.fgss")

		full := mustRun(t, "figsim", args...)
		// Checkpoint mid-run, then let the same process finish: statistics
		// must be untouched by the snapshot detour.
		ckpt := mustRun(t, "figsim", append([]string{"-checkpoint-at", "7000", "-checkpoint-out", snap}, args...)...)
		if full != ckpt {
			t.Errorf("checkpointing changed the statistics:\n--- full\n%s\n--- checkpointed\n%s", full, ckpt)
		}
		// A fresh process restored from the snapshot must finish with
		// byte-identical statistics — the bit-exact resume promise.
		restored := mustRun(t, "figsim", append([]string{"-restore", snap}, args...)...)
		if full != restored {
			t.Errorf("restore diverged from the uninterrupted run:\n--- full\n%s\n--- restored\n%s", full, restored)
		}

		// A snapshot only restores into the configuration that wrote it.
		out, err := run(t, "figsim", "-restore", snap, "-preset", "FIGCache-Fast", "-workload", "gcc", "-insts", "20000")
		if err == nil {
			t.Fatalf("figsim restored a snapshot into a different workload:\n%s", out)
		}
		if !strings.Contains(out, "restore refused") {
			t.Errorf("mismatched restore did not say why it refused:\n%s", out)
		}
	})

	t.Run("text-binary-round-trip", func(t *testing.T) {
		t.Parallel()
		trc := filepath.Join(workDir, "smoke-rt.trc")
		text := mustRun(t, "tracegen", "-bench", "gcc", "-n", "2000", "-seed", "7")
		mustRun(t, "tracegen", "-bench", "gcc", "-n", "2000", "-seed", "7", "-o", trc)
		dump := mustRun(t, "tracegen", "-dump", trc)
		if !bytes.Equal([]byte(text), []byte(dump)) {
			t.Error("text output and binary dump of the same generation differ")
		}
	})

	t.Run("figbench-workload-needs-custom", func(t *testing.T) {
		t.Parallel()
		out, err := run(t, "figbench", "-workload", "trace:whatever.trc", "table1")
		if err == nil {
			t.Fatalf("figbench silently ignored -workload without the custom experiment:\n%s", out)
		}
		if !strings.Contains(out, "custom") {
			t.Errorf("refusal does not point at the custom experiment:\n%s", out)
		}
	})

	t.Run("figmerge-dry-run-refusal", func(t *testing.T) {
		t.Parallel()
		empty := filepath.Join(workDir, "empty-cache")
		if err := os.MkdirAll(empty, 0o755); err != nil {
			t.Fatal(err)
		}
		out, err := run(t, "figmerge", "-dry-run", empty)
		if err == nil {
			t.Fatalf("figmerge -dry-run validated an empty cache directory:\n%s", out)
		}
		if !strings.Contains(out, "problem:") {
			t.Errorf("refusal did not report its problems:\n%s", out)
		}
	})
}
