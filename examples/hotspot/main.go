// Hotspot: a direct look at FIGCache's mechanism at the cache level,
// without the full-system simulator. It drives the FIGCache tag store and
// the DRAM timing model with a synthetic hot-segment access pattern and
// shows how (1) insert-any-miss fills the cache, (2) the benefit counters
// separate hot from cold segments, and (3) the RowBenefit replacement
// policy evicts a whole cache row of cold segments while protecting the
// hot ones.
//
// Run with: go run ./examples/hotspot
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dram"
)

func main() {
	geo := dram.Default()
	geo.FastSubarrays = 2
	slow := dram.DDR4()
	channel, err := dram.NewChannel(geo, slow, slow.Fast(dram.PaperFastScale()), false)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultFIGCacheConfig()
	cfg.CacheRowsPerBank = 2 // tiny cache so eviction dynamics are visible
	cache, err := core.NewFIGCache(cfg, geo)
	if err != nil {
		log.Fatal(err)
	}

	access := func(row, block int, label string) {
		loc := dram.Location{Row: row, Block: block}
		if _, hit := cache.Lookup(loc, false); hit {
			fmt.Printf("  %-22s row %4d seg %d: HIT\n", label, row, block/16)
			return
		}
		var planNote string
		if cache.ShouldInsert(loc) {
			if plan := cache.Insert(channel, loc, 0); plan != nil {
				planNote = fmt.Sprintf("inserted (%d RELOCs, %d-cycle occupancy)", plan.Blocks, plan.Cost)
				// The memory controller defers relocation work until the
				// source row closes and only then commits the cache tags;
				// this demo has no controller, so the relocation executes
				// (and commits) immediately.
				cache.Commit(plan)
			}
		}
		fmt.Printf("  %-22s row %4d seg %d: miss, %s\n", label, row, block/16, planNote)
	}

	fmt.Println("--- phase 1: first touch of 8 hot segments (fills cache row 0) ---")
	for i := 0; i < 8; i++ {
		access(1000+i, 0, "hot first touch")
	}

	fmt.Println("--- phase 2: hot segments re-accessed 5x (benefit accumulates) ---")
	for pass := 0; pass < 5; pass++ {
		for i := 0; i < 8; i++ {
			loc := dram.Location{Row: 1000 + i, Block: 0}
			if _, hit := cache.Lookup(loc, false); !hit {
				log.Fatalf("hot segment %d missed unexpectedly", i)
			}
		}
	}
	fmt.Printf("  all 8 hot segments hit on every pass (hit rate so far %.1f%%)\n", cache.HitRate()*100)

	fmt.Println("--- phase 3: 8 cold segments stream through (fill cache row 1) ---")
	for i := 0; i < 8; i++ {
		access(2000+i, 0, "cold stream")
	}

	fmt.Println("--- phase 4: 8 new segments force eviction ---")
	fmt.Println("  RowBenefit selects the cache row with the lowest cumulative")
	fmt.Println("  benefit (the cold row) and drains it one segment per insertion:")
	for i := 0; i < 8; i++ {
		access(3000+i, 0, "new segment")
	}

	fmt.Println("--- phase 5: verify the hot row survived ---")
	hot, cold := 0, 0
	for i := 0; i < 8; i++ {
		if _, h := cache.Lookup(dram.Location{Row: 1000 + i, Block: 0}, false); h {
			hot++
		}
		if _, h := cache.Lookup(dram.Location{Row: 2000 + i, Block: 0}, false); h {
			cold++
		}
	}
	fmt.Printf("  hot segments still cached: %d/8; cold segments still cached: %d/8\n", hot, cold)
	fmt.Printf("  insertions %d, evictions %d, write-backs %d\n",
		cache.Insertions, cache.Evictions, cache.WriteBacks)

	// Timing footnote: what one insertion costs the bank.
	fmt.Printf("\nper-insertion bank occupancy: %d bus cycles (%.1f ns) for a 16-block segment\n",
		channel.RelocCost(16, true), slow.NS(channel.RelocCost(16, true)))
}
