// Quickstart: the smallest end-to-end use of the library.
//
// It demonstrates the two layers of the public API:
//
//  1. The FIGARO functional substrate: relocate a row segment between
//     subarrays through the global row buffer and verify the data moved
//     (Figure 4 of the paper, at cache-block granularity).
//  2. The full-system simulator: run one benchmark on conventional DDR4
//     (Base) and on FIGCache-Fast, and compare.
//
// Run with: go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// insts keeps the demo re-scalable: the CI smoke test runs it at a tiny
// instruction budget so the example keeps executing, not just compiling.
var insts = flag.Int64("insts", 300_000, "per-core instruction budget of the system demo")

func main() {
	flag.Parse()
	figaroDemo()
	systemDemo()
}

// figaroDemo relocates one 4-column segment between two subarrays of a
// functional bank and checks the destination row.
func figaroDemo() {
	fmt.Println("--- FIGARO substrate: fine-grained in-DRAM relocation ---")
	bank, err := core.NewFunctionalBank(8, 16, 128, 64) // 8 subarrays, 16 rows, 128 cols, 64 B cols
	if err != nil {
		log.Fatal(err)
	}

	// Fill a source row in subarray 2 with a recognizable pattern.
	row := make([]byte, 128*64)
	for i := range row {
		row[i] = byte(i % 251)
	}
	if err := bank.WriteRow(2, 5, row); err != nil {
		log.Fatal(err)
	}

	// Relocate columns 16..19 of (subarray 2, row 5) into columns 0..3 of
	// (subarray 7, row 0): ACTIVATE src; 4x RELOC through the global row
	// buffer (unaligned); ACTIVATE dst; PRECHARGE.
	if err := bank.RelocateSegment(2, 5, 16, 7, 0, 0, 4); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		same, err := bank.ColumnsEqual(2, 5, 16+i, 7, 0, i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("column %d relocated correctly: %v\n", i, same)
	}

	fmt.Println()
}

// systemDemo runs mcf on Base and FIGCache-Fast and reports the speedup.
func systemDemo() {
	fmt.Println("--- Full system: Base vs FIGCache-Fast on mcf ---")
	spec, err := workload.ByName("mcf")
	if err != nil {
		log.Fatal(err)
	}
	mix := workload.Mix{Name: "mcf", Apps: workload.Sources(spec)}

	run := func(p sim.Preset) sim.Result {
		cfg := sim.DefaultConfig(p, mix)
		cfg.TargetInsts = *insts
		system, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := system.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run(sim.Base)
	fig := run(sim.FIGCacheFast)

	fmt.Printf("%-14s IPC %.4f, row-buffer hit rate %.1f%%\n",
		sim.Base, base.Cores[0].IPC, base.RowBufferHitRate()*100)
	fmt.Printf("%-14s IPC %.4f, row-buffer hit rate %.1f%%, in-DRAM cache hit rate %.1f%%\n",
		sim.FIGCacheFast, fig.Cores[0].IPC, fig.RowBufferHitRate()*100, fig.InDRAMCacheHitRate()*100)
	fmt.Printf("speedup: %+.1f%%\n", (fig.Cores[0].IPC/base.Cores[0].IPC-1)*100)
}
